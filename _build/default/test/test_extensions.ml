(* Tests for the extension substrates: TLB/huge pages, the credit
   scheduler, the policy advisor, and their engine integration. *)

let app name =
  match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.failf "no app %s" name

(* -------------------------------- tlb ------------------------------ *)

let tlb = Guest.Tlb.opteron

let test_tlb_coverage () =
  Alcotest.(check int) "4k coverage" (1024 * 4096) (Guest.Tlb.coverage_bytes tlb Guest.Tlb.Small_4k);
  Alcotest.(check int) "2m coverage" (48 * 2 * 1024 * 1024)
    (Guest.Tlb.coverage_bytes tlb Guest.Tlb.Huge_2m)

let test_tlb_small_footprint_never_misses () =
  Alcotest.(check (float 1e-12)) "fits in reach" 0.0
    (Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes:(1024 * 1024)
       ~hot_access_share:0.5)

let test_tlb_huge_pages_reduce_misses () =
  let footprint_bytes = 4 * 1024 * 1024 * 1024 in
  let small =
    Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.5
  in
  let huge = Guest.Tlb.miss_ratio tlb Guest.Tlb.Huge_2m ~footprint_bytes ~hot_access_share:0.5 in
  Alcotest.(check bool) "misses exist at 4k" true (small > 0.0);
  Alcotest.(check bool) "2M at least 100x fewer" true (huge < small /. 100.0)

let test_tlb_nested_walk_costlier () =
  Alcotest.(check bool) "virtualized walk ~3x" true
    (Guest.Tlb.walk_cycles tlb ~virtualized:true >= 2.5 *. Guest.Tlb.walk_cycles tlb ~virtualized:false)

let test_tlb_hot_share_reduces_misses () =
  let footprint_bytes = 1024 * 1024 * 1024 in
  let cold = Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.1 in
  let hot = Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.9 in
  Alcotest.(check bool) "skew helps" true (hot < cold)

let test_engine_huge_pages_help_virtualized_big_app () =
  let run huge_pages =
    let vm = Engine.Config.vm ~huge_pages ~policy:Policies.Spec.round_4k (app "mg.D") in
    (Engine.Result.single
       (Engine.Runner.run (Engine.Config.make ~seed:5 ~mode:Engine.Config.Xen_plus [ vm ])))
      .Engine.Result.completion
  in
  let small = run false and huge = run true in
  Alcotest.(check bool) "2M pages at least 5% faster in a VM" true (small > 1.05 *. huge)

(* ------------------------------- sched ------------------------------ *)

let sched_system () = Xen.System.create ~page_scale:262144 (Numa.Amd48.topology ())

let test_sched_occupancy () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"a" ~kind:Xen.Domain.DomU ~vcpus:4 ~mem_bytes:(1 lsl 30) ()
  in
  let occ = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> true) in
  Alcotest.(check int) "4 active" 4 (Array.fold_left ( + ) 0 occ);
  let occ_none = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> false) in
  Alcotest.(check int) "0 active" 0 (Array.fold_left ( + ) 0 occ_none)

let test_sched_balance_spreads () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"stacked" ~kind:Xen.Domain.DomU ~vcpus:8
      ~mem_bytes:(1 lsl 30) ~home_nodes:[| 0 |] ()
  in
  (* 8 vCPUs on node 0's 6 pCPUs: at least two pCPUs are double-booked
     while 42 others idle. *)
  let rng = Sim.Rng.create ~seed:1 in
  let migrations =
    Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> true)
      ~active:(fun _ _ -> true)
  in
  Alcotest.(check bool) "migrated some" true (List.length migrations >= 2);
  let occ = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> true) in
  Alcotest.(check int) "no pCPU double-booked" 1 (Array.fold_left max 0 occ)

let test_sched_respects_movable () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"frozen" ~kind:Xen.Domain.DomU ~vcpus:8
      ~mem_bytes:(1 lsl 30) ~home_nodes:[| 0 |] ()
  in
  let rng = Sim.Rng.create ~seed:2 in
  let before = Array.copy d.Xen.Domain.vcpu_pin in
  let migrations =
    Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> false)
      ~active:(fun _ _ -> true)
  in
  Alcotest.(check int) "nothing moved" 0 (List.length migrations);
  Alcotest.(check (array int)) "pins intact" before d.Xen.Domain.vcpu_pin

let test_sched_balanced_is_stable () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"even" ~kind:Xen.Domain.DomU ~vcpus:48
      ~mem_bytes:(1 lsl 30) ()
  in
  let rng = Sim.Rng.create ~seed:3 in
  Alcotest.(check int) "1:1 layout untouched" 0
    (List.length
       (Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> true)
          ~active:(fun _ _ -> true)))

let test_engine_unpinned_migration_breaks_locality () =
  let run pinned policy =
    let victim = Engine.Config.vm ~threads:48 ~pinned ~policy (app "cg.C") in
    let neighbour = Engine.Config.vm ~threads:24 ~policy:Policies.Spec.round_4k (app "ep.D") in
    let r = Engine.Runner.run (Engine.Config.make ~seed:4 ~mode:Engine.Config.Xen_plus [ victim; neighbour ]) in
    match List.find_opt (fun vm -> vm.Engine.Result.app_name = "cg.C") r.Engine.Result.vms with
    | Some vm -> vm
    | None -> Alcotest.fail "victim missing"
  in
  let pinned = run true Policies.Spec.first_touch in
  let migrated = run false Policies.Spec.first_touch in
  let healed = run false Policies.Spec.first_touch_carrefour in
  Alcotest.(check bool) "migration hurts locality" true
    (migrated.Engine.Result.local_fraction < pinned.Engine.Result.local_fraction -. 0.1);
  Alcotest.(check bool) "carrefour chases the vCPUs" true
    (healed.Engine.Result.local_fraction > migrated.Engine.Result.local_fraction +. 0.05);
  Alcotest.(check bool) "pages were moved" true (healed.Engine.Result.migrations > 0)

(* ------------------------------ advisor ----------------------------- *)

let test_advisor_classify () =
  Alcotest.(check bool) "high" true (Engine.Advisor.classify ~imbalance:2.5 = Workloads.App.High);
  Alcotest.(check bool) "moderate" true
    (Engine.Advisor.classify ~imbalance:1.0 = Workloads.App.Moderate);
  Alcotest.(check bool) "low" true (Engine.Advisor.classify ~imbalance:0.3 = Workloads.App.Low)

let test_advisor_recommendations () =
  let recommend name =
    (Engine.Advisor.recommend ~mode:Engine.Config.Xen_plus (app name)).Engine.Advisor.policy
  in
  Alcotest.(check string) "thread-local app -> first-touch" "first-touch"
    (Policies.Spec.name (recommend "cg.C"));
  Alcotest.(check string) "master-slave app -> round-4k/carrefour" "round-4k/carrefour"
    (Policies.Spec.name (recommend "kmeans"))

let test_advisor_profile_fields () =
  let p = Engine.Advisor.profile ~mode:Engine.Config.Linux (app "facesim") in
  Alcotest.(check bool) "imbalance near Table 1" true
    (Float.abs (p.Engine.Advisor.imbalance -. 2.53) < 0.3);
  Alcotest.(check bool) "classified high" true (p.Engine.Advisor.class_ = Workloads.App.High)

let suite =
  [
    ( "guest.tlb",
      [
        Alcotest.test_case "coverage" `Quick test_tlb_coverage;
        Alcotest.test_case "small footprint" `Quick test_tlb_small_footprint_never_misses;
        Alcotest.test_case "huge pages reduce misses" `Quick test_tlb_huge_pages_reduce_misses;
        Alcotest.test_case "nested walk costlier" `Quick test_tlb_nested_walk_costlier;
        Alcotest.test_case "hot share" `Quick test_tlb_hot_share_reduces_misses;
        Alcotest.test_case "engine: 2M pages help in VM" `Slow
          test_engine_huge_pages_help_virtualized_big_app;
      ] );
    ( "xen.sched",
      [
        Alcotest.test_case "occupancy" `Quick test_sched_occupancy;
        Alcotest.test_case "balance spreads" `Quick test_sched_balance_spreads;
        Alcotest.test_case "respects movable" `Quick test_sched_respects_movable;
        Alcotest.test_case "balanced stays put" `Quick test_sched_balanced_is_stable;
        Alcotest.test_case "engine: migration vs carrefour" `Slow
          test_engine_unpinned_migration_breaks_locality;
      ] );
    ( "engine.advisor",
      [
        Alcotest.test_case "classify thresholds" `Quick test_advisor_classify;
        Alcotest.test_case "recommendations" `Quick test_advisor_recommendations;
        Alcotest.test_case "profile fields" `Quick test_advisor_profile_fields;
      ] );
  ]
