test/test_xen.ml: Alcotest Array Guest List Memory Numa Policies QCheck QCheck_alcotest Sim Xen
