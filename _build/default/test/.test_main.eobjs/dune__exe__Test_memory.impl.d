test/test_memory.ml: Alcotest Array Gen List Memory Numa Printf QCheck QCheck_alcotest Sim
