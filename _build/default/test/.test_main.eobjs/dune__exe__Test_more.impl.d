test/test_more.ml: Alcotest Array Engine Float Format Guest List Memory Numa Policies QCheck QCheck_alcotest Sim String Workloads
