test/test_sim.ml: Alcotest Array Float Format Gen List QCheck QCheck_alcotest Sim
