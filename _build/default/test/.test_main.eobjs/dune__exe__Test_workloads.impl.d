test/test_workloads.ml: Alcotest Float List Policies Workloads
