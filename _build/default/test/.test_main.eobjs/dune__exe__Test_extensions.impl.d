test/test_extensions.ml: Alcotest Array Engine Float Guest List Numa Policies Sim Workloads Xen
