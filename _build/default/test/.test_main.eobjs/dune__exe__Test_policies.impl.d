test/test_policies.ml: Alcotest Array Guest List Memory Numa Policies QCheck QCheck_alcotest Sim Xen
