test/test_report.ml: Alcotest Experiments List Policies Report String Sys Workloads
