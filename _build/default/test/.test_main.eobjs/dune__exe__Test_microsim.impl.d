test/test_microsim.ml: Alcotest Array Float List Microsim Numa Printf
