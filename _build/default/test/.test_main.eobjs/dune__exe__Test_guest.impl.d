test/test_guest.ml: Alcotest Array Gen Guest Hashtbl List QCheck QCheck_alcotest
