test/test_numa.ml: Alcotest Array Float Gen List Numa QCheck QCheck_alcotest
