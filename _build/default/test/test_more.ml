(* Additional coverage: machine descriptions, result plumbing, spec
   properties, queue stress, buddy reserve properties, counters under
   multi-epoch histories, cross-machine engine runs. *)

let app name =
  match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.failf "no app %s" name

(* --------------------------- machine_desc --------------------------- *)

let test_machine_desc_find () =
  (match Numa.Machine_desc.find "AMD48" with
  | Some m -> Alcotest.(check string) "amd48" "amd48" m.Numa.Machine_desc.name
  | None -> Alcotest.fail "amd48 missing");
  Alcotest.(check bool) "unknown" true (Numa.Machine_desc.find "cray" = None);
  Alcotest.(check int) "two machines" 2 (List.length Numa.Machine_desc.all)

let test_machine_desc_intel_shape () =
  let m = Numa.Machine_desc.intel32 in
  let topo = m.Numa.Machine_desc.topology () in
  Alcotest.(check int) "4 nodes" 4 (Numa.Topology.node_count topo);
  Alcotest.(check int) "32 cpus" 32 (Numa.Topology.cpu_count topo);
  Alcotest.(check int) "fully connected: diameter 1" 1 (Numa.Topology.diameter topo)

let test_engine_runs_on_intel32 () =
  let vm = Engine.Config.vm ~threads:32 ~policy:Policies.Spec.first_touch (app "cg.C") in
  let cfg =
    Engine.Config.make ~seed:2 ~machine:Numa.Machine_desc.intel32 ~mode:Engine.Config.Xen_plus
      [ vm ]
  in
  let r = Engine.Runner.run cfg in
  let v = Engine.Result.single r in
  Alcotest.(check bool) "completes" true (v.Engine.Result.completion > 0.0);
  Alcotest.(check bool) "locality preserved on any host" true
    (v.Engine.Result.local_fraction > 0.9)

(* ------------------------------ result ------------------------------ *)

let test_result_single_rejects_multi () =
  let vms =
    [
      Engine.Config.vm ~threads:24 ~policy:Policies.Spec.round_4k (app "swaptions");
      Engine.Config.vm ~threads:24 ~policy:Policies.Spec.round_4k (app "ep.D");
    ]
  in
  let r = Engine.Runner.run (Engine.Config.make ~seed:3 ~mode:Engine.Config.Xen_plus vms) in
  Alcotest.check_raises "single on multi" (Invalid_argument "Result.single: run had several VMs")
    (fun () -> ignore (Engine.Result.single r));
  Alcotest.(check bool) "completion lookup raises on unknown" true
    (try
       ignore (Engine.Result.completion r "quake3");
       false
     with Not_found -> true)

let test_result_pp_renders () =
  let vm = Engine.Config.vm ~threads:8 ~policy:Policies.Spec.round_4k (app "swaptions") in
  let r = Engine.Runner.run (Engine.Config.make ~seed:4 ~mode:Engine.Config.Linux [ vm ]) in
  let s = Format.asprintf "%a" Engine.Result.pp r in
  Alcotest.(check bool) "mentions the app" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ ->
        if i + 9 <= String.length s && String.sub s i 9 = "swaptions" then re_found := true)
      s;
    !re_found)

(* ----------------------------- observer ----------------------------- *)

let test_observer_called_and_monotone () =
  let snapshots = ref [] in
  let vm = Engine.Config.vm ~threads:8 ~policy:Policies.Spec.round_4k (app "swaptions") in
  let cfg =
    Engine.Config.make ~seed:5 ~mode:Engine.Config.Linux
      ~observer:(fun s -> snapshots := s :: !snapshots)
      [ vm ]
  in
  let r = Engine.Runner.run cfg in
  let snaps = List.rev !snapshots in
  Alcotest.(check int) "one snapshot per epoch" r.Engine.Result.epochs (List.length snaps);
  let progresses = List.map (fun s -> List.assoc "swaptions" s.Engine.Config.progress) snaps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "progress monotone" true (monotone progresses);
  Alcotest.(check (float 1e-6)) "ends at 1" 1.0 (List.nth progresses (List.length progresses - 1))

(* ------------------------------- spec -------------------------------- *)

let prop_spec_parse_total =
  QCheck.Test.make ~name:"spec parser never raises" ~count:300 QCheck.printable_string
    (fun s ->
      match Policies.Spec.of_string s with Ok _ -> true | Error _ -> true)

let prop_spec_name_unique =
  QCheck.Test.make ~name:"spec names are distinct" ~count:1 QCheck.unit (fun () ->
      let names = List.map Policies.Spec.name Policies.Spec.all in
      List.length (List.sort_uniq compare names) = List.length names)

(* ------------------------------ pv_queue ----------------------------- *)

let test_queue_interleaved_partitions_stress () =
  let per_partition = Array.make 8 0 in
  let q =
    Guest.Pv_queue.create ~partitions:8 ~capacity:16
      ~flush:(fun ops ->
        (* Every op in one flush belongs to the same partition. *)
        let parts =
          List.sort_uniq compare
            (List.map (fun op -> Guest.Pv_queue.op_pfn op land 7) (Array.to_list ops))
        in
        (match parts with
        | [ p ] -> per_partition.(p) <- per_partition.(p) + Array.length ops
        | _ -> Alcotest.fail "flush mixes partitions");
        0.0)
      ()
  in
  let rng = Sim.Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    Guest.Pv_queue.record q (Guest.Pv_queue.Release (Sim.Rng.int rng 4096))
  done;
  Guest.Pv_queue.flush_all q;
  Alcotest.(check int) "all ops accounted" 10_000 (Array.fold_left ( + ) 0 per_partition);
  Array.iteri
    (fun i n -> if n = 0 then Alcotest.failf "partition %d never used" i)
    per_partition

(* ------------------------------- buddy ------------------------------- *)

let prop_buddy_reserve_never_allocated =
  QCheck.Test.make ~name:"reserved frames are never allocated" ~count:60
    QCheck.(pair (int_range 0 200) (int_range 1 56))
    (fun (base, frames) ->
      let b = Memory.Buddy.create ~base:0 ~frames:256 in
      let reserved = Memory.Buddy.reserve b ~base ~frames in
      let lo = base and hi = base + frames in
      let ok = ref (reserved <= frames) in
      let rec drain () =
        match Memory.Buddy.alloc b ~order:0 with
        | Some f ->
            if f >= lo && f < hi then ok := false;
            drain ()
        | None -> ()
      in
      drain ();
      !ok)

(* ------------------------------ counters ----------------------------- *)

let test_counters_multi_epoch_interconnect_average () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  let gib = 1024.0 *. 1024.0 *. 1024.0 in
  (* Epoch 1: link 0<->1 (6 GiB/s) at 100%; epoch 2: idle. *)
  Numa.Counters.record_accesses c ~src:0 ~dst:1 ~count:(6.0 *. gib /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Alcotest.(check (float 0.02)) "average of 100% and 0%" 0.5 (Numa.Counters.interconnect_load c)

(* ----------------------------- engine misc ---------------------------- *)

let test_engine_huge_and_unpinned_compose () =
  let vm =
    Engine.Config.vm ~threads:48 ~huge_pages:true ~pinned:false
      ~policy:Policies.Spec.first_touch_carrefour (app "cg.C")
  in
  let r = Engine.Runner.run (Engine.Config.make ~seed:7 ~mode:Engine.Config.Xen_plus [ vm ]) in
  Alcotest.(check bool) "completes" true ((Engine.Result.single r).Engine.Result.completion > 0.0)

let test_engine_seed_sensitivity_small () =
  (* Different seeds shift stochastic components (bursts, carrefour
     picks) but not the macro outcome. *)
  let run seed =
    let vm = Engine.Config.vm ~policy:Policies.Spec.round_4k_carrefour (app "fluidanimate") in
    (Engine.Result.single (Engine.Runner.run (Engine.Config.make ~seed ~mode:Engine.Config.Linux [ vm ])))
      .Engine.Result.completion
  in
  let a = run 1 and b = run 99 in
  Alcotest.(check bool) "within 10%" true (Float.abs (a -. b) /. a < 0.10)

let test_engine_dom0_costs_pv_io_cpu () =
  (* dc.B over the pv path keeps dom0 busy on node 0; the same app
     with passthrough does not.  Both Xen runs must be slower than
     having no dom0 contention at all is worth checking indirectly:
     pv completion > passthrough completion. *)
  let run mode =
    let vm = Engine.Config.vm ~policy:Policies.Spec.round_1g (app "dc.B") in
    (Engine.Result.single (Engine.Runner.run (Engine.Config.make ~seed:8 ~mode [ vm ])))
      .Engine.Result.completion
  in
  Alcotest.(check bool) "pv dearer than passthrough" true
    (run Engine.Config.Xen > run Engine.Config.Xen_plus)

let suite =
  [
    ( "numa.machine_desc",
      [
        Alcotest.test_case "find" `Quick test_machine_desc_find;
        Alcotest.test_case "intel32 shape" `Quick test_machine_desc_intel_shape;
        Alcotest.test_case "engine on intel32" `Quick test_engine_runs_on_intel32;
      ] );
    ( "engine.result",
      [
        Alcotest.test_case "single rejects multi" `Quick test_result_single_rejects_multi;
        Alcotest.test_case "pp renders" `Quick test_result_pp_renders;
      ] );
    ( "engine.observer",
      [ Alcotest.test_case "called with monotone progress" `Quick test_observer_called_and_monotone ] );
    ( "policies.spec.props",
      [
        QCheck_alcotest.to_alcotest prop_spec_parse_total;
        QCheck_alcotest.to_alcotest prop_spec_name_unique;
      ] );
    ( "guest.pv_queue.stress",
      [ Alcotest.test_case "partitions never mix" `Quick test_queue_interleaved_partitions_stress ] );
    ( "memory.buddy.props",
      [ QCheck_alcotest.to_alcotest prop_buddy_reserve_never_allocated ] );
    ( "numa.counters.epochs",
      [ Alcotest.test_case "interconnect average" `Quick test_counters_multi_epoch_interconnect_average ] );
    ( "engine.misc",
      [
        Alcotest.test_case "huge+unpinned compose" `Quick test_engine_huge_and_unpinned_compose;
        Alcotest.test_case "seed sensitivity" `Slow test_engine_seed_sensitivity_small;
        Alcotest.test_case "dom0 pv io cpu" `Slow test_engine_dom0_costs_pv_io_cpu;
      ] );
  ]
