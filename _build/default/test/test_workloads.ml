(* Tests for the workloads library: the 29-app catalogue and the
   derived behaviour parameters. *)

let all = Workloads.Catalogue.all

let test_catalogue_count () =
  Alcotest.(check int) "29 applications" 29 (List.length all);
  Alcotest.(check int) "29 names" 29 (List.length Workloads.Catalogue.names)

let test_catalogue_class_counts () =
  (* Section 3.5.2: 11 low, 5 moderate, 13 high. *)
  Alcotest.(check int) "low" 11 (List.length (Workloads.Catalogue.by_class Workloads.App.Low));
  Alcotest.(check int) "moderate" 5
    (List.length (Workloads.Catalogue.by_class Workloads.App.Moderate));
  Alcotest.(check int) "high" 13 (List.length (Workloads.Catalogue.by_class Workloads.App.High))

let test_catalogue_suites () =
  Alcotest.(check int) "parsec 6" 6 (List.length (Workloads.Catalogue.by_suite Workloads.App.Parsec));
  Alcotest.(check int) "npb 9" 9 (List.length (Workloads.Catalogue.by_suite Workloads.App.Npb));
  Alcotest.(check int) "mosbench 7" 7
    (List.length (Workloads.Catalogue.by_suite Workloads.App.Mosbench));
  Alcotest.(check int) "x-stream 5" 5
    (List.length (Workloads.Catalogue.by_suite Workloads.App.Xstream));
  Alcotest.(check int) "ycsb 2" 2 (List.length (Workloads.Catalogue.by_suite Workloads.App.Ycsb))

let test_catalogue_find () =
  (match Workloads.Catalogue.find "cg.C" with
  | Some app -> Alcotest.(check string) "found" "cg.C" app.Workloads.App.name
  | None -> Alcotest.fail "cg.C missing");
  (match Workloads.Catalogue.find "WRMEM" with
  | Some app -> Alcotest.(check string) "case insensitive" "wrmem" app.Workloads.App.name
  | None -> Alcotest.fail "wrmem missing");
  Alcotest.(check bool) "unknown is None" true (Workloads.Catalogue.find "quake3" = None)

let test_catalogue_table2_spot_checks () =
  let get name = match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.fail name in
  let dc = get "dc.B" in
  Alcotest.(check int) "dc.B footprint" 39273 dc.Workloads.App.footprint_mb;
  Alcotest.(check (float 0.01)) "dc.B disk" 175.0 dc.Workloads.App.disk_mb_s;
  let memcached = get "memcached" in
  Alcotest.(check (float 0.01)) "memcached ctx" 127.1 memcached.Workloads.App.ctx_switch_k_s;
  Alcotest.(check bool) "memcached is a network service" true memcached.Workloads.App.net_service;
  let swaptions = get "swaptions" in
  Alcotest.(check int) "swaptions tiny footprint" 4 swaptions.Workloads.App.footprint_mb

let test_catalogue_master_bias_from_table1 () =
  (* The derivation: imbalance ~ 2.65 * bias on 8 nodes. *)
  List.iter
    (fun app ->
      let expected =
        Float.min 0.97 (app.Workloads.App.paper.Workloads.App.imbalance_ft /. 2.65)
      in
      Alcotest.(check (float 1e-6))
        (app.Workloads.App.name ^ " bias")
        expected app.Workloads.App.master_bias)
    all

let test_catalogue_parameter_ranges () =
  List.iter
    (fun app ->
      let open Workloads.App in
      let name = app.name in
      if app.master_bias < 0.0 || app.master_bias > 0.97 then Alcotest.failf "%s bias" name;
      if app.miss_rate < 0.0015 || app.miss_rate > 0.035 then Alcotest.failf "%s miss" name;
      if app.shared_bytes_fraction < 0.2 || app.shared_bytes_fraction > 0.95 then
        Alcotest.failf "%s shared" name;
      if app.native_seconds <= 0.0 then Alcotest.failf "%s seconds" name;
      if app.footprint_mb <= 0 then Alcotest.failf "%s footprint" name)
    all

let test_catalogue_streamflow_churn () =
  (* wrmem's 15 us release period (Section 4.2.3); non-Mosbench apps
     keep their pages. *)
  let get name = match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.fail name in
  (match (get "wrmem").Workloads.App.page_release_period with
  | Some p -> Alcotest.(check (float 1e-12)) "wrmem 15us" 15e-6 p
  | None -> Alcotest.fail "wrmem must churn");
  List.iter
    (fun app ->
      if app.Workloads.App.suite <> Workloads.App.Mosbench then
        Alcotest.(check bool)
          (app.Workloads.App.name ^ " no churn")
          true
          (app.Workloads.App.page_release_period = None))
    all

let test_catalogue_burst_only_for_low_non_carrefour () =
  List.iter
    (fun app ->
      let open Workloads.App in
      if app.remote_burst > 0.0 then begin
        Alcotest.(check bool) (app.name ^ " class low") true (app.paper.class_ = Low);
        Alcotest.(check bool) (app.name ^ " best has no carrefour") false
          app.paper.best_linux.Policies.Spec.carrefour
      end)
    all

let test_app_work_sizing () =
  let get name = match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.fail name in
  let app = get "cg.C" in
  let instr = Workloads.App.instructions_per_thread app ~threads:48 ~freq_hz:2.2e9 in
  Alcotest.(check bool) "positive" true (instr > 0.0);
  (* At the assumed latency the work should take about native_seconds. *)
  let cpi = 1.0 +. (app.Workloads.App.miss_rate *. 190.0) in
  Alcotest.(check (float 0.5)) "sizing" app.Workloads.App.native_seconds (instr *. cpi /. 2.2e9)

let test_app_helpers () =
  let get name = match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.fail name in
  let memcached = get "memcached" in
  Alcotest.(check (float 1.0)) "sync events = ctx/2" 63550.0
    (Workloads.App.sync_events_per_s memcached);
  let belief = get "belief" in
  Alcotest.(check bool) "belief uses disk" true (Workloads.App.uses_disk belief);
  Alcotest.(check bool) "swaptions does not" false (Workloads.App.uses_disk (get "swaptions"));
  Alcotest.(check (float 1e6)) "belief disk total"
    (234.0 *. 1e6 *. belief.Workloads.App.native_seconds)
    (Workloads.App.disk_bytes_total belief)

let test_best_policy_references () =
  (* Table 4 spot checks. *)
  let get name = match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.fail name in
  let check name expected field =
    let app = get name in
    let spec = field app.Workloads.App.paper in
    Alcotest.(check string) name expected (Policies.Spec.name spec)
  in
  check "cg.C" "first-touch" (fun p -> p.Workloads.App.best_linux);
  check "kmeans" "round-4k" (fun p -> p.Workloads.App.best_linux);
  check "sp.C" "round-4k/carrefour" (fun p -> p.Workloads.App.best_xen);
  check "dc.B" "round-1g" (fun p -> p.Workloads.App.best_xen);
  check "memcached" "round-1g" (fun p -> p.Workloads.App.best_xen)

let suite =
  [
    ( "workloads.catalogue",
      [
        Alcotest.test_case "29 apps" `Quick test_catalogue_count;
        Alcotest.test_case "class counts" `Quick test_catalogue_class_counts;
        Alcotest.test_case "suite counts" `Quick test_catalogue_suites;
        Alcotest.test_case "find" `Quick test_catalogue_find;
        Alcotest.test_case "Table 2 spot checks" `Quick test_catalogue_table2_spot_checks;
        Alcotest.test_case "bias derivation" `Quick test_catalogue_master_bias_from_table1;
        Alcotest.test_case "parameter ranges" `Quick test_catalogue_parameter_ranges;
        Alcotest.test_case "streamflow churn" `Quick test_catalogue_streamflow_churn;
        Alcotest.test_case "burst restricted" `Quick test_catalogue_burst_only_for_low_non_carrefour;
        Alcotest.test_case "work sizing" `Quick test_app_work_sizing;
        Alcotest.test_case "helpers" `Quick test_app_helpers;
        Alcotest.test_case "Table 4 references" `Quick test_best_policy_references;
      ] );
  ]
