(* Carrefour under the hood: drive the system/user component split
   directly, at the mechanism level, and watch the hottest pages being
   migrated off an overloaded node round after round.

   The dom0 user component reads metrics (controller utilisation, link
   loads, hot-page table) through a hypercall into the in-hypervisor
   system component, decides, and applies migrations through the
   internal interface — exactly the Section 4.3 architecture.

   dune exec examples/carrefour_trace.exe *)

let () =
  let topo = Numa.Amd48.topology () in
  (* 64 MiB scaled frames keep the numbers readable. *)
  let system = Xen.System.create ~page_scale:16384 topo in
  let domain =
    Xen.System.create_domain system ~name:"victim" ~kind:Xen.Domain.DomU ~vcpus:48
      ~mem_bytes:(8 * 1024 * 1024 * 1024) ()
  in
  let rng = Sim.Rng.create ~seed:5 in
  (* Boot round-4K, then enable Carrefour through the policy hypercall. *)
  let manager = Policies.Manager.attach system domain ~boot:Policies.Spec.round_4k ~rng in
  (match Policies.Manager.set_policy manager Policies.Spec.round_4k_carrefour with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let counters = Numa.Counters.create topo in
  (* A master-slave pattern gone wrong: 32 hot pages all ended up on
     node 0 (say, after a first-touch initialisation), hammered by
     every node. *)
  let hot_pages = List.init 32 (fun i -> i * 4) in
  List.iter
    (fun pfn ->
      match Policies.Internal.migrate_page system domain ~pfn ~node:0 with
      | Ok _ -> ()
      | Error _ -> failwith "setup migration failed")
    hot_pages;
  Xen.Domain.reset_account domain;
  Format.printf "32 hot pages concentrated on node 0; Carrefour engaged@.@.";
  Format.printf "%-6s %-12s %-12s %-14s %s@." "round" "node0 util" "imbalance" "migrations"
    "hot pages on node 0";
  for round = 1 to 6 do
    (* One measurement epoch: every node hammers the hot pages.  Node
       0's controller saturates while the others idle. *)
    let on_node0 =
      List.filter
        (fun pfn -> Policies.Manager.node_of_pfn manager pfn = Some 0)
        hot_pages
    in
    let per_page = 13.0 *. 1024.0 *. 1024.0 *. 1024.0 /. 64.0 /. 40.0 in
    List.iter
      (fun pfn ->
        let dst = match Policies.Manager.node_of_pfn manager pfn with Some n -> n | None -> 0 in
        for src = 0 to 7 do
          Numa.Counters.record_accesses counters ~src ~dst ~count:(per_page /. 8.0)
            ~bytes_per_access:64.0
        done)
      hot_pages;
    Numa.Counters.end_epoch counters ~duration:1.0;
    (* Hardware sampling feeds the system component; the user component
       reads the metrics and decides. *)
    let samples =
      List.map
        (fun pfn ->
          {
            Policies.Carrefour.pfn;
            node_accesses = Array.make 8 (per_page /. 8.0);
            read_fraction = 0.5;
          })
        hot_pages
    in
    let report =
      match Policies.Manager.carrefour_epoch manager ~counters ~samples with
      | Some report -> report
      | None -> failwith "carrefour is not active"
    in
    let util = (Numa.Counters.last_controller_utilisation counters).(0) in
    Format.printf "%-6d %-12s %-12s %-14d %d@." round
      (Printf.sprintf "%.0f%%" (100.0 *. util))
      (Printf.sprintf "%.0f%%" (100.0 *. Numa.Counters.imbalance counters))
      (report.Policies.Carrefour.interleave_migrations
      + report.Policies.Carrefour.locality_migrations)
      (List.length on_node0)
  done;
  let account = domain.Xen.Domain.account in
  Format.printf "@.total pages migrated: %d (%.1f ms of copy time charged to the domain)@."
    account.Xen.Domain.migrated_pages
    (1000.0 *. account.Xen.Domain.migrate_time)
