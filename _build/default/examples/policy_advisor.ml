(* Policy advisor: the paper's closing open problem — automatically
   selecting the NUMA policy — implemented over the simulator.  The
   advisor profiles each application briefly under first-touch,
   classifies it with the paper's Section 3.5.2 thresholds, recommends
   a policy, and the example validates the recommendation against an
   exhaustive sweep.

   dune exec examples/policy_advisor.exe [app ...] *)

let apps_of_argv () =
  match List.tl (Array.to_list Sys.argv) with
  | [] -> [ "cg.C"; "kmeans"; "sp.C"; "fluidanimate"; "facesim" ]
  | names -> names

let () =
  let mode = Engine.Config.Xen_plus in
  List.iter
    (fun name ->
      match Workloads.Catalogue.find name with
      | None -> Format.printf "unknown application %S@." name
      | Some app ->
          Format.printf "== %s ==@." name;
          let r = Engine.Advisor.recommend ~mode app in
          Format.printf "%a@." Engine.Advisor.pp_recommendation r;
          (* Validate against the exhaustive sweep. *)
          let times =
            List.map
              (fun policy ->
                let vm = Engine.Config.vm ~policy app in
                let cfg = Engine.Config.make ~mode [ vm ] in
                let result = Engine.Runner.run cfg in
                (policy, (Engine.Result.single result).Engine.Result.completion))
              Policies.Spec.all
          in
          let best_policy, best_time =
            List.fold_left
              (fun (bp, bt) (p, t) -> if t < bt then (p, t) else (bp, bt))
              (Policies.Spec.first_touch, Float.infinity)
              times
          in
          let recommended_time = List.assoc r.Engine.Advisor.policy times in
          Format.printf "exhaustive best: %s (%.1f s); recommendation is within %.0f%%@.@."
            (Policies.Spec.name best_policy) best_time
            (100.0 *. ((recommended_time /. best_time) -. 1.0)))
    (apps_of_argv ())
