(* Epoch trace: watch Carrefour converge, epoch by epoch, through the
   engine's observer hook.  Prints a CSV you can plot: time, the
   hottest controller's utilisation, the cumulative access imbalance,
   and the locality the dynamic policy claws back after a first-touch
   start that put the whole shared region on one node.

   dune exec examples/epoch_trace.exe [app] > trace.csv *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "kmeans" in
  let app =
    match Workloads.Catalogue.find name with
    | Some app -> app
    | None ->
        Printf.eprintf "unknown application %S\n" name;
        exit 1
  in
  Printf.printf "# %s under first-touch/carrefour on xen+ (AMD48)\n" name;
  Printf.printf "time_s,max_controller_util,imbalance,local_fraction,progress\n";
  let observer (s : Engine.Config.epoch_snapshot) =
    (* One line per second of simulated time keeps the trace readable. *)
    if s.Engine.Config.epoch_index mod 10 = 0 then
      Printf.printf "%.1f,%.3f,%.3f,%.3f,%.3f\n" s.Engine.Config.time
        s.Engine.Config.max_controller_util s.Engine.Config.imbalance
        (List.assoc app.Workloads.App.name s.Engine.Config.local_fraction)
        (List.assoc app.Workloads.App.name s.Engine.Config.progress)
  in
  let vm = Engine.Config.vm ~policy:Policies.Spec.first_touch_carrefour app in
  let cfg = Engine.Config.make ~seed:8 ~observer ~mode:Engine.Config.Xen_plus [ vm ] in
  let result = Engine.Runner.run cfg in
  let vm_result = Engine.Result.single result in
  Printf.eprintf "completed in %.1f simulated seconds, %d pages migrated\n"
    vm_result.Engine.Result.completion vm_result.Engine.Result.migrations
