(* Consolidated workloads: two virtual machines share AMD48, each on
   half of the NUMA nodes (the Figure 8 setup), with and without
   per-VM NUMA policies.

   dune exec examples/consolidation.exe *)

let app name =
  match Workloads.Catalogue.find name with
  | Some app -> app
  | None -> failwith ("catalogue is missing " ^ name)

let run_pair policy_a policy_b =
  let vms =
    [
      Engine.Config.vm ~threads:24 ~home_nodes:[| 0; 1; 2; 3 |] ~policy:policy_a (app "cg.C");
      Engine.Config.vm ~threads:24 ~home_nodes:[| 4; 5; 6; 7 |] ~policy:policy_b (app "sp.C");
    ]
  in
  Engine.Runner.run (Engine.Config.make ~seed:3 ~mode:Engine.Config.Xen_plus vms)

let () =
  print_endline "cg.C and sp.C colocated, 24 vCPUs each, disjoint node halves";
  print_newline ();
  (* Baseline: both VMs keep the round-1G default. *)
  let base = run_pair Policies.Spec.round_1g Policies.Spec.round_1g in
  Format.printf "both VMs on round-1G (Xen+ default):@.%a@.@." Engine.Result.pp base;
  (* Each VM selects its best policy (Table 4) through the hypercall:
     first-touch for cg.C, round-4K/Carrefour for sp.C. *)
  let best = run_pair Policies.Spec.first_touch Policies.Spec.round_4k_carrefour in
  Format.printf "per-VM best policies (first-touch | round-4k/carrefour):@.%a@.@."
    Engine.Result.pp best;
  List.iter
    (fun name ->
      Format.printf "%-6s improvement: %.2fx@." name
        (Engine.Result.completion base name /. Engine.Result.completion best name))
    [ "cg.C"; "sp.C" ]
