(* Quickstart: run one application on the simulated AMD48 machine in a
   Xen domU, under Xen's default policy and under the policy the
   hypercall interface makes possible.

   dune exec examples/quickstart.exe *)

let () =
  (* cg.C: a thread-local NPB kernel.  Under Xen's stock round-1G
     placement most accesses are remote; the paper's interface lets the
     hypervisor run first-touch instead, restoring locality without
     exposing the NUMA topology to the guest. *)
  let app =
    match Workloads.Catalogue.find "cg.C" with
    | Some app -> app
    | None -> failwith "catalogue is missing cg.C"
  in
  Format.printf "application: %a@.@." Workloads.App.pp app;
  let run policy =
    let vm = Engine.Config.vm ~threads:48 ~policy app in
    let cfg = Engine.Config.make ~seed:1 ~mode:Engine.Config.Xen_plus [ vm ] in
    Engine.Runner.run cfg
  in
  let stock = run Policies.Spec.round_1g in
  let first_touch = run Policies.Spec.first_touch in
  Format.printf "Xen+ with the stock round-1G placement:@.  %a@.@." Engine.Result.pp stock;
  Format.printf "Xen+ with first-touch selected through the hypercall:@.  %a@.@."
    Engine.Result.pp first_touch;
  let t_stock = (Engine.Result.single stock).Engine.Result.completion in
  let t_ft = (Engine.Result.single first_touch).Engine.Result.completion in
  Format.printf "first-touch is %.2fx faster than the round-1G default@." (t_stock /. t_ft)
