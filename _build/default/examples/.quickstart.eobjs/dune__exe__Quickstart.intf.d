examples/quickstart.mli:
