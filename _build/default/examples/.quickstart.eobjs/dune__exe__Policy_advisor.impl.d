examples/policy_advisor.ml: Array Engine Float Format List Policies Sys Workloads
