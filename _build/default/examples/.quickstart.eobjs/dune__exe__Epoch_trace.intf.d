examples/epoch_trace.mli:
