examples/quickstart.ml: Engine Format Policies Workloads
