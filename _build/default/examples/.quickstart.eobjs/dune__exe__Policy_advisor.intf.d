examples/policy_advisor.mli:
