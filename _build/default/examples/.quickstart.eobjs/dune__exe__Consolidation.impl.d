examples/consolidation.ml: Engine Format List Policies Workloads
