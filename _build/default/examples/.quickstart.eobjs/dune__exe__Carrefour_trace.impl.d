examples/carrefour_trace.ml: Array Format List Numa Policies Printf Sim Xen
