examples/epoch_trace.ml: Array Engine List Policies Printf Sys Workloads
