examples/carrefour_trace.mli:
