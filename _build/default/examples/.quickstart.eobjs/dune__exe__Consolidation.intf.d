examples/consolidation.mli:
