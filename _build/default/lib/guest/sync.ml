module Mcs = struct
  type t = {
    mutable holder : int option;
    queue : int Queue.t;
    in_lock : bool array;  (* thread currently holds or waits *)
  }

  let create ~threads =
    if threads <= 0 then invalid_arg "Mcs.create: threads must be positive";
    { holder = None; queue = Queue.create (); in_lock = Array.make threads false }

  let check t thread =
    if thread < 0 || thread >= Array.length t.in_lock then
      invalid_arg "Mcs: thread out of range"

  let acquire t ~thread =
    check t thread;
    if t.in_lock.(thread) then invalid_arg "Mcs.acquire: thread already holds or waits";
    t.in_lock.(thread) <- true;
    match t.holder with
    | None ->
        t.holder <- Some thread;
        `Acquired
    | Some _ ->
        Queue.add thread t.queue;
        `Queued (Queue.length t.queue - 1)

  let release t ~thread =
    check t thread;
    (match t.holder with
    | Some h when h = thread -> ()
    | Some _ | None -> invalid_arg "Mcs.release: thread is not the holder");
    t.in_lock.(thread) <- false;
    if Queue.is_empty t.queue then begin
      t.holder <- None;
      None
    end
    else begin
      let next = Queue.pop t.queue in
      t.holder <- Some next;
      Some next
    end

  let holder t = t.holder
  let waiters t = Queue.length t.queue
end

type primitive = Futex_sleep | Mcs_spin

let wait_overhead primitive ~context_switch ~ipi =
  match primitive with
  | Futex_sleep -> (2.0 *. context_switch) +. ipi
  | Mcs_spin -> 0.0

let switches_per_event = function Futex_sleep -> 2 | Mcs_spin -> 0
