(** Guest physical frame pool: the guest OS's free list.

    Frames released by a process return to a LIFO free list and are
    eagerly recycled for the next allocation — the behaviour that makes
    the hypervisor blind to reallocation (Figure 4 of the paper): the
    same guest-physical frame moves from one virtual page to another
    without the hypervisor being involved.  Linux zeroes pages on
    release, so all free frames are interchangeable (Section 4.4.2).

    [on_alloc]/[on_release] hooks let the para-virtualized kernel feed
    the {!Pv_queue} (under the same critical section, as the paper's
    design requires). *)

type t

val create :
  frames:int ->
  ?first_fresh:int ->
  ?on_alloc:(Memory.Page.pfn -> unit) ->
  ?on_release:(Memory.Page.pfn -> unit) ->
  unit ->
  t
(** Pool over guest-physical frames [\[0, frames)], all initially
    unallocated ("fresh").  [first_fresh] (default 0) reserves the low
    frames for the kernel and DMA zones: fresh allocations start there,
    mirroring how Linux keeps user pages out of low memory. *)

val frames : t -> int

val alloc : t -> Memory.Page.pfn option
(** Pop the most recently released frame, else the next fresh frame;
    [None] when the guest-physical space is exhausted. *)

val release : t -> Memory.Page.pfn -> unit
(** Return a frame to the free list (zeroing is implicit).
    @raise Invalid_argument on double release or out-of-range frame. *)

val allocated : t -> int
val free_count : t -> int

val recycled : t -> int
(** Allocations served from the free list rather than fresh frames —
    measures how often the Figure-4 reuse pattern occurs. *)

val is_free : t -> Memory.Page.pfn -> bool
