type t = {
  entries : int array;  (* -1 = unmapped *)
  mutable mapped : int;
  mutable faults : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Gpt.create: frames must be positive";
  { entries = Array.make frames (-1); mapped = 0; faults = 0 }

let frames t = Array.length t.entries

let check t vfn =
  if vfn < 0 || vfn >= Array.length t.entries then invalid_arg "Gpt: vfn out of range"

let get t vfn =
  check t vfn;
  let pfn = t.entries.(vfn) in
  if pfn < 0 then None else Some pfn

let map t vfn pfn =
  check t vfn;
  assert (pfn >= 0);
  if t.entries.(vfn) >= 0 then invalid_arg "Gpt.map: vfn already mapped";
  t.entries.(vfn) <- pfn;
  t.mapped <- t.mapped + 1

let unmap t vfn =
  check t vfn;
  let pfn = t.entries.(vfn) in
  if pfn < 0 then None
  else begin
    t.entries.(vfn) <- -1;
    t.mapped <- t.mapped - 1;
    Some pfn
  end

let mapped_count t = t.mapped
let fault_count t = t.faults

let touch t vfn ~alloc =
  check t vfn;
  let pfn = t.entries.(vfn) in
  if pfn >= 0 then Some pfn
  else begin
    t.faults <- t.faults + 1;
    match alloc () with
    | None -> None
    | Some pfn ->
        map t vfn pfn;
        Some pfn
  end
