type kind = Glibc | Streamflow | Scalloc

type t = { kind : kind; release_period : float option }

let glibc = { kind = Glibc; release_period = Some 0.01 }

let streamflow ~release_period =
  if release_period <= 0.0 then invalid_arg "Alloc_model.streamflow: bad period";
  { kind = Streamflow; release_period = Some release_period }

let scalloc = { kind = Scalloc; release_period = None }

let releases_in t ~duration =
  assert (duration >= 0.0);
  match t.release_period with
  | None -> 0
  | Some period -> int_of_float (duration /. period)

let pp fmt t =
  let name = match t.kind with Glibc -> "glibc" | Streamflow -> "streamflow" | Scalloc -> "scalloc" in
  match t.release_period with
  | None -> Format.fprintf fmt "%s (no page releases)" name
  | Some p -> Format.fprintf fmt "%s (release every %a)" name Sim.Units.pp_seconds p
