(** A guest process: a virtual address space over the guest's shared
    physical frame pool.

    Ties {!Gpt} lazy allocation to the {!Pfn_pool}: the first touch of
    a virtual page takes a guest fault and grabs a (possibly recycled)
    physical frame; freeing a virtual range returns the frames to the
    pool.  With the pool's hooks wired to a {!Pv_queue}, this is the
    full guest half of the paper's first-touch machinery. *)

type t

val create : pid:int -> vframes:int -> pool:Pfn_pool.t -> t
(** Process with a virtual address space of [vframes] frames, backed by
    the (shared) pool. *)

val pid : t -> int

val gpt : t -> Gpt.t

val touch : t -> Memory.Page.vfn -> Memory.Page.pfn option
(** Resolve an access to [vfn], allocating on first touch; [None] when
    the pool is exhausted. *)

val free_range : t -> first:Memory.Page.vfn -> count:int -> int
(** munmap: unmap the virtual range and release its physical frames to
    the pool; returns the number of frames released. *)

val resident : t -> int
(** Mapped (resident) frames. *)
