(** User-level allocator behaviour.

    What matters to the hypervisor is how often the allocator returns
    physical pages to the guest OS:

    - the default glibc allocator caches freed memory and releases
      pages rarely;
    - the Streamflow allocator (used by Mosbench for scalability)
      continuously calls mmap/munmap — wrmem releases a physical page
      every 15 µs — which stresses the release hypercall and motivates
      batching (Section 4.2.3);
    - scalloc/llalloc-style allocators (the paper's future work) almost
      never release pages. *)

type kind =
  | Glibc
  | Streamflow
  | Scalloc

type t = {
  kind : kind;
  release_period : float option;
      (** Mean seconds between page releases to the guest OS, [None]
          when releases are negligible. *)
}

val glibc : t
(** Releases roughly once per 10 ms of execution. *)

val streamflow : release_period:float -> t
(** mmap/munmap churn at the given period (wrmem: 15e-6). *)

val scalloc : t
(** Virtually never releases. *)

val releases_in : t -> duration:float -> int
(** Expected number of page releases over [duration] seconds. *)

val pp : Format.formatter -> t -> unit
