type t = { pid : int; gpt : Gpt.t; pool : Pfn_pool.t }

let create ~pid ~vframes ~pool = { pid; gpt = Gpt.create ~frames:vframes; pool }

let pid t = t.pid

let gpt t = t.gpt

let touch t vfn = Gpt.touch t.gpt vfn ~alloc:(fun () -> Pfn_pool.alloc t.pool)

let free_range t ~first ~count =
  assert (count >= 0);
  let released = ref 0 in
  for vfn = first to first + count - 1 do
    match Gpt.unmap t.gpt vfn with
    | Some pfn ->
        Pfn_pool.release t.pool pfn;
        incr released
    | None -> ()
  done;
  !released

let resident t = Gpt.mapped_count t.gpt
