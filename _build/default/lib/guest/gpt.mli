(** Guest page table: per-process mapping of virtual frame numbers to
    guest-physical frame numbers, with Linux's lazy allocation.

    Creating a mapping does not allocate physical memory; the first
    access to a virtual page takes a guest page fault, and the fault
    handler allocates a physical frame.  This guest-level laziness is
    what the hypervisor cannot see — the motivation for the paper's
    external interface (Figure 4). *)

type t

val create : frames:int -> t
(** Address space of [frames] virtual frames, all unmapped. *)

val frames : t -> int

val get : t -> Memory.Page.vfn -> Memory.Page.pfn option

val map : t -> Memory.Page.vfn -> Memory.Page.pfn -> unit
(** @raise Invalid_argument if the vfn is already mapped. *)

val unmap : t -> Memory.Page.vfn -> Memory.Page.pfn option
(** Remove the mapping, returning the physical frame it held. *)

val mapped_count : t -> int

val fault_count : t -> int
(** Guest page faults taken so far (first touches). *)

val touch :
  t -> Memory.Page.vfn -> alloc:(unit -> Memory.Page.pfn option) -> Memory.Page.pfn option
(** [touch t vfn ~alloc] resolves an access: returns the mapped frame,
    or on first touch calls [alloc] to obtain one, maps it and counts a
    guest fault.  [None] only if [alloc] fails (out of memory). *)
