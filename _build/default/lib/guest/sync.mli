(** Guest synchronization primitives.

    Two implementations of mutual exclusion matter to the paper:

    - futex-backed pthread mutexes/condvars: a waiting thread sleeps
      (intentional context switch); waking it requires an IPI, which
      costs 0.9 µs native but 10.9 µs in guest mode (Section 5.3.2);
    - MCS spin locks: waiters spin on a per-waiter flag in a queue and
      never leave the CPU, so no context switch and no IPI — the
      "Xen+" mitigation applied to facesim and streamcluster.

    {!Mcs} is a faithful queue-lock structure over simulated thread
    ids; {!wait_overhead} is the cost model the engine charges per
    blocking event. *)

module Mcs : sig
  type t

  val create : threads:int -> t

  val acquire : t -> thread:int -> [ `Acquired | `Queued of int ]
  (** Enqueue the thread; [`Acquired] if the lock was free,
      [`Queued pos] with the 0-based queue position otherwise.
      @raise Invalid_argument if the thread already holds or waits. *)

  val release : t -> thread:int -> int option
  (** Release by the holder; returns the thread that now holds the
      lock, if any.
      @raise Invalid_argument if [thread] is not the holder. *)

  val holder : t -> int option
  val waiters : t -> int
end

type primitive =
  | Futex_sleep  (** pthread mutex/condvar: sleep + IPI wake-up. *)
  | Mcs_spin     (** spin loop: never leaves the CPU. *)

val wait_overhead :
  primitive -> context_switch:float -> ipi:float -> float
(** Time charged per blocking synchronization event: two context
    switches (sleep and wake) plus the wake-up IPI for [Futex_sleep];
    zero for [Mcs_spin]. *)

val switches_per_event : primitive -> int
(** Intentional context switches generated per blocking event (2 for
    futex, 0 for spin) — drives the Table 2 context-switch column. *)
