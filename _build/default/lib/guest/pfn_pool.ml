type state = Fresh | Allocated | Free

type t = {
  states : state array;
  mutable free_stack : Memory.Page.pfn list;
  mutable next_fresh : int;
  mutable allocated : int;
  mutable recycled : int;
  on_alloc : Memory.Page.pfn -> unit;
  on_release : Memory.Page.pfn -> unit;
}

let nop _ = ()

let create ~frames ?(first_fresh = 0) ?(on_alloc = nop) ?(on_release = nop) () =
  if frames <= 0 then invalid_arg "Pfn_pool.create: frames must be positive";
  if first_fresh < 0 || first_fresh >= frames then
    invalid_arg "Pfn_pool.create: first_fresh out of range";
  {
    states = Array.make frames Fresh;
    free_stack = [];
    next_fresh = first_fresh;
    allocated = 0;
    recycled = 0;
    on_alloc;
    on_release;
  }

let frames t = Array.length t.states

let alloc t =
  match t.free_stack with
  | pfn :: rest ->
      t.free_stack <- rest;
      t.states.(pfn) <- Allocated;
      t.allocated <- t.allocated + 1;
      t.recycled <- t.recycled + 1;
      t.on_alloc pfn;
      Some pfn
  | [] ->
      if t.next_fresh >= Array.length t.states then None
      else begin
        let pfn = t.next_fresh in
        t.next_fresh <- t.next_fresh + 1;
        t.states.(pfn) <- Allocated;
        t.allocated <- t.allocated + 1;
        t.on_alloc pfn;
        Some pfn
      end

let release t pfn =
  if pfn < 0 || pfn >= Array.length t.states then invalid_arg "Pfn_pool.release: out of range";
  match t.states.(pfn) with
  | Allocated ->
      t.states.(pfn) <- Free;
      t.free_stack <- pfn :: t.free_stack;
      t.allocated <- t.allocated - 1;
      t.on_release pfn
  | Free -> invalid_arg "Pfn_pool.release: double release"
  | Fresh -> invalid_arg "Pfn_pool.release: frame was never allocated"

let allocated t = t.allocated

let free_count t = List.length t.free_stack

let recycled t = t.recycled

let is_free t pfn =
  if pfn < 0 || pfn >= Array.length t.states then invalid_arg "Pfn_pool.is_free: out of range";
  t.states.(pfn) = Free
