lib/guest/tlb.ml:
