lib/guest/gpt.ml: Array
