lib/guest/pfn_pool.mli: Memory
