lib/guest/alloc_model.mli: Format
