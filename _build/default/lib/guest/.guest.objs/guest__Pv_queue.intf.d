lib/guest/pv_queue.mli: Memory
