lib/guest/gpt.mli: Memory
