lib/guest/pv_queue.ml: Array Hashtbl Memory
