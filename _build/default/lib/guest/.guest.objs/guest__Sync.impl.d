lib/guest/sync.ml: Array Queue
