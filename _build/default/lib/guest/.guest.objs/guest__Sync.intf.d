lib/guest/sync.mli:
