lib/guest/process.mli: Gpt Memory Pfn_pool
