lib/guest/tlb.mli:
