lib/guest/alloc_model.ml: Format Sim
