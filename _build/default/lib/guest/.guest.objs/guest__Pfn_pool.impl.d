lib/guest/pfn_pool.ml: Array List Memory
