lib/guest/process.ml: Gpt Pfn_pool
