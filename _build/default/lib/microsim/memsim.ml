type params = {
  cpu_overhead_ns : float;
  dram_service_ns : float;  (* access latency seen by the request *)
  dram_occupancy_ns : float;  (* bank busy time (tRC) per request *)
  dram_banks : int;
  hop_wire_ns : float;
  flit_bytes : float;
}

(* Calibration (AMD48, 2.2 GHz: 1 cycle = 0.4545 ns):
   - idle local latency = cpu_overhead + dram_service = 70.9 ns
     (Table 3's 156 cycles);
   - each hop adds two wire traversals plus the 64 B response
     serialization on the link;
   - 48 window-1 agents saturate the bank pool: response converges to
     agents * dram_service / banks = 48 * 52 / 8 = 312 ns, Table 3's
     697-cycle contended column. *)
let default =
  {
    cpu_overhead_ns = 18.9;
    dram_service_ns = 52.0;
    dram_occupancy_ns = 59.0;
    dram_banks = 8;
    hop_wire_ns = 18.0;
    flit_bytes = 64.0;
  }

type result = {
  requests : int;
  mean_latency_ns : float;
  p95_latency_ns : float;
  throughput_gib_s : float;
  duration_s : float;
  per_agent_mean_ns : float array;
}

(* FIFO resource: a request arriving at [t] starts service no earlier
   than the resource's next-free instant; reserving advances it.
   [occupancy] (>= [service]) keeps the resource busy longer than the
   request itself takes — a DRAM bank's cycle time exceeds its access
   latency. *)
type resource = { mutable next_free : float }

let reserve ?occupancy resource ~at ~service =
  let start = Float.max at resource.next_free in
  resource.next_free <- start +. Option.value occupancy ~default:service;
  start +. service

type agent = {
  src : int;
  dst : int;
  mutable left : int;  (* requests still to issue *)
  mutable inflight : int;
}

type event = Issue of int  (* agent index *)

let run ?(params = default) ?(seed = 1) ~topo ~agents ~window ~requests_per_agent () =
  if window <= 0 then invalid_arg "Memsim.run: window must be positive";
  if requests_per_agent <= 0 then invalid_arg "Memsim.run: empty request budget";
  let rng = Sim.Rng.create ~seed in
  let links = Numa.Topology.links topo in
  let link_res = Array.map (fun _ -> { next_free = 0.0 }) links in
  let banks =
    Array.init (Numa.Topology.node_count topo) (fun _ ->
        Array.init params.dram_banks (fun _ -> { next_free = 0.0 }))
  in
  let agents =
    Array.of_list
      (List.map (fun (src, dst) -> { src; dst; left = requests_per_agent; inflight = 0 }) agents)
  in
  let q : event Sim.Eventq.t = Sim.Eventq.create () in
  let latencies = ref [] in
  let agent_sum = Array.make (Array.length agents) 0.0 in
  let agent_count = Array.make (Array.length agents) 0 in
  let n_requests = ref 0 in
  let total_bytes = ref 0.0 in
  let last_completion = ref 0.0 in
  (* Serialization time of one cache line on a link. *)
  let ser (l : Numa.Topology.link) =
    params.flit_bytes /. (l.Numa.Topology.gib_per_s *. (1024.0 ** 3.0)) *. 1e9
  in
  (* Walk one request through the system, reserving each FIFO stage in
     event order; returns the completion time (ns). *)
  let service agent ~at =
    let t = ref (at +. params.cpu_overhead_ns) in
    (* request to the controller: small command, wire delay only *)
    List.iter
      (fun (l : Numa.Topology.link) ->
        ignore l;
        t := !t +. params.hop_wire_ns)
      (Numa.Topology.route topo agent.src agent.dst);
    (* memory controller: pick the earliest-free bank *)
    let pool = banks.(agent.dst) in
    let best = ref pool.(0) in
    Array.iter (fun bank -> if bank.next_free < !best.next_free then best := bank) pool;
    t := reserve !best ~at:!t ~service:params.dram_service_ns
           ~occupancy:params.dram_occupancy_ns;
    (* response: the cache line serializes on every link of the way
       back and pays the wire delay per hop *)
    List.iter
      (fun (l : Numa.Topology.link) ->
        t := reserve link_res.(l.Numa.Topology.link_id) ~at:!t ~service:(ser l);
        t := !t +. params.hop_wire_ns)
      (Numa.Topology.route topo agent.dst agent.src);
    !t
  in
  let issue i ~at =
    let agent = agents.(i) in
    if agent.left > 0 then begin
      agent.left <- agent.left - 1;
      agent.inflight <- agent.inflight + 1;
      let done_at = service agent ~at in
      latencies := (done_at -. at) :: !latencies;
      agent_sum.(i) <- agent_sum.(i) +. (done_at -. at);
      agent_count.(i) <- agent_count.(i) + 1;
      incr n_requests;
      total_bytes := !total_bytes +. params.flit_bytes;
      if done_at > !last_completion then last_completion := done_at;
      Sim.Eventq.schedule q ~at:done_at (Issue i)
    end
  in
  (* Prime each agent's window with a small deterministic stagger so
     simultaneous starts do not line up artificially. *)
  Array.iteri
    (fun i _ ->
      for _ = 1 to window do
        Sim.Eventq.schedule q ~at:(Sim.Rng.float rng 5.0) (Issue i)
      done)
    agents;
  let rec drain () =
    match Sim.Eventq.next q with
    | Some (at, Issue i) ->
        agents.(i).inflight <- agents.(i).inflight - 1;
        issue i ~at;
        drain ()
    | None -> ()
  in
  (* The priming events carry inflight 0; normalize by pre-counting. *)
  Array.iter (fun a -> a.inflight <- window) agents;
  drain ();
  let samples = Array.of_list !latencies in
  let duration_s = !last_completion *. 1e-9 in
  {
    requests = !n_requests;
    mean_latency_ns = Sim.Stats.mean samples;
    p95_latency_ns = (if Array.length samples = 0 then 0.0 else Sim.Stats.percentile samples 95.0);
    throughput_gib_s =
      (if duration_s > 0.0 then !total_bytes /. (1024.0 ** 3.0) /. duration_s else 0.0);
    duration_s;
    per_agent_mean_ns =
      Array.mapi
        (fun i sum -> if agent_count.(i) = 0 then 0.0 else sum /. float_of_int agent_count.(i))
        agent_sum;
  }

(* Sources for the contended probes: agents spread round-robin over all
   nodes (6 per node fills the machine), like 48 threads on AMD48. *)
let spread_agents topo ~threads ~dst =
  List.init threads (fun i -> (i mod Numa.Topology.node_count topo, dst))

let latency_probe ?(params = default) ~topo ~threads ~hops () =
  if hops < 0 || hops > Numa.Topology.diameter topo then invalid_arg "Memsim.latency_probe: hops";
  let dst = 0 in
  if threads = 1 then begin
    (* idle probe: one agent at the requested distance *)
    let src =
      let rec find n =
        if n >= Numa.Topology.node_count topo then invalid_arg "no node at that distance"
        else if Numa.Topology.distance topo n dst = hops then n
        else find (n + 1)
      in
      find 0
    in
    run ~params ~topo ~agents:[ (src, dst) ] ~window:1 ~requests_per_agent:2000 ()
  end
  else begin
    (* contended probe: [threads] agents spread over the machine, all
       hammering [dst]; report the latency of the agents sitting at the
       requested hop distance. *)
    let agents = spread_agents topo ~threads ~dst in
    let all = run ~params ~topo ~agents ~window:1 ~requests_per_agent:2000 () in
    let sum = ref 0.0 and count = ref 0 in
    List.iteri
      (fun i (src, dst) ->
        if Numa.Topology.distance topo src dst = hops then begin
          sum := !sum +. all.per_agent_mean_ns.(i);
          incr count
        end)
      agents;
    if !count = 0 then invalid_arg "Memsim.latency_probe: no agent at that distance";
    { all with mean_latency_ns = !sum /. float_of_int !count }
  end

let bandwidth_probe ?(params = default) ~topo ~threads ~window () =
  let agents = List.init threads (fun _ -> (0, 0)) in
  run ~params ~topo ~agents ~window ~requests_per_agent:4000 ()

let random_access_efficiency ?(params = default) ~topo () =
  let result = bandwidth_probe ~params ~topo ~threads:6 ~window:8 () in
  result.throughput_gib_s /. Numa.Topology.controller_gib_per_s topo
