(** Request-level discrete-event simulation of the memory system.

    Where the engine uses a closed-form latency model (calibrated on
    the paper's Table 3), this module {e derives} those numbers from
    first principles: CPU agents issue cache-line requests that
    traverse HyperTransport links (wire delay + serialization on a
    FIFO link server), queue at the destination memory controller
    (a bank pool), and return.  A closed-loop agent with a window of 1
    is the classical pointer-chasing latency probe; wider windows
    exercise memory-level parallelism and measure achievable
    throughput — which is how the engine's "55 % of streaming peak"
    random-access efficiency constant is obtained.

    Everything is deterministic given the seed; the event queue is
    {!Sim.Eventq}. *)

type params = {
  cpu_overhead_ns : float;
      (** On-die time per miss: L1/L2/L3 lookup, miss handling. *)
  dram_service_ns : float;  (** Access latency contributed to the request. *)
  dram_occupancy_ns : float;
      (** Bank busy time per request (the DRAM cycle time tRC); at
          least [dram_service_ns]. *)
  dram_banks : int;  (** Parallel banks per controller. *)
  hop_wire_ns : float;  (** Wire/router latency per link traversal. *)
  flit_bytes : float;  (** Transfer unit on links (a cache line). *)
}

val default : params
(** Calibrated so the latency probes land on Table 3 (within a few
    percent) on the AMD48 topology. *)

type result = {
  requests : int;
  mean_latency_ns : float;
  p95_latency_ns : float;
  throughput_gib_s : float;  (** Payload delivered per second. *)
  duration_s : float;  (** Simulated time covered. *)
  per_agent_mean_ns : float array;
}

val run :
  ?params:params ->
  ?seed:int ->
  topo:Numa.Topology.t ->
  agents:(Numa.Topology.node * Numa.Topology.node) list ->
  window:int ->
  requests_per_agent:int ->
  unit ->
  result
(** [run ~topo ~agents ~window ~requests_per_agent ()] — each
    [(cpu_node, mem_node)] pair is one closed-loop agent keeping
    [window] requests outstanding against [mem_node]'s controller.
    Simulates until every agent completed its request budget. *)

val latency_probe :
  ?params:params -> topo:Numa.Topology.t -> threads:int -> hops:int -> unit -> result
(** The Table 3 experiment: [threads] window-1 agents all targeting one
    node at the given hop distance (agent CPUs sit on a node [hops]
    away; 0 = local). *)

val bandwidth_probe :
  ?params:params -> topo:Numa.Topology.t -> threads:int -> window:int -> unit -> result
(** Aggregate achievable throughput of one controller under
    memory-level parallelism: [threads] local agents with [window]
    outstanding requests each. *)

val random_access_efficiency : ?params:params -> topo:Numa.Topology.t -> unit -> float
(** Achievable random-access throughput of one controller divided by
    its streaming peak — the engine's bandwidth-clamp constant. *)
