lib/microsim/memsim.mli: Numa
