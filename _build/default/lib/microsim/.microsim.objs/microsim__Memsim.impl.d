lib/microsim/memsim.ml: Array Float List Numa Option Sim
