type profile = {
  imbalance : float;
  interconnect_load : float;
  local_fraction : float;
  class_ : Workloads.App.imbalance_class;
}

type recommendation = {
  profile : profile;
  policy : Policies.Spec.t;
  rationale : string;
}

let classify ~imbalance =
  if imbalance > 1.30 then Workloads.App.High
  else if imbalance >= 0.85 then Workloads.App.Moderate
  else Workloads.App.Low

let profile ?(seed = 42) ?(window = 5.0) ~mode app =
  let vm = Config.vm ~policy:Policies.Spec.first_touch app in
  let cfg = Config.make ~seed ~max_epochs:(int_of_float (window /. 0.1)) ~mode [ vm ] in
  let result = Runner.run cfg in
  let vm_result =
    match result.Result.vms with [ v ] -> v | _ -> assert false
  in
  {
    imbalance = result.Result.imbalance;
    interconnect_load = result.Result.interconnect_load;
    local_fraction = vm_result.Result.local_fraction;
    class_ = classify ~imbalance:result.Result.imbalance;
  }

let recommend ?seed ?window ~mode app =
  let profile = profile ?seed ?window ~mode app in
  let policy, rationale =
    match profile.class_ with
    | Workloads.App.High ->
        ( Policies.Spec.round_4k_carrefour,
          "high imbalance under first-touch: a single node's controller saturates \
           (master-slave initialisation); interleave the pages and let Carrefour \
           recover locality where it can" )
    | Workloads.App.Moderate ->
        ( Policies.Spec.first_touch_carrefour,
          "moderate imbalance: first-touch locality is mostly right; Carrefour \
           smooths the overloaded spots" )
    | Workloads.App.Low ->
        ( Policies.Spec.first_touch,
          "balanced accesses with high locality: first-touch is ideal; dynamic \
           migration could only be misled by transient remote bursts" )
  in
  { profile; policy; rationale }

let pp_recommendation fmt r =
  Format.fprintf fmt
    "@[<v>profile: imbalance %.0f%%, interconnect %.0f%%, local %.0f%% -> class %s@,\
     recommend: %s@,because: %s@]"
    (100.0 *. r.profile.imbalance)
    (100.0 *. r.profile.interconnect_load)
    (100.0 *. r.profile.local_fraction)
    (Workloads.App.class_name r.profile.class_)
    (Policies.Spec.name r.policy) r.rationale
