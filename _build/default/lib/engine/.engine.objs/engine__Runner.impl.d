lib/engine/runner.ml: Array Bytes Config Float Guest Hashtbl List Memory Numa Policies Result Sim Workloads Xen
