lib/engine/result.ml: Format List
