lib/engine/config.mli: Numa Policies Workloads
