lib/engine/advisor.mli: Config Format Policies Workloads
