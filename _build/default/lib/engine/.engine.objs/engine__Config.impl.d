lib/engine/config.ml: List Numa Policies Workloads
