lib/engine/advisor.ml: Config Format Policies Result Runner Workloads
