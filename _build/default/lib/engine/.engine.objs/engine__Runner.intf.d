lib/engine/runner.mli: Config Result
