lib/engine/result.mli: Format
