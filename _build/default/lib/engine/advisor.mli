(** Automatic NUMA policy selection — the paper's closing open problem
    ("automatically selecting the most efficient NUMA policy in an
    hypervisor ... remains an open subject").

    The advisor runs a short profiling window under the first-touch
    policy and applies the paper's own Section 3.5.2 analysis:

    - imbalance above 130 %: master–slave memory; balancing is needed —
      recommend round-4K, with Carrefour to recover some locality;
    - imbalance between 85 and 130 %: first-touch locality is good but
      the load needs smoothing — recommend first-touch/Carrefour;
    - imbalance below 85 %: thread-local memory — recommend
      first-touch (Carrefour would only be misled by transient
      bursts). *)

type profile = {
  imbalance : float;
  interconnect_load : float;
  local_fraction : float;
  class_ : Workloads.App.imbalance_class;
}

type recommendation = {
  profile : profile;
  policy : Policies.Spec.t;
  rationale : string;
}

val classify : imbalance:float -> Workloads.App.imbalance_class
(** Table 1's thresholds: ≥ 130 % High, ≥ 85 % Moderate, else Low. *)

val profile :
  ?seed:int -> ?window:float -> mode:Config.mode -> Workloads.App.t -> profile
(** Profile the application for a [window] (default 5 s simulated)
    under first-touch. *)

val recommend :
  ?seed:int -> ?window:float -> mode:Config.mode -> Workloads.App.t -> recommendation

val pp_recommendation : Format.formatter -> recommendation -> unit
