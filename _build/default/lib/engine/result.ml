type vm_result = {
  app_name : string;
  policy : string;
  completion : float;
  compute_time : float;
  io_overhead : float;
  sync_overhead : float;
  virt_overhead : float;
  release_overhead : float;
  faults : int;
  migrations : int;
  avg_latency_cycles : float;
  local_fraction : float;
}

type t = {
  vms : vm_result list;
  imbalance : float;
  interconnect_load : float;
  epochs : int;
}

let completion t name =
  match List.find_opt (fun vm -> vm.app_name = name) t.vms with
  | Some vm -> vm.completion
  | None -> raise Not_found

let single t =
  match t.vms with
  | [ vm ] -> vm
  | _ -> invalid_arg "Result.single: run had several VMs"

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun vm ->
      Format.fprintf fmt
        "%-14s %-22s %7.2f s (compute %6.2f, io %5.2f, sync %5.2f, virt %5.2f, rel %5.2f) \
         lat %5.0f cy, local %4.1f%%, %d migrations@,"
        vm.app_name vm.policy vm.completion vm.compute_time vm.io_overhead vm.sync_overhead
        vm.virt_overhead vm.release_overhead vm.avg_latency_cycles
        (100.0 *. vm.local_fraction) vm.migrations)
    t.vms;
  Format.fprintf fmt "imbalance %.0f%%, interconnect %.0f%%, %d epochs@]"
    (100.0 *. t.imbalance)
    (100.0 *. t.interconnect_load)
    t.epochs
