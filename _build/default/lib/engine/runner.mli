(** The epoch simulator.

    Advances simulated time in fixed epochs.  Per epoch, each running
    thread executes as many instructions as its CPU share and current
    average memory latency allow; its memory accesses are distributed
    over the application's pages according to its access pattern,
    resolved through the guest page table and the hypervisor page
    table to NUMA nodes, and charged to the memory controllers and
    interconnect links.  Contention measured in one epoch feeds the
    latency of the next (one-epoch lag fixed point).  Carrefour, when
    active, receives per-epoch hot-page samples and migrates pages
    through the internal interface.  Completion time folds in the
    virtualization costs (hypercalls, faults, migrations), the I/O
    path overhead and the page-release churn. *)

val run : Config.t -> Result.t
(** Simulate the configuration to completion (or [max_epochs]). *)

val access_bytes : float
(** Bytes charged per memory access (one cache line). *)
