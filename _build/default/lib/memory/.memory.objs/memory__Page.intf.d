lib/memory/page.mli:
