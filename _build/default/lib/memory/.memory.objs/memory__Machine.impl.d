lib/memory/machine.ml: Array Buddy Numa Page
