lib/memory/page.ml:
