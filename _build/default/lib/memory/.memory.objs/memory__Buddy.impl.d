lib/memory/buddy.ml: Array Bytes Char Int Set
