lib/memory/machine.mli: Numa Page
