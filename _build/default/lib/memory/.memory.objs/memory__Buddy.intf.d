lib/memory/buddy.mli:
