type mfn = int
type pfn = int
type vfn = int

let size_4k = 4096
let size_2m = 2 * 1024 * 1024
let size_1g = 1024 * 1024 * 1024
let frames_per_2m = size_2m / size_4k
let frames_per_1g = size_1g / size_4k
let order_4k = 0
let order_2m = 9
let order_1g = 18
let frames_of_bytes ~bytes = (bytes + size_4k - 1) / size_4k
