lib/policies/internal.ml: Memory Xen
