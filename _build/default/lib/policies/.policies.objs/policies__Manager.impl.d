lib/policies/manager.ml: Array Carrefour Guest Internal List Memory Numa Sim Spec Xen
