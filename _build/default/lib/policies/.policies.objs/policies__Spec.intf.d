lib/policies/spec.mli: Format
