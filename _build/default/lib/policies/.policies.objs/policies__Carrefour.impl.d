lib/policies/carrefour.ml: Array Float Hashtbl Internal List Memory Numa Sim Xen
