lib/policies/carrefour.mli: Memory Numa Sim Xen
