lib/policies/internal.mli: Memory Numa Xen
