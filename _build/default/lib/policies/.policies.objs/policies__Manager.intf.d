lib/policies/manager.mli: Carrefour Guest Memory Numa Sim Spec Xen
