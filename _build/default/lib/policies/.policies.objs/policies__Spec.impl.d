lib/policies/spec.ml: Format Printf String
