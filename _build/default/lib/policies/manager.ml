type stats = {
  mutable populated_1g : int;
  mutable populated_2m : int;
  mutable populated_4k : int;
  mutable ops_received : int;
  mutable invalidated : int;
  mutable left_in_place : int;
  mutable first_touch_maps : int;
  mutable policy_switches : int;
}

type t = {
  system : Xen.System.t;
  domain : Xen.Domain.t;
  mutable spec : Spec.t;
  rng : Sim.Rng.t;
  stats : stats;
  mutable rr_cursor : int;  (* round-robin cursor over home nodes *)
  mutable carrefour : Carrefour.System_component.t option;
  carrefour_config : Carrefour.User_component.config;
}

let fresh_stats () =
  {
    populated_1g = 0;
    populated_2m = 0;
    populated_4k = 0;
    ops_received = 0;
    invalidated = 0;
    left_in_place = 0;
    first_touch_maps = 0;
    policy_switches = 0;
  }

let next_home_node t =
  let home = t.domain.Xen.Domain.home_nodes in
  let node = home.(t.rr_cursor mod Array.length home) in
  t.rr_cursor <- t.rr_cursor + 1;
  node

let map_or_fail t pfn node =
  match Internal.map_page t.system t.domain ~pfn ~node with
  | Ok _ -> ()
  | Error `Enomem -> invalid_arg "Manager: machine out of memory while populating domain"

(* Eager 4 KiB round-robin over the home nodes (Linux interleave). *)
let populate_round_4k t =
  for pfn = 0 to t.domain.Xen.Domain.mem_frames - 1 do
    map_or_fail t pfn (next_home_node t);
    t.stats.populated_4k <- t.stats.populated_4k + 1
  done

(* Xen's historical allocator: 1 GiB regions round-robin over the home
   nodes, falling back to 2 MiB then 4 KiB chunks under fragmentation.
   The first and last guest GiB are always fragmented (BIOS and I/O
   holes), so they take the fine-grained path. *)
let populate_round_1g t =
  let machine = t.system.Xen.System.machine in
  let frames = t.domain.Xen.Domain.mem_frames in
  let scale = Memory.Machine.page_scale machine in
  let per_1g = max 1 (Memory.Page.frames_per_1g / scale) in
  let per_2m = max 1 (Memory.Page.frames_per_2m / scale) in
  let order_1g = Memory.Machine.order_1g machine in
  let order_2m = Memory.Machine.order_2m machine in
  let spans = (frames + per_1g - 1) / per_1g in
  let map_block pfn0 mfn0 count =
    for i = 0 to count - 1 do
      Xen.P2m.set t.domain.Xen.Domain.p2m (pfn0 + i) ~mfn:(mfn0 + i) ~writable:true
    done
  in
  let populate_4k pfn0 count =
    for i = 0 to count - 1 do
      map_or_fail t (pfn0 + i) (next_home_node t);
      t.stats.populated_4k <- t.stats.populated_4k + 1
    done
  in
  let populate_2m pfn0 count =
    let chunks = count / per_2m in
    for c = 0 to chunks - 1 do
      let pfn = pfn0 + (c * per_2m) in
      match Memory.Machine.alloc_on machine ~node:(next_home_node t) ~order:order_2m with
      | Some mfn ->
          Memory.Machine.split_block machine ~mfn ~order:order_2m;
          map_block pfn mfn per_2m;
          t.stats.populated_2m <- t.stats.populated_2m + 1
      | None -> populate_4k pfn per_2m
    done;
    let rest = count mod per_2m in
    if rest > 0 then populate_4k (pfn0 + (chunks * per_2m)) rest
  in
  for g = 0 to spans - 1 do
    let pfn0 = g * per_1g in
    let count = min per_1g (frames - pfn0) in
    let fragmented = g = 0 || g = spans - 1 || count < per_1g in
    if fragmented then populate_2m pfn0 count
    else begin
      match Memory.Machine.alloc_on machine ~node:(next_home_node t) ~order:order_1g with
      | Some mfn ->
          Memory.Machine.split_block machine ~mfn ~order:order_1g;
          map_block pfn0 mfn count;
          t.stats.populated_1g <- t.stats.populated_1g + 1
      | None -> populate_2m pfn0 count
    end
  done

let install_fault_handler t =
  t.domain.Xen.Domain.fault_handler <-
    Some
      (fun pfn ~cpu ->
        let node =
          match t.spec.Spec.placement with
          | Spec.First_touch -> Numa.Topology.node_of_cpu t.system.Xen.System.topo cpu
          | Spec.Round_4k | Spec.Round_1g -> next_home_node t
        in
        match Internal.map_page t.system t.domain ~pfn ~node with
        | Ok _ -> t.stats.first_touch_maps <- t.stats.first_touch_maps + 1
        | Error `Enomem -> ())

let make_carrefour t = Carrefour.System_component.create t.system t.domain

let attach ?(carrefour_config = Carrefour.User_component.default_config) system domain ~boot ~rng =
  let t =
    {
      system;
      domain;
      spec = boot;
      rng;
      stats = fresh_stats ();
      rr_cursor = 0;
      carrefour = None;
      carrefour_config;
    }
  in
  (match boot.Spec.placement with
  | Spec.Round_4k -> populate_round_4k t
  | Spec.Round_1g -> populate_round_1g t
  | Spec.First_touch -> ());
  if boot.Spec.carrefour then t.carrefour <- Some (make_carrefour t);
  install_fault_handler t;
  domain.Xen.Domain.policy_name <- Spec.name boot;
  t

let domain t = t.domain
let system t = t.system
let spec t = t.spec
let stats t = t.stats

let charge_hypercall t id time =
  let account = t.domain.Xen.Domain.account in
  account.Xen.Domain.hypercall_count <- account.Xen.Domain.hypercall_count + 1;
  account.Xen.Domain.hypercall_time <- account.Xen.Domain.hypercall_time +. time;
  Xen.Hypercall.record t.domain.Xen.Domain.hypercalls id ~time

let set_policy t new_spec =
  if not (Spec.runtime_selectable new_spec) then
    Error "round-1g is boot-only; the hypercall cannot select it"
  else begin
    charge_hypercall t Xen.Hypercall.Set_numa_policy
      t.system.Xen.System.costs.Xen.Costs.hypercall_entry;
    t.stats.policy_switches <- t.stats.policy_switches + 1;
    t.spec <- new_spec;
    (match (new_spec.Spec.carrefour, t.carrefour) with
    | true, None -> t.carrefour <- Some (make_carrefour t)
    | false, Some _ -> t.carrefour <- None
    | true, Some _ | false, None -> ());
    t.domain.Xen.Domain.policy_name <- Spec.name new_spec;
    Ok ()
  end

let page_ops_hypercall t ops =
  let costs = t.system.Xen.System.costs in
  let n = Array.length ops in
  t.stats.ops_received <- t.stats.ops_received + n;
  let time = ref (costs.Xen.Costs.hypercall_entry +. (float_of_int n *. costs.Xen.Costs.page_op_send)) in
  let first_touch = t.spec.Spec.placement = Spec.First_touch in
  Guest.Pv_queue.replay ops ~f:(fun pfn action ->
      match action with
      | `Invalidate ->
          if first_touch then begin
            match Xen.P2m.invalidate t.domain.Xen.Domain.p2m pfn with
            | Some mfn ->
                Memory.Machine.free t.system.Xen.System.machine ~mfn ~order:0;
                t.stats.invalidated <- t.stats.invalidated + 1;
                time := !time +. costs.Xen.Costs.page_invalidate
            | None -> ()
          end
      | `Leave -> t.stats.left_in_place <- t.stats.left_in_place + 1);
  charge_hypercall t Xen.Hypercall.Page_ops !time;
  !time

let release_free_pages t pfns =
  let batch = 128 in
  let rec go pfns acc =
    match pfns with
    | [] -> acc
    | _ ->
        let now, rest =
          let rec split n acc = function
            | [] -> (List.rev acc, [])
            | x :: xs when n > 0 -> split (n - 1) (x :: acc) xs
            | xs -> (List.rev acc, xs)
          in
          split batch [] pfns
        in
        let ops = Array.of_list (List.map (fun pfn -> Guest.Pv_queue.Release pfn) now) in
        go rest (acc +. page_ops_hypercall t ops)
  in
  go pfns 0.0

let carrefour t = t.carrefour

let carrefour_epoch t ~counters ~samples =
  match t.carrefour with
  | None -> None
  | Some sys ->
      (* The dom0 user component reads metrics through a hypercall. *)
      charge_hypercall t Xen.Hypercall.Carrefour_read_metrics
        t.system.Xen.System.costs.Xen.Costs.hypercall_entry;
      Carrefour.System_component.record_samples sys samples;
      Some (Carrefour.run_epoch sys ~config:t.carrefour_config ~rng:t.rng ~counters)

let node_of_pfn t pfn = Internal.node_of_pfn t.system t.domain pfn
