(** NUMA policy specifications.

    A policy combines a static placement (where a page lands when it is
    first mapped) with the optional Carrefour dynamic policy on top
    (which migrates pages afterwards).  The paper studies:

    - [Round_1g]: Xen's default — eager allocation in 1 GiB regions
      round-robin over the home nodes (2 MiB / 4 KiB under
      fragmentation);
    - [Round_4k]: eager 4 KiB pages round-robin over the home nodes
      (Linux's interleave policy, and the boot default of the paper's
      modified Xen);
    - [First_touch]: lazy — a page is placed on the NUMA node of the
      CPU that first touches it (Linux's default);
    - each optionally combined with [carrefour].

    Round-1G cannot be selected at runtime (only at boot, for testing):
    the evaluation shows it is much less useful than the others. *)

type placement = Round_1g | Round_4k | First_touch

type t = {
  placement : placement;
  carrefour : bool;
}

val round_1g : t
val round_4k : t
val first_touch : t
val round_4k_carrefour : t
val first_touch_carrefour : t

val all : t list
(** The five specs above, in the paper's presentation order. *)

val runtime_selectable : t -> bool
(** All except boot-only round-1G combinations. *)

val name : t -> string
(** Paper-style name: ["first-touch/carrefour"], ["round-4k"], ... *)

val of_string : string -> (t, string) result
(** Parses names as printed by {!name}; accepts ["ft"], ["r4k"],
    ["r1g"] shorthands and a ["+carrefour"] / ["/carrefour"] suffix. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
