type placement = Round_1g | Round_4k | First_touch

type t = { placement : placement; carrefour : bool }

let round_1g = { placement = Round_1g; carrefour = false }
let round_4k = { placement = Round_4k; carrefour = false }
let first_touch = { placement = First_touch; carrefour = false }
let round_4k_carrefour = { placement = Round_4k; carrefour = true }
let first_touch_carrefour = { placement = First_touch; carrefour = true }

let all = [ first_touch; first_touch_carrefour; round_4k; round_4k_carrefour; round_1g ]

let runtime_selectable t = t.placement <> Round_1g

let placement_name = function
  | Round_1g -> "round-1g"
  | Round_4k -> "round-4k"
  | First_touch -> "first-touch"

let name t =
  if t.carrefour then placement_name t.placement ^ "/carrefour" else placement_name t.placement

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let base, carrefour =
    match String.index_opt s '/' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1) = "carrefour")
    | None -> (
        match String.index_opt s '+' with
        | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1) = "carrefour")
        | None -> (s, false))
  in
  match base with
  | "round-1g" | "r1g" | "round1g" ->
      if carrefour then Error "round-1g cannot be combined with carrefour"
      else Ok { placement = Round_1g; carrefour = false }
  | "round-4k" | "r4k" | "round4k" | "interleave" -> Ok { placement = Round_4k; carrefour }
  | "first-touch" | "ft" | "firsttouch" -> Ok { placement = First_touch; carrefour }
  | _ -> Error (Printf.sprintf "unknown NUMA policy %S" s)

let pp fmt t = Format.pp_print_string fmt (name t)

let equal a b = a.placement = b.placement && a.carrefour = b.carrefour
