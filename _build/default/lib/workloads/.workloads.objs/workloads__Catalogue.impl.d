lib/workloads/catalogue.ml: App Float List Policies String
