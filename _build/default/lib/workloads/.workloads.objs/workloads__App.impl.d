lib/workloads/app.ml: Format Policies
