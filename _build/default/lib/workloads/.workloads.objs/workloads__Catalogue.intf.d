lib/workloads/catalogue.mli: App
