lib/workloads/app.mli: Format Policies
