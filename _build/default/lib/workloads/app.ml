type suite = Parsec | Npb | Mosbench | Xstream | Ycsb

let suite_name = function
  | Parsec -> "parsec"
  | Npb -> "npb"
  | Mosbench -> "mosbench"
  | Xstream -> "x-stream"
  | Ycsb -> "ycsb"

type imbalance_class = Low | Moderate | High

let class_name = function Low -> "low" | Moderate -> "moderate" | High -> "high"

type paper_ref = {
  imbalance_ft : float;
  imbalance_r4k : float;
  interconnect_ft : float;
  interconnect_r4k : float;
  class_ : imbalance_class;
  best_linux : Policies.Spec.t;
  best_xen : Policies.Spec.t;
}

type t = {
  name : string;
  suite : suite;
  footprint_mb : int;
  disk_mb_s : float;
  ctx_switch_k_s : float;
  master_bias : float;
  shared_bytes_fraction : float;
  miss_rate : float;
  zipf_s : float;
  read_fraction : float;
  remote_burst : float;
  phases : int;
  native_seconds : float;
  page_release_period : float option;
  io_block_bytes : int;
  net_service : bool;
  paper : paper_ref;
}

(* Work sizing: the application's problem size is fixed (strong
   scaling), calibrated so a 48-thread native first-touch run lasts
   about [native_seconds].  The average access is assumed to cost
   roughly the uncontended local latency plus a small remote share:
   cpi = 1 + miss_rate * latency cycles. *)
let instructions_per_thread t ~threads ~freq_hz =
  assert (threads > 0);
  let assumed_latency = 190.0 in
  let cpi = 1.0 +. (t.miss_rate *. assumed_latency) in
  let total = 48.0 *. t.native_seconds *. freq_hz /. cpi in
  total /. float_of_int threads

let sync_events_per_s t = t.ctx_switch_k_s *. 1000.0 /. 2.0

let disk_bytes_total t = t.disk_mb_s *. 1e6 *. t.native_seconds

let uses_disk t = t.disk_mb_s > 0.0

let pp fmt t =
  Format.fprintf fmt
    "%s (%s): footprint %d MB, disk %.0f MB/s, ctx %.1f k/s, bias %.2f, miss %.4f, class %s"
    t.name (suite_name t.suite) t.footprint_mb t.disk_mb_s t.ctx_switch_k_s t.master_bias
    t.miss_rate
    (class_name t.paper.class_)
