(** Application behaviour model.

    The NUMA policies only see an application through (a) which thread
    first touches each page, (b) how accesses are distributed over
    pages and threads, (c) how memory-intensive it is, and (d) its I/O,
    synchronization, and page-release behaviour.  Each of the paper's
    29 applications is described by these parameters, derived from the
    paper's own characterisation (Tables 1 and 2).

    The central parameter is [master_bias]: the fraction of memory
    accesses that target pages first touched by the master thread
    (master–slave initialisation).  Under first-touch those pages all
    land on the master's node, producing exactly the imbalance the
    paper measures; under round-4K they spread.  Applications with a
    low bias are thread-local: first-touch is ideal for them. *)

type suite = Parsec | Npb | Mosbench | Xstream | Ycsb

val suite_name : suite -> string

type imbalance_class = Low | Moderate | High
(** Table 1's classification: FT imbalance below 85 % (Low), between
    85 and 130 % (Moderate), above 130 % (High). *)

val class_name : imbalance_class -> string

(** Raw numbers from the paper, kept for calibration and reporting. *)
type paper_ref = {
  imbalance_ft : float;      (** Table 1, first-touch imbalance (1.35 = 135 %). *)
  imbalance_r4k : float;     (** Table 1, round-4K imbalance. *)
  interconnect_ft : float;   (** Table 1, first-touch interconnect load. *)
  interconnect_r4k : float;  (** Table 1, round-4K interconnect load. *)
  class_ : imbalance_class;  (** Table 1, imbalance level. *)
  best_linux : Policies.Spec.t;  (** Table 4, LinuxNUMA column. *)
  best_xen : Policies.Spec.t;    (** Table 4, Xen+NUMA column. *)
}

type t = {
  name : string;
  suite : suite;
  (* Table 2 *)
  footprint_mb : int;
  disk_mb_s : float;
  ctx_switch_k_s : float;
  (* Derived / modelled behaviour *)
  master_bias : float;
      (** Fraction of accesses to master-initialised shared pages. *)
  shared_bytes_fraction : float;
      (** Fraction of the footprint in the master-initialised region. *)
  miss_rate : float;
      (** LLC misses per instruction — memory intensity. *)
  zipf_s : float;  (** Popularity skew over shared pages (0 = uniform). *)
  read_fraction : float;
  remote_burst : float;
      (** Per-epoch probability of a transient remote burst on one
          thread's private pages — the pattern that misleads Carrefour
          on thread-local applications. *)
  phases : int;
      (** Algorithmic phases (iterations) over the run: each phase
          shifts which part of the shared region is hot, so a dynamic
          policy must keep chasing while static placements are
          oblivious.  1 = single-pass/steady workload. *)
  native_seconds : float;
      (** Approximate native first-touch completion time used to size
          the total work (ratios between configurations are what the
          evaluation reports). *)
  page_release_period : float option;
      (** Seconds between page releases to the guest OS (Streamflow
          churn); [None] for allocator-cached apps. *)
  io_block_bytes : int;
  net_service : bool;
      (** Request-driven server that sleeps on network packets
          (memcached, cassandra, mongodb): pays the virtualized-IPI
          wake-up path on every request. *)
  paper : paper_ref;
}

val instructions_per_thread : t -> threads:int -> freq_hz:float -> float
(** Work per thread under strong scaling: the fixed problem size is
    calibrated so a 48-thread native first-touch run lasts roughly
    [native_seconds]; fewer threads each carry more work. *)

val sync_events_per_s : t -> float
(** Blocking synchronization events per second (half the context-switch
    rate: one sleep + one wake per event). *)

val disk_bytes_total : t -> float
(** Total bytes read from disk over a run ([disk_mb_s] sustained over
    [native_seconds]). *)

val uses_disk : t -> bool

val pp : Format.formatter -> t -> unit
