(** The 29 applications of the paper's evaluation.

    Five suites: Parsec 2.1, NPB 3.3 (OpenMP), Mosbench (Streamflow
    allocator), X-Stream graph workloads, and YCSB over Cassandra and
    MongoDB.  Each entry carries the paper's measured characterisation
    (Tables 1 and 2) and the derived behaviour-model parameters.

    The derivations are the calibration core of this reproduction:
    - [master_bias] from the first-touch imbalance of Table 1 (the
      relative stddev produced when a fraction [m] of accesses hits the
      master's node is ≈ 2.65 m on 8 nodes);
    - [miss_rate] from the round-4K interconnect load of Table 1
      (higher sustained link load ⇒ more memory-intensive);
    - [remote_burst] models the transient remote spikes that mislead
      Carrefour on thread-local applications (Section 3.5.2). *)

val all : App.t list
(** The 29 applications, in the paper's presentation order. *)

val find : string -> App.t option
(** Case-insensitive lookup by name ("cg.C", "wrmem", ...). *)

val names : string list

val by_suite : App.suite -> App.t list

val by_class : App.imbalance_class -> App.t list
