type best = FT | FTC | R4K | R4KC | R1G

let spec_of_best = function
  | FT -> Policies.Spec.first_touch
  | FTC -> Policies.Spec.first_touch_carrefour
  | R4K -> Policies.Spec.round_4k
  | R4KC -> Policies.Spec.round_4k_carrefour
  | R1G -> Policies.Spec.round_1g

(* One row per application:
   (name, suite, disk MB/s, ctx k/s, footprint MB,
    imb_ft %, imb_r4k %, ic_ft %, ic_r4k %, class,
    best Linux, best Xen+, native seconds)
   The first ten columns are the paper's Tables 1 and 2; the two "best"
   columns are Table 4. *)
let rows =
  App.
    [
      ("bodytrack", Parsec, 0.0, 17.7, 7, 135, 48, 9, 8, High, R4KC, R4KC, 40.0);
      ("facesim", Parsec, 0.0, 11.7, 328, 253, 27, 39, 16, High, R4K, R4K, 90.0);
      ("fluidanimate", Parsec, 0.0, 4.2, 223, 65, 16, 18, 16, Low, R4KC, R4KC, 60.0);
      ("streamcluster", Parsec, 0.0, 29.5, 106, 219, 45, 31, 18, High, R4K, R4K, 75.0);
      ("swaptions", Parsec, 0.0, 0.0, 4, 175, 180, 4, 5, High, R4K, R4K, 35.0);
      ("x264", Parsec, 0.0, 0.6, 1129, 84, 28, 17, 13, Low, FT, R4K, 50.0);
      ("bt.C", Npb, 0.0, 1.2, 698, 89, 8, 51, 35, Moderate, FTC, FTC, 95.0);
      ("cg.C", Npb, 0.0, 5.9, 889, 7, 5, 11, 46, Low, FT, FT, 60.0);
      ("dc.B", Npb, 175.0, 0.1, 39273, 45, 19, 10, 22, Low, FT, R1G, 240.0);
      ("ep.D", Npb, 0.0, 0.0, 49, 263, 116, 48, 9, High, R4K, R4K, 80.0);
      ("ft.C", Npb, 0.0, 0.3, 5156, 60, 19, 17, 46, Low, R4K, R4K, 70.0);
      ("lu.C", Npb, 0.0, 1.5, 600, 47, 30, 18, 41, Low, R4K, FT, 85.0);
      ("mg.D", Npb, 0.0, 1.5, 27095, 8, 1, 12, 51, Low, FT, FT, 160.0);
      ("sp.C", Npb, 0.0, 2.0, 869, 113, 4, 43, 58, Moderate, R4KC, R4KC, 100.0);
      ("ua.C", Npb, 0.0, 37.4, 483, 5, 7, 14, 37, Low, FT, FT, 90.0);
      ("wc", Mosbench, 0.0, 3.9, 16682, 101, 41, 18, 17, Moderate, FTC, R4K, 70.0);
      ("wr", Mosbench, 1.0, 5.2, 19016, 110, 57, 18, 18, Moderate, FT, R4K, 80.0);
      ("wrmem", Mosbench, 5.0, 7.5, 11610, 135, 102, 10, 11, High, FT, R4K, 60.0);
      ("pca", Mosbench, 0.0, 0.3, 5779, 235, 14, 52, 41, High, R4K, R4KC, 110.0);
      ("kmeans", Mosbench, 0.0, 0.1, 4178, 251, 26, 61, 42, High, R4K, R4K, 90.0);
      ("psearchy", Mosbench, 54.0, 0.8, 28576, 19, 8, 6, 46, Low, FT, R4K, 130.0);
      ("memcached", Mosbench, 0.0, 127.1, 2205, 85, 74, 13, 12, Low, FT, R1G, 120.0);
      ("belief", Xstream, 234.0, 0.0, 12292, 206, 80, 19, 10, High, R4K, R4KC, 210.0);
      ("bfs", Xstream, 236.0, 0.0, 12291, 190, 24, 17, 12, High, R4K, R4K, 190.0);
      ("cc", Xstream, 249.0, 0.0, 12291, 185, 31, 17, 11, High, R4KC, R4KC, 200.0);
      ("pagerank", Xstream, 240.0, 0.0, 12291, 183, 23, 17, 11, High, R4KC, R4KC, 220.0);
      ("sssp", Xstream, 261.0, 0.0, 12291, 193, 10, 17, 11, High, R4KC, R4KC, 210.0);
      ("cassandra", Ycsb, 16.0, 10.7, 1111, 65, 50, 14, 14, Low, FTC, R1G, 150.0);
      ("mongodb", Ycsb, 184.0, 14.6, 1092, 130, 95, 16, 14, Moderate, FTC, R1G, 150.0);
    ]

let clamp lo hi x = Float.max lo (Float.min hi x)

(* Streamflow page-release churn for the Mosbench applications
   (wrmem's 15 us period is the paper's measurement). *)
let release_period name =
  match name with
  | "wrmem" -> Some 15e-6
  | "wr" -> Some 30e-6
  | "wc" -> Some 50e-6
  | "psearchy" | "memcached" -> Some 100e-6
  | "pca" | "kmeans" -> Some 200e-6
  | _ -> None

(* Read-mostly workloads: the X-Stream graph kernels stream a
   read-only edge list; memcached serves GETs. *)
let read_fraction name suite =
  match (name, suite) with
  | "memcached", _ -> 0.95
  | _, App.Xstream -> 0.90
  | _, (App.Parsec | App.Npb | App.Mosbench | App.Ycsb) -> 0.70

(* Iterative structure: graph kernels and iterative solvers revisit
   their data each superstep with a shifting hot front; single-pass
   text processing and steady-state servers do not. *)
let phases name suite =
  match (name, suite) with
  | _, App.Xstream -> 12
  | ("kmeans" | "pca"), _ -> 8
  | ("cg.C" | "mg.D" | "lu.C" | "sp.C" | "bt.C" | "ua.C"), _ -> 10
  | "ft.C", _ -> 6
  | "streamcluster", _ -> 8
  | ("bodytrack" | "x264"), _ -> 4
  | "psearchy", _ -> 4
  | _, (App.Parsec | App.Npb | App.Mosbench | App.Ycsb) -> 1

let io_block name suite =
  match (name, suite) with
  | _, App.Xstream -> 128 * 1024
  | ("dc.B" | "psearchy"), _ -> 128 * 1024
  | _, App.Ycsb -> 16 * 1024
  | _, (App.Parsec | App.Npb | App.Mosbench) -> 64 * 1024

let make (name, suite, disk, ctx, fp, imb_ft, imb_r4k, ic_ft, ic_r4k, class_, bl, bx, secs) =
  let pct x = float_of_int x /. 100.0 in
  let best_linux = spec_of_best bl and best_xen = spec_of_best bx in
  let master_bias = clamp 0.0 0.97 (pct imb_ft /. 2.65) in
  let miss_rate = clamp 0.0015 0.035 (0.05 *. pct ic_r4k) in
  let zipf_s = match class_ with App.Low -> 0.4 | App.Moderate | App.High -> 0.9 in
  let remote_burst =
    if class_ = App.Low && not best_linux.Policies.Spec.carrefour then 0.15 else 0.0
  in
  {
    App.name;
    suite;
    footprint_mb = fp;
    disk_mb_s = disk;
    ctx_switch_k_s = ctx;
    master_bias;
    shared_bytes_fraction = clamp 0.2 0.95 (master_bias +. 0.1);
    miss_rate;
    zipf_s;
    read_fraction = read_fraction name suite;
    remote_burst;
    phases = phases name suite;
    native_seconds = secs;
    page_release_period = release_period name;
    io_block_bytes = io_block name suite;
    net_service = List.mem name [ "memcached"; "cassandra"; "mongodb" ];
    paper =
      {
        App.imbalance_ft = pct imb_ft;
        imbalance_r4k = pct imb_r4k;
        interconnect_ft = pct ic_ft;
        interconnect_r4k = pct ic_r4k;
        class_;
        best_linux;
        best_xen;
      };
  }

let all = List.map make rows

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun app -> String.lowercase_ascii app.App.name = name) all

let names = List.map (fun app -> app.App.name) all

let by_suite suite = List.filter (fun app -> app.App.suite = suite) all

let by_class class_ = List.filter (fun app -> app.App.paper.App.class_ = class_) all
