(** Streaming and array statistics used by counters and reports. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summary_of_array : float array -> summary
(** Summary of a non-empty array ([count = 0] summary for an empty one,
    with [mean]/[stddev] 0 and infinite [min], neg-infinite [max]). *)

val mean : float array -> float

val stddev : float array -> float
(** Population standard deviation. *)

val relative_stddev : float array -> float
(** Standard deviation divided by the mean — the paper's "imbalance"
    metric (Table 1) over per-node access counts.  Returns 0 when the
    mean is 0. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; linear interpolation
    between ranks.  The array is sorted internally (copy). *)

val geometric_mean : float array -> float
(** Geometric mean of positive values. *)

(** Online accumulator (Welford) for mean/variance without storing
    samples. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val max : t -> float
  val min : t -> float
end
