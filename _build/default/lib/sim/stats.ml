type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end

let relative_stddev a =
  let m = mean a in
  if m = 0.0 then 0.0 else stddev a /. m

let summary_of_array a =
  let count = Array.length a in
  let min = Array.fold_left Float.min Float.infinity a in
  let max = Array.fold_left Float.max Float.neg_infinity a in
  { count; mean = mean a; stddev = stddev a; min; max }

let percentile a p =
  assert (p >= 0.0 && p <= 100.0);
  let n = Array.length a in
  assert (n > 0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let geometric_mean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> assert (x > 0.0); acc +. log x) 0.0 a in
    exp (acc /. float_of_int n)
  end

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count = 0 then 0.0 else sqrt (t.m2 /. float_of_int t.count)

  let max t = t.max
  let min t = t.min
end
