(* Binary min-heap keyed on (time, sequence number); the sequence number
   breaks ties so that events scheduled at the same instant preserve
   FIFO order, which keeps microprobe traces deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable clock : float;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; clock = 0.0; next_seq = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let dummy = t.heap.(0) in
  let bigger = Array.make (max 16 (cap * 2)) dummy in
  Array.blit t.heap 0 bigger 0 t.len;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule t ~at payload =
  assert (at >= t.clock);
  let entry = { time = at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let schedule_after t ~delay payload =
  assert (delay >= 0.0);
  schedule t ~at:(t.clock +. delay) payload

let is_empty t = t.len = 0

let size t = t.len

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let next t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    t.clock <- top.time;
    Some (top.time, top.payload)
  end

let run t ~handler ~until =
  let rec loop () =
    match peek_time t with
    | Some time when time <= until -> (
        match next t with
        | Some (time, payload) ->
            handler time payload;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ()
