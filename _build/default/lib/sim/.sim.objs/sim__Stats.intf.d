lib/sim/stats.mli:
