lib/sim/eventq.mli:
