lib/sim/rng.mli:
