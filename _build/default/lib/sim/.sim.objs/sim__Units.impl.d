lib/sim/units.ml: Format
