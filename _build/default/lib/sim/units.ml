let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let us x = x *. 1e-6
let ns x = x *. 1e-9
let ms x = x *. 1e-3
let seconds_of_cycles ~cycles ~freq_hz = cycles /. freq_hz
let cycles_of_seconds ~seconds ~freq_hz = seconds *. freq_hz

let pp_bytes fmt n =
  let f = float_of_int n in
  if f >= 1024.0 ** 3.0 then Format.fprintf fmt "%.1f GiB" (f /. (1024.0 ** 3.0))
  else if f >= 1024.0 ** 2.0 then Format.fprintf fmt "%.1f MiB" (f /. (1024.0 ** 2.0))
  else if f >= 1024.0 then Format.fprintf fmt "%.1f KiB" (f /. 1024.0)
  else Format.fprintf fmt "%d B" n

let pp_seconds fmt s =
  if s < 1e-6 then Format.fprintf fmt "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Format.fprintf fmt "%.1f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf fmt "%.2f ms" (s *. 1e3)
  else Format.fprintf fmt "%.2f s" s
