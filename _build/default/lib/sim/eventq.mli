(** Discrete-event simulation core.

    A minimal priority queue of timestamped events plus a clock.  Used
    by the fine-grained microprobes (DMA transfers, hypercall batching,
    IPI delivery) that need exact ordering; the coarse application
    engine uses fixed epochs instead. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> float
(** Current simulated time, in seconds.  Starts at 0. *)

val schedule : 'a t -> at:float -> 'a -> unit
(** [schedule q ~at e] enqueues [e] at absolute time [at].  [at] must
    not be in the past. *)

val schedule_after : 'a t -> delay:float -> 'a -> unit
(** [schedule_after q ~delay e] enqueues [e] at [now q +. delay]. *)

val next : 'a t -> (float * 'a) option
(** Pops the earliest event and advances the clock to its timestamp.
    Events with equal timestamps pop in insertion order (FIFO). *)

val peek_time : 'a t -> float option

val is_empty : 'a t -> bool

val size : 'a t -> int

val run : 'a t -> handler:(float -> 'a -> unit) -> until:float -> unit
(** Drains events in timestamp order, calling [handler time event],
    until the queue is empty or the next event is after [until].
    Handlers may schedule further events. *)
