(** Unit helpers shared across the simulator.

    Time is represented as seconds in [float]; sizes as bytes in [int];
    frequencies in Hz.  These helpers keep the unit conversions explicit
    at call sites. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val us : float -> float
(** Microseconds to seconds. *)

val ns : float -> float
(** Nanoseconds to seconds. *)

val ms : float -> float
(** Milliseconds to seconds. *)

val seconds_of_cycles : cycles:float -> freq_hz:float -> float
val cycles_of_seconds : seconds:float -> freq_hz:float -> float

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("16.0 GiB"). *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration ("307 us", "1.24 s"). *)
