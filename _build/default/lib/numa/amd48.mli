(** The paper's evaluation machine: AMD48.

    Four Opteron 6174 sockets, two NUMA nodes per socket, 6 CPUs at
    2.2 GHz and 16 GiB of RAM per node (48 cores, 128 GiB total).
    Memory controllers peak at 13 GiB/s; HyperTransport links at
    6 GiB/s (intra-socket) or 3 GiB/s (inter-socket, the asymmetric
    half-width links), with a network diameter of two hops.  Nodes 0
    and 6 each host a PCI express bus: dom0's network and disk sit on
    node 0's bus, the benchmark/dataset disk on node 6's. *)

val nodes : int
val cpus_per_node : int
val cpu_count : int
val mem_per_node : int
val freq_hz : float
val cache_line : int
val controller_gib_per_s : float

val pci_bus_nodes : int list
(** Nodes whose PCI express bus hosts devices, in bus order
    ([\[0; 6\]]). *)

val topology : unit -> Topology.t
(** Fresh AMD48 topology (cheap; routing tables are precomputed once
    per call). *)

val latency : Latency.t
(** Latency model calibrated on Table 3: caches 5/16/48 cycles; memory
    156/276/383 cycles uncontended and 697/740/863 cycles contended for
    0/1/2 hops. *)
