type t = {
  topo : Topology.t;
  node_accesses : float array;
  node_bytes : float array;
  link_bytes : float array;
  mutable local : float;
  mutable remote : float;
  (* Per-epoch byte counters, reset by [end_epoch]. *)
  epoch_node_bytes : float array;
  epoch_link_bytes : float array;
  mutable epochs : int;
  last_controller_util : float array;
  last_link_util : float array;
  sum_controller_util : float array;
  mutable sum_max_link_util : float;
}

let gib = 1024.0 *. 1024.0 *. 1024.0

let create topo =
  let nodes = Topology.node_count topo in
  let nlinks = Array.length (Topology.links topo) in
  {
    topo;
    node_accesses = Array.make nodes 0.0;
    node_bytes = Array.make nodes 0.0;
    link_bytes = Array.make nlinks 0.0;
    local = 0.0;
    remote = 0.0;
    epoch_node_bytes = Array.make nodes 0.0;
    epoch_link_bytes = Array.make nlinks 0.0;
    epochs = 0;
    last_controller_util = Array.make nodes 0.0;
    last_link_util = Array.make nlinks 0.0;
    sum_controller_util = Array.make nodes 0.0;
    sum_max_link_util = 0.0;
  }

let topology t = t.topo

let record_accesses t ~src ~dst ~count ~bytes_per_access =
  let bytes = count *. bytes_per_access in
  t.node_accesses.(dst) <- t.node_accesses.(dst) +. count;
  t.node_bytes.(dst) <- t.node_bytes.(dst) +. bytes;
  t.epoch_node_bytes.(dst) <- t.epoch_node_bytes.(dst) +. bytes;
  if src = dst then t.local <- t.local +. count
  else begin
    t.remote <- t.remote +. count;
    List.iter
      (fun (l : Topology.link) ->
        t.link_bytes.(l.link_id) <- t.link_bytes.(l.link_id) +. bytes;
        t.epoch_link_bytes.(l.link_id) <- t.epoch_link_bytes.(l.link_id) +. bytes)
      (Topology.route t.topo src dst)
  end

let record_access t ~src ~dst ~bytes = record_accesses t ~src ~dst ~count:1.0 ~bytes_per_access:bytes

let node_accesses t = Array.copy t.node_accesses
let node_bytes t = Array.copy t.node_bytes
let local_accesses t = t.local
let remote_accesses t = t.remote
let link_bytes t = Array.copy t.link_bytes

let imbalance t = Sim.Stats.relative_stddev t.node_accesses

let end_epoch t ~duration =
  assert (duration > 0.0);
  let controller_cap = Topology.controller_gib_per_s t.topo *. gib *. duration in
  Array.iteri
    (fun n bytes ->
      let u = Float.min 1.0 (bytes /. controller_cap) in
      t.last_controller_util.(n) <- u;
      t.sum_controller_util.(n) <- t.sum_controller_util.(n) +. u;
      t.epoch_node_bytes.(n) <- 0.0)
    t.epoch_node_bytes;
  let links = Topology.links t.topo in
  let max_util = ref 0.0 in
  Array.iteri
    (fun i bytes ->
      let cap = links.(i).Topology.gib_per_s *. gib *. duration in
      let u = Float.min 1.0 (bytes /. cap) in
      t.last_link_util.(i) <- u;
      if u > !max_util then max_util := u;
      t.epoch_link_bytes.(i) <- 0.0)
    t.epoch_link_bytes;
  t.sum_max_link_util <- t.sum_max_link_util +. !max_util;
  t.epochs <- t.epochs + 1

let epoch_count t = t.epochs
let last_controller_utilisation t = Array.copy t.last_controller_util
let last_link_utilisation t = Array.copy t.last_link_util

let max_route_saturation t ~src ~dst =
  let sat = ref t.last_controller_util.(dst) in
  if src <> dst then
    List.iter
      (fun (l : Topology.link) ->
        if t.last_link_util.(l.link_id) > !sat then sat := t.last_link_util.(l.link_id))
      (Topology.route t.topo src dst);
  !sat

let raw_link_reading ~utilisation =
  let u = Float.max 0.0 (Float.min 1.0 utilisation) in
  0.5 +. (0.3 *. u)

let normalise_link_reading ~raw =
  let r = Float.max 0.5 (Float.min 0.8 raw) in
  (r -. 0.5) /. 0.3

let interconnect_load t =
  if t.epochs = 0 then 0.0
  else begin
    let avg = t.sum_max_link_util /. float_of_int t.epochs in
    normalise_link_reading ~raw:(raw_link_reading ~utilisation:avg)
  end

let avg_controller_utilisation t =
  if t.epochs = 0 then Array.map (fun _ -> 0.0) t.sum_controller_util
  else Array.map (fun s -> s /. float_of_int t.epochs) t.sum_controller_util

let reset t =
  Array.fill t.node_accesses 0 (Array.length t.node_accesses) 0.0;
  Array.fill t.node_bytes 0 (Array.length t.node_bytes) 0.0;
  Array.fill t.link_bytes 0 (Array.length t.link_bytes) 0.0;
  t.local <- 0.0;
  t.remote <- 0.0;
  Array.fill t.epoch_node_bytes 0 (Array.length t.epoch_node_bytes) 0.0;
  Array.fill t.epoch_link_bytes 0 (Array.length t.epoch_link_bytes) 0.0;
  t.epochs <- 0;
  Array.fill t.last_controller_util 0 (Array.length t.last_controller_util) 0.0;
  Array.fill t.last_link_util 0 (Array.length t.last_link_util) 0.0;
  Array.fill t.sum_controller_util 0 (Array.length t.sum_controller_util) 0.0;
  t.sum_max_link_util <- 0.0
