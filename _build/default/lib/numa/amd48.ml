let nodes = 8
let cpus_per_node = 6
let cpu_count = nodes * cpus_per_node
let mem_per_node = 16 * 1024 * 1024 * 1024
let freq_hz = 2.2e9
let cache_line = 64
let controller_gib_per_s = 13.0
let pci_bus_nodes = [ 0; 6 ]

(* HyperTransport graph: full-width (6 GiB/s) links join the two dies of
   each socket; half-width (3 GiB/s) links join sockets, arranged so
   every pair of nodes is at most two hops apart — the asymmetric
   bandwidth and two-hop diameter described in Section 5.1. *)
let link_spec =
  [
    (* intra-socket die pairs *)
    (0, 1, 6.0); (2, 3, 6.0); (4, 5, 6.0); (6, 7, 6.0);
    (* inter-socket ring *)
    (0, 2, 3.0); (1, 3, 3.0); (2, 4, 3.0); (3, 5, 3.0);
    (4, 6, 3.0); (5, 7, 3.0); (6, 0, 3.0); (7, 1, 3.0);
    (* diagonals *)
    (0, 5, 3.0); (1, 4, 3.0); (2, 7, 3.0); (3, 6, 3.0);
  ]

let topology () =
  Topology.create ~nodes ~cpus_per_node ~mem_per_node ~controller_gib_per_s
    ~links:link_spec

let latency =
  Latency.create
    ~mem_base_cycles:[| 156.0; 276.0; 383.0 |]
    ~mem_contended_delta:[| 541.0; 464.0; 480.0 |]
    ~freq_hz ()
