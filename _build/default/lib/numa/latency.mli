(** Memory-hierarchy latency model.

    Calibrated on the paper's Table 3 (AMD48): cache hits cost a fixed
    number of cycles; a memory access costs a base latency that grows
    with the hop distance, inflated by a contention penalty when the
    destination memory controller or any interconnect link on the route
    saturates.  At full saturation the model reproduces the contended
    column of Table 3 exactly (697 / 740 / 863 cycles). *)

type level = L1 | L2 | L3

type t = {
  l1_cycles : float;
  l2_cycles : float;
  l3_cycles : float;
  mem_base_cycles : float array;
      (** Uncontended memory latency indexed by hop distance. *)
  mem_contended_delta : float array;
      (** Additional cycles at full saturation, per hop distance. *)
  contention_exponent : float;
      (** Convexity of the queueing penalty in the saturation level;
          2.0 gives a gentle knee, matching that contention only bites
          when a resource is close to saturated. *)
  freq_hz : float;  (** CPU frequency used to convert cycles to time. *)
}

val create :
  ?l1_cycles:float ->
  ?l2_cycles:float ->
  ?l3_cycles:float ->
  ?contention_exponent:float ->
  mem_base_cycles:float array ->
  mem_contended_delta:float array ->
  freq_hz:float ->
  unit ->
  t
(** Defaults for the cache levels are the AMD48 values (5/16/48).
    [mem_base_cycles] and [mem_contended_delta] must be non-empty and of
    equal length (index = hop count).
    @raise Invalid_argument on malformed arrays. *)

val cache_cycles : t -> level -> float

val max_hops : t -> int

val mem_cycles : t -> hops:int -> saturation:float -> float
(** [mem_cycles t ~hops ~saturation] with [saturation] in [\[0, 1\]]
    (values above 1 are clamped): cycles for one memory access at the
    given distance.  [saturation] is the utilisation of the most loaded
    resource (destination controller or any route link). *)

val seconds : t -> cycles:float -> float
(** Convert cycles to seconds at the model's CPU frequency. *)

val access_seconds : t -> hops:int -> saturation:float -> float
(** [mem_cycles] converted to seconds. *)
