(** Hardware-counter model: per-node access counters and per-link
    bandwidth monitors.

    This is the substrate the Carrefour system component reads, and the
    source of the paper's Table 1 metrics:

    - {b imbalance}: the relative standard deviation around the average
      number of accesses per node;
    - {b interconnect load}: the average, over measurement epochs, of
      the percentage of bandwidth used on the most loaded link during
      each epoch — reported within the hardware's 50–80 % raw amplitude
      (footnote 3 of the paper) and normalised back to 0–100 %.

    All counts are [float] so that scaled workloads (page_scale > 1) can
    record fractional weights. *)

type t

val create : Topology.t -> t

val topology : t -> Topology.t

val record_access : t -> src:Topology.node -> dst:Topology.node -> bytes:float -> unit
(** Record [bytes] worth of memory traffic from a CPU of node [src] to
    the memory bank of node [dst]; charges the destination node counter
    and every link on the route. *)

val record_accesses :
  t -> src:Topology.node -> dst:Topology.node -> count:float -> bytes_per_access:float -> unit
(** Bulk variant: [count] accesses of [bytes_per_access] bytes each. *)

val node_accesses : t -> float array
(** Cumulative access counts per destination node. *)

val node_bytes : t -> float array

val local_accesses : t -> float
val remote_accesses : t -> float

val link_bytes : t -> float array
(** Cumulative bytes per directed link (indexed by [link_id]). *)

val imbalance : t -> float
(** Relative standard deviation of per-node access counts, as a
    fraction (1.35 = the paper's "135%"). *)

val end_epoch : t -> duration:float -> unit
(** Close the current measurement epoch of [duration] seconds: computes
    link and controller utilisation for the epoch, pushes them to the
    history, and resets the per-epoch byte counters (cumulative access
    totals are preserved). *)

val epoch_count : t -> int

val last_controller_utilisation : t -> float array
(** Per-node memory-controller utilisation (0–1) measured over the last
    closed epoch; zeros before the first [end_epoch]. *)

val last_link_utilisation : t -> float array
(** Per-link utilisation (0–1) over the last closed epoch. *)

val max_route_saturation : t -> src:Topology.node -> dst:Topology.node -> float
(** Max of the destination controller utilisation and the utilisation
    of every link on the route, from the last closed epoch.  This is
    the [saturation] input of {!Latency.mem_cycles}. *)

val raw_link_reading : utilisation:float -> float
(** The hardware's raw link metric: idles at 0.50 and saturates at
    0.80 (piggy-backed synchronisation commands occupy half the
    bandwidth when idle; exclusive locking caps the useful share). *)

val normalise_link_reading : raw:float -> float
(** Inverse of {!raw_link_reading}: maps the 0.50–0.80 raw amplitude
    back to a 0–1 load fraction, clamping out-of-range readings. *)

val interconnect_load : t -> float
(** Average over closed epochs of the most-loaded-link utilisation,
    round-tripped through the raw 50–80 % amplitude as the paper
    reports it.  0 when no epoch has been closed. *)

val avg_controller_utilisation : t -> float array
(** Per-node controller utilisation averaged over closed epochs. *)

val reset : t -> unit
(** Forget everything (counters, histories, epochs). *)
