type t = {
  name : string;
  topology : unit -> Topology.t;
  latency : Latency.t;
  freq_hz : float;
  cache_line : int;
  pci_bus_nodes : int list;
}

let amd48 =
  {
    name = "amd48";
    topology = Amd48.topology;
    latency = Amd48.latency;
    freq_hz = Amd48.freq_hz;
    cache_line = Amd48.cache_line;
    pci_bus_nodes = Amd48.pci_bus_nodes;
  }

(* Four sockets, QPI full mesh: every remote access is one hop over a
   wider (8 GiB/s) link, against a 25 GiB/s controller.  Latencies in
   the style of a 2.7 GHz Sandy Bridge EP: local ~180 cycles, remote
   ~310; contention inflates less than on AMD48 because the mesh offers
   more bisection bandwidth per node. *)
let intel32 =
  {
    name = "intel32";
    topology =
      (fun () ->
        Topology.create ~nodes:4 ~cpus_per_node:8 ~mem_per_node:(32 * 1024 * 1024 * 1024)
          ~controller_gib_per_s:25.0
          ~links:[ (0, 1, 8.0); (0, 2, 8.0); (0, 3, 8.0); (1, 2, 8.0); (1, 3, 8.0); (2, 3, 8.0) ]);
    latency =
      Latency.create ~l1_cycles:4.0 ~l2_cycles:12.0 ~l3_cycles:40.0
        ~mem_base_cycles:[| 180.0; 310.0 |]
        ~mem_contended_delta:[| 420.0; 390.0 |]
        ~freq_hz:2.7e9 ();
    freq_hz = 2.7e9;
    cache_line = 64;
    pci_bus_nodes = [ 0; 2 ];
  }

let all = [ amd48; intel32 ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.name = name) all
