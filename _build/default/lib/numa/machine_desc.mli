(** A machine description bundles everything the simulator needs to
    model one physical host: topology, latency model, clock, and where
    the I/O buses hang.  {!Amd48} provides the paper's machine;
    {!Intel32} a contrasting fully-connected four-node host to check
    that the policy conclusions are not an artefact of one topology. *)

type t = {
  name : string;
  topology : unit -> Topology.t;
  latency : Latency.t;
  freq_hz : float;
  cache_line : int;
  pci_bus_nodes : int list;
}

val amd48 : t
(** The paper's 48-core, 8-node Opteron host. *)

val intel32 : t
(** A 32-core, 4-node host in the style of a Xeon E5-4600 box: QPI
    links between every socket pair (single-hop everywhere, so the
    interconnect saturates less easily but remote latency is uniform),
    8 cores and 32 GiB per node, faster controllers. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by name ("amd48", "intel32"). *)
