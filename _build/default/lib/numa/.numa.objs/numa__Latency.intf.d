lib/numa/latency.mli:
