lib/numa/amd48.ml: Latency Topology
