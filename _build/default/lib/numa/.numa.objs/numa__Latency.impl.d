lib/numa/latency.ml: Array Float
