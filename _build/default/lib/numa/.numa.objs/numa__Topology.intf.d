lib/numa/topology.mli: Format
