lib/numa/machine_desc.ml: Amd48 Latency List String Topology
