lib/numa/counters.ml: Array Float List Sim Topology
