lib/numa/counters.mli: Topology
