lib/numa/topology.ml: Array Format List Queue Sim
