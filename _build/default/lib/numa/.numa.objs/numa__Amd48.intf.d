lib/numa/amd48.mli: Latency Topology
