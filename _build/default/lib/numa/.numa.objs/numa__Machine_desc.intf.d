lib/numa/machine_desc.mli: Latency Topology
