(** Topology generality: re-run the policy comparison on a different
    host — a fully connected four-node Intel-style machine — to check
    that the paper's conclusions (which policy wins for which memory
    behaviour) are properties of the access patterns, not of the AMD48
    interconnect. *)

type row = {
  app : string;
  machine : string;
  best : Policies.Spec.t;
  spread : float;  (** Worst/best completion ratio over the policies. *)
}

val run : ?seed:int -> unit -> row list
(** A representative app per class (cg.C, sp.C, kmeans) on AMD48 and
    Intel32 under every runtime-selectable policy. *)

val print : ?seed:int -> unit -> unit
