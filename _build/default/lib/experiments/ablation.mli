(** Ablations of the design choices DESIGN.md calls out. *)

val print_carrefour_heuristics : ?seed:int -> unit -> unit
(** Carrefour with both heuristics, interleave only, migration
    (locality) only, and neither — on a controller-saturating
    application (kmeans, first-touch) and an interconnect-bound one
    (cg.C, round-4K). *)

val print_replay_direction : unit -> unit
(** Most-recent-first queue replay (the paper's rule) versus a naive
    oldest-first replay: the latter invalidates pages that were
    reallocated while queued — a correctness violation the replay
    order prevents. *)

val print_mcs : ?seed:int -> unit -> unit
(** Futex sleeps versus MCS spin loops for the two applications the
    paper patches (facesim, streamcluster), under Xen+. *)

val print_replication : ?seed:int -> unit -> unit
(** The discarded replication heuristic: enabling it on read-mostly
    workloads brings only a marginal gain over the migration heuristic
    (the paper's §3.4 rationale). *)

val print_huge_pages : ?seed:int -> unit -> unit
(** Future work #1: 4 KiB vs 2 MiB guest pages, native and
    virtualized — the nested-walk cost makes large pages matter more
    inside a VM. *)

val print_round1g_fragmentation : unit -> unit
(** How the round-1G boot allocator degrades to 2 MiB / 4 KiB chunks on
    the (always fragmented) first and last guest GiB. *)
