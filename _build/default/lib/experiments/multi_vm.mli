(** Consolidated-workload experiments: Figures 8 and 9.

    Two domU virtual machines run two applications simultaneously,
    each with its best Xen+ NUMA policy (Table 4), compared against the
    round-1G default:

    - Figure 8: 24 vCPUs each, pinned to disjoint halves of the NUMA
      nodes; each configuration runs twice with the halves swapped and
      the completion times averaged (placement-sensitivity control);
    - Figure 9: 48 vCPUs each, every pCPU running one vCPU of each VM
      (consolidation). *)

type pair_result = {
  app_a : string;
  app_b : string;
  improvement_a : float;  (** T_baseline / T_best for VM A. *)
  improvement_b : float;
}

val fig8_pairs : (string * string) list
val fig9_pairs : (string * string) list

val fig8 : ?seed:int -> unit -> pair_result list
val print_fig8 : ?seed:int -> unit -> unit

val fig9 : ?seed:int -> unit -> pair_result list
val print_fig9 : ?seed:int -> unit -> unit
