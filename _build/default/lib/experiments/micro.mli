(** Mechanism-level microprobes: Table 3, Figure 5, the DMA path
    measurements of Sections 2.2.2 / 5.3.1 / 4.4.1, and the hypercall
    batching study of Sections 4.2.3–4.2.4. *)

val print_tab3 : unit -> unit
(** Cache and memory latency on AMD48 (idle and contended). *)

val print_fig5 : unit -> unit
(** IPI cost repartition, native vs guest. *)

type dma_row = {
  block : int;
  native : float;
  pv : float;
  passthrough : float;
}

val dma_sweep : unit -> dma_row list
(** One DMA read per block size over the three I/O paths, executed
    through the real P2M/IOMMU machinery (4 KiB reproduces 74 / 307 /
    186 µs). *)

val print_dma : unit -> unit
(** The sweep plus the first-touch × IOMMU incompatibility demo: after
    switching to first-touch and releasing pages, a passthrough DMA
    aborts with an asynchronous IOMMU fault while the pv path recovers
    synchronously. *)

type batching_report = {
  per_release_unbatched : float;
      (** Effective cost of one hypercall per release (entry +
          invalidate + remote TLB shootdown IPIs). *)
  per_release_batched : float;   (** Measured amortized cost. *)
  lock_hold_per_op : float;
      (** Guest-side queue time per operation — the partition lock
          hold time (the re-touch fault is outside the lock). *)
  invalidate_share : float;      (** Fraction of batched hypercall time
                                     spent invalidating (paper: 87.5 %). *)
  wrmem_slowdown_unbatched : float;
  wrmem_slowdown_batched : float;
  reallocated_in_queue : int;    (** Alloc-most-recent pages left in place. *)
  invalidated : int;
}

val batching : ?ops:int -> unit -> batching_report
(** Drive [ops] alloc/release churn cycles through the real
    Pv_queue → page-ops-hypercall machinery. *)

val print_batching : unit -> unit
(** The batching report plus the queue-partitioning contention table
    (global lock vs 4 / 16 partitions). *)
