(** The introduction's argument, made executable.

    The alternative to the paper's design is exposing the NUMA topology
    to the guest (the Amazon EC2 approach) so the guest OS applies its
    own NUMA policy.  That freezes placement decisions against the
    topology the VM booted with, so it only works while vCPUs never
    move — and the hypervisor must keep balancing load by moving
    vCPUs.  After a migration, the memory a guest placed "locally"
    is remote, and no mainstream OS copes with a mutating topology.

    The experiment runs a thread-local application next to a noisy
    neighbour whose vCPUs retire over time.  The credit scheduler
    steals the victim's vCPUs onto freed pCPUs:

    - with placement frozen at first touch (what a guest-side policy
      amounts to), locality collapses and stays collapsed;
    - with the hypervisor's Carrefour enabled, the pages chase the
      vCPUs and locality recovers — placement decisions belong below
      the topology, in the hypervisor. *)

type row = {
  label : string;
  completion : float;
  local_fraction : float;
  page_migrations : int;
}

val run : ?seed:int -> unit -> row list
(** Three configurations of the victim: first-touch pinned (the
    baseline), first-touch under vCPU migration, and
    first-touch/Carrefour under vCPU migration. *)

val print : ?seed:int -> unit -> unit
