lib/experiments/single_vm.mli: Policies Workloads
