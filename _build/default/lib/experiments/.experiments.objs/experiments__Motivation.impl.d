lib/experiments/motivation.ml: Engine List Policies Report Workloads
