lib/experiments/runs.mli: Engine Policies Workloads
