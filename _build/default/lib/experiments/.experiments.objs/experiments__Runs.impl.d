lib/experiments/runs.ml: Engine Hashtbl List Policies Printf Workloads
