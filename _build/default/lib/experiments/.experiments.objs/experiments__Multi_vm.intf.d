lib/experiments/multi_vm.mli:
