lib/experiments/single_vm.ml: Engine Float List Policies Printf Report Runs Workloads
