lib/experiments/ablation.ml: Array Engine Guest Hashtbl List Numa Policies Printf Report Runs Sim Workloads Xen
