lib/experiments/multi_vm.ml: Engine List Policies Printf Report Workloads
