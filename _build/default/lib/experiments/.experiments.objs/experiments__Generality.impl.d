lib/experiments/generality.ml: Engine Float List Numa Policies Report Workloads
