lib/experiments/micro.ml: Array Format Guest List Memory Microsim Numa Policies Printf Report Sim Xen
