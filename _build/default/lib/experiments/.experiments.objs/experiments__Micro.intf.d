lib/experiments/micro.mli:
