lib/experiments/motivation.mli:
