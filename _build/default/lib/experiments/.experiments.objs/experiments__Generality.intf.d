lib/experiments/generality.mli: Policies
