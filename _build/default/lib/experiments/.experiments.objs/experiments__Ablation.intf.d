lib/experiments/ablation.mli:
