type key = {
  mode : Engine.Config.mode;
  app : string;
  policy : Policies.Spec.t;
  mcs : bool;
}

let cache : (key * int, Engine.Result.t) Hashtbl.t = Hashtbl.create 256

let run ?(seed = 42) key =
  match Hashtbl.find_opt cache (key, seed) with
  | Some result -> result
  | None ->
      let app =
        match Workloads.Catalogue.find key.app with
        | Some app -> app
        | None -> invalid_arg (Printf.sprintf "Runs.run: unknown app %S" key.app)
      in
      let vm = Engine.Config.vm ~use_mcs:key.mcs ~policy:key.policy app in
      let cfg = Engine.Config.make ~seed ~mode:key.mode [ vm ] in
      let result = Engine.Runner.run cfg in
      Hashtbl.replace cache (key, seed) result;
      result

let completion ?seed key = (Engine.Result.single (run ?seed key)).Engine.Result.completion

let linux ?(mcs = false) app policy =
  { mode = Engine.Config.Linux; app = app.Workloads.App.name; policy; mcs }

let xen app policy = { mode = Engine.Config.Xen; app = app.Workloads.App.name; policy; mcs = false }

let xen_plus ?(mcs = false) app policy =
  { mode = Engine.Config.Xen_plus; app = app.Workloads.App.name; policy; mcs }

let mcs_apps = [ "facesim"; "streamcluster" ]

let uses_mcs app = List.mem app.Workloads.App.name mcs_apps

let linux_numa app =
  linux ~mcs:(uses_mcs app) app app.Workloads.App.paper.Workloads.App.best_linux

let xen_plus_numa app =
  xen_plus ~mcs:(uses_mcs app) app app.Workloads.App.paper.Workloads.App.best_xen

let xen_stock app = xen app Policies.Spec.round_1g

let xen_plus_default app = xen_plus ~mcs:(uses_mcs app) app Policies.Spec.round_1g

let clear_cache () = Hashtbl.reset cache
