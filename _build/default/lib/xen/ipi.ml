type mode = Native | Guest

type stage = { label : string; native : float; guest : float }

let us x = x *. 1e-6

(* The guest column models the traps added by virtualization: the APIC
   write vmexits, the hypervisor routes to the target vCPU, kicking the
   target pCPU and injecting the interrupt needs a vmentry, and the
   handler's EOI traps again.  Totals match Figure 5: 0.9 us native,
   10.9 us guest. *)
let stages =
  [
    { label = "send (APIC write)"; native = us 0.10; guest = us 2.40 };
    { label = "route to target"; native = us 0.05; guest = us 1.30 };
    { label = "deliver + inject"; native = us 0.35; guest = us 4.20 };
    { label = "handler + EOI"; native = us 0.40; guest = us 3.00 };
  ]

let total mode =
  List.fold_left
    (fun acc s -> acc +. (match mode with Native -> s.native | Guest -> s.guest))
    0.0 stages

let send domain ~costs =
  let a = domain.Domain.account in
  a.Domain.ipi_count <- a.Domain.ipi_count + 1;
  a.Domain.ipi_time <- a.Domain.ipi_time +. costs.Costs.ipi_guest

let wakeup_cost mode ~costs =
  match mode with Native -> costs.Costs.ipi_native | Guest -> costs.Costs.ipi_guest
