(** Inter-processor interrupt cost model (Figure 5).

    Sending an IPI costs 0.9 µs in native mode and 10.9 µs in guest
    mode: every stage of the path (the APIC write, routing, delivery
    and the handler's EOI) traps into the hypervisor under
    virtualization.  Applications that intentionally leave the CPU
    (locks, condition variables, network waits) pay one guest IPI per
    wake-up, which is the overhead Xen+ removes for facesim and
    streamcluster by spinning instead of sleeping. *)

type mode = Native | Guest

type stage = {
  label : string;
  native : float;  (** Seconds spent in this stage, native mode. *)
  guest : float;   (** Seconds spent in this stage, guest mode. *)
}

val stages : stage list
(** The IPI path decomposition; sums to {!total}[ Native] and
    {!total}[ Guest]. *)

val total : mode -> float

val send : Domain.t -> costs:Costs.t -> unit
(** Charge one guest-mode IPI to the domain's account. *)

val wakeup_cost : mode -> costs:Costs.t -> float
(** Cost of waking a sleeping CPU (one IPI) in the given mode. *)
