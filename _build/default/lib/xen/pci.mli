(** PCI express buses and the passthrough driver's bus-granularity
    restriction.

    The AMD IOMMU can associate devices to VMs at device granularity,
    but Xen's PCI passthrough driver only assigns whole PCI express
    buses.  AMD48 has two buses (on nodes 0 and 6); reserving one bus
    for a domU leaves the other for dom0 — the setting used by Xen+
    (Section 2.2.2). *)

type device = Disk | Network

type bus = {
  bus_id : int;
  node : Numa.Topology.node;  (** Node whose I/O controller hosts the bus. *)
  devices : device list;
}

type t

val create : buses:(Numa.Topology.node * device list) list -> t

val amd48 : unit -> t
(** Two buses: bus 0 on node 0 (dom0's network and disk), bus 1 on
    node 6 (the benchmark/dataset disk). *)

val buses : t -> bus list

val assign_bus : t -> bus_id:int -> Domain.t -> (unit, string) result
(** Assign a whole bus to a domain for passthrough.  Fails if the bus
    is already assigned to another domain. *)

val release_bus : t -> bus_id:int -> unit

val owner : t -> bus_id:int -> Domain.t option

val bus_of_device : t -> device -> bus option
(** First bus hosting the device. *)

val domain_has_passthrough : t -> Domain.t -> device -> bool
(** Whether the domain owns a bus carrying the given device. *)
