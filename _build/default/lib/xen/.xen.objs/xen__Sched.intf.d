lib/xen/sched.mli: Domain Numa Sim
