lib/xen/balloon.ml: Array Domain Hashtbl List Memory P2m System
