lib/xen/costs.ml:
