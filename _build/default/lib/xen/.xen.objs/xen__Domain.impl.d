lib/xen/domain.ml: Array Costs Format Hypercall Memory Numa P2m String
