lib/xen/dma.ml: Array Costs Domain Format List Memory P2m Pci System
