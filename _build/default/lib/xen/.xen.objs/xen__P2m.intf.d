lib/xen/p2m.mli: Memory
