lib/xen/p2m.ml: Array Bytes Memory
