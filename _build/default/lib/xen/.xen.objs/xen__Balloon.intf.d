lib/xen/balloon.mli: Domain Memory System
