lib/xen/hypercall.mli: Format
