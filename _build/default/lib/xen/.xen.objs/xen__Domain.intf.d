lib/xen/domain.mli: Costs Format Hypercall Memory Numa P2m
