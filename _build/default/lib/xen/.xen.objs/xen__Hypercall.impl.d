lib/xen/hypercall.ml: Array Format List Sim
