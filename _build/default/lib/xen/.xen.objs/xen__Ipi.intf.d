lib/xen/ipi.mli: Costs Domain
