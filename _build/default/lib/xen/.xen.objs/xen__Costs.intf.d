lib/xen/costs.mli:
