lib/xen/system.mli: Costs Domain Memory Numa
