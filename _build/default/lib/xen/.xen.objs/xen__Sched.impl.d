lib/xen/sched.ml: Array Domain List Numa Sim
