lib/xen/dma.mli: Domain Format Memory Pci System
