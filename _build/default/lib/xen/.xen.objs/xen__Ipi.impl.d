lib/xen/ipi.ml: Costs Domain List
