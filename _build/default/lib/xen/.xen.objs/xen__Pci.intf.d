lib/xen/pci.mli: Domain Numa
