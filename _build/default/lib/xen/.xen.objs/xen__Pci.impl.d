lib/xen/pci.ml: Domain Hashtbl List Numa Printf
