lib/xen/system.ml: Array Costs Domain Hypercall List Memory Numa P2m
