type t = {
  system : System.t;
  domain : Domain.t;
  ballooned : (Memory.Page.pfn, unit) Hashtbl.t;
}

let create system domain = { system; domain; ballooned = Hashtbl.create 64 }

let inflate t ~pfns =
  List.fold_left
    (fun acc pfn ->
      if Hashtbl.mem t.ballooned pfn then acc
      else
        match P2m.invalidate t.domain.Domain.p2m pfn with
        | Some mfn ->
            Memory.Machine.free t.system.System.machine ~mfn ~order:0;
            Hashtbl.replace t.ballooned pfn ();
            acc + 1
        | None -> acc)
    0 pfns

let deflate t ~count =
  let taken = ref [] in
  (try
     Hashtbl.iter
       (fun pfn () ->
         if List.length !taken >= count then raise Exit;
         (* The hypervisor repopulates from wherever it has memory —
            the guest has no say in the placement. *)
         let prefer = t.domain.Domain.home_nodes.(0) in
         match Memory.Machine.alloc_frame_fallback t.system.System.machine ~prefer with
         | Some mfn ->
             P2m.set t.domain.Domain.p2m pfn ~mfn ~writable:true;
             taken := pfn :: !taken
         | None -> raise Exit)
       t.ballooned
   with Exit -> ());
  List.iter (Hashtbl.remove t.ballooned) !taken;
  !taken

let ballooned t = Hashtbl.length t.ballooned

let is_ballooned t pfn = Hashtbl.mem t.ballooned pfn

let guest_touch t pfn =
  if Hashtbl.mem t.ballooned pfn then Error `Ballooned else Ok ()
