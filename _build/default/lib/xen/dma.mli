(** DMA transfers and the IOMMU.

    Three I/O paths exist for a domU (Section 2.2):
    - [Pv]: the para-virtualized path through dom0 — physical addresses
      are translated by software, so an invalid P2M entry simply faults
      {e synchronously} into the hypervisor, which maps the page and
      the transfer proceeds (at pv cost: 307 µs per 4 KiB read);
    - [Passthrough]: the device uses the IOMMU to translate guest
      physical addresses itself (186 µs per 4 KiB read).  The IOMMU
      cannot handle an invalid P2M entry: it aborts the transfer and
      notifies the hypervisor {e asynchronously} — by the time the
      hypervisor could map the page, the guest OS has already returned
      an I/O error to the process (Section 4.4.1).  This is the
      first-touch × IOMMU incompatibility.
    - [Native]: no hypervisor at all (74 µs), for the Linux baseline.
*)

type path = Native | Pv | Passthrough

type error =
  | Iommu_fault of { pfn : Memory.Page.pfn }
      (** The transfer hit an invalid P2M entry through the IOMMU; the
          guest received EIO before the hypervisor could repair it. *)
  | No_passthrough_bus
      (** The domain owns no PCI bus carrying the device. *)

val pp_error : Format.formatter -> error -> unit

val read :
  System.t ->
  Domain.t ->
  pci:Pci.t ->
  path:path ->
  buffer:Memory.Page.pfn list ->
  bytes:int ->
  (float, error) result
(** Perform one DMA read of [bytes] into the guest-physical pages
    [buffer].  On success returns the elapsed time and charges it to
    the domain's I/O account; invalid P2M entries are handled per the
    path semantics above.  [buffer] may be empty for [Native]. *)
