type migration = {
  domain_id : int;
  vcpu : int;
  from_pcpu : int;
  to_pcpu : int;
}

let occupancy topo ~domains ~active =
  let occ = Array.make (Numa.Topology.cpu_count topo) 0 in
  List.iter
    (fun (d : Domain.t) ->
      Array.iteri
        (fun v pcpu -> if active d v then occ.(pcpu) <- occ.(pcpu) + 1)
        d.Domain.vcpu_pin)
    domains;
  occ

let balance topo ~rng ~domains ~movable ~active =
  let occ = occupancy topo ~domains ~active in
  let migrations = ref [] in
  let idlest () =
    let best = ref 0 in
    Array.iteri (fun pcpu load -> if load < occ.(!best) then best := pcpu) occ;
    !best
  in
  (* Candidate pool: (domain, vcpu) pairs running on pCPUs with >= 2
     active vCPUs; steal for idle pCPUs until balanced. *)
  let continue_ = ref true in
  while !continue_ do
    let target = idlest () in
    if occ.(target) > 0 then continue_ := false
    else begin
      let candidates =
        List.concat_map
          (fun (d : Domain.t) ->
            if not (movable d) then []
            else
              List.filter
                (fun v -> active d v && occ.(d.Domain.vcpu_pin.(v)) >= 2)
                (List.init d.Domain.vcpus (fun v -> v))
              |> List.map (fun v -> (d, v)))
          domains
      in
      match candidates with
      | [] -> continue_ := false
      | _ ->
          let d, v = List.nth candidates (Sim.Rng.int rng (List.length candidates)) in
          let from_pcpu = d.Domain.vcpu_pin.(v) in
          d.Domain.vcpu_pin.(v) <- target;
          occ.(from_pcpu) <- occ.(from_pcpu) - 1;
          occ.(target) <- occ.(target) + 1;
          migrations := { domain_id = d.Domain.id; vcpu = v; from_pcpu; to_pcpu = target } :: !migrations
    end
  done;
  List.rev !migrations
