(** A simplified credit scheduler: proportional sharing with vCPU load
    balancing.

    The paper's evaluation pins every vCPU, but its {e motivation}
    (Section 1) is about what pinning costs: exposing the NUMA topology
    to the guest (the Amazon EC2 approach) only works if vCPUs never
    move, because a migration silently changes which physical node is
    "local" — no mainstream guest OS supports a mutating NUMA
    topology.  Hiding the topology lets the hypervisor balance load
    freely; the paper's in-hypervisor policies then keep memory
    placement right (Carrefour literally migrates the pages after the
    vCPUs).

    This module provides the balancing half: given the current
    assignment of vCPUs to pCPUs, steal work from overloaded pCPUs for
    idle ones, like Xen's credit scheduler does on each accounting
    period.  Decisions are deterministic given the RNG state. *)

type migration = {
  domain_id : int;
  vcpu : int;
  from_pcpu : int;
  to_pcpu : int;
}

val balance :
  Numa.Topology.t ->
  rng:Sim.Rng.t ->
  domains:Domain.t list ->
  movable:(Domain.t -> bool) ->
  active:(Domain.t -> int -> bool) ->
  migration list
(** One accounting period: while some pCPU runs ≥ 2 active vCPUs and
    another runs none, migrate one active vCPU of a [movable] domain to
    the idlest pCPU (topology-blind, like the classic credit
    scheduler).  Mutates the domains' [vcpu_pin] arrays and returns the
    migrations performed. *)

val occupancy :
  Numa.Topology.t -> domains:Domain.t list -> active:(Domain.t -> int -> bool) -> int array
(** Active vCPUs per pCPU under the current assignment. *)
