(** The ballooning driver — and why it cannot implement first-touch.

    Ballooning lets a guest return pages to the hypervisor, which may
    hand them to other domains: once a page is inflated into the
    balloon, the guest {e must not touch it} until it explicitly
    deflates the balloon and the hypervisor gives memory back.

    The first-touch policy needs the opposite contract: the guest keeps
    full ownership of its free pages and may reallocate one to a new
    process at any instant; the hypervisor only needs to know the page
    content is dead.  Section 4.2.3 rejects ballooning for exactly this
    reason, and this module makes the difference executable: touching a
    ballooned page is a protocol violation, while a page released
    through the page-ops queue simply faults and gets remapped. *)

type t

val create : System.t -> Domain.t -> t

val inflate : t -> pfns:Memory.Page.pfn list -> int
(** Give pages to the hypervisor: their P2M entries are removed and the
    machine frames returned to the heap (available to other domains).
    Returns the number of frames actually reclaimed. *)

val deflate : t -> count:int -> Memory.Page.pfn list
(** Ask memory back: up to [count] previously ballooned guest-physical
    pages are repopulated (from any node — the hypervisor chooses) and
    returned. *)

val ballooned : t -> int
(** Pages currently in the balloon. *)

val is_ballooned : t -> Memory.Page.pfn -> bool

val guest_touch : t -> Memory.Page.pfn -> (unit, [ `Ballooned ]) result
(** What happens if the guest uses a page anyway: a ballooned page is a
    protocol violation (the frame may already belong to another
    domain) — the hypervisor must kill or refuse; a normal page is
    fine. *)
