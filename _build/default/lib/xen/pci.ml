type device = Disk | Network

type bus = { bus_id : int; node : Numa.Topology.node; devices : device list }

type t = {
  bus_list : bus list;
  owners : (int, Domain.t) Hashtbl.t;
}

let create ~buses =
  let bus_list = List.mapi (fun bus_id (node, devices) -> { bus_id; node; devices }) buses in
  { bus_list; owners = Hashtbl.create 4 }

let amd48 () = create ~buses:[ (0, [ Network; Disk ]); (6, [ Disk ]) ]

let buses t = t.bus_list

let assign_bus t ~bus_id domain =
  if not (List.exists (fun b -> b.bus_id = bus_id) t.bus_list) then Error "no such bus"
  else
    match Hashtbl.find_opt t.owners bus_id with
    | Some owner when owner.Domain.id <> domain.Domain.id ->
        Error
          (Printf.sprintf "bus %d already assigned to domain %d (passthrough is bus-granular)"
             bus_id owner.Domain.id)
    | Some _ -> Ok ()
    | None ->
        Hashtbl.replace t.owners bus_id domain;
        Ok ()

let release_bus t ~bus_id = Hashtbl.remove t.owners bus_id

let owner t ~bus_id = Hashtbl.find_opt t.owners bus_id

let bus_of_device t device =
  List.find_opt (fun b -> List.mem device b.devices) t.bus_list

let domain_has_passthrough t domain device =
  List.exists
    (fun b ->
      List.mem device b.devices
      &&
      match Hashtbl.find_opt t.owners b.bus_id with
      | Some owner -> owner.Domain.id = domain.Domain.id
      | None -> false)
    t.bus_list
