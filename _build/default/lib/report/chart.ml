let bar_of ~width ~max_value value =
  if max_value <= 0.0 then ""
  else begin
    let n = int_of_float (Float.round (Float.abs value /. max_value *. float_of_int width)) in
    String.make (min n width) (if value >= 0.0 then '#' else '-')
  end

let render ~title ?(unit_label = "") ?(width = 50) data =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_char buf '\n';
  let label_width = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 data in
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0.0 data in
  List.iter
    (fun (label, value) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %8.2f%s |%s\n" label_width label value unit_label
           (bar_of ~width ~max_value value)))
    data;
  Buffer.contents buf

let print ~title ?unit_label ?width data = print_string (render ~title ?unit_label ?width data)

let render_groups ~title ~series ?(width = 40) data =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_char buf '\n';
  let label_width = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 data in
  let series_width = List.fold_left (fun acc s -> max acc (String.length s)) 0 series in
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left (fun acc v -> Float.max acc (Float.abs v)) acc vs)
      0.0 data
  in
  List.iter
    (fun (label, values) ->
      if List.length values <> List.length series then
        invalid_arg "Chart.render_groups: series/values length mismatch";
      List.iteri
        (fun i value ->
          let series_name = List.nth series i in
          let row_label = if i = 0 then label else "" in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %-*s %8.2f |%s\n" label_width row_label series_width
               series_name value
               (bar_of ~width ~max_value value)))
        values;
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf

let print_groups ~title ~series ?width data = print_string (render_groups ~title ~series ?width data)
