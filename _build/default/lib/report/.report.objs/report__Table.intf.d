lib/report/table.mli:
