lib/report/chart.mli:
