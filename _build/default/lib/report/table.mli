(** ASCII tables for experiment output. *)

type align = Left | Right

val render : header:string list -> ?align:align list -> string list list -> string
(** Render a table with a header row, column separators and padding.
    [align] defaults to left for the first column and right for the
    rest.  Rows shorter than the header are padded with empty cells. *)

val print : header:string list -> ?align:align list -> string list list -> unit
(** [render] to stdout. *)

val fmt_pct : float -> string
(** Format a fraction as a percentage ("135%"). *)

val fmt_ratio : float -> string
(** Format a ratio ("2.31x"). *)

val fmt_secs : float -> string
