(** Horizontal ASCII bar charts for figure reproduction. *)

val render :
  title:string ->
  ?unit_label:string ->
  ?width:int ->
  (string * float) list ->
  string
(** One bar per (label, value); bars scale to the maximum value over
    [width] characters (default 50).  Negative values render leftwards
    markers. *)

val print :
  title:string -> ?unit_label:string -> ?width:int -> (string * float) list -> unit

val render_groups :
  title:string ->
  series:string list ->
  ?width:int ->
  (string * float list) list ->
  string
(** Grouped bars: each (label, values) row renders one bar per series,
    tagged with the series name — the ASCII equivalent of the paper's
    grouped bar figures. *)

val print_groups :
  title:string -> series:string list -> ?width:int -> (string * float list) list -> unit
