(* Benchmark harness: regenerates every table and figure of the paper
   and runs a bechamel microbenchmark suite over the core mechanisms.

   Usage: main.exe [all|tab1|tab2|tab3|tab4|fig1|fig2|fig5|fig6|fig7|
                    fig8|fig9|fig10|dma|batching|ablation|micro] *)

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '#')

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks over the hot mechanisms                    *)
(* ------------------------------------------------------------------ *)

let bench_p2m () =
  let p2m = Xen.P2m.create ~frames:4096 in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      let pfn = !i land 4095 in
      incr i;
      Xen.P2m.set p2m pfn ~mfn:pfn ~writable:true;
      ignore (Xen.P2m.get p2m pfn);
      ignore (Xen.P2m.invalidate p2m pfn))

let bench_buddy () =
  let buddy = Memory.Buddy.create ~base:0 ~frames:65536 in
  Bechamel.Staged.stage (fun () ->
      match Memory.Buddy.alloc buddy ~order:3 with
      | Some base -> Memory.Buddy.free buddy ~base ~order:3
      | None -> assert false)

let bench_pv_queue () =
  let queue = Guest.Pv_queue.create ~partitions:4 ~capacity:128 ~flush:(fun _ -> 0.0) () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Guest.Pv_queue.record queue (Guest.Pv_queue.Release (!i land 0xffff)))

let bench_replay () =
  let ops =
    Array.init 256 (fun i ->
        if i land 1 = 0 then Guest.Pv_queue.Release (i / 2) else Guest.Pv_queue.Alloc (i / 2))
  in
  Bechamel.Staged.stage (fun () ->
      Guest.Pv_queue.replay ops ~f:(fun _ _ -> ()))

let bench_route () =
  let topo = Numa.Amd48.topology () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Numa.Topology.route topo (!i land 7) ((!i lsr 3) land 7))

let bench_counters () =
  let counters = Numa.Counters.create (Numa.Amd48.topology ()) in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      Numa.Counters.record_accesses counters ~src:(!i land 7) ~dst:((!i lsr 3) land 7)
        ~count:100.0 ~bytes_per_access:64.0)

let bench_carrefour_decide () =
  let rng = Sim.Rng.create ~seed:1 in
  let hot =
    List.init 128 (fun i ->
        {
          Policies.Carrefour.pfn = i;
          node_accesses = Array.init 8 (fun n -> if n = 0 then 100.0 else 5.0);
          read_fraction = 0.5;
        })
  in
  let metrics =
    {
      Policies.Carrefour.System_component.controller_util =
        [| 0.9; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1 |];
      max_link_util = 0.5;
      imbalance = 2.0;
      hot_pages = hot;
    }
  in
  let config = Policies.Carrefour.User_component.default_config in
  Bechamel.Staged.stage (fun () ->
      Policies.Carrefour.User_component.decide config ~rng ~metrics ~current_node:(fun _ ->
          Some 0))

let bench_zipf () =
  let rng = Sim.Rng.create ~seed:2 in
  Bechamel.Staged.stage (fun () -> Sim.Rng.zipf rng ~n:32768 ~s:0.9)

let bench_eventq () =
  let q = Sim.Eventq.create () in
  Bechamel.Staged.stage (fun () ->
      Sim.Eventq.schedule_after q ~delay:1.0 ();
      ignore (Sim.Eventq.next q))

let bench_engine_epoch () =
  (* One full small run: the per-epoch cost of the whole engine. *)
  let app =
    match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false
  in
  Bechamel.Staged.stage (fun () ->
      let vm = Engine.Config.vm ~threads:8 ~policy:Policies.Spec.round_4k app in
      let cfg = Engine.Config.make ~seed:1 ~max_epochs:10 ~mode:Engine.Config.Linux [ vm ] in
      ignore (Engine.Runner.run cfg))

let micro_tests =
  let open Bechamel in
  [
    Test.make ~name:"p2m set/get/invalidate" (bench_p2m ());
    Test.make ~name:"buddy alloc+free order3" (bench_buddy ());
    Test.make ~name:"pv_queue record(+flush)" (bench_pv_queue ());
    Test.make ~name:"queue replay (256 ops)" (bench_replay ());
    Test.make ~name:"topology route" (bench_route ());
    Test.make ~name:"counters record" (bench_counters ());
    Test.make ~name:"carrefour decide (128 hot)" (bench_carrefour_decide ());
    Test.make ~name:"rng zipf 32k" (bench_zipf ());
    Test.make ~name:"eventq schedule+next" (bench_eventq ());
    Test.make ~name:"engine 10-epoch run" (bench_engine_epoch ());
  ]

let run_micro () =
  section "Microbenchmarks (bechamel)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols Toolkit.Instance.monotonic_clock result in
          match Analyze.OLS.estimates estimate with
          | Some [ t ] -> Printf.printf "%-28s %12.1f ns/op\n" (Test.Elt.name elt) t
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    micro_tests

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                 *)
(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [
    ("tab2", fun () -> section "Table 2"; Experiments.Single_vm.print_tab2 ());
    ("tab3", fun () -> section "Table 3"; Experiments.Micro.print_tab3 ());
    ("fig5", fun () -> section "Figure 5"; Experiments.Micro.print_fig5 ());
    ("dma", fun () -> section "DMA paths (Sections 2.2.2, 5.3.1, 4.4.1)"; Experiments.Micro.print_dma ());
    ( "batching",
      fun () -> section "Hypercall batching (Sections 4.2.3-4.2.4)"; Experiments.Micro.print_batching () );
    ("tab1", fun () -> section "Table 1"; Experiments.Single_vm.print_tab1 ());
    ("fig1", fun () -> section "Figure 1"; Experiments.Single_vm.print_fig1 ());
    ("fig2", fun () -> section "Figure 2"; Experiments.Single_vm.print_fig2 ());
    ("fig6", fun () -> section "Figure 6"; Experiments.Single_vm.print_fig6 ());
    ("fig7", fun () -> section "Figure 7"; Experiments.Single_vm.print_fig7 ());
    ("tab4", fun () -> section "Table 4"; Experiments.Single_vm.print_tab4 ());
    ("fig8", fun () -> section "Figure 8"; Experiments.Multi_vm.print_fig8 ());
    ("fig9", fun () -> section "Figure 9"; Experiments.Multi_vm.print_fig9 ());
    ("fig10", fun () -> section "Figure 10"; Experiments.Single_vm.print_fig10 ());
    ( "ablation",
      fun () ->
        section "Ablations";
        Experiments.Ablation.print_replay_direction ();
        Experiments.Ablation.print_mcs ();
        Experiments.Ablation.print_round1g_fragmentation ();
        Experiments.Ablation.print_replication ();
        Experiments.Ablation.print_huge_pages ();
        Experiments.Ablation.print_carrefour_heuristics () );
    ( "motivation",
      fun () -> section "Motivation (Section 1)"; Experiments.Motivation.print () );
    ( "generality",
      fun () -> section "Topology generality"; Experiments.Generality.print () );
    ("micro", run_micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let requested = if requested = [] || requested = [ "all" ] then List.map fst sections else requested in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
