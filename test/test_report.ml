(* Tests for the report library and the experiments' micro helpers. *)

let test_table_render () =
  let s =
    Report.Table.render ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check bool) "header first" true
        (String.length header > 0 && String.sub header 0 1 = "a");
      Alcotest.(check bool) "separator dashes" true (String.for_all (fun c -> c = '-') sep)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.(check bool) "contains row" true
    (List.exists (fun l -> String.length l >= 6 && String.sub l 0 6 = "longer") lines)

let test_table_pads_short_rows () =
  let s = Report.Table.render ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_rejects_wide_rows () =
  Alcotest.check_raises "row wider" (Invalid_argument "Table.render: row wider than header")
    (fun () -> ignore (Report.Table.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_table_formatters () =
  Alcotest.(check string) "pct" "135%" (Report.Table.fmt_pct 1.35);
  Alcotest.(check string) "ratio" "2.31x" (Report.Table.fmt_ratio 2.31);
  Alcotest.(check string) "secs" "1.50s" (Report.Table.fmt_secs 1.5)

let test_chart_render () =
  let s = Report.Chart.render ~title:"t" [ ("a", 1.0); ("b", 2.0) ] in
  let lines = String.split_on_char '\n' s in
  (* Bar of the max value is full width (50 #), a is half. *)
  let count_hashes l = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l in
  let bar_a = List.nth lines 2 and bar_b = List.nth lines 3 in
  Alcotest.(check int) "b full" 50 (count_hashes bar_b);
  Alcotest.(check int) "a half" 25 (count_hashes bar_a)

let test_chart_negative () =
  let s = Report.Chart.render ~title:"t" [ ("a", -1.0); ("b", 2.0) ] in
  Alcotest.(check bool) "negative marker" true (String.contains s '-')

let test_chart_groups () =
  let s =
    Report.Chart.render_groups ~title:"g" ~series:[ "s1"; "s2" ]
      [ ("app", [ 1.0; 2.0 ]) ]
  in
  Alcotest.(check bool) "series named" true (String.length s > 0);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Chart.render_groups: series/values length mismatch") (fun () ->
      ignore (Report.Chart.render_groups ~title:"g" ~series:[ "s1" ] [ ("app", [ 1.0; 2.0 ]) ]))

let test_chart_groups_negative () =
  (* A slowdown below baseline (negative delta) must render a leftwards
     marker without scaling the positive bars off the canvas. *)
  let s =
    Report.Chart.render_groups ~title:"g" ~series:[ "s1"; "s2" ]
      [ ("app", [ -0.5; 2.0 ]); ("other", [ 1.0; -2.0 ]) ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.(check bool) "negative marker" true (String.contains s '-');
  Alcotest.(check bool) "positive bars kept" true (String.contains s '#')

let test_chart_groups_all_zero () =
  (* max_value <= 0: every bar collapses to the empty string rather
     than dividing by zero. *)
  let s =
    Report.Chart.render_groups ~title:"g" ~series:[ "s1"; "s2" ]
      [ ("app", [ 0.0; 0.0 ]); ("other", [ 0.0; 0.0 ]) ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.(check bool) "no bars drawn" false (String.contains s '#')

(* --------------------------- experiments ---------------------------- *)

let test_micro_dma_sweep () =
  let rows = Experiments.Micro.dma_sweep () in
  Alcotest.(check int) "five block sizes" 5 (List.length rows);
  let first = List.hd rows in
  Alcotest.(check int) "4 KiB first" 4096 first.Experiments.Micro.block;
  Alcotest.(check (float 1e-7)) "native 74us" 74e-6 first.Experiments.Micro.native;
  Alcotest.(check (float 1e-7)) "pv 307us" 307e-6 first.Experiments.Micro.pv;
  Alcotest.(check (float 1e-7)) "pt 186us" 186e-6 first.Experiments.Micro.passthrough;
  (* Overhead amortises with block size. *)
  let last = List.nth rows 4 in
  Alcotest.(check bool) "1 MiB pv ratio < 1.1" true
    (last.Experiments.Micro.pv /. last.Experiments.Micro.native < 1.1)

let test_micro_batching () =
  let r = Experiments.Micro.batching ~ops:20_000 () in
  Alcotest.(check bool) "unbatched much dearer" true
    (r.Experiments.Micro.per_release_unbatched > 5.0 *. r.Experiments.Micro.per_release_batched);
  Alcotest.(check bool) "wrmem unbatched ~3x (paper)" true
    (r.Experiments.Micro.wrmem_slowdown_unbatched > 2.0
    && r.Experiments.Micro.wrmem_slowdown_unbatched < 4.0);
  Alcotest.(check bool) "batched below 1.3x" true
    (r.Experiments.Micro.wrmem_slowdown_batched < 1.3);
  Alcotest.(check (float 0.06)) "invalidation share ~87.5%" 0.875
    r.Experiments.Micro.invalidate_share;
  Alcotest.(check bool) "some pages invalidated" true (r.Experiments.Micro.invalidated > 0)

let test_runs_cache () =
  Experiments.Runs.clear_cache ();
  let app = match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false in
  let key = Experiments.Runs.linux app Policies.Spec.first_touch in
  let t0 = Sys.time () in
  let r1 = Experiments.Runs.run key in
  let t1 = Sys.time () in
  let r2 = Experiments.Runs.run key in
  let t2 = Sys.time () in
  Alcotest.(check bool) "same result object" true (r1 == r2);
  Alcotest.(check bool) "cache hit fast" true (t2 -. t1 < (t1 -. t0) +. 0.01)

let test_runs_presets () =
  let app = match Workloads.Catalogue.find "facesim" with Some a -> a | None -> assert false in
  let key = Experiments.Runs.linux_numa app in
  Alcotest.(check bool) "facesim linuxnuma uses mcs" true key.Experiments.Runs.mcs;
  Alcotest.(check bool) "stock xen no mcs" false (Experiments.Runs.xen_stock app).Experiments.Runs.mcs;
  let cg = match Workloads.Catalogue.find "cg.C" with Some a -> a | None -> assert false in
  Alcotest.(check bool) "cg.C no mcs" false (Experiments.Runs.linux_numa cg).Experiments.Runs.mcs

let suite =
  [
    ( "report.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
        Alcotest.test_case "rejects wide rows" `Quick test_table_rejects_wide_rows;
        Alcotest.test_case "formatters" `Quick test_table_formatters;
      ] );
    ( "report.chart",
      [
        Alcotest.test_case "render" `Quick test_chart_render;
        Alcotest.test_case "negative values" `Quick test_chart_negative;
        Alcotest.test_case "groups" `Quick test_chart_groups;
        Alcotest.test_case "groups with negative values" `Quick test_chart_groups_negative;
        Alcotest.test_case "groups all zero" `Quick test_chart_groups_all_zero;
      ] );
    ( "experiments.micro",
      [
        Alcotest.test_case "dma sweep" `Quick test_micro_dma_sweep;
        Alcotest.test_case "batching" `Quick test_micro_batching;
      ] );
    ( "experiments.runs",
      [
        Alcotest.test_case "cache" `Quick test_runs_cache;
        Alcotest.test_case "presets" `Quick test_runs_presets;
      ] );
  ]
