(* Integration tests for the engine: configuration, determinism, and
   the qualitative behaviours the paper reports. *)

let app name =
  match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.failf "no app %s" name

let run ?(mode = Engine.Config.Linux) ?(policy = Policies.Spec.first_touch) ?(threads = 48)
    ?(seed = 42) ?use_mcs name =
  let vm = Engine.Config.vm ?use_mcs ~threads ~policy (app name) in
  Engine.Runner.run (Engine.Config.make ~seed ~mode [ vm ])

let completion result = (Engine.Result.single result).Engine.Result.completion

(* ------------------------------- config ---------------------------- *)

let test_config_page_scale_heuristic () =
  let cfg small = Engine.Config.make ~mode:Engine.Config.Linux [ Engine.Config.vm ~policy:Policies.Spec.first_touch (app small) ] in
  (* bodytrack (7 MB) keeps real 4 KiB pages; dc.B (39 GB) scales up. *)
  Alcotest.(check int) "small app scale 1" 1 (Engine.Config.page_scale (cfg "bodytrack"));
  Alcotest.(check bool) "dc.B scales" true (Engine.Config.page_scale (cfg "dc.B") >= 256)

let test_config_page_kib_override () =
  let cfg =
    Engine.Config.make ~page_kib:64 ~mode:Engine.Config.Linux
      [ Engine.Config.vm ~policy:Policies.Spec.first_touch (app "cg.C") ]
  in
  Alcotest.(check int) "64 KiB pages = scale 16" 16 (Engine.Config.page_scale cfg)

let test_config_validation () =
  Alcotest.check_raises "no vms" (Invalid_argument "Config.make: no VMs") (fun () ->
      ignore (Engine.Config.make ~mode:Engine.Config.Linux []));
  Alcotest.check_raises "bad threads" (Invalid_argument "Config.vm: threads must be positive")
    (fun () -> ignore (Engine.Config.vm ~threads:0 ~policy:Policies.Spec.first_touch (app "cg.C")))

(* ---------------------------- determinism --------------------------- *)

let test_runner_deterministic () =
  let r1 = run ~seed:7 "cg.C" and r2 = run ~seed:7 "cg.C" in
  Alcotest.(check (float 1e-12)) "same completion" (completion r1) (completion r2);
  Alcotest.(check (float 1e-12)) "same imbalance" r1.Engine.Result.imbalance r2.Engine.Result.imbalance

let test_runner_result_fields () =
  let r = run "cg.C" in
  let vm = Engine.Result.single r in
  Alcotest.(check string) "app name" "cg.C" vm.Engine.Result.app_name;
  Alcotest.(check string) "policy" "first-touch" vm.Engine.Result.policy;
  Alcotest.(check bool) "epochs counted" true (r.Engine.Result.epochs > 0);
  Alcotest.(check bool) "positive completion" true (vm.Engine.Result.completion > 0.0);
  Alcotest.(check (float 1e-9)) "completion lookup" vm.Engine.Result.completion
    (Engine.Result.completion r "cg.C")

(* ----------------------- Table 1 reproductions ---------------------- *)

let test_imbalance_matches_table1 () =
  (* The first-touch imbalance is the calibrated quantity: it must land
     close to the paper's measurement. *)
  List.iter
    (fun (name, expected) ->
      let r = run name in
      Alcotest.(check (float 0.15))
        (name ^ " FT imbalance")
        expected r.Engine.Result.imbalance)
    [ ("cg.C", 0.07); ("facesim", 2.53); ("kmeans", 2.51); ("wrmem", 1.35) ]

let test_round4k_balances () =
  let ft = run "kmeans" in
  let r4k = run ~policy:Policies.Spec.round_4k "kmeans" in
  Alcotest.(check bool) "round-4k balances the controllers" true
    (r4k.Engine.Result.imbalance < 0.3 *. ft.Engine.Result.imbalance);
  Alcotest.(check bool) "first-touch keeps locality" true
    ((Engine.Result.single ft).Engine.Result.local_fraction
    > (Engine.Result.single r4k).Engine.Result.local_fraction)

(* ------------------- policy behaviour per class --------------------- *)

let test_low_class_prefers_first_touch () =
  (* cg.C: thread-local accesses; round-4k destroys locality. *)
  let ft = completion (run "cg.C") in
  let r4k = completion (run ~policy:Policies.Spec.round_4k "cg.C") in
  Alcotest.(check bool) "FT at least 25% faster" true (r4k > 1.25 *. ft)

let test_high_class_prefers_round4k () =
  (* kmeans: master-slave; first-touch saturates the master's node. *)
  let ft = completion (run "kmeans") in
  let r4k = completion (run ~policy:Policies.Spec.round_4k "kmeans") in
  Alcotest.(check bool) "R4K at least 25% faster" true (ft > 1.25 *. r4k)

let test_carrefour_rescues_first_touch () =
  (* On a master-slave app, Carrefour's interleave heuristic spreads
     the hot pages off the overloaded node. *)
  let ft = completion (run "facesim") in
  let ftc = completion (run ~policy:Policies.Spec.first_touch_carrefour "facesim") in
  Alcotest.(check bool) "FT/C faster than FT" true (ftc < 0.9 *. ft)

let test_carrefour_migrations_happen () =
  let r = run ~policy:Policies.Spec.first_touch_carrefour "kmeans" in
  Alcotest.(check bool) "pages migrated" true ((Engine.Result.single r).Engine.Result.migrations > 0)

let test_carrefour_localises_round4k () =
  (* On a thread-local app under round-4k, the migration heuristic
     pulls pages back to their accessing node. *)
  let r4k = run ~policy:Policies.Spec.round_4k "cg.C" in
  let r4kc = run ~policy:Policies.Spec.round_4k_carrefour "cg.C" in
  Alcotest.(check bool) "locality recovered" true
    ((Engine.Result.single r4kc).Engine.Result.local_fraction
    > (Engine.Result.single r4k).Engine.Result.local_fraction +. 0.2)

(* ------------------------ virtualization costs ---------------------- *)

let test_xen_slower_than_linux_on_ipi_heavy_app () =
  (* ua.C context-switches 37k times per second: the virtualized
     IPI/wake-up path hurts (Sections 5.3.2, 5.5). *)
  let linux = completion (run "ua.C") in
  let xen = completion (run ~mode:Engine.Config.Xen "ua.C") in
  Alcotest.(check bool) "at least 30% overhead" true (xen > 1.3 *. linux)

let test_mcs_removes_wakeup_cost () =
  let futex = completion (run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_4k "streamcluster") in
  let mcs =
    completion
      (run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_4k ~use_mcs:true "streamcluster")
  in
  Alcotest.(check bool) "MCS at least 15% faster" true (futex > 1.15 *. mcs)

let test_passthrough_beats_pv_io () =
  (* dc.B reads 175 MB/s from disk: Xen+'s passthrough shaves the pv
     per-request overhead (Section 5.3.3). *)
  let xen = run ~mode:Engine.Config.Xen ~policy:Policies.Spec.round_1g "dc.B" in
  let xen_plus = run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_1g "dc.B" in
  let io r = (Engine.Result.single r).Engine.Result.io_overhead in
  Alcotest.(check bool) "io overhead reduced" true (io xen_plus < 0.6 *. io xen);
  Alcotest.(check bool) "completion reduced" true (completion xen_plus < completion xen)

let test_first_touch_disables_passthrough () =
  (* The IOMMU incompatibility: under first-touch, Xen+ falls back to
     the pv I/O path (Section 4.4.1). *)
  let r1g = run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_1g "dc.B" in
  let ft = run ~mode:Engine.Config.Xen_plus "dc.B" in
  let io r = (Engine.Result.single r).Engine.Result.io_overhead in
  Alcotest.(check bool) "first-touch pays pv io" true (io ft > 1.5 *. io r1g)

let test_release_churn_charged_only_under_first_touch () =
  let ft = run ~mode:Engine.Config.Xen_plus "wrmem" in
  let r4k = run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_4k "wrmem" in
  Alcotest.(check bool) "ft churn positive" true
    ((Engine.Result.single ft).Engine.Result.release_overhead > 0.0);
  Alcotest.(check (float 1e-12)) "r4k no churn" 0.0
    (Engine.Result.single r4k).Engine.Result.release_overhead

let test_virt_overhead_only_under_xen () =
  let linux = run "cg.C" in
  let xen = run ~mode:Engine.Config.Xen "cg.C" in
  Alcotest.(check bool) "xen faults cost more" true
    ((Engine.Result.single xen).Engine.Result.virt_overhead
    > (Engine.Result.single linux).Engine.Result.virt_overhead)

(* --------------------------- consolidation -------------------------- *)

let test_consolidation_halves_throughput () =
  let solo = completion (run ~mode:Engine.Config.Xen_plus ~policy:Policies.Spec.round_4k "cg.C") in
  let vms =
    [
      Engine.Config.vm ~threads:48 ~policy:Policies.Spec.round_4k (app "cg.C");
      Engine.Config.vm ~threads:48 ~policy:Policies.Spec.round_4k (app "ep.D");
    ]
  in
  let r = Engine.Runner.run (Engine.Config.make ~mode:Engine.Config.Xen_plus vms) in
  let consolidated = Engine.Result.completion r "cg.C" in
  Alcotest.(check bool) "roughly half speed" true
    (consolidated > 1.5 *. solo && consolidated < 3.5 *. solo)

let test_split_halves_are_disjoint () =
  let vms =
    [
      Engine.Config.vm ~threads:24 ~home_nodes:[| 0; 1; 2; 3 |] ~policy:Policies.Spec.round_4k
        (app "cg.C");
      Engine.Config.vm ~threads:24 ~home_nodes:[| 4; 5; 6; 7 |] ~policy:Policies.Spec.round_4k
        (app "ep.D");
    ]
  in
  let r = Engine.Runner.run (Engine.Config.make ~mode:Engine.Config.Xen_plus vms) in
  Alcotest.(check int) "two results" 2 (List.length r.Engine.Result.vms);
  List.iter
    (fun vm -> Alcotest.(check bool) "both finish" true (vm.Engine.Result.completion > 0.0))
    r.Engine.Result.vms

(* ----------------------------- superpages --------------------------- *)

let run_sp ?(superpages = true) ?(mode = Engine.Config.Xen_plus) policy =
  let vm = Engine.Config.vm ~superpages ~policy (app "cg.C") in
  Engine.Runner.run (Engine.Config.make ~seed:42 ~mode [ vm ])

let test_superpages_round1g_keeps_and_wins () =
  let off = Engine.Result.single (run_sp ~superpages:false Policies.Spec.round_1g) in
  let on = Engine.Result.single (run_sp Policies.Spec.round_1g) in
  (* The boot placement is 1 GiB blocks, so every extent is contiguous
     and single-node: full superpage backing, never splintered, and the
     extra TLB reach can only help. *)
  Alcotest.(check bool) "full coverage" true (on.Engine.Result.superpage_fraction > 0.99);
  Alcotest.(check int) "never splintered" 0 on.Engine.Result.splinters;
  Alcotest.(check bool) "on is no slower than off" true
    (on.Engine.Result.completion <= off.Engine.Result.completion);
  Alcotest.(check int) "off has no superpages" 0 off.Engine.Result.superpages

let test_superpages_round4k_never_forms_any () =
  let on = Engine.Result.single (run_sp Policies.Spec.round_4k) in
  (* Per-page interleave: extents are multi-node, so neither the boot
     path nor the promotion scan can ever coalesce one. *)
  Alcotest.(check int) "no superpages" 0 on.Engine.Result.superpages;
  Alcotest.(check int) "no promotes" 0 on.Engine.Result.promotes

let test_superpages_first_touch_splinters () =
  let on = Engine.Result.single (run_sp Policies.Spec.first_touch) in
  (* The policy switch releases the guest free list; every invalidation
     inside a boot-time superpage demotes it, so the TLB benefit is
     mostly gone by the time the workload runs. *)
  Alcotest.(check bool) "splinter storm" true (on.Engine.Result.splinters > 100);
  Alcotest.(check bool) "coverage collapsed" true
    (on.Engine.Result.superpage_fraction < 0.5)

let test_superpages_ignored_under_linux () =
  let on = Engine.Result.single (run_sp ~mode:Engine.Config.Linux Policies.Spec.first_touch) in
  Alcotest.(check int) "no p2m, no superpages" 0 on.Engine.Result.superpages;
  Alcotest.(check int) "no splinters" 0 on.Engine.Result.splinters

(* ------------------------------ threads ----------------------------- *)

let test_fewer_threads_slower () =
  let t48 = completion (run ~threads:48 "ep.D") in
  let t12 = completion (run ~threads:12 "ep.D") in
  Alcotest.(check bool) "12 threads slower than 48" true (t12 > 2.0 *. t48)

(* ------------------------------ sharding ---------------------------- *)

let qcheck = QCheck_alcotest.to_alcotest

(* Shard.partition tiles [0, count) with contiguous, ascending,
   near-equal ranges — for every (count, shards). *)
let prop_partition_covers =
  QCheck.Test.make ~name:"partition tiles the vCPU range" ~count:500
    QCheck.(pair (int_range 0 300) (int_range 1 32))
    (fun (count, shards) ->
      let ranges = Engine.Shard.partition ~count ~shards in
      let k = Array.length ranges in
      k = max 1 (min shards count)
      && ranges.(0).Engine.Shard.lo = 0
      && ranges.(k - 1).Engine.Shard.hi = count
      && Array.for_all
           (fun r -> r.Engine.Shard.lo <= r.Engine.Shard.hi)
           ranges
      && (let ok = ref true in
          for s = 1 to k - 1 do
            if ranges.(s).Engine.Shard.lo <> ranges.(s - 1).Engine.Shard.hi then ok := false
          done;
          !ok)
      &&
      let sizes = Array.map (fun r -> r.Engine.Shard.hi - r.Engine.Shard.lo) ranges in
      let mn = Array.fold_left min max_int sizes and mx = Array.fold_left max 0 sizes in
      mx - mn <= 1)

(* The per-vCPU streams are a pure function of (parent state, vCPU id):
   deriving them does not advance the parent, and the stream a vCPU
   gets is the same whatever partition its index lands in. *)
let prop_streams_partition_invariant =
  QCheck.Test.make ~name:"per-vCPU streams invariant under partitioning" ~count:200
    QCheck.(triple int (int_range 1 48) (pair (int_range 1 8) (int_range 1 8)))
    (fun (seed, count, (shards_a, shards_b)) ->
      let mk () = Sim.Rng.create ~seed in
      let parent_a = mk () and parent_b = mk () in
      let streams_a = Engine.Shard.streams parent_a ~count in
      let streams_b = Engine.Shard.streams parent_b ~count in
      (* Consume each family in its partition's shard order — shard by
         shard, ascending inside a shard — under two different shard
         counts; every vCPU must still observe its own draws. *)
      let draw streams ranges =
        let out = Array.make count 0 in
        Array.iter
          (fun r ->
            for v = r.Engine.Shard.lo to r.Engine.Shard.hi - 1 do
              out.(v) <- Sim.Rng.int streams.(v) 1_000_000
            done)
          ranges;
        out
      in
      let a = draw streams_a (Engine.Shard.partition ~count ~shards:shards_a) in
      let b = draw streams_b (Engine.Shard.partition ~count ~shards:shards_b) in
      (* ...and deriving must not have advanced the parents. *)
      a = b && Sim.Rng.int parent_a 1_000_000 = Sim.Rng.int parent_b 1_000_000)

(* Distinct vCPUs get distinct streams (no aliasing, no collisions in
   practice for small families). *)
let prop_streams_distinct =
  QCheck.Test.make ~name:"per-vCPU streams are distinct" ~count:200
    QCheck.(pair int (int_range 2 48))
    (fun (seed, count) ->
      let streams = Engine.Shard.streams (Sim.Rng.create ~seed) ~count in
      let draws = Array.map (fun s -> Sim.Rng.bits64 s) streams in
      let sorted = Array.copy draws in
      Array.sort compare sorted;
      let dup = ref false in
      for i = 1 to count - 1 do
        if sorted.(i) = sorted.(i - 1) then dup := true
      done;
      not !dup)

(* The acceptance property of the whole tentpole: a sharded run's
   result record — every reduced accumulator, completion, latency,
   local fraction — is structurally identical (floats compared
   bitwise) to the unsharded run's. *)
let prop_sharded_run_identical =
  QCheck.Test.make ~name:"inner-jobs N result equals inner-jobs 1" ~count:4
    QCheck.(pair (int_range 2 6) (int_range 0 1000))
    (fun (inner_jobs, seed) ->
      let cell inner =
        let vm =
          Engine.Config.vm ~threads:7 ~policy:Policies.Spec.round_4k_carrefour (app "swaptions")
        in
        Engine.Runner.run
          (Engine.Config.make ~seed ~max_epochs:40 ~inner_jobs:inner
             ~mode:Engine.Config.Xen_plus [ vm ])
      in
      cell 1 = cell inner_jobs)

let test_sharded_faults_identical () =
  (* Fault runs force the kernel unsharded; inner_jobs must be inert. *)
  let faults =
    match Faults.Plan.of_string "stall=0.05@2-30" with
    | Ok p -> p
    | Error msg -> Alcotest.failf "bad plan: %s" msg
  in
  let cell inner =
    let vm = Engine.Config.vm ~threads:6 ~policy:Policies.Spec.first_touch (app "swaptions") in
    Engine.Runner.run
      (Engine.Config.make ~seed:9 ~max_epochs:40 ~faults ~inner_jobs:inner
         ~mode:Engine.Config.Xen_plus [ vm ])
  in
  Alcotest.(check bool) "identical result" true (cell 1 = cell 4)

(* ---------------------------- fast-forward --------------------------- *)

(* The fast-forward acceptance property: with quiescence-tracked delta
   replay on, every reduced field of the result record — completions,
   latencies, histograms, local fractions — is structurally identical
   (floats compared bitwise) to the naive run's; only the
   [replayed_epochs] accounting may differ.  Randomised over policy,
   superpages, pt-walk, inner-jobs and seed so replay is exercised
   under Carrefour decade boundaries, promote scans and sharding. *)
let prop_ff_run_identical =
  QCheck.Test.make ~name:"fast-forward result equals naive" ~count:6
    QCheck.(quad (int_range 0 9) (int_range 1 4) (int_range 0 1000) bool)
    (fun (policy_idx, inner_jobs, seed, superpages) ->
      let policy =
        List.nth Policies.Spec.all (policy_idx mod List.length Policies.Spec.all)
      in
      let pt_walk = seed mod 2 = 0 in
      let cell fast_forward =
        let vm =
          Engine.Config.vm ~threads:7 ~superpages ~pt_walk ~policy (app "swaptions")
        in
        Engine.Runner.run
          (Engine.Config.make ~seed ~max_epochs:60 ~inner_jobs ~fast_forward
             ~mode:Engine.Config.Xen_plus [ vm ])
      in
      let ff = cell true and naive = cell false in
      naive.Engine.Result.replayed_epochs = 0
      && { ff with Engine.Result.replayed_epochs = 0 } = naive)

let test_ff_replays_steady_state () =
  (* A pinned static-policy Xen+ cell quiesces quickly: most epochs of
     a long run must be replayed, and the escape hatch must force the
     count back to zero. *)
  let cell fast_forward =
    let vm = Engine.Config.vm ~threads:12 ~policy:Policies.Spec.round_4k (app "swaptions") in
    Engine.Runner.run
      (Engine.Config.make ~seed:11 ~max_epochs:120 ~fast_forward
         ~mode:Engine.Config.Xen_plus [ vm ])
  in
  let ff = cell true and naive = cell false in
  Alcotest.(check int) "naive never replays" 0 naive.Engine.Result.replayed_epochs;
  Alcotest.(check bool) "most epochs replayed" true
    (ff.Engine.Result.replayed_epochs > ff.Engine.Result.epochs / 2)

let test_ff_forced_off_under_faults () =
  (* Fault runs must disable fast-forward wholesale, not merely skip
     armed windows. *)
  let faults = Faults.Plan.of_string_exn "stall=0.05@2-30" in
  let vm = Engine.Config.vm ~threads:6 ~policy:Policies.Spec.round_4k (app "swaptions") in
  let r =
    Engine.Runner.run
      (Engine.Config.make ~seed:9 ~max_epochs:80 ~faults ~fast_forward:true
         ~mode:Engine.Config.Xen_plus [ vm ])
  in
  Alcotest.(check int) "no replay under faults" 0 r.Engine.Result.replayed_epochs

let test_p2m_version_monotone () =
  let t = Xen.P2m.create ~sp_frames:1 ~frames:64 () in
  Alcotest.(check int) "starts at 0" 0 (Xen.P2m.version t);
  Alcotest.(check int) "a read is pure" (Xen.P2m.version t) (Xen.P2m.version t);
  Xen.P2m.set t 3 ~mfn:10 ~writable:true;
  let v1 = Xen.P2m.version t in
  Alcotest.(check bool) "set bumps" true (v1 > 0);
  Xen.P2m.write_protect t 3;
  let v2 = Xen.P2m.version t in
  Alcotest.(check bool) "write_protect bumps" true (v2 > v1);
  (match Xen.P2m.invalidate t 3 with
  | Some _ -> ()
  | None -> Alcotest.fail "entry was mapped");
  let v3 = Xen.P2m.version t in
  Alcotest.(check bool) "invalidate bumps" true (v3 > v2);
  (* No-ops — clearing an Invalid entry, write-protecting an Invalid
     entry — must not bump: two equal reads prove "nothing mutated". *)
  (match Xen.P2m.invalidate t 5 with
  | None -> ()
  | Some _ -> Alcotest.fail "entry 5 should be Invalid");
  Xen.P2m.write_protect t 5;
  Alcotest.(check int) "no-ops keep the version" v3 (Xen.P2m.version t)

let test_next_armed_epoch_edges () =
  let next plan ~after =
    Faults.Injector.next_armed_epoch
      (Faults.Injector.create ~seed:1 (Faults.Plan.of_string_exn plan))
      ~after
  in
  let bounded = "stall=0.05@10-20" in
  (* UNTIL is exclusive: armed for epochs 10..19. *)
  Alcotest.(check (option int)) "before the window" (Some 10) (next bounded ~after:0);
  Alcotest.(check (option int)) "at the opening edge" (Some 10) (next bounded ~after:10);
  Alcotest.(check (option int)) "inside the window" (Some 15) (next bounded ~after:15);
  Alcotest.(check (option int)) "last armed epoch" (Some 19) (next bounded ~after:19);
  Alcotest.(check (option int)) "at the closing edge" None (next bounded ~after:20);
  Alcotest.(check (option int)) "past the window" None (next bounded ~after:100);
  let open_ended = "stall=0.05@10-" in
  Alcotest.(check (option int)) "open-ended before" (Some 10) (next open_ended ~after:3);
  Alcotest.(check (option int)) "open-ended inside" (Some 77) (next open_ended ~after:77);
  let empty = "" in
  Alcotest.(check (option int)) "empty plan never arms" None (next empty ~after:0)

let suite =
  [
    ( "engine.config",
      [
        Alcotest.test_case "page scale heuristic" `Quick test_config_page_scale_heuristic;
        Alcotest.test_case "page_kib override" `Quick test_config_page_kib_override;
        Alcotest.test_case "validation" `Quick test_config_validation;
      ] );
    ( "engine.runner",
      [
        Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
        Alcotest.test_case "result fields" `Quick test_runner_result_fields;
        Alcotest.test_case "Table 1 imbalance" `Slow test_imbalance_matches_table1;
        Alcotest.test_case "round-4k balances" `Quick test_round4k_balances;
      ] );
    ( "engine.policies",
      [
        Alcotest.test_case "low class prefers first-touch" `Quick test_low_class_prefers_first_touch;
        Alcotest.test_case "high class prefers round-4k" `Quick test_high_class_prefers_round4k;
        Alcotest.test_case "carrefour rescues first-touch" `Quick test_carrefour_rescues_first_touch;
        Alcotest.test_case "carrefour migrates" `Quick test_carrefour_migrations_happen;
        Alcotest.test_case "carrefour localises round-4k" `Quick test_carrefour_localises_round4k;
      ] );
    ( "engine.virtualization",
      [
        Alcotest.test_case "ipi-heavy app suffers" `Quick test_xen_slower_than_linux_on_ipi_heavy_app;
        Alcotest.test_case "mcs removes wakeups" `Quick test_mcs_removes_wakeup_cost;
        Alcotest.test_case "passthrough beats pv" `Quick test_passthrough_beats_pv_io;
        Alcotest.test_case "first-touch disables passthrough" `Quick
          test_first_touch_disables_passthrough;
        Alcotest.test_case "release churn first-touch only" `Quick
          test_release_churn_charged_only_under_first_touch;
        Alcotest.test_case "virt overhead xen only" `Quick test_virt_overhead_only_under_xen;
      ] );
    ( "engine.superpages",
      [
        Alcotest.test_case "round-1g keeps them and wins" `Quick
          test_superpages_round1g_keeps_and_wins;
        Alcotest.test_case "round-4k never forms any" `Quick
          test_superpages_round4k_never_forms_any;
        Alcotest.test_case "first-touch splinters" `Quick test_superpages_first_touch_splinters;
        Alcotest.test_case "ignored under linux" `Quick test_superpages_ignored_under_linux;
      ] );
    ( "engine.consolidation",
      [
        Alcotest.test_case "two VMs share the CPUs" `Slow test_consolidation_halves_throughput;
        Alcotest.test_case "split halves" `Quick test_split_halves_are_disjoint;
        Alcotest.test_case "fewer threads slower" `Quick test_fewer_threads_slower;
      ] );
    ( "engine.shard",
      [
        qcheck prop_partition_covers;
        qcheck prop_streams_partition_invariant;
        qcheck prop_streams_distinct;
        qcheck prop_sharded_run_identical;
        Alcotest.test_case "faults force unsharded" `Quick test_sharded_faults_identical;
      ] );
    ( "engine.ff",
      [
        qcheck prop_ff_run_identical;
        Alcotest.test_case "replays steady state" `Quick test_ff_replays_steady_state;
        Alcotest.test_case "forced off under faults" `Quick test_ff_forced_off_under_faults;
        Alcotest.test_case "p2m version monotone" `Quick test_p2m_version_monotone;
        Alcotest.test_case "next armed epoch edges" `Quick test_next_armed_epoch_edges;
      ] );
  ]
