(* Tests for the policies library: spec, internal interface, manager
   (boot placement, external interface), carrefour. *)

(* -------------------------------- spec ----------------------------- *)

let test_spec_names () =
  Alcotest.(check string) "ft" "first-touch" (Policies.Spec.name Policies.Spec.first_touch);
  Alcotest.(check string) "ftc" "first-touch/carrefour"
    (Policies.Spec.name Policies.Spec.first_touch_carrefour);
  Alcotest.(check string) "r4k" "round-4k" (Policies.Spec.name Policies.Spec.round_4k);
  Alcotest.(check string) "r1g" "round-1g" (Policies.Spec.name Policies.Spec.round_1g)

let test_spec_parse () =
  let ok s expected =
    match Policies.Spec.of_string s with
    | Ok p -> Alcotest.(check bool) s true (Policies.Spec.equal p expected)
    | Error m -> Alcotest.fail m
  in
  ok "first-touch" Policies.Spec.first_touch;
  ok "ft" Policies.Spec.first_touch;
  ok "FT/carrefour" Policies.Spec.first_touch_carrefour;
  ok "round-4k+carrefour" Policies.Spec.round_4k_carrefour;
  ok "interleave" Policies.Spec.round_4k;
  ok "r1g" Policies.Spec.round_1g;
  (match Policies.Spec.of_string "round-1g/carrefour" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "r1g+carrefour must be rejected");
  match Policies.Spec.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus must be rejected"

let test_spec_runtime_selectable () =
  Alcotest.(check bool) "ft yes" true (Policies.Spec.runtime_selectable Policies.Spec.first_touch);
  Alcotest.(check bool) "r1g no (boot only)" false
    (Policies.Spec.runtime_selectable Policies.Spec.round_1g);
  Alcotest.(check int) "five specs" 5 (List.length Policies.Spec.all)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Policies.Spec.of_string (Policies.Spec.name spec) with
      | Ok parsed ->
          Alcotest.(check bool) (Policies.Spec.name spec) true (Policies.Spec.equal parsed spec)
      | Error m -> Alcotest.fail m)
    Policies.Spec.all

(* ------------------------------ internal --------------------------- *)

let small_system () =
  (* 1 GiB scaled frames: 16 frames per node. *)
  Xen.System.create ~page_scale:262144 (Numa.Amd48.topology ())

let make_domain ?(vcpus = 6) ?(gib = 4) s =
  Xen.System.create_domain s ~name:"t" ~kind:Xen.Domain.DomU ~vcpus
    ~mem_bytes:(gib * 1024 * 1024 * 1024) ()

let test_internal_map_page () =
  let s = small_system () in
  let d = make_domain s in
  (match Policies.Internal.map_page s d ~pfn:0 ~node:3 with
  | Ok mfn -> Alcotest.(check int) "on node 3" 3 (Memory.Machine.node_of_mfn s.Xen.System.machine mfn)
  | Error `Enomem -> Alcotest.fail "enomem");
  match Xen.P2m.get d.Xen.Domain.p2m 0 with
  | Xen.P2m.Mapped { writable; _ } -> Alcotest.(check bool) "writable" true writable
  | Xen.P2m.Invalid -> Alcotest.fail "not mapped"

let test_internal_map_replaces_and_frees () =
  let s = small_system () in
  let d = make_domain s in
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  ignore (Policies.Internal.map_page s d ~pfn:0 ~node:1);
  ignore (Policies.Internal.map_page s d ~pfn:0 ~node:2);
  (* Remapping freed the first frame: net usage is one frame. *)
  Alcotest.(check int) "one frame used" (free0 - 1) (Memory.Machine.free_frames s.Xen.System.machine)

let test_internal_migrate () =
  let s = small_system () in
  let d = make_domain ~gib:8 s in
  ignore (Policies.Internal.map_page s d ~pfn:5 ~node:0);
  (match Policies.Internal.migrate_page s d ~pfn:5 ~node:7 with
  | Ok mfn -> Alcotest.(check int) "now on 7" 7 (Memory.Machine.node_of_mfn s.Xen.System.machine mfn)
  | Error _ -> Alcotest.fail "migrate failed");
  Alcotest.(check (option int)) "node_of_pfn agrees" (Some 7) (Policies.Internal.node_of_pfn s d 5);
  Alcotest.(check int) "accounted" 1 d.Xen.Domain.account.Xen.Domain.migrated_pages;
  Alcotest.(check bool) "copy time charged" true
    (d.Xen.Domain.account.Xen.Domain.migrate_time > 0.0)

let test_internal_migrate_noop_same_node () =
  let s = small_system () in
  let d = make_domain s in
  ignore (Policies.Internal.map_page s d ~pfn:1 ~node:4);
  (match Policies.Internal.migrate_page s d ~pfn:1 ~node:4 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "noop migrate failed");
  Alcotest.(check int) "no page copied" 0 d.Xen.Domain.account.Xen.Domain.migrated_pages

let test_internal_migrate_unmapped () =
  let s = small_system () in
  let d = make_domain s in
  match Policies.Internal.migrate_page s d ~pfn:2 ~node:1 with
  | Error `Not_mapped -> ()
  | Ok _ | Error `Enomem -> Alcotest.fail "expected Not_mapped"

let test_internal_migrate_preserves_protection () =
  let s = small_system () in
  let d = make_domain s in
  ignore (Policies.Internal.map_page s d ~pfn:3 ~node:0);
  Xen.P2m.write_protect d.Xen.Domain.p2m 3;
  ignore (Policies.Internal.migrate_page s d ~pfn:3 ~node:2);
  match Xen.P2m.get d.Xen.Domain.p2m 3 with
  | Xen.P2m.Mapped { writable; _ } -> Alcotest.(check bool) "stays read-only" false writable
  | Xen.P2m.Invalid -> Alcotest.fail "unmapped"

(* ------------------------------- manager --------------------------- *)

let attach ?(boot = Policies.Spec.round_4k) ?(vcpus = 6) ?(gib = 4) s =
  let d = make_domain ~vcpus ~gib s in
  let rng = Sim.Rng.create ~seed:1 in
  (d, Policies.Manager.attach s d ~boot ~rng)

let test_manager_round4k_boot () =
  let s = small_system () in
  let d, m = attach s in
  Alcotest.(check int) "fully populated" d.Xen.Domain.mem_frames
    (Xen.P2m.mapped_count d.Xen.Domain.p2m);
  (* Round-robin over home nodes: consecutive pfns on consecutive homes. *)
  let home = d.Xen.Domain.home_nodes in
  for pfn = 0 to min 7 (d.Xen.Domain.mem_frames - 1) do
    Alcotest.(check (option int)) "round robin"
      (Some home.(pfn mod Array.length home))
      (Policies.Manager.node_of_pfn m pfn)
  done

let test_manager_round1g_boot () =
  let s = Xen.System.create ~page_scale:65536 (Numa.Amd48.topology ()) in
  (* 256 MiB scaled frames: 4 frames = 1 GiB. *)
  let d = Xen.System.create_domain s ~name:"r1g" ~kind:Xen.Domain.DomU ~vcpus:6 ~mem_bytes:(6 * 1024 * 1024 * 1024) () in
  let rng = Sim.Rng.create ~seed:2 in
  let m = Policies.Manager.attach s d ~boot:Policies.Spec.round_1g ~rng in
  let stats = Policies.Manager.stats m in
  Alcotest.(check int) "fully populated" d.Xen.Domain.mem_frames
    (Xen.P2m.mapped_count d.Xen.Domain.p2m);
  (* 6 GiB: first and last GiB fragmented, 4 middle 1 GiB regions. *)
  Alcotest.(check int) "four 1G regions" 4 stats.Policies.Manager.populated_1g;
  Alcotest.(check bool) "fragmented ends used finer grain" true
    (stats.Policies.Manager.populated_2m > 0 || stats.Policies.Manager.populated_4k > 0);
  (* A middle 1 GiB span lives on a single node. *)
  let n1 = Policies.Manager.node_of_pfn m 4 and n2 = Policies.Manager.node_of_pfn m 5 in
  Alcotest.(check bool) "1G span on one node" true (n1 = n2)

let test_manager_first_touch_boot_lazy () =
  let s = small_system () in
  let d, _m = attach ~boot:Policies.Spec.first_touch s in
  Alcotest.(check int) "nothing populated" 0 (Xen.P2m.mapped_count d.Xen.Domain.p2m)

let test_manager_first_touch_fault_places_locally () =
  let s = small_system () in
  let d, m = attach ~boot:Policies.Spec.first_touch s in
  (* Fault from a cpu on the second home node. *)
  let cpu = (Numa.Topology.cpu_array_of_node s.Xen.System.topo 1).(0) in
  Alcotest.(check bool) "fault mapped" true
    (Xen.Domain.handle_fault d ~costs:s.Xen.System.costs ~pfn:0 ~cpu);
  Alcotest.(check (option int)) "on toucher's node" (Some 1) (Policies.Manager.node_of_pfn m 0);
  Alcotest.(check int) "stat" 1 (Policies.Manager.stats m).Policies.Manager.first_touch_maps

let test_manager_set_policy () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch_carrefour with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "carrefour on" true (Policies.Manager.carrefour m <> None);
  Alcotest.(check string) "domain label" "first-touch/carrefour" d.Xen.Domain.policy_name;
  (match Policies.Manager.set_policy m Policies.Spec.round_4k with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "carrefour off" true (Policies.Manager.carrefour m = None);
  match Policies.Manager.set_policy m Policies.Spec.round_1g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "round-1g must be boot-only"

let test_manager_page_ops_invalidate () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  let time = Policies.Manager.page_ops_hypercall m [| Guest.Pv_queue.Release 0; Guest.Pv_queue.Release 1 |] in
  Alcotest.(check bool) "time positive" true (time > 0.0);
  Alcotest.(check bool) "entries invalid" true (Xen.P2m.get d.Xen.Domain.p2m 0 = Xen.P2m.Invalid);
  Alcotest.(check int) "frames freed" (free0 + 2) (Memory.Machine.free_frames s.Xen.System.machine);
  Alcotest.(check int) "stats invalidated" 2 (Policies.Manager.stats m).Policies.Manager.invalidated;
  (* set_policy charged one hypercall, page_ops a second. *)
  Alcotest.(check int) "hypercalls accounted" 2 d.Xen.Domain.account.Xen.Domain.hypercall_count

let test_manager_page_ops_reallocated_left () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let node_before = Policies.Manager.node_of_pfn m 2 in
  ignore
    (Policies.Manager.page_ops_hypercall m
       [| Guest.Pv_queue.Release 2; Guest.Pv_queue.Alloc 2 |]);
  Alcotest.(check (option int)) "left on its node" node_before (Policies.Manager.node_of_pfn m 2);
  Alcotest.(check bool) "still mapped" true (Xen.P2m.get d.Xen.Domain.p2m 2 <> Xen.P2m.Invalid);
  Alcotest.(check int) "left_in_place" 1 (Policies.Manager.stats m).Policies.Manager.left_in_place

let test_manager_page_ops_inert_without_first_touch () =
  let s = small_system () in
  let d, m = attach s in
  ignore (Policies.Manager.page_ops_hypercall m [| Guest.Pv_queue.Release 0 |]);
  Alcotest.(check bool) "entry survives under round-4k" true
    (Xen.P2m.get d.Xen.Domain.p2m 0 <> Xen.P2m.Invalid)

let test_manager_release_free_pages_batches () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let pfns = List.init d.Xen.Domain.mem_frames (fun i -> i) in
  let time = Policies.Manager.release_free_pages m pfns in
  Alcotest.(check bool) "positive time" true (time > 0.0);
  Alcotest.(check int) "all invalidated" 0 (Xen.P2m.mapped_count d.Xen.Domain.p2m)

(* ------------------------------ carrefour -------------------------- *)

let metrics ~controller_util ~max_link_util ~hot =
  {
    Policies.Carrefour.System_component.controller_util;
    max_link_util;
    imbalance = Sim.Stats.relative_stddev controller_util;
    hot_pages = Policies.Carrefour.hot_of_samples hot;
  }

let hot_page ?(read_fraction = 0.5) pfn ~node ~count =
  let node_accesses = Array.make 8 0.0 in
  node_accesses.(node) <- count;
  { Policies.Carrefour.pfn; node_accesses; read_fraction }

let config = Policies.Carrefour.User_component.default_config

let test_carrefour_interleave_on_overload () =
  let rng = Sim.Rng.create ~seed:1 in
  let hot = List.init 10 (fun i -> hot_page i ~node:0 ~count:100.0) in
  let controller_util = [| 0.9; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05 |] in
  let m = metrics ~controller_util ~max_link_util:0.0 ~hot in
  let actions =
    Policies.Carrefour.User_component.decide config ~rng ~metrics:m ~current_node:(fun _ -> Some 0)
  in
  Alcotest.(check int) "all hot pages moved" 10 (List.length actions);
  List.iter
    (fun (a : Policies.Carrefour.User_component.action) ->
      Alcotest.(check bool) "interleave reason" true
        (a.Policies.Carrefour.User_component.reason = Policies.Carrefour.User_component.Interleave);
      Alcotest.(check bool) "to an underloaded node" true
        (a.Policies.Carrefour.User_component.dest <> 0))
    actions

let test_carrefour_locality_on_saturation () =
  let rng = Sim.Rng.create ~seed:2 in
  (* Page 3 accessed only from node 5, currently on node 0. *)
  let hot = [ hot_page 3 ~node:5 ~count:50.0 ] in
  let m = metrics ~controller_util:(Array.make 8 0.2) ~max_link_util:0.9 ~hot in
  let actions =
    Policies.Carrefour.User_component.decide config ~rng ~metrics:m ~current_node:(fun _ -> Some 0)
  in
  match actions with
  | [ a ] ->
      Alcotest.(check int) "to the accessing node" 5 a.Policies.Carrefour.User_component.dest;
      Alcotest.(check bool) "locality reason" true
        (a.Policies.Carrefour.User_component.reason = Policies.Carrefour.User_component.Locality)
  | _ -> Alcotest.failf "expected one action, got %d" (List.length actions)

let test_carrefour_idle_no_actions () =
  let rng = Sim.Rng.create ~seed:3 in
  let hot = [ hot_page 1 ~node:2 ~count:1000.0 ] in
  let m = metrics ~controller_util:(Array.make 8 0.2) ~max_link_util:0.05 ~hot in
  Alcotest.(check int) "nothing to do" 0
    (List.length
       (Policies.Carrefour.User_component.decide config ~rng ~metrics:m
          ~current_node:(fun _ -> Some 0)))

let test_carrefour_respects_budget () =
  let rng = Sim.Rng.create ~seed:4 in
  let hot = List.init 100 (fun i -> hot_page i ~node:0 ~count:100.0) in
  let controller_util = [| 0.9; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05 |] in
  let m = metrics ~controller_util ~max_link_util:0.0 ~hot in
  let tight = { config with Policies.Carrefour.User_component.migration_budget = 7 } in
  Alcotest.(check int) "budget capped" 7
    (List.length
       (Policies.Carrefour.User_component.decide tight ~rng ~metrics:m
          ~current_node:(fun _ -> Some 0)))

let test_carrefour_min_accesses_filter () =
  let rng = Sim.Rng.create ~seed:5 in
  let hot = [ hot_page 1 ~node:0 ~count:0.5 ] in
  let controller_util = [| 0.9; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05 |] in
  let m = metrics ~controller_util ~max_link_util:0.9 ~hot in
  Alcotest.(check int) "cold page ignored" 0
    (List.length
       (Policies.Carrefour.User_component.decide config ~rng ~metrics:m
          ~current_node:(fun _ -> Some 0)))

let test_carrefour_system_decay () =
  let s = small_system () in
  let d, _m = attach s in
  let sys = Policies.Carrefour.System_component.create s d in
  Policies.Carrefour.System_component.record_samples sys [ hot_page 0 ~node:1 ~count:4.0 ];
  Alcotest.(check int) "tracked" 1 (Policies.Carrefour.System_component.tracked_pages sys);
  (* Heat halves every epoch: after a few silent epochs the page drops
     below 1 and is forgotten. *)
  for _ = 1 to 4 do
    Policies.Carrefour.System_component.record_samples sys []
  done;
  Alcotest.(check int) "forgotten" 0 (Policies.Carrefour.System_component.tracked_pages sys)

(* Satellite differential: the bounded top-k readout is exactly the
   prefix of the full-sort readout — ties included — so switching the
   hot-page selection to the heap changes no migration decision. *)
let test_carrefour_topk_matches_sort () =
  let s = small_system () in
  let d, _m = attach s in
  let sys_a = Policies.Carrefour.System_component.create s d in
  let sys_b = Policies.Carrefour.System_component.create s d in
  (* 40 pages over 5 distinct heat levels: plenty of ties for the
     pfn-ascending tie-break to matter. *)
  let samples =
    List.init 40 (fun i -> hot_page i ~node:(i mod 8) ~count:(float_of_int (30 + (10 * (i mod 5)))))
  in
  Policies.Carrefour.System_component.record_samples sys_a samples;
  Policies.Carrefour.System_component.record_samples sys_b samples;
  let counters = Numa.Counters.create s.Xen.System.topo in
  Numa.Counters.end_epoch counters ~duration:1.0;
  let full = Policies.Carrefour.System_component.read_metrics sys_a ~counters in
  let k = 12 in
  let top = Policies.Carrefour.System_component.read_metrics ~top:k sys_b ~counters in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let pfns l = List.map (fun (x : Policies.Carrefour.sample) -> x.Policies.Carrefour.pfn) l in
  let full_hot =
    Policies.Carrefour.samples_of_hot full.Policies.Carrefour.System_component.hot_pages
  in
  let top_hot =
    Policies.Carrefour.samples_of_hot top.Policies.Carrefour.System_component.hot_pages
  in
  Alcotest.(check (list int)) "top-k = prefix of the full sort"
    (pfns (take k full_hot)) (pfns top_hot);
  (* And the user component decides identically on both readouts. *)
  let controller_util = [| 0.9; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05; 0.05 |] in
  let m_full = metrics ~controller_util ~max_link_util:0.9 ~hot:full_hot in
  let m_top = metrics ~controller_util ~max_link_util:0.9 ~hot:top_hot in
  let tight = { config with Policies.Carrefour.User_component.max_hot_pages = k } in
  let a_full =
    Policies.Carrefour.User_component.decide tight ~rng:(Sim.Rng.create ~seed:42)
      ~metrics:m_full ~current_node:(fun _ -> Some 0)
  in
  let a_top =
    Policies.Carrefour.User_component.decide tight ~rng:(Sim.Rng.create ~seed:42)
      ~metrics:m_top ~current_node:(fun _ -> Some 0)
  in
  Alcotest.(check bool) "same migration set" true (a_full = a_top);
  Alcotest.(check bool) "decisions non-trivial" true (a_full <> [])

let test_carrefour_end_to_end_migration () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.round_4k_carrefour with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let counters = Numa.Counters.create s.Xen.System.topo in
  (* Saturate node of pfn 0 and feed a single-remote-node hot page. *)
  let victim_node =
    match Policies.Manager.node_of_pfn m 0 with Some n -> n | None -> Alcotest.fail "pfn 0 unmapped"
  in
  let gib = 1024.0 *. 1024.0 *. 1024.0 in
  Numa.Counters.record_accesses counters ~src:victim_node ~dst:victim_node
    ~count:(13.0 *. gib /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch counters ~duration:1.0;
  let remote = (victim_node + 1) mod 8 in
  let sample = hot_page 0 ~node:remote ~count:1000.0 in
  (match Policies.Manager.carrefour_epoch m ~counters ~samples:[ sample ] with
  | Some report ->
      Alcotest.(check bool) "some migration happened" true
        (report.Policies.Carrefour.interleave_migrations
         + report.Policies.Carrefour.locality_migrations
         > 0)
  | None -> Alcotest.fail "carrefour should be active");
  Alcotest.(check bool) "page moved off the hot node" true
    (Policies.Manager.node_of_pfn m 0 <> Some victim_node);
  Alcotest.(check bool) "migration accounted" true
    (d.Xen.Domain.account.Xen.Domain.migrated_pages > 0)

let test_carrefour_replication_mechanics () =
  let s = small_system () in
  let d, _m = attach s in
  let sys = Policies.Carrefour.System_component.create s d in
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  Alcotest.(check bool) "replicate" true (Policies.Carrefour.System_component.replicate sys ~pfn:0);
  Alcotest.(check bool) "marked" true (Policies.Carrefour.System_component.is_replicated sys 0);
  (* One replica frame per other node is really held. *)
  Alcotest.(check int) "7 frames held" (free0 - 7) (Memory.Machine.free_frames s.Xen.System.machine);
  Alcotest.(check bool) "double replicate refused" false
    (Policies.Carrefour.System_component.replicate sys ~pfn:0);
  Alcotest.(check bool) "copy cost charged" true
    (d.Xen.Domain.account.Xen.Domain.migrate_time > 0.0);
  Policies.Carrefour.System_component.collapse sys ~pfn:0;
  Alcotest.(check bool) "collapsed" false (Policies.Carrefour.System_component.is_replicated sys 0);
  Alcotest.(check int) "frames returned" free0 (Memory.Machine.free_frames s.Xen.System.machine)

let test_carrefour_write_collapses_replica () =
  let s = small_system () in
  let d, _m = attach s in
  let sys = Policies.Carrefour.System_component.create s d in
  ignore (Policies.Carrefour.System_component.replicate sys ~pfn:1);
  (* A read-only sample keeps the replicas... *)
  Policies.Carrefour.System_component.record_samples sys
    [ hot_page ~read_fraction:1.0 1 ~node:2 ~count:10.0 ];
  Alcotest.(check bool) "reads keep replicas" true
    (Policies.Carrefour.System_component.is_replicated sys 1);
  (* ...but a write invalidates them. *)
  Policies.Carrefour.System_component.record_samples sys
    [ hot_page ~read_fraction:0.9 1 ~node:2 ~count:10.0 ];
  Alcotest.(check bool) "write collapses" false
    (Policies.Carrefour.System_component.is_replicated sys 1)

let test_carrefour_migrate_collapses_replica () =
  let s = small_system () in
  let d, _m = attach s in
  let sys = Policies.Carrefour.System_component.create s d in
  ignore (Policies.Carrefour.System_component.replicate sys ~pfn:2);
  ignore (Policies.Carrefour.System_component.migrate sys ~pfn:2 ~node:5);
  Alcotest.(check bool) "migration collapses replicas" false
    (Policies.Carrefour.System_component.is_replicated sys 2)

let replication_config =
  {
    config with
    Policies.Carrefour.User_component.enable_replication = true;
    replication_read_threshold = 0.95;
    min_reader_nodes = 3;
  }

let multi_reader_page ?(read_fraction = 1.0) pfn ~count =
  { Policies.Carrefour.pfn; node_accesses = Array.make 8 count; read_fraction }

let test_carrefour_replication_decision () =
  let rng = Sim.Rng.create ~seed:6 in
  let hot = [ multi_reader_page 4 ~count:50.0 ] in
  let m = metrics ~controller_util:(Array.make 8 0.2) ~max_link_util:0.9 ~hot in
  (match
     Policies.Carrefour.User_component.decide replication_config ~rng ~metrics:m
       ~current_node:(fun _ -> Some 0)
   with
  | [ a ] ->
      Alcotest.(check bool) "replicate reason" true
        (a.Policies.Carrefour.User_component.reason = Policies.Carrefour.User_component.Replicate)
  | actions -> Alcotest.failf "expected one replicate action, got %d" (List.length actions));
  (* Same page with writes: not a candidate. *)
  let hot = [ multi_reader_page ~read_fraction:0.7 5 ~count:50.0 ] in
  let m = metrics ~controller_util:(Array.make 8 0.2) ~max_link_util:0.9 ~hot in
  let actions =
    Policies.Carrefour.User_component.decide replication_config ~rng ~metrics:m
      ~current_node:(fun _ -> Some 0)
  in
  Alcotest.(check bool) "written page not replicated" true
    (List.for_all
       (fun (a : Policies.Carrefour.User_component.action) ->
         a.Policies.Carrefour.User_component.reason
         <> Policies.Carrefour.User_component.Replicate)
       actions)

let test_carrefour_replication_off_by_default () =
  let rng = Sim.Rng.create ~seed:7 in
  let hot = [ multi_reader_page 6 ~count:50.0 ] in
  let m = metrics ~controller_util:(Array.make 8 0.2) ~max_link_util:0.9 ~hot in
  Alcotest.(check bool) "default config never replicates" true
    (List.for_all
       (fun (a : Policies.Carrefour.User_component.action) ->
         a.Policies.Carrefour.User_component.reason
         <> Policies.Carrefour.User_component.Replicate)
       (Policies.Carrefour.User_component.decide config ~rng ~metrics:m
          ~current_node:(fun _ -> Some 0)))

let prop_carrefour_actions_within_budget_and_hot =
  QCheck.Test.make ~name:"carrefour actions subset of hot pages, within budget" ~count:100
    QCheck.(pair (int_range 1 50) (int_range 1 64))
    (fun (pages, budget) ->
      let rng = Sim.Rng.create ~seed:(pages + budget) in
      let hot = List.init pages (fun i -> hot_page i ~node:0 ~count:100.0) in
      let controller_util = [| 0.9; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1 |] in
      let m = metrics ~controller_util ~max_link_util:0.9 ~hot in
      let cfg = { config with Policies.Carrefour.User_component.migration_budget = budget } in
      let actions =
        Policies.Carrefour.User_component.decide cfg ~rng ~metrics:m
          ~current_node:(fun _ -> Some 0)
      in
      List.length actions <= budget
      && List.for_all
           (fun (a : Policies.Carrefour.User_component.action) ->
             a.Policies.Carrefour.User_component.pfn < pages)
           actions)

(* ------------------------- failure injection ------------------------ *)

(* Exhaust one node's 16 one-GiB frames. *)
let drain_node s node =
  let rec go acc =
    match Memory.Machine.alloc_frame s.Xen.System.machine ~node with
    | Some mfn -> go (mfn :: acc)
    | None -> acc
  in
  go []

let test_failure_migrate_to_full_node () =
  let s = small_system () in
  let d = make_domain s in
  ignore (Policies.Internal.map_page s d ~pfn:0 ~node:0);
  let held = drain_node s 7 in
  (match Policies.Internal.migrate_page s d ~pfn:0 ~node:7 with
  | Error `Enomem -> ()
  | Ok _ -> Alcotest.fail "migration to a full node must fail"
  | Error `Not_mapped -> Alcotest.fail "page is mapped");
  (* The page survives on its original node; nothing leaked. *)
  Alcotest.(check (option int)) "still on node 0" (Some 0) (Policies.Internal.node_of_pfn s d 0);
  Alcotest.(check int) "no pages copied" 0 d.Xen.Domain.account.Xen.Domain.migrated_pages;
  List.iter (fun mfn -> Memory.Machine.free s.Xen.System.machine ~mfn ~order:0) held

let test_failure_map_when_machine_full () =
  let s = small_system () in
  let d = make_domain s in
  let held = List.concat_map (fun node -> drain_node s node) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  (match Policies.Internal.map_page s d ~pfn:1 ~node:3 with
  | Error `Enomem -> ()
  | Ok _ -> Alcotest.fail "map must fail when the machine is full");
  Alcotest.(check bool) "entry still invalid" true (Xen.P2m.get d.Xen.Domain.p2m 1 = Xen.P2m.Invalid);
  List.iter (fun mfn -> Memory.Machine.free s.Xen.System.machine ~mfn ~order:0) held

let test_failure_carrefour_reports_failed () =
  let s = small_system () in
  let d, m = attach s in
  (match Policies.Manager.set_policy m Policies.Spec.round_4k_carrefour with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore d;
  let victim_node =
    match Policies.Manager.node_of_pfn m 0 with Some n -> n | None -> Alcotest.fail "unmapped"
  in
  (* Fill every other node so no migration can find a frame. *)
  let held =
    List.concat_map
      (fun node -> if node = victim_node then [] else drain_node s node)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let counters = Numa.Counters.create s.Xen.System.topo in
  let gib = 1024.0 *. 1024.0 *. 1024.0 in
  Numa.Counters.record_accesses counters ~src:victim_node ~dst:victim_node
    ~count:(13.0 *. gib /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch counters ~duration:1.0;
  (match Policies.Manager.carrefour_epoch m ~counters ~samples:[ hot_page 0 ~node:victim_node ~count:1000.0 ] with
  | Some report ->
      Alcotest.(check bool) "failure counted, no crash" true
        (report.Policies.Carrefour.failed > 0
        || report.Policies.Carrefour.interleave_migrations
           + report.Policies.Carrefour.locality_migrations
           = 0)
  | None -> Alcotest.fail "carrefour active");
  List.iter (fun mfn -> Memory.Machine.free s.Xen.System.machine ~mfn ~order:0) held

let test_failure_replicate_leaks_nothing () =
  let s = small_system () in
  let d, _m = attach s in
  let sys = Policies.Carrefour.System_component.create s d in
  let held = drain_node s 6 in
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  Alcotest.(check bool) "replicate fails (node 6 full)" false
    (Policies.Carrefour.System_component.replicate sys ~pfn:0);
  Alcotest.(check int) "no frames leaked" free0 (Memory.Machine.free_frames s.Xen.System.machine);
  List.iter (fun mfn -> Memory.Machine.free s.Xen.System.machine ~mfn ~order:0) held

(* ------------------------------ evacuation ------------------------- *)

let mapped_pfns d =
  List.sort compare
    (Xen.P2m.fold_mapped d.Xen.Domain.p2m ~init:[] ~f:(fun acc pfn _ -> pfn :: acc))

let test_ecc_handlers () =
  let s = small_system () in
  let d, m = attach s in
  let machine = s.Xen.System.machine in
  let node0 = match Policies.Manager.node_of_pfn m 0 with Some n -> n | None -> Alcotest.fail "unmapped" in
  (* CE: scrubbed in place — same node, frame stays online. *)
  Policies.Manager.handle_ecc_ce m ~pfn:0;
  Alcotest.(check (option int)) "ce leaves the page" (Some node0) (Policies.Manager.node_of_pfn m 0);
  (* UE: the frame is poisoned — remapped elsewhere, old frame retired. *)
  let bad_mfn =
    match Xen.P2m.get d.Xen.Domain.p2m 1 with
    | Xen.P2m.Mapped { mfn; _ } -> mfn
    | Xen.P2m.Invalid -> Alcotest.fail "pfn 1 unmapped"
  in
  Policies.Manager.handle_ecc_ue m ~pfn:1;
  Alcotest.(check bool) "pfn 1 still mapped" true (Xen.P2m.get d.Xen.Domain.p2m 1 <> Xen.P2m.Invalid);
  Alcotest.(check bool) "poisoned frame offlined" true (Memory.Machine.is_offlined machine bad_mfn);
  (* Unmapped pfns are a no-op for both handlers. *)
  let off0 = (Policies.Manager.degrade m).Policies.Manager.offlined in
  Policies.Manager.handle_ecc_ue m ~pfn:(d.Xen.Domain.mem_frames - 1 + 1_000_000);
  Alcotest.(check int) "unmapped ue ignored" off0
    (Policies.Manager.degrade m).Policies.Manager.offlined;
  let dg = Policies.Manager.degrade m in
  Alcotest.(check int) "one ce counted" 1 dg.Policies.Manager.ecc_ce;
  Alcotest.(check int) "one ue counted" 1 dg.Policies.Manager.ecc_ue;
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent d.Xen.Domain.p2m)

(* The RAS satellite property: after a node failure the drain completes,
   the P2M maps exactly the pfns it mapped before the failure, none of
   them resident on the failed node or on an offlined machine frame,
   and frame accounting still balances. *)
let prop_evacuation_conserves_frames =
  QCheck.Test.make ~name:"evacuation conserves the guest frame set" ~count:60
    QCheck.(pair (int_range 0 1000) (int_range 1 4))
    (fun (n, gib) ->
      let s = Xen.System.create ~page_scale:16384 (Numa.Amd48.topology ()) in
      let d =
        Xen.System.create_domain s ~name:"evac" ~kind:Xen.Domain.DomU ~vcpus:6
          ~mem_bytes:(gib * 1024 * 1024 * 1024) ()
      in
      let rng = Sim.Rng.create ~seed:((n * 7919) + 3) in
      let m = Policies.Manager.attach s d ~boot:Policies.Spec.round_4k ~rng in
      let pre = mapped_pfns d in
      let home = d.Xen.Domain.home_nodes in
      let node = home.(n mod Array.length home) in
      let machine = s.Xen.System.machine in
      Numa.Topology.set_node_online s.Xen.System.topo node false;
      ignore (Memory.Machine.offline_node machine node);
      Policies.Manager.request_evacuation m ~node;
      let epoch = ref 0 in
      while Policies.Manager.evacuating m >= 0 && !epoch < 2_000 do
        Policies.Manager.epoch_tick m ~epoch:!epoch ();
        incr epoch
      done;
      let resident_bad = ref 0 in
      Xen.P2m.iter_mapped d.Xen.Domain.p2m (fun _ mfn ->
          if
            Memory.Machine.is_offlined machine mfn
            || Memory.Machine.node_of_mfn machine mfn = node
          then incr resident_bad);
      Policies.Manager.evacuating m = -1
      && mapped_pfns d = pre
      && !resident_bad = 0
      && (Policies.Manager.degrade m).Policies.Manager.evacuated > 0
      && Xen.P2m.check_consistent d.Xen.Domain.p2m)

let suite =
  [
    ( "policies.failure-injection",
      [
        Alcotest.test_case "migrate to full node" `Quick test_failure_migrate_to_full_node;
        Alcotest.test_case "map when machine full" `Quick test_failure_map_when_machine_full;
        Alcotest.test_case "carrefour out of memory" `Quick test_failure_carrefour_reports_failed;
        Alcotest.test_case "replicate leaks nothing" `Quick test_failure_replicate_leaks_nothing;
      ] );
    ( "policies.evacuation",
      [
        Alcotest.test_case "ecc handlers" `Quick test_ecc_handlers;
        QCheck_alcotest.to_alcotest prop_evacuation_conserves_frames;
      ] );
    ( "policies.spec",
      [
        Alcotest.test_case "names" `Quick test_spec_names;
        Alcotest.test_case "parse" `Quick test_spec_parse;
        Alcotest.test_case "runtime selectable" `Quick test_spec_runtime_selectable;
        Alcotest.test_case "name roundtrip" `Quick test_spec_roundtrip;
      ] );
    ( "policies.internal",
      [
        Alcotest.test_case "map page" `Quick test_internal_map_page;
        Alcotest.test_case "map replaces and frees" `Quick test_internal_map_replaces_and_frees;
        Alcotest.test_case "migrate" `Quick test_internal_migrate;
        Alcotest.test_case "migrate noop same node" `Quick test_internal_migrate_noop_same_node;
        Alcotest.test_case "migrate unmapped" `Quick test_internal_migrate_unmapped;
        Alcotest.test_case "migrate preserves protection" `Quick
          test_internal_migrate_preserves_protection;
      ] );
    ( "policies.manager",
      [
        Alcotest.test_case "round-4k boot" `Quick test_manager_round4k_boot;
        Alcotest.test_case "round-1g boot" `Quick test_manager_round1g_boot;
        Alcotest.test_case "first-touch boot lazy" `Quick test_manager_first_touch_boot_lazy;
        Alcotest.test_case "first-touch fault placement" `Quick
          test_manager_first_touch_fault_places_locally;
        Alcotest.test_case "set_policy hypercall" `Quick test_manager_set_policy;
        Alcotest.test_case "page ops invalidate" `Quick test_manager_page_ops_invalidate;
        Alcotest.test_case "reallocated left in place" `Quick test_manager_page_ops_reallocated_left;
        Alcotest.test_case "inert without first-touch" `Quick
          test_manager_page_ops_inert_without_first_touch;
        Alcotest.test_case "release free pages" `Quick test_manager_release_free_pages_batches;
      ] );
    ( "policies.carrefour",
      [
        Alcotest.test_case "interleave on overload" `Quick test_carrefour_interleave_on_overload;
        Alcotest.test_case "locality on saturation" `Quick test_carrefour_locality_on_saturation;
        Alcotest.test_case "idle does nothing" `Quick test_carrefour_idle_no_actions;
        Alcotest.test_case "budget" `Quick test_carrefour_respects_budget;
        Alcotest.test_case "min accesses" `Quick test_carrefour_min_accesses_filter;
        Alcotest.test_case "heat decay" `Quick test_carrefour_system_decay;
        Alcotest.test_case "top-k readout = full sort" `Quick test_carrefour_topk_matches_sort;
        Alcotest.test_case "end-to-end migration" `Quick test_carrefour_end_to_end_migration;
        Alcotest.test_case "replication mechanics" `Quick test_carrefour_replication_mechanics;
        Alcotest.test_case "write collapses replicas" `Quick test_carrefour_write_collapses_replica;
        Alcotest.test_case "migrate collapses replicas" `Quick
          test_carrefour_migrate_collapses_replica;
        Alcotest.test_case "replication decision" `Quick test_carrefour_replication_decision;
        Alcotest.test_case "replication off by default" `Quick
          test_carrefour_replication_off_by_default;
        QCheck_alcotest.to_alcotest prop_carrefour_actions_within_budget_and_hot;
      ] );
  ]
