(* Tests for the xen library: costs, p2m, domain, system, ipi, pci, dma. *)

let check_us = Alcotest.(check (float 1e-7))

(* ------------------------------- costs ----------------------------- *)

let test_costs_dma_calibration () =
  (* Section 2.2.2: 4 KiB reads cost 74/307/186 us over the three paths. *)
  let c = Xen.Costs.default in
  check_us "native 4k" 74e-6 (Xen.Costs.disk_request c ~path:`Native ~bytes:4096);
  check_us "pv 4k" 307e-6 (Xen.Costs.disk_request c ~path:`Pv ~bytes:4096);
  check_us "passthrough 4k" 186e-6 (Xen.Costs.disk_request c ~path:`Passthrough ~bytes:4096)

let test_costs_overhead_amortises () =
  (* "the larger the amount of bytes read, the lower the overhead". *)
  let c = Xen.Costs.default in
  let ratio bytes =
    Xen.Costs.disk_request c ~path:`Pv ~bytes /. Xen.Costs.disk_request c ~path:`Native ~bytes
  in
  Alcotest.(check bool) "4k pv ratio > 1m pv ratio" true (ratio 4096 > ratio (1024 * 1024));
  Alcotest.(check bool) "1m ratio close to 1" true (ratio (1024 * 1024) < 1.1)

let test_costs_ipi () =
  let c = Xen.Costs.default in
  check_us "native ipi" 0.9e-6 c.Xen.Costs.ipi_native;
  check_us "guest ipi" 10.9e-6 c.Xen.Costs.ipi_guest

(* -------------------------------- p2m ------------------------------ *)

let test_p2m_basic () =
  let p = Xen.P2m.create ~frames:8 () in
  Alcotest.(check int) "empty" 0 (Xen.P2m.mapped_count p);
  Alcotest.(check bool) "invalid" true (Xen.P2m.get p 0 = Xen.P2m.Invalid);
  Xen.P2m.set p 0 ~mfn:42 ~writable:true;
  (match Xen.P2m.get p 0 with
  | Xen.P2m.Mapped { mfn; writable } ->
      Alcotest.(check int) "mfn" 42 mfn;
      Alcotest.(check bool) "writable" true writable
  | Xen.P2m.Invalid -> Alcotest.fail "should be mapped");
  Alcotest.(check int) "one mapped" 1 (Xen.P2m.mapped_count p)

let test_p2m_invalidate () =
  let p = Xen.P2m.create ~frames:4 () in
  Xen.P2m.set p 2 ~mfn:7 ~writable:false;
  Alcotest.(check (option int)) "returns old mfn" (Some 7) (Xen.P2m.invalidate p 2);
  Alcotest.(check (option int)) "already invalid" None (Xen.P2m.invalidate p 2);
  Alcotest.(check int) "none mapped" 0 (Xen.P2m.mapped_count p)

let test_p2m_write_protect () =
  let p = Xen.P2m.create ~frames:4 () in
  Xen.P2m.set p 1 ~mfn:9 ~writable:true;
  Xen.P2m.write_protect p 1;
  (match Xen.P2m.get p 1 with
  | Xen.P2m.Mapped { writable; _ } -> Alcotest.(check bool) "read-only" false writable
  | Xen.P2m.Invalid -> Alcotest.fail "still mapped");
  (* No-op on invalid entries. *)
  Xen.P2m.write_protect p 0;
  Alcotest.(check bool) "entry 0 untouched" true (Xen.P2m.get p 0 = Xen.P2m.Invalid)

let test_p2m_remap_keeps_count () =
  let p = Xen.P2m.create ~frames:4 () in
  Xen.P2m.set p 0 ~mfn:1 ~writable:true;
  Xen.P2m.set p 0 ~mfn:2 ~writable:true;
  Alcotest.(check int) "still one" 1 (Xen.P2m.mapped_count p)

let test_p2m_iteration () =
  let p = Xen.P2m.create ~frames:8 () in
  Xen.P2m.set p 1 ~mfn:10 ~writable:true;
  Xen.P2m.set p 5 ~mfn:50 ~writable:true;
  let pairs = Xen.P2m.fold_mapped p ~init:[] ~f:(fun acc pfn mfn -> (pfn, mfn) :: acc) in
  Alcotest.(check (list (pair int int))) "fold" [ (5, 50); (1, 10) ] pairs

let test_p2m_bounds () =
  let p = Xen.P2m.create ~frames:4 () in
  Alcotest.check_raises "out of range" (Invalid_argument "P2m: pfn out of range") (fun () ->
      ignore (Xen.P2m.get p 4))

let prop_p2m_set_get_roundtrip =
  QCheck.Test.make ~name:"p2m set/get roundtrip" ~count:300
    QCheck.(triple (int_range 0 63) (int_range 0 10000) bool)
    (fun (pfn, mfn, writable) ->
      let p = Xen.P2m.create ~frames:64 () in
      Xen.P2m.set p pfn ~mfn ~writable;
      Xen.P2m.get p pfn = Xen.P2m.Mapped { mfn; writable })

(* --------------------------- p2m superpages ------------------------ *)

let test_p2m_superpage_map_lookup () =
  let p = Xen.P2m.create ~sp_frames:8 ~frames:32 () in
  Xen.P2m.map_superpage p ~pfn:8 ~mfn:64 ~writable:true;
  Alcotest.(check int) "one superpage" 1 (Xen.P2m.superpage_count p);
  Alcotest.(check int) "8 frames covered" 8 (Xen.P2m.superpage_frames p);
  Alcotest.(check int) "8 mapped" 8 (Xen.P2m.mapped_count p);
  for i = 0 to 7 do
    Alcotest.(check bool) "inside" true (Xen.P2m.is_superpage p (8 + i));
    Alcotest.(check bool) "contiguous mfn" true
      (Xen.P2m.get p (8 + i) = Xen.P2m.Mapped { mfn = 64 + i; writable = true })
  done;
  Alcotest.(check bool) "outside" false (Xen.P2m.is_superpage p 0);
  Alcotest.(check int) "base" 8 (Xen.P2m.superpage_base p 13);
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent p)

let test_p2m_superpage_splinter_preserves_lookups () =
  let p = Xen.P2m.create ~sp_frames:8 ~frames:16 () in
  Xen.P2m.map_superpage p ~pfn:0 ~mfn:32 ~writable:true;
  Alcotest.(check int) "8 demoted" 8 (Xen.P2m.splinter p 3);
  Alcotest.(check int) "no superpages" 0 (Xen.P2m.superpage_count p);
  Alcotest.(check int) "counter" 1 (Xen.P2m.splinter_count p);
  for i = 0 to 7 do
    Alcotest.(check bool) (Printf.sprintf "frame %d unchanged" i) true
      (Xen.P2m.get p i = Xen.P2m.Mapped { mfn = 32 + i; writable = true })
  done;
  Alcotest.(check int) "second splinter is a no-op" 0 (Xen.P2m.splinter p 3);
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent p)

let test_p2m_superpage_mutation_splinters () =
  let p = Xen.P2m.create ~sp_frames:4 ~frames:8 () in
  Xen.P2m.map_superpage p ~pfn:4 ~mfn:16 ~writable:true;
  (* A single-frame invalidate inside the extent demotes it first; the
     untouched neighbours keep their exact translations. *)
  Alcotest.(check (option int)) "old mfn back" (Some 18) (Xen.P2m.invalidate p 6);
  Alcotest.(check int) "demoted" 1 (Xen.P2m.splinter_count p);
  Alcotest.(check bool) "not a superpage now" false (Xen.P2m.is_superpage p 4);
  Alcotest.(check bool) "neighbour stable" true
    (Xen.P2m.get p 5 = Xen.P2m.Mapped { mfn = 17; writable = true });
  (* write_protect on a fresh superpage also splinters. *)
  let q = Xen.P2m.create ~sp_frames:4 ~frames:4 () in
  Xen.P2m.map_superpage q ~pfn:0 ~mfn:0 ~writable:true;
  Xen.P2m.write_protect q 2;
  Alcotest.(check int) "wp splinters" 1 (Xen.P2m.splinter_count q);
  Alcotest.(check bool) "only the target is read-only" true
    (Xen.P2m.get q 1 = Xen.P2m.Mapped { mfn = 1; writable = true }
    && Xen.P2m.get q 2 = Xen.P2m.Mapped { mfn = 2; writable = false });
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent q)

let test_p2m_superpage_promote () =
  let p = Xen.P2m.create ~sp_frames:4 ~frames:8 () in
  (* Contiguous, aligned, uniform: promotable. *)
  for i = 0 to 3 do
    Xen.P2m.set p i ~mfn:(8 + i) ~writable:true
  done;
  Alcotest.(check bool) "promotes" true (Xen.P2m.promote p ~pfn:0);
  Alcotest.(check bool) "is superpage" true (Xen.P2m.is_superpage p 0);
  Alcotest.(check int) "counter" 1 (Xen.P2m.promote_count p);
  Alcotest.(check bool) "idempotence guard" false (Xen.P2m.promote p ~pfn:0);
  (* Non-contiguous mfns: not promotable. *)
  Xen.P2m.set p 4 ~mfn:20 ~writable:true;
  Xen.P2m.set p 5 ~mfn:22 ~writable:true;
  Xen.P2m.set p 6 ~mfn:23 ~writable:true;
  Xen.P2m.set p 7 ~mfn:24 ~writable:true;
  Alcotest.(check bool) "rejects gaps" false (Xen.P2m.promote p ~pfn:4);
  Alcotest.check_raises "unaligned base" (Invalid_argument "P2m.promote: pfn not aligned")
    (fun () -> ignore (Xen.P2m.promote p ~pfn:2));
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent p)

let test_p2m_superpage_map_errors () =
  let p = Xen.P2m.create ~sp_frames:4 ~frames:8 () in
  Alcotest.check_raises "unaligned pfn"
    (Invalid_argument "P2m.map_superpage: pfn not aligned") (fun () ->
      Xen.P2m.map_superpage p ~pfn:2 ~mfn:0 ~writable:true);
  Alcotest.check_raises "unaligned mfn"
    (Invalid_argument "P2m.map_superpage: mfn not aligned") (fun () ->
      Xen.P2m.map_superpage p ~pfn:0 ~mfn:3 ~writable:true);
  Xen.P2m.set p 5 ~mfn:9 ~writable:true;
  Alcotest.check_raises "occupied extent"
    (Invalid_argument "P2m.map_superpage: extent not empty") (fun () ->
      Xen.P2m.map_superpage p ~pfn:4 ~mfn:8 ~writable:true);
  let q = Xen.P2m.create ~sp_frames:1 ~frames:4 () in
  Alcotest.check_raises "superpages disabled"
    (Invalid_argument "P2m.map_superpage: sp_frames is 1") (fun () ->
      Xen.P2m.map_superpage q ~pfn:0 ~mfn:0 ~writable:true)

(* Satellite property: any interleaving of map / map_superpage /
   splinter / promote / invalidate / write_protect keeps the table
   consistent, and splintering an extent never changes the translation
   of frames that were not themselves mutated. *)
let prop_p2m_superpage_interleavings =
  let frames = 64 and sp = 8 in
  QCheck.Test.make ~name:"p2m superpage ops keep the table consistent" ~count:200
    QCheck.(pair int (int_range 20 120))
    (fun (seed, steps) ->
      let p = Xen.P2m.create ~sp_frames:sp ~frames () in
      let rng = Sim.Rng.create ~seed in
      for _ = 1 to steps do
        let pfn = Sim.Rng.int rng frames in
        let base = Xen.P2m.superpage_base p pfn in
        (* Snapshot the extent: frames other than [pfn] must translate
           identically after any single-frame mutation, superpage or
           not. *)
        let before = Array.init sp (fun i -> Xen.P2m.get p (base + i)) in
        let exempt =
          match Sim.Rng.int rng 6 with
          | 0 ->
              Xen.P2m.set p pfn ~mfn:(Sim.Rng.int rng 4096) ~writable:(Sim.Rng.bool rng);
              `Frame pfn
          | 1 ->
              ignore (Xen.P2m.invalidate p pfn);
              `Frame pfn
          | 2 ->
              Xen.P2m.write_protect p pfn;
              `Frame pfn
          | 3 ->
              ignore (Xen.P2m.splinter p pfn);
              `Nothing (* splinter alone must not change any translation *)
          | 4 ->
              ignore (Xen.P2m.promote p ~pfn:base);
              `Nothing
          | _ ->
              let empty = ref true in
              for i = 0 to sp - 1 do
                if Xen.P2m.get p (base + i) <> Xen.P2m.Invalid then empty := false
              done;
              if !empty then begin
                Xen.P2m.map_superpage p ~pfn:base
                  ~mfn:(sp * Sim.Rng.int rng 512)
                  ~writable:(Sim.Rng.bool rng);
                `Extent (* the whole extent legitimately changed *)
              end
              else `Nothing
        in
        if not (Xen.P2m.check_consistent p) then
          QCheck.Test.fail_reportf "inconsistent table after op on pfn %d" pfn;
        (match exempt with
        | `Extent -> ()
        | (`Frame _ | `Nothing) as e ->
            Array.iteri
              (fun i old ->
                let f = base + i in
                if e <> `Frame f && Xen.P2m.get p f <> old then
                  QCheck.Test.fail_reportf
                    "untouched frame %d changed translation (op on %d)" f pfn)
              before)
      done;
      (* Cumulative counters never go backwards and frames conserve. *)
      Xen.P2m.superpage_frames p <= Xen.P2m.mapped_count p)

(* ----------------------------- p2m batches ------------------------- *)

(* Twin tables grown through identical random superpage / per-frame
   maps, so a batched mutation on one can be checked against the
   per-page loop on the other. *)
let build_twin_p2m ~frames ~sp ~seed =
  let a = Xen.P2m.create ~sp_frames:sp ~frames () in
  let b = Xen.P2m.create ~sp_frames:sp ~frames () in
  let rng = Sim.Rng.create ~seed in
  for e = 0 to (frames / sp) - 1 do
    let base = e * sp in
    match Sim.Rng.int rng 3 with
    | 0 ->
        let mfn = sp * Sim.Rng.int rng 512 in
        let w = Sim.Rng.bool rng in
        Xen.P2m.map_superpage a ~pfn:base ~mfn ~writable:w;
        Xen.P2m.map_superpage b ~pfn:base ~mfn ~writable:w
    | 1 ->
        for i = 0 to sp - 1 do
          if Sim.Rng.bool rng then begin
            let mfn = Sim.Rng.int rng 4096 and w = Sim.Rng.bool rng in
            Xen.P2m.set a (base + i) ~mfn ~writable:w;
            Xen.P2m.set b (base + i) ~mfn ~writable:w
          end
        done
    | _ -> ()
  done;
  (a, b)

let p2m_dump p =
  Array.init (Xen.P2m.frames p) (fun pfn ->
      (Xen.P2m.get p pfn, Xen.P2m.is_superpage p pfn))

(* Satellite property: a batched mutation leaves the table in exactly
   the state of the per-page loop over the same ops, whatever the op
   order, duplicates included. *)
let prop_p2m_invalidate_batch_equals_per_page =
  let frames = 64 and sp = 8 in
  QCheck.Test.make ~name:"p2m invalidate_batch = per-page invalidate" ~count:300
    QCheck.(pair int (small_list (int_range 0 63)))
    (fun (seed, pfns_l) ->
      let a, b = build_twin_p2m ~frames ~sp ~seed in
      let pfns = Array.of_list pfns_l in
      let freed_a = ref [] in
      let stats =
        Xen.P2m.invalidate_batch a
          ~on_free:(fun pfn mfn -> freed_a := (pfn, mfn) :: !freed_a)
          pfns ~n:(Array.length pfns)
      in
      let freed_b = ref [] in
      List.iter
        (fun pfn ->
          match Xen.P2m.invalidate b pfn with
          | Some mfn -> freed_b := (pfn, mfn) :: !freed_b
          | None -> ())
        pfns_l;
      if p2m_dump a <> p2m_dump b then QCheck.Test.fail_report "tables diverged";
      if not (Xen.P2m.check_consistent a) then QCheck.Test.fail_report "inconsistent";
      stats.Xen.P2m.applied = List.length !freed_b
      && List.sort compare !freed_a = List.sort compare !freed_b)

let prop_p2m_migrate_batch_equals_per_page =
  let frames = 64 and sp = 8 in
  QCheck.Test.make ~name:"p2m migrate_batch = per-page remap" ~count:300
    QCheck.(pair int (small_list (pair (int_range 0 63) (int_range 0 4095))))
    (fun (seed, moves) ->
      (* Per-page reference for a remap: read the writable bit, set the
         new mfn.  Duplicated pfns legitimately remap twice; the batch
         (sorted) and the loop (list order) end on the same final mfn
         only when each pfn appears once, so dedup the spec. *)
      let seen = Hashtbl.create 16 in
      let moves =
        List.filter
          (fun (pfn, _) ->
            if Hashtbl.mem seen pfn then false else (Hashtbl.add seen pfn (); true))
          moves
      in
      let a, b = build_twin_p2m ~frames ~sp ~seed in
      let pfns = Array.of_list (List.map fst moves) in
      let mfns = Array.of_list (List.map snd moves) in
      let displaced_a = ref [] in
      let stats =
        Xen.P2m.migrate_batch a pfns mfns ~n:(Array.length pfns)
          ~f:(fun pfn ~old_mfn -> displaced_a := (pfn, old_mfn) :: !displaced_a)
      in
      let displaced_b = ref [] in
      List.iter
        (fun (pfn, mfn) ->
          match Xen.P2m.get b pfn with
          | Xen.P2m.Invalid -> ()
          | Xen.P2m.Mapped { mfn = old_mfn; writable } ->
              Xen.P2m.set b pfn ~mfn ~writable;
              displaced_b := (pfn, old_mfn) :: !displaced_b)
        moves;
      if p2m_dump a <> p2m_dump b then QCheck.Test.fail_report "tables diverged";
      stats.Xen.P2m.applied = List.length !displaced_b
      && List.sort compare !displaced_a = List.sort compare !displaced_b
      && Xen.P2m.check_consistent a)

(* Batched replay: the stamp-array dedup visits the same pages with
   the same verdicts as the hashtable fallback, and feeding the
   Invalidate winners through invalidate_batch leaves the P2M exactly
   as per-page invalidation of the same winners. *)
let prop_p2m_batched_replay_equals_per_page =
  let frames = 64 and sp = 8 in
  QCheck.Test.make ~name:"batched pv replay = per-page replay on the p2m" ~count:300
    QCheck.(pair int (small_list (pair bool (int_range 0 63))))
    (fun (seed, spec) ->
      let ops =
        Array.of_list
          (List.map
             (fun (alloc, pfn) ->
               if alloc then Guest.Pv_queue.Alloc pfn else Guest.Pv_queue.Release pfn)
             spec)
      in
      let a, b = build_twin_p2m ~frames ~sp ~seed in
      let dedup = Guest.Pv_queue.dedup ~frames in
      let winners = ref [] and fallback = ref [] in
      Guest.Pv_queue.replay ~dedup ops ~f:(fun pfn verdict ->
          winners := (pfn, verdict = `Invalidate) :: !winners);
      Guest.Pv_queue.replay ops ~f:(fun pfn verdict ->
          fallback := (pfn, verdict = `Invalidate) :: !fallback);
      if List.sort compare !winners <> List.sort compare !fallback then
        QCheck.Test.fail_report "dedup and hashtable replays disagree";
      let inv = List.filter_map (fun (pfn, i) -> if i then Some pfn else None) !winners in
      let batch = Array.of_list inv in
      ignore (Xen.P2m.invalidate_batch a batch ~n:(Array.length batch));
      List.iter (fun pfn -> ignore (Xen.P2m.invalidate b pfn)) inv;
      p2m_dump a = p2m_dump b && Xen.P2m.check_consistent a)

(* The amortisation guarantee: a batch of n never charges more than n
   unbatched operations, and a 1-element migrate batch charges exactly
   the unbatched cost. *)
let prop_batch_costs_bounded =
  QCheck.Test.make ~name:"batch costs never exceed per-page sums" ~count:300
    QCheck.(pair (int_range 1 4096) (int_range 1 64))
    (fun (n, scale) ->
      let c = Xen.Costs.default in
      let nf = float_of_int n in
      let ops_batch = Xen.Costs.page_ops_batch_time c ~ops:n in
      let ops_sum = nf *. (c.Xen.Costs.hypercall_entry +. c.Xen.Costs.page_op_send) in
      let inv_batch = Xen.Costs.invalidate_batch_time c ~frames:n in
      let inv_sum = nf *. c.Xen.Costs.page_invalidate in
      let map_batch = Xen.Costs.map_batch_time c ~frames:n in
      let map_sum = nf *. c.Xen.Costs.page_map in
      let page_bytes = 4096 * scale in
      let mig_single =
        (float_of_int scale *. c.Xen.Costs.page_migrate_fixed)
        +. (float_of_int page_bytes *. c.Xen.Costs.copy_byte)
      in
      let mig_batch = Xen.Costs.migrate_batch_time c ~pages:n ~page_bytes ~scale in
      let mig_sum = nf *. mig_single in
      ops_batch <= ops_sum
      && inv_batch <= inv_sum
      && map_batch <= map_sum
      && mig_batch <= mig_sum +. (1e-9 *. mig_sum)
      && (n > 1 || abs_float (mig_batch -. mig_single) <= 1e-9 *. mig_single))

(* ------------------------------- system ---------------------------- *)

let make_system ?(page_scale = 262144) () =
  (* 1 GiB scaled frames by default: tiny tables, fast tests. *)
  Xen.System.create ~page_scale (Numa.Amd48.topology ())

let test_system_domain_builder_packs () =
  let s = make_system () in
  (* 12 vCPUs, 2 GiB: needs ceil(12/6) = 2 nodes. *)
  let d =
    Xen.System.create_domain s ~name:"d1" ~kind:Xen.Domain.DomU ~vcpus:12
      ~mem_bytes:(2 * 1024 * 1024 * 1024) ()
  in
  Alcotest.(check (array int)) "2 lowest nodes" [| 0; 1 |] d.Xen.Domain.home_nodes;
  Alcotest.(check int) "12 vcpus pinned" 12 (Array.length d.Xen.Domain.vcpu_pin);
  Array.iter
    (fun pcpu ->
      let node = Numa.Topology.node_of_cpu s.Xen.System.topo pcpu in
      Alcotest.(check bool) "pinned to home" true (node = 0 || node = 1))
    d.Xen.Domain.vcpu_pin

let test_system_domain_memory_bound () =
  let s = make_system () in
  (* 40 GiB needs 3 nodes even with 1 vCPU. *)
  let d =
    Xen.System.create_domain s ~name:"big" ~kind:Xen.Domain.DomU ~vcpus:1
      ~mem_bytes:(40 * 1024 * 1024 * 1024) ()
  in
  Alcotest.(check int) "3 home nodes" 3 (Array.length d.Xen.Domain.home_nodes)

let test_system_second_domain_avoids_first () =
  let s = make_system () in
  let _d1 =
    Xen.System.create_domain s ~name:"a" ~kind:Xen.Domain.DomU ~vcpus:24
      ~mem_bytes:(1 lsl 30) ()
  in
  let d2 =
    Xen.System.create_domain s ~name:"b" ~kind:Xen.Domain.DomU ~vcpus:24
      ~mem_bytes:(1 lsl 30) ()
  in
  (* The first domain packed nodes 0-3; the second must land on 4-7. *)
  Alcotest.(check (array int)) "disjoint homes" [| 4; 5; 6; 7 |] d2.Xen.Domain.home_nodes

let test_system_consolidation_shares () =
  let s = make_system () in
  let d1 =
    Xen.System.create_domain s ~name:"a" ~kind:Xen.Domain.DomU ~vcpus:48
      ~mem_bytes:(1 lsl 30) ()
  in
  let _d2 =
    Xen.System.create_domain s ~name:"b" ~kind:Xen.Domain.DomU ~vcpus:48
      ~mem_bytes:(1 lsl 30) ()
  in
  (* Every pCPU runs two vCPUs: share is 1/2. *)
  Alcotest.(check (float 1e-9)) "half share" 0.5 (Xen.System.pcpu_share s d1.Xen.Domain.vcpu_pin.(0))

let test_system_explicit_homes_and_destroy () =
  let s = make_system () in
  let d =
    Xen.System.create_domain s ~name:"pinned" ~kind:Xen.Domain.DomU ~vcpus:6
      ~mem_bytes:(1 lsl 30) ~home_nodes:[| 5 |] ()
  in
  Alcotest.(check (array int)) "forced home" [| 5 |] d.Xen.Domain.home_nodes;
  let free_before = Memory.Machine.free_frames s.Xen.System.machine in
  (* Map some memory then destroy: frames must come back. *)
  (match Memory.Machine.alloc_frame s.Xen.System.machine ~node:5 with
  | Some mfn -> Xen.P2m.set d.Xen.Domain.p2m 0 ~mfn ~writable:true
  | None -> Alcotest.fail "alloc failed");
  Xen.System.destroy_domain s d;
  Alcotest.(check int) "frames restored" free_before (Memory.Machine.free_frames s.Xen.System.machine);
  Alcotest.(check bool) "domain gone" true (Xen.System.find_domain s ~id:d.Xen.Domain.id = None)

let test_domain_fault_dispatch () =
  let s = make_system () in
  let d =
    Xen.System.create_domain s ~name:"f" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(1 lsl 30) ()
  in
  Alcotest.(check bool) "no handler" false
    (Xen.Domain.handle_fault d ~costs:s.Xen.System.costs ~pfn:0 ~cpu:0);
  d.Xen.Domain.fault_handler <-
    Some (fun pfn ~cpu:_ -> Xen.P2m.set d.Xen.Domain.p2m pfn ~mfn:3 ~writable:true);
  Alcotest.(check bool) "handler maps" true
    (Xen.Domain.handle_fault d ~costs:s.Xen.System.costs ~pfn:0 ~cpu:0);
  Alcotest.(check int) "2 faults accounted" 2 d.Xen.Domain.account.Xen.Domain.fault_count;
  Alcotest.(check bool) "fault time accrued" true
    (d.Xen.Domain.account.Xen.Domain.fault_time > 0.0)

(* --------------------------------- ipi ----------------------------- *)

let test_ipi_totals () =
  check_us "native total (Figure 5)" 0.9e-6 (Xen.Ipi.total Xen.Ipi.Native);
  check_us "guest total (Figure 5)" 10.9e-6 (Xen.Ipi.total Xen.Ipi.Guest)

let test_ipi_stage_sums () =
  let native = List.fold_left (fun acc s -> acc +. s.Xen.Ipi.native) 0.0 Xen.Ipi.stages in
  let guest = List.fold_left (fun acc s -> acc +. s.Xen.Ipi.guest) 0.0 Xen.Ipi.stages in
  check_us "stages sum native" (Xen.Ipi.total Xen.Ipi.Native) native;
  check_us "stages sum guest" (Xen.Ipi.total Xen.Ipi.Guest) guest

let test_ipi_account () =
  let s = make_system () in
  let d = Xen.System.create_domain s ~name:"i" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(1 lsl 30) () in
  Xen.Ipi.send d ~costs:s.Xen.System.costs;
  Alcotest.(check int) "count" 1 d.Xen.Domain.account.Xen.Domain.ipi_count;
  check_us "time" 10.9e-6 d.Xen.Domain.account.Xen.Domain.ipi_time

(* --------------------------------- pci ----------------------------- *)

let test_pci_bus_granularity () =
  let s = make_system () in
  let d1 = Xen.System.create_domain s ~name:"a" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(1 lsl 30) () in
  let d2 = Xen.System.create_domain s ~name:"b" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(1 lsl 30) () in
  let pci = Xen.Pci.amd48 () in
  (match Xen.Pci.assign_bus pci ~bus_id:1 d1 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "d1 has disk passthrough" true
    (Xen.Pci.domain_has_passthrough pci d1 Xen.Pci.Disk);
  (* The whole bus is taken: d2 cannot share it. *)
  (match Xen.Pci.assign_bus pci ~bus_id:1 d2 with
  | Ok () -> Alcotest.fail "bus sharing must be rejected"
  | Error _ -> ());
  (* Re-assignment to the same domain is idempotent. *)
  (match Xen.Pci.assign_bus pci ~bus_id:1 d1 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Xen.Pci.release_bus pci ~bus_id:1;
  Alcotest.(check bool) "released" false (Xen.Pci.domain_has_passthrough pci d1 Xen.Pci.Disk)

let test_pci_amd48_buses () =
  let pci = Xen.Pci.amd48 () in
  let buses = Xen.Pci.buses pci in
  Alcotest.(check int) "two buses" 2 (List.length buses);
  Alcotest.(check (list int)) "on nodes 0 and 6" [ 0; 6 ]
    (List.map (fun b -> b.Xen.Pci.node) buses)

(* ------------------------------ hypercall --------------------------- *)

let test_hypercall_numbers () =
  Alcotest.(check int) "set_numa_policy" 48 (Xen.Hypercall.nr Xen.Hypercall.Set_numa_policy);
  Alcotest.(check int) "page_ops" 49 (Xen.Hypercall.nr Xen.Hypercall.Page_ops);
  Alcotest.(check int) "carrefour" 50 (Xen.Hypercall.nr Xen.Hypercall.Carrefour_read_metrics);
  Alcotest.(check int) "three entry points" 3 (List.length Xen.Hypercall.all)

let test_hypercall_accounting () =
  let t = Xen.Hypercall.create_table () in
  Xen.Hypercall.record t Xen.Hypercall.Page_ops ~time:1e-6;
  Xen.Hypercall.record t Xen.Hypercall.Page_ops ~time:2e-6;
  Xen.Hypercall.record t Xen.Hypercall.Set_numa_policy ~time:5e-7;
  let ops = Xen.Hypercall.stats t Xen.Hypercall.Page_ops in
  Alcotest.(check int) "two page_ops" 2 ops.Xen.Hypercall.calls;
  Alcotest.(check (float 1e-12)) "time summed" 3e-6 ops.Xen.Hypercall.time;
  Alcotest.(check int) "total" 3 (Xen.Hypercall.total_calls t);
  Alcotest.(check int) "carrefour untouched" 0
    (Xen.Hypercall.stats t Xen.Hypercall.Carrefour_read_metrics).Xen.Hypercall.calls

let test_hypercall_table_via_manager () =
  let s = make_system () in
  let d = Xen.System.create_domain s ~name:"hc" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(4 * 1024 * 1024 * 1024) () in
  let rng = Sim.Rng.create ~seed:13 in
  let m = Policies.Manager.attach s d ~boot:Policies.Spec.round_4k ~rng in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Policies.Manager.page_ops_hypercall m [| Guest.Pv_queue.Release 0 |]);
  Alcotest.(check int) "one policy switch recorded" 1
    (Xen.Hypercall.stats d.Xen.Domain.hypercalls Xen.Hypercall.Set_numa_policy).Xen.Hypercall.calls;
  Alcotest.(check int) "one page_ops recorded" 1
    (Xen.Hypercall.stats d.Xen.Domain.hypercalls Xen.Hypercall.Page_ops).Xen.Hypercall.calls

(* ------------------------------- balloon ---------------------------- *)

let test_balloon_inflate_deflate () =
  let s = make_system () in
  let d = Xen.System.create_domain s ~name:"b" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(4 * 1024 * 1024 * 1024) () in
  (* Back a few pages first. *)
  for pfn = 0 to 3 do
    ignore (Policies.Internal.map_page s d ~pfn ~node:0)
  done;
  let balloon = Xen.Balloon.create s d in
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  Alcotest.(check int) "2 reclaimed" 2 (Xen.Balloon.inflate balloon ~pfns:[ 0; 1 ]);
  Alcotest.(check int) "frames back to the heap" (free0 + 2)
    (Memory.Machine.free_frames s.Xen.System.machine);
  Alcotest.(check int) "ballooned" 2 (Xen.Balloon.ballooned balloon);
  (* The guest MUST NOT use a ballooned page — that is why ballooning
     cannot implement first-touch (Section 4.2.3). *)
  (match Xen.Balloon.guest_touch balloon 0 with
  | Error `Ballooned -> ()
  | Ok () -> Alcotest.fail "ballooned page must not be usable");
  (match Xen.Balloon.guest_touch balloon 2 with
  | Ok () -> ()
  | Error `Ballooned -> Alcotest.fail "page 2 was never ballooned");
  let back = Xen.Balloon.deflate balloon ~count:2 in
  Alcotest.(check int) "deflated both" 2 (List.length back);
  Alcotest.(check int) "balloon empty" 0 (Xen.Balloon.ballooned balloon);
  List.iter
    (fun pfn ->
      Alcotest.(check bool) "repopulated" true (Xen.P2m.get d.Xen.Domain.p2m pfn <> Xen.P2m.Invalid))
    back

let test_balloon_vs_page_ops_queue () =
  (* The contrast of Section 4.2.3: a page released through the
     page-ops queue stays usable (its next touch just faults and is
     remapped), while a ballooned page is gone until deflation. *)
  let s = make_system () in
  let d = Xen.System.create_domain s ~name:"q" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(4 * 1024 * 1024 * 1024) () in
  let rng = Sim.Rng.create ~seed:9 in
  let m = Policies.Manager.attach s d ~boot:Policies.Spec.round_4k ~rng in
  (match Policies.Manager.set_policy m Policies.Spec.first_touch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Policies.Manager.page_ops_hypercall m [| Guest.Pv_queue.Release 0 |]);
  (* Reallocate and touch: the hypervisor fault path restores it. *)
  Alcotest.(check bool) "touch after queue release works" true
    (Xen.Domain.handle_fault d ~costs:s.Xen.System.costs ~pfn:0 ~cpu:d.Xen.Domain.vcpu_pin.(0));
  Alcotest.(check bool) "remapped" true (Xen.P2m.get d.Xen.Domain.p2m 0 <> Xen.P2m.Invalid)

(* --------------------------------- dma ----------------------------- *)

let io_setup () =
  let s = Xen.System.create ~page_scale:1 (Numa.Amd48.topology ()) in
  let d = Xen.System.create_domain s ~name:"io" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(16 * 1024 * 1024) () in
  let rng = Sim.Rng.create ~seed:1 in
  let manager = Policies.Manager.attach s d ~boot:Policies.Spec.round_4k ~rng in
  let pci = Xen.Pci.amd48 () in
  (match Xen.Pci.assign_bus pci ~bus_id:1 d with Ok () -> () | Error m -> failwith m);
  (s, d, manager, pci)

let test_dma_paths () =
  let s, d, _m, pci = io_setup () in
  (match Xen.Dma.read s d ~pci ~path:Xen.Dma.Native ~buffer:[] ~bytes:4096 with
  | Ok t -> check_us "native" 74e-6 t
  | Error _ -> Alcotest.fail "native failed");
  (match Xen.Dma.read s d ~pci ~path:Xen.Dma.Pv ~buffer:[ 0 ] ~bytes:4096 with
  | Ok t -> check_us "pv" 307e-6 t
  | Error _ -> Alcotest.fail "pv failed");
  (match Xen.Dma.read s d ~pci ~path:Xen.Dma.Passthrough ~buffer:[ 0 ] ~bytes:4096 with
  | Ok t -> check_us "passthrough" 186e-6 t
  | Error _ -> Alcotest.fail "passthrough failed");
  Alcotest.(check int) "3 requests accounted" 3 d.Xen.Domain.account.Xen.Domain.io_requests

let test_dma_iommu_fault_on_invalid_entry () =
  let s, d, manager, pci = io_setup () in
  (match Policies.Manager.set_policy manager Policies.Spec.first_touch with
  | Ok () -> ()
  | Error m -> failwith m);
  ignore (Policies.Manager.release_free_pages manager [ 5 ]);
  Alcotest.(check bool) "entry invalidated" true (Xen.P2m.get d.Xen.Domain.p2m 5 = Xen.P2m.Invalid);
  (match Xen.Dma.read s d ~pci ~path:Xen.Dma.Passthrough ~buffer:[ 4; 5 ] ~bytes:8192 with
  | Error (Xen.Dma.Iommu_fault { pfn }) -> Alcotest.(check int) "faulting pfn" 5 pfn
  | Ok _ -> Alcotest.fail "IOMMU must abort on invalid entry"
  | Error Xen.Dma.No_passthrough_bus -> Alcotest.fail "bus is assigned");
  (* The pv path recovers synchronously and remaps the page. *)
  (match Xen.Dma.read s d ~pci ~path:Xen.Dma.Pv ~buffer:[ 4; 5 ] ~bytes:8192 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "pv path must recover");
  Alcotest.(check bool) "page remapped by pv fault" true
    (Xen.P2m.get d.Xen.Domain.p2m 5 <> Xen.P2m.Invalid)

let test_dma_requires_bus () =
  let s = Xen.System.create ~page_scale:1 (Numa.Amd48.topology ()) in
  let d = Xen.System.create_domain s ~name:"nobus" ~kind:Xen.Domain.DomU ~vcpus:1 ~mem_bytes:(16 * 1024 * 1024) () in
  let pci = Xen.Pci.amd48 () in
  match Xen.Dma.read s d ~pci ~path:Xen.Dma.Passthrough ~buffer:[] ~bytes:4096 with
  | Error Xen.Dma.No_passthrough_bus -> ()
  | Ok _ | Error _ -> Alcotest.fail "must require a passthrough bus"

(* -------------------------------- pt ------------------------------- *)

let test_pt_level_node () =
  let pt = Xen.Pt.create ~home_node:2 ~frames:64 ~sp_frames:8 () in
  Alcotest.(check bool) "not replicated" false (Xen.Pt.replicated pt);
  Alcotest.(check int) "no mirrors" 0 (Xen.Pt.replica_count pt);
  for level = 0 to Xen.Pt.levels - 1 do
    Alcotest.(check int) "every level on the home node" 2
      (Xen.Pt.level_node pt ~level ~node:5)
  done;
  Alcotest.check_raises "bad level" (Invalid_argument "Pt.level_node: level out of range")
    (fun () -> ignore (Xen.Pt.level_node pt ~level:Xen.Pt.levels ~node:0));
  let rep =
    Xen.Pt.create ~replicate_nodes:[| 0; 3 |] ~home_node:0 ~frames:64 ~sp_frames:8 ()
  in
  Alcotest.(check bool) "replicated" true (Xen.Pt.replicated rep);
  Alcotest.(check int) "two mirrors" 2 (Xen.Pt.replica_count rep);
  for level = 0 to Xen.Pt.levels - 1 do
    Alcotest.(check int) "walker resolves locally" 5 (Xen.Pt.level_node rep ~level ~node:5)
  done

let test_pt_counters_classify_updates () =
  let pt = Xen.Pt.create ~replicate_nodes:[| 1; 4; 6 |] ~home_node:1 ~frames:64 ~sp_frames:8 () in
  Xen.Pt.apply pt (Xen.P2m.Set { pfn = 3; mfn = 42; writable = true });
  Alcotest.(check int) "set writes all mirrors" 3 (Xen.Pt.replica_updates pt);
  Xen.Pt.apply pt (Xen.P2m.Cleared { pfn = 3 });
  Alcotest.(check int) "clear is a shootdown" 3 (Xen.Pt.replica_invalidations pt);
  Xen.Pt.apply pt (Xen.P2m.Superpage_mapped { pfn = 8; mfn = 64; writable = false });
  Xen.Pt.apply pt (Xen.P2m.Splintered { pfn = 8 });
  Alcotest.(check int) "superpage map is a write" 6 (Xen.Pt.replica_updates pt);
  Alcotest.(check int) "splinter is a shootdown" 6 (Xen.Pt.replica_invalidations pt)

(* Tentpole differential: with a replicated [Pt] subscribed to the
   primary's update stream, any interleaving of per-frame ops,
   superpage ops and batched mutations leaves every mirror
   translation-equivalent to the primary — checked by dump equality
   inside [Pt.check_consistent] after every step burst. *)
let prop_pt_replicas_track_primary =
  let frames = 64 and sp = 8 in
  QCheck.Test.make ~name:"pt replicas track any op interleaving" ~count:200
    QCheck.(pair int (int_range 20 120))
    (fun (seed, steps) ->
      let p = Xen.P2m.create ~sp_frames:sp ~frames () in
      let pt =
        Xen.Pt.create ~replicate_nodes:[| 0; 3; 5 |] ~home_node:0 ~frames ~sp_frames:sp ()
      in
      Xen.P2m.set_on_update p (Some (fun u -> Xen.Pt.apply pt u));
      let rng = Sim.Rng.create ~seed in
      for _ = 1 to steps do
        let pfn = Sim.Rng.int rng frames in
        let base = Xen.P2m.superpage_base p pfn in
        match Sim.Rng.int rng 9 with
        | 0 -> Xen.P2m.set p pfn ~mfn:(Sim.Rng.int rng 4096) ~writable:(Sim.Rng.bool rng)
        | 1 -> ignore (Xen.P2m.invalidate p pfn)
        | 2 -> Xen.P2m.write_protect p pfn
        | 3 -> ignore (Xen.P2m.splinter p pfn)
        | 4 -> ignore (Xen.P2m.promote p ~pfn:base)
        | 5 ->
            let empty = ref true in
            for i = 0 to sp - 1 do
              if Xen.P2m.get p (base + i) <> Xen.P2m.Invalid then empty := false
            done;
            if !empty then
              Xen.P2m.map_superpage p ~pfn:base
                ~mfn:(sp * Sim.Rng.int rng 512)
                ~writable:(Sim.Rng.bool rng)
        | 6 ->
            let n = 1 + Sim.Rng.int rng 8 in
            let pfns = Array.init n (fun _ -> Sim.Rng.int rng frames) in
            ignore (Xen.P2m.invalidate_batch p pfns ~n)
        | 7 ->
            let n = 1 + Sim.Rng.int rng 8 in
            let pfns = Array.init n (fun _ -> Sim.Rng.int rng frames) in
            let mfns = Array.init n (fun _ -> Sim.Rng.int rng 4096) in
            ignore (Xen.P2m.map_batch p pfns mfns ~n ~writable:(Sim.Rng.bool rng))
        | _ ->
            let n = 1 + Sim.Rng.int rng 8 in
            let pfns = Array.init n (fun _ -> Sim.Rng.int rng frames) in
            let mfns = Array.init n (fun _ -> Sim.Rng.int rng 4096) in
            ignore (Xen.P2m.migrate_batch p pfns mfns ~n ~f:(fun _ ~old_mfn:_ -> ()))
      done;
      if not (Xen.P2m.check_consistent p) then QCheck.Test.fail_report "primary inconsistent";
      if not (Xen.Pt.check_consistent pt ~primary:p) then
        QCheck.Test.fail_report "mirror diverged from primary";
      true)

(* A mirror is a replay, so per-mirror counters are a pure function of
   the primary's stream: every mirror receives every update, and the
   two counters split the stream exactly. *)
let prop_pt_counters_scale_with_mirrors =
  let frames = 32 and sp = 4 in
  QCheck.Test.make ~name:"pt per-mirror counters scale with mirror count" ~count:200
    QCheck.(triple int (int_range 10 60) (int_range 1 4))
    (fun (seed, steps, mirrors) ->
      let run mirrors =
        let p = Xen.P2m.create ~sp_frames:sp ~frames () in
        let pt =
          Xen.Pt.create
            ~replicate_nodes:(Array.init mirrors (fun i -> i))
            ~home_node:0 ~frames ~sp_frames:sp ()
        in
        Xen.P2m.set_on_update p (Some (fun u -> Xen.Pt.apply pt u));
        let rng = Sim.Rng.create ~seed in
        for _ = 1 to steps do
          let pfn = Sim.Rng.int rng frames in
          match Sim.Rng.int rng 3 with
          | 0 -> Xen.P2m.set p pfn ~mfn:(Sim.Rng.int rng 1024) ~writable:true
          | 1 -> ignore (Xen.P2m.invalidate p pfn)
          | _ -> ignore (Xen.P2m.splinter p pfn)
        done;
        (Xen.Pt.replica_updates pt, Xen.Pt.replica_invalidations pt)
      in
      let u1, i1 = run 1 in
      let un, inv = run mirrors in
      un = mirrors * u1 && inv = mirrors * i1)

let suite =
  [
    ( "xen.costs",
      [
        Alcotest.test_case "dma calibration" `Quick test_costs_dma_calibration;
        Alcotest.test_case "overhead amortises" `Quick test_costs_overhead_amortises;
        Alcotest.test_case "ipi costs" `Quick test_costs_ipi;
      ] );
    ( "xen.p2m",
      [
        Alcotest.test_case "basic" `Quick test_p2m_basic;
        Alcotest.test_case "invalidate" `Quick test_p2m_invalidate;
        Alcotest.test_case "write protect" `Quick test_p2m_write_protect;
        Alcotest.test_case "remap keeps count" `Quick test_p2m_remap_keeps_count;
        Alcotest.test_case "iteration" `Quick test_p2m_iteration;
        Alcotest.test_case "bounds" `Quick test_p2m_bounds;
        Alcotest.test_case "superpage map/lookup" `Quick test_p2m_superpage_map_lookup;
        Alcotest.test_case "splinter preserves lookups" `Quick
          test_p2m_superpage_splinter_preserves_lookups;
        Alcotest.test_case "mutation splinters" `Quick test_p2m_superpage_mutation_splinters;
        Alcotest.test_case "promote" `Quick test_p2m_superpage_promote;
        Alcotest.test_case "map_superpage errors" `Quick test_p2m_superpage_map_errors;
        QCheck_alcotest.to_alcotest prop_p2m_set_get_roundtrip;
        QCheck_alcotest.to_alcotest prop_p2m_superpage_interleavings;
      ] );
    ( "xen.p2m.batch",
      [
        QCheck_alcotest.to_alcotest prop_p2m_invalidate_batch_equals_per_page;
        QCheck_alcotest.to_alcotest prop_p2m_migrate_batch_equals_per_page;
        QCheck_alcotest.to_alcotest prop_p2m_batched_replay_equals_per_page;
        QCheck_alcotest.to_alcotest prop_batch_costs_bounded;
      ] );
    ( "xen.pt",
      [
        Alcotest.test_case "level placement" `Quick test_pt_level_node;
        Alcotest.test_case "counter classification" `Quick test_pt_counters_classify_updates;
        QCheck_alcotest.to_alcotest prop_pt_replicas_track_primary;
        QCheck_alcotest.to_alcotest prop_pt_counters_scale_with_mirrors;
      ] );
    ( "xen.system",
      [
        Alcotest.test_case "domain builder packs" `Quick test_system_domain_builder_packs;
        Alcotest.test_case "memory-bound homes" `Quick test_system_domain_memory_bound;
        Alcotest.test_case "second domain avoids first" `Quick test_system_second_domain_avoids_first;
        Alcotest.test_case "consolidation shares" `Quick test_system_consolidation_shares;
        Alcotest.test_case "explicit homes + destroy" `Quick test_system_explicit_homes_and_destroy;
        Alcotest.test_case "fault dispatch" `Quick test_domain_fault_dispatch;
      ] );
    ( "xen.ipi",
      [
        Alcotest.test_case "totals" `Quick test_ipi_totals;
        Alcotest.test_case "stage sums" `Quick test_ipi_stage_sums;
        Alcotest.test_case "account" `Quick test_ipi_account;
      ] );
    ( "xen.pci",
      [
        Alcotest.test_case "bus granularity" `Quick test_pci_bus_granularity;
        Alcotest.test_case "amd48 buses" `Quick test_pci_amd48_buses;
      ] );
    ( "xen.hypercall",
      [
        Alcotest.test_case "numbers" `Quick test_hypercall_numbers;
        Alcotest.test_case "accounting" `Quick test_hypercall_accounting;
        Alcotest.test_case "manager records" `Quick test_hypercall_table_via_manager;
      ] );
    ( "xen.balloon",
      [
        Alcotest.test_case "inflate/deflate" `Quick test_balloon_inflate_deflate;
        Alcotest.test_case "balloon vs page-ops queue" `Quick test_balloon_vs_page_ops_queue;
      ] );
    ( "xen.dma",
      [
        Alcotest.test_case "three paths" `Quick test_dma_paths;
        Alcotest.test_case "iommu fault on invalid entry" `Quick test_dma_iommu_fault_on_invalid_entry;
        Alcotest.test_case "requires bus" `Quick test_dma_requires_bus;
      ] );
  ]
