(* Tests for the guest library: gpt, pfn_pool, pv_queue, sync,
   alloc_model, process. *)

(* -------------------------------- gpt ----------------------------- *)

let test_gpt_lazy () =
  let g = Guest.Gpt.create ~frames:8 in
  Alcotest.(check (option int)) "unmapped" None (Guest.Gpt.get g 3);
  Alcotest.(check int) "no faults yet" 0 (Guest.Gpt.fault_count g);
  let next = ref 100 in
  let alloc () = incr next; Some !next in
  Alcotest.(check (option int)) "first touch allocates" (Some 101) (Guest.Gpt.touch g 3 ~alloc);
  Alcotest.(check int) "one fault" 1 (Guest.Gpt.fault_count g);
  Alcotest.(check (option int)) "second touch reuses" (Some 101) (Guest.Gpt.touch g 3 ~alloc);
  Alcotest.(check int) "still one fault" 1 (Guest.Gpt.fault_count g)

let test_gpt_map_unmap () =
  let g = Guest.Gpt.create ~frames:4 in
  Guest.Gpt.map g 0 42;
  Alcotest.(check int) "mapped count" 1 (Guest.Gpt.mapped_count g);
  Alcotest.check_raises "remap rejected" (Invalid_argument "Gpt.map: vfn already mapped")
    (fun () -> Guest.Gpt.map g 0 7);
  Alcotest.(check (option int)) "unmap returns pfn" (Some 42) (Guest.Gpt.unmap g 0);
  Alcotest.(check (option int)) "second unmap" None (Guest.Gpt.unmap g 0);
  Alcotest.(check int) "count back" 0 (Guest.Gpt.mapped_count g)

let test_gpt_alloc_failure () =
  let g = Guest.Gpt.create ~frames:2 in
  Alcotest.(check (option int)) "oom" None (Guest.Gpt.touch g 0 ~alloc:(fun () -> None))

(* ------------------------------ pfn_pool --------------------------- *)

let test_pool_lifo_recycling () =
  let pool = Guest.Pfn_pool.create ~frames:8 () in
  let a = match Guest.Pfn_pool.alloc pool with Some p -> p | None -> -1 in
  let b = match Guest.Pfn_pool.alloc pool with Some p -> p | None -> -1 in
  Alcotest.(check int) "fresh 0" 0 a;
  Alcotest.(check int) "fresh 1" 1 b;
  Guest.Pfn_pool.release pool a;
  Alcotest.(check (option int)) "recycles most recent" (Some a) (Guest.Pfn_pool.alloc pool);
  Alcotest.(check int) "one recycled" 1 (Guest.Pfn_pool.recycled pool)

let test_pool_exhaustion () =
  let pool = Guest.Pfn_pool.create ~frames:2 () in
  ignore (Guest.Pfn_pool.alloc pool);
  ignore (Guest.Pfn_pool.alloc pool);
  Alcotest.(check (option int)) "exhausted" None (Guest.Pfn_pool.alloc pool)

let test_pool_double_release () =
  let pool = Guest.Pfn_pool.create ~frames:4 () in
  (match Guest.Pfn_pool.alloc pool with
  | Some p ->
      Guest.Pfn_pool.release pool p;
      Alcotest.check_raises "double release" (Invalid_argument "Pfn_pool.release: double release")
        (fun () -> Guest.Pfn_pool.release pool p)
  | None -> Alcotest.fail "alloc failed")

let test_pool_release_fresh_rejected () =
  let pool = Guest.Pfn_pool.create ~frames:4 () in
  Alcotest.check_raises "never allocated"
    (Invalid_argument "Pfn_pool.release: frame was never allocated") (fun () ->
      Guest.Pfn_pool.release pool 3)

let test_pool_hooks_fire () =
  let allocs = ref [] and releases = ref [] in
  let pool =
    Guest.Pfn_pool.create ~frames:4
      ~on_alloc:(fun p -> allocs := p :: !allocs)
      ~on_release:(fun p -> releases := p :: !releases)
      ()
  in
  (match Guest.Pfn_pool.alloc pool with
  | Some p -> Guest.Pfn_pool.release pool p
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check (list int)) "alloc hook" [ 0 ] !allocs;
  Alcotest.(check (list int)) "release hook" [ 0 ] !releases

let test_pool_first_fresh () =
  let pool = Guest.Pfn_pool.create ~frames:16 ~first_fresh:8 () in
  Alcotest.(check (option int)) "starts above the kernel zone" (Some 8)
    (Guest.Pfn_pool.alloc pool)

(* ------------------------------ pv_queue --------------------------- *)

let test_queue_partition_of () =
  let q = Guest.Pv_queue.create ~partitions:4 ~flush:(fun _ -> 0.0) () in
  Alcotest.(check int) "4 partitions" 4 (Guest.Pv_queue.partitions q);
  Alcotest.(check int) "pfn 5 -> 1" 1 (Guest.Pv_queue.partition_of q 5);
  Alcotest.(check int) "pfn 7 -> 3" 3 (Guest.Pv_queue.partition_of q 7)

let test_queue_flush_on_capacity () =
  let flushed = ref [] in
  let q =
    Guest.Pv_queue.create ~partitions:1 ~capacity:4
      ~flush:(fun ops -> flushed := Array.to_list ops :: !flushed; 1e-6)
      ()
  in
  for i = 1 to 3 do
    Guest.Pv_queue.record q (Guest.Pv_queue.Release i)
  done;
  Alcotest.(check int) "not yet flushed" 0 (List.length !flushed);
  Alcotest.(check int) "3 pending" 3 (Guest.Pv_queue.pending q);
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 4);
  Alcotest.(check int) "flushed once" 1 (List.length !flushed);
  Alcotest.(check int) "nothing pending" 0 (Guest.Pv_queue.pending q);
  let stats = Guest.Pv_queue.stats q in
  Alcotest.(check int) "4 ops sent" 4 stats.Guest.Pv_queue.ops_sent;
  Alcotest.(check (float 1e-12)) "time charged" 1e-6 stats.Guest.Pv_queue.guest_time

let test_queue_partition_isolation () =
  let flushes = ref 0 in
  let q =
    Guest.Pv_queue.create ~partitions:4 ~capacity:2 ~flush:(fun _ -> incr flushes; 0.0) ()
  in
  (* pfns 0,4,8,... all land in partition 0; others untouched. *)
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 0);
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 4);
  Alcotest.(check int) "partition 0 flushed" 1 !flushes;
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 1);
  Alcotest.(check int) "partition 1 untouched" 1 !flushes

let test_queue_flush_all () =
  let total = ref 0 in
  let q =
    Guest.Pv_queue.create ~partitions:4 ~capacity:100
      ~flush:(fun ops -> total := !total + Array.length ops; 0.0)
      ()
  in
  for i = 0 to 9 do
    Guest.Pv_queue.record q (Guest.Pv_queue.Alloc i)
  done;
  Guest.Pv_queue.flush_all q;
  Alcotest.(check int) "all delivered" 10 !total;
  Alcotest.(check int) "empty" 0 (Guest.Pv_queue.pending q)

let test_queue_flush_time_dedup () =
  (* With ~frames the queue dedups at flush time: the hypervisor sees
     at most one op per page, survivors in arrival order, and the
     superseded count lands in dedup_hits. *)
  let flushed = ref [] in
  let q =
    Guest.Pv_queue.create ~partitions:1 ~capacity:4 ~frames:16
      ~flush:(fun ops -> flushed := Array.to_list ops :: !flushed; 0.0)
      ()
  in
  Guest.Pv_queue.record q (Guest.Pv_queue.Alloc 0);
  Guest.Pv_queue.record q (Guest.Pv_queue.Alloc 4);
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 0);
  Guest.Pv_queue.record q (Guest.Pv_queue.Release 8);
  (match !flushed with
  | [ batch ] ->
      Alcotest.(check bool) "winners only, oldest first" true
        (batch
        = [ Guest.Pv_queue.Alloc 4; Guest.Pv_queue.Release 0; Guest.Pv_queue.Release 8 ])
  | batches -> Alcotest.failf "expected one flush, got %d" (List.length batches));
  let stats = Guest.Pv_queue.stats q in
  Alcotest.(check int) "one superseded op" 1 stats.Guest.Pv_queue.dedup_hits;
  Alcotest.(check int) "all four recorded" 4 stats.Guest.Pv_queue.enqueued;
  Alcotest.(check int) "three sent" 3 stats.Guest.Pv_queue.ops_sent

let test_queue_replay_most_recent_wins () =
  (* Release 7 then Alloc 7: the page was reallocated while queued,
     so it must be left in place (Section 4.2.4). *)
  let ops = [| Guest.Pv_queue.Release 7; Guest.Pv_queue.Alloc 7 |] in
  let result = ref [] in
  Guest.Pv_queue.replay ops ~f:(fun pfn action -> result := (pfn, action) :: !result);
  Alcotest.(check int) "visited once" 1 (List.length !result);
  (match !result with
  | [ (7, `Leave) ] -> ()
  | _ -> Alcotest.fail "expected Leave for reallocated page");
  (* Alloc then Release: final state free -> invalidate. *)
  let ops = [| Guest.Pv_queue.Alloc 3; Guest.Pv_queue.Release 3 |] in
  let result = ref [] in
  Guest.Pv_queue.replay ops ~f:(fun pfn action -> result := (pfn, action) :: !result);
  match !result with
  | [ (3, `Invalidate) ] -> ()
  | _ -> Alcotest.fail "expected Invalidate for released page"

let prop_queue_replay_visits_each_page_once =
  QCheck.Test.make ~name:"replay visits each page exactly once" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) (pair bool (int_range 0 20)))
    (fun spec ->
      let ops =
        Array.of_list
          (List.map
             (fun (alloc, pfn) ->
               if alloc then Guest.Pv_queue.Alloc pfn else Guest.Pv_queue.Release pfn)
             spec)
      in
      let seen = Hashtbl.create 16 in
      let dup = ref false in
      Guest.Pv_queue.replay ops ~f:(fun pfn _ ->
          if Hashtbl.mem seen pfn then dup := true;
          Hashtbl.replace seen pfn ());
      let distinct = List.sort_uniq compare (List.map snd spec) in
      (not !dup) && Hashtbl.length seen = List.length distinct)

let prop_queue_replay_matches_final_state =
  QCheck.Test.make ~name:"replay action = final op per page" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (pair bool (int_range 0 20)))
    (fun spec ->
      let ops =
        Array.of_list
          (List.map
             (fun (alloc, pfn) ->
               if alloc then Guest.Pv_queue.Alloc pfn else Guest.Pv_queue.Release pfn)
             spec)
      in
      let ok = ref true in
      Guest.Pv_queue.replay ops ~f:(fun pfn action ->
          (* find last op for pfn *)
          let last = ref None in
          Array.iter
            (fun op -> if Guest.Pv_queue.op_pfn op = pfn then last := Some op)
            ops;
          match (!last, action) with
          | Some (Guest.Pv_queue.Release _), `Invalidate -> ()
          | Some (Guest.Pv_queue.Alloc _), `Leave -> ()
          | _ -> ok := false);
      !ok)

(* -------------------------------- sync ----------------------------- *)

let test_mcs_basic () =
  let lock = Guest.Sync.Mcs.create ~threads:4 in
  Alcotest.(check bool) "t0 acquires" true (Guest.Sync.Mcs.acquire lock ~thread:0 = `Acquired);
  Alcotest.(check bool) "t1 queued" true (Guest.Sync.Mcs.acquire lock ~thread:1 = `Queued 0);
  Alcotest.(check bool) "t2 queued" true (Guest.Sync.Mcs.acquire lock ~thread:2 = `Queued 1);
  Alcotest.(check int) "2 waiters" 2 (Guest.Sync.Mcs.waiters lock);
  Alcotest.(check (option int)) "handoff to t1" (Some 1) (Guest.Sync.Mcs.release lock ~thread:0);
  Alcotest.(check (option int)) "holder is t1" (Some 1) (Guest.Sync.Mcs.holder lock);
  Alcotest.(check (option int)) "handoff to t2" (Some 2) (Guest.Sync.Mcs.release lock ~thread:1);
  Alcotest.(check (option int)) "last release" None (Guest.Sync.Mcs.release lock ~thread:2);
  Alcotest.(check (option int)) "free" None (Guest.Sync.Mcs.holder lock)

let test_mcs_errors () =
  let lock = Guest.Sync.Mcs.create ~threads:2 in
  ignore (Guest.Sync.Mcs.acquire lock ~thread:0);
  Alcotest.check_raises "reacquire" (Invalid_argument "Mcs.acquire: thread already holds or waits")
    (fun () -> ignore (Guest.Sync.Mcs.acquire lock ~thread:0));
  Alcotest.check_raises "wrong releaser" (Invalid_argument "Mcs.release: thread is not the holder")
    (fun () -> ignore (Guest.Sync.Mcs.release lock ~thread:1))

let test_sync_costs () =
  let futex = Guest.Sync.wait_overhead Guest.Sync.Futex_sleep ~context_switch:1.5e-6 ~ipi:10.9e-6 in
  Alcotest.(check (float 1e-12)) "futex = 2 switches + ipi" 13.9e-6 futex;
  Alcotest.(check (float 1e-12)) "spin free" 0.0
    (Guest.Sync.wait_overhead Guest.Sync.Mcs_spin ~context_switch:1.5e-6 ~ipi:10.9e-6);
  Alcotest.(check int) "futex switches" 2 (Guest.Sync.switches_per_event Guest.Sync.Futex_sleep);
  Alcotest.(check int) "spin switches" 0 (Guest.Sync.switches_per_event Guest.Sync.Mcs_spin)

let prop_mcs_fifo =
  QCheck.Test.make ~name:"mcs hands off in fifo order" ~count:100
    QCheck.(int_range 2 16)
    (fun n ->
      let lock = Guest.Sync.Mcs.create ~threads:n in
      for t = 0 to n - 1 do
        ignore (Guest.Sync.Mcs.acquire lock ~thread:t)
      done;
      let order = ref [] in
      let holder = ref 0 in
      for _ = 1 to n - 1 do
        match Guest.Sync.Mcs.release lock ~thread:!holder with
        | Some next ->
            order := next :: !order;
            holder := next
        | None -> ()
      done;
      List.rev !order = List.init (n - 1) (fun i -> i + 1))

(* ----------------------------- alloc_model ------------------------ *)

let test_alloc_model () =
  Alcotest.(check int) "glibc over 1s" 100 (Guest.Alloc_model.releases_in Guest.Alloc_model.glibc ~duration:1.0);
  let wrmem = Guest.Alloc_model.streamflow ~release_period:15e-6 in
  Alcotest.(check int) "wrmem over 15us" 1 (Guest.Alloc_model.releases_in wrmem ~duration:15e-6);
  Alcotest.(check int) "wrmem over 1s" 66666 (Guest.Alloc_model.releases_in wrmem ~duration:1.0);
  Alcotest.(check int) "scalloc never" 0 (Guest.Alloc_model.releases_in Guest.Alloc_model.scalloc ~duration:100.0)

(* ------------------------------- process --------------------------- *)

let test_process_touch_and_free () =
  let pool = Guest.Pfn_pool.create ~frames:32 () in
  let p = Guest.Process.create ~pid:1 ~vframes:16 ~pool in
  for vfn = 0 to 7 do
    match Guest.Process.touch p vfn with
    | Some _ -> ()
    | None -> Alcotest.fail "touch failed"
  done;
  Alcotest.(check int) "8 resident" 8 (Guest.Process.resident p);
  Alcotest.(check int) "8 allocated in pool" 8 (Guest.Pfn_pool.allocated pool);
  let released = Guest.Process.free_range p ~first:0 ~count:4 in
  Alcotest.(check int) "4 released" 4 released;
  Alcotest.(check int) "4 resident" 4 (Guest.Process.resident p);
  Alcotest.(check int) "4 in pool" 4 (Guest.Pfn_pool.allocated pool)

let test_process_reuse_after_free () =
  (* The Figure-4 pattern: a page moves from one virtual address to
     another through the free list, invisibly to any hypervisor. *)
  let pool = Guest.Pfn_pool.create ~frames:4 () in
  let p = Guest.Process.create ~pid:1 ~vframes:8 ~pool in
  let pfn0 = match Guest.Process.touch p 0 with Some x -> x | None -> -1 in
  ignore (Guest.Process.free_range p ~first:0 ~count:1);
  let pfn1 = match Guest.Process.touch p 5 with Some x -> x | None -> -1 in
  Alcotest.(check int) "same physical frame recycled" pfn0 pfn1

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "guest.gpt",
      [
        Alcotest.test_case "lazy allocation" `Quick test_gpt_lazy;
        Alcotest.test_case "map/unmap" `Quick test_gpt_map_unmap;
        Alcotest.test_case "alloc failure" `Quick test_gpt_alloc_failure;
      ] );
    ( "guest.pfn_pool",
      [
        Alcotest.test_case "lifo recycling" `Quick test_pool_lifo_recycling;
        Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
        Alcotest.test_case "double release" `Quick test_pool_double_release;
        Alcotest.test_case "release fresh rejected" `Quick test_pool_release_fresh_rejected;
        Alcotest.test_case "hooks fire" `Quick test_pool_hooks_fire;
        Alcotest.test_case "first_fresh offset" `Quick test_pool_first_fresh;
      ] );
    ( "guest.pv_queue",
      [
        Alcotest.test_case "partition_of" `Quick test_queue_partition_of;
        Alcotest.test_case "flush on capacity" `Quick test_queue_flush_on_capacity;
        Alcotest.test_case "partition isolation" `Quick test_queue_partition_isolation;
        Alcotest.test_case "flush_all" `Quick test_queue_flush_all;
        Alcotest.test_case "flush-time dedup" `Quick test_queue_flush_time_dedup;
        Alcotest.test_case "most recent op wins" `Quick test_queue_replay_most_recent_wins;
        qcheck prop_queue_replay_visits_each_page_once;
        qcheck prop_queue_replay_matches_final_state;
      ] );
    ( "guest.sync",
      [
        Alcotest.test_case "mcs basic" `Quick test_mcs_basic;
        Alcotest.test_case "mcs errors" `Quick test_mcs_errors;
        Alcotest.test_case "wait costs" `Quick test_sync_costs;
        qcheck prop_mcs_fifo;
      ] );
    ("guest.alloc_model", [ Alcotest.test_case "release rates" `Quick test_alloc_model ]);
    ( "guest.process",
      [
        Alcotest.test_case "touch and free" `Quick test_process_touch_and_free;
        Alcotest.test_case "figure-4 reuse" `Quick test_process_reuse_after_free;
      ] );
  ]
