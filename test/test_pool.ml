(* Tests for the Engine.Pool domain pool: result ordering, worker
   counts, exception propagation, and the determinism contract the
   parallel experiment sweeps rely on. *)

exception Boom of int

let test_empty () =
  Alcotest.(check int) "no tasks" 0 (Array.length (Engine.Pool.run_all ~jobs:4 [||]))

let test_results_ordered_by_index () =
  (* Tasks deliberately finish out of spawn order (later tasks are
     cheaper); results must still land at their task index. *)
  List.iter
    (fun jobs ->
      let n = 64 in
      let tasks =
        Array.init n (fun i () ->
            let spin = ref 0 in
            for _ = 1 to (n - i) * 1000 do
              incr spin
            done;
            ignore !spin;
            i * i)
      in
      let results = Engine.Pool.run_all ~jobs tasks in
      Alcotest.(check int) "result count" n (Array.length results);
      Array.iteri
        (fun i r -> Alcotest.(check int) (Printf.sprintf "jobs=%d task %d" jobs i) (i * i) r)
        results)
    [ 1; 2; 8 ]

let test_map_preserves_order () =
  let l = [ "a"; "bb"; "ccc"; "dddd" ] in
  Alcotest.(check (list int)) "map_list" [ 1; 2; 3; 4 ]
    (Engine.Pool.map_list ~jobs:3 String.length l);
  Alcotest.(check (array int)) "map_array" [| 1; 2; 3; 4 |]
    (Engine.Pool.map_array ~jobs:3 String.length (Array.of_list l))

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 16 (fun i () -> if i = 11 then raise (Boom i) else i)
      in
      match Engine.Pool.run_all ~jobs tasks with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i -> Alcotest.(check int) "failing index" 11 i)
    [ 1; 4 ]

let test_lowest_failure_wins () =
  (* Several failures: the lowest-indexed one is reported, whatever
     order the workers hit them in. *)
  let tasks = Array.init 16 (fun i () -> if i mod 5 = 3 then raise (Boom i) else i) in
  (match Engine.Pool.run_all ~jobs:8 tasks with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "first failure" 3 i)

let test_jobs_env_and_default () =
  Alcotest.(check bool) "available_jobs >= 1" true (Engine.Pool.available_jobs () >= 1);
  Engine.Pool.set_default_jobs 3;
  Alcotest.(check int) "default override" 3 (Engine.Pool.default_jobs ());
  Engine.Pool.set_default_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Engine.Pool.default_jobs ());
  Engine.Pool.set_default_jobs 1

(* ------------------------- determinism ----------------------------- *)

let small_grid () =
  (* A miniature single-VM sweep: 2 workloads x 2 policies, short
     runs.  Per-cell seeds come from the same scheme the real grids
     use (Runs.task_seed), so this asserts exactly the reproducibility
     contract of the parallel sweep. *)
  let cells =
    List.concat_map
      (fun app -> List.map (fun policy -> (app, policy)) Policies.Spec.[ first_touch; round_4k ])
      [ "swaptions"; "bodytrack" ]
  in
  Array.of_list
    (List.map
       (fun (app_name, policy) () ->
         let app =
           match Workloads.Catalogue.find app_name with
           | Some a -> a
           | None -> Alcotest.failf "no app %s" app_name
         in
         let key = { Experiments.Runs.mode = Engine.Config.Linux; app = app_name; policy; mcs = false } in
         let seed = Experiments.Runs.task_seed ~base:42 key in
         let vm = Engine.Config.vm ~policy app in
         let cfg = Engine.Config.make ~seed ~max_epochs:400 ~mode:Engine.Config.Linux [ vm ] in
         let r = Engine.Runner.run cfg in
         let vm_r = Engine.Result.single r in
         (vm_r.Engine.Result.completion, vm_r.Engine.Result.local_fraction, r.Engine.Result.imbalance))
       cells)

let test_parallel_equals_sequential () =
  let seq = Engine.Pool.run_all ~jobs:1 (small_grid ()) in
  let par = Engine.Pool.run_all ~jobs:4 (small_grid ()) in
  Alcotest.(check int) "same cell count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (c1, l1, i1) ->
      let c2, l2, i2 = par.(i) in
      (* bit-identical, not approximately equal *)
      Alcotest.(check bool) (Printf.sprintf "cell %d completion" i) true (c1 = c2);
      Alcotest.(check bool) (Printf.sprintf "cell %d local" i) true (l1 = l2);
      Alcotest.(check bool) (Printf.sprintf "cell %d imbalance" i) true (i1 = i2))
    seq

let test_task_seed_stable () =
  let key app policy =
    { Experiments.Runs.mode = Engine.Config.Xen_plus; app; policy; mcs = false }
  in
  let s1 = Experiments.Runs.task_seed ~base:42 (key "cg.C" Policies.Spec.round_4k) in
  let s2 = Experiments.Runs.task_seed ~base:42 (key "cg.C" Policies.Spec.round_4k) in
  let s3 = Experiments.Runs.task_seed ~base:42 (key "cg.C" Policies.Spec.first_touch) in
  let s4 = Experiments.Runs.task_seed ~base:7 (key "cg.C" Policies.Spec.round_4k) in
  Alcotest.(check int) "stable" s1 s2;
  Alcotest.(check bool) "policy changes the stream" true (s1 <> s3);
  Alcotest.(check bool) "base seed changes the stream" true (s1 <> s4);
  Alcotest.(check bool) "non-negative" true (s1 >= 0)

let test_parallel_runs_cache_safe () =
  (* Hammer the memoized run cache from 8 workers on the same key mix;
     every worker must observe the same result values. *)
  Experiments.Runs.clear_cache ();
  let app =
    match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false
  in
  let keys =
    [| Experiments.Runs.linux app Policies.Spec.first_touch;
       Experiments.Runs.linux app Policies.Spec.round_4k |]
  in
  let tasks =
    Array.init 16 (fun i () ->
        (Engine.Result.single (Experiments.Runs.run keys.(i mod 2))).Engine.Result.completion)
  in
  let results = Engine.Pool.run_all ~jobs:8 tasks in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "task %d consistent" i) true (r = results.(i mod 2)))
    results

let suite =
  [
    ( "engine.pool",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "results ordered by index" `Quick test_results_ordered_by_index;
        Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "lowest failure wins" `Quick test_lowest_failure_wins;
        Alcotest.test_case "jobs resolution" `Quick test_jobs_env_and_default;
      ] );
    ( "engine.pool.determinism",
      [
        Alcotest.test_case "jobs:1 == jobs:4 grid" `Slow test_parallel_equals_sequential;
        Alcotest.test_case "task_seed stable" `Quick test_task_seed_stable;
        Alcotest.test_case "parallel cache safe" `Slow test_parallel_runs_cache_safe;
      ] );
  ]
