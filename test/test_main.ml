let () =
  Alcotest.run "xen-numa"
    (Test_sim.suite @ Test_numa.suite @ Test_memory.suite @ Test_guest.suite @ Test_xen.suite @ Test_policies.suite @ Test_workloads.suite @ Test_engine.suite @ Test_pool.suite @ Test_report.suite @ Test_microsim.suite @ Test_extensions.suite @ Test_more.suite @ Test_faults.suite @ Test_obs.suite)
