(* Tests for the request-level memory-system simulator. *)

let topo = Numa.Amd48.topology ()

let cycles ns = ns *. Numa.Amd48.freq_hz /. 1e9

let within msg expected actual tolerance_pct =
  let tol = expected *. tolerance_pct /. 100.0 in
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.0f +/- %.0f%%, got %.0f" msg expected tolerance_pct actual

let test_idle_latencies_match_table3 () =
  List.iter
    (fun (hops, expected) ->
      let r = Microsim.Memsim.latency_probe ~topo ~threads:1 ~hops () in
      within
        (Printf.sprintf "idle %d hops" hops)
        expected
        (cycles r.Microsim.Memsim.mean_latency_ns)
        8.0)
    [ (0, 156.0); (1, 276.0); (2, 383.0) ]

let test_contended_latencies_match_table3 () =
  List.iter
    (fun (hops, expected) ->
      let r = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops () in
      within
        (Printf.sprintf "contended %d hops" hops)
        expected
        (cycles r.Microsim.Memsim.mean_latency_ns)
        12.0)
    [ (0, 697.0); (1, 740.0); (2, 863.0) ]

(* Differential pin between the two latency models: every Table 3 row
   of the request-level microsim must stay within 10% of the analytic
   model the engine actually runs on (Numa.Latency.mem_cycles), idle
   rows at saturation 0 and contended rows at saturation 1.  This makes
   the "within ~10%" claim in EXPERIMENTS.md executable: if either
   model is retuned without the other, this fails before the grids
   drift.  Measured deltas at the time of pinning: -6.9%..+2.3%, worst
   row (48 threads, 2 hops) -8.9%. *)
let test_microsim_matches_analytic_model () =
  let lat = Numa.Amd48.latency in
  List.iter
    (fun (threads, saturation) ->
      List.iter
        (fun hops ->
          let r = Microsim.Memsim.latency_probe ~topo ~threads ~hops () in
          within
            (Printf.sprintf "threads %d, %d hops vs analytic" threads hops)
            (Numa.Latency.mem_cycles lat ~hops ~saturation)
            (cycles r.Microsim.Memsim.mean_latency_ns)
            10.0)
        [ 0; 1; 2 ])
    [ (1, 0.0); (48, 1.0) ]

let test_contention_inflates_latency () =
  let idle = Microsim.Memsim.latency_probe ~topo ~threads:1 ~hops:0 () in
  let loaded = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops:0 () in
  Alcotest.(check bool) "48 threads much slower" true
    (loaded.Microsim.Memsim.mean_latency_ns > 3.0 *. idle.Microsim.Memsim.mean_latency_ns)

let test_latency_monotone_in_hops () =
  let lat hops =
    (Microsim.Memsim.latency_probe ~topo ~threads:1 ~hops ()).Microsim.Memsim.mean_latency_ns
  in
  let l0 = lat 0 and l1 = lat 1 and l2 = lat 2 in
  Alcotest.(check bool) "0 < 1 < 2 hops" true (l0 < l1 && l1 < l2)

let test_bandwidth_saturates () =
  (* More parallelism cannot push a controller past its bank pool. *)
  let t1 = Microsim.Memsim.bandwidth_probe ~topo ~threads:1 ~window:1 () in
  let t8 = Microsim.Memsim.bandwidth_probe ~topo ~threads:6 ~window:8 () in
  let t16 = Microsim.Memsim.bandwidth_probe ~topo ~threads:6 ~window:16 () in
  Alcotest.(check bool) "parallelism helps" true
    (t8.Microsim.Memsim.throughput_gib_s > 3.0 *. t1.Microsim.Memsim.throughput_gib_s);
  within "saturation plateau" t8.Microsim.Memsim.throughput_gib_s
    t16.Microsim.Memsim.throughput_gib_s 10.0

let test_efficiency_in_range () =
  let eff = Microsim.Memsim.random_access_efficiency ~topo () in
  Alcotest.(check bool) "between 50% and 80% of peak" true (eff > 0.5 && eff < 0.8)

let test_deterministic () =
  let a = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops:1 () in
  let b = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops:1 () in
  Alcotest.(check (float 1e-9)) "same result" a.Microsim.Memsim.mean_latency_ns
    b.Microsim.Memsim.mean_latency_ns

let test_request_budget_respected () =
  let r =
    Microsim.Memsim.run ~topo ~agents:[ (0, 0); (1, 0) ] ~window:2 ~requests_per_agent:100 ()
  in
  Alcotest.(check int) "exactly 200 requests" 200 r.Microsim.Memsim.requests;
  Alcotest.(check int) "two agent means" 2 (Array.length r.Microsim.Memsim.per_agent_mean_ns)

let test_p95_above_mean_under_load () =
  let r = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops:0 () in
  Alcotest.(check bool) "p95 >= mean" true
    (r.Microsim.Memsim.p95_latency_ns >= r.Microsim.Memsim.mean_latency_ns *. 0.9)

let test_rejects_bad_args () =
  Alcotest.check_raises "window 0" (Invalid_argument "Memsim.run: window must be positive")
    (fun () -> ignore (Microsim.Memsim.run ~topo ~agents:[ (0, 0) ] ~window:0 ~requests_per_agent:1 ()))

let suite =
  [
    ( "microsim.memsim",
      [
        Alcotest.test_case "idle latencies (Table 3)" `Quick test_idle_latencies_match_table3;
        Alcotest.test_case "contended latencies (Table 3)" `Slow
          test_contended_latencies_match_table3;
        Alcotest.test_case "differential vs analytic model (Table 3)" `Slow
          test_microsim_matches_analytic_model;
        Alcotest.test_case "contention inflates" `Quick test_contention_inflates_latency;
        Alcotest.test_case "monotone in hops" `Quick test_latency_monotone_in_hops;
        Alcotest.test_case "bandwidth saturates" `Quick test_bandwidth_saturates;
        Alcotest.test_case "efficiency range" `Quick test_efficiency_in_range;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "request budget" `Quick test_request_budget_respected;
        Alcotest.test_case "p95 sane" `Quick test_p95_above_mean_under_load;
        Alcotest.test_case "bad args" `Quick test_rejects_bad_args;
      ] );
  ]
