(* Tests for the memory library: page constants, buddy allocator,
   machine memory. *)

(* ------------------------------- page ----------------------------- *)

let test_page_constants () =
  Alcotest.(check int) "4k" 4096 Memory.Page.size_4k;
  Alcotest.(check int) "2m frames" 512 Memory.Page.frames_per_2m;
  Alcotest.(check int) "1g frames" 262144 Memory.Page.frames_per_1g;
  Alcotest.(check int) "2m order" 9 Memory.Page.order_2m;
  Alcotest.(check int) "1g order" 18 Memory.Page.order_1g;
  Alcotest.(check int) "frames of 1 byte" 1 (Memory.Page.frames_of_bytes ~bytes:1);
  Alcotest.(check int) "frames of 4096" 1 (Memory.Page.frames_of_bytes ~bytes:4096);
  Alcotest.(check int) "frames of 4097" 2 (Memory.Page.frames_of_bytes ~bytes:4097)

(* Satellite of the buddy.mli doc fix: the order constants are derived
   from the Units sizes in one place, so the byte math can never drift
   from the frame math. *)
let test_page_orders_from_units () =
  Alcotest.(check int) "order_4k" 0 Memory.Page.order_4k;
  Alcotest.(check int) "order_2m from 2 MiB"
    (Memory.Page.order_of_size (Sim.Units.mib 2))
    Memory.Page.order_2m;
  Alcotest.(check int) "order_1g from 1 GiB"
    (Memory.Page.order_of_size (Sim.Units.gib 1))
    Memory.Page.order_1g;
  Alcotest.(check int) "2m bytes round-trip" (Sim.Units.mib 2)
    ((1 lsl Memory.Page.order_2m) * Memory.Page.size_4k);
  Alcotest.(check int) "1g bytes round-trip" (Sim.Units.gib 1)
    ((1 lsl Memory.Page.order_1g) * Memory.Page.size_4k);
  Alcotest.(check int) "frames_per_2m" (1 lsl Memory.Page.order_2m) Memory.Page.frames_per_2m;
  Alcotest.(check int) "frames_per_1g" (1 lsl Memory.Page.order_1g) Memory.Page.frames_per_1g;
  Alcotest.(check bool) "buddy can serve order_1g" true
    (Memory.Buddy.max_order >= Memory.Page.order_1g);
  Alcotest.check_raises "sub-frame size"
    (Invalid_argument "Page.order_of_size: not a whole number of 4 KiB frames") (fun () ->
      ignore (Memory.Page.order_of_size 4095));
  Alcotest.check_raises "non-power-of-two frames"
    (Invalid_argument "Page.order_of_size: not a power-of-two frame count") (fun () ->
      ignore (Memory.Page.order_of_size (3 * 4096)))

(* ------------------------------- buddy ---------------------------- *)

let test_buddy_exhausts_exactly () =
  let b = Memory.Buddy.create ~base:0 ~frames:16 in
  Alcotest.(check int) "16 free" 16 (Memory.Buddy.free_frames b);
  let blocks = ref [] in
  let rec drain () =
    match Memory.Buddy.alloc b ~order:0 with
    | Some f ->
        blocks := f :: !blocks;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "16 allocated" 16 (List.length !blocks);
  Alcotest.(check int) "none free" 0 (Memory.Buddy.free_frames b);
  (* All distinct and in range. *)
  let sorted = List.sort_uniq compare !blocks in
  Alcotest.(check int) "distinct" 16 (List.length sorted);
  List.iter (fun f -> Alcotest.(check bool) "in range" true (f >= 0 && f < 16)) sorted

let test_buddy_split_and_coalesce () =
  let b = Memory.Buddy.create ~base:0 ~frames:16 in
  let f0 = match Memory.Buddy.alloc b ~order:0 with Some f -> f | None -> -1 in
  Alcotest.(check (option int)) "largest after split" (Some 3) (Memory.Buddy.largest_free_order b);
  Memory.Buddy.free b ~base:f0 ~order:0;
  Alcotest.(check (option int)) "coalesced back" (Some 4) (Memory.Buddy.largest_free_order b);
  Alcotest.(check int) "all free" 16 (Memory.Buddy.free_frames b)

let test_buddy_alloc_alignment () =
  let b = Memory.Buddy.create ~base:0 ~frames:1024 in
  for order = 0 to 6 do
    match Memory.Buddy.alloc b ~order with
    | Some f ->
        Alcotest.(check int) (Printf.sprintf "order %d aligned" order) 0 (f mod (1 lsl order))
    | None -> Alcotest.fail "allocation failed"
  done

let test_buddy_double_free_detected () =
  let b = Memory.Buddy.create ~base:0 ~frames:16 in
  (match Memory.Buddy.alloc b ~order:2 with
  | Some f ->
      Memory.Buddy.free b ~base:f ~order:2;
      Alcotest.check_raises "double free" (Invalid_argument "Buddy.free: double free")
        (fun () -> Memory.Buddy.free b ~base:f ~order:2)
  | None -> Alcotest.fail "alloc failed")

let test_buddy_out_of_range_free () =
  let b = Memory.Buddy.create ~base:0 ~frames:16 in
  Alcotest.check_raises "out of range" (Invalid_argument "Buddy.free: block out of range")
    (fun () -> Memory.Buddy.free b ~base:100 ~order:0)

let test_buddy_non_power_of_two () =
  let b = Memory.Buddy.create ~base:0 ~frames:100 in
  Alcotest.(check int) "100 free" 100 (Memory.Buddy.free_frames b);
  (* Largest aligned block inside 100 frames is 64. *)
  Alcotest.(check (option int)) "largest order 6" (Some 6) (Memory.Buddy.largest_free_order b)

let test_buddy_nonzero_base () =
  let b = Memory.Buddy.create ~base:4096 ~frames:256 in
  (match Memory.Buddy.alloc b ~order:8 with
  | Some f -> Alcotest.(check int) "whole range" 4096 f
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check (option int)) "empty" None (Memory.Buddy.alloc b ~order:0)

let test_buddy_reserve () =
  let b = Memory.Buddy.create ~base:0 ~frames:64 in
  let reserved = Memory.Buddy.reserve b ~base:10 ~frames:10 in
  Alcotest.(check int) "10 reserved" 10 reserved;
  Alcotest.(check int) "54 free" 54 (Memory.Buddy.free_frames b);
  (* The hole is never handed out. *)
  let rec drain acc =
    match Memory.Buddy.alloc b ~order:0 with Some f -> drain (f :: acc) | None -> acc
  in
  let all = drain [] in
  Alcotest.(check int) "54 allocatable" 54 (List.length all);
  List.iter
    (fun f -> if f >= 10 && f < 20 then Alcotest.failf "hole frame %d handed out" f)
    all

let test_buddy_fragmentation_fallback () =
  let b = Memory.Buddy.create ~base:0 ~frames:256 in
  (* Fragment: allocate every other order-0 block of the first 128. *)
  let held = ref [] in
  for _ = 1 to 64 do
    match Memory.Buddy.alloc b ~order:1 with
    | Some f ->
        (* keep the low half, free the high half: fragments order-1 space *)
        Memory.Buddy.split_allocation b ~base:f ~order:1;
        Memory.Buddy.free b ~base:(f + 1) ~order:0;
        held := f :: !held
    | None -> Alcotest.fail "alloc failed"
  done;
  Alcotest.(check (option int)) "big blocks left" (Some 7) (Memory.Buddy.largest_free_order b);
  Alcotest.(check bool) "order 7 alloc still works" true
    (Memory.Buddy.alloc b ~order:7 <> None);
  Alcotest.(check (option int)) "no more big blocks" None (Memory.Buddy.alloc b ~order:7)

(* qcheck: random alloc/free traces conserve frames and never overlap *)
let prop_buddy_trace =
  QCheck.Test.make ~name:"buddy conserves frames under random traces" ~count:100
    QCheck.(pair int (list_of_size (Gen.int_range 1 200) (int_range 0 4)))
    (fun (seed, orders) ->
      let b = Memory.Buddy.create ~base:0 ~frames:1024 in
      let rng = Sim.Rng.create ~seed in
      let held = ref [] in
      List.iter
        (fun order ->
          if Sim.Rng.bool rng || !held = [] then begin
            match Memory.Buddy.alloc b ~order with
            | Some f -> held := (f, order) :: !held
            | None -> ()
          end
          else begin
            match !held with
            | (f, o) :: rest ->
                Memory.Buddy.free b ~base:f ~order:o;
                held := rest
            | [] -> ()
          end)
        orders;
      let held_frames = List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 !held in
      Memory.Buddy.free_frames b + held_frames = 1024)

(* Satellite property: under random split/alloc/free sequences the
   allocator's view of the arena stays a partition — held blocks never
   overlap, free + held frame counts conserve the arena, and the free
   side really is the complement (draining it as order-0 allocations
   covers exactly the frames no held block owns). *)
let prop_buddy_partition =
  let arena = 1024 in
  QCheck.Test.make ~name:"buddy free+allocated partitions the arena" ~count:100
    QCheck.(pair int (list_of_size (Gen.int_range 1 300) (int_range 0 5)))
    (fun (seed, orders) ->
      let b = Memory.Buddy.create ~base:0 ~frames:arena in
      let rng = Sim.Rng.create ~seed in
      let held = ref [] in
      List.iter
        (fun order ->
          match Sim.Rng.int rng 4 with
          | 0 | 1 -> (
              (* alloc *)
              match Memory.Buddy.alloc b ~order with
              | Some f -> held := (f, order) :: !held
              | None -> ())
          | 2 -> (
              (* free a random held block *)
              match !held with
              | [] -> ()
              | l ->
                  let i = Sim.Rng.int rng (List.length l) in
                  let f, o = List.nth l i in
                  Memory.Buddy.free b ~base:f ~order:o;
                  held := List.filteri (fun j _ -> j <> i) l)
          | _ -> (
              (* split a random held block into order-0 allocations *)
              match List.filter (fun (_, o) -> o > 0) !held with
              | [] -> ()
              | splittable ->
                  let i = Sim.Rng.int rng (List.length splittable) in
                  let f, o = List.nth splittable i in
                  Memory.Buddy.split_allocation b ~base:f ~order:o;
                  held :=
                    List.init (1 lsl o) (fun k -> (f + k, 0))
                    @ List.filter (fun blk -> blk <> (f, o)) !held))
        orders;
      (* No two held blocks overlap. *)
      let sorted =
        List.sort compare (List.map (fun (f, o) -> (f, f + (1 lsl o))) !held)
      in
      let rec disjoint = function
        | (_, hi) :: ((lo, _) :: _ as rest) ->
            if hi > lo then QCheck.Test.fail_reportf "held blocks overlap at frame %d" lo;
            disjoint rest
        | _ -> ()
      in
      disjoint sorted;
      (* Conservation. *)
      let held_frames = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 sorted in
      if Memory.Buddy.free_frames b + held_frames <> arena then
        QCheck.Test.fail_reportf "%d free + %d held <> %d"
          (Memory.Buddy.free_frames b) held_frames arena;
      (* The free side is exactly the complement: drain it as order-0
         allocations and check every arena frame is owned once. *)
      let owned = Array.make arena false in
      List.iter
        (fun (lo, hi) ->
          for f = lo to hi - 1 do
            if owned.(f) then QCheck.Test.fail_reportf "frame %d held twice" f;
            owned.(f) <- true
          done)
        sorted;
      let rec drain () =
        match Memory.Buddy.alloc b ~order:0 with
        | Some f ->
            if owned.(f) then QCheck.Test.fail_reportf "free frame %d already held" f;
            owned.(f) <- true;
            drain ()
        | None -> ()
      in
      drain ();
      Array.iteri
        (fun f o -> if not o then QCheck.Test.fail_reportf "frame %d leaked" f)
        owned;
      true)

let prop_buddy_full_free_coalesces =
  QCheck.Test.make ~name:"freeing everything restores one max block" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 3))
    (fun orders ->
      let b = Memory.Buddy.create ~base:0 ~frames:256 in
      let held =
        List.filter_map
          (fun order ->
            match Memory.Buddy.alloc b ~order with Some f -> Some (f, order) | None -> None)
          orders
      in
      List.iter (fun (f, o) -> Memory.Buddy.free b ~base:f ~order:o) held;
      Memory.Buddy.free_frames b = 256 && Memory.Buddy.largest_free_order b = Some 8)

(* --------------------------- buddy offline ------------------------ *)

let test_offline_free_range () =
  let b = Memory.Buddy.create ~base:0 ~frames:64 in
  let offlined, pending = Memory.Buddy.offline_range b ~base:16 ~frames:16 in
  Alcotest.(check int) "16 offlined now" 16 offlined;
  Alcotest.(check int) "none pending" 0 pending;
  Alcotest.(check int) "free shrank" 48 (Memory.Buddy.free_frames b);
  Alcotest.(check int) "offlined counted" 16 (Memory.Buddy.offlined_frames b);
  Alcotest.(check bool) "frame retired" true (Memory.Buddy.is_offlined b ~frame:20);
  Alcotest.(check bool) "outside untouched" false (Memory.Buddy.is_offlined b ~frame:40);
  (* The hole is never handed out. *)
  let rec drain acc =
    match Memory.Buddy.alloc b ~order:0 with Some f -> drain (f :: acc) | None -> acc
  in
  let all = drain [] in
  Alcotest.(check int) "48 allocatable" 48 (List.length all);
  List.iter
    (fun f -> if f >= 16 && f < 32 then Alcotest.failf "offlined frame %d handed out" f)
    all

let test_offline_allocated_pends () =
  let b = Memory.Buddy.create ~base:0 ~frames:32 in
  let f = match Memory.Buddy.alloc b ~order:2 with Some f -> f | None -> -1 in
  let offlined, pending = Memory.Buddy.offline_range b ~base:f ~frames:4 in
  Alcotest.(check int) "none offlined yet" 0 offlined;
  Alcotest.(check int) "4 pending" 4 pending;
  Alcotest.(check int) "pending counted" 4 (Memory.Buddy.offline_pending_frames b);
  Alcotest.(check bool) "not yet retired" false (Memory.Buddy.is_offlined b ~frame:f);
  (* The free retires the pending frames instead of recycling them. *)
  Memory.Buddy.free b ~base:f ~order:2;
  Alcotest.(check int) "retired on free" 4 (Memory.Buddy.offlined_frames b);
  Alcotest.(check int) "no pending left" 0 (Memory.Buddy.offline_pending_frames b);
  Alcotest.(check bool) "now retired" true (Memory.Buddy.is_offlined b ~frame:f);
  Alcotest.(check int) "free excludes them" 28 (Memory.Buddy.free_frames b)

let test_online_range_restores () =
  let b = Memory.Buddy.create ~base:0 ~frames:64 in
  ignore (Memory.Buddy.offline_range b ~base:0 ~frames:32);
  Alcotest.(check int) "half gone" 32 (Memory.Buddy.free_frames b);
  let restored = Memory.Buddy.online_range b ~base:0 ~frames:32 in
  Alcotest.(check int) "all restored" 32 restored;
  Alcotest.(check int) "free whole again" 64 (Memory.Buddy.free_frames b);
  Alcotest.(check int) "no offlined left" 0 (Memory.Buddy.offlined_frames b);
  (* Restoration coalesces: the arena is one max-order block again. *)
  Alcotest.(check (option int)) "coalesced" (Some 6) (Memory.Buddy.largest_free_order b)

let test_online_cancels_pending () =
  let b = Memory.Buddy.create ~base:0 ~frames:16 in
  let f = match Memory.Buddy.alloc b ~order:1 with Some f -> f | None -> -1 in
  ignore (Memory.Buddy.offline_range b ~base:f ~frames:2);
  let restored = Memory.Buddy.online_range b ~base:f ~frames:2 in
  Alcotest.(check int) "pending frames are not freed" 0 restored;
  Alcotest.(check int) "mark cancelled" 0 (Memory.Buddy.offline_pending_frames b);
  (* A later free recycles normally. *)
  Memory.Buddy.free b ~base:f ~order:1;
  Alcotest.(check int) "recycled" 16 (Memory.Buddy.free_frames b);
  Alcotest.(check int) "nothing retired" 0 (Memory.Buddy.offlined_frames b)

(* Satellite property: with offline/online operations mixed into random
   alloc/free traces the partition invariant extends to
   free + allocated + offlined = total (pending counts as allocated),
   and offlined frames are never handed out. *)
let prop_buddy_offline_partition =
  let arena = 512 in
  QCheck.Test.make ~name:"buddy offline keeps the partition invariant" ~count:100
    QCheck.(pair int (list_of_size (Gen.int_range 1 300) (int_range 0 4)))
    (fun (seed, orders) ->
      let b = Memory.Buddy.create ~base:0 ~frames:arena in
      let rng = Sim.Rng.create ~seed in
      let held = ref [] in
      List.iter
        (fun order ->
          match Sim.Rng.int rng 5 with
          | 0 | 1 -> (
              match Memory.Buddy.alloc b ~order with
              | Some f ->
                  if Memory.Buddy.is_offlined b ~frame:f then
                    QCheck.Test.fail_reportf "offlined frame %d handed out" f;
                  held := (f, order) :: !held
              | None -> ())
          | 2 -> (
              match !held with
              | [] -> ()
              | l ->
                  let i = Sim.Rng.int rng (List.length l) in
                  let f, o = List.nth l i in
                  Memory.Buddy.free b ~base:f ~order:o;
                  held := List.filteri (fun j _ -> j <> i) l)
          | 3 ->
              let base = Sim.Rng.int rng arena in
              let frames = 1 + Sim.Rng.int rng 32 in
              ignore (Memory.Buddy.offline_range b ~base ~frames)
          | _ ->
              let base = Sim.Rng.int rng arena in
              let frames = 1 + Sim.Rng.int rng 32 in
              ignore (Memory.Buddy.online_range b ~base ~frames))
        orders;
      let held_frames = List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 !held in
      let free = Memory.Buddy.free_frames b in
      let offlined = Memory.Buddy.offlined_frames b in
      let pending = Memory.Buddy.offline_pending_frames b in
      if pending > held_frames then
        QCheck.Test.fail_reportf "%d pending > %d held" pending held_frames;
      if free + held_frames + offlined <> arena then
        QCheck.Test.fail_reportf "%d free + %d held + %d offlined <> %d" free held_frames
          offlined arena;
      (* Draining the free side never yields a retired frame. *)
      let rec drain () =
        match Memory.Buddy.alloc b ~order:0 with
        | Some f ->
            if Memory.Buddy.is_offlined b ~frame:f then
              QCheck.Test.fail_reportf "drained retired frame %d" f;
            drain ()
        | None -> ()
      in
      drain ();
      true)

(* ------------------------------ machine --------------------------- *)

let machine ?(page_scale = 1) () = Memory.Machine.create ~page_scale (Numa.Amd48.topology ())

let test_machine_layout () =
  let m = machine () in
  Alcotest.(check int) "frames/node" (16 * 1024 * 1024 * 1024 / 4096) (Memory.Machine.frames_per_node m);
  Alcotest.(check int) "frame bytes" 4096 (Memory.Machine.frame_bytes m);
  Alcotest.(check int) "node of frame 0" 0 (Memory.Machine.node_of_mfn m 0);
  let fpn = Memory.Machine.frames_per_node m in
  Alcotest.(check int) "node of frame fpn" 1 (Memory.Machine.node_of_mfn m fpn);
  Alcotest.(check int) "node of last" 7 (Memory.Machine.node_of_mfn m ((8 * fpn) - 1))

let test_machine_alloc_on_node () =
  let m = machine () in
  (match Memory.Machine.alloc_frame m ~node:3 with
  | Some mfn -> Alcotest.(check int) "frame from node 3" 3 (Memory.Machine.node_of_mfn m mfn)
  | None -> Alcotest.fail "alloc failed");
  Alcotest.(check int) "one frame used"
    (Memory.Machine.frames_per_node m - 1)
    (Memory.Machine.free_frames_on m 3)

let test_machine_fallback () =
  let m = Memory.Machine.create ~page_scale:262144 (Numa.Amd48.topology ()) in
  (* 1 GiB scaled frames: 16 per node.  Exhaust node 0 and watch the
     fallback round-robin spill (Section 3.1). *)
  for _ = 1 to 16 do
    match Memory.Machine.alloc_frame m ~node:0 with
    | Some _ -> ()
    | None -> Alcotest.fail "node 0 should have frames"
  done;
  Alcotest.(check int) "node 0 empty" 0 (Memory.Machine.free_frames_on m 0);
  match Memory.Machine.alloc_frame_fallback m ~prefer:0 with
  | Some mfn ->
      Alcotest.(check bool) "spilled to another node" true (Memory.Machine.node_of_mfn m mfn <> 0)
  | None -> Alcotest.fail "fallback failed"

let test_machine_scaled_orders () =
  let m = machine ~page_scale:256 () in
  Alcotest.(check int) "frame bytes 1 MiB" (1024 * 1024) (Memory.Machine.frame_bytes m);
  Alcotest.(check int) "1g order scaled" 10 (Memory.Machine.order_1g m);
  Alcotest.(check int) "2m order scaled" 1 (Memory.Machine.order_2m m);
  Alcotest.(check int) "order of 3 MiB" 2 (Memory.Machine.order_of_bytes m ~bytes:(3 * 1024 * 1024))

let test_machine_free_respects_node () =
  let m = machine () in
  match Memory.Machine.alloc_on m ~node:2 ~order:4 with
  | Some mfn ->
      Memory.Machine.free m ~mfn ~order:4;
      Alcotest.(check int) "all back" (Memory.Machine.frames_per_node m)
        (Memory.Machine.free_frames_on m 2)
  | None -> Alcotest.fail "alloc failed"

let test_machine_used_per_node () =
  let m = machine () in
  ignore (Memory.Machine.alloc_frame m ~node:1);
  ignore (Memory.Machine.alloc_frame m ~node:1);
  ignore (Memory.Machine.alloc_frame m ~node:6);
  let used = Memory.Machine.used_frames_per_node m in
  Alcotest.(check int) "node 1" 2 used.(1);
  Alcotest.(check int) "node 6" 1 used.(6);
  Alcotest.(check int) "node 0" 0 used.(0)

let test_machine_rejects_bad_scale () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Machine.create: page_scale must be a positive power of two") (fun () ->
      ignore (Memory.Machine.create ~page_scale:3 (Numa.Amd48.topology ())))

let test_machine_offline_node () =
  let m = Memory.Machine.create ~page_scale:262144 (Numa.Amd48.topology ()) in
  (* 16 scaled frames per node. *)
  let held =
    List.init 4 (fun _ ->
        match Memory.Machine.alloc_frame m ~node:2 with Some mfn -> mfn | None -> -1)
  in
  let offlined, pending = Memory.Machine.offline_node m 2 in
  Alcotest.(check int) "free frames retired now" 12 offlined;
  Alcotest.(check int) "allocated ones pend" 4 pending;
  Alcotest.(check int) "node 2 empty" 0 (Memory.Machine.free_frames_on m 2);
  Alcotest.(check int) "offlined on node" 12 (Memory.Machine.offlined_frames_on m 2);
  (* Frees retire instead of recycling. *)
  List.iter (fun mfn -> Memory.Machine.free m ~mfn ~order:0) held;
  Alcotest.(check int) "all retired" 16 (Memory.Machine.offlined_frames_on m 2);
  Alcotest.(check bool) "mfn retired" true (Memory.Machine.is_offlined m (List.hd held));
  Alcotest.(check int) "still nothing free" 0 (Memory.Machine.free_frames_on m 2);
  (* Recovery returns everything. *)
  let restored = Memory.Machine.online_node m 2 in
  Alcotest.(check int) "restored" 16 restored;
  Alcotest.(check int) "free again" 16 (Memory.Machine.free_frames_on m 2)

let test_machine_mask_vetoes_alloc () =
  let topo = Numa.Amd48.topology () in
  let m = Memory.Machine.create ~page_scale:262144 topo in
  Numa.Topology.set_node_online topo 5 false;
  Alcotest.(check bool) "masked node refuses" true (Memory.Machine.alloc_on m ~node:5 ~order:0 = None);
  (match Memory.Machine.alloc_frame_fallback m ~prefer:5 with
  | Some mfn ->
      Alcotest.(check bool) "fallback avoids masked node" true
        (Memory.Machine.node_of_mfn m mfn <> 5)
  | None -> Alcotest.fail "fallback failed");
  Numa.Topology.set_node_online topo 5 true;
  Alcotest.(check bool) "online again" true (Memory.Machine.alloc_on m ~node:5 ~order:0 <> None)

let suite =
  [
    ( "memory.page",
      [
        Alcotest.test_case "constants" `Quick test_page_constants;
        Alcotest.test_case "orders derived from units" `Quick test_page_orders_from_units;
      ] );
    ( "memory.buddy",
      [
        Alcotest.test_case "exhausts exactly" `Quick test_buddy_exhausts_exactly;
        Alcotest.test_case "split and coalesce" `Quick test_buddy_split_and_coalesce;
        Alcotest.test_case "alignment" `Quick test_buddy_alloc_alignment;
        Alcotest.test_case "double free" `Quick test_buddy_double_free_detected;
        Alcotest.test_case "out of range free" `Quick test_buddy_out_of_range_free;
        Alcotest.test_case "non power of two size" `Quick test_buddy_non_power_of_two;
        Alcotest.test_case "nonzero base" `Quick test_buddy_nonzero_base;
        Alcotest.test_case "reserve hole" `Quick test_buddy_reserve;
        Alcotest.test_case "fragmentation fallback" `Quick test_buddy_fragmentation_fallback;
        QCheck_alcotest.to_alcotest prop_buddy_trace;
        QCheck_alcotest.to_alcotest prop_buddy_partition;
        QCheck_alcotest.to_alcotest prop_buddy_full_free_coalesces;
      ] );
    ( "memory.buddy.offline",
      [
        Alcotest.test_case "offline free range" `Quick test_offline_free_range;
        Alcotest.test_case "offline allocated pends" `Quick test_offline_allocated_pends;
        Alcotest.test_case "online restores" `Quick test_online_range_restores;
        Alcotest.test_case "online cancels pending" `Quick test_online_cancels_pending;
        QCheck_alcotest.to_alcotest prop_buddy_offline_partition;
      ] );
    ( "memory.machine",
      [
        Alcotest.test_case "layout" `Quick test_machine_layout;
        Alcotest.test_case "alloc on node" `Quick test_machine_alloc_on_node;
        Alcotest.test_case "first-touch fallback" `Quick test_machine_fallback;
        Alcotest.test_case "scaled orders" `Quick test_machine_scaled_orders;
        Alcotest.test_case "free returns to node" `Quick test_machine_free_respects_node;
        Alcotest.test_case "used per node" `Quick test_machine_used_per_node;
        Alcotest.test_case "rejects bad scale" `Quick test_machine_rejects_bad_scale;
        Alcotest.test_case "offline node" `Quick test_machine_offline_node;
        Alcotest.test_case "mask vetoes alloc" `Quick test_machine_mask_vetoes_alloc;
      ] );
  ]
