(* Tests for the fault-injection subsystem and graceful degradation:
   plan parsing, injector determinism, queue fault hooks and
   re-entrancy, breaker escalation, frame-accounting under random fault
   schedules, and whole-engine behaviour under injection. *)

(* ------------------------------- plans ----------------------------- *)

let test_plan_parse_roundtrip () =
  List.iter
    (fun s ->
      let p = Faults.Plan.of_string_exn s in
      let s' = Faults.Plan.to_string p in
      let p' = Faults.Plan.of_string_exn s' in
      Alcotest.(check string) ("round-trip " ^ s) s' (Faults.Plan.to_string p'))
    [
      "migrate=1.0";
      "alloc=0.3@50-150,stall=0.01";
      "node-off=2@100-";
      "batch-loss=0.5,op-drop=0.05,hypercall=0.2,iommu=0.1";
      "alloc=0.15,migrate=0.5";
      "ecc-ce=0.5,ecc-ue=0.01";
      "node_fail=1.0@50-150";
      "node-fail=0.5@10";
    ]

let test_plan_parse_empty () =
  Alcotest.(check bool) "none" true (Faults.Plan.is_empty (Faults.Plan.of_string_exn "none"));
  Alcotest.(check bool) "blank" true (Faults.Plan.is_empty (Faults.Plan.of_string_exn ""))

let test_plan_parse_errors () =
  List.iter
    (fun s ->
      match Faults.Plan.of_string s with
      | Ok _ -> Alcotest.failf "plan %S should not parse" s
      | Error _ -> ())
    [ "alloc=1.5"; "migrate=-0.1"; "bogus=0.1"; "migrate"; "alloc=0.1@9-3"; "alloc=abc" ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_plan_unknown_site_lists_valid () =
  (* The unknown-site error is the discovery surface for the grammar:
     it must name the bad site and enumerate every valid one. *)
  match Faults.Plan.of_string "bogus=0.1" with
  | Ok _ -> Alcotest.fail "bogus site should not parse"
  | Error msg ->
      Alcotest.(check string) "exact message"
        (Printf.sprintf "unknown fault site %S (valid sites: %s)" "bogus"
           (String.concat ", " Faults.Plan.valid_site_names))
        msg;
      List.iter
        (fun site ->
          Alcotest.(check bool) (Printf.sprintf "message lists %s" site) true
            (contains ~sub:site msg))
        [ "ecc-ce"; "ecc-ue"; "node_fail"; "alloc"; "migrate" ]

let test_plan_ras_rate_range () =
  List.iter
    (fun s ->
      match Faults.Plan.of_string s with
      | Ok _ -> Alcotest.failf "plan %S should not parse" s
      | Error msg ->
          Alcotest.(check bool) (s ^ " names the range") true
            (contains ~sub:"outside [0, 1]" msg))
    [ "ecc-ce=1.5"; "ecc-ue=-0.1"; "node_fail=2.0"; "node-fail=-1" ]

let test_plan_validate_window () =
  let bad =
    [ Faults.Plan.spec ~from_epoch:10 ~until_epoch:5 (Faults.Plan.Migrate_enomem 0.5) ]
  in
  match Faults.Plan.validate bad with
  | Ok _ -> Alcotest.fail "inverted window should not validate"
  | Error _ -> ()

(* ------------------------------ injector --------------------------- *)

let all_sites_plan =
  Faults.Plan.of_string_exn
    "alloc=0.5,migrate=0.5,batch-loss=0.5,op-drop=0.5,hypercall=0.5,iommu=0.5,stall=0.5"

(* One fixed interleaved query trace: the injector's guarantee is that
   the same plan, seed and query sequence give the same answers. *)
let query_trace inj =
  let out = ref [] in
  for epoch = 0 to 20 do
    Faults.Injector.set_epoch inj epoch;
    List.iter
      (fun b -> out := b :: !out)
      [
        Faults.Injector.alloc_fails inj ~node:(epoch mod 8);
        Faults.Injector.migrate_fails inj;
        Faults.Injector.batch_lost inj ~ops:16;
        Faults.Injector.op_dropped inj;
        Faults.Injector.hypercall_fails inj;
        Faults.Injector.iommu_faults inj;
        Faults.Injector.vcpu_stalls inj;
      ]
  done;
  List.rev !out

let test_injector_deterministic () =
  let a = query_trace (Faults.Injector.create ~seed:1234 all_sites_plan) in
  let b = query_trace (Faults.Injector.create ~seed:1234 all_sites_plan) in
  Alcotest.(check (list bool)) "same seed, same trace" a b;
  let c = query_trace (Faults.Injector.create ~seed:1235 all_sites_plan) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_injector_boot_quiet () =
  (* Epoch -1 (boot) never fires, even at rate 1.0. *)
  let plan = Faults.Plan.of_string_exn "alloc=1.0,migrate=1.0,stall=1.0" in
  let inj = Faults.Injector.create ~seed:7 plan in
  Alcotest.(check bool) "alloc quiet" false (Faults.Injector.alloc_fails inj ~node:0);
  Alcotest.(check bool) "migrate quiet" false (Faults.Injector.migrate_fails inj);
  Alcotest.(check bool) "stall quiet" false (Faults.Injector.vcpu_stalls inj);
  Alcotest.(check int) "nothing injected" 0 (Faults.Injector.total_injected inj)

let test_injector_window () =
  let inj = Faults.Injector.create ~seed:7 (Faults.Plan.of_string_exn "alloc=1.0@5-10") in
  List.iter
    (fun (epoch, expect) ->
      Faults.Injector.set_epoch inj epoch;
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d" epoch)
        expect
        (Faults.Injector.alloc_fails inj ~node:0))
    [ (4, false); (5, true); (9, true); (10, false) ]

let test_injector_node_offline () =
  let inj = Faults.Injector.create ~seed:7 (Faults.Plan.of_string_exn "node-off=2") in
  Faults.Injector.set_epoch inj 0;
  Alcotest.(check bool) "node 2 down" true (Faults.Injector.alloc_fails inj ~node:2);
  Alcotest.(check bool) "node 1 up" false (Faults.Injector.alloc_fails inj ~node:1)

let test_injector_empty_disabled () =
  let inj = Faults.Injector.create ~seed:7 Faults.Plan.empty in
  Alcotest.(check bool) "disabled" false (Faults.Injector.enabled inj);
  Faults.Injector.set_epoch inj 3;
  Alcotest.(check bool) "never fires" false (Faults.Injector.migrate_fails inj)

(* ---------------------------- RAS sites ---------------------------- *)

let test_injector_ecc_deterministic () =
  let plan = Faults.Plan.of_string_exn "ecc-ce=0.5,ecc-ue=0.2" in
  let trace seed =
    let inj = Faults.Injector.create ~seed plan in
    let out = ref [] in
    for epoch = 0 to 40 do
      Faults.Injector.set_epoch inj epoch;
      out := Faults.Injector.ecc_events inj ~frames:4096 :: !out
    done;
    List.rev !out
  in
  let a = trace 1234 in
  Alcotest.(check bool) "same seed, same events" true (a = trace 1234);
  Alcotest.(check bool) "different seed differs" true (a <> trace 1235);
  Alcotest.(check bool) "both classes fire" true
    (List.exists (List.exists (function Faults.Injector.Ce _ -> true | _ -> false)) a
    && List.exists (List.exists (function Faults.Injector.Ue _ -> true | _ -> false)) a);
  List.iter
    (List.iter (function
      | Faults.Injector.Ce pfn | Faults.Injector.Ue pfn ->
          Alcotest.(check bool) "pfn in range" true (pfn >= 0 && pfn < 4096)))
    a;
  (* Boot (epoch -1) never fires. *)
  let inj = Faults.Injector.create ~seed:7 plan in
  Alcotest.(check bool) "quiet at boot" true (Faults.Injector.ecc_events inj ~frames:4096 = [])

let test_injector_node_fail_lifecycle () =
  let inj =
    Faults.Injector.create ~seed:5 (Faults.Plan.of_string_exn "node_fail=1.0@10-30")
  in
  Faults.Injector.assign_node_targets inj ~candidates:[| 3 |] ~nodes:8 ();
  Alcotest.(check (list int)) "candidates pin the target" [ 3 ]
    (Faults.Injector.node_fail_targets inj);
  (* Idempotent: a second call never re-draws. *)
  Faults.Injector.assign_node_targets inj ~candidates:[| 6 |] ~nodes:8 ();
  Alcotest.(check (list int)) "no re-draw" [ 3 ] (Faults.Injector.node_fail_targets inj);
  Faults.Injector.set_epoch inj 5;
  Alcotest.(check bool) "healthy before window" false (Faults.Injector.node_failing inj ~node:3);
  Alcotest.(check (float 1e-9)) "full bandwidth before" 1.0
    (Faults.Injector.node_bandwidth_factor inj ~node:3);
  Faults.Injector.set_epoch inj 10;
  Alcotest.(check bool) "failing at window open" true (Faults.Injector.node_failing inj ~node:3);
  Alcotest.(check bool) "not yet offline" false (Faults.Injector.node_offline inj ~node:3);
  Alcotest.(check bool) "failing node vetoes alloc" true
    (Faults.Injector.alloc_fails inj ~node:3);
  Alcotest.(check bool) "other nodes unaffected" false (Faults.Injector.node_failing inj ~node:0);
  let bw10 = Faults.Injector.node_bandwidth_factor inj ~node:3 in
  Faults.Injector.set_epoch inj 20;
  let bw20 = Faults.Injector.node_bandwidth_factor inj ~node:3 in
  Alcotest.(check bool) "bandwidth collapses monotonically" true (bw20 < bw10 && bw10 < 1.0);
  Faults.Injector.set_epoch inj 30;
  Alcotest.(check bool) "permanent failure persists" true
    (Faults.Injector.node_failing inj ~node:3);
  Alcotest.(check bool) "offline once the window closes" true
    (Faults.Injector.node_offline inj ~node:3);
  Alcotest.(check (float 1e-9)) "bandwidth fully collapsed" 0.0
    (Faults.Injector.node_bandwidth_factor inj ~node:3);
  Alcotest.(check int) "one node failure counted" 1
    (Faults.Injector.stats inj).Faults.Injector.node_failures

let test_injector_node_fail_transient_recovers () =
  (* rate < 1.0: the node degrades across the window, then recovers —
     it never goes offline for good. *)
  let inj =
    Faults.Injector.create ~seed:5 (Faults.Plan.of_string_exn "node_fail=0.5@10-20")
  in
  Faults.Injector.assign_node_targets inj ~candidates:[| 2 |] ~nodes:8 ();
  Faults.Injector.set_epoch inj 15;
  Alcotest.(check bool) "failing inside window" true (Faults.Injector.node_failing inj ~node:2);
  Alcotest.(check bool) "degraded" true
    (Faults.Injector.node_bandwidth_factor inj ~node:2 < 1.0);
  Faults.Injector.set_epoch inj 20;
  Alcotest.(check bool) "recovered after window" false (Faults.Injector.node_failing inj ~node:2);
  Alcotest.(check bool) "never offline" false (Faults.Injector.node_offline inj ~node:2);
  Alcotest.(check (float 1e-9)) "bandwidth restored" 1.0
    (Faults.Injector.node_bandwidth_factor inj ~node:2)

(* ---------------------------- p2m hardening ------------------------ *)

let test_p2m_rejects_negative_mfn () =
  let p2m = Xen.P2m.create ~frames:8 () in
  Alcotest.check_raises "negative mfn" (Invalid_argument "P2m.set: negative mfn") (fun () ->
      Xen.P2m.set p2m 0 ~mfn:(-2) ~writable:true)

let test_p2m_check_consistent () =
  let p2m = Xen.P2m.create ~frames:8 () in
  Alcotest.(check bool) "fresh" true (Xen.P2m.check_consistent p2m);
  Xen.P2m.set p2m 0 ~mfn:11 ~writable:true;
  Xen.P2m.set p2m 3 ~mfn:12 ~writable:false;
  ignore (Xen.P2m.invalidate p2m 0);
  Alcotest.(check bool) "after churn" true (Xen.P2m.check_consistent p2m);
  Alcotest.(check int) "mapped count" 1 (Xen.P2m.mapped_count p2m)

(* --------------------------- pv queue faults ----------------------- *)

let test_queue_reentrant_flush () =
  (* Regression: [record] must be callable from inside the flush
     handler (the partition is snapshotted and emptied first). *)
  let q = ref None in
  let flushed = ref 0 in
  let flush ops =
    incr flushed;
    if !flushed = 1 then
      (* Re-enter with an op landing in the same (only) partition. *)
      Guest.Pv_queue.record (Option.get !q) (Guest.Pv_queue.Alloc (Array.length ops + 100));
    0.0
  in
  let queue = Guest.Pv_queue.create ~partitions:1 ~capacity:4 ~flush () in
  q := Some queue;
  for pfn = 0 to 3 do
    Guest.Pv_queue.record queue (Guest.Pv_queue.Alloc pfn)
  done;
  Alcotest.(check int) "one flush" 1 !flushed;
  Alcotest.(check int) "re-entered op queued" 1 (Guest.Pv_queue.pending queue);
  Alcotest.(check int) "four ops sent" 4 (Guest.Pv_queue.stats queue).Guest.Pv_queue.ops_sent

let test_queue_drop_and_loss_hooks () =
  (* Drop draws happen at flush time, once per op surviving dedup: the
     first full partition (pfns 0-3) loses its first two ops to the
     drop hook and ships the other two as a batch that the loss hook
     eats; the flush_all remainder (pfns 4-5) ships and is eaten
     whole.  Two lost batches, four lost ops, two drops. *)
  let sent = ref 0 in
  let queue =
    Guest.Pv_queue.create ~partitions:1 ~capacity:4
      ~flush:(fun ops ->
        sent := !sent + Array.length ops;
        0.0)
      ()
  in
  let drops = ref 2 in
  Guest.Pv_queue.set_fault_hooks queue
    ~drop_op:(fun _ -> decr drops; !drops >= 0)
    ~lose_batch:(fun _ -> true)
    ();
  for pfn = 0 to 5 do
    Guest.Pv_queue.record queue (Guest.Pv_queue.Alloc pfn)
  done;
  Guest.Pv_queue.flush_all queue;
  let stats = Guest.Pv_queue.stats queue in
  Alcotest.(check int) "two dropped" 2 stats.Guest.Pv_queue.dropped;
  Alcotest.(check int) "batches lost" 2 stats.Guest.Pv_queue.lost_batches;
  Alcotest.(check int) "lost ops counted" 4 stats.Guest.Pv_queue.lost_ops;
  Alcotest.(check int) "nothing reached the hypervisor" 0 !sent

(* Most-recent-op-wins, as a property: replay visits every queued page
   exactly once and applies its latest op. *)
let prop_replay_most_recent_wins =
  QCheck.Test.make ~name:"pv_queue replay: most recent op wins" ~count:500
    QCheck.(list (pair bool (int_range 0 7)))
    (fun spec ->
      let ops =
        Array.of_list
          (List.map
             (fun (alloc, pfn) ->
               if alloc then Guest.Pv_queue.Alloc pfn else Guest.Pv_queue.Release pfn)
             spec)
      in
      let visited = Hashtbl.create 8 in
      Guest.Pv_queue.replay ops ~f:(fun pfn action ->
          if Hashtbl.mem visited pfn then
            QCheck.Test.fail_reportf "pfn %d visited twice" pfn;
          Hashtbl.replace visited pfn action);
      Array.iter
        (fun op ->
          let pfn = Guest.Pv_queue.op_pfn op in
          if not (Hashtbl.mem visited pfn) then
            QCheck.Test.fail_reportf "pfn %d never visited" pfn)
        ops;
      Hashtbl.iter
        (fun pfn action ->
          let last =
            List.fold_left
              (fun acc (alloc, p) -> if p = pfn then Some alloc else acc)
              None spec
          in
          match (last, action) with
          | Some true, `Leave | Some false, `Invalidate -> ()
          | Some _, _ -> QCheck.Test.fail_reportf "pfn %d got the wrong action" pfn
          | None, _ -> QCheck.Test.fail_reportf "pfn %d visited but never queued" pfn)
        visited;
      true)

(* ------------------------- breaker escalation ---------------------- *)

let harness_system () = Xen.System.create ~page_scale:16384 (Numa.Amd48.topology ())

let harness_domain ?(gib = 4) s =
  Xen.System.create_domain s ~name:"chaos" ~kind:Xen.Domain.DomU ~vcpus:6
    ~mem_bytes:(gib * 1024 * 1024 * 1024) ()

let test_breaker_escalates_to_static () =
  let s = harness_system () in
  let d = harness_domain s in
  let m =
    Policies.Manager.attach s d ~boot:Policies.Spec.first_touch_carrefour
      ~rng:(Sim.Rng.create ~seed:3)
  in
  let inj = Faults.Injector.create ~seed:3 (Faults.Plan.of_string_exn "migrate=1.0") in
  Faults.Injector.install inj s;
  (* Map a few pages so migrations are attempted for real. *)
  for pfn = 0 to 9 do
    ignore (Policies.Internal.map_page s d ~pfn ~node:0)
  done;
  let epoch = ref 0 in
  while (Policies.Manager.degrade m).Policies.Manager.breaker_level < 2 && !epoch < 200 do
    Faults.Injector.set_epoch inj !epoch;
    for pfn = 0 to 9 do
      ignore (Policies.Manager.migrate_resilient m ~pfn ~node:(1 + (pfn mod 7)))
    done;
    Policies.Manager.epoch_tick m ~epoch:!epoch ();
    incr epoch
  done;
  let dg = Policies.Manager.degrade m in
  Alcotest.(check int) "statically degraded" 2 dg.Policies.Manager.breaker_level;
  Alcotest.(check bool) "several trips" true (dg.Policies.Manager.breaker_trips >= 4);
  Alcotest.(check bool) "retries happened" true (dg.Policies.Manager.migrate_retries > 0);
  Alcotest.(check (option Alcotest.reject)) "carrefour shed" None (Policies.Manager.carrefour m);
  Alcotest.(check int) "retry queue cleared" 0 (Policies.Manager.pending_migrations m);
  Alcotest.(check bool) "policy renamed" true
    (String.length d.Xen.Domain.policy_name > 0
    && String.ends_with ~suffix:"+degraded:round-1g" d.Xen.Domain.policy_name)

let test_deferred_drains_when_pressure_lifts () =
  let s = harness_system () in
  let d = harness_domain s in
  let m =
    Policies.Manager.attach s d ~boot:Policies.Spec.first_touch
      ~rng:(Sim.Rng.create ~seed:4)
  in
  (* Migration failures for epochs [0, 3): pages are deferred, then the
     pressure lifts and the drain completes them. *)
  let inj = Faults.Injector.create ~seed:4 (Faults.Plan.of_string_exn "migrate=1.0@0-3") in
  Faults.Injector.install inj s;
  for pfn = 0 to 7 do
    ignore (Policies.Internal.map_page s d ~pfn ~node:0)
  done;
  Faults.Injector.set_epoch inj 0;
  for pfn = 0 to 7 do
    ignore (Policies.Manager.migrate_resilient m ~pfn ~node:1)
  done;
  let dg = Policies.Manager.degrade m in
  Alcotest.(check int) "all deferred" 8 dg.Policies.Manager.deferred;
  Alcotest.(check int) "queued" 8 (Policies.Manager.pending_migrations m);
  for epoch = 3 to 5 do
    Faults.Injector.set_epoch inj epoch;
    Policies.Manager.epoch_tick m ~epoch ()
  done;
  Alcotest.(check int) "all drained" 8 (Policies.Manager.degrade m).Policies.Manager.drained;
  Alcotest.(check int) "queue empty" 0 (Policies.Manager.pending_migrations m);
  List.iter
    (fun pfn ->
      Alcotest.(check (option int)) "page reached node 1" (Some 1)
        (Policies.Manager.node_of_pfn m pfn))
    [ 0; 3; 7 ]

let test_reconcile_heals_lost_batch () =
  let s = harness_system () in
  let d = harness_domain s in
  let m =
    Policies.Manager.attach s d ~boot:Policies.Spec.first_touch
      ~rng:(Sim.Rng.create ~seed:5)
  in
  for pfn = 0 to 3 do
    ignore (Policies.Internal.map_page s d ~pfn ~node:0)
  done;
  let free0 = Memory.Machine.free_frames s.Xen.System.machine in
  (* The guest freed pages 0-3 but the release batch was lost: the P2M
     still maps them.  The sweep heals exactly those entries. *)
  let healed = Policies.Manager.reconcile m ~guest_free:(fun pfn -> pfn <= 3) in
  Alcotest.(check int) "four healed" 4 healed;
  Alcotest.(check int) "frames returned" (free0 + 4) (Memory.Machine.free_frames s.Xen.System.machine);
  Alcotest.(check int) "p2m empty" 0 (Xen.P2m.mapped_count d.Xen.Domain.p2m);
  Alcotest.(check bool) "consistent" true (Xen.P2m.check_consistent d.Xen.Domain.p2m)

(* ---------------------- chaos accounting property ------------------ *)

(* One random fault schedule, driven end to end through the manager,
   the pv queue and the injector.  The invariant checked after every
   epoch is the frame-accounting reconciliation from the issue: frames
   either sit in the allocator's free pool or are reachable from the
   P2M — under any fault schedule, nothing leaks and nothing is freed
   twice. *)
let random_plan rng =
  let maybe p site = if Sim.Rng.bernoulli rng p then [ Faults.Plan.spec site ] else [] in
  let windowed p site =
    if Sim.Rng.bernoulli rng p then
      let from_epoch = Sim.Rng.int rng 20 in
      let until_epoch = from_epoch + 1 + Sim.Rng.int rng 30 in
      [ Faults.Plan.spec ~from_epoch ~until_epoch site ]
    else []
  in
  List.concat
    [
      maybe 0.6 (Faults.Plan.Alloc_flaky (Sim.Rng.float rng 0.4));
      windowed 0.3 (Faults.Plan.Node_offline (Sim.Rng.int rng 8));
      maybe 0.6 (Faults.Plan.Migrate_enomem (Sim.Rng.float rng 1.0));
      maybe 0.5 (Faults.Plan.Batch_loss (Sim.Rng.float rng 0.7));
      maybe 0.4 (Faults.Plan.Op_drop (Sim.Rng.float rng 0.2));
      maybe 0.4 (Faults.Plan.Hypercall_flaky (Sim.Rng.float rng 0.5));
      maybe 0.3 (Faults.Plan.Vcpu_stall (Sim.Rng.float rng 0.1));
    ]

let check_accounting ~msg s d =
  let machine = s.Xen.System.machine in
  let total = Memory.Machine.total_frames machine in
  let free = Memory.Machine.free_frames machine in
  let mapped = Xen.P2m.mapped_count d.Xen.Domain.p2m in
  if free + mapped <> total then
    QCheck.Test.fail_reportf "%s: %d free + %d mapped <> %d total (leak or double free)" msg
      free mapped total;
  if not (Xen.P2m.check_consistent d.Xen.Domain.p2m) then
    QCheck.Test.fail_reportf "%s: P2M mapped-count out of sync" msg

let run_chaos_schedule master_seed =
  let rng = Sim.Rng.create ~seed:master_seed in
  let plan = random_plan rng in
  let s = harness_system () in
  let d = harness_domain s in
  let m =
    Policies.Manager.attach s d ~boot:Policies.Spec.first_touch_carrefour
      ~rng:(Sim.Rng.split rng)
  in
  let inj = Faults.Injector.create ~seed:master_seed plan in
  Faults.Injector.install inj s;
  let frames = Xen.P2m.frames d.Xen.Domain.p2m in
  let pool = Guest.Pfn_pool.create ~frames () in
  let queue =
    Guest.Pv_queue.create ~capacity:16
      ~flush:(fun ops -> Policies.Manager.page_ops_hypercall m ops)
      ()
  in
  Faults.Injector.install_queue inj queue;
  let live = ref [] in
  for epoch = 0 to 39 do
    Faults.Injector.set_epoch inj epoch;
    for _ = 0 to 15 do
      match Sim.Rng.int rng 4 with
      | 0 | 1 -> (
          (* Guest page churn: allocate, touch (hypervisor fault on an
             invalid entry), queue the alloc op. *)
          match Guest.Pfn_pool.alloc pool with
          | Some pfn ->
              Guest.Pv_queue.record queue (Guest.Pv_queue.Alloc pfn);
              (match Xen.P2m.get d.Xen.Domain.p2m pfn with
              | Xen.P2m.Invalid ->
                  ignore
                    (Xen.Domain.handle_fault d ~costs:s.Xen.System.costs ~pfn
                       ~cpu:(Sim.Rng.int rng 48))
              | Xen.P2m.Mapped _ -> ());
              live := pfn :: !live
          | None -> ())
      | 2 -> (
          match !live with
          | pfn :: rest ->
              Guest.Pfn_pool.release pool pfn;
              Guest.Pv_queue.record queue (Guest.Pv_queue.Release pfn);
              live := rest
          | [] -> ())
      | _ -> (
          match !live with
          | pfn :: _ ->
              ignore (Policies.Manager.migrate_resilient m ~pfn ~node:(Sim.Rng.int rng 8))
          | [] -> ())
    done;
    Policies.Manager.epoch_tick m ~epoch
      ~guest_free:(fun pfn -> Guest.Pfn_pool.is_free pool pfn)
      ();
    check_accounting ~msg:(Printf.sprintf "epoch %d" epoch) s d
  done;
  Guest.Pv_queue.flush_all queue;
  ignore (Policies.Manager.reconcile m ~guest_free:(fun pfn -> Guest.Pfn_pool.is_free pool pfn));
  check_accounting ~msg:"after reconcile" s d;
  true

let prop_chaos_frame_accounting =
  QCheck.Test.make ~name:"chaos: no frame leaks or double frees under random faults"
    ~count:500 QCheck.small_nat (fun n -> run_chaos_schedule (n * 7919))

(* ------------------------------ engine ----------------------------- *)

(* A shrunk wrmem so whole-engine chaos runs stay fast: same churn
   behaviour (15 us release period), a fraction of the work. *)
let tiny_app () =
  match Workloads.Catalogue.find "wrmem" with
  | Some app ->
      { app with Workloads.App.name = "wrmem-tiny"; footprint_mb = 128; native_seconds = 3.0 }
  | None -> Alcotest.fail "wrmem missing from the catalogue"

let eager_carrefour =
  {
    Policies.Carrefour.User_component.default_config with
    Policies.Carrefour.User_component.mc_threshold = 0.30;
    ic_threshold = 0.05;
    dominant_fraction = 0.60;
    min_accesses = 2.0;
  }

let chaos_run ?(seed = 11) ?(max_epochs = 2_000) plan =
  let vm =
    Engine.Config.vm ~threads:8 ~policy:Policies.Spec.first_touch_carrefour (tiny_app ())
  in
  Engine.Runner.run
    (Engine.Config.make ~seed ~max_epochs ~carrefour_config:eager_carrefour
       ~faults:(Faults.Plan.of_string_exn plan) ~mode:Engine.Config.Xen_plus [ vm ])

let test_engine_completes_under_full_migration_failure () =
  let r = chaos_run "alloc=0.3,migrate=1.0" in
  Alcotest.(check bool) "completed before the epoch cap" true (r.Engine.Result.epochs < 2_000);
  Alcotest.(check bool) "faults were injected" true (r.Engine.Result.faults_injected > 0);
  let d = (Engine.Result.single r).Engine.Result.degradation in
  Alcotest.(check bool) "fallback placements happened" true (d.Engine.Result.fallback_maps > 0)

let test_engine_clean_run_reports_no_degradation () =
  let r = chaos_run "none" in
  Alcotest.(check int) "no faults" 0 r.Engine.Result.faults_injected;
  Alcotest.(check bool) "no degradation" true
    ((Engine.Result.single r).Engine.Result.degradation = Engine.Result.no_degradation)

let test_engine_jobs_bit_identical () =
  (* The chaos acceptance bar: a fixed-seed fault grid is bit-identical
     whatever the worker count. *)
  (* op-drop + batch-loss pins the flush-time drop draw: one draw per
     op surviving dedup, so the fault schedule — and hence the whole
     trace — is independent of how the queue was deduplicated. *)
  let plans =
    [| "none"; "alloc=0.3"; "alloc=0.3,migrate=1.0"; "batch-loss=0.5";
       "op-drop=0.4,batch-loss=0.3"; "ecc-ce=0.5,ecc-ue=0.05";
       "node_fail=1.0@50" |]
  in
  let tasks = Array.map (fun plan () -> chaos_run ~max_epochs:400 plan) plans in
  let seq = Engine.Pool.run_all ~jobs:1 tasks in
  let par = Engine.Pool.run_all ~jobs:4 tasks in
  Array.iteri
    (fun i plan ->
      Alcotest.(check bool) (plan ^ " identical across job counts") true (seq.(i) = par.(i)))
    plans

let test_engine_ras_forces_unsharded () =
  (* Fault runs force the per-epoch vCPU kernel down to one shard so
     the injector stream stays a pure function of the plan and epoch;
     the new RAS classes ride the same rule.  --inner-jobs must
     therefore be a no-op under a node_fail + ECC plan. *)
  let run inner_jobs =
    let vm =
      Engine.Config.vm ~threads:8 ~policy:Policies.Spec.first_touch_carrefour (tiny_app ())
    in
    Engine.Runner.run
      (Engine.Config.make ~seed:11 ~max_epochs:400 ~carrefour_config:eager_carrefour
         ~inner_jobs
         ~faults:(Faults.Plan.of_string_exn "ecc-ce=0.2,node_fail=1.0@50")
         ~mode:Engine.Config.Xen_plus [ vm ])
  in
  let r1 = run 1 in
  Alcotest.(check bool) "inner-jobs is a no-op under RAS faults" true (r1 = run 4);
  let d = (Engine.Result.single r1).Engine.Result.degradation in
  Alcotest.(check bool) "the node failure actually evacuated frames" true
    (d.Engine.Result.evacuated > 0)

(* ------------------------------- suite ----------------------------- *)

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "plan round-trip" `Quick test_plan_parse_roundtrip;
        Alcotest.test_case "plan empty forms" `Quick test_plan_parse_empty;
        Alcotest.test_case "plan parse errors" `Quick test_plan_parse_errors;
        Alcotest.test_case "plan unknown site lists valid" `Quick
          test_plan_unknown_site_lists_valid;
        Alcotest.test_case "plan ras rate range" `Quick test_plan_ras_rate_range;
        Alcotest.test_case "plan window validation" `Quick test_plan_validate_window;
        Alcotest.test_case "injector deterministic" `Quick test_injector_deterministic;
        Alcotest.test_case "injector quiet at boot" `Quick test_injector_boot_quiet;
        Alcotest.test_case "injector window" `Quick test_injector_window;
        Alcotest.test_case "injector node offline" `Quick test_injector_node_offline;
        Alcotest.test_case "injector empty plan" `Quick test_injector_empty_disabled;
        Alcotest.test_case "injector ecc deterministic" `Quick test_injector_ecc_deterministic;
        Alcotest.test_case "injector node-fail lifecycle" `Quick
          test_injector_node_fail_lifecycle;
        Alcotest.test_case "injector node-fail recovers" `Quick
          test_injector_node_fail_transient_recovers;
        Alcotest.test_case "p2m rejects negative mfn" `Quick test_p2m_rejects_negative_mfn;
        Alcotest.test_case "p2m check_consistent" `Quick test_p2m_check_consistent;
        Alcotest.test_case "queue re-entrant flush" `Quick test_queue_reentrant_flush;
        Alcotest.test_case "queue fault hooks" `Quick test_queue_drop_and_loss_hooks;
        QCheck_alcotest.to_alcotest prop_replay_most_recent_wins;
        Alcotest.test_case "breaker escalates to static" `Quick test_breaker_escalates_to_static;
        Alcotest.test_case "deferred migrations drain" `Quick
          test_deferred_drains_when_pressure_lifts;
        Alcotest.test_case "reconcile heals lost batch" `Quick test_reconcile_heals_lost_batch;
        QCheck_alcotest.to_alcotest prop_chaos_frame_accounting;
        Alcotest.test_case "engine survives migrate=1.0" `Quick
          test_engine_completes_under_full_migration_failure;
        Alcotest.test_case "engine clean run" `Quick test_engine_clean_run_reports_no_degradation;
        Alcotest.test_case "engine jobs bit-identical" `Quick test_engine_jobs_bit_identical;
        Alcotest.test_case "engine ras forces unsharded" `Quick test_engine_ras_forces_unsharded;
      ] );
  ]
