(* Tests for the sim library: rng, stats, eventq, units. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close msg expected actual tolerance =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

(* ------------------------------- rng ------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_seed_differs () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  Alcotest.(check bool) "different" true (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let test_rng_split_independent () =
  let root = Sim.Rng.create ~seed:5 in
  let a = Sim.Rng.split root in
  let b = Sim.Rng.split root in
  Alcotest.(check bool) "split streams differ" true (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let test_rng_copy () =
  let a = Sim.Rng.create ~seed:9 in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Sim.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v
  done

let test_rng_float_bounds () =
  let rng = Sim.Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of bounds: %g" v
  done

let test_rng_bernoulli_mean () =
  let rng = Sim.Rng.create ~seed:6 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close "bernoulli mean" 0.3 (float_of_int !hits /. float_of_int n) 0.01

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create ~seed:7 in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential rng ~mean:4.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    acc := !acc +. v
  done;
  check_close "exponential mean" 4.0 (!acc /. float_of_int n) 0.1

let test_rng_gaussian_moments () =
  let rng = Sim.Rng.create ~seed:8 in
  let n = 100_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Sim.Rng.gaussian rng ~mu:10.0 ~sigma:2.0 in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  check_close "gaussian mean" 10.0 mean 0.05;
  check_close "gaussian sigma" 2.0 (sqrt var) 0.05

let test_rng_zipf_bounds_and_skew () =
  let rng = Sim.Rng.create ~seed:9 in
  let n = 1000 in
  let counts = Array.make n 0 in
  let draws = 200_000 in
  for _ = 1 to draws do
    let v = Sim.Rng.zipf rng ~n ~s:1.0 in
    if v < 0 || v >= n then Alcotest.failf "zipf out of bounds: %d" v;
    counts.(v) <- counts.(v) + 1
  done;
  (* Under s = 1 the frequency of rank 0 over rank 9 should be ~10. *)
  let ratio = float_of_int counts.(0) /. float_of_int counts.(9) in
  check_close "zipf skew head/rank9" 10.0 ratio 2.0;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(1))

let test_rng_zipf_single () =
  let rng = Sim.Rng.create ~seed:10 in
  Alcotest.(check int) "n=1 always 0" 0 (Sim.Rng.zipf rng ~n:1 ~s:0.9)

let test_rng_shuffle_permutation () =
  let rng = Sim.Rng.create ~seed:11 in
  let a = Array.init 50 (fun i -> i) in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* qcheck: Rng.int is always within bounds for arbitrary bounds/seeds *)
let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int int)
    (fun (bound, seed) ->
      QCheck.assume (bound > 0);
      let rng = Sim.Rng.create ~seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_zipf_in_bounds =
  QCheck.Test.make ~name:"rng zipf within bounds" ~count:500
    QCheck.(triple small_int int (float_range 0.1 2.0))
    (fun (n, seed, s) ->
      QCheck.assume (n > 0);
      let rng = Sim.Rng.create ~seed in
      let v = Sim.Rng.zipf rng ~n ~s in
      v >= 0 && v < n)

(* ------------------------------ stats ----------------------------- *)

let test_stats_mean_stddev () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Sim.Stats.mean a);
  check_float "stddev" 2.0 (Sim.Stats.stddev a)

let test_stats_relative_stddev () =
  check_float "uniform => 0" 0.0 (Sim.Stats.relative_stddev [| 3.0; 3.0; 3.0 |]);
  check_float "zero mean => 0" 0.0 (Sim.Stats.relative_stddev [| 0.0; 0.0 |]);
  (* One node with everything out of 8: the paper's worst imbalance. *)
  let concentrated = Array.make 8 0.0 in
  concentrated.(0) <- 8.0;
  check_close "concentrated" (sqrt 7.0) (Sim.Stats.relative_stddev concentrated) 1e-9

let test_stats_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Sim.Stats.percentile a 0.0);
  check_float "p50" 3.0 (Sim.Stats.percentile a 50.0);
  check_float "p100" 5.0 (Sim.Stats.percentile a 100.0);
  check_float "p25" 2.0 (Sim.Stats.percentile a 25.0)

let test_stats_geometric_mean () =
  check_float "geomean" 4.0 (Sim.Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_summary () =
  let s = Sim.Stats.summary_of_array [| 1.0; 3.0 |] in
  check_float "mean" 2.0 s.Sim.Stats.mean;
  check_float "min" 1.0 s.Sim.Stats.min;
  check_float "max" 3.0 s.Sim.Stats.max;
  Alcotest.(check int) "count" 2 s.Sim.Stats.count

let test_stats_online_matches_batch () =
  let rng = Sim.Rng.create ~seed:12 in
  let a = Array.init 1000 (fun _ -> Sim.Rng.float rng 100.0) in
  let online = Sim.Stats.Online.create () in
  Array.iter (Sim.Stats.Online.add online) a;
  check_close "online mean" (Sim.Stats.mean a) (Sim.Stats.Online.mean online) 1e-6;
  check_close "online stddev" (Sim.Stats.stddev a) (Sim.Stats.Online.stddev online) 1e-6;
  Alcotest.(check int) "count" 1000 (Sim.Stats.Online.count online)

let prop_stats_relative_stddev_scale_invariant =
  QCheck.Test.make ~name:"relative stddev is scale invariant" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 2 20) (float_range 0.1 100.0)) (float_range 0.5 10.0))
    (fun (xs, k) ->
      let a = Array.of_list xs in
      let scaled = Array.map (fun x -> x *. k) a in
      Float.abs (Sim.Stats.relative_stddev a -. Sim.Stats.relative_stddev scaled) < 1e-9)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range 0.0 100.0))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let a = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Sim.Stats.percentile a lo <= Sim.Stats.percentile a hi +. 1e-9)

(* ------------------------------ eventq ---------------------------- *)

let test_eventq_order () =
  let q = Sim.Eventq.create () in
  Sim.Eventq.schedule q ~at:3.0 "c";
  Sim.Eventq.schedule q ~at:1.0 "a";
  Sim.Eventq.schedule q ~at:2.0 "b";
  let pop () = match Sim.Eventq.next q with Some (_, x) -> x | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ]

let test_eventq_fifo_ties () =
  let q = Sim.Eventq.create () in
  Sim.Eventq.schedule q ~at:1.0 "first";
  Sim.Eventq.schedule q ~at:1.0 "second";
  Sim.Eventq.schedule q ~at:1.0 "third";
  let pop () = match Sim.Eventq.next q with Some (_, x) -> x | None -> "!" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] [ first; second; third ]

let test_eventq_clock_advances () =
  let q = Sim.Eventq.create () in
  Sim.Eventq.schedule_after q ~delay:5.0 ();
  check_float "clock starts at 0" 0.0 (Sim.Eventq.now q);
  ignore (Sim.Eventq.next q);
  check_float "clock advanced" 5.0 (Sim.Eventq.now q)

let test_eventq_run_until () =
  let q = Sim.Eventq.create () in
  for i = 1 to 10 do
    Sim.Eventq.schedule q ~at:(float_of_int i) i
  done;
  let seen = ref [] in
  Sim.Eventq.run q ~handler:(fun _ i -> seen := i :: !seen) ~until:5.5;
  Alcotest.(check (list int)) "only first five" [ 5; 4; 3; 2; 1 ] !seen;
  Alcotest.(check int) "rest remain" 5 (Sim.Eventq.size q)

let test_eventq_handler_reschedule () =
  let q = Sim.Eventq.create () in
  Sim.Eventq.schedule q ~at:1.0 0;
  let count = ref 0 in
  Sim.Eventq.run q
    ~handler:(fun _ gen ->
      incr count;
      if gen < 4 then Sim.Eventq.schedule_after q ~delay:1.0 (gen + 1))
    ~until:100.0;
  Alcotest.(check int) "cascade of 5" 5 !count;
  Alcotest.(check bool) "empty" true (Sim.Eventq.is_empty q)

let prop_eventq_drains_sorted =
  QCheck.Test.make ~name:"eventq drains in timestamp order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0.0 1000.0))
    (fun times ->
      let q = Sim.Eventq.create () in
      List.iter (fun t -> Sim.Eventq.schedule q ~at:t t) times;
      let rec drain acc =
        match Sim.Eventq.next q with Some (_, t) -> drain (t :: acc) | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare times)

(* ------------------------------ units ----------------------------- *)

let test_units () =
  Alcotest.(check int) "kib" 2048 (Sim.Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Sim.Units.mib 1);
  Alcotest.(check int) "gib" (1024 * 1024 * 1024) (Sim.Units.gib 1);
  check_float "us" 1e-6 (Sim.Units.us 1.0);
  check_float "ns" 1e-9 (Sim.Units.ns 1.0);
  check_float "ms" 1e-3 (Sim.Units.ms 1.0);
  check_float "cycles to seconds" 1.0 (Sim.Units.seconds_of_cycles ~cycles:2.2e9 ~freq_hz:2.2e9);
  check_float "seconds to cycles" 2.2e9 (Sim.Units.cycles_of_seconds ~seconds:1.0 ~freq_hz:2.2e9)

let test_units_pp () =
  Alcotest.(check string) "bytes" "16.0 GiB" (Format.asprintf "%a" Sim.Units.pp_bytes (Sim.Units.gib 16));
  Alcotest.(check string) "us" "307.0 us" (Format.asprintf "%a" Sim.Units.pp_seconds 307e-6)

(* ------------------------------ topk ------------------------------- *)

let test_topk_selects_best () =
  let h = Sim.Stats.Topk.create 3 in
  List.iter (fun (k, id) -> Sim.Stats.Topk.add h ~key:k id)
    [ (5.0, 10); (1.0, 11); (9.0, 12); (3.0, 13); (7.0, 14) ];
  Alcotest.(check int) "size capped" 3 (Sim.Stats.Topk.size h);
  Alcotest.(check bool) "heap shape" true (Sim.Stats.Topk.heap_invariant h);
  Alcotest.(check (array (pair (float 0.0) int))) "best three, descending"
    [| (9.0, 12); (7.0, 14); (5.0, 10) |]
    (Sim.Stats.Topk.sorted_desc h);
  Alcotest.(check (float 0.0)) "root is the worst kept" 5.0 (Sim.Stats.Topk.min_key h)

let test_topk_ties_toward_smaller_id () =
  let h = Sim.Stats.Topk.create 2 in
  List.iter (fun id -> Sim.Stats.Topk.add h ~key:4.0 id) [ 30; 10; 20 ];
  Alcotest.(check (array (pair (float 0.0) int))) "smaller ids win equal keys"
    [| (4.0, 10); (4.0, 20) |]
    (Sim.Stats.Topk.sorted_desc h)

let test_topk_empty_and_clear () =
  let h = Sim.Stats.Topk.create 4 in
  Alcotest.(check int) "empty" 0 (Sim.Stats.Topk.size h);
  Alcotest.(check bool) "empty min_key" true (Sim.Stats.Topk.min_key h = neg_infinity);
  Alcotest.(check int) "no results" 0 (Array.length (Sim.Stats.Topk.sorted_desc h));
  Sim.Stats.Topk.add h ~key:1.0 0;
  Sim.Stats.Topk.clear h;
  Alcotest.(check int) "cleared" 0 (Sim.Stats.Topk.size h);
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Topk.create: k must be positive")
    (fun () -> ignore (Sim.Stats.Topk.create 0))

let test_topk_decay () =
  let h = Sim.Stats.Topk.create 2 in
  Sim.Stats.Topk.add h ~key:8.0 1;
  Sim.Stats.Topk.add h ~key:2.0 2;
  Sim.Stats.Topk.decay h 0.5;
  Alcotest.(check (array (pair (float 0.0) int))) "keys halved, order kept"
    [| (4.0, 1); (1.0, 2) |]
    (Sim.Stats.Topk.sorted_desc h);
  Alcotest.check_raises "non-positive factor rejected"
    (Invalid_argument "Topk.decay: factor must be positive") (fun () ->
      Sim.Stats.Topk.decay h 0.0)

(* Reference model for the differential property: the same "bigger
   key first, ties toward smaller id" order over a plain list. *)
let topk_model_ranks_below (ka, ia) (kb, ib) = ka < kb || (ka = kb && ia > ib)

let topk_model_add k model x =
  if List.length model < k then x :: model
  else begin
    let worst =
      List.fold_left
        (fun acc y -> if topk_model_ranks_below y acc then y else acc)
        (List.hd model) (List.tl model)
    in
    if topk_model_ranks_below worst x then
      x :: (let dropped = ref false in
            List.filter
              (fun y -> if (not !dropped) && y = worst then (dropped := true; false) else true)
              model)
    else model
  end

let prop_topk_matches_model =
  QCheck.Test.make ~name:"topk: differential vs list model under insert/decay" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair bool (pair (int_range 0 40) (int_range 0 15)))))
    (fun (k, trace) ->
      let h = Sim.Stats.Topk.create k in
      let model = ref [] in
      List.iter
        (fun (is_add, (key_i, id)) ->
          if is_add then begin
            let key = float_of_int key_i /. 4.0 in
            Sim.Stats.Topk.add h ~key id;
            model := topk_model_add k !model (key, id)
          end
          else begin
            (* Deterministic factor derived from the trace element. *)
            let factor = 0.25 +. (float_of_int id /. 16.0) in
            Sim.Stats.Topk.decay h factor;
            model := List.map (fun (ky, i) -> (ky *. factor, i)) !model
          end;
          if not (Sim.Stats.Topk.heap_invariant h) then
            QCheck.Test.fail_report "heap invariant broken mid-trace")
        trace;
      let expected =
        List.sort
          (fun (ka, ia) (kb, ib) ->
            let c = compare kb ka in
            if c <> 0 then c else compare ia ib)
          !model
        |> Array.of_list
      in
      Sim.Stats.Topk.sorted_desc h = expected)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed differs" `Quick test_rng_seed_differs;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "zipf bounds and skew" `Quick test_rng_zipf_bounds_and_skew;
        Alcotest.test_case "zipf n=1" `Quick test_rng_zipf_single;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        qcheck prop_rng_int_in_bounds;
        qcheck prop_rng_zipf_in_bounds;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "relative stddev" `Quick test_stats_relative_stddev;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "online matches batch" `Quick test_stats_online_matches_batch;
        qcheck prop_stats_relative_stddev_scale_invariant;
        qcheck prop_stats_percentile_monotone;
      ] );
    ( "stats.topk",
      [
        Alcotest.test_case "selects the best k" `Quick test_topk_selects_best;
        Alcotest.test_case "ties toward smaller id" `Quick test_topk_ties_toward_smaller_id;
        Alcotest.test_case "empty and clear" `Quick test_topk_empty_and_clear;
        Alcotest.test_case "decay preserves order" `Quick test_topk_decay;
        qcheck prop_topk_matches_model;
      ] );
    ( "sim.eventq",
      [
        Alcotest.test_case "order" `Quick test_eventq_order;
        Alcotest.test_case "fifo ties" `Quick test_eventq_fifo_ties;
        Alcotest.test_case "clock advances" `Quick test_eventq_clock_advances;
        Alcotest.test_case "run until" `Quick test_eventq_run_until;
        Alcotest.test_case "handler reschedules" `Quick test_eventq_handler_reschedule;
        qcheck prop_eventq_drains_sorted;
      ] );
    ( "sim.units",
      [
        Alcotest.test_case "conversions" `Quick test_units;
        Alcotest.test_case "pretty printing" `Quick test_units_pp;
      ] );
  ]
