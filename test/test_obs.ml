(* Tests for the obs library: trace rings, streams, the deterministic
   merge and codecs, the metrics registry, the Stats.Histogram, and
   the summary-equals-registry contract. *)

let qcheck = QCheck_alcotest.to_alcotest

(* Global-state hygiene: every test that installs a session or enables
   metrics runs inside this bracket so failures cannot leak state into
   later suites. *)
let with_clean_obs f =
  let finish () =
    Obs.Trace.uninstall ();
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ()
  in
  Fun.protect ~finally:finish f

(* ------------------------------- ring ------------------------------ *)

let test_ring_basic () =
  let r = Obs.Ring.create ~capacity:4 ~dummy:0 in
  List.iter (Obs.Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "under capacity" [ 1; 2; 3 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "no drops" 0 (Obs.Ring.dropped r);
  List.iter (Obs.Ring.push r) [ 4; 5; 6 ];
  Alcotest.(check (list int)) "keeps most recent" [ 3; 4; 5; 6 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "emitted" 6 (Obs.Ring.emitted r);
  Alcotest.(check int) "dropped" 2 (Obs.Ring.dropped r);
  Alcotest.(check int) "length" 4 (Obs.Ring.length r);
  Obs.Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Obs.Ring.to_list r);
  Alcotest.(check int) "clear resets emitted" 0 (Obs.Ring.emitted r)

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Obs.Ring.create ~capacity:0 ~dummy:0))

(* The tentpole invariant, property-checked: for any push sequence and
   capacity, kept + dropped = emitted and the kept values are exactly
   the most recent pushes in push order. *)
let prop_ring_accounting =
  QCheck.Test.make ~name:"ring: kept+dropped=emitted, keeps newest in order" ~count:500
    QCheck.(pair (int_range 1 20) (list small_int))
    (fun (capacity, xs) ->
      let r = Obs.Ring.create ~capacity ~dummy:(-1) in
      List.iter (Obs.Ring.push r) xs;
      let kept = Obs.Ring.to_list r in
      let n = List.length xs in
      let expect =
        (* the last [min capacity n] elements of xs, in order *)
        List.filteri (fun i _ -> i >= n - capacity) xs
      in
      List.length kept + Obs.Ring.dropped r = Obs.Ring.emitted r
      && Obs.Ring.emitted r = n && kept = expect)

(* ------------------------------ stream ----------------------------- *)

let test_stream_emit () =
  let s = Obs.Stream.create ~capacity:8 ~label:"t" () in
  Obs.Stream.set_time s 1.5;
  Obs.Stream.emit ~domain:3 ~pfn:42 ~node:1 s Obs.Event.Page_fault;
  Obs.Stream.emit ~arg:7 s Obs.Event.Epoch_boundary;
  match Obs.Stream.events s with
  | [ (0, e0); (1, e1) ] ->
      Alcotest.(check (float 0.0)) "time stamped" 1.5 e0.Obs.Event.time;
      Alcotest.(check int) "domain" 3 e0.Obs.Event.domain;
      Alcotest.(check int) "pfn" 42 e0.Obs.Event.pfn;
      Alcotest.(check int) "vcpu defaulted" (-1) e0.Obs.Event.vcpu;
      Alcotest.(check int) "arg" 7 e1.Obs.Event.arg;
      Alcotest.(check bool) "classes" true
        (e0.Obs.Event.cls = Obs.Event.Page_fault && e1.Obs.Event.cls = Obs.Event.Epoch_boundary)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_stream_seq_survives_drops () =
  let s = Obs.Stream.create ~capacity:2 ~label:"t" () in
  for i = 0 to 9 do
    Obs.Stream.emit ~arg:i s Obs.Event.Pv_record
  done;
  (match Obs.Stream.events s with
  | [ (8, a); (9, b) ] ->
      Alcotest.(check int) "payload follows seq" 8 a.Obs.Event.arg;
      Alcotest.(check int) "payload follows seq" 9 b.Obs.Event.arg
  | evs -> Alcotest.failf "expected seqs 8,9, got %d events" (List.length evs));
  Alcotest.(check int) "emitted" 10 (Obs.Stream.emitted s);
  Alcotest.(check int) "dropped" 8 (Obs.Stream.dropped s);
  let by_class = Obs.Stream.emitted_by_class s in
  Alcotest.(check int) "by-class is drop-proof" 10
    by_class.(Obs.Event.class_index Obs.Event.Pv_record)

(* ------------------------------ event ------------------------------ *)

let test_event_class_roundtrip () =
  List.iter
    (fun cls ->
      Alcotest.(check bool) "index roundtrip" true
        (Obs.Event.class_of_index (Obs.Event.class_index cls) = Some cls);
      Alcotest.(check bool) "name roundtrip" true
        (Obs.Event.class_of_name (Obs.Event.class_name cls) = Some cls))
    Obs.Event.classes;
  Alcotest.(check int) "class_count" (List.length Obs.Event.classes) Obs.Event.class_count;
  Alcotest.(check bool) "bad index" true (Obs.Event.class_of_index 999 = None);
  Alcotest.(check bool) "bad name" true (Obs.Event.class_of_name "nope" = None)

let test_merge_order () =
  let m ~time ~stream ~seq =
    { Obs.Event.stream; seq; event = Obs.Event.make ~time Obs.Event.Page_fault }
  in
  Alcotest.(check bool) "time first" true
    (Obs.Event.compare_merged (m ~time:1.0 ~stream:9 ~seq:9) (m ~time:2.0 ~stream:0 ~seq:0) < 0);
  Alcotest.(check bool) "stream breaks time ties" true
    (Obs.Event.compare_merged (m ~time:1.0 ~stream:0 ~seq:9) (m ~time:1.0 ~stream:1 ~seq:0) < 0);
  Alcotest.(check bool) "seq breaks stream ties" true
    (Obs.Event.compare_merged (m ~time:1.0 ~stream:0 ~seq:0) (m ~time:1.0 ~stream:0 ~seq:1) < 0)

(* ---------------------------- histogram ---------------------------- *)

let test_histogram_percentiles () =
  let h = Sim.Stats.Histogram.create () in
  for i = 1 to 1000 do
    Sim.Stats.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Sim.Stats.Histogram.count h);
  let p50 = Sim.Stats.Histogram.percentile h 50.0 in
  let p99 = Sim.Stats.Histogram.percentile h 99.0 in
  (* Log buckets at base 2^(1/8): ~9% relative resolution. *)
  Alcotest.(check bool) "p50 near 500" true (p50 > 400.0 && p50 < 600.0);
  Alcotest.(check bool) "p99 near 990" true (p99 > 900.0 && p99 <= 1000.0);
  Alcotest.(check (float 0.0)) "max exact" 1000.0 (Sim.Stats.Histogram.max h);
  Alcotest.(check (float 0.0)) "min exact" 1.0 (Sim.Stats.Histogram.min h);
  Alcotest.(check bool) "percentiles clamped to observed range" true
    (Sim.Stats.Histogram.percentile h 0.0 >= 1.0
    && Sim.Stats.Histogram.percentile h 100.0 <= 1000.0)

let test_histogram_empty_and_zeros () =
  let h = Sim.Stats.Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Sim.Stats.Histogram.percentile h 50.0);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Sim.Stats.Histogram.mean h);
  Sim.Stats.Histogram.add h 0.0;
  Sim.Stats.Histogram.add h 0.0;
  Alcotest.(check int) "zeros counted" 2 (Sim.Stats.Histogram.count h);
  Alcotest.(check (float 0.0)) "all-zero p99 is 0" 0.0 (Sim.Stats.Histogram.percentile h 99.0)

let test_histogram_merge () =
  let a = Sim.Stats.Histogram.create () and b = Sim.Stats.Histogram.create () in
  Sim.Stats.Histogram.add a 1.0;
  Sim.Stats.Histogram.add b 100.0;
  Sim.Stats.Histogram.merge a b;
  Alcotest.(check int) "merged count" 2 (Sim.Stats.Histogram.count a);
  Alcotest.(check (float 0.0)) "merged max" 100.0 (Sim.Stats.Histogram.max a)

(* ----------------------------- metrics ----------------------------- *)

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.incr_in r "b.counter";
  Obs.Metrics.incr_in r ~by:4 "b.counter";
  Obs.Metrics.gauge_in r "a.gauge" 2.5;
  Obs.Metrics.observe_in r "c.lat" 0.5;
  Obs.Metrics.observe_in r "c.lat" 1.5;
  (match Obs.Metrics.snapshot_of r with
  | [ (na, Obs.Metrics.Gauge_value g); (nb, Obs.Metrics.Counter_value c);
      (nc, Obs.Metrics.Histogram_value h) ] ->
      Alcotest.(check string) "sorted 1" "a.gauge" na;
      Alcotest.(check string) "sorted 2" "b.counter" nb;
      Alcotest.(check string) "sorted 3" "c.lat" nc;
      Alcotest.(check (float 0.0)) "gauge" 2.5 g;
      Alcotest.(check int) "counter" 5 c;
      Alcotest.(check int) "histogram count" 2 h.Obs.Metrics.count;
      Alcotest.(check (float 1e-9)) "histogram mean" 1.0 h.Obs.Metrics.mean
  | s -> Alcotest.failf "unexpected snapshot shape (%d entries)" (List.length s));
  Alcotest.(check (option int)) "counter_value" (Some 5)
    (Obs.Metrics.counter_value ~registry:r "b.counter");
  Alcotest.(check (option int)) "absent counter" None
    (Obs.Metrics.counter_value ~registry:r "missing")

let test_metrics_disabled_noop () =
  with_clean_obs (fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.incr "nope";
      Obs.Metrics.gauge "nope.g" 1.0;
      Obs.Metrics.observe "nope.h" 1.0;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Metrics.snapshot ()));
      Obs.Metrics.set_enabled true;
      Obs.Metrics.incr "yes";
      Alcotest.(check (option int)) "recorded once enabled" (Some 1)
        (Obs.Metrics.counter_value "yes"))

(* ------------------------------- json ------------------------------ *)

let test_json_parse () =
  let j = Obs.Json.of_string {|{"a": 1, "b": [true, null, "x\n"], "c": -2.5e1}|} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Obs.Json.member "a" j) Obs.Json.to_int);
  Alcotest.(check (option (float 0.0))) "float member" (Some (-25.0))
    (Option.bind (Obs.Json.member "c" j) Obs.Json.to_float);
  (match Obs.Json.member "b" j with
  | Some (Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null; Obs.Json.String s ]) ->
      Alcotest.(check string) "escape decoded" "x\n" s
  | _ -> Alcotest.fail "list member shape");
  Alcotest.(check bool) "trailing garbage rejected" true
    (Obs.Json.of_string_opt "{} junk" = None);
  Alcotest.(check bool) "bare word rejected" true (Obs.Json.of_string_opt "nope" = None);
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\n" (Obs.Json.escape "a\"b\\c\n")

(* ------------------------- trace and codecs ------------------------ *)

let mk_session () =
  let session = Obs.Trace.create ~capacity:8 () in
  let a = Obs.Trace.stream session ~label:"b-second" in
  let b = Obs.Trace.stream session ~label:"a-first" in
  Obs.Stream.set_time a 0.0;
  Obs.Stream.set_time b 0.0;
  Obs.Stream.emit ~domain:0 ~pfn:1 ~node:2 a Obs.Event.Page_fault;
  Obs.Stream.emit ~domain:1 ~arg:48 b Obs.Event.Hypercall_entry;
  Obs.Stream.set_time a 1.0;
  Obs.Stream.set_time b 1.0;
  Obs.Stream.emit ~arg:1 a Obs.Event.Epoch_boundary;
  Obs.Stream.emit ~domain:1 ~arg:900 b Obs.Event.Hypercall_exit;
  session

let check_export_equal msg (a : Obs.Codec.export) (b : Obs.Codec.export) =
  Alcotest.(check int) (msg ^ ": stream count") (Array.length a.Obs.Codec.streams)
    (Array.length b.Obs.Codec.streams);
  Array.iteri
    (fun i (sa : Obs.Codec.stream_info) ->
      let sb = b.Obs.Codec.streams.(i) in
      Alcotest.(check string) (msg ^ ": label") sa.Obs.Codec.label sb.Obs.Codec.label;
      Alcotest.(check int) (msg ^ ": emitted") sa.Obs.Codec.emitted sb.Obs.Codec.emitted;
      Alcotest.(check int) (msg ^ ": dropped") sa.Obs.Codec.dropped sb.Obs.Codec.dropped;
      Alcotest.(check (array int)) (msg ^ ": by_class") sa.Obs.Codec.by_class sb.Obs.Codec.by_class)
    a.Obs.Codec.streams;
  Alcotest.(check bool) (msg ^ ": events equal") true (a.Obs.Codec.events = b.Obs.Codec.events)

let test_trace_merge () =
  let session = mk_session () in
  let e = Obs.Trace.export session in
  (* Streams sorted by label, not registration order. *)
  Alcotest.(check string) "stream 0" "a-first" e.Obs.Codec.streams.(0).Obs.Codec.label;
  Alcotest.(check string) "stream 1" "b-second" e.Obs.Codec.streams.(1).Obs.Codec.label;
  let order =
    List.map
      (fun (m : Obs.Event.merged) -> (m.Obs.Event.event.Obs.Event.time, m.Obs.Event.stream))
      e.Obs.Codec.events
  in
  Alcotest.(check bool) "merged by (time, stream, seq)" true
    (order = [ (0.0, 0); (0.0, 1); (1.0, 0); (1.0, 1) ])

let test_trace_duplicate_label_detached () =
  let session = Obs.Trace.create () in
  let s1 = Obs.Trace.stream session ~label:"same" in
  let s2 = Obs.Trace.stream session ~label:"same" in
  Obs.Stream.emit s1 Obs.Event.Page_fault;
  Obs.Stream.emit s2 Obs.Event.Page_fault;
  Alcotest.(check int) "one registered stream" 1 (Obs.Trace.stream_count session);
  let e = Obs.Trace.export session in
  Alcotest.(check int) "only the first is exported" 1 (List.length e.Obs.Codec.events)

let test_codec_roundtrips () =
  let session = mk_session () in
  let e = Obs.Trace.export session in
  let jsonl = Obs.Trace.render_jsonl session in
  check_export_equal "jsonl" e (Obs.Codec.read_jsonl jsonl);
  let binary = Obs.Trace.render_binary session in
  Alcotest.(check bool) "binary magic detected" true (Obs.Codec.is_binary binary);
  check_export_equal "binary" e (Obs.Codec.read_binary binary);
  (* Auto-detection picks the right reader for both. *)
  check_export_equal "auto jsonl" e (Obs.Codec.read jsonl);
  check_export_equal "auto binary" e (Obs.Codec.read binary)

let test_codec_rejects_corrupt () =
  Alcotest.(check bool) "truncated binary raises" true
    (match Obs.Codec.read_binary "XNUMATR1\000\000" with
    | exception Obs.Codec.Corrupt _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad jsonl raises" true
    (match Obs.Codec.read_jsonl "{\"bogus\": 1}\n" with
    | exception Obs.Codec.Corrupt _ -> true
    | _ -> false)

(* ---------------------- engine-level determinism ------------------- *)

let small_cfg ~seed =
  let app =
    match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~threads:4 ~policy:Policies.Spec.first_touch app in
  Engine.Config.make ~seed ~max_epochs:40 ~mode:Engine.Config.Xen_plus [ vm ]

(* The acceptance criterion, in-process: the same fixed-seed mini-grid
   traced at --jobs 1 and --jobs 4 renders byte-identical JSONL. *)
let test_trace_jobs_byte_identical () =
  with_clean_obs (fun () ->
      let grid jobs =
        let session = Obs.Trace.create ~capacity:512 () in
        Obs.Trace.install session;
        let tasks =
          Array.init 4 (fun i () -> ignore (Engine.Runner.run (small_cfg ~seed:(100 + i))))
        in
        ignore (Engine.Pool.run_all ~jobs tasks);
        Obs.Trace.uninstall ();
        Obs.Trace.render_jsonl session
      in
      let t1 = grid 1 in
      let t4 = grid 4 in
      Alcotest.(check bool) "traces non-trivial" true (String.length t1 > 1000);
      Alcotest.(check string) "jobs 1 = jobs 4, byte for byte" t1 t4)

let test_runner_untraced_emits_nothing () =
  with_clean_obs (fun () ->
      let session = Obs.Trace.create () in
      (* NOT installed: the runner must not register streams. *)
      ignore (Engine.Runner.run (small_cfg ~seed:7));
      Alcotest.(check int) "no streams" 0 (Obs.Trace.stream_count session);
      Alcotest.(check bool) "no session installed" false (Obs.Trace.installed ());
      Alcotest.(check bool) "obs disabled" false (Obs.enabled ()))

(* The summariser over the exported file reports exactly the per-class
   counts commit_metrics mirrors into the registry. *)
let test_summary_matches_registry () =
  with_clean_obs (fun () ->
      let session = Obs.Trace.create ~capacity:256 () in
      Obs.Trace.install session;
      Obs.Metrics.set_enabled true;
      ignore (Engine.Runner.run (small_cfg ~seed:3));
      Obs.Trace.uninstall ();
      Obs.Trace.commit_metrics session;
      let jsonl = Obs.Trace.render_jsonl session in
      let summary = Obs.Summary.of_export (Obs.Codec.read jsonl) in
      let counts = Obs.Summary.class_counts summary in
      Alcotest.(check bool) "run produced events" true (counts <> []);
      List.iter
        (fun (cls, emitted) ->
          let name = "obs.trace.events." ^ Obs.Event.class_name cls in
          Alcotest.(check (option int)) name (Some emitted) (Obs.Metrics.counter_value name))
        counts;
      Alcotest.(check (option int)) "total emitted mirrored"
        (Some summary.Obs.Summary.total_emitted)
        (Obs.Metrics.counter_value "obs.trace.emitted");
      Alcotest.(check (option int)) "drops mirrored"
        (Some summary.Obs.Summary.total_dropped)
        (Obs.Metrics.counter_value "obs.trace.dropped"))

let test_summary_timeline () =
  with_clean_obs (fun () ->
      let session = Obs.Trace.create ~capacity:4096 () in
      Obs.Trace.install session;
      ignore (Engine.Runner.run (small_cfg ~seed:11));
      Obs.Trace.uninstall ();
      let summary = Obs.Summary.of_export (Obs.Trace.export session) in
      let epochs = List.map (fun r -> r.Obs.Summary.epoch) summary.Obs.Summary.timeline in
      Alcotest.(check bool) "timeline non-empty" true (epochs <> []);
      Alcotest.(check bool) "epochs ascending" true
        (List.sort compare epochs = epochs);
      let rendered = Obs.Summary.render ~timeline_rows:4 summary in
      Alcotest.(check bool) "render mentions classes" true
        (String.length rendered > 0
        && (let contains s sub =
              let n = String.length sub in
              let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            contains rendered "epoch_boundary")))

(* ----------------------- latency histogram ------------------------- *)

(* Everything percentiles depend on, minus the float [total]/[sum]
   accumulators: merge folds sums in different orders on each side of
   an associativity check, so bit-comparing them would reject a correct
   merge. *)
let hist_fingerprint h =
  ( Sim.Stats.Histogram.bucket_counts h,
    Sim.Stats.Histogram.zeros h,
    Sim.Stats.Histogram.count h,
    Sim.Stats.Histogram.min h,
    Sim.Stats.Histogram.max h,
    List.map (Sim.Stats.Histogram.percentile h) [ 0.0; 50.0; 95.0; 99.0; 99.9; 100.0 ] )

let hist_of xs =
  let h = Sim.Stats.Histogram.create () in
  List.iter (Sim.Stats.Histogram.add h) xs;
  h

let samples_gen = QCheck.(list (float_bound_inclusive 1e6))

let prop_hist_merge_commutative =
  QCheck.Test.make ~name:"histogram: merge is commutative" ~count:300
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let ab = hist_of xs in
      Sim.Stats.Histogram.merge ab (hist_of ys);
      let ba = hist_of ys in
      Sim.Stats.Histogram.merge ba (hist_of xs);
      hist_fingerprint ab = hist_fingerprint ba)

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"histogram: merge is associative" ~count:300
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let left = hist_of xs in
      Sim.Stats.Histogram.merge left (hist_of ys);
      Sim.Stats.Histogram.merge left (hist_of zs);
      let bc = hist_of ys in
      Sim.Stats.Histogram.merge bc (hist_of zs);
      let right = hist_of xs in
      Sim.Stats.Histogram.merge right bc;
      hist_fingerprint left = hist_fingerprint right)

(* The runner's shard contract in miniature: per-shard histograms
   merged in shard order equal the histogram of the unsharded whole. *)
let prop_hist_sharded_equals_whole =
  QCheck.Test.make ~name:"histogram: shard-merge equals unsharded whole" ~count:300
    QCheck.(pair (int_range 1 8) samples_gen)
    (fun (shards, xs) ->
      let parts = Array.init shards (fun _ -> Sim.Stats.Histogram.create ()) in
      List.iteri (fun i x -> Sim.Stats.Histogram.add parts.(i mod shards) x) xs;
      let merged = Sim.Stats.Histogram.create () in
      Array.iter (Sim.Stats.Histogram.merge merged) parts;
      hist_fingerprint merged = hist_fingerprint (hist_of xs))

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"histogram: percentile is monotone in p" ~count:300
    QCheck.(pair samples_gen (list (float_bound_inclusive 100.0)))
    (fun (xs, ps) ->
      let h = hist_of xs in
      let ps = List.sort compare ps in
      let values = List.map (Sim.Stats.Histogram.percentile h) ps in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a <= b && ascending rest
        | _ -> true
      in
      ascending values)

let test_hist_copy_diff () =
  let h = Sim.Stats.Histogram.create () in
  for i = 1 to 100 do
    Sim.Stats.Histogram.add h (float_of_int i)
  done;
  let snap = Sim.Stats.Histogram.copy h in
  (* The copy is independent: growing the original must not leak in. *)
  Sim.Stats.Histogram.add h 0.0;
  for i = 1 to 50 do
    Sim.Stats.Histogram.add h (float_of_int (1000 + i))
  done;
  Alcotest.(check int) "snapshot unchanged" 100 (Sim.Stats.Histogram.count snap);
  let d = Sim.Stats.Histogram.diff h snap in
  Alcotest.(check int) "window count" 51 (Sim.Stats.Histogram.count d);
  Alcotest.(check int) "window zeros" 1 (Sim.Stats.Histogram.zeros d);
  let p50 = Sim.Stats.Histogram.percentile d 50.0 in
  Alcotest.(check bool) "window p50 in the late range" true (p50 > 900.0 && p50 < 1100.0);
  let empty = Sim.Stats.Histogram.diff h (Sim.Stats.Histogram.copy h) in
  Alcotest.(check int) "self-diff is empty" 0 (Sim.Stats.Histogram.count empty);
  Alcotest.check_raises "diff rejects a non-subset"
    (Invalid_argument "Histogram.diff: older snapshot is not a subset") (fun () ->
      ignore (Sim.Stats.Histogram.diff snap h))

(* ------------------------------ query ------------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Exact-string check: the unknown-class error must enumerate every
   valid class, so a typo is self-correcting from the message alone. *)
let test_query_unknown_class_message () =
  let expected =
    "unknown event class \"bogus\"; valid classes: hypercall_entry, hypercall_exit, \
     page_fault, first_touch, migrate_start, migrate_retry, migrate_defer, migrate_drain, \
     pv_record, pv_flush, pv_lost, breaker_trip, breaker_escalate, breaker_cooldown, \
     reconcile_sweep, epoch_boundary, splinter, promote, superpage_migrate, pv_dedup, \
     p2m_batch, ecc_ce, ecc_ue, page_offline, node_drain, evacuate, pt_walk, \
     pt_replica_update, pt_replica_invalidate"
  in
  (match Obs.Query.parse_class "bogus" with
  | Error msg -> Alcotest.(check string) "enumerates all classes" expected msg
  | Ok _ -> Alcotest.fail "bogus accepted");
  match Obs.Query.parse_classes "page_fault,nope" with
  | Error msg -> Alcotest.(check bool) "list parser propagates" true (contains msg "\"nope\"")
  | Ok _ -> Alcotest.fail "bad list accepted"

let test_query_parsers () =
  (match Obs.Query.parse_classes " page_fault , migrate_start ,," with
  | Ok [ Obs.Event.Page_fault; Obs.Event.Migrate_start ] -> ()
  | Ok _ -> Alcotest.fail "wrong classes"
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "single epoch" true (Obs.Query.parse_epochs "7" = Ok (7, 7));
  Alcotest.(check bool) "window" true (Obs.Query.parse_epochs "10-20" = Ok (10, 20));
  (match Obs.Query.parse_epochs "x" with
  | Error msg ->
      Alcotest.(check string) "epoch error"
        "bad epoch window \"x\"; expected EPOCH or LO-HI (e.g. 10-20)" msg
  | Ok _ -> Alcotest.fail "bad window accepted")

let test_slo_parser () =
  (match Engine.Config.parse_slo "p99=300, mean=2.5" with
  | Ok [ ("p99", t1); ("mean", t2) ] ->
      Alcotest.(check (float 0.0)) "first target" 300.0 t1;
      Alcotest.(check (float 0.0)) "second target" 2.5 t2
  | Ok _ -> Alcotest.fail "wrong objectives"
  | Error msg -> Alcotest.fail msg);
  (match Engine.Config.parse_slo "p42=1" with
  | Error msg ->
      Alcotest.(check string) "unknown metric enumerates"
        "unknown SLO metric \"p42\"; valid metrics: mean, p50, p95, p99, p999" msg
  | Ok _ -> Alcotest.fail "p42 accepted");
  (match Engine.Config.parse_slo "p99" with
  | Error msg -> Alcotest.(check bool) "missing target" true (contains msg "expected METRIC=TARGET")
  | Ok _ -> Alcotest.fail "missing target accepted");
  match Engine.Config.parse_slo "p99=-3" with
  | Error msg -> Alcotest.(check bool) "negative target" true (contains msg "positive")
  | Ok _ -> Alcotest.fail "negative target accepted"

let with_temp_file suffix data f =
  let path = Filename.temp_file "xen-numa-test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      f path)

(* Acceptance criterion: with an empty filter, query over either codec
   reproduces the per-class emitted and kept counts Summary reports. *)
let test_query_matches_summary () =
  with_clean_obs (fun () ->
      let session = Obs.Trace.create ~capacity:256 () in
      Obs.Trace.install session;
      ignore (Engine.Runner.run (small_cfg ~seed:5));
      Obs.Trace.uninstall ();
      let summary = Obs.Summary.of_export (Obs.Trace.export session) in
      let check_codec name data =
        with_temp_file name data (fun path ->
            let q = Obs.Query.run (Obs.Query.filter ()) path in
            Alcotest.(check int) (name ^ ": scanned = kept") summary.Obs.Summary.total_kept
              q.Obs.Query.scanned;
            Alcotest.(check int) (name ^ ": dropped") summary.Obs.Summary.total_dropped
              q.Obs.Query.dropped;
            List.iter
              (fun (row : Obs.Summary.class_row) ->
                let qrow =
                  List.find_opt
                    (fun (r : Obs.Query.class_row) -> r.Obs.Query.cls = row.Obs.Summary.cls)
                    q.Obs.Query.rows
                in
                match qrow with
                | None ->
                    Alcotest.failf "%s: class %s missing from query" name
                      (Obs.Event.class_name row.Obs.Summary.cls)
                | Some r ->
                    Alcotest.(check int)
                      (name ^ ": emitted " ^ Obs.Event.class_name row.Obs.Summary.cls)
                      row.Obs.Summary.emitted r.Obs.Query.emitted;
                    Alcotest.(check int)
                      (name ^ ": kept " ^ Obs.Event.class_name row.Obs.Summary.cls)
                      row.Obs.Summary.kept r.Obs.Query.matched)
              summary.Obs.Summary.classes)
      in
      check_codec ".jsonl" (Obs.Trace.render_jsonl session);
      check_codec ".bin" (Obs.Trace.render_binary session))

let test_query_filters () =
  let session = mk_session () in
  (* mk_session: stream a (label b-second, stream index 1) emits a
     page fault on domain 0 node 2 at t=0 and an epoch-1 boundary at
     t=1; stream b (a-first, index 0) emits two domain-1 hypercalls. *)
  with_temp_file ".jsonl" (Obs.Trace.render_jsonl session) (fun path ->
      let q =
        Obs.Query.run (Obs.Query.filter ~classes:[ Obs.Event.Page_fault ] ~domain:0 ()) path
      in
      Alcotest.(check int) "class+dom match" 1 q.Obs.Query.matched;
      Alcotest.(check (list (pair int int))) "top pfn" [ (1, 1) ] q.Obs.Query.top_pfns;
      let q2 = Obs.Query.run (Obs.Query.filter ~domain:9 ()) path in
      Alcotest.(check int) "absent domain" 0 q2.Obs.Query.matched;
      (* The boundary is attributed to the epoch it opens; everything
         before the stream's first boundary sits at epoch -1. *)
      let q3 = Obs.Query.run (Obs.Query.filter ~epoch_lo:1 ~epoch_hi:1 ()) path in
      Alcotest.(check int) "epoch window keeps the boundary" 1 q3.Obs.Query.matched;
      let q4 = Obs.Query.run (Obs.Query.filter ~epoch_lo:(-1) ~epoch_hi:(-1) ()) path in
      Alcotest.(check int) "boot epoch keeps the rest" 3 q4.Obs.Query.matched;
      let table = Obs.Query.render_table q in
      Alcotest.(check bool) "table lists the class" true (contains table "page_fault");
      let jsonl = Obs.Query.render_jsonl q in
      Alcotest.(check bool) "jsonl self-describes" true (contains jsonl "\"query\"");
      let csv = Obs.Query.heatmap_csv q in
      Alcotest.(check bool) "heatmap has the node column" true (contains csv "node2"))

let test_query_streaming_rejects_corrupt () =
  let session = mk_session () in
  let binary = Obs.Trace.render_binary session in
  let truncated = String.sub binary 0 (String.length binary - 7) in
  with_temp_file ".bin" truncated (fun path ->
      Alcotest.(check bool) "truncated binary raises" true
        (match Obs.Query.run (Obs.Query.filter ()) path with
        | exception Obs.Codec.Corrupt _ -> true
        | _ -> false));
  let jsonl = Obs.Trace.render_jsonl session ^ "this is not json\n" in
  with_temp_file ".jsonl" jsonl (fun path ->
      Alcotest.(check bool) "malformed jsonl line raises" true
        (match Obs.Query.run (Obs.Query.filter ()) path with
        | exception Obs.Codec.Corrupt _ -> true
        | _ -> false))

let test_summary_drop_warning () =
  let session = Obs.Trace.create ~capacity:2 () in
  let s = Obs.Trace.stream session ~label:"hot" in
  for i = 0 to 9 do
    Obs.Stream.emit ~arg:i s Obs.Event.Pv_record
  done;
  let rendered = Obs.Summary.render (Obs.Summary.of_export (Obs.Trace.export session)) in
  Alcotest.(check bool) "summary warns on drops" true
    (contains rendered "WARNING:" && contains rendered "dropped by full rings");
  let clean = Obs.Summary.render (Obs.Summary.of_export (Obs.Trace.export (mk_session ()))) in
  Alcotest.(check bool) "no warning without drops" false (contains clean "WARNING:")

(* ----------------------------- profiler ---------------------------- *)

let with_clean_profile f =
  let finish () =
    Obs.Profile.set_enabled false;
    Obs.Profile.reset ()
  in
  Obs.Profile.set_enabled false;
  Obs.Profile.reset ();
  Fun.protect ~finally:finish f

let test_profile_disabled_noop () =
  with_clean_profile (fun () ->
      Alcotest.(check bool) "disabled by default" false (Obs.Profile.enabled ());
      Alcotest.(check int) "span passes the value through" 42
        (Obs.Profile.span Obs.Profile.Reduce (fun () -> 42));
      Alcotest.(check bool) "nothing recorded while disabled" true
        (List.for_all (fun (_, calls, ns) -> calls = 0 && ns = 0) (Obs.Profile.totals ()));
      Alcotest.(check bool) "empty render says so" true
        (contains (Obs.Profile.render ()) "no profiled spans"))

let test_profile_spans_accumulate () =
  with_clean_profile (fun () ->
      Obs.Profile.set_enabled true;
      ignore (Obs.Profile.span Obs.Profile.Reduce (fun () -> 1));
      (* Spans record on the exception path too (Fun.protect). *)
      (try Obs.Profile.span Obs.Profile.Reduce (fun () -> failwith "boom") with
      | Failure _ -> ());
      ignore (Obs.Profile.span Obs.Profile.P2m_batch (fun () -> ()));
      let totals = Obs.Profile.totals () in
      let calls name =
        match List.find_opt (fun (n, _, _) -> n = name) totals with
        | Some (_, c, _) -> c
        | None -> Alcotest.failf "phase %s missing from totals" name
      in
      Alcotest.(check int) "reduce spans counted" 2 (calls "reduce");
      Alcotest.(check int) "p2m spans counted" 1 (calls "p2m.batch");
      Alcotest.(check int) "untouched phase stays zero" 0 (calls "pv.flush");
      Alcotest.(check bool) "render lists hit phases" true
        (contains (Obs.Profile.render ()) "reduce");
      with_clean_obs (fun () ->
          Obs.Metrics.set_enabled true;
          Obs.Profile.commit_metrics ();
          Alcotest.(check (option int)) "calls mirrored to registry" (Some 2)
            (Obs.Metrics.counter_value "profile.reduce.calls")))

(* --------------------------- SLO accounting ------------------------ *)

let slo_cfg ~seed ~inner_jobs ~slo =
  let app =
    match Workloads.Catalogue.find "swaptions" with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~threads:4 ~policy:Policies.Spec.first_touch app in
  Engine.Config.make ~seed ~max_epochs:40 ~inner_jobs ~slo ~mode:Engine.Config.Xen_plus [ vm ]

let test_latency_inner_jobs_identical () =
  let slo = [ ("p99", 250.0); ("mean", 200.0) ] in
  let r1 = Engine.Runner.run (slo_cfg ~seed:21 ~inner_jobs:1 ~slo) in
  let r4 = Engine.Runner.run (slo_cfg ~seed:21 ~inner_jobs:4 ~slo) in
  let v1 = Engine.Result.single r1 and v4 = Engine.Result.single r4 in
  Alcotest.(check bool) "samples recorded" true (v1.Engine.Result.latency.Engine.Result.samples > 0);
  Alcotest.(check bool) "latency summary bit-identical" true
    (v1.Engine.Result.latency = v4.Engine.Result.latency);
  Alcotest.(check bool) "slo rows bit-identical" true (v1.Engine.Result.slo = v4.Engine.Result.slo)

let test_slo_observational_and_accounting () =
  let base = Engine.Runner.run (slo_cfg ~seed:22 ~inner_jobs:1 ~slo:[]) in
  let tight =
    Engine.Runner.run (slo_cfg ~seed:22 ~inner_jobs:1 ~slo:[ ("p50", 0.001) ])
  in
  let vb = Engine.Result.single base and vt = Engine.Result.single tight in
  (* Purely observational: the run itself must not notice the SLO. *)
  Alcotest.(check (float 0.0)) "completion unchanged" vb.Engine.Result.completion
    vt.Engine.Result.completion;
  Alcotest.(check bool) "latency summary unchanged" true
    (vb.Engine.Result.latency = vt.Engine.Result.latency);
  Alcotest.(check bool) "no objectives, no rows" true (vb.Engine.Result.slo = []);
  (match vt.Engine.Result.slo with
  | [ row ] ->
      Alcotest.(check string) "metric" "p50" row.Engine.Result.metric;
      Alcotest.(check bool) "impossible budget violated" true row.Engine.Result.violated;
      Alcotest.(check bool) "active epochs counted" true (row.Engine.Result.active_epochs > 0);
      Alcotest.(check int) "every active epoch violates" row.Engine.Result.active_epochs
        row.Engine.Result.violation_epochs;
      Alcotest.(check (float 1e-9)) "burn rate saturates" 1.0 row.Engine.Result.burn_rate
  | rows -> Alcotest.failf "expected 1 slo row, got %d" (List.length rows));
  let loose =
    Engine.Runner.run (slo_cfg ~seed:22 ~inner_jobs:1 ~slo:[ ("p99", 1e9) ])
  in
  match (Engine.Result.single loose).Engine.Result.slo with
  | [ row ] ->
      Alcotest.(check bool) "huge budget holds" false row.Engine.Result.violated;
      Alcotest.(check int) "no violations" 0 row.Engine.Result.violation_epochs
  | rows -> Alcotest.failf "expected 1 slo row, got %d" (List.length rows)

let suite =
  [
    ( "obs.ring",
      [
        Alcotest.test_case "push/overwrite/clear" `Quick test_ring_basic;
        Alcotest.test_case "rejects bad capacity" `Quick test_ring_rejects_bad_capacity;
        qcheck prop_ring_accounting;
      ] );
    ( "obs.stream",
      [
        Alcotest.test_case "emit stamps context" `Quick test_stream_emit;
        Alcotest.test_case "seq survives drops" `Quick test_stream_seq_survives_drops;
      ] );
    ( "obs.event",
      [
        Alcotest.test_case "class roundtrips" `Quick test_event_class_roundtrip;
        Alcotest.test_case "merge order" `Quick test_merge_order;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "empty and zeros" `Quick test_histogram_empty_and_zeros;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "registry" `Quick test_metrics_registry;
        Alcotest.test_case "disabled is a no-op" `Quick test_metrics_disabled_noop;
      ] );
    ("obs.json", [ Alcotest.test_case "parse" `Quick test_json_parse ]);
    ( "obs.trace",
      [
        Alcotest.test_case "deterministic merge" `Quick test_trace_merge;
        Alcotest.test_case "duplicate label detached" `Quick test_trace_duplicate_label_detached;
        Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
        Alcotest.test_case "rejects corrupt input" `Quick test_codec_rejects_corrupt;
      ] );
    ( "obs.engine",
      [
        Alcotest.test_case "jobs 1 = jobs 4 trace bytes" `Slow test_trace_jobs_byte_identical;
        Alcotest.test_case "untraced run emits nothing" `Quick test_runner_untraced_emits_nothing;
        Alcotest.test_case "summary matches registry" `Slow test_summary_matches_registry;
        Alcotest.test_case "summary timeline" `Slow test_summary_timeline;
      ] );
    ( "obs.latency",
      [
        qcheck prop_hist_merge_commutative;
        qcheck prop_hist_merge_associative;
        qcheck prop_hist_sharded_equals_whole;
        qcheck prop_hist_percentile_monotone;
        Alcotest.test_case "copy and diff" `Quick test_hist_copy_diff;
        Alcotest.test_case "inner-jobs 1 = 4 latency summary" `Slow
          test_latency_inner_jobs_identical;
        Alcotest.test_case "slo is observational" `Slow test_slo_observational_and_accounting;
        Alcotest.test_case "slo parser" `Quick test_slo_parser;
      ] );
    ( "obs.query",
      [
        Alcotest.test_case "unknown class message" `Quick test_query_unknown_class_message;
        Alcotest.test_case "filter parsers" `Quick test_query_parsers;
        Alcotest.test_case "query matches summary on both codecs" `Slow
          test_query_matches_summary;
        Alcotest.test_case "filters and renders" `Quick test_query_filters;
        Alcotest.test_case "streaming rejects corrupt files" `Quick
          test_query_streaming_rejects_corrupt;
        Alcotest.test_case "summary warns on drops" `Quick test_summary_drop_warning;
      ] );
    ( "obs.profile",
      [
        Alcotest.test_case "disabled is a no-op" `Quick test_profile_disabled_noop;
        Alcotest.test_case "spans accumulate" `Quick test_profile_spans_accumulate;
      ] );
  ]
