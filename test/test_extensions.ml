(* Tests for the extension substrates: TLB/huge pages, the credit
   scheduler, the policy advisor, and their engine integration. *)

let app name =
  match Workloads.Catalogue.find name with Some a -> a | None -> Alcotest.failf "no app %s" name

(* -------------------------------- tlb ------------------------------ *)

let tlb = Guest.Tlb.opteron

let test_tlb_coverage () =
  Alcotest.(check int) "4k coverage" (1024 * 4096) (Guest.Tlb.coverage_bytes tlb Guest.Tlb.Small_4k);
  Alcotest.(check int) "2m coverage" (48 * 2 * 1024 * 1024)
    (Guest.Tlb.coverage_bytes tlb Guest.Tlb.Huge_2m)

let test_tlb_small_footprint_never_misses () =
  Alcotest.(check (float 1e-12)) "fits in reach" 0.0
    (Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes:(1024 * 1024)
       ~hot_access_share:0.5)

let test_tlb_huge_pages_reduce_misses () =
  let footprint_bytes = 4 * 1024 * 1024 * 1024 in
  let small =
    Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.5
  in
  let huge = Guest.Tlb.miss_ratio tlb Guest.Tlb.Huge_2m ~footprint_bytes ~hot_access_share:0.5 in
  Alcotest.(check bool) "misses exist at 4k" true (small > 0.0);
  Alcotest.(check bool) "2M at least 100x fewer" true (huge < small /. 100.0)

let test_tlb_nested_walk_costlier () =
  Alcotest.(check bool) "virtualized walk ~3x" true
    (Guest.Tlb.walk_cycles tlb ~virtualized:true >= 2.5 *. Guest.Tlb.walk_cycles tlb ~virtualized:false)

let test_tlb_hot_share_reduces_misses () =
  let footprint_bytes = 1024 * 1024 * 1024 in
  let cold = Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.1 in
  let hot = Guest.Tlb.miss_ratio tlb Guest.Tlb.Small_4k ~footprint_bytes ~hot_access_share:0.9 in
  Alcotest.(check bool) "skew helps" true (hot < cold)

let test_engine_huge_pages_help_virtualized_big_app () =
  let run huge_pages =
    let vm = Engine.Config.vm ~huge_pages ~policy:Policies.Spec.round_4k (app "mg.D") in
    (Engine.Result.single
       (Engine.Runner.run (Engine.Config.make ~seed:5 ~mode:Engine.Config.Xen_plus [ vm ])))
      .Engine.Result.completion
  in
  let small = run false and huge = run true in
  Alcotest.(check bool) "2M pages at least 5% faster in a VM" true (small > 1.05 *. huge)

(* --------------------------- tlb radix walk ------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

(* Exact pin: at a uniform level ratio of 1.0 the radix sum is the
   flat walk constant bit for bit (per-level cost = flat / 4, summed
   over 4 levels), so the --pt-walk path on a topology where every
   level is local reproduces the flat model to the last bit. *)
let test_walk_radix_uniform_equals_flat () =
  List.iter
    (fun virtualized ->
      Alcotest.(check (float 0.0)) "4-level radix = flat"
        (Guest.Tlb.walk_cycles tlb ~virtualized)
        (Guest.Tlb.walk_cycles_radix tlb ~virtualized ~levels:Guest.Tlb.walk_levels
           ~level_ratio:(fun _ -> 1.0)))
    [ false; true ];
  let footprint_bytes = 4 * 1024 * 1024 * 1024 and hot_access_share = 0.5 in
  Alcotest.(check (float 0.0)) "blended 4 KiB access cycles = flat"
    (Guest.Tlb.cycles_per_access tlb Guest.Tlb.Small_4k ~virtualized:true ~footprint_bytes
       ~hot_access_share)
    (Guest.Tlb.cycles_per_access_radix tlb Guest.Tlb.Small_4k ~virtualized:true
       ~footprint_bytes ~hot_access_share ~level_ratio:(fun _ -> 1.0));
  Alcotest.(check (float 0.0)) "mixed with f=0 = flat small"
    (Guest.Tlb.cycles_per_access tlb Guest.Tlb.Small_4k ~virtualized:true ~footprint_bytes
       ~hot_access_share)
    (Guest.Tlb.cycles_per_access_mixed_radix tlb ~huge_fraction:0.0 ~virtualized:true
       ~footprint_bytes ~hot_access_share ~level_ratio:(fun _ -> 1.0))

let ratio_of ratios i = float_of_int ratios.(i) /. 100.0

(* Walk cost grows with every level added (each level's cost is
   strictly positive whatever its placement). *)
let prop_walk_monotone_in_depth =
  QCheck.Test.make ~name:"radix walk monotone in depth" ~count:200
    QCheck.(pair bool (array_of_size (Gen.return Guest.Tlb.walk_levels) (int_range 100 400)))
    (fun (virtualized, ratios) ->
      let level_ratio = ratio_of ratios in
      let ok = ref true in
      for levels = 1 to Guest.Tlb.walk_levels do
        if
          Guest.Tlb.walk_cycles_radix tlb ~virtualized ~levels ~level_ratio
          <= Guest.Tlb.walk_cycles_radix tlb ~virtualized ~levels:(levels - 1) ~level_ratio
        then ok := false
      done;
      !ok)

(* Pushing any subset of levels further away never cheapens the walk:
   cost is monotone in the pointwise level-ratio order (hence in the
   number of remote levels, remote being a ratio > 1). *)
let prop_walk_monotone_in_remote_levels =
  QCheck.Test.make ~name:"radix walk monotone in remote levels" ~count:200
    QCheck.(
      triple bool
        (array_of_size (Gen.return Guest.Tlb.walk_levels) (int_range 100 400))
        (array_of_size (Gen.return Guest.Tlb.walk_levels) (int_range 0 300)))
    (fun (virtualized, ratios, bumps) ->
      let near = ratio_of ratios in
      let far i = near i +. (float_of_int bumps.(i) /. 100.0) in
      Guest.Tlb.walk_cycles_radix tlb ~virtualized ~levels:Guest.Tlb.walk_levels
        ~level_ratio:far
      >= Guest.Tlb.walk_cycles_radix tlb ~virtualized ~levels:Guest.Tlb.walk_levels
           ~level_ratio:near)

(* For one placement the 2 MiB path is never dearer than the 4 KiB
   path: it misses less (bigger reach) and each miss walks one level
   fewer (a prefix of the same per-level sum). *)
let prop_walk_superpage_path_cheaper =
  QCheck.Test.make ~name:"superpage path <= 4 KiB path" ~count:200
    QCheck.(
      triple bool (int_range 1 64)
        (array_of_size (Gen.return Guest.Tlb.walk_levels) (int_range 100 400)))
    (fun (virtualized, quarter_gib, ratios) ->
      let footprint_bytes = quarter_gib * 256 * 1024 * 1024 in
      let level_ratio = ratio_of ratios in
      Guest.Tlb.cycles_per_access_radix tlb Guest.Tlb.Huge_2m ~virtualized ~footprint_bytes
        ~hot_access_share:0.5 ~level_ratio
      <= Guest.Tlb.cycles_per_access_radix tlb Guest.Tlb.Small_4k ~virtualized
           ~footprint_bytes ~hot_access_share:0.5 ~level_ratio)

(* ----------------------------- engine pt --------------------------- *)

(* Differential pin: confined to one node every walk level is local,
   so the level ratios are exactly 1.0 and the radix repricing must
   reproduce the flat-model run bit for bit — the whole result record,
   not just the walk term. *)
let test_engine_pt_walk_one_node_identical () =
  let cell pt_walk =
    let vm =
      Engine.Config.vm ~threads:6 ~home_nodes:[| 0 |] ~pt_walk
        ~policy:Policies.Spec.round_4k (app "swaptions")
    in
    Engine.Result.single
      (Engine.Runner.run
         (Engine.Config.make ~seed:7 ~mode:Engine.Config.Xen_plus [ vm ]))
  in
  let off = cell false and on = cell true in
  Alcotest.(check bool) "walk term within 1e-9" true
    (Float.abs (off.Engine.Result.walk_cycles_per_instr -. on.Engine.Result.walk_cycles_per_instr)
    < 1e-9);
  Alcotest.(check bool) "whole result identical" true (off = on)

(* Off means off: a spec with both toggles false is structurally the
   default spec, so the walk-model-off engine is the pre-walk-model
   engine for every baseline cell by construction. *)
let test_engine_pt_flags_off_is_default () =
  let explicit =
    Engine.Config.vm ~pt_walk:false ~replicate_pt:false ~policy:Policies.Spec.round_4k
      (app "swaptions")
  in
  let default = Engine.Config.vm ~policy:Policies.Spec.round_4k (app "swaptions") in
  Alcotest.(check bool) "specs equal" true (explicit = default)

(* The acceptance cell: first-touch + Carrefour spreads 48 threads
   over all eight nodes while the page tables sit on the first home
   node, so radix pricing inflates the walk term; replication brings
   every level home and must win it back — paying visible propagation
   costs for it. *)
let test_engine_replicate_pt_localises_walks () =
  let cell replicate_pt =
    let vm =
      Engine.Config.vm ~pt_walk:true ~replicate_pt
        ~policy:Policies.Spec.first_touch_carrefour (app "kmeans")
    in
    Engine.Result.single
      (Engine.Runner.run
         (Engine.Config.make ~seed:11 ~mode:Engine.Config.Xen_plus [ vm ]))
  in
  let primary_only = cell false and replicated = cell true in
  Alcotest.(check bool) "remote levels inflate the walk term" true
    (primary_only.Engine.Result.walk_cycles_per_instr
    > 1.000001 *. replicated.Engine.Result.walk_cycles_per_instr);
  Alcotest.(check bool) "no mirrors, no propagation" true
    (primary_only.Engine.Result.pt_replica_updates = 0
    && primary_only.Engine.Result.pt_replica_time = 0.0);
  Alcotest.(check bool) "mirrors pay propagation" true
    (replicated.Engine.Result.pt_replica_updates > 0
    && replicated.Engine.Result.pt_replica_time > 0.0)

(* Linux mode has no P2M, hence no priced page tables: both toggles
   must be inert there. *)
let test_engine_pt_ignored_under_linux () =
  let cell pt_walk replicate_pt =
    let vm =
      Engine.Config.vm ~threads:8 ~pt_walk ~replicate_pt ~policy:Policies.Spec.round_4k
        (app "swaptions")
    in
    Engine.Result.single
      (Engine.Runner.run (Engine.Config.make ~seed:3 ~mode:Engine.Config.Linux [ vm ]))
  in
  Alcotest.(check bool) "identical result" true (cell false false = cell true true)

(* The sharded kernel must not see the new feature: walk repricing and
   replica propagation live outside the per-vCPU shards, so inner-jobs
   stays bit-identical with both toggles on. *)
let test_engine_pt_sharded_identical () =
  let cell inner =
    let vm =
      Engine.Config.vm ~threads:7 ~pt_walk:true ~replicate_pt:true
        ~policy:Policies.Spec.first_touch_carrefour (app "swaptions")
    in
    Engine.Runner.run
      (Engine.Config.make ~seed:13 ~max_epochs:40 ~inner_jobs:inner
         ~mode:Engine.Config.Xen_plus [ vm ])
  in
  Alcotest.(check bool) "identical result" true (cell 1 = cell 4)

(* ------------------------------- sched ------------------------------ *)

let sched_system () = Xen.System.create ~page_scale:262144 (Numa.Amd48.topology ())

let test_sched_occupancy () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"a" ~kind:Xen.Domain.DomU ~vcpus:4 ~mem_bytes:(1 lsl 30) ()
  in
  let occ = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> true) in
  Alcotest.(check int) "4 active" 4 (Array.fold_left ( + ) 0 occ);
  let occ_none = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> false) in
  Alcotest.(check int) "0 active" 0 (Array.fold_left ( + ) 0 occ_none)

let test_sched_balance_spreads () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"stacked" ~kind:Xen.Domain.DomU ~vcpus:8
      ~mem_bytes:(1 lsl 30) ~home_nodes:[| 0 |] ()
  in
  (* 8 vCPUs on node 0's 6 pCPUs: at least two pCPUs are double-booked
     while 42 others idle. *)
  let rng = Sim.Rng.create ~seed:1 in
  let migrations =
    Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> true)
      ~active:(fun _ _ -> true)
  in
  Alcotest.(check bool) "migrated some" true (List.length migrations >= 2);
  let occ = Xen.Sched.occupancy s.Xen.System.topo ~domains:[ d ] ~active:(fun _ _ -> true) in
  Alcotest.(check int) "no pCPU double-booked" 1 (Array.fold_left max 0 occ)

let test_sched_respects_movable () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"frozen" ~kind:Xen.Domain.DomU ~vcpus:8
      ~mem_bytes:(1 lsl 30) ~home_nodes:[| 0 |] ()
  in
  let rng = Sim.Rng.create ~seed:2 in
  let before = Array.copy d.Xen.Domain.vcpu_pin in
  let migrations =
    Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> false)
      ~active:(fun _ _ -> true)
  in
  Alcotest.(check int) "nothing moved" 0 (List.length migrations);
  Alcotest.(check (array int)) "pins intact" before d.Xen.Domain.vcpu_pin

let test_sched_balanced_is_stable () =
  let s = sched_system () in
  let d =
    Xen.System.create_domain s ~name:"even" ~kind:Xen.Domain.DomU ~vcpus:48
      ~mem_bytes:(1 lsl 30) ()
  in
  let rng = Sim.Rng.create ~seed:3 in
  Alcotest.(check int) "1:1 layout untouched" 0
    (List.length
       (Xen.Sched.balance s.Xen.System.topo ~rng ~domains:[ d ] ~movable:(fun _ -> true)
          ~active:(fun _ _ -> true)))

let test_engine_unpinned_migration_breaks_locality () =
  let run pinned policy =
    let victim = Engine.Config.vm ~threads:48 ~pinned ~policy (app "cg.C") in
    let neighbour = Engine.Config.vm ~threads:24 ~policy:Policies.Spec.round_4k (app "ep.D") in
    let r = Engine.Runner.run (Engine.Config.make ~seed:4 ~mode:Engine.Config.Xen_plus [ victim; neighbour ]) in
    match List.find_opt (fun vm -> vm.Engine.Result.app_name = "cg.C") r.Engine.Result.vms with
    | Some vm -> vm
    | None -> Alcotest.fail "victim missing"
  in
  let pinned = run true Policies.Spec.first_touch in
  let migrated = run false Policies.Spec.first_touch in
  let healed = run false Policies.Spec.first_touch_carrefour in
  Alcotest.(check bool) "migration hurts locality" true
    (migrated.Engine.Result.local_fraction < pinned.Engine.Result.local_fraction -. 0.1);
  Alcotest.(check bool) "carrefour chases the vCPUs" true
    (healed.Engine.Result.local_fraction > migrated.Engine.Result.local_fraction +. 0.05);
  Alcotest.(check bool) "pages were moved" true (healed.Engine.Result.migrations > 0)

(* ------------------------------ advisor ----------------------------- *)

let test_advisor_classify () =
  Alcotest.(check bool) "high" true (Engine.Advisor.classify ~imbalance:2.5 = Workloads.App.High);
  Alcotest.(check bool) "moderate" true
    (Engine.Advisor.classify ~imbalance:1.0 = Workloads.App.Moderate);
  Alcotest.(check bool) "low" true (Engine.Advisor.classify ~imbalance:0.3 = Workloads.App.Low)

let test_advisor_recommendations () =
  let recommend name =
    (Engine.Advisor.recommend ~mode:Engine.Config.Xen_plus (app name)).Engine.Advisor.policy
  in
  Alcotest.(check string) "thread-local app -> first-touch" "first-touch"
    (Policies.Spec.name (recommend "cg.C"));
  Alcotest.(check string) "master-slave app -> round-4k/carrefour" "round-4k/carrefour"
    (Policies.Spec.name (recommend "kmeans"))

let test_advisor_profile_fields () =
  let p = Engine.Advisor.profile ~mode:Engine.Config.Linux (app "facesim") in
  Alcotest.(check bool) "imbalance near Table 1" true
    (Float.abs (p.Engine.Advisor.imbalance -. 2.53) < 0.3);
  Alcotest.(check bool) "classified high" true (p.Engine.Advisor.class_ = Workloads.App.High)

let suite =
  [
    ( "guest.tlb",
      [
        Alcotest.test_case "coverage" `Quick test_tlb_coverage;
        Alcotest.test_case "small footprint" `Quick test_tlb_small_footprint_never_misses;
        Alcotest.test_case "huge pages reduce misses" `Quick test_tlb_huge_pages_reduce_misses;
        Alcotest.test_case "nested walk costlier" `Quick test_tlb_nested_walk_costlier;
        Alcotest.test_case "hot share" `Quick test_tlb_hot_share_reduces_misses;
        Alcotest.test_case "engine: 2M pages help in VM" `Slow
          test_engine_huge_pages_help_virtualized_big_app;
      ] );
    ( "guest.tlb.walk",
      [
        Alcotest.test_case "uniform radix = flat, exactly" `Quick
          test_walk_radix_uniform_equals_flat;
        qcheck prop_walk_monotone_in_depth;
        qcheck prop_walk_monotone_in_remote_levels;
        qcheck prop_walk_superpage_path_cheaper;
      ] );
    ( "engine.pt",
      [
        Alcotest.test_case "one node: radix = flat bit for bit" `Slow
          test_engine_pt_walk_one_node_identical;
        Alcotest.test_case "flags off is the default spec" `Quick
          test_engine_pt_flags_off_is_default;
        Alcotest.test_case "replication localises walks" `Slow
          test_engine_replicate_pt_localises_walks;
        Alcotest.test_case "ignored under linux" `Quick test_engine_pt_ignored_under_linux;
        Alcotest.test_case "inner-jobs bit-identical with pt on" `Slow
          test_engine_pt_sharded_identical;
      ] );
    ( "xen.sched",
      [
        Alcotest.test_case "occupancy" `Quick test_sched_occupancy;
        Alcotest.test_case "balance spreads" `Quick test_sched_balance_spreads;
        Alcotest.test_case "respects movable" `Quick test_sched_respects_movable;
        Alcotest.test_case "balanced stays put" `Quick test_sched_balanced_is_stable;
        Alcotest.test_case "engine: migration vs carrefour" `Slow
          test_engine_unpinned_migration_breaks_locality;
      ] );
    ( "engine.advisor",
      [
        Alcotest.test_case "classify thresholds" `Quick test_advisor_classify;
        Alcotest.test_case "recommendations" `Quick test_advisor_recommendations;
        Alcotest.test_case "profile fields" `Quick test_advisor_profile_fields;
      ] );
  ]
