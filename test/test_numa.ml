(* Tests for the numa library: topology, latency, counters, amd48. *)

let check_float = Alcotest.(check (float 1e-9))

let line_topology () =
  (* 0 - 1 - 2 - 3 chain. *)
  Numa.Topology.create ~nodes:4 ~cpus_per_node:2 ~mem_per_node:(1 lsl 30)
    ~controller_gib_per_s:10.0
    ~links:[ (0, 1, 4.0); (1, 2, 4.0); (2, 3, 4.0) ]

(* ----------------------------- topology --------------------------- *)

let test_topology_counts () =
  let t = line_topology () in
  Alcotest.(check int) "nodes" 4 (Numa.Topology.node_count t);
  Alcotest.(check int) "cpus" 8 (Numa.Topology.cpu_count t);
  Alcotest.(check int) "cpus/node" 2 (Numa.Topology.cpus_per_node t);
  Alcotest.(check int) "total mem" (4 * (1 lsl 30)) (Numa.Topology.total_mem t)

let test_topology_cpu_mapping () =
  let t = line_topology () in
  Alcotest.(check int) "cpu 0 on node 0" 0 (Numa.Topology.node_of_cpu t 0);
  Alcotest.(check int) "cpu 5 on node 2" 2 (Numa.Topology.node_of_cpu t 5);
  Alcotest.(check (list int)) "cpus of node 1" [ 2; 3 ]
    (Array.to_list (Numa.Topology.cpu_array_of_node t 1))

let test_topology_distance () =
  let t = line_topology () in
  Alcotest.(check int) "self" 0 (Numa.Topology.distance t 2 2);
  Alcotest.(check int) "adjacent" 1 (Numa.Topology.distance t 0 1);
  Alcotest.(check int) "far" 3 (Numa.Topology.distance t 0 3);
  Alcotest.(check int) "diameter" 3 (Numa.Topology.diameter t)

let test_topology_route () =
  let t = line_topology () in
  let route = Numa.Topology.route t 0 3 in
  Alcotest.(check int) "3 links" 3 (List.length route);
  (* The route is connected and directed from 0 to 3. *)
  let rec connected src = function
    | [] -> src = 3
    | (l : Numa.Topology.link) :: rest -> l.Numa.Topology.src = src && connected l.Numa.Topology.dst rest
  in
  Alcotest.(check bool) "connected path" true (connected 0 route);
  Alcotest.(check (list Alcotest.int)) "empty self route" []
    (List.map (fun (l : Numa.Topology.link) -> l.Numa.Topology.link_id) (Numa.Topology.route t 1 1))

let test_topology_neighbours () =
  let t = line_topology () in
  Alcotest.(check (list int)) "middle node" [ 0; 2 ] (Numa.Topology.neighbours t 1)

let test_topology_rejects_disconnected () =
  Alcotest.check_raises "disconnected graph"
    (Invalid_argument "Topology.create: disconnected link graph") (fun () ->
      ignore
        (Numa.Topology.create ~nodes:3 ~cpus_per_node:1 ~mem_per_node:1024
           ~controller_gib_per_s:1.0 ~links:[ (0, 1, 1.0) ]))

let test_topology_rejects_bad_link () =
  Alcotest.check_raises "self link" (Invalid_argument "Topology.create: bad link endpoint")
    (fun () ->
      ignore
        (Numa.Topology.create ~nodes:2 ~cpus_per_node:1 ~mem_per_node:1024
           ~controller_gib_per_s:1.0
           ~links:[ (0, 0, 1.0) ]))

(* ------------------------------ amd48 ----------------------------- *)

let test_amd48_shape () =
  let t = Numa.Amd48.topology () in
  Alcotest.(check int) "8 nodes" 8 (Numa.Topology.node_count t);
  Alcotest.(check int) "48 cpus" 48 (Numa.Topology.cpu_count t);
  Alcotest.(check int) "128 GiB" (128 * 1024 * 1024 * 1024) (Numa.Topology.total_mem t);
  Alcotest.(check int) "diameter 2 (Section 5.1)" 2 (Numa.Topology.diameter t)

let test_amd48_link_bandwidths () =
  let t = Numa.Amd48.topology () in
  let max_bw =
    Array.fold_left (fun acc (l : Numa.Topology.link) -> Float.max acc l.Numa.Topology.gib_per_s)
      0.0 (Numa.Topology.links t)
  in
  check_float "max 6 GiB/s" 6.0 max_bw

let test_amd48_every_pair_reachable () =
  let t = Numa.Amd48.topology () in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let d = Numa.Topology.distance t a b in
      if a = b then Alcotest.(check int) "self 0" 0 d
      else if d < 1 || d > 2 then Alcotest.failf "distance %d-%d = %d" a b d
    done
  done

(* ----------------------------- latency ---------------------------- *)

let test_latency_table3_idle () =
  let lat = Numa.Amd48.latency in
  check_float "local" 156.0 (Numa.Latency.mem_cycles lat ~hops:0 ~saturation:0.0);
  check_float "1 hop" 276.0 (Numa.Latency.mem_cycles lat ~hops:1 ~saturation:0.0);
  check_float "2 hops" 383.0 (Numa.Latency.mem_cycles lat ~hops:2 ~saturation:0.0)

let test_latency_table3_contended () =
  let lat = Numa.Amd48.latency in
  check_float "local" 697.0 (Numa.Latency.mem_cycles lat ~hops:0 ~saturation:1.0);
  check_float "1 hop" 740.0 (Numa.Latency.mem_cycles lat ~hops:1 ~saturation:1.0);
  check_float "2 hops" 863.0 (Numa.Latency.mem_cycles lat ~hops:2 ~saturation:1.0)

let test_latency_caches () =
  let lat = Numa.Amd48.latency in
  check_float "L1" 5.0 (Numa.Latency.cache_cycles lat Numa.Latency.L1);
  check_float "L2" 16.0 (Numa.Latency.cache_cycles lat Numa.Latency.L2);
  check_float "L3" 48.0 (Numa.Latency.cache_cycles lat Numa.Latency.L3)

let test_latency_clamps () =
  let lat = Numa.Amd48.latency in
  check_float "saturation above 1 clamps" 697.0
    (Numa.Latency.mem_cycles lat ~hops:0 ~saturation:3.0);
  check_float "hops beyond max clamp" 383.0
    (Numa.Latency.mem_cycles lat ~hops:9 ~saturation:0.0)

let test_latency_seconds () =
  let lat = Numa.Amd48.latency in
  check_float "156 cycles at 2.2 GHz" (156.0 /. 2.2e9)
    (Numa.Latency.access_seconds lat ~hops:0 ~saturation:0.0)

let prop_latency_monotone_in_saturation =
  QCheck.Test.make ~name:"latency monotone in saturation" ~count:300
    QCheck.(triple (int_range 0 2) (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (hops, s1, s2) ->
      let lat = Numa.Amd48.latency in
      let lo = Float.min s1 s2 and hi = Float.max s1 s2 in
      Numa.Latency.mem_cycles lat ~hops ~saturation:lo
      <= Numa.Latency.mem_cycles lat ~hops ~saturation:hi +. 1e-9)

let prop_latency_monotone_in_hops =
  QCheck.Test.make ~name:"idle latency monotone in hops" ~count:100
    QCheck.(float_range 0.0 1.0)
    (fun _ ->
      let lat = Numa.Amd48.latency in
      let l h = Numa.Latency.mem_cycles lat ~hops:h ~saturation:0.0 in
      l 0 < l 1 && l 1 < l 2)

(* ----------------------------- counters --------------------------- *)

let test_counters_local_remote () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  Numa.Counters.record_accesses c ~src:0 ~dst:0 ~count:10.0 ~bytes_per_access:64.0;
  Numa.Counters.record_accesses c ~src:0 ~dst:3 ~count:5.0 ~bytes_per_access:64.0;
  check_float "local" 10.0 (Numa.Counters.local_accesses c);
  check_float "remote" 5.0 (Numa.Counters.remote_accesses c);
  check_float "node 0 accesses" 10.0 (Numa.Counters.node_accesses c).(0);
  check_float "node 3 accesses" 5.0 (Numa.Counters.node_accesses c).(3)

let test_counters_remote_charges_route_links () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  Numa.Counters.record_accesses c ~src:0 ~dst:3 ~count:1.0 ~bytes_per_access:64.0;
  let route = Numa.Topology.route t 0 3 in
  let bytes = Numa.Counters.link_bytes c in
  List.iter
    (fun (l : Numa.Topology.link) ->
      check_float "link charged" 64.0 bytes.(l.Numa.Topology.link_id))
    route;
  let total = Array.fold_left ( +. ) 0.0 bytes in
  check_float "only route links charged" (64.0 *. float_of_int (List.length route)) total

let test_counters_imbalance () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  for dst = 0 to 7 do
    Numa.Counters.record_accesses c ~src:0 ~dst ~count:10.0 ~bytes_per_access:64.0
  done;
  check_float "balanced" 0.0 (Numa.Counters.imbalance c);
  Numa.Counters.record_accesses c ~src:1 ~dst:0 ~count:800.0 ~bytes_per_access:64.0;
  Alcotest.(check bool) "imbalanced now" true (Numa.Counters.imbalance c > 1.0)

let test_counters_zero_access_epoch () =
  (* Regression: an epoch with no recorded accesses must not divide by
     zero — imbalance reads 0 and closing the epoch is harmless. *)
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  check_float "imbalance with no accesses" 0.0 (Numa.Counters.imbalance c);
  Numa.Counters.end_epoch c ~duration:1.0;
  check_float "imbalance after empty epoch" 0.0 (Numa.Counters.imbalance c);
  check_float "interconnect load after empty epoch" 0.0 (Numa.Counters.interconnect_load c);
  let finite x = match Float.classify_float x with FP_nan | FP_infinite -> false | _ -> true in
  Alcotest.(check bool) "values finite" true
    (finite (Numa.Counters.imbalance c) && finite (Numa.Counters.interconnect_load c))

let test_counters_epoch_utilisation () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  (* 13 GiB/s controller: half that in one second is 50 % utilisation. *)
  let bytes = 6.5 *. 1024.0 *. 1024.0 *. 1024.0 in
  Numa.Counters.record_accesses c ~src:2 ~dst:2 ~count:(bytes /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  let util = Numa.Counters.last_controller_utilisation c in
  Alcotest.(check (float 0.01)) "node 2 at 50%" 0.5 util.(2);
  Alcotest.(check (float 0.01)) "node 0 idle" 0.0 util.(0);
  Alcotest.(check int) "one epoch" 1 (Numa.Counters.epoch_count c)

let test_counters_epoch_resets_bytes () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  Numa.Counters.record_accesses c ~src:0 ~dst:0 ~count:1e6 ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  let util = Numa.Counters.last_controller_utilisation c in
  check_float "second epoch idle" 0.0 util.(0);
  (* Cumulative access counts survive epochs. *)
  check_float "cumulative kept" 1e6 (Numa.Counters.node_accesses c).(0)

let test_counters_raw_amplitude () =
  (* Footnote 3: the raw reading idles at 50 % and saturates at 80 %. *)
  check_float "idle" 0.5 (Numa.Counters.raw_link_reading ~utilisation:0.0);
  check_float "saturated" 0.8 (Numa.Counters.raw_link_reading ~utilisation:1.0);
  check_float "midpoint" 0.65 (Numa.Counters.raw_link_reading ~utilisation:0.5);
  check_float "roundtrip" 0.5
    (Numa.Counters.normalise_link_reading ~raw:(Numa.Counters.raw_link_reading ~utilisation:0.5));
  check_float "clamps low" 0.0 (Numa.Counters.normalise_link_reading ~raw:0.2)

let test_counters_max_route_saturation () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  (* Saturate node 5's controller. *)
  let bytes = 13.0 *. 1024.0 *. 1024.0 *. 1024.0 in
  Numa.Counters.record_accesses c ~src:5 ~dst:5 ~count:(bytes /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Alcotest.(check (float 0.01)) "route into 5 saturated" 1.0
    (Numa.Counters.max_route_saturation c ~src:0 ~dst:5);
  Alcotest.(check (float 0.01)) "unrelated route idle" 0.0
    (Numa.Counters.max_route_saturation c ~src:1 ~dst:2)

let test_counters_interconnect_load () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  check_float "no epoch yet" 0.0 (Numa.Counters.interconnect_load c);
  (* Saturate one link: 3 GiB/s for one second over link 0<->1 (6 GiB/s): 50 %. *)
  let bytes = 3.0 *. 1024.0 *. 1024.0 *. 1024.0 in
  Numa.Counters.record_accesses c ~src:0 ~dst:1 ~count:(bytes /. 64.0) ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Alcotest.(check (float 0.01)) "50% on most loaded link" 0.5
    (Numa.Counters.interconnect_load c)

let test_counters_reset () =
  let t = Numa.Amd48.topology () in
  let c = Numa.Counters.create t in
  Numa.Counters.record_accesses c ~src:0 ~dst:1 ~count:100.0 ~bytes_per_access:64.0;
  Numa.Counters.end_epoch c ~duration:1.0;
  Numa.Counters.reset c;
  check_float "accesses cleared" 0.0 (Numa.Counters.node_accesses c).(1);
  Alcotest.(check int) "epochs cleared" 0 (Numa.Counters.epoch_count c);
  check_float "interconnect cleared" 0.0 (Numa.Counters.interconnect_load c)

let prop_counters_conservation =
  QCheck.Test.make ~name:"access counts are conserved" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (triple (int_range 0 7) (int_range 0 7) (float_range 1.0 1000.0)))
    (fun events ->
      let t = Numa.Amd48.topology () in
      let c = Numa.Counters.create t in
      List.iter
        (fun (src, dst, count) ->
          Numa.Counters.record_accesses c ~src ~dst ~count ~bytes_per_access:64.0)
        events;
      let total = Array.fold_left ( +. ) 0.0 (Numa.Counters.node_accesses c) in
      let expected = List.fold_left (fun acc (_, _, n) -> acc +. n) 0.0 events in
      Float.abs (total -. expected) < 1e-6 *. expected
      && Float.abs (Numa.Counters.local_accesses c +. Numa.Counters.remote_accesses c -. expected)
         < 1e-6 *. expected)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "numa.topology",
      [
        Alcotest.test_case "counts" `Quick test_topology_counts;
        Alcotest.test_case "cpu mapping" `Quick test_topology_cpu_mapping;
        Alcotest.test_case "distance" `Quick test_topology_distance;
        Alcotest.test_case "route" `Quick test_topology_route;
        Alcotest.test_case "neighbours" `Quick test_topology_neighbours;
        Alcotest.test_case "rejects disconnected" `Quick test_topology_rejects_disconnected;
        Alcotest.test_case "rejects bad link" `Quick test_topology_rejects_bad_link;
      ] );
    ( "numa.amd48",
      [
        Alcotest.test_case "shape" `Quick test_amd48_shape;
        Alcotest.test_case "link bandwidths" `Quick test_amd48_link_bandwidths;
        Alcotest.test_case "pairs within 2 hops" `Quick test_amd48_every_pair_reachable;
      ] );
    ( "numa.latency",
      [
        Alcotest.test_case "Table 3 idle" `Quick test_latency_table3_idle;
        Alcotest.test_case "Table 3 contended" `Quick test_latency_table3_contended;
        Alcotest.test_case "caches" `Quick test_latency_caches;
        Alcotest.test_case "clamps" `Quick test_latency_clamps;
        Alcotest.test_case "seconds" `Quick test_latency_seconds;
        qcheck prop_latency_monotone_in_saturation;
        qcheck prop_latency_monotone_in_hops;
      ] );
    ( "numa.counters",
      [
        Alcotest.test_case "local/remote" `Quick test_counters_local_remote;
        Alcotest.test_case "route links charged" `Quick test_counters_remote_charges_route_links;
        Alcotest.test_case "imbalance" `Quick test_counters_imbalance;
        Alcotest.test_case "zero-access epoch" `Quick test_counters_zero_access_epoch;
        Alcotest.test_case "epoch utilisation" `Quick test_counters_epoch_utilisation;
        Alcotest.test_case "epoch resets bytes" `Quick test_counters_epoch_resets_bytes;
        Alcotest.test_case "raw 50-80% amplitude" `Quick test_counters_raw_amplitude;
        Alcotest.test_case "max route saturation" `Quick test_counters_max_route_saturation;
        Alcotest.test_case "interconnect load" `Quick test_counters_interconnect_load;
        Alcotest.test_case "reset" `Quick test_counters_reset;
        qcheck prop_counters_conservation;
      ] );
  ]
