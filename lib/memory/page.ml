type mfn = int
type pfn = int
type vfn = int

let size_4k = Sim.Units.kib 4
let size_2m = Sim.Units.mib 2
let size_1g = Sim.Units.gib 1

(* Orders are derived from the Units sizes, not hard-coded a second
   time: a buddy order is the exact log2 of the size ratio, so the
   round-1G/round-4K granularity constants can never drift apart from
   the byte math. *)
let order_of_size bytes =
  if bytes < size_4k || bytes mod size_4k <> 0 then
    invalid_arg "Page.order_of_size: not a whole number of 4 KiB frames";
  let frames = bytes / size_4k in
  if frames land (frames - 1) <> 0 then
    invalid_arg "Page.order_of_size: not a power-of-two frame count";
  let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
  log2 0 frames

let order_4k = order_of_size size_4k
let order_2m = order_of_size size_2m
let order_1g = order_of_size size_1g
let frames_per_2m = 1 lsl order_2m
let frames_per_1g = 1 lsl order_1g
let frames_of_bytes ~bytes = (bytes + size_4k - 1) / size_4k
