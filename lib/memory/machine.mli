(** Machine (host) memory: per-node frame pools behind the statically
    partitioned machine address space.

    The hardware partitions machine frame numbers into NUMA regions:
    node [n] owns frames [\[n * frames_per_node, (n+1) * frames_per_node)],
    so the owning node of any frame is recovered by division — exactly
    the region map CPUs use to route accesses (Section 3 of the paper).

    A [page_scale] of [k] makes every simulated frame stand for [k]
    real 4 KiB frames; policies keep their semantics (round-4K
    interleaves consecutive frames, round-1G allocates 1 GiB regions)
    while big-footprint benchmarks stay tractable.  [page_scale] must
    be a power of two so buddy orders stay aligned. *)

type t

val create : ?page_scale:int -> Numa.Topology.t -> t
(** @raise Invalid_argument if [page_scale] is not a positive power of
    two or does not divide the per-node memory into whole frames. *)

val topology : t -> Numa.Topology.t
val page_scale : t -> int

val set_alloc_veto : t -> (node:Numa.Topology.node -> order:int -> bool) option -> unit
(** Install (or clear) the fault-injection veto consulted by every
    allocation: when it returns [true] the allocation fails as if the
    node's pool were exhausted.  Frees are never vetoed. *)

val frame_bytes : t -> int
(** Bytes covered by one simulated frame ([4096 * page_scale]). *)

val frames_per_node : t -> int
val total_frames : t -> int

val node_of_mfn : t -> Page.mfn -> Numa.Topology.node
(** Owning node by address-range partition.
    @raise Invalid_argument on an out-of-range frame. *)

val order_of_bytes : t -> bytes:int -> int
(** Smallest buddy order (in scaled frames) covering [bytes]. *)

val order_1g : t -> int
(** Buddy order of a 1 GiB region in scaled frames (0 when
    [page_scale] ≥ 2^18). *)

val order_2m : t -> int

val alloc_on : t -> node:Numa.Topology.node -> order:int -> Page.mfn option
(** Allocate a block of [2^order] scaled frames from the given node's
    pool; [None] when that node cannot satisfy the request or the node
    has left the topology's dynamic node mask. *)

val alloc_frame : t -> node:Numa.Topology.node -> Page.mfn option
(** Single-frame allocation ([order = 0]). *)

val alloc_frame_fallback : t -> prefer:Numa.Topology.node -> Page.mfn option
(** Linux-style first-touch allocation: try [prefer], then fall back to
    the other nodes in round-robin order (shared cursor), as Linux does
    when the local node is out of free pages.  Offline (masked-out)
    nodes are skipped.  [None] only when the whole machine is full. *)

val split_block : t -> mfn:Page.mfn -> order:int -> unit
(** Convert an allocated block into per-frame allocations so the frames
    can be freed individually (see {!Buddy.split_allocation}). *)

val free : t -> mfn:Page.mfn -> order:int -> unit
(** @raise Invalid_argument if the block spans two nodes or is free. *)

val free_frames_on : t -> Numa.Topology.node -> int
val free_frames : t -> int

val used_frames_per_node : t -> int array
(** Allocated frames per node — the placement footprint. *)

(** {2 RAS page / node offlining}

    Offlined frames leave the arena permanently (see
    {!Buddy.offline_range}); a frame that is still mapped when the
    offline request arrives retires the moment it is freed. *)

val offline_mfn : t -> Page.mfn -> [ `Offlined | `Pending | `Already ]
(** Retire one machine frame: [`Offlined] if it was free and is gone
    now, [`Pending] if it is allocated and will retire on free,
    [`Already] if it was already retired or pending. *)

val offline_node : t -> Numa.Topology.node -> int * int
(** Retire every frame of the node; returns [(offlined_now, pending)]. *)

val online_node : t -> Numa.Topology.node -> int
(** Undo {!offline_node}; returns frames restored to the free pool. *)

val is_offlined : t -> Page.mfn -> bool
(** The frame is retired (out-of-range frames are [false]). *)

val offlined_frames_on : t -> Numa.Topology.node -> int
val offlined_frames : t -> int
val offline_pending_frames : t -> int
