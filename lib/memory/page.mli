(** Page-size constants and frame-number types.

    Throughout the simulator a {e frame} is one allocation unit of
    machine memory and a {e page} one unit of guest-physical or virtual
    memory; both are [page_size] bytes (4 KiB) times the machine's
    [page_scale].  Frame and page numbers are plain ints; the type
    aliases document intent at interfaces. *)

type mfn = int
(** Machine frame number (an index into machine memory). *)

type pfn = int
(** Guest-physical frame number (an index into a VM's physical
    address space). *)

type vfn = int
(** Virtual frame number (an index into a process address space). *)

val size_4k : int
val size_2m : int
val size_1g : int

val frames_per_2m : int
(** 4 KiB frames per 2 MiB superpage (512). *)

val frames_per_1g : int
(** 4 KiB frames per 1 GiB region (262144). *)

val order_of_size : int -> int
(** Buddy order of a power-of-two block of [bytes]: the exact log2 of
    [bytes / size_4k].  All order constants below are derived through
    this from the {!Sim.Units} sizes, so they cannot drift from the
    byte math.
    @raise Invalid_argument if [bytes] is not a power-of-two multiple
    of {!size_4k}. *)

val order_4k : int
val order_2m : int
(** Buddy order of a 2 MiB block of 4 KiB frames (9). *)

val order_1g : int
(** Buddy order of a 1 GiB block of 4 KiB frames (18). *)

val frames_of_bytes : bytes:int -> int
(** Number of 4 KiB frames covering [bytes], rounded up. *)
