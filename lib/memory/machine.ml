type t = {
  topo : Numa.Topology.t;
  page_scale : int;
  frames_per_node : int;
  pools : Buddy.t array;
  mutable fallback_cursor : int;
  mutable alloc_veto : (node:int -> order:int -> bool) option;
      (* Fault-injection hook: a vetoed allocation fails as if the
         node's pool were exhausted.  Frees are never vetoed, so frame
         accounting stays exact under any veto sequence. *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(page_scale = 1) topo =
  if not (is_power_of_two page_scale) then
    invalid_arg "Machine.create: page_scale must be a positive power of two";
  let frame_bytes = Page.size_4k * page_scale in
  let mem = Numa.Topology.mem_per_node topo in
  if mem mod frame_bytes <> 0 then
    invalid_arg "Machine.create: page_scale does not divide node memory";
  let frames_per_node = mem / frame_bytes in
  let pools =
    Array.init (Numa.Topology.node_count topo) (fun n ->
        Buddy.create ~base:(n * frames_per_node) ~frames:frames_per_node)
  in
  { topo; page_scale; frames_per_node; pools; fallback_cursor = 0; alloc_veto = None }

let set_alloc_veto t veto = t.alloc_veto <- veto

let topology t = t.topo
let page_scale t = t.page_scale
let frame_bytes t = Page.size_4k * t.page_scale
let frames_per_node t = t.frames_per_node
let total_frames t = t.frames_per_node * Numa.Topology.node_count t.topo

let node_of_mfn t mfn =
  if mfn < 0 || mfn >= total_frames t then invalid_arg "Machine.node_of_mfn: out of range";
  mfn / t.frames_per_node

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let order_of_bytes t ~bytes =
  assert (bytes > 0);
  log2_ceil ((bytes + frame_bytes t - 1) / frame_bytes t)

let scaled_order t native_order =
  let scale_order = log2_ceil t.page_scale in
  max 0 (native_order - scale_order)

let order_1g t = scaled_order t Page.order_1g
let order_2m t = scaled_order t Page.order_2m

let alloc_on t ~node ~order =
  assert (node >= 0 && node < Array.length t.pools);
  if not (Numa.Topology.node_online t.topo node) then None
  else begin
    match t.alloc_veto with
    | Some veto when veto ~node ~order -> None
    | Some _ | None -> Buddy.alloc t.pools.(node) ~order
  end

let alloc_frame t ~node = alloc_on t ~node ~order:0

let alloc_frame_fallback t ~prefer =
  match alloc_frame t ~node:prefer with
  | Some mfn -> Some mfn
  | None ->
      let nodes = Numa.Topology.node_count t.topo in
      let rec try_next attempts =
        if attempts = 0 then None
        else begin
          let node = t.fallback_cursor mod nodes in
          t.fallback_cursor <- (t.fallback_cursor + 1) mod nodes;
          if node = prefer || not (Numa.Topology.node_online t.topo node) then
            try_next (attempts - 1)
          else
            match alloc_frame t ~node with
            | Some mfn -> Some mfn
            | None -> try_next (attempts - 1)
        end
      in
      try_next (2 * nodes)

let split_block t ~mfn ~order =
  let node = node_of_mfn t mfn in
  Buddy.split_allocation t.pools.(node) ~base:mfn ~order

let free t ~mfn ~order =
  let node = node_of_mfn t mfn in
  let last = mfn + (1 lsl order) - 1 in
  if node_of_mfn t last <> node then invalid_arg "Machine.free: block spans nodes";
  Buddy.free t.pools.(node) ~base:mfn ~order

let free_frames_on t node =
  assert (node >= 0 && node < Array.length t.pools);
  Buddy.free_frames t.pools.(node)

let free_frames t = Array.fold_left (fun acc pool -> acc + Buddy.free_frames pool) 0 t.pools

let used_frames_per_node t =
  Array.map (fun pool -> Buddy.total_frames pool - Buddy.free_frames pool) t.pools

(* ------------------------------------------------------------------ *)
(* RAS page / node offlining                                           *)
(* ------------------------------------------------------------------ *)

let offline_mfn t mfn =
  let node = node_of_mfn t mfn in
  match Buddy.offline_range t.pools.(node) ~base:mfn ~frames:1 with
  | 1, 0 -> `Offlined
  | 0, 1 -> `Pending
  | _ -> `Already

let offline_node t node =
  assert (node >= 0 && node < Array.length t.pools);
  Buddy.offline_range t.pools.(node) ~base:(node * t.frames_per_node)
    ~frames:t.frames_per_node

let online_node t node =
  assert (node >= 0 && node < Array.length t.pools);
  Buddy.online_range t.pools.(node) ~base:(node * t.frames_per_node)
    ~frames:t.frames_per_node

let is_offlined t mfn =
  mfn >= 0 && mfn < total_frames t
  && Buddy.is_offlined t.pools.(mfn / t.frames_per_node) ~frame:mfn

let offlined_frames_on t node =
  assert (node >= 0 && node < Array.length t.pools);
  Buddy.offlined_frames t.pools.(node)

let offlined_frames t =
  Array.fold_left (fun acc pool -> acc + Buddy.offlined_frames pool) 0 t.pools

let offline_pending_frames t =
  Array.fold_left (fun acc pool -> acc + Buddy.offline_pending_frames pool) 0 t.pools
