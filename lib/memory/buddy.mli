(** Binary buddy allocator over a contiguous range of frame numbers.

    Xen's heap allocator hands out power-of-two blocks of machine
    frames; the round-1G policy asks for order-18 ({!Page.order_1g},
    1 GiB) blocks and falls back to order-9 ({!Page.order_2m}, 2 MiB)
    then order-0 (4 KiB) under fragmentation.  The order constants are
    derived once in {!Page} from the {!Sim.Units} sizes — they are not
    hard-coded here a second time.  This is a faithful buddy system: blocks split on
    allocation and coalesce with their buddy on free. *)

type t

val create : base:int -> frames:int -> t
(** [create ~base ~frames] manages frames [\[base, base + frames)],
    initially all free.  [frames] need not be a power of two; the range
    is covered greedily by maximal aligned power-of-two blocks.
    @raise Invalid_argument if [frames <= 0] or [base < 0]. *)

val max_order : int
(** Largest supported order (20, i.e. 4 GiB blocks of 4 KiB frames). *)

val alloc : t -> order:int -> int option
(** [alloc t ~order] returns the base frame of a free block of
    [2^order] frames, or [None] if no block of that size can be carved.
    Splits larger blocks as needed, preferring the smallest suitable
    block and the lowest address (like Xen's heap). *)

val free : t -> base:int -> order:int -> unit
(** Return a block; coalesces with free buddies.
    @raise Invalid_argument if the block is outside the managed range
    or (detectable) double-free of an aligned block. *)

val split_allocation : t -> base:int -> order:int -> unit
(** Re-register an allocated block of [2^order] frames as [2^order]
    individual order-0 allocations, so its frames can later be freed
    one at a time (Xen's round-1G boot allocation is carved into 4 KiB
    P2M entries that are invalidated and freed individually).
    @raise Invalid_argument if no allocated block of that order starts
    at [base]. *)

val free_frames : t -> int
(** Total free frames. *)

val total_frames : t -> int

val largest_free_order : t -> int option
(** Order of the largest currently-free block, [None] if full. *)

val reserve : t -> base:int -> frames:int -> int
(** [reserve t ~base ~frames] removes the given frame range from the
    free pool (used to model BIOS / I/O holes).  Frames already
    allocated are skipped; returns the number actually reserved. *)

(** {2 RAS page offlining}

    Offlined frames leave the arena for good: they are removed from the
    free sets, can never be re-allocated, and the partition invariant
    becomes free + allocated + offlined = total (pending frames count
    as allocated until freed). *)

val offline_range : t -> base:int -> frames:int -> int * int
(** [offline_range t ~base ~frames] retires the intersection of the
    range with the arena: free frames are offlined immediately,
    allocated frames are marked offline-pending and retire when freed.
    Returns [(offlined_now, pending)].  Idempotent on already-offlined
    or already-pending frames. *)

val online_range : t -> base:int -> frames:int -> int
(** Undo {!offline_range}: offlined frames rejoin the free pool
    (coalescing as usual), pending marks are cancelled.  Returns the
    number of frames restored to the free pool. *)

val offlined_frames : t -> int
(** Frames currently retired from the arena. *)

val offline_pending_frames : t -> int
(** Allocated frames that will retire on free. *)

val is_offlined : t -> frame:int -> bool
(** The frame is retired (out-of-range frames are [false]). *)
