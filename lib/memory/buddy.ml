module Int_set = Set.Make (Int)

let max_order = 20

type t = {
  base : int;
  total : int;
  free_sets : Int_set.t array;  (* free block bases, per order *)
  (* allocated.(f - base) = order + 1 when an allocated block of that
     order starts at frame f; detects double frees and order
     mismatches. *)
  allocated : Bytes.t;
  (* offline.(f - base): '\000' healthy, '\001' offlined (out of the
     arena, never re-allocated), '\002' offline pending — the frame was
     allocated when the offline request arrived and converts to
     offlined the moment it is freed. *)
  offline : Bytes.t;
  mutable free : int;
  mutable offlined : int;
  mutable offline_pending : int;
}

let block_frames order = 1 lsl order

let add_block t ~base ~order =
  t.free_sets.(order) <- Int_set.add base t.free_sets.(order)

let create ~base ~frames =
  if frames <= 0 then invalid_arg "Buddy.create: frames must be positive";
  if base < 0 then invalid_arg "Buddy.create: negative base";
  let t =
    { base; total = frames; free_sets = Array.make (max_order + 1) Int_set.empty;
      allocated = Bytes.make frames '\000'; offline = Bytes.make frames '\000';
      free = 0; offlined = 0; offline_pending = 0 }
  in
  let trailing_zeros n =
    let rec tz n i = if n land 1 = 1 then i else tz (n lsr 1) (i + 1) in
    if n = 0 then max_order else tz n 0
  in
  (* Greedy cover by maximal aligned power-of-two blocks. *)
  let cur = ref base and stop = base + frames in
  while !cur < stop do
    let align_order = min max_order (trailing_zeros !cur) in
    let rec fit o = if o > 0 && !cur + block_frames o > stop then fit (o - 1) else o in
    let order = fit align_order in
    add_block t ~base:!cur ~order;
    t.free <- t.free + block_frames order;
    cur := !cur + block_frames order
  done;
  assert (t.free = frames);
  t

let free_frames t = t.free
let total_frames t = t.total
let offlined_frames t = t.offlined
let offline_pending_frames t = t.offline_pending

let offline_state t frame = Bytes.get t.offline (frame - t.base)

let is_offlined t ~frame =
  frame >= t.base && frame < t.base + t.total && offline_state t frame = '\001'

let largest_free_order t =
  let rec scan o = if o < 0 then None else if Int_set.is_empty t.free_sets.(o) then scan (o - 1) else Some o in
  scan max_order

let alloc t ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.alloc: bad order";
  let rec find o =
    if o > max_order then None
    else if Int_set.is_empty t.free_sets.(o) then find (o + 1)
    else Some o
  in
  match find order with
  | None -> None
  | Some found ->
      let block = Int_set.min_elt t.free_sets.(found) in
      t.free_sets.(found) <- Int_set.remove block t.free_sets.(found);
      (* Split down to the requested order, freeing the upper halves. *)
      let rec split o =
        if o > order then begin
          let o' = o - 1 in
          add_block t ~base:(block + block_frames o') ~order:o';
          split o'
        end
      in
      split found;
      t.free <- t.free - block_frames order;
      Bytes.set t.allocated (block - t.base) (Char.chr (order + 1));
      Some block

let split_allocation t ~base ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.split_allocation: bad order";
  (match Char.code (Bytes.get t.allocated (base - t.base)) with
  | 0 -> invalid_arg "Buddy.split_allocation: block not allocated"
  | tag when tag - 1 <> order -> invalid_arg "Buddy.split_allocation: order mismatch"
  | _ -> ());
  for f = base to base + block_frames order - 1 do
    Bytes.set t.allocated (f - t.base) '\001'
  done

let in_range t ~base ~order =
  base >= t.base && base + block_frames order <= t.base + t.total

let rec coalesce t base order =
  if order >= max_order then add_block t ~base ~order
  else begin
    let buddy = base lxor block_frames order in
    if Int_set.mem buddy t.free_sets.(order) && in_range t ~base:(min base buddy) ~order:(order + 1)
    then begin
      t.free_sets.(order) <- Int_set.remove buddy t.free_sets.(order);
      coalesce t (min base buddy) (order + 1)
    end
    else add_block t ~base ~order
  end

let free t ~base ~order =
  if order < 0 || order > max_order then invalid_arg "Buddy.free: bad order";
  if not (in_range t ~base ~order) then invalid_arg "Buddy.free: block out of range";
  (match Char.code (Bytes.get t.allocated (base - t.base)) with
  | 0 -> invalid_arg "Buddy.free: double free"
  | tag when tag - 1 <> order -> invalid_arg "Buddy.free: order mismatch"
  | _ -> ());
  Bytes.set t.allocated (base - t.base) '\000';
  let pending = ref false in
  for f = base to base + block_frames order - 1 do
    if offline_state t f = '\002' then pending := true
  done;
  if not !pending then begin
    t.free <- t.free + block_frames order;
    coalesce t base order
  end
  else begin
    (* An offline request arrived while the block was allocated: the
       pending frames leave the arena now instead of returning to the
       free pool; any healthy frames of a mixed block come back one at
       a time (coalescing as usual). *)
    for f = base to base + block_frames order - 1 do
      if offline_state t f = '\002' then begin
        Bytes.set t.offline (f - t.base) '\001';
        t.offline_pending <- t.offline_pending - 1;
        t.offlined <- t.offlined + 1
      end
      else begin
        t.free <- t.free + 1;
        coalesce t f 0
      end
    done
  end

let reserve t ~base ~frames =
  let lo = base and hi = base + frames in
  let reserved = ref 0 in
  (* Recursively carve the intersection of a free block with [lo,hi). *)
  let rec carve block order =
    let b_lo = block and b_hi = block + block_frames order in
    if b_hi <= lo || b_lo >= hi then begin
      add_block t ~base:block ~order
    end
    else if b_lo >= lo && b_hi <= hi then begin
      reserved := !reserved + block_frames order;
      t.free <- t.free - block_frames order
    end
    else begin
      assert (order > 0);
      let o' = order - 1 in
      carve block o';
      carve (block + block_frames o') o'
    end
  in
  for order = 0 to max_order do
    let overlapping =
      Int_set.filter
        (fun block -> block < hi && block + block_frames order > lo)
        t.free_sets.(order)
    in
    Int_set.iter
      (fun block ->
        t.free_sets.(order) <- Int_set.remove block t.free_sets.(order);
        carve block order)
      overlapping
  done;
  !reserved

let offline_range t ~base ~frames =
  if frames < 0 then invalid_arg "Buddy.offline_range: negative frames";
  let lo = max base t.base and hi = min (base + frames) (t.base + t.total) in
  if lo >= hi then (0, 0)
  else begin
    let offlined_now = ref 0 in
    (* Carve every free block intersecting [lo, hi): the in-range part
       leaves the arena as offlined frames, the rest re-enters the free
       sets (same recursion as [reserve]). *)
    let rec carve block order =
      let b_lo = block and b_hi = block + block_frames order in
      if b_hi <= lo || b_lo >= hi then add_block t ~base:block ~order
      else if b_lo >= lo && b_hi <= hi then begin
        for f = b_lo to b_hi - 1 do
          Bytes.set t.offline (f - t.base) '\001'
        done;
        offlined_now := !offlined_now + block_frames order;
        t.free <- t.free - block_frames order;
        t.offlined <- t.offlined + block_frames order
      end
      else begin
        assert (order > 0);
        let o' = order - 1 in
        carve block o';
        carve (block + block_frames o') o'
      end
    in
    for order = 0 to max_order do
      let overlapping =
        Int_set.filter
          (fun block -> block < hi && block + block_frames order > lo)
          t.free_sets.(order)
      in
      Int_set.iter
        (fun block ->
          t.free_sets.(order) <- Int_set.remove block t.free_sets.(order);
          carve block order)
        overlapping
    done;
    (* Whatever in-range frame is still healthy must be allocated:
       mark it offline-pending so [free] retires it instead of
       recycling it. *)
    let pending = ref 0 in
    for f = lo to hi - 1 do
      if offline_state t f = '\000' then begin
        Bytes.set t.offline (f - t.base) '\002';
        t.offline_pending <- t.offline_pending + 1;
        incr pending
      end
    done;
    (!offlined_now, !pending)
  end

let online_range t ~base ~frames =
  if frames < 0 then invalid_arg "Buddy.online_range: negative frames";
  let lo = max base t.base and hi = min (base + frames) (t.base + t.total) in
  let restored = ref 0 in
  for f = lo to hi - 1 do
    match offline_state t f with
    | '\001' ->
        Bytes.set t.offline (f - t.base) '\000';
        t.offlined <- t.offlined - 1;
        t.free <- t.free + 1;
        coalesce t f 0;
        incr restored
    | '\002' ->
        (* Cancel a pending offline: the frame stays allocated and will
           return to the free pool normally. *)
        Bytes.set t.offline (f - t.base) '\000';
        t.offline_pending <- t.offline_pending - 1
    | _ -> ()
  done;
  !restored
