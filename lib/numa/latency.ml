type level = L1 | L2 | L3

type t = {
  l1_cycles : float;
  l2_cycles : float;
  l3_cycles : float;
  mem_base_cycles : float array;
  mem_contended_delta : float array;
  contention_exponent : float;
  freq_hz : float;
}

let create ?(l1_cycles = 5.0) ?(l2_cycles = 16.0) ?(l3_cycles = 48.0)
    ?(contention_exponent = 2.0) ~mem_base_cycles ~mem_contended_delta ~freq_hz () =
  if Array.length mem_base_cycles = 0 then
    invalid_arg "Latency.create: empty mem_base_cycles";
  if Array.length mem_base_cycles <> Array.length mem_contended_delta then
    invalid_arg "Latency.create: base/delta length mismatch";
  if freq_hz <= 0.0 then invalid_arg "Latency.create: freq_hz must be positive";
  { l1_cycles; l2_cycles; l3_cycles; mem_base_cycles; mem_contended_delta;
    contention_exponent; freq_hz }

let cache_cycles t = function
  | L1 -> t.l1_cycles
  | L2 -> t.l2_cycles
  | L3 -> t.l3_cycles

let max_hops t = Array.length t.mem_base_cycles - 1

let mem_cycles t ~hops ~saturation =
  let hops = min hops (max_hops t) in
  assert (hops >= 0);
  let s = Float.max 0.0 (Float.min 1.0 saturation) in
  (* [( ** )] goes through pow(); the default quadratic exponent is a
     single multiply.  (s ** 2.0 = s *. s exactly for finite s.) *)
  let contended =
    if t.contention_exponent = 2.0 then s *. s else s ** t.contention_exponent
  in
  t.mem_base_cycles.(hops) +. (t.mem_contended_delta.(hops) *. contended)

let seconds t ~cycles = cycles /. t.freq_hz

let access_seconds t ~hops ~saturation =
  seconds t ~cycles:(mem_cycles t ~hops ~saturation)
