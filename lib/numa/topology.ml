type node = int
type cpu = int

type link = { link_id : int; src : node; dst : node; gib_per_s : float }

type t = {
  nodes : int;
  cpus_per_node : int;
  mem_per_node : int;
  controller_gib_per_s : float;
  links : link array;
  (* adjacency.(n) lists (neighbour, link_id) sorted by neighbour. *)
  adjacency : (node * int) list array;
  (* routes.(src * nodes + dst) is the directed link path. *)
  routes : link list array;
  distances : int array;
  (* node_cpus.(n) is the precomputed CPU id range of node n; shared,
     callers must not mutate. *)
  node_cpus : cpu array array;
  (* node_mask.(n) = '\001' while node n may be chosen as a placement
     destination.  Dynamic RAS state: node failure clears the bit and
     every policy consults it before picking a node.  Each run builds
     its own topology, so mutating the mask never crosses runs. *)
  node_mask : Bytes.t;
}

let node_count t = t.nodes
let cpu_count t = t.nodes * t.cpus_per_node
let cpus_per_node t = t.cpus_per_node
let mem_per_node t = t.mem_per_node
let total_mem t = t.nodes * t.mem_per_node
let controller_gib_per_s t = t.controller_gib_per_s
let links t = t.links

let node_of_cpu t c =
  assert (c >= 0 && c < cpu_count t);
  c / t.cpus_per_node

let cpu_array_of_node t n =
  assert (n >= 0 && n < t.nodes);
  t.node_cpus.(n)

let neighbours_of adjacency n = List.map fst adjacency.(n)

(* Deterministic BFS from [src]: visits neighbours in increasing node
   order, which emulates a static routing table.  Returns predecessor
   link for each reached node. *)
let bfs adjacency nodes src =
  let pred = Array.make nodes (-1) in
  let dist = Array.make nodes max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun (v, link_id) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          pred.(v) <- link_id;
          Queue.add v queue
        end)
      adjacency.(u)
  done;
  (pred, dist)

let create ~nodes ~cpus_per_node ~mem_per_node ~controller_gib_per_s ~links:link_spec =
  if nodes <= 0 then invalid_arg "Topology.create: nodes must be positive";
  if cpus_per_node <= 0 then invalid_arg "Topology.create: cpus_per_node must be positive";
  let directed =
    List.concat_map
      (fun (a, b, gib) ->
        if a < 0 || a >= nodes || b < 0 || b >= nodes || a = b then
          invalid_arg "Topology.create: bad link endpoint";
        if gib <= 0.0 then invalid_arg "Topology.create: bad link bandwidth";
        [ (a, b, gib); (b, a, gib) ])
      link_spec
  in
  let links =
    Array.of_list
      (List.mapi (fun link_id (src, dst, gib_per_s) -> { link_id; src; dst; gib_per_s }) directed)
  in
  let adjacency = Array.make nodes [] in
  Array.iter (fun l -> adjacency.(l.src) <- (l.dst, l.link_id) :: adjacency.(l.src)) links;
  Array.iteri
    (fun i l -> adjacency.(i) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
    adjacency;
  let routes = Array.make (nodes * nodes) [] in
  let distances = Array.make (nodes * nodes) 0 in
  for src = 0 to nodes - 1 do
    let pred, dist = bfs adjacency nodes src in
    for dst = 0 to nodes - 1 do
      if dst <> src then begin
        if dist.(dst) = max_int then invalid_arg "Topology.create: disconnected link graph";
        let rec path acc v =
          if v = src then acc
          else begin
            let l = links.(pred.(v)) in
            path (l :: acc) l.src
          end
        in
        routes.((src * nodes) + dst) <- path [] dst;
        distances.((src * nodes) + dst) <- dist.(dst)
      end
    done
  done;
  let node_cpus =
    Array.init nodes (fun n -> Array.init cpus_per_node (fun i -> (n * cpus_per_node) + i))
  in
  { nodes; cpus_per_node; mem_per_node; controller_gib_per_s; links; adjacency; routes;
    distances; node_cpus; node_mask = Bytes.make nodes '\001' }

let distance t src dst =
  assert (src >= 0 && src < t.nodes && dst >= 0 && dst < t.nodes);
  t.distances.((src * t.nodes) + dst)

let diameter t =
  Array.fold_left max 0 t.distances

let route t src dst =
  assert (src >= 0 && src < t.nodes && dst >= 0 && dst < t.nodes);
  t.routes.((src * t.nodes) + dst)

let neighbours t n =
  assert (n >= 0 && n < t.nodes);
  neighbours_of t.adjacency n

let node_online t n =
  assert (n >= 0 && n < t.nodes);
  Bytes.get t.node_mask n = '\001'

let set_node_online t n online =
  assert (n >= 0 && n < t.nodes);
  Bytes.set t.node_mask n (if online then '\001' else '\000')

let online_nodes t =
  let count = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr count) t.node_mask;
  !count

let pp fmt t =
  Format.fprintf fmt "@[<v>%d nodes x %d CPUs, %a per node, controller %.1f GiB/s@,"
    t.nodes t.cpus_per_node Sim.Units.pp_bytes t.mem_per_node t.controller_gib_per_s;
  Array.iter
    (fun l ->
      if l.src < l.dst then
        Format.fprintf fmt "link %d<->%d: %.1f GiB/s@," l.src l.dst l.gib_per_s)
    t.links;
  Format.fprintf fmt "diameter %d hops@]" (diameter t)
