(** NUMA machine topology: nodes, CPUs, interconnect links, routing.

    A machine is a set of NUMA nodes, each holding CPUs and a memory
    bank behind a memory controller, connected by directed interconnect
    links (HyperTransport on the paper's AMD48).  Memory accesses from a
    CPU of node [src] to memory of node [dst] follow the precomputed
    shortest route and consume bandwidth on every traversed link. *)

type node = int
(** NUMA node identifier, [0 .. node_count - 1]. *)

type cpu = int
(** Global CPU identifier, [0 .. cpu_count - 1]. *)

type link = private {
  link_id : int;
  src : node;
  dst : node;
  gib_per_s : float;  (** Capacity of this direction of the link. *)
}

type t

val create :
  nodes:int ->
  cpus_per_node:int ->
  mem_per_node:int ->
  controller_gib_per_s:float ->
  links:(node * node * float) list ->
  t
(** [create ~nodes ~cpus_per_node ~mem_per_node ~controller_gib_per_s ~links]
    builds a topology.  Each [(a, b, gib)] in [links] declares a
    bidirectional link realised as two directed links of capacity [gib]
    each.  The link graph must connect all nodes.  [mem_per_node] is in
    bytes.
    @raise Invalid_argument if the graph is disconnected or a link
    endpoint is out of range. *)

val node_count : t -> int
val cpu_count : t -> int
val cpus_per_node : t -> int
val mem_per_node : t -> int
val total_mem : t -> int
val controller_gib_per_s : t -> float

val node_of_cpu : t -> cpu -> node
(** CPUs are numbered node-major: CPU [c] lives on node
    [c / cpus_per_node]. *)

val cpu_array_of_node : t -> node -> cpu array
(** The node's CPU ids as a precomputed array, built once at topology
    creation: O(1), allocation-free.  The array is shared — do not
    mutate it.  (The deprecated list-allocating [cpus_of_node] variant
    has been removed; wrap this in [Array.to_list] if a list is really
    wanted.) *)

val links : t -> link array
(** All directed links, indexed by [link_id]. *)

val distance : t -> node -> node -> int
(** Hop count of the shortest route; 0 for a local access. *)

val diameter : t -> int

val route : t -> node -> node -> link list
(** Directed links traversed from [src] to [dst], in order; [\[\]] when
    [src = dst].  Routes are deterministic (lowest-neighbour-first
    breadth-first search), matching static HT routing tables. *)

val neighbours : t -> node -> node list

(** {2 Dynamic node mask (RAS)}

    Every node starts online.  A failing or offlined node is removed
    from the mask and every placement policy (interleave, round-1g/4k,
    first-touch, Carrefour decide) must skip it when choosing a
    destination.  The mask is per-topology mutable state; each run
    builds its own topology, so runs never observe each other. *)

val node_online : t -> node -> bool

val set_node_online : t -> node -> bool -> unit

val online_nodes : t -> int
(** Number of nodes currently in the mask. *)

val pp : Format.formatter -> t -> unit
