(** Fault-injection plans: which fault sites fire, at which rate,
    during which epoch window.

    A plan is pure data — deciding {e whether} a given fault actually
    fires is the {!Injector}'s job, through its own deterministic
    random stream.  Plans compose: a plan is a list of specs and every
    active spec gets an independent chance to fire, so
    ["alloc=0.1,alloc=0.1"] fires more often than ["alloc=0.1"]. *)

type window = {
  from_epoch : int;  (** First epoch (inclusive) the spec is armed. *)
  until_epoch : int option;  (** First epoch it is disarmed; [None] = forever. *)
}

val always : window
(** [{ from_epoch = 0; until_epoch = None }] — armed for the whole run
    (boot-time population happens at epoch [-1] and is never armed). *)

type site =
  | Alloc_flaky of float
      (** Every machine frame allocation fails with this probability
          (transient memory pressure; fallback paths still run). *)
  | Node_offline of Numa.Topology.node
      (** Persistent exhaustion: that node's pool refuses every
          allocation while the window is armed. *)
  | Migrate_enomem of float
      (** The target-node allocation inside [migrate_page] fails with
          this probability ([migrate=1.0] = 100 % migration failure). *)
  | Batch_loss of float
      (** A flushed page-ops batch is lost in transit: the hypercall is
          charged but the queue is never replayed. *)
  | Op_drop of float
      (** Queue overflow: an op is dropped at [Pv_queue.record] time. *)
  | Hypercall_flaky of float
      (** Transient hypercall failure; the guest retries immediately
          and pays the entry cost twice. *)
  | Iommu_storm of float
      (** A passthrough DMA transfer aborts with an asynchronous IOMMU
          fault even though every buffer page is mapped. *)
  | Vcpu_stall of float
      (** A running vCPU makes no progress for one epoch (interrupt
          storm, co-scheduling hiccup). *)
  | Ecc_ce of float
      (** Correctable ECC error on a random mapped pfn each epoch with
          this probability: the frame is scrubbed in place (latency
          penalty), nothing moves. *)
  | Ecc_ue of float
      (** Uncorrectable ECC error on a random mapped pfn: the backing
          mfn must be offlined and the guest frame remapped onto a
          fresh frame. *)
  | Node_fail of float
      (** A whole node starts failing: its memory bandwidth collapses
          by [rate] over the armed window (the drain window, default 50
          epochs when [UNTIL] is omitted), the node leaves the dynamic
          {!Numa.Topology} node mask at [FROM], and at [rate >= 1.0] it
          is permanently offlined once the window closes.  The target
          node is drawn deterministically by the injector. *)

type spec = { site : site; window : window }

type t = spec list

val empty : t

val is_empty : t -> bool

val spec : ?from_epoch:int -> ?until_epoch:int -> site -> spec
(** Build a spec; the window defaults to {!always}. *)

val validate : t -> (t, string) result
(** Check every rate is within [0, 1] and every window well-formed. *)

val valid_site_names : string list
(** Every site name {!of_string} accepts, in declaration order — the
    list quoted by the unknown-site parse error. *)

val site_name : site -> string
(** Canonical token for the site ([Node_fail _] is ["node_fail"]). *)

val of_string : string -> (t, string) result
(** Parse a comma-separated plan.  Each element is
    [site=value\[\@FROM\[-UNTIL\]\]] where [site] is one of [alloc],
    [node-off], [migrate], [batch-loss], [op-drop], [hypercall],
    [iommu], [stall], [ecc-ce], [ecc-ue], [node_fail] ([node-fail] is
    accepted as an alias); [value] is a rate in [0, 1] (a node id for
    [node-off]); [FROM]/[UNTIL] bound the armed epochs ([UNTIL]
    exclusive, open-ended when omitted).  An unknown site name is an
    error that lists every valid site.  Examples:
    ["migrate=1.0"], ["alloc=0.3\@50-150,stall=0.01"],
    ["node-off=2\@100-"], ["node_fail=1.0\@50-150"]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed plan. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val pp : Format.formatter -> t -> unit
