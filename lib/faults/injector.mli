(** Deterministic fault injector.

    One injector per run: it owns a private splitmix64 stream derived
    from the run seed (never shared with the workload RNGs), walks the
    {!Plan} on every query, and counts what it injected.  Because every
    run builds its own injector from its own seed, grid sweeps stay
    bit-reproducible at any worker count — the same guarantee
    [Runs.task_seed] gives the experiment grids.

    Queries only draw from the stream while at least one matching spec
    is armed for the current epoch, so an empty (or dormant) plan
    perturbs nothing. *)

type stats = {
  mutable alloc_failures : int;   (** Vetoed machine-frame allocations. *)
  mutable migrate_failures : int; (** Injected migrate-target ENOMEMs. *)
  mutable batches_lost : int;     (** Page-ops batches lost in transit. *)
  mutable ops_dropped : int;      (** Queue ops dropped on overflow. *)
  mutable hypercall_errors : int; (** Transient hypercall failures. *)
  mutable iommu_faults : int;     (** Injected asynchronous IOMMU faults. *)
  mutable vcpu_stalls : int;      (** Stolen vCPU epochs. *)
  mutable ecc_ce_errors : int;    (** Correctable ECC errors (scrubbed). *)
  mutable ecc_ue_errors : int;    (** Uncorrectable ECC errors (offlined). *)
  mutable node_failures : int;    (** Nodes that entered the failing state. *)
}

type t

val create : seed:int -> Plan.t -> t
(** The injector's stream is a pure function of [seed]; epoch starts at
    [-1] (boot), where no spec is ever armed. *)

val plan : t -> Plan.t
val enabled : t -> bool
(** [false] for an empty plan: every query is a constant [false]. *)

val set_epoch : t -> int -> unit
(** Advance the injection clock; windows are evaluated against it. *)

val epoch : t -> int

val next_armed_epoch : t -> after:int -> int option
(** Earliest epoch [>= after] at which any spec window (or resolved
    node-failure window, including the forever-armed tail of a
    permanent failure) is armed; [None] when no window can ever arm
    again.  Pure — no draws and no dependence on the injection clock —
    so callers may probe arbitrary horizons (the engine bounds its
    fast-forward spans with it) without perturbing the stream. *)

(* Per-site queries: [true] means the fault fires now.  Each query
   updates {!stats} when it fires. *)

val alloc_fails : t -> node:Numa.Topology.node -> bool
val migrate_fails : t -> bool
val batch_lost : t -> ops:int -> bool
val op_dropped : t -> bool
val hypercall_fails : t -> bool
val iommu_faults : t -> bool
val vcpu_stalls : t -> bool

(** {2 Hardware RAS: ECC errors and node failure} *)

val default_drain_window : int
(** Epochs a [node_fail] drain window spans when the plan omits
    [UNTIL] (50). *)

val assign_node_targets : t -> ?candidates:int array -> nodes:int -> unit -> unit
(** Draw the target node of every [Node_fail] spec from the private
    stream, once, in plan order — call before epoch 0.  A non-empty
    [candidates] restricts the draw to those nodes (the engine passes
    the union of guest home nodes, so a failure always lands where
    memory lives); exactly one draw per spec either way.  Idempotent:
    later calls never re-draw. *)

val node_failing : t -> node:Numa.Topology.node -> bool
(** The node is inside an armed failing window (or permanently failed).
    No draws; failing nodes also veto allocations via
    {!alloc_fails}. *)

val node_offline : t -> node:Numa.Topology.node -> bool
(** A permanent ([rate >= 1.0]) failure's drain window has closed: the
    node is gone for good. *)

val node_bandwidth_factor : t -> node:Numa.Topology.node -> float
(** Bandwidth multiplier in [\[0, 1\]]: 1.0 while healthy, collapsing
    linearly towards [1 - rate] across the drain window.  Pure — no
    draws. *)

val node_fail_targets : t -> Numa.Topology.node list
(** Target nodes of the plan's [Node_fail] specs, in plan order (empty
    until {!assign_node_targets} ran). *)

type ecc_event = Ce of int | Ue of int  (** pfn payload *)

val ecc_events : t -> frames:int -> ecc_event list
(** Per-epoch ECC draws for one domain of [frames] guest frames, in
    plan order.  Every armed ECC spec draws a bernoulli {e and} a
    uniform pfn whether or not it fires, so the stream advance is a
    function of the plan and epoch alone.  Call from the sequential
    section only (fault runs force [--inner-jobs 1]). *)

val stats : t -> stats
val total_injected : t -> int

val install : t -> Xen.System.t -> unit
(** Arm the hypervisor-side fault sites: the machine allocator veto
    (transient flakiness and offline nodes) and the
    {!Xen.System.fault_hooks} consulted by the internal interface, the
    hypercall layer and the IOMMU. *)

val install_queue : t -> Guest.Pv_queue.t -> unit
(** Arm the guest-side queue sites (op drop, batch loss) on a
    para-virtualized queue. *)
