(** Deterministic fault injector.

    One injector per run: it owns a private splitmix64 stream derived
    from the run seed (never shared with the workload RNGs), walks the
    {!Plan} on every query, and counts what it injected.  Because every
    run builds its own injector from its own seed, grid sweeps stay
    bit-reproducible at any worker count — the same guarantee
    [Runs.task_seed] gives the experiment grids.

    Queries only draw from the stream while at least one matching spec
    is armed for the current epoch, so an empty (or dormant) plan
    perturbs nothing. *)

type stats = {
  mutable alloc_failures : int;   (** Vetoed machine-frame allocations. *)
  mutable migrate_failures : int; (** Injected migrate-target ENOMEMs. *)
  mutable batches_lost : int;     (** Page-ops batches lost in transit. *)
  mutable ops_dropped : int;      (** Queue ops dropped on overflow. *)
  mutable hypercall_errors : int; (** Transient hypercall failures. *)
  mutable iommu_faults : int;     (** Injected asynchronous IOMMU faults. *)
  mutable vcpu_stalls : int;      (** Stolen vCPU epochs. *)
}

type t

val create : seed:int -> Plan.t -> t
(** The injector's stream is a pure function of [seed]; epoch starts at
    [-1] (boot), where no spec is ever armed. *)

val plan : t -> Plan.t
val enabled : t -> bool
(** [false] for an empty plan: every query is a constant [false]. *)

val set_epoch : t -> int -> unit
(** Advance the injection clock; windows are evaluated against it. *)

val epoch : t -> int

(* Per-site queries: [true] means the fault fires now.  Each query
   updates {!stats} when it fires. *)

val alloc_fails : t -> node:Numa.Topology.node -> bool
val migrate_fails : t -> bool
val batch_lost : t -> ops:int -> bool
val op_dropped : t -> bool
val hypercall_fails : t -> bool
val iommu_faults : t -> bool
val vcpu_stalls : t -> bool

val stats : t -> stats
val total_injected : t -> int

val install : t -> Xen.System.t -> unit
(** Arm the hypervisor-side fault sites: the machine allocator veto
    (transient flakiness and offline nodes) and the
    {!Xen.System.fault_hooks} consulted by the internal interface, the
    hypercall layer and the IOMMU. *)

val install_queue : t -> Guest.Pv_queue.t -> unit
(** Arm the guest-side queue sites (op drop, batch loss) on a
    para-virtualized queue. *)
