type stats = {
  mutable alloc_failures : int;
  mutable migrate_failures : int;
  mutable batches_lost : int;
  mutable ops_dropped : int;
  mutable hypercall_errors : int;
  mutable iommu_faults : int;
  mutable vcpu_stalls : int;
}

type t = {
  plan : Plan.t;
  rng : Sim.Rng.t;
  mutable epoch : int;
  stats : stats;
}

let fresh_stats () =
  {
    alloc_failures = 0;
    migrate_failures = 0;
    batches_lost = 0;
    ops_dropped = 0;
    hypercall_errors = 0;
    iommu_faults = 0;
    vcpu_stalls = 0;
  }

let create ~seed plan =
  (match Plan.validate plan with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Faults.Injector.create: " ^ msg));
  (* A private stream: split once so the injector state is decorrelated
     from any workload stream built from the same base seed. *)
  let rng = Sim.Rng.split (Sim.Rng.create ~seed:(seed lxor 0x5DEECE66)) in
  { plan; rng; epoch = -1; stats = fresh_stats () }

let plan t = t.plan
let enabled t = not (Plan.is_empty t.plan)
let set_epoch t epoch = t.epoch <- epoch
let epoch t = t.epoch
let stats t = t.stats

let total_injected t =
  let s = t.stats in
  s.alloc_failures + s.migrate_failures + s.batches_lost + s.ops_dropped
  + s.hypercall_errors + s.iommu_faults + s.vcpu_stalls

let armed t (w : Plan.window) =
  t.epoch >= w.Plan.from_epoch
  && (match w.Plan.until_epoch with None -> true | Some u -> t.epoch < u)

(* Fold the plan: every armed matching spec draws independently, and
   the fault fires if any draw does.  Draw-per-spec (no short-circuit)
   keeps the stream advance a function of the plan and epoch alone. *)
let query t ~f =
  List.fold_left
    (fun fired (s : Plan.spec) ->
      if not (armed t s.Plan.window) then fired
      else begin
        match f s.Plan.site with
        | None -> fired
        | Some rate -> Sim.Rng.bernoulli t.rng rate || fired
      end)
    false t.plan

let alloc_fails t ~node =
  let offline =
    List.exists
      (fun (s : Plan.spec) ->
        match s.Plan.site with
        | Plan.Node_offline n -> n = node && armed t s.Plan.window
        | _ -> false)
      t.plan
  in
  let flaky =
    query t ~f:(function Plan.Alloc_flaky r -> Some r | _ -> None)
  in
  let fired = offline || flaky in
  if fired then t.stats.alloc_failures <- t.stats.alloc_failures + 1;
  fired

let migrate_fails t =
  let fired = query t ~f:(function Plan.Migrate_enomem r -> Some r | _ -> None) in
  if fired then t.stats.migrate_failures <- t.stats.migrate_failures + 1;
  fired

let batch_lost t ~ops =
  let fired = query t ~f:(function Plan.Batch_loss r -> Some r | _ -> None) in
  if fired then begin
    t.stats.batches_lost <- t.stats.batches_lost + 1;
    t.stats.ops_dropped <- t.stats.ops_dropped + ops
  end;
  fired

let op_dropped t =
  let fired = query t ~f:(function Plan.Op_drop r -> Some r | _ -> None) in
  if fired then t.stats.ops_dropped <- t.stats.ops_dropped + 1;
  fired

let hypercall_fails t =
  let fired = query t ~f:(function Plan.Hypercall_flaky r -> Some r | _ -> None) in
  if fired then t.stats.hypercall_errors <- t.stats.hypercall_errors + 1;
  fired

let iommu_faults t =
  let fired = query t ~f:(function Plan.Iommu_storm r -> Some r | _ -> None) in
  if fired then t.stats.iommu_faults <- t.stats.iommu_faults + 1;
  fired

let vcpu_stalls t =
  let fired = query t ~f:(function Plan.Vcpu_stall r -> Some r | _ -> None) in
  if fired then t.stats.vcpu_stalls <- t.stats.vcpu_stalls + 1;
  fired

let install t (system : Xen.System.t) =
  if enabled t then begin
    Memory.Machine.set_alloc_veto system.Xen.System.machine
      (Some (fun ~node ~order:_ -> alloc_fails t ~node));
    let hooks = system.Xen.System.faults in
    hooks.Xen.System.migrate_alloc_fails <- (fun () -> migrate_fails t);
    hooks.Xen.System.hypercall_transient <- (fun () -> hypercall_fails t);
    hooks.Xen.System.iommu_fault <- (fun _ -> iommu_faults t);
    hooks.Xen.System.batch_lost <- (fun ops -> batch_lost t ~ops)
  end

(* Batch loss is NOT installed here: the queue's flush handler is the
   page-ops hypercall, which already consults [System.faults.batch_lost]
   — wiring [lose_batch] too would draw twice per batch. *)
let install_queue t queue =
  if enabled t then Guest.Pv_queue.set_fault_hooks queue ~drop_op:(fun _ -> op_dropped t) ()
