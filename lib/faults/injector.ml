type stats = {
  mutable alloc_failures : int;
  mutable migrate_failures : int;
  mutable batches_lost : int;
  mutable ops_dropped : int;
  mutable hypercall_errors : int;
  mutable iommu_faults : int;
  mutable vcpu_stalls : int;
  mutable ecc_ce_errors : int;
  mutable ecc_ue_errors : int;
  mutable node_failures : int;
}

(* One record per [Node_fail] spec, with the window resolved ([until]
   defaults to [from + default_drain_window]) and the target node drawn
   once by [assign_node_targets]. *)
type node_fault = {
  rate : float;
  from_epoch : int;
  until_epoch : int;
  permanent : bool;
  mutable target : int;
  mutable counted : bool;
}

type t = {
  plan : Plan.t;
  rng : Sim.Rng.t;
  mutable epoch : int;
  stats : stats;
  node_faults : node_fault list;
  mutable targets_assigned : bool;
}

let default_drain_window = 50

let fresh_stats () =
  {
    alloc_failures = 0;
    migrate_failures = 0;
    batches_lost = 0;
    ops_dropped = 0;
    hypercall_errors = 0;
    iommu_faults = 0;
    vcpu_stalls = 0;
    ecc_ce_errors = 0;
    ecc_ue_errors = 0;
    node_failures = 0;
  }

let node_faults_of_plan plan =
  List.filter_map
    (fun (s : Plan.spec) ->
      match s.Plan.site with
      | Plan.Node_fail rate ->
          let from_epoch = s.Plan.window.Plan.from_epoch in
          let until_epoch =
            match s.Plan.window.Plan.until_epoch with
            | Some u -> u
            | None -> from_epoch + default_drain_window
          in
          Some
            { rate; from_epoch; until_epoch; permanent = rate >= 1.0;
              target = -1; counted = false }
      | _ -> None)
    plan

let create ~seed plan =
  (match Plan.validate plan with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Faults.Injector.create: " ^ msg));
  (* A private stream: split once so the injector state is decorrelated
     from any workload stream built from the same base seed. *)
  let rng = Sim.Rng.split (Sim.Rng.create ~seed:(seed lxor 0x5DEECE66)) in
  { plan; rng; epoch = -1; stats = fresh_stats ();
    node_faults = node_faults_of_plan plan; targets_assigned = false }

let plan t = t.plan
let enabled t = not (Plan.is_empty t.plan)
let set_epoch t epoch = t.epoch <- epoch
let epoch t = t.epoch
let stats t = t.stats

let total_injected t =
  let s = t.stats in
  s.alloc_failures + s.migrate_failures + s.batches_lost + s.ops_dropped
  + s.hypercall_errors + s.iommu_faults + s.vcpu_stalls
  + s.ecc_ce_errors + s.ecc_ue_errors + s.node_failures

let armed t (w : Plan.window) =
  t.epoch >= w.Plan.from_epoch
  && (match w.Plan.until_epoch with None -> true | Some u -> t.epoch < u)

(* Earliest epoch [>= after] at which any plan window (or resolved
   node-fault window) is armed.  Pure arithmetic over the plan — no
   draws, no clock dependence — so the engine can use it to bound a
   fast-forward span without perturbing the fault stream.  A permanent
   node failure stays armed past its drain window. *)
let next_armed_epoch t ~after =
  let min_opt acc e =
    match acc with None -> Some e | Some a -> Some (min a e)
  in
  let of_window acc (w : Plan.window) =
    if after < w.Plan.from_epoch then min_opt acc w.Plan.from_epoch
    else
      match w.Plan.until_epoch with
      | None -> min_opt acc after
      | Some u -> if after < u then min_opt acc after else acc
  in
  let acc =
    List.fold_left
      (fun acc (s : Plan.spec) -> of_window acc s.Plan.window)
      None t.plan
  in
  List.fold_left
    (fun acc nf ->
      if after < nf.from_epoch then min_opt acc nf.from_epoch
      else if nf.permanent || after < nf.until_epoch then min_opt acc after
      else acc)
    acc t.node_faults

(* Fold the plan: every armed matching spec draws independently, and
   the fault fires if any draw does.  Draw-per-spec (no short-circuit)
   keeps the stream advance a function of the plan and epoch alone. *)
let query t ~f =
  List.fold_left
    (fun fired (s : Plan.spec) ->
      if not (armed t s.Plan.window) then fired
      else begin
        match f s.Plan.site with
        | None -> fired
        | Some rate -> Sim.Rng.bernoulli t.rng rate || fired
      end)
    false t.plan

(* ------------------------------------------------------------------ *)
(* Node failure (hardware RAS)                                         *)
(* ------------------------------------------------------------------ *)

(* The target node of each [node_fail] spec is drawn once from the
   private stream, in plan order, before epoch 0 — a pure function of
   (seed, plan, candidates), so grid sweeps stay bit-reproducible.
   [candidates] restricts the draw to nodes worth failing (the engine
   passes the union of guest home nodes, so the failure always lands
   where memory actually lives); one draw either way. *)
let assign_node_targets t ?(candidates = [||]) ~nodes () =
  if not t.targets_assigned then begin
    t.targets_assigned <- true;
    if nodes > 0 then
      List.iter
        (fun nf ->
          nf.target <-
            (if Array.length candidates > 0 then
               candidates.(Sim.Rng.int t.rng (Array.length candidates))
             else Sim.Rng.int t.rng nodes))
        t.node_faults
  end

(* A permanent fault ([rate >= 1.0]) keeps the node failing forever
   once the window opens; a partial fault recovers when it closes. *)
let fault_active nf ~epoch =
  epoch >= nf.from_epoch && (nf.permanent || epoch < nf.until_epoch)

let node_failing t ~node =
  List.exists
    (fun nf ->
      let active = nf.target = node && fault_active nf ~epoch:t.epoch in
      if active && not nf.counted then begin
        nf.counted <- true;
        t.stats.node_failures <- t.stats.node_failures + 1
      end;
      active)
    t.node_faults

let node_offline t ~node =
  List.exists
    (fun nf -> nf.target = node && nf.permanent && t.epoch >= nf.until_epoch)
    t.node_faults

(* Bandwidth multiplier for the node: 1.0 healthy, collapsing linearly
   towards [1 - rate] across the drain window.  Pure — no draws. *)
let node_bandwidth_factor t ~node =
  List.fold_left
    (fun factor nf ->
      if nf.target <> node || not (fault_active nf ~epoch:t.epoch) then factor
      else begin
        let span = float_of_int (max 1 (nf.until_epoch - nf.from_epoch)) in
        let progress =
          Float.min 1.0 (float_of_int (t.epoch - nf.from_epoch + 1) /. span)
        in
        Float.min factor (Float.max 0.0 (1.0 -. (nf.rate *. progress)))
      end)
    1.0 t.node_faults

let node_fail_targets t =
  List.filter_map
    (fun nf -> if nf.target >= 0 then Some nf.target else None)
    t.node_faults

(* ------------------------------------------------------------------ *)
(* ECC events                                                          *)
(* ------------------------------------------------------------------ *)

type ecc_event = Ce of int | Ue of int

(* Each armed ECC spec draws a bernoulli AND a uniform pfn on every
   query, fired or not: the stream advance stays a function of the
   plan and epoch alone, never of which faults happened to fire. *)
let ecc_events t ~frames =
  if frames <= 0 then []
  else begin
    let events =
      List.fold_left
        (fun acc (s : Plan.spec) ->
          if not (armed t s.Plan.window) then acc
          else begin
            match s.Plan.site with
            | Plan.Ecc_ce r ->
                let fired = Sim.Rng.bernoulli t.rng r in
                let pfn = Sim.Rng.int t.rng frames in
                if fired then begin
                  t.stats.ecc_ce_errors <- t.stats.ecc_ce_errors + 1;
                  Ce pfn :: acc
                end
                else acc
            | Plan.Ecc_ue r ->
                let fired = Sim.Rng.bernoulli t.rng r in
                let pfn = Sim.Rng.int t.rng frames in
                if fired then begin
                  t.stats.ecc_ue_errors <- t.stats.ecc_ue_errors + 1;
                  Ue pfn :: acc
                end
                else acc
            | _ -> acc
          end)
        [] t.plan
    in
    List.rev events
  end

let alloc_fails t ~node =
  let offline =
    List.exists
      (fun (s : Plan.spec) ->
        match s.Plan.site with
        | Plan.Node_offline n -> n = node && armed t s.Plan.window
        | _ -> false)
      t.plan
    (* A failing node also refuses new allocations (no draw, like
       node-off): evacuation must not land frames back on it. *)
    || node_failing t ~node
  in
  let flaky =
    query t ~f:(function Plan.Alloc_flaky r -> Some r | _ -> None)
  in
  let fired = offline || flaky in
  if fired then t.stats.alloc_failures <- t.stats.alloc_failures + 1;
  fired

let migrate_fails t =
  let fired = query t ~f:(function Plan.Migrate_enomem r -> Some r | _ -> None) in
  if fired then t.stats.migrate_failures <- t.stats.migrate_failures + 1;
  fired

let batch_lost t ~ops =
  let fired = query t ~f:(function Plan.Batch_loss r -> Some r | _ -> None) in
  if fired then begin
    t.stats.batches_lost <- t.stats.batches_lost + 1;
    t.stats.ops_dropped <- t.stats.ops_dropped + ops
  end;
  fired

let op_dropped t =
  let fired = query t ~f:(function Plan.Op_drop r -> Some r | _ -> None) in
  if fired then t.stats.ops_dropped <- t.stats.ops_dropped + 1;
  fired

let hypercall_fails t =
  let fired = query t ~f:(function Plan.Hypercall_flaky r -> Some r | _ -> None) in
  if fired then t.stats.hypercall_errors <- t.stats.hypercall_errors + 1;
  fired

let iommu_faults t =
  let fired = query t ~f:(function Plan.Iommu_storm r -> Some r | _ -> None) in
  if fired then t.stats.iommu_faults <- t.stats.iommu_faults + 1;
  fired

let vcpu_stalls t =
  let fired = query t ~f:(function Plan.Vcpu_stall r -> Some r | _ -> None) in
  if fired then t.stats.vcpu_stalls <- t.stats.vcpu_stalls + 1;
  fired

let install t (system : Xen.System.t) =
  if enabled t then begin
    Memory.Machine.set_alloc_veto system.Xen.System.machine
      (Some (fun ~node ~order:_ -> alloc_fails t ~node));
    let hooks = system.Xen.System.faults in
    hooks.Xen.System.migrate_alloc_fails <- (fun () -> migrate_fails t);
    hooks.Xen.System.hypercall_transient <- (fun () -> hypercall_fails t);
    hooks.Xen.System.iommu_fault <- (fun _ -> iommu_faults t);
    hooks.Xen.System.batch_lost <- (fun ops -> batch_lost t ~ops)
  end

(* Batch loss is NOT installed here: the queue's flush handler is the
   page-ops hypercall, which already consults [System.faults.batch_lost]
   — wiring [lose_batch] too would draw twice per batch. *)
let install_queue t queue =
  if enabled t then Guest.Pv_queue.set_fault_hooks queue ~drop_op:(fun _ -> op_dropped t) ()
