type window = {
  from_epoch : int;
  until_epoch : int option;
}

let always = { from_epoch = 0; until_epoch = None }

type site =
  | Alloc_flaky of float
  | Node_offline of Numa.Topology.node
  | Migrate_enomem of float
  | Batch_loss of float
  | Op_drop of float
  | Hypercall_flaky of float
  | Iommu_storm of float
  | Vcpu_stall of float
  | Ecc_ce of float
  | Ecc_ue of float
  | Node_fail of float

type spec = { site : site; window : window }

type t = spec list

let empty = []

let is_empty t = t = []

let spec ?(from_epoch = 0) ?until_epoch site =
  { site; window = { from_epoch; until_epoch } }

let site_name = function
  | Alloc_flaky _ -> "alloc"
  | Node_offline _ -> "node-off"
  | Migrate_enomem _ -> "migrate"
  | Batch_loss _ -> "batch-loss"
  | Op_drop _ -> "op-drop"
  | Hypercall_flaky _ -> "hypercall"
  | Iommu_storm _ -> "iommu"
  | Vcpu_stall _ -> "stall"
  | Ecc_ce _ -> "ecc-ce"
  | Ecc_ue _ -> "ecc-ue"
  | Node_fail _ -> "node_fail"

let valid_site_names =
  [ "alloc"; "node-off"; "migrate"; "batch-loss"; "op-drop"; "hypercall";
    "iommu"; "stall"; "ecc-ce"; "ecc-ue"; "node_fail" ]

let site_rate = function
  | Alloc_flaky r | Migrate_enomem r | Batch_loss r | Op_drop r
  | Hypercall_flaky r | Iommu_storm r | Vcpu_stall r
  | Ecc_ce r | Ecc_ue r | Node_fail r -> Some r
  | Node_offline _ -> None

let validate_spec s =
  (match s.site with
  | Node_offline node when node < 0 ->
      Error (Printf.sprintf "node-off: negative node %d" node)
  | site -> (
      match site_rate site with
      | Some r when not (r >= 0.0 && r <= 1.0) ->
          Error (Printf.sprintf "%s: rate %g outside [0, 1]" (site_name site) r)
      | Some _ | None -> Ok ()))
  |> function
  | Error _ as e -> e
  | Ok () ->
      if s.window.from_epoch < 0 then Error (site_name s.site ^ ": window starts before epoch 0")
      else begin
        match s.window.until_epoch with
        | Some u when u <= s.window.from_epoch ->
            Error (site_name s.site ^ ": empty window")
        | Some _ | None -> Ok ()
      end

let validate t =
  let rec go = function
    | [] -> Ok t
    | s :: rest -> ( match validate_spec s with Ok () -> go rest | Error _ as e -> e)
  in
  go t

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_window s =
  (* "FROM", "FROM-", "FROM-UNTIL" *)
  match String.index_opt s '-' with
  | None -> (
      match int_of_string_opt s with
      | Some from -> Ok { from_epoch = from; until_epoch = None }
      | None -> Error (Printf.sprintf "bad window %S" s))
  | Some i -> (
      let from_s = String.sub s 0 i in
      let until_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt from_s with
      | None -> Error (Printf.sprintf "bad window %S" s)
      | Some from ->
          if until_s = "" then Ok { from_epoch = from; until_epoch = None }
          else begin
            match int_of_string_opt until_s with
            | Some until -> Ok { from_epoch = from; until_epoch = Some until }
            | None -> Error (Printf.sprintf "bad window %S" s)
          end)

let parse_token token =
  let token = String.trim token in
  let body, window =
    match String.index_opt token '@' with
    | None -> (token, Ok always)
    | Some i ->
        ( String.sub token 0 i,
          parse_window (String.sub token (i + 1) (String.length token - i - 1)) )
  in
  match window with
  | Error _ as e -> e
  | Ok window -> (
      match String.index_opt body '=' with
      | None -> Error (Printf.sprintf "expected site=value, got %S" token)
      | Some i -> (
          let name = String.lowercase_ascii (String.trim (String.sub body 0 i)) in
          let value = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
          let rate_site make =
            match float_of_string_opt value with
            | Some r -> Ok { site = make r; window }
            | None -> Error (Printf.sprintf "%s: bad rate %S" name value)
          in
          match name with
          | "alloc" -> rate_site (fun r -> Alloc_flaky r)
          | "migrate" -> rate_site (fun r -> Migrate_enomem r)
          | "batch-loss" -> rate_site (fun r -> Batch_loss r)
          | "op-drop" -> rate_site (fun r -> Op_drop r)
          | "hypercall" -> rate_site (fun r -> Hypercall_flaky r)
          | "iommu" -> rate_site (fun r -> Iommu_storm r)
          | "stall" -> rate_site (fun r -> Vcpu_stall r)
          | "ecc-ce" -> rate_site (fun r -> Ecc_ce r)
          | "ecc-ue" -> rate_site (fun r -> Ecc_ue r)
          | "node_fail" | "node-fail" -> rate_site (fun r -> Node_fail r)
          | "node-off" -> (
              match int_of_string_opt value with
              | Some node -> Ok { site = Node_offline node; window }
              | None -> Error (Printf.sprintf "node-off: bad node %S" value))
          | _ ->
              Error
                (Printf.sprintf "unknown fault site %S (valid sites: %s)" name
                   (String.concat ", " valid_site_names))))

let of_string s =
  let s = String.trim s in
  if s = "" || String.lowercase_ascii s = "none" then Ok empty
  else begin
    let tokens = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> validate (List.rev acc)
      | token :: rest -> (
          match parse_token token with
          | Ok spec -> go (spec :: acc) rest
          | Error _ as e -> e)
    in
    go [] tokens
  end

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Faults.Plan.of_string: " ^ msg)

let string_of_rate r =
  (* Shortest representation that round-trips through float_of_string. *)
  let s = Printf.sprintf "%.12g" r in
  s

let spec_to_string s =
  let base =
    match s.site with
    | Node_offline node -> Printf.sprintf "node-off=%d" node
    | site -> (
        match site_rate site with
        | Some r -> Printf.sprintf "%s=%s" (site_name site) (string_of_rate r)
        | None -> assert false)
  in
  if s.window = always then base
  else begin
    match s.window.until_epoch with
    | None -> Printf.sprintf "%s@%d-" base s.window.from_epoch
    | Some u -> Printf.sprintf "%s@%d-%d" base s.window.from_epoch u
  end

let to_string t =
  if t = [] then "none" else String.concat "," (List.map spec_to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
