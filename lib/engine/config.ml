type mode = Linux | Xen | Xen_plus

type vm_spec = {
  app : Workloads.App.t;
  threads : int;
  policy : Policies.Spec.t;
  home_nodes : Numa.Topology.node array option;
  use_mcs : bool;
  huge_pages : bool;
  superpages : bool;
  pt_walk : bool;
  replicate_pt : bool;
  pinned : bool;
}

let vm ?home_nodes ?(use_mcs = false) ?(huge_pages = false) ?(superpages = false)
    ?(pt_walk = false) ?(replicate_pt = false) ?(pinned = true) ?(threads = 48) ~policy app =
  if threads <= 0 then invalid_arg "Config.vm: threads must be positive";
  { app; threads; policy; home_nodes; use_mcs; huge_pages; superpages; pt_walk; replicate_pt;
    pinned }

type t = {
  mode : mode;
  vms : vm_spec list;
  epoch : float;
  seed : int;
  max_epochs : int;
  page_kib : int option;
  carrefour_config : Policies.Carrefour.User_component.config option;
  machine : Numa.Machine_desc.t;
  faults : Faults.Plan.t;
  observer : observer option;
  inner_jobs : int;
  slo : (string * float) list;
  fast_forward : bool;
}

and observer = epoch_snapshot -> unit

and epoch_snapshot = {
  epoch_index : int;
  time : float;
  imbalance : float;
  max_controller_util : float;
  max_link_util : float;
  progress : (string * float) list;  (* app name, fraction of work done *)
  local_fraction : (string * float) list;
}

(* SLO objectives: which latency metric is budgeted.  [mean] is the
   work-weighted epoch mean; the percentiles are over the running
   vCPUs' per-epoch mean latencies. *)
let slo_metrics = [ "mean"; "p50"; "p95"; "p99"; "p999" ]

(* Parse a "METRIC=TARGET[,METRIC=TARGET...]" objective list (the
   --slo CLI argument).  The error message enumerates the valid
   metrics, mirroring the fault-plan parser. *)
let parse_slo spec =
  let parse_one part =
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "bad SLO %S; expected METRIC=TARGET (e.g. p99=300)" part)
    | Some i -> (
        let metric = String.trim (String.sub part 0 i) in
        let target = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
        if not (List.mem metric slo_metrics) then
          Error
            (Printf.sprintf "unknown SLO metric %S; valid metrics: %s" metric
               (String.concat ", " slo_metrics))
        else
          match float_of_string_opt target with
          | Some t when t > 0.0 -> Ok (metric, t)
          | _ -> Error (Printf.sprintf "bad SLO target %S; expected a positive number" target))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match parse_one part with Ok o -> go (o :: acc) rest | Error e -> Error e)
  in
  go []
    (List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' spec)))

(* Process-wide default for [fast_forward], mirroring
   [Pool.default_inner_jobs]: lets the bench harness flip every run it
   spawns to the naive epoch loop without threading a flag through the
   experiment grids. *)
let default_fast_forward_flag = ref true
let set_default_fast_forward b = default_fast_forward_flag := b
let default_fast_forward () = !default_fast_forward_flag

let make ?(epoch = 0.1) ?(seed = 42) ?(max_epochs = 40_000) ?page_kib ?carrefour_config
    ?(machine = Numa.Machine_desc.amd48) ?(faults = Faults.Plan.empty) ?observer
    ?inner_jobs ?(slo = []) ?fast_forward ~mode vms =
  let inner_jobs =
    match inner_jobs with Some n -> n | None -> Pool.default_inner_jobs ()
  in
  let fast_forward =
    match fast_forward with Some b -> b | None -> default_fast_forward ()
  in
  if vms = [] then invalid_arg "Config.make: no VMs";
  if epoch <= 0.0 then invalid_arg "Config.make: epoch must be positive";
  if inner_jobs < 1 then invalid_arg "Config.make: inner_jobs must be >= 1";
  List.iter
    (fun (metric, target) ->
      if not (List.mem metric slo_metrics) then
        invalid_arg (Printf.sprintf "Config.make: unknown SLO metric %S" metric);
      if target <= 0.0 then invalid_arg "Config.make: SLO target must be positive")
    slo;
  (match Faults.Plan.validate faults with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Config.make: bad fault plan: " ^ msg));
  { mode; vms; epoch; seed; max_epochs; page_kib; carrefour_config; machine; faults; observer;
    inner_jobs; slo; fast_forward }

let mode_name = function Linux -> "linux" | Xen -> "xen" | Xen_plus -> "xen+"

(* Pick a page granularity keeping the largest app around <= 48k pages:
   small apps keep real 4 KiB pages, dc.B's 39 GB uses 1 MiB units. *)
let heuristic_scale t =
  let max_fp =
    List.fold_left (fun acc vm -> max acc vm.app.Workloads.App.footprint_mb) 1 t.vms
  in
  let bytes = max_fp * 1024 * 1024 in
  let rec fit scale =
    if bytes / (4096 * scale) <= 49_152 || scale >= 1024 then scale else fit (scale * 2)
  in
  fit 1

let page_scale t =
  match t.page_kib with
  | Some kib ->
      if kib < 4 || kib land (kib - 1) <> 0 then invalid_arg "Config: page_kib must be a power of two >= 4";
      kib / 4
  | None -> heuristic_scale t
