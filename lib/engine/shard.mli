(** Deterministic intra-run sharding of a VM's vCPUs.

    The per-epoch kernel of {!Runner} iterates over vCPUs; to compute
    it on several {!Pool.Team} members at once without changing a
    single output bit, the vCPU index space is cut into contiguous
    ranges that depend only on (vCPU count, shard count) — never on
    scheduling — and every cross-vCPU accumulation is kept out of the
    kernel, done afterwards in one sequential vCPU-order reduction.

    Per-vCPU randomness follows the same discipline: streams come from
    {!Sim.Rng.derive}, a pure function of (parent state, vCPU id), so
    vCPU [v]'s stream is the same object whether the kernel runs on
    one shard or eight, and whichever shard [v] lands on. *)

type range = { lo : int; hi : int }
(** Half-open: the shard owns vCPUs [lo .. hi-1]. *)

val partition : count:int -> shards:int -> range array
(** Cut [0 .. count-1] into at most [shards] contiguous ranges in
    ascending order, sizes differing by at most one ([i * count /
    shards] boundaries).  Never returns an empty range: the result has
    [min shards count] elements ([max 1] of them, a single possibly
    empty range when [count = 0]).  A pure function of its arguments —
    the same partition on every run, every host. *)

val streams : Sim.Rng.t -> count:int -> Sim.Rng.t array
(** [streams rng ~count] is the per-vCPU stream family
    [Sim.Rng.derive rng ~id:v] for [v] in [0 .. count-1].  [rng] is
    not advanced. *)
