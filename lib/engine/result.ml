type degradation = {
  migrate_retries : int;
  deferred : int;
  drained : int;
  fallback_maps : int;
  breaker_trips : int;
  breaker_level : int;
  lost_batches : int;
  reconciled : int;
  backoff_time : float;
  ecc_ce : int;
  ecc_ue : int;
  offlined : int;
  evacuated : int;
  evac_epochs : int;
}

let no_degradation =
  {
    migrate_retries = 0;
    deferred = 0;
    drained = 0;
    fallback_maps = 0;
    breaker_trips = 0;
    breaker_level = 0;
    lost_batches = 0;
    reconciled = 0;
    backoff_time = 0.0;
    ecc_ce = 0;
    ecc_ue = 0;
    offlined = 0;
    evacuated = 0;
    evac_epochs = 0;
  }

(* Tail of the per-domain latency distribution: percentiles over the
   run's log-bucket histogram of per-vCPU-per-epoch mean latencies,
   recorded in the runner's sequential reduction (so bit-identical
   across --jobs / --inner-jobs). *)
type latency_summary = {
  samples : int;
  lat_mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  lat_max : float;
}

let no_latency =
  { samples = 0; lat_mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0; p999 = 0.0; lat_max = 0.0 }

(* One --slo CLASS=TARGET objective evaluated for one domain: the
   end-of-run value of the metric, plus per-epoch violation accounting
   (an epoch violates when its own value of the metric exceeded the
   target; burn rate = violating / active epochs). *)
type slo_row = {
  metric : string;  (* mean | p50 | p95 | p99 | p999 *)
  target : float;
  value : float;  (* end-of-run value of the metric *)
  violation_epochs : int;
  active_epochs : int;
  burn_rate : float;
  violated : bool;  (* end-of-run value exceeds the target *)
}

type vm_result = {
  app_name : string;
  policy : string;
  completion : float;
  compute_time : float;
  io_overhead : float;
  sync_overhead : float;
  virt_overhead : float;
  release_overhead : float;
  faults : int;
  migrations : int;
  avg_latency_cycles : float;
  local_fraction : float;
  superpages : int;  (* live 2 MiB P2M entries at the end of the run *)
  superpage_fraction : float;  (* share of mapped guest memory under them *)
  splinters : int;  (* cumulative demotions (P2M counter) *)
  promotes : int;  (* cumulative coalesces, in place and by copy *)
  superpage_migrates : int;  (* the copying promotes among them *)
  walk_cycles_per_instr : float;  (* end-of-run TLB walk CPI term *)
  pt_replica_updates : int;  (* per-mirror PT entry writes *)
  pt_replica_invalidations : int;  (* per-mirror PT shootdowns *)
  pt_replica_time : float;  (* write-propagation seconds *)
  latency : latency_summary;
  slo : slo_row list;  (* one row per --slo objective, spec order *)
  degradation : degradation;
}

type t = {
  vms : vm_result list;
  imbalance : float;
  interconnect_load : float;
  epochs : int;
  replayed_epochs : int;
  faults_injected : int;
}

let completion t name =
  match List.find_opt (fun vm -> vm.app_name = name) t.vms with
  | Some vm -> vm.completion
  | None -> raise Not_found

let single t =
  match t.vms with
  | [ vm ] -> vm
  | _ -> invalid_arg "Result.single: run had several VMs"

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun vm ->
      Format.fprintf fmt
        "%-14s %-22s %7.2f s (compute %6.2f, io %5.2f, sync %5.2f, virt %5.2f, rel %5.2f) \
         lat %5.0f cy, local %4.1f%%, %d migrations@,"
        vm.app_name vm.policy vm.completion vm.compute_time vm.io_overhead vm.sync_overhead
        vm.virt_overhead vm.release_overhead vm.avg_latency_cycles
        (100.0 *. vm.local_fraction) vm.migrations)
    t.vms;
  List.iter
    (fun vm ->
      if vm.superpages > 0 || vm.splinters > 0 || vm.promotes > 0 then
        Format.fprintf fmt
          "%-14s superpages: %d live (%4.1f%% of mapped), %d splintered, %d promoted (%d by \
           copy)@,"
          vm.app_name vm.superpages
          (100.0 *. vm.superpage_fraction)
          vm.splinters vm.promotes vm.superpage_migrates)
    t.vms;
  List.iter
    (fun vm ->
      if vm.pt_replica_updates > 0 || vm.pt_replica_invalidations > 0 then
        Format.fprintf fmt
          "%-14s pt replicas: %d entry writes, %d shootdowns, %.3f s propagation (walk %0.4f \
           cy/instr)@,"
          vm.app_name vm.pt_replica_updates vm.pt_replica_invalidations vm.pt_replica_time
          vm.walk_cycles_per_instr)
    t.vms;
  List.iter
    (fun vm ->
      let d = vm.degradation in
      if d <> no_degradation then
        Format.fprintf fmt
          "%-14s degraded: %d retries, %d deferred (%d drained), %d fallback maps, %d breaker \
           trips (level %d), %d lost batches, %d reconciled@,"
          vm.app_name d.migrate_retries d.deferred d.drained d.fallback_maps d.breaker_trips
          d.breaker_level d.lost_batches d.reconciled)
    t.vms;
  List.iter
    (fun vm ->
      let l = vm.latency in
      if l.samples > 0 then
        Format.fprintf fmt
          "%-14s latency: p50 %5.0f  p95 %5.0f  p99 %5.0f  p99.9 %5.0f  max %5.0f cy (%d \
           samples)@,"
          vm.app_name l.p50 l.p95 l.p99 l.p999 l.lat_max l.samples)
    t.vms;
  List.iter
    (fun vm ->
      List.iter
        (fun s ->
          Format.fprintf fmt
            "%-14s slo %-5s target %6.0f cy: value %6.0f %s, %d/%d epochs in violation \
             (burn rate %.3f)@,"
            vm.app_name s.metric s.target s.value
            (if s.violated then "VIOLATED" else "ok")
            s.violation_epochs s.active_epochs s.burn_rate)
        vm.slo)
    t.vms;
  List.iter
    (fun vm ->
      let d = vm.degradation in
      if d.ecc_ce > 0 || d.ecc_ue > 0 || d.offlined > 0 || d.evacuated > 0 then
        Format.fprintf fmt
          "%-14s ras: %d CE, %d UE, %d frames offlined, %d evacuated over %d epochs@,"
          vm.app_name d.ecc_ce d.ecc_ue d.offlined d.evacuated d.evac_epochs)
    t.vms;
  Format.fprintf fmt "imbalance %.0f%%, interconnect %.0f%%, %d epochs" (100.0 *. t.imbalance)
    (100.0 *. t.interconnect_load)
    t.epochs;
  if t.replayed_epochs > 0 then Format.fprintf fmt " (%d replayed)" t.replayed_epochs;
  if t.faults_injected > 0 then Format.fprintf fmt ", %d faults injected" t.faults_injected;
  Format.fprintf fmt "@]"
