(** Multicore execution of independent simulation tasks.

    The experiment grids of the paper — (workload, policy, mode) cells
    — are embarrassingly parallel: every cell builds its own system,
    domains and RNG from an explicit seed, so cells can run on any
    OCaml 5 domain in any order without changing a single bit of the
    output.  This pool fans an array of thunks out over
    [Domain.spawn]ed workers feeding from a shared mutex/condvar task
    deque and collects the results by task index.

    Determinism contract: tasks must not share mutable state (beyond
    internally synchronized memoization) and must derive any
    randomness from a seed that is a function of the task itself — see
    {!Experiments.Runs.task_seed} for the seeding scheme the
    experiment grids use.

    Worker count: [~jobs] argument if given, else the process-wide
    default installed by {!set_default_jobs} (the bench driver's
    [--jobs]), else the [XEN_NUMA_JOBS] environment variable, else
    [Domain.recommended_domain_count ()].  [~jobs:1] runs the tasks
    sequentially on the calling domain with no spawning at all. *)

val available_jobs : unit -> int
(** Worker count from [XEN_NUMA_JOBS] (if a positive integer) or
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val set_default_jobs : int -> unit
(** Install a process-wide default worker count (clamped to >= 1),
    overriding [XEN_NUMA_JOBS] for subsequent calls without an
    explicit [~jobs]. *)

val default_jobs : unit -> int
(** The count {!run_all} uses when [~jobs] is omitted. *)

val run_all : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run_all tasks] executes every thunk and returns their results
    indexed exactly like [tasks], whatever the execution schedule.
    If any task raises, the exception of the lowest-indexed failing
    task is re-raised (with its backtrace) after all workers have
    drained; the remaining tasks still run. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] with the applications of [f]
    distributed over the pool; result order follows [a]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f l] is [List.map f l] with the applications of [f]
    distributed over the pool; result order follows [l]. *)
