(** Multicore execution of independent simulation tasks.

    The experiment grids of the paper — (workload, policy, mode) cells
    — are embarrassingly parallel: every cell builds its own system,
    domains and RNG from an explicit seed, so cells can run on any
    OCaml 5 domain in any order without changing a single bit of the
    output.  This pool fans an array of thunks out over
    [Domain.spawn]ed workers claiming task indices from a shared
    atomic cursor (no allocation per task) and collects the results by
    task index.

    Determinism contract: tasks must not share mutable state (beyond
    internally synchronized memoization) and must derive any
    randomness from a seed that is a function of the task itself — see
    {!Experiments.Runs.task_seed} for the seeding scheme the
    experiment grids use.

    Worker count: [~jobs] argument if given, else the process-wide
    default installed by {!set_default_jobs} (the bench driver's
    [--jobs]), else the [XEN_NUMA_JOBS] environment variable, else
    [Domain.recommended_domain_count ()].  [~jobs:1] runs the tasks
    sequentially on the calling domain with no spawning at all.

    Whatever the resolved count, the pool never spawns more domains
    than [Domain.recommended_domain_count ()]: surplus domains cannot
    run concurrently anyway, yet each live domain still participates
    in every stop-the-world minor collection, so oversubscription
    makes the grid slower — dramatically so on small hosts.  Results
    are index-addressed and tasks seed their own RNGs, so the worker
    count never changes any output bit, only the schedule. *)

val available_jobs : unit -> int
(** Worker count from [XEN_NUMA_JOBS] (if a positive integer) or
    [Domain.recommended_domain_count ()].  Always >= 1. *)

val set_default_jobs : int -> unit
(** Install a process-wide default worker count (clamped to >= 1),
    overriding [XEN_NUMA_JOBS] for subsequent calls without an
    explicit [~jobs]. *)

val default_jobs : unit -> int
(** The count {!run_all} uses when [~jobs] is omitted. *)

val set_default_inner_jobs : int -> unit
(** Install a process-wide default shard count (clamped to >= 1) for
    the intra-run epoch kernel — what {!Config.make} uses when
    [?inner_jobs] is omitted (the bench driver's [--inner-jobs]). *)

val default_inner_jobs : unit -> int
(** The installed intra-run default, else [XEN_NUMA_INNER_JOBS] (if a
    positive integer), else 1.  Unlike the outer worker count this is
    purely a performance knob: any value produces bit-identical
    results. *)

val run_all : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run_all tasks] executes every thunk and returns their results
    indexed exactly like [tasks], whatever the execution schedule.
    If any task raises, the exception of the lowest-indexed failing
    task is re-raised (with its backtrace) after all workers have
    drained; the remaining tasks still run. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] with the applications of [f]
    distributed over the pool; result order follows [a]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f l] is [List.map f l] with the applications of [f]
    distributed over the pool; result order follows [l]. *)

(** A persistent squad of worker domains for {e intra-run} sharding:
    spawn once, then dispatch many short parallel sections against the
    same members — the per-epoch kernel of {!Runner} cannot afford a
    [Domain.spawn] per epoch.  Unlike {!run_all}, a team spawns
    exactly [workers - 1] domains whatever the hardware parallelism:
    the shard count is part of the determinism contract ([--inner-jobs
    n] must mean [n] shards), and correctness never depends on the
    members actually running concurrently. *)
module Team : sig
  type t

  val create : workers:int -> t
  (** Spawn a team of [max 1 workers] members.  Member 0 is the
      calling domain; members [1 .. workers-1] are spawned domains
      that block on a condition variable between sections. *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f rank] once per member, [rank] in
      [0 .. size-1], member 0 on the calling domain, and returns when
      every member has finished (a full barrier).  If any member
      raises, the exception is re-raised on the caller {e after} the
      barrier — partial shard writes are never observed.  [f] must
      confine its writes to rank-private state. *)

  val shutdown : t -> unit
  (** Join the spawned members.  The team is unusable afterwards. *)

  val with_team : workers:int -> (t -> 'a) -> 'a
  (** [with_team ~workers f] runs [f] over a fresh team and shuts it
      down on the way out, exception or not. *)
end
