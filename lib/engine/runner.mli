(** The epoch simulator.

    Advances simulated time in fixed epochs.  Per epoch, each running
    thread executes as many instructions as its CPU share and current
    average memory latency allow; its memory accesses are distributed
    over the application's pages according to its access pattern,
    resolved through the guest page table and the hypervisor page
    table to NUMA nodes, and charged to the memory controllers and
    interconnect links.  Contention measured in one epoch feeds the
    latency of the next (one-epoch lag fixed point).  Carrefour, when
    active, receives per-epoch hot-page samples and migrates pages
    through the internal interface.  Completion time folds in the
    virtualization costs (hypercalls, faults, migrations), the I/O
    path overhead and the page-release churn. *)

val run : Config.t -> Result.t
(** Simulate the configuration to completion (or [max_epochs]).

    Steady state is fast-forwarded by default
    ({!Config.t.fast_forward}): when an epoch's inputs provably
    reached a fixed point — no P2M mutation, no phase rotation or
    burst, no thread started or finished, I/O drained, latency
    feedback bitwise converged, no Carrefour/promotion/fault boundary
    due — the runner replays the armed epoch's captured float deltas
    by identical additions in identical order instead of re-running
    the O(threads×nodes) kernels.  Results and traces are
    bit-identical to the naive loop; only
    {!Result.t.replayed_epochs} tells the difference. *)

val access_bytes : float
(** Bytes charged per memory access (one cache line). *)

val replay_guard :
  finish:float array -> doit:float array -> remaining:float array ->
  cap:float array -> final:float array -> bool
(** The fast-forward's per-epoch safety predicate over the frozen
    capture arrays: for every still-running thread that did work in
    the armed epoch, [remaining.(t) >= cap.(t)] (so the kernel's
    [Float.min remaining cap] stays bitwise equal to [cap]) and
    [remaining.(t) -. final.(t) > 0.0] (so no thread would have
    finished).  Pure; exposed for the micro benchmark. *)
