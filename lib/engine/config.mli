(** Run configurations for the simulator.

    A run places one or more applications, each in its own execution
    container, on the AMD48 model:

    - [Linux]: the application runs natively; the NUMA policy is
      Linux's (placement at the process page table level, no
      virtualization costs, native I/O and IPIs);
    - [Xen]: a domU with Xen's stock configuration — para-virtualized
      I/O, virtualized IPIs;
    - [Xen_plus]: the paper's improved baseline — PCI
      passthrough/IOMMU I/O (disabled when the first-touch policy is
      active: the IOMMU cannot tolerate invalid P2M entries) and,
      where requested, MCS spin locks instead of futex sleeps. *)

type mode = Linux | Xen | Xen_plus

type vm_spec = {
  app : Workloads.App.t;
  threads : int;  (** Threads = vCPUs; pinned 1:1. *)
  policy : Policies.Spec.t;
  home_nodes : Numa.Topology.node array option;
      (** Force the VM onto specific nodes (consolidation setups). *)
  use_mcs : bool;
      (** Replace pthread mutex/condvar by MCS spin loops (the Xen+
          modification for facesim and streamcluster, also applied to
          their Linux runs for fairness). *)
  huge_pages : bool;
      (** Back the application with 2 MiB pages (the paper's first
          future-work item): TLB reach grows 512-fold, which matters
          most under nested paging.  This is the {e guest}-side flag —
          the whole footprint is assumed huge-mapped, independent of
          the hypervisor P2M. *)
  superpages : bool;
      (** Enable 2 MiB {e hypervisor} P2M superpage entries
          ({!Xen.P2m}): round-1G boot placement installs them, per-page
          operations splinter them, and the manager's promotion scan
          re-coalesces extents.  The TLB benefit then tracks the live
          superpage fraction of guest memory instead of being a static
          assumption.  Ignored in [Linux] mode (no P2M). *)
  pt_walk : bool;
      (** Enable the radix page-walk cost model ([--pt-walk]): TLB
          misses charge walk-depth levels, each priced by the latency
          of the node holding that page-table level ({!Xen.Pt}),
          instead of the flat walk constant.  Off (the default), walk
          costs are bit-identical to the flat model. *)
  replicate_pt : bool;
      (** Mirror the page tables onto every home node
          ([--replicate-pt], the Mitosis policy): walks resolve from
          the local mirror, every P2M update pays the
          write-propagation cost.  Ignored in [Linux] mode (no
          P2M). *)
  pinned : bool;
      (** [true] (the paper's evaluation setting): vCPUs stay on their
          boot pCPUs.  [false]: the credit scheduler may migrate them
          to idle pCPUs — the load-balancing freedom the paper's
          introduction argues for. *)
}

val vm : ?home_nodes:Numa.Topology.node array -> ?use_mcs:bool -> ?huge_pages:bool ->
  ?superpages:bool -> ?pt_walk:bool -> ?replicate_pt:bool -> ?pinned:bool -> ?threads:int ->
  policy:Policies.Spec.t -> Workloads.App.t -> vm_spec
(** [threads] defaults to 48 (the full machine). *)

type t = {
  mode : mode;
  vms : vm_spec list;
  epoch : float;        (** Simulated epoch length, seconds. *)
  seed : int;
  max_epochs : int;
  page_kib : int option;
      (** Simulated page granularity in KiB (power of two, ≥ 4);
          [None] picks one from the largest footprint so regions stay
          in the tens of thousands of pages. *)
  carrefour_config : Policies.Carrefour.User_component.config option;
      (** Override the Carrefour user-component tuning (used by the
          heuristic ablations); [None] = engine default. *)
  machine : Numa.Machine_desc.t;
      (** Physical host to simulate (default: the paper's AMD48). *)
  faults : Faults.Plan.t;
      (** Fault-injection plan (default empty = no faults).  The runner
          derives the injector's stream from [seed], so a fault run is
          as reproducible as a clean one. *)
  observer : observer option;
      (** Called at the end of every epoch with live telemetry
          (progress tracking, CSV traces, convergence plots). *)
  inner_jobs : int;
      (** Worker shards for the {e intra-run} epoch kernel (the
          [--inner-jobs] knob): each VM's vCPUs are partitioned into
          this many contiguous ranges computed on a persistent
          {!Pool.Team}, with all cross-vCPU accumulation done in a
          sequential fixed-order reduction — so any value produces
          bit-identical results, 1 (the default) meaning no extra
          domains at all.  Fault-injection runs always run the kernel
          unsharded: the injector draws per-vCPU stall events from one
          shared stream in vCPU order.  [make] defaults the field to
          {!Pool.default_inner_jobs} (the bench driver's
          [--inner-jobs], or [XEN_NUMA_INNER_JOBS], or 1). *)
  slo : (string * float) list;
      (** Latency SLO objectives [(metric, target cycles)] evaluated
          per domain every epoch and at end of run ([--slo]).  Metrics:
          [mean] (work-weighted epoch mean) or [p50]/[p95]/[p99]/[p999]
          over per-vCPU epoch latencies.  Purely observational — the
          accounting never feeds back into the simulation, so a run
          with SLOs is bit-identical to one without. *)
  fast_forward : bool;
      (** Allow the runner's steady-state fast-forward: quiescent
          epochs replay the previous epoch's captured float deltas by
          identical additions in identical order instead of re-running
          the O(threads×nodes) kernels, so results and traces stay
          bit-identical to the naive loop (the escape hatch is
          [--no-fast-forward]).  Forced off internally for
          fault-injection runs, unpinned vCPUs and observer runs.
          [make] defaults the field to {!default_fast_forward}. *)
}

and observer = epoch_snapshot -> unit

and epoch_snapshot = {
  epoch_index : int;
  time : float;  (** Simulated seconds since the run started. *)
  imbalance : float;  (** Cumulative per-node access imbalance. *)
  max_controller_util : float;  (** This epoch. *)
  max_link_util : float;
  progress : (string * float) list;
      (** Per application: fraction of the total work completed. *)
  local_fraction : (string * float) list;
      (** Per application: cumulative local-access share. *)
}

val make : ?epoch:float -> ?seed:int -> ?max_epochs:int -> ?page_kib:int ->
  ?carrefour_config:Policies.Carrefour.User_component.config ->
  ?machine:Numa.Machine_desc.t ->
  ?faults:Faults.Plan.t ->
  ?observer:observer ->
  ?inner_jobs:int ->
  ?slo:(string * float) list ->
  ?fast_forward:bool ->
  mode:mode -> vm_spec list -> t
(** @raise Invalid_argument on an ill-formed fault plan, an unknown
    SLO metric or non-positive target, or [inner_jobs < 1]. *)

val set_default_fast_forward : bool -> unit
(** Process-wide default for {!t.fast_forward} (initially [true]),
    mirroring {!Pool.set_default_jobs}: the bench harness flips it so
    [--no-fast-forward] reaches every run the experiment grids spawn
    without threading a flag through them. *)

val default_fast_forward : unit -> bool

val slo_metrics : string list
(** Valid SLO metric names, in report order. *)

val parse_slo : string -> ((string * float) list, string) result
(** Parse a ["METRIC=TARGET,..."] objective list (the [--slo] CLI
    argument); the error enumerates the valid metrics. *)

val mode_name : mode -> string

val page_scale : t -> int
(** Frames-per-simulated-page factor actually used (from [page_kib] or
    the footprint heuristic). *)
