let access_bytes = 64.0

(* ------------------------------------------------------------------ *)
(* Internal state                                                      *)
(* ------------------------------------------------------------------ *)

type region = {
  pfns : int array;
  weights : float array;  (* popularity by hot rank (rank 0 hottest) *)
  page_node : int array;
  node_weight : float array;  (* per-node popularity sums *)
  replicated : Bytes.t;  (* pages whose read traffic is served locally *)
  mutable replicated_local : float;
      (* popularity mass served on the reader's own node (replicated
         read-only pages); node_weight + replicated_local sums to 1 *)
  mutable shift : int;
      (* phase rotation: page (shift + rank) mod pages holds hot
         rank [rank]; algorithmic phases move the hot front *)
}

(* The per-vCPU epoch state lives in flat structure-of-arrays form,
   indexed by vCPU (row [t * nodes .. t * nodes + nodes - 1] of
   [thread_dst] is vCPU [t]'s destination spread): the epoch kernel
   walks contiguous memory, and a [Shard.range] of vCPUs owns a
   contiguous slice that another shard never writes.

   Sharding discipline: the kernel writes {e only} vCPU-indexed slots
   of its own range; every accumulation that crosses vCPUs
   ([src_shared], [shared_accesses_epoch], the counters, [weighted_lat]
   ...) reads those slots afterwards in one sequential vCPU-order
   reduction.  Float addition is not associative, so the reduction
   order — vCPU 0, 1, 2, ... — is the contract that makes every
   [inner_jobs] value produce the same bits as the unsharded loop. *)
type vm_state = {
  spec : Config.vm_spec;
  domain : Xen.Domain.t;
  manager : Policies.Manager.t;
  pool : Guest.Pfn_pool.t;
  queue : Guest.Pv_queue.t option;
      (* Concrete pv queue driving real alloc/release churn; only built
         under fault injection (clean runs model the churn analytically
         in release_churn_overhead). *)
  process : Guest.Process.t;
  shared : region;
  privates : region array;
  (* Flat pfn -> region location index.  Guest pfns are small dense
     ints (< mem_frames), so two int arrays beat a Hashtbl on the
     per-sample lookup path: no hashing, no boxing, no allocation.
     owner -1 = untracked, 0 = shared region, t+1 = private region of
     thread t; slot is the page's index within that region. *)
  pfn_owner : int array;
  pfn_slot : int array;
  (* Scratch for build_samples, reused every Carrefour period instead
     of a fresh Hashtbl: seen.(i) marks shared page i as already
     sampled; touched lists the marked indices so only they are
     cleared afterwards. *)
  sample_seen : Bytes.t;
  sample_touched : int array;
  (* Pages fed to Carrefour this period, for refresh_placement: the
     heat table copies sample arrays on insert, so one scratch float
     array serves every sample and only the pfns need remembering. *)
  sample_pfns : int array;
  mutable sample_count : int;
  sample_scratch : float array;
  remaining : float array;
  avg_lat : float array;
  finish : float array;  (* -1 while running *)
  thread_node : int array;
  thread_dst : float array;  (* threads * nodes, row-major by vCPU *)
  thread_accesses : float array;  (* this epoch, per thread *)
  thread_doit : float array;  (* tentative instructions this epoch *)
  thread_cap : float array;   (* instruction capacity this epoch *)
  thread_shared : float array;  (* accesses into the shared region *)
  thread_burst : float array;   (* burst accesses, > 0 only for the source *)
  thread_sync : float array;    (* blocked time contribution this epoch *)
  thread_total : float array;   (* realized accesses, for the latency pass *)
  thread_final : float array;   (* instructions retired this epoch, per thread;
                                   captured because the throughput kernel scales
                                   thread_dst/thread_accesses in place, which
                                   loses [doit *. realized] — the delta the
                                   fast-forward replay re-subtracts *)
  vcpu_rng : Sim.Rng.t array;
      (* Independent per-vCPU streams, derived (not split) from the
         VM's stream right after its creation: a pure function of the
         cell seed and the vCPU id, identical under any shard count.
         The epoch kernel draws nothing from them today — the one
         per-vCPU draw (injected stalls) stays on the injector's
         shared stream for trace compatibility, which is why fault
         runs bypass sharding — but any future per-vCPU randomness
         must come from here, never from a shared stream. *)
  src_shared : float array;  (* accesses into the shared region per source node *)
  mutable shared_accesses_epoch : float;
  mutable burst_victim : int;
  mutable burst_source : int;
  mutable burst_accesses_epoch : float;
  mutable io_bytes_left : float;
  mutable sync_overhead : float;
  mutable migrations : int;
  mutable weighted_lat : float;
  mutable total_accesses : float;
  mutable local_accesses : float;
  (* Tail-latency observability: one per-vCPU-per-epoch sample of the
     epoch's mean latency, recorded in the sequential reduction so the
     distribution is bit-identical across --jobs / --inner-jobs. *)
  lat_hist : Sim.Stats.Histogram.t;
  slo_scratch : float array;  (* running vCPUs' epoch latencies *)
  slo_violations : int array;  (* per cfg.slo objective, spec order *)
  mutable active_epochs : int;  (* epochs in which any vCPU ran work *)
  mutable private_sample_cursor : int;
  mutable tlb_cycles_per_instr : float;
      (* static, except under P2M superpages where it tracks the live
         superpage fraction epoch by epoch *)
  work_per_thread : float;
  mutable phase : int;
  rng : Sim.Rng.t;
  (* Steady-state fast-forward bookkeeping.  [ff_armed] is set at the
     end of a full epoch that bitwise reproduced the same-parity
     capture from two epochs before; the witnesses below are taken at
     the top of every epoch (pass A) and compared at the bottom, so
     "nothing moved this epoch" is a check, not an assumption. *)
  mutable ff_armed : bool;
  mutable ff_p2m_version : int;  (* P2m.version at the top of the epoch *)
  mutable ff_migrations : int;   (* st.migrations at the top of the epoch *)
  mutable ff_finished : int;     (* finished-thread count at the top *)
  mutable ff_rotated : bool;     (* pass A rotated the hot front this epoch *)
  mutable ff_io : float;         (* disk DMA bytes transferred this epoch *)
  mutable ff_slo_active : bool;  (* the SLO block ran this epoch (scratch) *)
  ff_slo_violate : bool array;   (* per-objective verdicts (scratch) *)
  ff_snap : ff_snap array;       (* the two parity captures (even, odd) *)
}

(* One captured epoch of per-thread deltas for the fast-forward.  The
   latency feedback's fixed point is in general a period-2 limit cycle
   in the last ulp (the one-epoch-lag iteration overshoots and
   alternates between two neighbouring floats forever), so the runner
   keeps one capture per epoch parity and the replay alternates them;
   a true period-1 fixed point just makes the two captures equal. *)
and ff_snap = {
  mutable sn_epoch : int;  (* capture epoch; -1 = stale *)
  sn_sync : float array;   (* thread_sync: per-thread blocked time *)
  sn_doit : float array;   (* > 0 marks threads that did work *)
  sn_cap : float array;    (* epoch instruction ceiling, for the guard *)
  sn_final : float array;  (* instructions retired (the work delta) *)
  sn_total : float array;  (* realized accesses (the latency weights) *)
  sn_lat : float array;    (* per-thread average latency *)
  sn_dst : float array;    (* realized per-thread per-node traffic *)
  mutable sn_io : float;   (* disk DMA bytes of the captured epoch *)
  mutable sn_slo_active : bool;
  sn_slo_violate : bool array;
}

let vm_running st = Array.exists (fun f -> f < 0.0) st.finish

(* ------------------------------------------------------------------ *)
(* Cost models per mode                                                *)
(* ------------------------------------------------------------------ *)

(* Native Linux: no hypercalls, guest page faults are cheap minor
   faults, native IPIs and wake-ups, native I/O. *)
let native_costs =
  {
    Xen.Costs.default with
    Xen.Costs.hypercall_entry = 0.0;
    page_op_send = 0.0;
    page_invalidate = 0.0;
    hypervisor_fault = 1.0e-6;
    page_map = 0.0;
  }

let costs_of_mode = function
  | Config.Linux -> native_costs
  | Config.Xen | Config.Xen_plus -> Xen.Costs.default

let wakeup_of_mode costs = function
  | Config.Linux -> costs.Xen.Costs.blocked_wakeup_native
  | Config.Xen | Config.Xen_plus -> costs.Xen.Costs.blocked_wakeup_guest

(* I/O path: Linux is native; stock Xen uses the dom0-mediated pv
   drivers; Xen+ uses PCI passthrough with the IOMMU — unless the
   first-touch policy is active, which is incompatible with the IOMMU
   (invalid P2M entries abort DMA with an asynchronous error). *)
let io_path mode (policy : Policies.Spec.t) =
  match mode with
  | Config.Linux -> `Native
  | Config.Xen -> `Pv
  | Config.Xen_plus ->
      if policy.Policies.Spec.placement = Policies.Spec.First_touch then `Pv else `Passthrough

let io_request_overhead costs = function
  | `Native -> costs.Xen.Costs.disk_native_request
  | `Pv -> costs.Xen.Costs.disk_native_request +. costs.Xen.Costs.disk_pv_extra
  | `Passthrough -> costs.Xen.Costs.disk_native_request +. costs.Xen.Costs.disk_passthrough_extra

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let zipf_weights ~pages ~s =
  let w = Array.init pages (fun i -> (float_of_int (i + 1)) ** (-.s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let uniform_weights ~pages = Array.make pages (1.0 /. float_of_int pages)

(* Touch [pages] consecutive virtual pages as [cpu]; returns the region
   with its placement resolved through the guest and hypervisor page
   tables. *)
let build_region system st_pool process domain ~vfn0 ~pages ~weights ~cpu ~nodes =
  ignore st_pool;
  let pfns = Array.make pages 0 in
  let page_node = Array.make pages 0 in
  let node_weight = Array.make nodes 0.0 in
  for i = 0 to pages - 1 do
    match Guest.Process.touch process (vfn0 + i) with
    | None -> invalid_arg "Runner: guest physical memory exhausted"
    | Some pfn ->
        pfns.(i) <- pfn;
        (match Xen.P2m.get domain.Xen.Domain.p2m pfn with
        | Xen.P2m.Invalid ->
            ignore (Xen.Domain.handle_fault domain ~costs:system.Xen.System.costs ~pfn ~cpu)
        | Xen.P2m.Mapped _ -> ());
        let node =
          match Xen.P2m.get domain.Xen.Domain.p2m pfn with
          | Xen.P2m.Mapped { mfn; _ } -> Memory.Machine.node_of_mfn system.Xen.System.machine mfn
          | Xen.P2m.Invalid -> domain.Xen.Domain.home_nodes.(0)
        in
        page_node.(i) <- node;
        node_weight.(node) <- node_weight.(node) +. weights.(i)
  done;
  { pfns; weights; page_node; node_weight; replicated = Bytes.make pages '\000';
    replicated_local = 0.0; shift = 0 }

(* TLB walk cycles per instruction: ~0.3 memory accesses per
   instruction, each missing the TLB per the coverage model; nested
   paging makes every walk ~3x dearer, huge pages make walks rare. *)
let tlb_hot_access_share (app : Workloads.App.t) =
  Float.min 0.95 (0.45 +. (0.4 *. app.Workloads.App.zipf_s))

let tlb_cycles_per_instr (cfg : Config.t) (spec : Config.vm_spec) =
  let app = spec.Config.app in
  let page_size = if spec.Config.huge_pages then Guest.Tlb.Huge_2m else Guest.Tlb.Small_4k in
  let virtualized = cfg.Config.mode <> Config.Linux in
  0.3
  *. Guest.Tlb.cycles_per_access Guest.Tlb.opteron page_size ~virtualized
       ~footprint_bytes:(app.Workloads.App.footprint_mb * 1024 * 1024)
       ~hot_access_share:(tlb_hot_access_share app)

(* Under P2M superpages the walk cost is not a boot-time constant: the
   fraction of guest memory behind 2 MiB entries moves as first-touch
   invalidations splinter extents and the promotion scan re-coalesces
   them, and the TLB reach follows it.  Guest-level huge pages
   ([huge_pages]) still assume the whole footprint is huge-mapped. *)
let tlb_cycles_per_instr_dynamic (cfg : Config.t) (spec : Config.vm_spec)
    (domain : Xen.Domain.t) =
  if spec.Config.huge_pages then tlb_cycles_per_instr cfg spec
  else begin
    let app = spec.Config.app in
    let p2m = domain.Xen.Domain.p2m in
    let mapped = Xen.P2m.mapped_count p2m in
    let huge_fraction =
      if mapped = 0 then 0.0
      else float_of_int (Xen.P2m.superpage_frames p2m) /. float_of_int mapped
    in
    0.3
    *. Guest.Tlb.cycles_per_access_mixed Guest.Tlb.opteron ~huge_fraction
         ~virtualized:(cfg.Config.mode <> Config.Linux)
         ~footprint_bytes:(app.Workloads.App.footprint_mb * 1024 * 1024)
         ~hot_access_share:(tlb_hot_access_share app)
  end

(* Radix pricing (--pt-walk): each walk level is charged at the static
   latency of the node backing that page-table level, normalised to
   the local latency the flat model assumes.  Ratios use unsaturated
   latencies — the walk term prices the tables' placement, not the
   epoch's congestion — so on a topology where every level is local
   (one node, or replicated tables) the sum collapses back to the
   flat constant by construction. *)
let tlb_cycles_per_instr_radix (cfg : Config.t) (spec : Config.vm_spec)
    (domain : Xen.Domain.t) ~(pt : Xen.Pt.t) ~(thread_node : int array) ~topo ~latency =
  let app = spec.Config.app in
  let local = Numa.Latency.mem_cycles latency ~hops:0 ~saturation:0.0 in
  let threads = spec.Config.threads in
  let level_ratio level =
    let acc = ref 0.0 in
    for t = 0 to threads - 1 do
      let node = thread_node.(t) in
      let hops = Numa.Topology.distance topo node (Xen.Pt.level_node pt ~level ~node) in
      acc := !acc +. (Numa.Latency.mem_cycles latency ~hops ~saturation:0.0 /. local)
    done;
    !acc /. float_of_int threads
  in
  let huge_fraction =
    if spec.Config.huge_pages then 1.0
    else begin
      (* Without P2M superpages the counter is 0, so this is the 4 KiB
         path; with them it tracks the live fraction like the flat
         dynamic model. *)
      let p2m = domain.Xen.Domain.p2m in
      let mapped = Xen.P2m.mapped_count p2m in
      if mapped = 0 then 0.0
      else float_of_int (Xen.P2m.superpage_frames p2m) /. float_of_int mapped
    end
  in
  0.3
  *. Guest.Tlb.cycles_per_access_mixed_radix Guest.Tlb.opteron ~huge_fraction
       ~virtualized:(cfg.Config.mode <> Config.Linux)
       ~footprint_bytes:(app.Workloads.App.footprint_mb * 1024 * 1024)
       ~hot_access_share:(tlb_hot_access_share app) ~level_ratio

(* Popularity of page [i] under the region's current rotation. *)
let eff_weight region i =
  let pages = Array.length region.weights in
  region.weights.(((i - region.shift) mod pages + pages) mod pages)

(* Move the hot front: re-aggregate per-node popularity under the new
   rotation (replicated pages keep serving their read share locally). *)
let rotate_region region ~shift ~read_fraction =
  if shift <> region.shift then begin
    region.shift <- shift;
    Array.fill region.node_weight 0 (Array.length region.node_weight) 0.0;
    region.replicated_local <- 0.0;
    Array.iteri
      (fun i node ->
        let w = eff_weight region i in
        if Bytes.get region.replicated i <> '\000' then begin
          region.node_weight.(node) <- region.node_weight.(node) +. (w *. (1.0 -. read_fraction));
          region.replicated_local <- region.replicated_local +. (w *. read_fraction)
        end
        else region.node_weight.(node) <- region.node_weight.(node) +. w)
      region.page_node
  end

let carrefour_config (cfg : Config.t) machine =
  match cfg.Config.carrefour_config with
  | Some config -> config
  | None ->
      let frame_bytes = Memory.Machine.frame_bytes machine in
      let budget = max 16 (32 * 1024 * 1024 / frame_bytes) in
      {
        Policies.Carrefour.User_component.default_config with
        Policies.Carrefour.User_component.mc_threshold = 0.50;
        ic_threshold = 0.12;
        dominant_fraction = 0.75;
        min_accesses = 4.0;
        migration_budget = budget;
      }

let setup_vm (cfg : Config.t) system injector root_rng (spec : Config.vm_spec) =
  let app = spec.Config.app in
  let topo = system.Xen.System.topo in
  let nodes = Numa.Topology.node_count topo in
  let machine = system.Xen.System.machine in
  let frame_bytes = Memory.Machine.frame_bytes machine in
  let footprint_bytes = app.Workloads.App.footprint_mb * 1024 * 1024 in
  (* The paper's VMs own far more memory than any single application
     uses; two extra GiB ensure the (always fragmented) first and last
     guest GiB of the round-1G allocator are not where the application
     lives. *)
  let mem_bytes = footprint_bytes + (footprint_bytes / 4) + (2 * 1024 * 1024 * 1024) in
  let domain =
    Xen.System.create_domain system ~name:app.Workloads.App.name ~kind:Xen.Domain.DomU
      ~vcpus:spec.Config.threads ~mem_bytes ?home_nodes:spec.Config.home_nodes ()
  in
  let rng = Sim.Rng.split root_rng in
  (* Derived before anything draws from [rng], so each stream is a
     pure function of (cell seed, vCPU id) — and [derive] does not
     advance [rng], so inserting this changed no existing draw. *)
  let vcpu_rng = Shard.streams rng ~count:spec.Config.threads in
  let policy = spec.Config.policy in
  (* P2M superpages only exist under a hypervisor. *)
  let superpages = spec.Config.superpages && cfg.Config.mode <> Config.Linux in
  (* So do the priced page tables and their per-node mirrors. *)
  let pt_walk = spec.Config.pt_walk && cfg.Config.mode <> Config.Linux in
  let replicate_pt = spec.Config.replicate_pt && cfg.Config.mode <> Config.Linux in
  let boot =
    match cfg.Config.mode with
    | Config.Linux -> policy  (* Linux applies its policy directly. *)
    | Config.Xen | Config.Xen_plus ->
        if policy.Policies.Spec.placement = Policies.Spec.Round_1g then Policies.Spec.round_1g
        else if superpages && policy.Policies.Spec.placement = Policies.Spec.First_touch then
          (* With superpages the contiguous boot placement is worth
             modelling for first-touch too: the switch's free-list
             release then splinters every 2 MiB entry — the paper's
             granularity tension at its sharpest. *)
          Policies.Spec.round_1g
        else Policies.Spec.round_4k
  in
  let manager =
    Policies.Manager.attach ~carrefour_config:(carrefour_config cfg machine) ~superpages
      ~pt_walk ~replicate_pt system domain ~boot ~rng
  in
  (match cfg.Config.mode with
  | Config.Linux -> ()
  | Config.Xen | Config.Xen_plus ->
      if not (Policies.Spec.equal policy boot) then begin
        match Policies.Manager.set_policy manager policy with
        | Ok () ->
            (* On a switch to first-touch the guest reports its whole
               free list; every entry is invalidated so the first touch
               of each page faults into the hypervisor. *)
            if policy.Policies.Spec.placement = Policies.Spec.First_touch then
              ignore
                (Policies.Manager.release_free_range manager ~first:0
                   ~count:domain.Xen.Domain.mem_frames)
        | Error msg -> invalid_arg ("Runner: " ^ msg)
      end);
  let queue =
    match cfg.Config.mode with
    | Config.Linux -> None
    | Config.Xen | Config.Xen_plus ->
        if
          Faults.Injector.enabled injector
          && policy.Policies.Spec.placement = Policies.Spec.First_touch
          && app.Workloads.App.page_release_period <> None
        then begin
          let q =
            Guest.Pv_queue.create ~frames:domain.Xen.Domain.mem_frames
              ~flush:(fun ops -> Policies.Manager.page_ops_hypercall manager ops)
              ()
          in
          Faults.Injector.install_queue injector q;
          Some q
        end
        else None
  in
  (* Policy installation and boot population are not application time. *)
  Xen.Domain.reset_account domain;
  let threads = spec.Config.threads in
  let total_pages = max (threads + 1) (footprint_bytes / frame_bytes) in
  let shared_pages =
    max 1 (int_of_float (app.Workloads.App.shared_bytes_fraction *. float_of_int total_pages))
  in
  let private_pages = max 1 ((total_pages - shared_pages) / threads) in
  let vframes = shared_pages + (threads * private_pages) + 64 in
  let gib_frames = max 1 (1024 * 1024 * 1024 / frame_bytes) in
  let first_fresh = min gib_frames (domain.Xen.Domain.mem_frames / 4) in
  let pool = Guest.Pfn_pool.create ~frames:domain.Xen.Domain.mem_frames ~first_fresh () in
  let process = Guest.Process.create ~pid:1 ~vframes ~pool in
  let master_cpu = domain.Xen.Domain.vcpu_pin.(0) in
  let shared =
    build_region system pool process domain ~vfn0:0 ~pages:shared_pages
      ~weights:(zipf_weights ~pages:shared_pages ~s:app.Workloads.App.zipf_s)
      ~cpu:master_cpu ~nodes
  in
  let privates =
    Array.init threads (fun t ->
        build_region system pool process domain
          ~vfn0:(shared_pages + (t * private_pages))
          ~pages:private_pages
          ~weights:(uniform_weights ~pages:private_pages)
          ~cpu:domain.Xen.Domain.vcpu_pin.(t) ~nodes)
  in
  let pfn_owner = Array.make domain.Xen.Domain.mem_frames (-1) in
  let pfn_slot = Array.make domain.Xen.Domain.mem_frames 0 in
  Array.iteri
    (fun i pfn ->
      pfn_owner.(pfn) <- 0;
      pfn_slot.(pfn) <- i)
    shared.pfns;
  Array.iteri
    (fun t region ->
      Array.iteri
        (fun i pfn ->
          pfn_owner.(pfn) <- t + 1;
          pfn_slot.(pfn) <- i)
        region.pfns)
    privates;
  let work =
    Workloads.App.instructions_per_thread app ~threads
      ~freq_hz:cfg.Config.machine.Numa.Machine_desc.freq_hz
  in
  {
    spec;
    domain;
    manager;
    pool;
    queue;
    process;
    shared;
    privates;
    pfn_owner;
    pfn_slot;
    sample_seen = Bytes.make shared_pages '\000';
    sample_touched = Array.make 128 0;
    sample_pfns = Array.make (128 + (8 * threads)) 0;
    sample_count = 0;
    sample_scratch = Array.make nodes 0.0;
    remaining = Array.make threads work;
    avg_lat = Array.make threads 190.0;
    finish = Array.make threads (-1.0);
    thread_node =
      Array.init threads (fun t -> Numa.Topology.node_of_cpu topo domain.Xen.Domain.vcpu_pin.(t));
    thread_dst = Array.make (threads * nodes) 0.0;
    thread_accesses = Array.make threads 0.0;
    thread_doit = Array.make threads 0.0;
    thread_cap = Array.make threads 0.0;
    thread_shared = Array.make threads 0.0;
    thread_burst = Array.make threads 0.0;
    thread_sync = Array.make threads 0.0;
    thread_total = Array.make threads 0.0;
    thread_final = Array.make threads 0.0;
    vcpu_rng;
    src_shared = Array.make nodes 0.0;
    shared_accesses_epoch = 0.0;
    burst_victim = -1;
    burst_source = -1;
    burst_accesses_epoch = 0.0;
    io_bytes_left = Workloads.App.disk_bytes_total app;
    sync_overhead = 0.0;
    migrations = 0;
    weighted_lat = 0.0;
    total_accesses = 0.0;
    local_accesses = 0.0;
    lat_hist = Sim.Stats.Histogram.create ();
    slo_scratch = Array.make threads 0.0;
    slo_violations = Array.make (List.length cfg.Config.slo) 0;
    active_epochs = 0;
    private_sample_cursor = 0;
    tlb_cycles_per_instr = tlb_cycles_per_instr cfg spec;
    work_per_thread = work;
    phase = 0;
    rng;
    ff_armed = false;
    ff_p2m_version = -1;
    ff_migrations = 0;
    ff_finished = 0;
    ff_rotated = false;
    ff_io = 0.0;
    ff_slo_active = false;
    ff_slo_violate = Array.make (List.length cfg.Config.slo) false;
    ff_snap =
      Array.init 2 (fun _ ->
          {
            sn_epoch = -1;
            sn_sync = Array.make threads 0.0;
            sn_doit = Array.make threads 0.0;
            sn_cap = Array.make threads 0.0;
            sn_final = Array.make threads 0.0;
            sn_total = Array.make threads 0.0;
            sn_lat = Array.make threads 0.0;
            sn_dst = Array.make (threads * nodes) 0.0;
            sn_io = 0.0;
            sn_slo_active = false;
            sn_slo_violate = Array.make (List.length cfg.Config.slo) false;
          });
  }

(* ------------------------------------------------------------------ *)
(* Epoch mechanics                                                     *)
(* ------------------------------------------------------------------ *)

(* Occupancy of each pCPU by still-running threads, for the CPU share
   of consolidated VMs.  dom0's vCPUs (pinned on node 0) count as
   occupants while they are busy shuttling pv I/O.  [occ] is a
   caller-owned buffer refilled every epoch. *)
let compute_occupancy ~occ states ~dom0 ~dom0_active =
  Array.fill occ 0 (Array.length occ) 0;
  List.iter
    (fun st ->
      Array.iteri
        (fun t f ->
          if f < 0.0 then begin
            let pcpu = st.domain.Xen.Domain.vcpu_pin.(t) in
            occ.(pcpu) <- occ.(pcpu) + 1
          end)
        st.finish)
    states;
  (match dom0 with
  | Some (d : Xen.Domain.t) ->
      for v = 0 to min dom0_active d.Xen.Domain.vcpus - 1 do
        occ.(d.Xen.Domain.vcpu_pin.(v)) <- occ.(d.Xen.Domain.vcpu_pin.(v)) + 1
      done
  | None -> ())

(* Blocking events that actually halt a CPU.  Network servers wait
   several times per request (packet, locks), hence the factor; above
   ~25k halts/s wake-ups coalesce — a loaded CPU finds new work before
   it can halt — which bounds the exposure. *)
let blocking_events_per_s app =
  let base = Workloads.App.sync_events_per_s app in
  let scaled = if app.Workloads.App.net_service then 3.0 *. base else base in
  Float.min 25_000.0 scaled

let epoch_sync_overhead cfg st =
  let app = st.spec.Config.app in
  let costs = costs_of_mode cfg.Config.mode in
  let events = blocking_events_per_s app *. cfg.Config.epoch in
  let primitive = if st.spec.Config.use_mcs then Guest.Sync.Mcs_spin else Guest.Sync.Futex_sleep in
  let per_event =
    match primitive with
    | Guest.Sync.Mcs_spin -> 0.0
    | Guest.Sync.Futex_sleep ->
        (2.0 *. costs.Xen.Costs.context_switch) +. wakeup_of_mode costs cfg.Config.mode
  in
  let total = events *. per_event in
  let threads = float_of_int st.spec.Config.threads in
  Float.min (0.85 *. cfg.Config.epoch) (total /. threads)

(* Distribute one thread's epoch accesses over destination nodes.
   Shard-safe: writes only vCPU [t]'s row and [t]-indexed slots; the
   shared-region and burst totals are folded in later by
   [reduce_epoch_traffic]. *)
let distribute_thread st t ~accesses =
  let app = st.spec.Config.app in
  let nodes = Array.length st.src_shared in
  let dst = st.thread_dst in
  let base = t * nodes in
  let m = app.Workloads.App.master_bias in
  let burst_share = if st.burst_source = t then 0.5 else 0.0 in
  let acc_burst = burst_share *. accesses in
  let rest = accesses -. acc_burst in
  let acc_shared = m *. rest in
  let acc_own = rest -. acc_shared in
  let own_node = st.thread_node.(t) in
  (* Replicated read-only pages are served from the local copy. *)
  dst.(base + own_node) <-
    dst.(base + own_node)
    +. (acc_shared *. st.shared.replicated_local)
    +. (acc_own *. st.privates.(t).replicated_local);
  for n = 0 to nodes - 1 do
    dst.(base + n) <- dst.(base + n) +. (acc_shared *. st.shared.node_weight.(n));
    dst.(base + n) <- dst.(base + n) +. (acc_own *. st.privates.(t).node_weight.(n))
  done;
  if acc_burst > 0.0 && st.burst_victim >= 0 then begin
    let victim = st.privates.(st.burst_victim) in
    for n = 0 to nodes - 1 do
      dst.(base + n) <- dst.(base + n) +. (acc_burst *. victim.node_weight.(n))
    done;
    st.thread_burst.(t) <- acc_burst
  end;
  st.thread_shared.(t) <- acc_shared

(* The compute half of the epoch: capacity, instructions and the
   destination spread of vCPUs [lo .. hi-1].  Everything written is
   indexed by the vCPU, so disjoint ranges commute; everything read
   ([occupancy], the region weights, the epoch parameters) is fixed
   for the epoch.  The injected-stall draw is the one exception —
   it consumes the injector's shared stream in vCPU order — so fault
   runs always call this with the full range on one shard. *)
let epoch_compute_kernel st ~injector ~faults_on ~occupancy ~oh ~carrefour_tax ~mr ~freq
    ~epoch_len ~lo ~hi =
  for t = lo to hi - 1 do
    if st.finish.(t) < 0.0 then begin
      if faults_on && Faults.Injector.vcpu_stalls injector then
        (* Injected stall: the vCPU makes no progress this epoch; the
           lost time shows up as blocked time. *)
        st.thread_sync.(t) <- epoch_len
      else begin
        let pcpu = st.domain.Xen.Domain.vcpu_pin.(t) in
        let share = 1.0 /. float_of_int (max 1 occupancy.(pcpu)) in
        let avail = (epoch_len -. oh) *. share *. carrefour_tax in
        st.thread_sync.(t) <- oh;
        let cpi = 1.0 +. (mr *. st.avg_lat.(t)) +. st.tlb_cycles_per_instr in
        let cap = avail *. freq /. cpi in
        if cap > 0.0 then begin
          let doit = Float.min st.remaining.(t) cap in
          st.thread_doit.(t) <- doit;
          st.thread_cap.(t) <- cap;
          let accesses = doit *. mr in
          st.thread_accesses.(t) <- accesses;
          distribute_thread st t ~accesses
        end
      end
    end
  done

(* Fixed-order reduction over the kernel's per-vCPU slots: vCPU 0
   first, always — the summation tree of the unsharded loop. *)
let reduce_epoch_traffic st ~threads ~accesses_acc =
  for t = 0 to threads - 1 do
    if st.finish.(t) < 0.0 then st.sync_overhead <- st.sync_overhead +. st.thread_sync.(t);
    if st.thread_cap.(t) > 0.0 then begin
      let acc_shared = st.thread_shared.(t) in
      st.src_shared.(st.thread_node.(t)) <- st.src_shared.(st.thread_node.(t)) +. acc_shared;
      st.shared_accesses_epoch <- st.shared_accesses_epoch +. acc_shared;
      if st.thread_burst.(t) > 0.0 then
        st.burst_accesses_epoch <- st.burst_accesses_epoch +. st.thread_burst.(t);
      accesses_acc := !accesses_acc +. st.thread_accesses.(t)
    end
  done

(* Per-epoch safety check of the steady-state fast-forward: a replayed
   epoch must not be one in which a thread would have finished or hit
   its work ceiling, because either changes next epoch's inputs.  For
   every still-running thread that did work in the armed epoch,
   [remaining >= cap] keeps the kernel's [Float.min remaining cap]
   bitwise equal to [cap], and [remaining -. final > 0] keeps the
   finish branch cold.  Pure — reads only the frozen capture arrays —
   so the bench can time it in isolation. *)
let replay_guard ~finish ~doit ~remaining ~cap ~final =
  let ok = ref true in
  let n = Array.length doit in
  for t = 0 to n - 1 do
    if
      !ok && finish.(t) < 0.0 && doit.(t) > 0.0
      && not (remaining.(t) >= cap.(t) && remaining.(t) -. final.(t) > 0.0)
    then ok := false
  done;
  !ok

(* Bitwise equality of two float arrays — the witness comparisons must
   distinguish last-ulp neighbours, which [=] on floats does, but
   bit-comparison also makes the NaN/negative-zero cases unambiguous. *)
let arrays_bits_equal a b =
  let ok = ref true in
  let n = Array.length a in
  for i = 0 to n - 1 do
    if !ok && Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then ok := false
  done;
  !ok

(* Pass A of the epoch: the two pieces that must run every epoch even
   when the fast-forward replays the rest — the hot-front phase check
   (reads only [remaining]) and the burst bernoulli draw (advances
   [st.rng], whose stream position must stay identical whether or not
   the epoch is replayed).  Hoisted out of the compute pass verbatim;
   the draws use per-VM streams, so running pass A for every VM before
   any kernel is draw-order-neutral.  Also snapshots the quiescence
   witnesses that the arming check compares at the end of a full
   epoch. *)
let epoch_pass_a st =
  st.ff_rotated <- false;
  st.ff_io <- 0.0;
  st.ff_p2m_version <- Xen.P2m.version st.domain.Xen.Domain.p2m;
  st.ff_migrations <- st.migrations;
  (let fin = ref 0 in
   Array.iter (fun f -> if f >= 0.0 then incr fin) st.finish;
   st.ff_finished <- !fin);
  let app = st.spec.Config.app in
  (* algorithmic phases: as the run progresses, the hot front of the
     shared region moves; static placements do not notice, dynamic
     policies must chase *)
  if app.Workloads.App.phases > 1 then begin
    let total = st.work_per_thread *. float_of_int st.spec.Config.threads in
    let left = Array.fold_left ( +. ) 0.0 st.remaining in
    let frac = Float.max 0.0 (1.0 -. (left /. total)) in
    let phase =
      min (app.Workloads.App.phases - 1)
        (int_of_float (frac *. float_of_int app.Workloads.App.phases))
    in
    if phase <> st.phase then begin
      st.phase <- phase;
      st.ff_rotated <- true;
      let pages = Array.length st.shared.pfns in
      rotate_region st.shared
        ~shift:(phase * (pages / app.Workloads.App.phases) mod pages)
        ~read_fraction:app.Workloads.App.read_fraction
    end
  end;
  (* burst pattern: one thread transiently hammers another's pages *)
  if
    app.Workloads.App.remote_burst > 0.0
    && Sim.Rng.bernoulli st.rng app.Workloads.App.remote_burst
    && st.spec.Config.threads > 1
  then begin
    st.burst_victim <- Sim.Rng.int st.rng st.spec.Config.threads;
    st.burst_source <- (st.burst_victim + 1 + Sim.Rng.int st.rng (st.spec.Config.threads - 1))
                       mod st.spec.Config.threads
  end
  else begin
    st.burst_victim <- -1;
    st.burst_source <- -1
  end

(* Charge the epoch's disk DMA traffic.  Native Linux allocates the DMA
   buffer contiguously, hence on a single node; under Xen the hypervisor
   page table spreads guest-contiguous buffers over the home nodes
   (the effect the paper observes in Section 5.3.3). *)
let disk_traffic cfg st counters ~bus_node ~node_demand =
  let app = st.spec.Config.app in
  if st.io_bytes_left > 0.0 then begin
    let bytes = Float.min st.io_bytes_left (app.Workloads.App.disk_mb_s *. 1e6 *. cfg.Config.epoch) in
    st.io_bytes_left <- st.io_bytes_left -. bytes;
    st.ff_io <- bytes;
    match cfg.Config.mode with
    | Config.Linux ->
        let node = st.thread_node.(0) in
        node_demand.(node) <- node_demand.(node) +. bytes;
        Numa.Counters.record_accesses counters ~src:bus_node ~dst:node
          ~count:(bytes /. access_bytes) ~bytes_per_access:access_bytes
    | Config.Xen | Config.Xen_plus ->
        let home = st.domain.Xen.Domain.home_nodes in
        let share = bytes /. float_of_int (Array.length home) in
        Array.iter
          (fun node ->
            node_demand.(node) <- node_demand.(node) +. share;
            Numa.Counters.record_accesses counters ~src:bus_node ~dst:node
              ~count:(share /. access_bytes) ~bytes_per_access:access_bytes)
          home
  end

(* Hot-page samples for Carrefour: the top of the shared region's
   popularity distribution, a rotating window of each thread's private
   pages, and — during a burst — the victim's hammered pages.
   Samples are pushed straight into the system component's heat table
   (which copies on first sight, accumulates in place after) from one
   reusable scratch array; the fed pfns are remembered in
   [st.sample_pfns] for the placement refresh. *)
let feed_samples st sys =
  let nodes = Array.length st.src_shared in
  let scratch = st.sample_scratch in
  let read_fraction = st.spec.Config.app.Workloads.App.read_fraction in
  st.sample_count <- 0;
  let push pfn =
    Policies.Carrefour.System_component.record_sample sys ~pfn ~node_accesses:scratch
      ~read_fraction;
    st.sample_pfns.(st.sample_count) <- pfn;
    st.sample_count <- st.sample_count + 1
  in
  let shared_total = st.shared_accesses_epoch in
  if shared_total > 0.0 then begin
    let pages = Array.length st.shared.pfns in
    (* IBS-style sampling: pages are drawn with probability proportional
       to their access frequency, so hot pages dominate the table but
       every accessed page is eventually observed. *)
    let seen = st.sample_seen in
    let touched = ref 0 in
    let emit rank =
      let i = (st.shared.shift + rank) mod pages in
      if Bytes.get seen i = '\000' then begin
        Bytes.set seen i '\001';
        st.sample_touched.(!touched) <- i;
        incr touched;
        let w = st.shared.weights.(rank) in
        for n = 0 to nodes - 1 do
          scratch.(n) <- st.src_shared.(n) *. w
        done;
        push st.shared.pfns.(i)
      end
    in
    for rank = 0 to min 32 pages - 1 do
      emit rank
    done;
    let app = st.spec.Config.app in
    for _ = 1 to min 96 pages do
      emit (Sim.Rng.zipf st.rng ~n:pages ~s:app.Workloads.App.zipf_s)
    done;
    for j = 0 to !touched - 1 do
      Bytes.set seen st.sample_touched.(j) '\000'
    done
  end;
  let threads = Array.length st.privates in
  for t = 0 to threads - 1 do
    if st.finish.(t) < 0.0 then begin
      let region = st.privates.(t) in
      let pages = Array.length region.pfns in
      let per_page =
        (* Uniform accesses of the owner over its private pages. *)
        let app = st.spec.Config.app in
        let own = 1.0 -. app.Workloads.App.master_bias in
        own *. st.thread_accesses.(t) /. float_of_int pages
      in
      let k = min 8 pages in
      for j = 0 to k - 1 do
        let i = (st.private_sample_cursor + j) mod pages in
        Array.fill scratch 0 nodes 0.0;
        scratch.(st.thread_node.(t)) <- per_page;
        (* During a burst the source thread hammers the victim's pages:
           a single dominant remote node, Carrefour's migration bait. *)
        if t = st.burst_victim && st.burst_source >= 0 then
          scratch.(st.thread_node.(st.burst_source)) <-
            scratch.(st.thread_node.(st.burst_source))
            +. (st.burst_accesses_epoch /. float_of_int pages *. 8.0);
        push region.pfns.(i)
      done
    end
  done;
  st.private_sample_cursor <- st.private_sample_cursor + 8

(* Refresh cached placement after Carrefour migrations and
   replications, over the pages fed this period. *)
let refresh_placement st =
  let read_fraction = st.spec.Config.app.Workloads.App.read_fraction in
  let carrefour = Policies.Manager.carrefour st.manager in
  for s = 0 to st.sample_count - 1 do
    let pfn = st.sample_pfns.(s) in
    (let owner = if pfn < Array.length st.pfn_owner then st.pfn_owner.(pfn) else -1 in
      if owner >= 0 then
        match Policies.Manager.node_of_pfn st.manager pfn with
        | None -> ()
        | Some node ->
            let i = st.pfn_slot.(pfn) in
            let region = if owner = 0 then st.shared else st.privates.(owner - 1) in
            let w = eff_weight region i in
            (* Replication status change: the read share of the
               page's popularity moves between the home node and the
               everywhere-local pool. *)
            let replicated_now =
              match carrefour with
              | Some sys -> Policies.Carrefour.System_component.is_replicated sys pfn
              | None -> false
            in
            let was = Bytes.get region.replicated i <> '\000' in
            if replicated_now && not was then begin
              let moved = w *. read_fraction in
              region.node_weight.(region.page_node.(i)) <-
                region.node_weight.(region.page_node.(i)) -. moved;
              region.replicated_local <- region.replicated_local +. moved;
              Bytes.set region.replicated i '\001'
            end
            else if was && not replicated_now then begin
              let moved = w *. read_fraction in
              region.node_weight.(region.page_node.(i)) <-
                region.node_weight.(region.page_node.(i)) +. moved;
              region.replicated_local <- region.replicated_local -. moved;
              Bytes.set region.replicated i '\000'
            end;
            let old_node = region.page_node.(i) in
            if old_node <> node then begin
              let moved = if replicated_now then w *. (1.0 -. read_fraction) else w in
              region.node_weight.(old_node) <- region.node_weight.(old_node) -. moved;
              region.node_weight.(node) <- region.node_weight.(node) +. moved;
              region.page_node.(i) <- node;
              st.migrations <- st.migrations + 1
            end)
  done

(* Re-resolve every region page's node through the P2M: while an
   evacuation drain is in flight placement moves wholesale, far beyond
   what the per-sample Carrefour refresh can track, and traffic routed
   at the stale (collapsing) node would never recover. *)
let refresh_region st region =
  let read_fraction = st.spec.Config.app.Workloads.App.read_fraction in
  let nodes = Array.length region.node_weight in
  Array.fill region.node_weight 0 nodes 0.0;
  region.replicated_local <- 0.0;
  Array.iteri
    (fun i pfn ->
      (match Policies.Manager.node_of_pfn st.manager pfn with
      | Some node -> region.page_node.(i) <- node
      | None -> ());
      let node = region.page_node.(i) in
      let w = eff_weight region i in
      if Bytes.get region.replicated i <> '\000' then begin
        region.node_weight.(node) <- region.node_weight.(node) +. (w *. (1.0 -. read_fraction));
        region.replicated_local <- region.replicated_local +. (w *. read_fraction)
      end
      else region.node_weight.(node) <- region.node_weight.(node) +. w)
    region.pfns

let refresh_regions st =
  refresh_region st st.shared;
  Array.iter (refresh_region st) st.privates

(* Targeted variant for sparse placement changes (the UE remap): move
   one page's popularity between nodes. *)
let update_page_node st pfn =
  if pfn < Array.length st.pfn_owner then begin
    let owner = st.pfn_owner.(pfn) in
    if owner >= 0 then
      match Policies.Manager.node_of_pfn st.manager pfn with
      | None -> ()
      | Some node ->
          let region = if owner = 0 then st.shared else st.privates.(owner - 1) in
          let i = st.pfn_slot.(pfn) in
          let old_node = region.page_node.(i) in
          if old_node <> node then begin
            let read_fraction = st.spec.Config.app.Workloads.App.read_fraction in
            let w = eff_weight region i in
            let moved =
              if Bytes.get region.replicated i <> '\000' then w *. (1.0 -. read_fraction)
              else w
            in
            region.node_weight.(old_node) <- region.node_weight.(old_node) -. moved;
            region.node_weight.(node) <- region.node_weight.(node) +. moved;
            region.page_node.(i) <- node
          end
  end

(* ------------------------------------------------------------------ *)
(* Completion accounting                                               *)
(* ------------------------------------------------------------------ *)

let release_churn_overhead cfg st ~active_seconds =
  match (cfg.Config.mode, st.spec.Config.policy.Policies.Spec.placement) with
  | (Config.Xen | Config.Xen_plus), Policies.Spec.First_touch -> (
      match st.spec.Config.app.Workloads.App.page_release_period with
      | None -> 0.0
      | Some period ->
          let costs = Xen.Costs.default in
          let per_release =
            (costs.Xen.Costs.hypercall_entry /. 128.0)
            +. costs.Xen.Costs.page_op_send +. costs.Xen.Costs.page_invalidate
            +. costs.Xen.Costs.hypervisor_fault +. costs.Xen.Costs.page_map
          in
          active_seconds /. period *. per_release /. float_of_int st.spec.Config.threads)
  | _ -> 0.0

let vm_degradation st =
  let d = Policies.Manager.degrade st.manager in
  {
    Result.migrate_retries = d.Policies.Manager.migrate_retries;
    deferred = d.Policies.Manager.deferred;
    drained = d.Policies.Manager.drained;
    fallback_maps = d.Policies.Manager.fallback_maps;
    breaker_trips = d.Policies.Manager.breaker_trips;
    breaker_level = d.Policies.Manager.breaker_level;
    lost_batches = d.Policies.Manager.lost_batches;
    reconciled = d.Policies.Manager.reconciled;
    backoff_time = d.Policies.Manager.backoff_time;
    ecc_ce = d.Policies.Manager.ecc_ce;
    ecc_ue = d.Policies.Manager.ecc_ue;
    offlined = d.Policies.Manager.offlined;
    evacuated = d.Policies.Manager.evacuated;
    evac_epochs = d.Policies.Manager.evac_epochs;
  }

let vm_result cfg system st =
  let app = st.spec.Config.app in
  let threads = float_of_int st.spec.Config.threads in
  let scale = float_of_int (Memory.Machine.page_scale system.Xen.System.machine) in
  let compute_time = Array.fold_left Float.max 0.0 st.finish in
  let account = st.domain.Xen.Domain.account in
  let virt_overhead =
    ((account.Xen.Domain.fault_time *. scale)
    +. account.Xen.Domain.hypercall_time +. account.Xen.Domain.migrate_time
    +. account.Xen.Domain.pt_replica_time)
    /. threads
  in
  let path = io_path cfg.Config.mode st.spec.Config.policy in
  let io_overhead =
    if Workloads.App.uses_disk app then begin
      let costs = costs_of_mode cfg.Config.mode in
      let requests =
        Workloads.App.disk_bytes_total app /. float_of_int app.Workloads.App.io_block_bytes
      in
      requests *. io_request_overhead costs path
    end
    else 0.0
  in
  let release_overhead = release_churn_overhead cfg st ~active_seconds:compute_time in
  let p2m = st.domain.Xen.Domain.p2m in
  let mapped = Xen.P2m.mapped_count p2m in
  let avg_latency_cycles =
    if st.total_accesses > 0.0 then st.weighted_lat /. st.total_accesses else 0.0
  in
  let latency =
    let h = st.lat_hist in
    if Sim.Stats.Histogram.count h = 0 then Result.no_latency
    else
      {
        Result.samples = Sim.Stats.Histogram.count h;
        lat_mean = Sim.Stats.Histogram.mean h;
        p50 = Sim.Stats.Histogram.percentile h 50.0;
        p95 = Sim.Stats.Histogram.percentile h 95.0;
        p99 = Sim.Stats.Histogram.percentile h 99.0;
        p999 = Sim.Stats.Histogram.percentile h 99.9;
        lat_max = Sim.Stats.Histogram.max h;
      }
  in
  let slo =
    List.mapi
      (fun i (metric, target) ->
        let value =
          match metric with
          | "mean" -> avg_latency_cycles
          | "p50" -> latency.Result.p50
          | "p95" -> latency.Result.p95
          | "p99" -> latency.Result.p99
          | "p999" -> latency.Result.p999
          | m -> invalid_arg ("Runner: unknown SLO metric " ^ m)
        in
        {
          Result.metric;
          target;
          value;
          violation_epochs = st.slo_violations.(i);
          active_epochs = st.active_epochs;
          burn_rate =
            (if st.active_epochs = 0 then 0.0
             else float_of_int st.slo_violations.(i) /. float_of_int st.active_epochs);
          violated = value > target;
        })
      cfg.Config.slo
  in
  {
    Result.app_name = app.Workloads.App.name;
    policy = Policies.Spec.name st.spec.Config.policy;
    completion = compute_time +. io_overhead +. virt_overhead +. release_overhead;
    compute_time;
    io_overhead;
    sync_overhead = st.sync_overhead;
    virt_overhead;
    release_overhead;
    faults = account.Xen.Domain.fault_count;
    migrations = st.migrations;
    avg_latency_cycles;
    local_fraction =
      (if st.total_accesses > 0.0 then st.local_accesses /. st.total_accesses else 0.0);
    superpages = Xen.P2m.superpage_count p2m;
    superpage_fraction =
      (if mapped > 0 then float_of_int (Xen.P2m.superpage_frames p2m) /. float_of_int mapped
       else 0.0);
    splinters = Xen.P2m.splinter_count p2m;
    promotes = Xen.P2m.promote_count p2m;
    superpage_migrates = (Policies.Manager.stats st.manager).Policies.Manager.superpage_migrates;
    walk_cycles_per_instr = st.tlb_cycles_per_instr;
    pt_replica_updates =
      (match Policies.Manager.pt st.manager with
      | Some pt -> Xen.Pt.replica_updates pt
      | None -> 0);
    pt_replica_invalidations =
      (match Policies.Manager.pt st.manager with
      | Some pt -> Xen.Pt.replica_invalidations pt
      | None -> 0);
    pt_replica_time = account.Xen.Domain.pt_replica_time;
    latency;
    slo;
    degradation = vm_degradation st;
  }

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

(* Run a vCPU-indexed kernel over a shard plan: ranges beyond the
   first go to the team members, range 0 (or everything, without a
   team) runs on the calling domain.  [Pool.Team.run] is a full
   barrier, so the sequential reduction that follows a dispatch reads
   fully published shard slices. *)
let shard_dispatch team (ranges : Shard.range array) ~threads f =
  match team with
  | Some tm when Array.length ranges > 1 ->
      Pool.Team.run tm (fun rank ->
          if rank < Array.length ranges then begin
            let r = ranges.(rank) in
            f r.Shard.lo r.Shard.hi
          end)
  | _ -> f 0 threads

let run (cfg : Config.t) =
  let scale = Config.page_scale cfg in
  let machine_desc = cfg.Config.machine in
  let topo = machine_desc.Numa.Machine_desc.topology () in
  let costs = costs_of_mode cfg.Config.mode in
  let system = Xen.System.create ~page_scale:scale ~costs topo in
  (* One trace stream per simulated run, labelled by a pure function of
     the run configuration: labels (not OS worker identities) are the
     merge keys, so the merged trace is byte-identical at any --jobs. *)
  let obs_stream =
    match Obs.Trace.current () with
    | None -> None
    | Some session ->
        let vm_desc (vm : Config.vm_spec) =
          Printf.sprintf "%s/%s%s%s%s%s" vm.Config.app.Workloads.App.name
            (Policies.Spec.name vm.Config.policy)
            (if vm.Config.use_mcs then "/mcs" else "")
            (if vm.Config.superpages then "/sp" else "")
            (if vm.Config.pt_walk then "/ptw" else "")
            (if vm.Config.replicate_pt then "/rep" else "")
        in
        let label =
          Printf.sprintf "%s|%s|seed=%d" (Config.mode_name cfg.Config.mode)
            (String.concat "," (List.map vm_desc cfg.Config.vms))
            cfg.Config.seed
        in
        Some (Obs.Trace.stream session ~label)
  in
  Xen.System.set_obs system obs_stream;
  let counters = Numa.Counters.create topo in
  let root_rng = Sim.Rng.create ~seed:cfg.Config.seed in
  (* dom0 handles the pv I/O path; the paper pins it to node 0's
     CPUs.  Its vCPUs only occupy pCPUs while I/O flows through it. *)
  let dom0 =
    match cfg.Config.mode with
    | Config.Linux -> None
    | Config.Xen | Config.Xen_plus ->
        Some
          (Xen.System.create_domain system ~name:"dom0" ~kind:Xen.Domain.Dom0 ~vcpus:6
             ~mem_bytes:(2 * 1024 * 1024 * 1024) ~home_nodes:[| 0 |] ())
  in
  (match dom0 with
  | Some d -> Array.iter (fun p -> system.Xen.System.pcpu_load.(p) <- system.Xen.System.pcpu_load.(p) - 1) d.Xen.Domain.vcpu_pin
  | None -> ());
  (* The injector owns a private stream derived from the run seed, so a
     fault run is exactly as reproducible as a clean one.  At epoch -1
     (boot) no window is armed: population is never perturbed. *)
  let injector = Faults.Injector.create ~seed:cfg.Config.seed cfg.Config.faults in
  Faults.Injector.install injector system;
  let faults_on = Faults.Injector.enabled injector in
  let states = List.map (setup_vm cfg system injector root_rng) cfg.Config.vms in
  (* Node-fail targets are drawn from the union of the guests' home
     nodes, so an injected failure always lands where memory lives.
     Safe after setup: at epoch -1 nothing is armed, so boot drew
     nothing from the injector's stream. *)
  (let seen = Array.make (Numa.Topology.node_count topo) false in
   List.iter
     (fun st -> Array.iter (fun n -> seen.(n) <- true) st.domain.Xen.Domain.home_nodes)
     states;
   let candidates =
     Array.of_list
       (List.filter (fun n -> seen.(n)) (List.init (Array.length seen) Fun.id))
   in
   Faults.Injector.assign_node_targets injector ~candidates
     ~nodes:(Numa.Topology.node_count topo) ());
  (match obs_stream with
  | None -> ()
  | Some _ ->
      List.iter
        (fun st ->
          match st.queue with
          | Some q -> Guest.Pv_queue.set_obs q ~domain:st.domain.Xen.Domain.id obs_stream
          | None -> ())
        states);
  let latency = machine_desc.Numa.Machine_desc.latency in
  let freq = machine_desc.Numa.Machine_desc.freq_hz in
  let nodes = Numa.Topology.node_count topo in
  let bus_node =
    match machine_desc.Numa.Machine_desc.pci_bus_nodes with
    | _ :: n :: _ -> n
    | [ n ] -> n
    | [] -> 0
  in
  (* Intra-run sharding: one persistent team for the whole run (a
     Domain.spawn per epoch would dwarf the kernel).  Fault runs force
     inner_jobs down to 1 — the stall draw consumes the injector's
     shared stream in vCPU order, which sharding cannot reproduce. *)
  let inner_jobs = if faults_on then 1 else max 1 cfg.Config.inner_jobs in
  let max_threads = List.fold_left (fun a st -> max a st.spec.Config.threads) 1 states in
  let team =
    if inner_jobs > 1 && max_threads > 1 then
      Some (Pool.Team.create ~workers:(min inner_jobs max_threads))
    else None
  in
  let shards = match team with Some tm -> Pool.Team.size tm | None -> 1 in
  let plans =
    Array.of_list
      (List.map (fun st -> Shard.partition ~count:st.spec.Config.threads ~shards) states)
  in
  let epoch_len = cfg.Config.epoch in
  let now = ref 0.0 in
  let epochs = ref 0 in
  let epoch_accesses = Array.make (List.length states) 0.0 in
  (* A controller's sustained random-access throughput is well below
     its streaming peak (bank cycle time, row misses): 62% of the
     13 GiB/s plate number, as derived by the request-level simulator
     (Microsim.Memsim.random_access_efficiency). *)
  let controller_capacity =
    0.62 *. Numa.Topology.controller_gib_per_s topo *. (1024.0 ** 3.0) *. epoch_len
  in
  let node_demand = Array.make nodes 0.0 in
  let node_scale = Array.make nodes 1.0 in
  (* RAS state: per-node effective capacity and bandwidth factor (both
     move only under a [node_fail] plan) and the failing state seen
     last epoch, for transition detection. *)
  let node_capacity = Array.make nodes controller_capacity in
  let bw_factor = Array.make nodes 1.0 in
  let node_was_failing = Array.make nodes false in
  (* Per-epoch memo of the (src, dst) memory latency: topology distance
     is static and route saturation is a last-epoch snapshot, so within
     one epoch every thread pair sharing (src, dst) sees the same
     cycles.  Filled eagerly each epoch — the values are a pure
     function of the topology and the counter snapshot, so eager and
     lazy fills agree bit for bit, and an eager table lets the sharded
     latency kernel read it without write races. *)
  let lat_memo = Array.make (nodes * nodes) 0.0 in
  let occupancy = Array.make (Array.length system.Xen.System.pcpu_load) 0 in
  let dom0_active = ref 0 in
  (* One dom0 vCPU shuttles roughly 150 MB/s of pv I/O. *)
  let dom0_core_mb_s = 150.0 in
  let sched_rng = Sim.Rng.split root_rng in
  let any_unpinned = List.exists (fun st -> not st.spec.Config.pinned) states in
  let st_of_domain id =
    List.find (fun st -> st.domain.Xen.Domain.id = id) states
  in
  let running () = List.exists vm_running states in
  (* Steady-state fast-forward.  Disqualified for the whole run when
     the escape hatch is pulled, under fault injection (the stall draw
     consumes a shared stream inside the kernel), with unpinned vCPUs
     (the credit scheduler draws every epoch) or with an observer (it
     reads live per-epoch telemetry).  Everything else is decided per
     epoch: replay only while every running VM armed itself at the end
     of a full epoch AND this epoch's pass A stayed clean AND the
     horizon says no boundary work (Carrefour feed, promotion scan,
     fault window) is due. *)
  let ff_active =
    cfg.Config.fast_forward && (not faults_on) && (not any_unpinned)
    && cfg.Config.observer = None
  in
  let ff_until = ref 0 in
  let ff_replayed = ref 0 in
  (* Armed at the end of epoch [e], the replay may serve epochs
     strictly below this horizon: the next multiple of 10 when any VM
     runs Carrefour (user-component feed) or P2M superpages (promotion
     scan), the next epoch with a fault window armed (belt and braces
     — fault runs never fast-forward), and a conservative estimate of
     the earliest thread completion.  The per-epoch [replay_guard] is
     the safety net; the completion clause only saves it work. *)
  let skip_horizon e =
    let h = ref cfg.Config.max_epochs in
    let cut v = if v < !h then h := v in
    if
      List.exists
        (fun st ->
          vm_running st
          && (Option.is_some (Policies.Manager.carrefour st.manager)
             || Policies.Manager.superpages_enabled st.manager))
        states
    then cut (e - (e mod 10) + 10);
    (match Faults.Injector.next_armed_epoch injector ~after:(e + 1) with
    | Some a -> cut a
    | None -> ());
    List.iter
      (fun st ->
        if vm_running st then
          for t = 0 to st.spec.Config.threads - 1 do
            if st.finish.(t) < 0.0 && st.thread_final.(t) > 0.0 then
              cut
                (e + 1
                + int_of_float
                    (Float.min 1e9
                       (Float.max 0.0
                          ((st.remaining.(t) -. st.thread_cap.(t)) /. st.thread_final.(t)))))
          done)
      states;
    !h
  in
  let main_loop () =
  while running () && !epochs < cfg.Config.max_epochs do
    (match obs_stream with
    | None -> ()
    | Some stream ->
        (* Stamp subsequent events with this epoch's virtual time. *)
        Obs.Stream.set_time stream !now;
        Obs.Stream.emit ~arg:!epochs stream Obs.Event.Epoch_boundary;
        (* Walk/replica summaries, one per domain per epoch (the raw
           update stream would swamp the ring): the walk CPI term in
           milli-cycles, and the cumulative per-mirror counters.
           Emitted only when the feature is on, so every other run's
           trace is byte-identical to the pre-walk-model engine. *)
        List.iter
          (fun st ->
            match Policies.Manager.pt st.manager with
            | None -> ()
            | Some pt ->
                let d = st.domain.Xen.Domain.id in
                if st.spec.Config.pt_walk then
                  Obs.Stream.emit ~domain:d
                    ~arg:(int_of_float (1000.0 *. st.tlb_cycles_per_instr))
                    stream Obs.Event.Pt_walk;
                if Xen.Pt.replicated pt then begin
                  Obs.Stream.emit ~domain:d ~arg:(Xen.Pt.replica_updates pt) stream
                    Obs.Event.Pt_replica_update;
                  Obs.Stream.emit ~domain:d ~arg:(Xen.Pt.replica_invalidations pt) stream
                    Obs.Event.Pt_replica_invalidate
                end)
          states);
    Faults.Injector.set_epoch injector !epochs;
    if faults_on then begin
      (* Node RAS: mirror the injector's failing state into the
         topology mask.  At a failing transition the node's machine
         frames are retired immediately (free ones now, mapped ones
         when freed) and every domain starts draining its resident
         frames; a recovered node rejoins the mask and pool. *)
      for n = 0 to nodes - 1 do
        bw_factor.(n) <- Faults.Injector.node_bandwidth_factor injector ~node:n;
        node_capacity.(n) <- controller_capacity *. Float.max 0.01 bw_factor.(n);
        let failing = Faults.Injector.node_failing injector ~node:n in
        if failing && not node_was_failing.(n) then begin
          node_was_failing.(n) <- true;
          Numa.Topology.set_node_online topo n false;
          ignore (Memory.Machine.offline_node system.Xen.System.machine n);
          List.iter (fun st -> Policies.Manager.request_evacuation st.manager ~node:n) states
        end
        else if (not failing) && node_was_failing.(n) then begin
          node_was_failing.(n) <- false;
          Numa.Topology.set_node_online topo n true;
          ignore (Memory.Machine.online_node system.Xen.System.machine n);
          List.iter (fun st -> Policies.Manager.cancel_evacuation st.manager ~node:n) states
        end
      done;
      (* ECC: per-domain draws in VM order — sequential by
         construction, since fault runs force [inner_jobs] to 1. *)
      List.iter
        (fun st ->
          if vm_running st then
            List.iter
              (function
                | Faults.Injector.Ce pfn -> Policies.Manager.handle_ecc_ce st.manager ~pfn
                | Faults.Injector.Ue pfn ->
                    Policies.Manager.handle_ecc_ue st.manager ~pfn;
                    update_page_node st pfn)
              (Faults.Injector.ecc_events injector ~frames:st.domain.Xen.Domain.mem_frames))
        states
    end;
    (* Pass A runs for every epoch, replayed or not: the phase check
       and burst draw keep every RNG stream position identical to the
       naive loop's, and the snapshots feed the arming check. *)
    let pass_a_clean = ref true in
    List.iter
      (fun st ->
        if vm_running st then begin
          epoch_pass_a st;
          if st.ff_rotated || st.burst_victim >= 0 then pass_a_clean := false
        end)
      states;
    let replay =
      ff_active && !pass_a_clean
      && !epochs < !ff_until
      && List.for_all
           (fun st ->
             (not (vm_running st))
             || (st.ff_armed
                &&
                (* The capture whose parity matches this epoch is the
                   one the replay would apply. *)
                let snap = st.ff_snap.(!epochs land 1) in
                (* Steady disk DMA replays too, but only while the pool
                   can still serve a full-rate epoch; the partial final
                   epoch (and the first post-I/O epoch) must run live. *)
                (if snap.sn_io > 0.0 then st.io_bytes_left >= snap.sn_io
                 else st.io_bytes_left <= 0.0)
                && replay_guard ~finish:st.finish ~doit:snap.sn_doit ~remaining:st.remaining
                     ~cap:snap.sn_cap ~final:snap.sn_final))
           states
    in
    if replay then begin
      (* Delta replay: every float accumulation below re-performs the
         additions the full kernels would have performed, on the same
         frozen per-thread values, in the same order — so the run's
         results and traces are bit-identical to the naive loop (the
         engine.ff suite checks exactly that).  Scratch state the full
         path rebuilds from scratch each epoch (node_demand,
         node_scale, lat_memo, src_shared...) is left stale: only full
         epochs read it, and each starts by refilling it. *)
      incr ff_replayed;
      let parity = !epochs land 1 in
      Obs.Profile.span Obs.Profile.Ff_replay (fun () ->
          List.iter
            (fun st ->
              if vm_running st then begin
                let snap = st.ff_snap.(parity) in
                let threads = st.spec.Config.threads in
                for t = 0 to threads - 1 do
                  if st.finish.(t) < 0.0 then
                    st.sync_overhead <- st.sync_overhead +. snap.sn_sync.(t);
                  if snap.sn_doit.(t) > 0.0 then
                    st.remaining.(t) <- st.remaining.(t) -. snap.sn_final.(t)
                done
              end)
            states;
          (* Steady-phase disk DMA: the guard proved this epoch moves
             the same full-rate byte count as the captured one, so the
             live code recomputes the identical transfer — decrement,
             counter records and all — in the full path's VM order
             (I/O is committed before the thread traffic there too). *)
          List.iter
            (fun st ->
              if vm_running st && st.ff_snap.(parity).sn_io > 0.0 then
                disk_traffic cfg st counters ~bus_node ~node_demand)
            states;
          (* Commit the captured realized traffic to the hardware
             counters — the verbatim full-path loop, VM-major like the
             original, so the per-(src,dst) accumulation order is
             unchanged. *)
          List.iter
            (fun st ->
              if vm_running st then begin
                let snap = st.ff_snap.(parity) in
                let threads = st.spec.Config.threads in
                for t = 0 to threads - 1 do
                  if snap.sn_doit.(t) > 0.0 then begin
                    let base = t * nodes in
                    let src = st.thread_node.(t) in
                    for n = 0 to nodes - 1 do
                      if snap.sn_dst.(base + n) > 0.0 then
                        Numa.Counters.record_accesses counters ~src ~dst:n
                          ~count:snap.sn_dst.(base + n) ~bytes_per_access:access_bytes
                    done
                  end
                done
              end)
            states;
          Numa.Counters.end_epoch counters ~duration:epoch_len;
          (* Latency reduction replay: identical adds from the captured
             per-thread totals and latencies.  Consecutive bitwise-equal
             samples enter the histogram through one [add_n] — the sums
             it updates see the very same addition sequence. *)
          List.iter
            (fun st ->
              if vm_running st then begin
                let snap = st.ff_snap.(parity) in
                let threads = st.spec.Config.threads in
                let run_v = ref 0.0 in
                let run_n = ref 0 in
                for t = 0 to threads - 1 do
                  if snap.sn_total.(t) > 0.0 then begin
                    let total = snap.sn_total.(t) in
                    let lat = snap.sn_lat.(t) in
                    st.weighted_lat <- st.weighted_lat +. (total *. lat);
                    st.total_accesses <- st.total_accesses +. total;
                    st.local_accesses <-
                      st.local_accesses +. snap.sn_dst.((t * nodes) + st.thread_node.(t));
                    if !run_n > 0 && Int64.bits_of_float lat = Int64.bits_of_float !run_v then
                      incr run_n
                    else begin
                      if !run_n > 0 then Sim.Stats.Histogram.add_n st.lat_hist !run_v !run_n;
                      run_v := lat;
                      run_n := 1
                    end
                  end
                done;
                if !run_n > 0 then Sim.Stats.Histogram.add_n st.lat_hist !run_v !run_n;
                (* SLO accounting replay: under the witnessed cycle the
                   epoch's metric values — hence the captured verdicts —
                   are what the full path would recompute. *)
                if snap.sn_slo_active then begin
                  st.active_epochs <- st.active_epochs + 1;
                  Array.iteri
                    (fun i v -> if v then st.slo_violations.(i) <- st.slo_violations.(i) + 1)
                    snap.sn_slo_violate
                end;
                (* Keep the one live cross-epoch input phase-correct:
                   the next full epoch's compute kernel reads
                   [avg_lat], which must hold this (replayed) epoch's
                   values, not the last full epoch's. *)
                Array.blit snap.sn_lat 0 st.avg_lat 0 threads
              end)
            states)
    end
    else begin
    Array.fill node_demand 0 nodes 0.0;
    (* Credit-scheduler accounting period: rebalance unpinned vCPUs
       onto idle pCPUs.  The vCPU moves; its memory does not — exactly
       the hazard the paper's introduction describes for guest-visible
       NUMA topologies. *)
    if any_unpinned then begin
      let domains = List.map (fun st -> st.domain) states in
      let movable (d : Xen.Domain.t) = not (st_of_domain d.Xen.Domain.id).spec.Config.pinned in
      let active (d : Xen.Domain.t) v = (st_of_domain d.Xen.Domain.id).finish.(v) < 0.0 in
      let migrations = Xen.Sched.balance topo ~rng:sched_rng ~domains ~movable ~active in
      List.iter
        (fun (m : Xen.Sched.migration) ->
          let st = st_of_domain m.Xen.Sched.domain_id in
          st.thread_node.(m.Xen.Sched.vcpu) <- Numa.Topology.node_of_cpu topo m.Xen.Sched.to_pcpu;
          (* the migration itself costs an IPI + context switch *)
          Xen.Ipi.send st.domain ~costs:system.Xen.System.costs)
        migrations
    end;
    (* dom0 load for this epoch, from the pv I/O still flowing. *)
    (dom0_active :=
       match dom0 with
       | None -> 0
       | Some _ ->
           let pv_mb_s =
             List.fold_left
               (fun acc st ->
                 if
                   vm_running st && st.io_bytes_left > 0.0
                   && io_path cfg.Config.mode st.spec.Config.policy = `Pv
                 then acc +. st.spec.Config.app.Workloads.App.disk_mb_s
                 else acc)
               0.0 states
           in
           min 6 (int_of_float (Float.round (pv_mb_s /. dom0_core_mb_s))));
    compute_occupancy ~occ:occupancy states ~dom0 ~dom0_active:!dom0_active;
    List.iteri
      (fun vi st ->
        if vm_running st then begin
          let threads = st.spec.Config.threads in
          (* reset per-epoch traffic *)
          Array.fill st.thread_dst 0 (Array.length st.thread_dst) 0.0;
          Array.fill st.thread_accesses 0 threads 0.0;
          Array.fill st.thread_shared 0 threads 0.0;
          Array.fill st.thread_burst 0 threads 0.0;
          Array.fill st.thread_sync 0 threads 0.0;
          Array.fill st.src_shared 0 nodes 0.0;
          st.shared_accesses_epoch <- 0.0;
          st.burst_accesses_epoch <- 0.0;
          epoch_accesses.(vi) <- 0.0;
          let app = st.spec.Config.app in
          (* Track the live superpage fraction (splinters and promotes
             move it); non-superpage runs keep the boot-time constant
             bit for bit.  Under --pt-walk the radix model reprices the
             walk from the page tables' current placement instead. *)
          (match Policies.Manager.pt st.manager with
          | Some pt when st.spec.Config.pt_walk ->
              st.tlb_cycles_per_instr <-
                tlb_cycles_per_instr_radix cfg st.spec st.domain ~pt
                  ~thread_node:st.thread_node ~topo ~latency
          | Some _ | None ->
              if Policies.Manager.superpages_enabled st.manager then
                st.tlb_cycles_per_instr <- tlb_cycles_per_instr_dynamic cfg st.spec st.domain);
          let oh = epoch_sync_overhead cfg st in
          (* Carrefour's continuous hardware-counter sampling is not
             free: the paper observes it slightly degrades applications
             it cannot help. *)
          let carrefour_tax =
            match Policies.Manager.carrefour st.manager with Some _ -> 0.98 | None -> 1.0
          in
          let mr = app.Workloads.App.miss_rate in
          Array.fill st.thread_doit 0 threads 0.0;
          Array.fill st.thread_cap 0 threads 0.0;
          Obs.Profile.span Obs.Profile.Kernel_compute (fun () ->
              shard_dispatch team plans.(vi) ~threads (fun lo hi ->
                  epoch_compute_kernel st ~injector ~faults_on ~occupancy ~oh ~carrefour_tax
                    ~mr ~freq ~epoch_len ~lo ~hi));
          let accesses_acc = ref epoch_accesses.(vi) in
          Obs.Profile.span Obs.Profile.Reduce (fun () ->
              reduce_epoch_traffic st ~threads ~accesses_acc);
          epoch_accesses.(vi) <- !accesses_acc;
          disk_traffic cfg st counters ~bus_node ~node_demand
        end)
      states;
    (* Bandwidth clamp: a memory controller serves at most its
       (random-access effective) capacity per epoch.  When the demand
       on a node overflows, every thread touching that node stalls in
       proportion — the throughput collapse that makes master-slave
       patterns so expensive, beyond the latency inflation alone. *)
    List.iter
      (fun st ->
        if vm_running st then
          for t = 0 to st.spec.Config.threads - 1 do
            let base = t * nodes in
            for n = 0 to nodes - 1 do
              node_demand.(n) <- node_demand.(n) +. (st.thread_dst.(base + n) *. access_bytes)
            done
          done)
      states;
    for n = 0 to nodes - 1 do
      node_scale.(n) <-
        (if node_demand.(n) > node_capacity.(n) then node_capacity.(n) /. node_demand.(n)
         else 1.0)
    done;
    List.iteri
      (fun vi st ->
        if vm_running st then begin
          let threads = st.spec.Config.threads in
          let now_v = !now in
          (* Shardable half: realized throughput, work retirement and
             finish times are all vCPU-local (node_scale is fixed). *)
          Obs.Profile.span Obs.Profile.Kernel_throughput (fun () ->
              shard_dispatch team plans.(vi) ~threads (fun lo hi ->
                  for t = lo to hi - 1 do
                    if st.thread_doit.(t) > 0.0 then begin
                      let base = t * nodes in
                      (* A sequential access stream advances at the pace of
                         its most throttled destination. *)
                      let realized = ref 1.0 in
                      for n = 0 to nodes - 1 do
                        if st.thread_dst.(base + n) > 1e-9 && node_scale.(n) < !realized then
                          realized := node_scale.(n)
                      done;
                      let realized = !realized in
                      let final = st.thread_doit.(t) *. realized in
                      (* Captured for the fast-forward: the in-place
                         [*. realized] scaling below loses [final]. *)
                      st.thread_final.(t) <- final;
                      st.remaining.(t) <- st.remaining.(t) -. final;
                      if st.remaining.(t) <= 0.0 then
                        st.finish.(t) <-
                          now_v
                          +. (epoch_len
                             *. (final /. Float.max 1.0 (st.thread_cap.(t) *. realized)));
                      if realized < 1.0 then begin
                        st.thread_accesses.(t) <- st.thread_accesses.(t) *. realized;
                        for n = 0 to nodes - 1 do
                          st.thread_dst.(base + n) <- st.thread_dst.(base + n) *. realized
                        done
                      end
                    end
                  done));
          (* Commit the realized traffic to the hardware counters — a
             cross-vCPU float accumulation, so vCPU order, sequential. *)
          Obs.Profile.span Obs.Profile.Reduce (fun () ->
              for t = 0 to threads - 1 do
                if st.thread_doit.(t) > 0.0 then begin
                  let base = t * nodes in
                  let src = st.thread_node.(t) in
                  for n = 0 to nodes - 1 do
                    if st.thread_dst.(base + n) > 0.0 then
                      Numa.Counters.record_accesses counters ~src ~dst:n
                        ~count:st.thread_dst.(base + n) ~bytes_per_access:access_bytes
                  done
                end
              done)
        end)
      states;
    Numa.Counters.end_epoch counters ~duration:epoch_len;
    (* latency feedback and per-thread stats *)
    for src = 0 to nodes - 1 do
      for dst = 0 to nodes - 1 do
        let hops = Numa.Topology.distance topo src dst in
        let sat = Numa.Counters.max_route_saturation counters ~src ~dst in
        (* A degraded destination controller behaves like a saturated
           one: retries and dropped bandwidth inflate latency. *)
        let sat = if faults_on then sat +. (1.0 -. bw_factor.(dst)) else sat in
        lat_memo.((src * nodes) + dst) <- Numa.Latency.mem_cycles latency ~hops ~saturation:sat
      done
    done;
    List.iteri
      (fun vi st ->
        if vm_running st then begin
          let threads = st.spec.Config.threads in
          Obs.Profile.span Obs.Profile.Kernel_latency (fun () ->
              shard_dispatch team plans.(vi) ~threads (fun lo hi ->
                  for t = lo to hi - 1 do
                    let base = t * nodes in
                    let total = ref 0.0 in
                    for n = 0 to nodes - 1 do
                      total := !total +. st.thread_dst.(base + n)
                    done;
                    let total = !total in
                    st.thread_total.(t) <- total;
                    if total > 0.0 then begin
                      let src = st.thread_node.(t) in
                      let lat = ref 0.0 in
                      for n = 0 to nodes - 1 do
                        if st.thread_dst.(base + n) > 0.0 then
                          lat :=
                            !lat
                            +. (st.thread_dst.(base + n) /. total
                               *. lat_memo.((src * nodes) + n))
                      done;
                      st.avg_lat.(t) <- !lat
                    end
                  done));
          Obs.Profile.span Obs.Profile.Reduce (fun () ->
              (* Sequential fixed-order reduction; also the one place
                 latency samples are recorded, so the histogram (and
                 everything derived from it) is bit-identical whatever
                 the shard schedule. *)
              let running = ref 0 in
              let ep_wlat = ref 0.0 in
              let ep_total = ref 0.0 in
              for t = 0 to threads - 1 do
                if st.thread_total.(t) > 0.0 then begin
                  let total = st.thread_total.(t) in
                  st.weighted_lat <- st.weighted_lat +. (total *. st.avg_lat.(t));
                  st.total_accesses <- st.total_accesses +. total;
                  st.local_accesses <-
                    st.local_accesses +. st.thread_dst.((t * nodes) + st.thread_node.(t));
                  Sim.Stats.Histogram.add st.lat_hist st.avg_lat.(t);
                  st.slo_scratch.(!running) <- st.avg_lat.(t);
                  incr running;
                  ep_wlat := !ep_wlat +. (total *. st.avg_lat.(t));
                  ep_total := !ep_total +. total
                end
              done;
              (* Per-epoch SLO accounting: purely observational reads
                 of the epoch's latencies — no RNG, no traffic, no
                 trace — so a run with objectives stays bit-identical
                 to one without. *)
              st.ff_slo_active <- cfg.Config.slo <> [] && !running > 0;
              if st.ff_slo_active then begin
                st.active_epochs <- st.active_epochs + 1;
                let samples = Array.sub st.slo_scratch 0 !running in
                List.iteri
                  (fun i (metric, target) ->
                    let value =
                      match metric with
                      | "mean" -> !ep_wlat /. !ep_total
                      | "p50" -> Sim.Stats.percentile samples 50.0
                      | "p95" -> Sim.Stats.percentile samples 95.0
                      | "p99" -> Sim.Stats.percentile samples 99.0
                      | "p999" -> Sim.Stats.percentile samples 99.9
                      | m -> invalid_arg ("Runner: unknown SLO metric " ^ m)
                    in
                    (* Verdicts are remembered so a replayed epoch can
                       bump the same counters without re-deriving the
                       percentiles (identical under quiescence). *)
                    let violated = value > target in
                    st.ff_slo_violate.(i) <- violated;
                    if violated then st.slo_violations.(i) <- st.slo_violations.(i) + 1)
                  cfg.Config.slo
              end);
          (* Fault-mode page churn: real alloc/release traffic through
             the pv queue, so op drops and lost batches leave stale P2M
             entries for the reconciliation sweep to heal. *)
          (match st.queue with
          | None -> ()
          | Some q ->
              let period =
                match st.spec.Config.app.Workloads.App.page_release_period with
                | Some p -> p
                | None -> epoch_len
              in
              let iters = min 64 (max 1 (int_of_float (epoch_len /. period))) in
              let threads = st.spec.Config.threads in
              for i = 0 to iters - 1 do
                match Guest.Pfn_pool.alloc st.pool with
                | None -> ()
                | Some pfn ->
                    Guest.Pv_queue.record q (Guest.Pv_queue.Alloc pfn);
                    (match Xen.P2m.get st.domain.Xen.Domain.p2m pfn with
                    | Xen.P2m.Invalid ->
                        ignore
                          (Xen.Domain.handle_fault st.domain ~costs:system.Xen.System.costs
                             ~pfn ~cpu:st.domain.Xen.Domain.vcpu_pin.(i mod threads))
                    | Xen.P2m.Mapped _ -> ());
                    Guest.Pfn_pool.release st.pool pfn;
                    Guest.Pv_queue.record q (Guest.Pv_queue.Release pfn)
              done);
          (* Degradation housekeeping: drain deferred migrations and
             periodically reconcile the P2M against the guest free
             list.  Only under fault injection — a clean run must stay
             bit-identical to the pre-faults engine. *)
          if faults_on then begin
            let was_evacuating = Policies.Manager.evacuating st.manager >= 0 in
            Obs.Profile.span Obs.Profile.Epoch_tick (fun () ->
                Policies.Manager.epoch_tick st.manager ~epoch:!epochs
                  ~guest_free:(fun pfn -> Guest.Pfn_pool.is_free st.pool pfn)
                  ());
            (* During (and right after) a drain the placement cache is
               wholesale-stale: re-resolve it through the P2M. *)
            if was_evacuating || Policies.Manager.evacuating st.manager >= 0 then
              refresh_regions st
          end
          else if Policies.Manager.superpages_enabled st.manager then
            (* Clean runs historically skip the tick; superpage runs
               need it for the promotion scan (drain/breaker parts are
               no-ops without faults). *)
            Obs.Profile.span Obs.Profile.Epoch_tick (fun () ->
                Policies.Manager.epoch_tick st.manager ~epoch:!epochs ());
          (* Carrefour runs its user component once per second (every
             tenth epoch), like the real system. *)
          (match Policies.Manager.carrefour st.manager with
          | None -> ()
          | Some _ ->
              if !epochs mod 10 = 0 then
                match
                  Obs.Profile.span Obs.Profile.Carrefour_feed (fun () ->
                      Policies.Manager.carrefour_epoch_feed st.manager ~counters
                        ~feed:(fun sys -> feed_samples st sys))
                with
                | Some _ -> refresh_placement st
                | None -> ());
          (* Arming check and capture.  The structural clauses prove
             nothing moved this epoch's inputs (the P2M version covers
             every mapping mutation — placement, migration, splinter,
             promote; the finish count covers occupancy; I/O must have
             drained so dom0 stays idle and disk DMA silent; superpage
             VMs additionally need the manager quiescent, because their
             clean-path [epoch_tick] is skipped during replay and must
             be a provable no-op).  A structurally clean epoch is then
             captured into the snapshot of its parity; it ARMS the
             fast-forward when it bitwise reproduced the same-parity
             capture of two epochs before — the witness that the
             latency feedback settled into its (period ≤ 2) limit
             cycle.  Any unclean epoch stales both captures, so a
             fresh witness always spans consecutive clean epochs.  By
             induction, every subsequent guarded epoch then reproduces
             the opposite-parity capture's floats exactly. *)
          if ff_active then begin
            let clean =
              Xen.P2m.version st.domain.Xen.Domain.p2m = st.ff_p2m_version
              && (not st.ff_rotated)
              && st.burst_victim < 0
              && (st.ff_io = 0.0
                 || st.ff_io
                    = st.spec.Config.app.Workloads.App.disk_mb_s *. 1e6 *. cfg.Config.epoch)
              && st.migrations = st.ff_migrations
              && (let fin = ref 0 in
                  Array.iter (fun f -> if f >= 0.0 then incr fin) st.finish;
                  !fin = st.ff_finished)
              && ((not (Policies.Manager.superpages_enabled st.manager))
                 || Policies.Manager.quiescent st.manager)
            in
            if not clean then begin
              st.ff_armed <- false;
              st.ff_snap.(0).sn_epoch <- -1;
              st.ff_snap.(1).sn_epoch <- -1
            end
            else begin
              let snap = st.ff_snap.(!epochs land 1) in
              let other = st.ff_snap.(1 - (!epochs land 1)) in
              st.ff_armed <-
                snap.sn_epoch >= 0
                && (!epochs - snap.sn_epoch) land 1 = 0
                && other.sn_epoch >= 0
                && (!epochs - other.sn_epoch) land 1 = 1
                && arrays_bits_equal snap.sn_lat st.avg_lat
                && arrays_bits_equal snap.sn_dst st.thread_dst
                && arrays_bits_equal snap.sn_total st.thread_total
                && arrays_bits_equal snap.sn_sync st.thread_sync
                && arrays_bits_equal snap.sn_doit st.thread_doit
                && arrays_bits_equal snap.sn_cap st.thread_cap
                && arrays_bits_equal snap.sn_final st.thread_final
                && Int64.bits_of_float snap.sn_io = Int64.bits_of_float st.ff_io;
              snap.sn_epoch <- !epochs;
              Array.blit st.thread_sync 0 snap.sn_sync 0 threads;
              Array.blit st.thread_doit 0 snap.sn_doit 0 threads;
              Array.blit st.thread_cap 0 snap.sn_cap 0 threads;
              Array.blit st.thread_final 0 snap.sn_final 0 threads;
              Array.blit st.thread_total 0 snap.sn_total 0 threads;
              Array.blit st.avg_lat 0 snap.sn_lat 0 threads;
              Array.blit st.thread_dst 0 snap.sn_dst 0 (threads * nodes);
              snap.sn_io <- st.ff_io;
              snap.sn_slo_active <- st.ff_slo_active;
              Array.blit st.ff_slo_violate 0 snap.sn_slo_violate 0
                (Array.length st.ff_slo_violate)
            end
          end
        end)
      states;
    if
      ff_active
      && List.for_all (fun st -> (not (vm_running st)) || st.ff_armed) states
    then ff_until := skip_horizon !epochs
    end;
    (match cfg.Config.observer with
    | None -> ()
    | Some observer ->
        let progress st =
          let total = Array.fold_left ( +. ) 0.0 st.remaining in
          let work =
            float_of_int st.spec.Config.threads
            *. Workloads.App.instructions_per_thread st.spec.Config.app
                 ~threads:st.spec.Config.threads
                 ~freq_hz:cfg.Config.machine.Numa.Machine_desc.freq_hz
          in
          Float.max 0.0 (Float.min 1.0 (1.0 -. (total /. work)))
        in
        observer
          {
            Config.epoch_index = !epochs;
            time = !now +. epoch_len;
            imbalance = Numa.Counters.imbalance counters;
            max_controller_util =
              Array.fold_left Float.max 0.0 (Numa.Counters.last_controller_utilisation counters);
            max_link_util =
              Array.fold_left Float.max 0.0 (Numa.Counters.last_link_utilisation counters);
            progress =
              List.map (fun st -> (st.spec.Config.app.Workloads.App.name, progress st)) states;
            local_fraction =
              List.map
                (fun st ->
                  ( st.spec.Config.app.Workloads.App.name,
                    if st.total_accesses > 0.0 then st.local_accesses /. st.total_accesses
                    else 0.0 ))
                states;
          });
    incr epochs;
    now := !now +. epoch_len
  done
  in
  (match team with
  | None -> main_loop ()
  | Some tm -> Fun.protect ~finally:(fun () -> Pool.Team.shutdown tm) main_loop);
  let result =
    {
      Result.vms = List.map (vm_result cfg system) states;
      imbalance = Numa.Counters.imbalance counters;
      interconnect_load = Numa.Counters.interconnect_load counters;
      epochs = !epochs;
      replayed_epochs = !ff_replayed;
      faults_injected = Faults.Injector.total_injected injector;
    }
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr "engine.runs";
    Obs.Metrics.incr ~by:result.Result.epochs "engine.epochs";
    Obs.Metrics.incr ~by:result.Result.faults_injected "engine.faults_injected";
    List.iter
      (fun (vm : Result.vm_result) ->
        Obs.Metrics.observe "engine.vm.completion_s" vm.Result.completion;
        Obs.Metrics.observe "engine.vm.virt_overhead_s" vm.Result.virt_overhead;
        Obs.Metrics.incr ~by:vm.Result.migrations "engine.migrations";
        Obs.Metrics.incr ~by:vm.Result.faults "engine.faults";
        List.iter
          (fun (s : Result.slo_row) ->
            if s.Result.violated then Obs.Metrics.incr "engine.slo.violated_objectives";
            Obs.Metrics.incr ~by:s.Result.violation_epochs "engine.slo.violation_epochs")
          vm.Result.slo)
      result.Result.vms;
    (* Bucket counts are additive, so the registry histogram is the
       same whatever the sweep's worker count or run order. *)
    List.iter
      (fun st ->
        Obs.Metrics.merge_histogram "engine.vm.latency_cycles" st.lat_hist;
        if st.spec.Config.pt_walk then
          Obs.Metrics.observe "engine.pt.walk_cycles_per_instr" st.tlb_cycles_per_instr;
        match Policies.Manager.pt st.manager with
        | Some pt when Xen.Pt.replicated pt ->
            Obs.Metrics.incr ~by:(Xen.Pt.replica_updates pt) "engine.pt.replica_updates";
            Obs.Metrics.incr ~by:(Xen.Pt.replica_invalidations pt)
              "engine.pt.replica_invalidations";
            Obs.Metrics.observe "engine.pt.replica_time_s"
              st.domain.Xen.Domain.account.Xen.Domain.pt_replica_time
        | Some _ | None -> ())
      states
  end;
  result
