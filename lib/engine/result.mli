(** Results of a simulated run. *)

type degradation = {
  migrate_retries : int;  (** Migration retries after transient ENOMEM. *)
  deferred : int;  (** Migrations pushed to the retry queue. *)
  drained : int;  (** Deferred migrations later completed. *)
  fallback_maps : int;  (** Mappings placed off the wanted node. *)
  breaker_trips : int;  (** Circuit-breaker openings. *)
  breaker_level : int;  (** Final level: 0 full, 1 interleave-only, 2 static. *)
  lost_batches : int;  (** Page-ops batches lost in transit. *)
  reconciled : int;  (** Stale P2M entries healed by reconciliation. *)
  backoff_time : float;  (** Simulated seconds spent backing off. *)
  ecc_ce : int;  (** Correctable ECC errors scrubbed. *)
  ecc_ue : int;  (** Uncorrectable ECC errors handled. *)
  offlined : int;  (** Machine frames retired by the UE handler. *)
  evacuated : int;  (** Frames moved off failing nodes. *)
  evac_epochs : int;  (** Epochs a node evacuation was in progress. *)
}

val no_degradation : degradation

type vm_result = {
  app_name : string;
  policy : string;
  completion : float;  (** Seconds from start to the last thread's finish,
                           including virtualization and I/O overheads. *)
  compute_time : float;    (** Epoch-loop part of [completion]. *)
  io_overhead : float;     (** Serial per-request I/O path overhead. *)
  sync_overhead : float;   (** Blocked-wakeup time, summed over threads. *)
  virt_overhead : float;   (** Hypercalls, faults, migrations (thread share). *)
  release_overhead : float;  (** Page-release hypercall churn (first-touch). *)
  faults : int;
  migrations : int;        (** Pages migrated by Carrefour. *)
  avg_latency_cycles : float;  (** Work-weighted mean memory latency. *)
  local_fraction : float;  (** Fraction of accesses served on the local node. *)
  superpages : int;  (** Live 2 MiB P2M superpage entries at the end. *)
  superpage_fraction : float;
      (** Share of mapped guest memory covered by superpage entries
          (drives the TLB reach of the run's tail). *)
  splinters : int;  (** Superpage demotions over the whole run. *)
  promotes : int;  (** Extents re-coalesced by the promotion scan. *)
  superpage_migrates : int;
      (** Promotions that had to copy the extent onto a fresh
          contiguous block first. *)
  degradation : degradation;
      (** Graceful-degradation counters ({!no_degradation} on a clean
          run). *)
}

type t = {
  vms : vm_result list;
  imbalance : float;          (** Table-1 imbalance over the whole run. *)
  interconnect_load : float;  (** Table-1 interconnect metric. *)
  epochs : int;
  faults_injected : int;  (** Total faults the injector fired (0 = clean). *)
}

val completion : t -> string -> float
(** Completion time of the VM running the named app.
    @raise Not_found if absent. *)

val single : t -> vm_result
(** The only VM of a single-app run.
    @raise Invalid_argument when the run had several VMs. *)

val pp : Format.formatter -> t -> unit
