(** Results of a simulated run. *)

type degradation = {
  migrate_retries : int;  (** Migration retries after transient ENOMEM. *)
  deferred : int;  (** Migrations pushed to the retry queue. *)
  drained : int;  (** Deferred migrations later completed. *)
  fallback_maps : int;  (** Mappings placed off the wanted node. *)
  breaker_trips : int;  (** Circuit-breaker openings. *)
  breaker_level : int;  (** Final level: 0 full, 1 interleave-only, 2 static. *)
  lost_batches : int;  (** Page-ops batches lost in transit. *)
  reconciled : int;  (** Stale P2M entries healed by reconciliation. *)
  backoff_time : float;  (** Simulated seconds spent backing off. *)
  ecc_ce : int;  (** Correctable ECC errors scrubbed. *)
  ecc_ue : int;  (** Uncorrectable ECC errors handled. *)
  offlined : int;  (** Machine frames retired by the UE handler. *)
  evacuated : int;  (** Frames moved off failing nodes. *)
  evac_epochs : int;  (** Epochs a node evacuation was in progress. *)
}

val no_degradation : degradation

(** Tail of the per-domain latency distribution: percentiles over the
    run's log-bucket histogram of per-vCPU-per-epoch mean memory
    latencies.  Samples are recorded in the runner's sequential
    reduction, so the summary is bit-identical across [--jobs] and
    [--inner-jobs]. *)
type latency_summary = {
  samples : int;  (** running-vCPU epoch samples (0 = no work ran) *)
  lat_mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  lat_max : float;
}

val no_latency : latency_summary

(** One [--slo CLASS=TARGET] objective evaluated for one domain. *)
type slo_row = {
  metric : string;  (** [mean], [p50], [p95], [p99] or [p999] *)
  target : float;  (** latency budget, cycles *)
  value : float;  (** end-of-run value of the metric *)
  violation_epochs : int;
      (** epochs whose own value of the metric exceeded the target *)
  active_epochs : int;  (** epochs in which the domain ran work *)
  burn_rate : float;  (** [violation_epochs / active_epochs] *)
  violated : bool;  (** end-of-run value exceeds the target *)
}

type vm_result = {
  app_name : string;
  policy : string;
  completion : float;  (** Seconds from start to the last thread's finish,
                           including virtualization and I/O overheads. *)
  compute_time : float;    (** Epoch-loop part of [completion]. *)
  io_overhead : float;     (** Serial per-request I/O path overhead. *)
  sync_overhead : float;   (** Blocked-wakeup time, summed over threads. *)
  virt_overhead : float;   (** Hypercalls, faults, migrations (thread share). *)
  release_overhead : float;  (** Page-release hypercall churn (first-touch). *)
  faults : int;
  migrations : int;        (** Pages migrated by Carrefour. *)
  avg_latency_cycles : float;  (** Work-weighted mean memory latency. *)
  local_fraction : float;  (** Fraction of accesses served on the local node. *)
  superpages : int;  (** Live 2 MiB P2M superpage entries at the end. *)
  superpage_fraction : float;
      (** Share of mapped guest memory covered by superpage entries
          (drives the TLB reach of the run's tail). *)
  splinters : int;  (** Superpage demotions over the whole run. *)
  promotes : int;  (** Extents re-coalesced by the promotion scan. *)
  superpage_migrates : int;
      (** Promotions that had to copy the extent onto a fresh
          contiguous block first. *)
  walk_cycles_per_instr : float;
      (** End-of-run TLB walk term of the CPI (the flat constant model
          when [--pt-walk] is off, the radix per-level pricing when
          on). *)
  pt_replica_updates : int;
      (** Per-mirror page-table entry writes under [--replicate-pt]
          (0 without replication). *)
  pt_replica_invalidations : int;
      (** Per-mirror shootdowns (clears and splinters) under
          [--replicate-pt]. *)
  pt_replica_time : float;
      (** Simulated seconds spent propagating P2M updates into the
          mirrors. *)
  latency : latency_summary;
      (** Tail-latency percentiles of the per-vCPU-per-epoch samples. *)
  slo : slo_row list;
      (** One row per [--slo] objective, in spec order ([] when the
          config declared none). *)
  degradation : degradation;
      (** Graceful-degradation counters ({!no_degradation} on a clean
          run). *)
}

type t = {
  vms : vm_result list;
  imbalance : float;          (** Table-1 imbalance over the whole run. *)
  interconnect_load : float;  (** Table-1 interconnect metric. *)
  epochs : int;
  replayed_epochs : int;
      (** Epochs served by the steady-state fast-forward's delta
          replay instead of the full kernels (0 with
          [--no-fast-forward], under fault injection, or when the run
          never reached a quiescent steady state).  Purely an
          accounting of {e how} epochs were computed: every other
          field is bit-identical whatever this value. *)
  faults_injected : int;  (** Total faults the injector fired (0 = clean). *)
}

val completion : t -> string -> float
(** Completion time of the VM running the named app.
    @raise Not_found if absent. *)

val single : t -> vm_result
(** The only VM of a single-app run.
    @raise Invalid_argument when the run had several VMs. *)

val pp : Format.formatter -> t -> unit
