(* Task dispatch is a single atomic cursor over the task array: a
   worker claims the next index with [Atomic.fetch_and_add] until the
   cursor passes the end.  Compared to the earlier mutex/condvar deque
   this allocates nothing per task and costs one uncontended RMW per
   claim, which keeps the pool viable for sub-millisecond tasks (see
   the [pool dispatch] micro benchmark). *)

(* ------------------------------------------------------------------ *)
(* Worker count resolution                                             *)
(* ------------------------------------------------------------------ *)

let hardware_parallelism = Domain.recommended_domain_count

let available_jobs () =
  match Sys.getenv_opt "XEN_NUMA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_override = Atomic.make None

let set_default_jobs n = Atomic.set default_override (Some (max 1 n))

let default_jobs () =
  match Atomic.get default_override with Some n -> n | None -> available_jobs ()

(* Default shard count for the intra-run epoch kernel (Runner's
   [inner_jobs]); bit-identical at any value, so purely a performance
   knob.  Settable by the bench/CLI drivers or XEN_NUMA_INNER_JOBS. *)
let inner_override = Atomic.make None

let set_default_inner_jobs n = Atomic.set inner_override (Some (max 1 n))

let default_inner_jobs () =
  match Atomic.get inner_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "XEN_NUMA_INNER_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | Some _ | None -> 1)
      | None -> 1)

(* Domains above the hardware parallelism cannot run concurrently —
   they time-slice the same cores while still paying the stop-the-world
   minor-GC synchronisation of every live domain, which on a saturated
   host makes the grid several times *slower* than sequential.  Spawn
   counts are therefore capped at [recommended_domain_count]; [~jobs]
   beyond that only expresses intent. *)
let effective_workers ~jobs ~tasks =
  max 1 (min jobs (min tasks (hardware_parallelism ())))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_all ?jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  (* Wall-clock instrumentation only runs while metrics collection is
     on (the flag is captured once per call); the values are real-time
     measurements and never feed back into the simulation. *)
  let metrics_on = Obs.Metrics.enabled () in
  let t0 = if metrics_on then Unix.gettimeofday () else 0.0 in
  let run_task i =
    if not metrics_on then tasks.(i) ()
    else begin
      let start = Unix.gettimeofday () in
      Obs.Metrics.observe "pool.task_queue_wait_s" (start -. t0);
      let v = tasks.(i) () in
      Obs.Metrics.incr "pool.tasks";
      Obs.Metrics.observe "pool.task_wall_s" (Unix.gettimeofday () -. start);
      v
    end
  in
  let workers = effective_workers ~jobs ~tasks:n in
  if n = 0 then [||]
  else if workers = 1 || n = 1 then begin
    let results = Array.init n run_task in
    if metrics_on then begin
      Obs.Metrics.gauge "pool.jobs" 1.0;
      Obs.Metrics.observe "pool.worker_utilisation" 1.0
    end;
    results
  end
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let cursor = Atomic.make 0 in
    let observe_utilisation busy =
      if metrics_on then begin
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed > 0.0 then
          Obs.Metrics.observe "pool.worker_utilisation"
            (Float.min 1.0 (busy /. elapsed))
      end
    in
    let rec worker busy =
      let i = Atomic.fetch_and_add cursor 1 in
      if i >= n then observe_utilisation busy
      else begin
        let start = if metrics_on then Unix.gettimeofday () else 0.0 in
        (* Disjoint indices: no two workers ever touch the same slot. *)
        (try results.(i) <- Some (run_task i)
         with exn -> failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()));
        let busy = if metrics_on then busy +. (Unix.gettimeofday () -. start) else busy in
        worker busy
      end
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn (fun () -> worker 0.0)) in
    worker 0.0;
    Array.iter Domain.join spawned;
    if metrics_on then Obs.Metrics.gauge "pool.jobs" (float_of_int workers);
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?jobs f a = run_all ?jobs (Array.map (fun x () -> f x) a)

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))

(* ------------------------------------------------------------------ *)
(* Persistent teams (intra-run sharding)                               *)
(* ------------------------------------------------------------------ *)

module Team = struct
  type t = {
    size : int;
    mutex : Mutex.t;
    start : Condition.t;
    finished : Condition.t;
    mutable generation : int;
    mutable job : (int -> unit) option;
    mutable completed : int;
    mutable stop : bool;
    mutable failure : (exn * Printexc.raw_backtrace) option;
    mutable members : unit Domain.t array;
  }

  let worker t rank =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while t.generation = !my_gen && not t.stop do
        Condition.wait t.start t.mutex
      done;
      if t.stop then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        my_gen := t.generation;
        let job = t.job in
        Mutex.unlock t.mutex;
        let failure =
          match job with
          | None -> None
          | Some f -> (
              try
                f rank;
                None
              with exn -> Some (exn, Printexc.get_raw_backtrace ()))
        in
        Mutex.lock t.mutex;
        (match failure with
        | Some _ when t.failure = None -> t.failure <- failure
        | _ -> ());
        t.completed <- t.completed + 1;
        if t.completed = t.size - 1 then Condition.signal t.finished;
        Mutex.unlock t.mutex
      end
    done

  let create ~workers =
    let size = max 1 workers in
    let t =
      {
        size;
        mutex = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        generation = 0;
        job = None;
        completed = 0;
        stop = false;
        failure = None;
        members = [||];
      }
    in
    if size > 1 then
      t.members <- Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let size t = t.size

  let run t f =
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.mutex;
      t.job <- Some f;
      t.completed <- 0;
      t.failure <- None;
      t.generation <- t.generation + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      (* The caller is member 0; its exception is held until the other
         members drain — they may still be writing their shards. *)
      let caller_failure =
        try
          f 0;
          None
        with exn -> Some (exn, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      while t.completed < t.size - 1 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      let worker_failure = t.failure in
      Mutex.unlock t.mutex;
      match (caller_failure, worker_failure) with
      | Some (exn, bt), _ | None, Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None, None -> ()
    end

  let shutdown t =
    if t.size > 1 then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.members;
      t.members <- [||]
    end

  let with_team ~workers f =
    let t = create ~workers in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
