(* A work deque protected by a mutex/condvar pair.  Tasks are pushed
   up front and workers pop until the deque is closed and empty; the
   condvar only matters for workers that outrun the producer, which
   keeps the pool usable for staged task production later. *)

type deque = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : int Queue.t;
  mutable closed : bool;
}

let deque_create () =
  { mutex = Mutex.create (); nonempty = Condition.create (); tasks = Queue.create (); closed = false }

let deque_push dq i =
  Mutex.lock dq.mutex;
  Queue.push i dq.tasks;
  Condition.signal dq.nonempty;
  Mutex.unlock dq.mutex

let deque_close dq =
  Mutex.lock dq.mutex;
  dq.closed <- true;
  Condition.broadcast dq.nonempty;
  Mutex.unlock dq.mutex

let deque_pop dq =
  Mutex.lock dq.mutex;
  let rec take () =
    if not (Queue.is_empty dq.tasks) then Some (Queue.pop dq.tasks)
    else if dq.closed then None
    else begin
      Condition.wait dq.nonempty dq.mutex;
      take ()
    end
  in
  let item = take () in
  Mutex.unlock dq.mutex;
  item

(* ------------------------------------------------------------------ *)
(* Worker count resolution                                             *)
(* ------------------------------------------------------------------ *)

let available_jobs () =
  match Sys.getenv_opt "XEN_NUMA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_override = Atomic.make None

let set_default_jobs n = Atomic.set default_override (Some (max 1 n))

let default_jobs () =
  match Atomic.get default_override with Some n -> n | None -> available_jobs ()

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_all ?jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let dq = deque_create () in
    for i = 0 to n - 1 do
      deque_push dq i
    done;
    deque_close dq;
    let rec worker () =
      match deque_pop dq with
      | None -> ()
      | Some i ->
          (* Disjoint indices: no two workers ever touch the same slot. *)
          (try results.(i) <- Some (tasks.(i) ())
           with exn -> failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()));
          worker ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?jobs f a = run_all ?jobs (Array.map (fun x () -> f x) a)

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
