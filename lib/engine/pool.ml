(* A work deque protected by a mutex/condvar pair.  Tasks are pushed
   up front and workers pop until the deque is closed and empty; the
   condvar only matters for workers that outrun the producer, which
   keeps the pool usable for staged task production later. *)

type deque = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : int Queue.t;
  mutable closed : bool;
}

let deque_create () =
  { mutex = Mutex.create (); nonempty = Condition.create (); tasks = Queue.create (); closed = false }

let deque_push dq i =
  Mutex.lock dq.mutex;
  Queue.push i dq.tasks;
  Condition.signal dq.nonempty;
  Mutex.unlock dq.mutex

let deque_close dq =
  Mutex.lock dq.mutex;
  dq.closed <- true;
  Condition.broadcast dq.nonempty;
  Mutex.unlock dq.mutex

let deque_pop dq =
  Mutex.lock dq.mutex;
  let rec take () =
    if not (Queue.is_empty dq.tasks) then Some (Queue.pop dq.tasks)
    else if dq.closed then None
    else begin
      Condition.wait dq.nonempty dq.mutex;
      take ()
    end
  in
  let item = take () in
  Mutex.unlock dq.mutex;
  item

(* ------------------------------------------------------------------ *)
(* Worker count resolution                                             *)
(* ------------------------------------------------------------------ *)

let available_jobs () =
  match Sys.getenv_opt "XEN_NUMA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default_override = Atomic.make None

let set_default_jobs n = Atomic.set default_override (Some (max 1 n))

let default_jobs () =
  match Atomic.get default_override with Some n -> n | None -> available_jobs ()

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_all ?jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  (* Wall-clock instrumentation only runs while metrics collection is
     on (the flag is captured once per call); the values are real-time
     measurements and never feed back into the simulation. *)
  let metrics_on = Obs.Metrics.enabled () in
  let t0 = if metrics_on then Unix.gettimeofday () else 0.0 in
  let run_task i =
    if not metrics_on then tasks.(i) ()
    else begin
      let start = Unix.gettimeofday () in
      Obs.Metrics.observe "pool.task_queue_wait_s" (start -. t0);
      let v = tasks.(i) () in
      Obs.Metrics.incr "pool.tasks";
      Obs.Metrics.observe "pool.task_wall_s" (Unix.gettimeofday () -. start);
      v
    end
  in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then begin
    let results = Array.init n run_task in
    if metrics_on then begin
      Obs.Metrics.gauge "pool.jobs" 1.0;
      Obs.Metrics.observe "pool.worker_utilisation" 1.0
    end;
    results
  end
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let dq = deque_create () in
    for i = 0 to n - 1 do
      deque_push dq i
    done;
    deque_close dq;
    let observe_utilisation busy =
      if metrics_on then begin
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed > 0.0 then
          Obs.Metrics.observe "pool.worker_utilisation"
            (Float.min 1.0 (busy /. elapsed))
      end
    in
    let rec worker busy =
      match deque_pop dq with
      | None -> observe_utilisation busy
      | Some i ->
          let start = if metrics_on then Unix.gettimeofday () else 0.0 in
          (* Disjoint indices: no two workers ever touch the same slot. *)
          (try results.(i) <- Some (run_task i)
           with exn -> failures.(i) <- Some (exn, Printexc.get_raw_backtrace ()));
          let busy = if metrics_on then busy +. (Unix.gettimeofday () -. start) else busy in
          worker busy
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn (fun () -> worker 0.0)) in
    worker 0.0;
    Array.iter Domain.join spawned;
    if metrics_on then Obs.Metrics.gauge "pool.jobs" (float_of_int (min jobs n));
    Array.iter
      (function
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ())
      failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?jobs f a = run_all ?jobs (Array.map (fun x () -> f x) a)

let map_list ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
