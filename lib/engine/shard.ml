type range = { lo : int; hi : int }

let partition ~count ~shards =
  if count < 0 then invalid_arg "Shard.partition: negative count";
  if shards < 1 then invalid_arg "Shard.partition: shards must be >= 1";
  let k = max 1 (min shards count) in
  Array.init k (fun s -> { lo = s * count / k; hi = (s + 1) * count / k })

let streams rng ~count = Array.init count (fun v -> Sim.Rng.derive rng ~id:v)
