(** The hypervisor page table (physical-to-machine, P2M).

    One per domain: maps guest-physical frame numbers to machine frame
    numbers.  This is the table every NUMA policy manipulates through
    the internal interface — mapping a guest-physical page onto a
    machine page of the chosen node, invalidating entries of released
    pages so the next touch faults into the hypervisor, and
    write-protecting entries during migration.

    {2 Superpages}

    The guest-physical space is tiled into aligned extents of
    [sp_frames] frames (by default {!Memory.Page.frames_per_2m}, i.e. a
    2 MiB superpage of 4 KiB frames; machines with a page_scale pass
    the scaled equivalent).  An extent can be mapped by one superpage
    entry ({!map_superpage}): its machine frames are contiguous from an
    aligned base and share one writable bit, which is what lets the
    guest TLB cover it with a single 2 MiB entry.  Any per-frame
    mutation inside a superpage — {!set}, {!invalidate},
    {!write_protect} — first {e splinters} the extent back to 512
    per-frame entries (bookkeeping only; the cost of the
    write-protect→copy→remap per frame is charged by the policy layer,
    which knows why it is splintering).  {!promote} re-coalesces a
    qualifying extent. *)

type entry =
  | Invalid  (** Access faults into the hypervisor. *)
  | Mapped of { mfn : Memory.Page.mfn; writable : bool }

type t

val create : ?sp_frames:int -> frames:int -> unit -> t
(** P2M covering guest-physical frames [\[0, frames)], all [Invalid].
    [sp_frames] (default {!Memory.Page.frames_per_2m}) is the superpage
    extent size in frames; pass [1] to disable superpages entirely.
    @raise Invalid_argument if [frames <= 0] or [sp_frames] is not a
    positive power of two. *)

val frames : t -> int

val sp_frames : t -> int
(** Frames per superpage extent (1 when superpages are disabled). *)

val get : t -> Memory.Page.pfn -> entry
(** @raise Invalid_argument on an out-of-range pfn. *)

val set : t -> Memory.Page.pfn -> mfn:Memory.Page.mfn -> writable:bool -> unit
(** Install a per-frame entry; splinters the surrounding superpage
    first if there is one. *)

val invalidate : t -> Memory.Page.pfn -> Memory.Page.mfn option
(** Clear the entry, returning the machine frame it held (if any).
    Splinters the surrounding superpage first if there is one. *)

val write_protect : t -> Memory.Page.pfn -> unit
(** Clear the writable bit of a mapped entry; no-op on [Invalid].
    Splinters the surrounding superpage first if there is one (a
    single-frame permission change cannot be expressed on a 2 MiB
    entry). *)

val map_superpage : t -> pfn:Memory.Page.pfn -> mfn:Memory.Page.mfn -> writable:bool -> unit
(** Map the aligned extent starting at [pfn] as one superpage entry
    backed by contiguous machine frames [\[mfn, mfn + sp_frames)].
    @raise Invalid_argument if either base is unaligned, the extent
    runs past the table, any frame in it is already mapped, or
    superpages are disabled. *)

val is_superpage : t -> Memory.Page.pfn -> bool
(** [true] iff [pfn] lies inside an extent mapped by a superpage
    entry. *)

val superpage_base : t -> Memory.Page.pfn -> Memory.Page.pfn
(** First pfn of the extent containing [pfn]. *)

val splinter : t -> Memory.Page.pfn -> int
(** Demote the extent containing [pfn] to per-frame entries; returns
    the number of frames demoted (0 if it was not a superpage).
    Lookups of every frame in the extent are unchanged — splintering
    is pure bookkeeping at the table level. *)

val promote : t -> pfn:Memory.Page.pfn -> bool
(** Re-coalesce the extent starting at the aligned [pfn] into one
    superpage entry.  Succeeds iff every frame is mapped, the machine
    frames are contiguous from an [sp_frames]-aligned base, and the
    writable bits are uniform; returns [false] (table untouched)
    otherwise.
    @raise Invalid_argument if [pfn] is not extent-aligned. *)

val mapped_count : t -> int

val superpage_count : t -> int
(** Live superpage entries. *)

val superpage_frames : t -> int
(** Frames covered by live superpage entries. *)

val splinter_count : t -> int
(** Cumulative demotions since [create]. *)

val promote_count : t -> int
(** Cumulative coalesces since [create]. *)

val check_consistent : t -> bool
(** Invariant check for the chaos suite: [true] iff {!mapped_count}
    matches a full scan of the table, every superpage extent is fully
    mapped by contiguous aligned machine frames with uniform
    writability, and {!superpage_count} matches the extent bitmap.
    O(frames). *)

val iter_mapped : t -> (Memory.Page.pfn -> Memory.Page.mfn -> unit) -> unit

val fold_mapped : t -> init:'a -> f:('a -> Memory.Page.pfn -> Memory.Page.mfn -> 'a) -> 'a
