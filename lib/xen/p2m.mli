(** The hypervisor page table (physical-to-machine, P2M).

    One per domain: maps guest-physical frame numbers to machine frame
    numbers.  This is the table every NUMA policy manipulates through
    the internal interface — mapping a guest-physical page onto a
    machine page of the chosen node, invalidating entries of released
    pages so the next touch faults into the hypervisor, and
    write-protecting entries during migration.

    {2 Superpages}

    The guest-physical space is tiled into aligned extents of
    [sp_frames] frames (by default {!Memory.Page.frames_per_2m}, i.e. a
    2 MiB superpage of 4 KiB frames; machines with a page_scale pass
    the scaled equivalent).  An extent can be mapped by one superpage
    entry ({!map_superpage}): its machine frames are contiguous from an
    aligned base and share one writable bit, which is what lets the
    guest TLB cover it with a single 2 MiB entry.  Any per-frame
    mutation inside a superpage — {!set}, {!invalidate},
    {!write_protect} — first {e splinters} the extent back to 512
    per-frame entries (bookkeeping only; the cost of the
    write-protect→copy→remap per frame is charged by the policy layer,
    which knows why it is splintering).  {!promote} re-coalesces a
    qualifying extent. *)

type entry =
  | Invalid  (** Access faults into the hypervisor. *)
  | Mapped of { mfn : Memory.Page.mfn; writable : bool }

(** One table mutation, as seen by an update observer.  The stream is
    emitted in application order from {e every} entry point — per-frame
    ops, superpage map/splinter/promote, and each element of a batch —
    so replaying it verbatim onto a second table built with the same
    [frames]/[sp_frames] reproduces the primary exactly.  This is the
    contract the {!Pt} replicated page tables rely on. *)
type update =
  | Set of { pfn : int; mfn : int; writable : bool }
      (** A per-frame entry was installed or rewritten (covers [set],
          [write_protect] — with the current mfn and [writable =
          false] — and each applied map/migrate batch element). *)
  | Cleared of { pfn : int }  (** The entry was invalidated. *)
  | Superpage_mapped of { pfn : int; mfn : int; writable : bool }
      (** A whole extent was mapped by one superpage entry. *)
  | Splintered of { pfn : int }
      (** The extent at base [pfn] was demoted to per-frame entries. *)
  | Promoted of { pfn : int }
      (** The extent at base [pfn] was coalesced into a superpage. *)

type t

val create : ?sp_frames:int -> frames:int -> unit -> t
(** P2M covering guest-physical frames [\[0, frames)], all [Invalid].
    [sp_frames] (default {!Memory.Page.frames_per_2m}) is the superpage
    extent size in frames; pass [1] to disable superpages entirely.
    @raise Invalid_argument if [frames <= 0] or [sp_frames] is not a
    positive power of two. *)

val frames : t -> int

val sp_frames : t -> int
(** Frames per superpage extent (1 when superpages are disabled). *)

val set_on_update : t -> (update -> unit) option -> unit
(** Install (or clear) the update observer.  At most one; it fires
    synchronously after each mutation has been applied, in application
    order.  The observer must not mutate the table it is watching. *)

val get : t -> Memory.Page.pfn -> entry
(** @raise Invalid_argument on an out-of-range pfn. *)

val set : t -> Memory.Page.pfn -> mfn:Memory.Page.mfn -> writable:bool -> unit
(** Install a per-frame entry; splinters the surrounding superpage
    first if there is one. *)

val invalidate : t -> Memory.Page.pfn -> Memory.Page.mfn option
(** Clear the entry, returning the machine frame it held (if any).
    Splinters the surrounding superpage first if there is one. *)

val write_protect : t -> Memory.Page.pfn -> unit
(** Clear the writable bit of a mapped entry; no-op on [Invalid].
    Splinters the surrounding superpage first if there is one (a
    single-frame permission change cannot be expressed on a 2 MiB
    entry). *)

val map_superpage : t -> pfn:Memory.Page.pfn -> mfn:Memory.Page.mfn -> writable:bool -> unit
(** Map the aligned extent starting at [pfn] as one superpage entry
    backed by contiguous machine frames [\[mfn, mfn + sp_frames)].
    @raise Invalid_argument if either base is unaligned, the extent
    runs past the table, any frame in it is already mapped, or
    superpages are disabled. *)

val is_superpage : t -> Memory.Page.pfn -> bool
(** [true] iff [pfn] lies inside an extent mapped by a superpage
    entry. *)

val superpage_base : t -> Memory.Page.pfn -> Memory.Page.pfn
(** First pfn of the extent containing [pfn]. *)

val splinter : t -> Memory.Page.pfn -> int
(** Demote the extent containing [pfn] to per-frame entries; returns
    the number of frames demoted (0 if it was not a superpage).
    Lookups of every frame in the extent are unchanged — splintering
    is pure bookkeeping at the table level. *)

val promote : t -> pfn:Memory.Page.pfn -> bool
(** Re-coalesce the extent starting at the aligned [pfn] into one
    superpage entry.  Succeeds iff every frame is mapped, the machine
    frames are contiguous from an [sp_frames]-aligned base, and the
    writable bits are uniform; returns [false] (table untouched)
    otherwise.
    @raise Invalid_argument if [pfn] is not extent-aligned. *)

(** {2 Batched mutation}

    The batch entry points sort the op arrays in place (ascending pfn,
    tandem mfn), which groups ops by superpage extent: an extent is
    splintered at most once per batch however many of its frames the
    batch touches, and the tables are walked with locality.  They
    allocate nothing — the caller's arrays double as scratch.
    Amortised costs are charged by the policy layer using
    {!Costs.page_ops_batch_time} and friends. *)

type batch_stats = {
  applied : int;  (** Entries actually mutated (mapped pfns). *)
  splintered : int;  (** Superpage extents demoted by this batch. *)
}

val invalidate_batch :
  t ->
  ?on_splinter:(Memory.Page.pfn -> unit) ->
  ?on_free:(Memory.Page.pfn -> Memory.Page.mfn -> unit) ->
  int array ->
  n:int ->
  batch_stats
(** Invalidate the first [n] pfns of the (reordered) array.  Already
    invalid pfns are skipped.  [on_splinter pfn] fires before each
    extent demotion (once per extent); [on_free pfn mfn] fires for each
    entry cleared, with the machine frame it held.  State is exactly
    that of per-page {!invalidate} over the same pfn set.
    @raise Invalid_argument on an out-of-range pfn or [n]. *)

val map_batch :
  t ->
  ?on_splinter:(Memory.Page.pfn -> unit) ->
  int array ->
  int array ->
  n:int ->
  writable:bool ->
  batch_stats
(** [map_batch t pfns mfns ~n ~writable] installs [pfns.(i) ->
    mfns.(i)] for the first [n] pairs (arrays are co-sorted by pfn).
    State is exactly that of per-page {!set} over the same pairs.
    @raise Invalid_argument on an out-of-range pfn, a negative mfn, or
    a bad [n]. *)

val migrate_batch :
  t ->
  ?on_splinter:(Memory.Page.pfn -> unit) ->
  int array ->
  int array ->
  n:int ->
  f:(Memory.Page.pfn -> old_mfn:Memory.Page.mfn -> unit) ->
  batch_stats
(** Remap the first [n] pfns onto their tandem mfns, preserving each
    entry's writable bit; unmapped pfns are skipped (their tandem mfn
    is left for the caller to release).  [f pfn ~old_mfn] fires per
    applied remap so the caller can free the displaced frame and charge
    the copy.
    @raise Invalid_argument on an out-of-range pfn, a negative mfn, or
    a bad [n]. *)

val version : t -> int
(** Monotone mutation counter: starts at 0 and is bumped exactly once
    per applied mutation (per-frame ops, superpage map, splinter,
    promote, and each applied batch element — the same events the
    {!set_on_update} stream carries).  Two equal reads prove the table
    was not mutated in between; the engine's steady-state fast-forward
    uses this as its P2M quiescence witness. *)

val mapped_count : t -> int

val superpage_count : t -> int
(** Live superpage entries. *)

val superpage_frames : t -> int
(** Frames covered by live superpage entries. *)

val splinter_count : t -> int
(** Cumulative demotions since [create]. *)

val promote_count : t -> int
(** Cumulative coalesces since [create]. *)

val check_consistent : t -> bool
(** Invariant check for the chaos suite: [true] iff {!mapped_count}
    matches a full scan of the table, every superpage extent is fully
    mapped by contiguous aligned machine frames with uniform
    writability, and {!superpage_count} matches the extent bitmap.
    O(frames). *)

val iter_mapped : t -> (Memory.Page.pfn -> Memory.Page.mfn -> unit) -> unit

val fold_mapped : t -> init:'a -> f:('a -> Memory.Page.pfn -> Memory.Page.mfn -> 'a) -> 'a
