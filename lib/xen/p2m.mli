(** The hypervisor page table (physical-to-machine, P2M).

    One per domain: maps guest-physical frame numbers to machine frame
    numbers.  This is the table every NUMA policy manipulates through
    the internal interface — mapping a guest-physical page onto a
    machine page of the chosen node, invalidating entries of released
    pages so the next touch faults into the hypervisor, and
    write-protecting entries during migration. *)

type entry =
  | Invalid  (** Access faults into the hypervisor. *)
  | Mapped of { mfn : Memory.Page.mfn; writable : bool }

type t

val create : frames:int -> t
(** P2M covering guest-physical frames [\[0, frames)], all [Invalid]. *)

val frames : t -> int

val get : t -> Memory.Page.pfn -> entry
(** @raise Invalid_argument on an out-of-range pfn. *)

val set : t -> Memory.Page.pfn -> mfn:Memory.Page.mfn -> writable:bool -> unit

val invalidate : t -> Memory.Page.pfn -> Memory.Page.mfn option
(** Clear the entry, returning the machine frame it held (if any). *)

val write_protect : t -> Memory.Page.pfn -> unit
(** Clear the writable bit of a mapped entry; no-op on [Invalid]. *)

val mapped_count : t -> int

val check_consistent : t -> bool
(** Invariant check for the chaos suite: [true] iff {!mapped_count}
    matches a full scan of the table.  O(frames). *)

val iter_mapped : t -> (Memory.Page.pfn -> Memory.Page.mfn -> unit) -> unit

val fold_mapped : t -> init:'a -> f:('a -> Memory.Page.pfn -> Memory.Page.mfn -> 'a) -> 'a
