type fault_hooks = {
  mutable migrate_alloc_fails : unit -> bool;
  mutable hypercall_transient : unit -> bool;
  mutable iommu_fault : Memory.Page.pfn -> bool;
  mutable batch_lost : int -> bool;
}

let no_faults () =
  {
    migrate_alloc_fails = (fun () -> false);
    hypercall_transient = (fun () -> false);
    iommu_fault = (fun _ -> false);
    batch_lost = (fun _ -> false);
  }

type t = {
  topo : Numa.Topology.t;
  machine : Memory.Machine.t;
  costs : Costs.t;
  mutable domains : Domain.t list;
  pcpu_load : int array;
  mutable next_id : int;
  faults : fault_hooks;
  mutable obs : Obs.Stream.t option;
}

let create ?(page_scale = 1) ?(costs = Costs.default) topo =
  {
    topo;
    machine = Memory.Machine.create ~page_scale topo;
    costs;
    domains = [];
    pcpu_load = Array.make (Numa.Topology.cpu_count topo) 0;
    next_id = 0;
    faults = no_faults ();
    obs = None;
  }

let set_obs t stream = t.obs <- stream

let mem_frames_of_bytes t bytes =
  let fb = Memory.Machine.frame_bytes t.machine in
  (bytes + fb - 1) / fb

(* Load of a node = vCPUs already pinned to its pCPUs. *)
let node_load t node =
  Array.fold_left
    (fun acc cpu -> acc + t.pcpu_load.(cpu))
    0
    (Numa.Topology.cpu_array_of_node t.topo node)

let select_home_nodes t ~vcpus ~mem_bytes =
  let cpn = Numa.Topology.cpus_per_node t.topo in
  let by_cpu = (vcpus + cpn - 1) / cpn in
  let mpn = Numa.Topology.mem_per_node t.topo in
  let by_mem = (mem_bytes + mpn - 1) / mpn in
  let needed = max 1 (max by_cpu by_mem) in
  if needed > Numa.Topology.node_count t.topo then
    invalid_arg "System.create_domain: domain does not fit the machine";
  let nodes = Array.init (Numa.Topology.node_count t.topo) (fun n -> n) in
  Array.sort
    (fun a b ->
      let la = node_load t a and lb = node_load t b in
      if la <> lb then compare la lb else compare a b)
    nodes;
  let home = Array.sub nodes 0 needed in
  Array.sort compare home;
  home

(* Pin [vcpus] across the home nodes' pCPUs, least-loaded first with
   deterministic tie-break, so a first domain gets one pCPU per vCPU
   and consolidated domains stack evenly. *)
let pin_vcpus t ~vcpus ~home_nodes =
  let candidates =
    Array.concat
      (List.map (fun n -> Numa.Topology.cpu_array_of_node t.topo n) (Array.to_list home_nodes))
  in
  let pin = Array.make vcpus 0 in
  for v = 0 to vcpus - 1 do
    let best = ref candidates.(0) in
    Array.iter (fun c -> if t.pcpu_load.(c) < t.pcpu_load.(!best) then best := c) candidates;
    pin.(v) <- !best;
    t.pcpu_load.(!best) <- t.pcpu_load.(!best) + 1
  done;
  pin

let create_domain t ~name ~kind ~vcpus ~mem_bytes ?home_nodes () =
  if vcpus <= 0 then invalid_arg "System.create_domain: vcpus must be positive";
  if mem_bytes <= 0 then invalid_arg "System.create_domain: mem_bytes must be positive";
  let home_nodes =
    match home_nodes with
    | Some nodes ->
        Array.iter
          (fun n ->
            if n < 0 || n >= Numa.Topology.node_count t.topo then
              invalid_arg "System.create_domain: bad home node")
          nodes;
        nodes
    | None -> select_home_nodes t ~vcpus ~mem_bytes
  in
  let vcpu_pin = pin_vcpus t ~vcpus ~home_nodes in
  let mem_frames = mem_frames_of_bytes t mem_bytes in
  let domain =
    {
      Domain.id = t.next_id;
      name;
      kind;
      vcpus;
      mem_frames;
      (* One simulated frame stands for page_scale real 4 KiB frames, so
         a 2 MiB superpage extent shrinks accordingly (and degenerates
         to 1 — superpages off — once the scale reaches 512). *)
      p2m =
        P2m.create
          ~sp_frames:
            (max 1 (Memory.Page.frames_per_2m / Memory.Machine.page_scale t.machine))
          ~frames:mem_frames ();
      home_nodes;
      vcpu_pin;
      account = Domain.fresh_account ();
      hypercalls = Hypercall.create_table ();
      fault_handler = None;
      policy_name = "none";
    }
  in
  t.next_id <- t.next_id + 1;
  t.domains <- domain :: t.domains;
  domain

let find_domain t ~id = List.find_opt (fun d -> d.Domain.id = id) t.domains

let destroy_domain t domain =
  P2m.iter_mapped domain.Domain.p2m (fun pfn _ ->
      match P2m.invalidate domain.Domain.p2m pfn with
      | Some mfn -> Memory.Machine.free t.machine ~mfn ~order:0
      | None -> ());
  Array.iter (fun pcpu -> t.pcpu_load.(pcpu) <- t.pcpu_load.(pcpu) - 1) domain.Domain.vcpu_pin;
  t.domains <- List.filter (fun d -> d.Domain.id <> domain.Domain.id) t.domains

let pcpu_share t pcpu =
  assert (pcpu >= 0 && pcpu < Array.length t.pcpu_load);
  let load = t.pcpu_load.(pcpu) in
  if load <= 1 then 1.0 else 1.0 /. float_of_int load
