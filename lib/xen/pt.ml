(* Page-table placement and per-node replication (Mitosis). *)

let levels = 4

type t = {
  level_nodes : int array;  (* node backing each walk level, root first *)
  replicas : (int * P2m.t) array;
  mutable replica_updates : int;
  mutable replica_invalidations : int;
}

let create ?(replicate_nodes = [||]) ~home_node ~frames ~sp_frames () =
  if home_node < 0 then invalid_arg "Pt.create: negative home_node";
  {
    level_nodes = Array.make levels home_node;
    replicas =
      Array.map
        (fun node ->
          if node < 0 then invalid_arg "Pt.create: negative replica node";
          (node, P2m.create ~sp_frames ~frames ()))
        replicate_nodes;
    replica_updates = 0;
    replica_invalidations = 0;
  }

let replicated t = Array.length t.replicas > 0
let replica_count t = Array.length t.replicas
let replica_updates t = t.replica_updates
let replica_invalidations t = t.replica_invalidations

let level_node t ~level ~node =
  if level < 0 || level >= levels then invalid_arg "Pt.level_node: level out of range";
  (* With per-node replicas every walk level resolves from the local
     mirror; otherwise all walkers share the primary's placement. *)
  if replicated t then node else t.level_nodes.(level)

let apply t update =
  let n = Array.length t.replicas in
  if n > 0 then begin
    (* Replay the primary's mutation verbatim on every mirror.  The
       update stream covers every entry point (including each batch
       element), so the mirrors march through exactly the states the
       primary did and translation equivalence is maintained by
       construction. *)
    (match update with
    | P2m.Set { pfn; mfn; writable } ->
        Array.iter (fun (_, r) -> P2m.set r pfn ~mfn ~writable) t.replicas;
        t.replica_updates <- t.replica_updates + n
    | P2m.Cleared { pfn } ->
        Array.iter (fun (_, r) -> ignore (P2m.invalidate r pfn)) t.replicas;
        t.replica_invalidations <- t.replica_invalidations + n
    | P2m.Superpage_mapped { pfn; mfn; writable } ->
        Array.iter (fun (_, r) -> P2m.map_superpage r ~pfn ~mfn ~writable) t.replicas;
        t.replica_updates <- t.replica_updates + n
    | P2m.Splintered { pfn } ->
        Array.iter (fun (_, r) -> ignore (P2m.splinter r pfn)) t.replicas;
        t.replica_invalidations <- t.replica_invalidations + n
    | P2m.Promoted { pfn } ->
        Array.iter (fun (_, r) -> ignore (P2m.promote r ~pfn)) t.replicas;
        t.replica_updates <- t.replica_updates + n)
  end

let iter_replicas t f = Array.iter (fun (node, r) -> f ~node r) t.replicas

let check_consistent t ~primary =
  let frames = P2m.frames primary in
  Array.for_all
    (fun (_, r) ->
      P2m.frames r = frames
      && P2m.mapped_count r = P2m.mapped_count primary
      && P2m.superpage_count r = P2m.superpage_count primary
      && P2m.check_consistent r
      &&
      let ok = ref true in
      for pfn = 0 to frames - 1 do
        if P2m.get r pfn <> P2m.get primary pfn then ok := false;
        if P2m.is_superpage r pfn <> P2m.is_superpage primary pfn then ok := false
      done;
      !ok)
    t.replicas
