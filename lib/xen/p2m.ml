type entry =
  | Invalid
  | Mapped of { mfn : Memory.Page.mfn; writable : bool }

(* Packed representation: mfns.(pfn) = -1 for Invalid; the writable bits
   live in a separate byte table.  A full-machine P2M at page_scale 1
   has tens of millions of entries, so compactness matters.

   Superpages: the guest-physical space is tiled into aligned extents of
   [sp_frames] frames each.  A set bit in [sp] marks an extent mapped by
   a single superpage entry; its per-frame mfns stay filled in (lookup
   is unchanged and O(1)) but the invariant is that they are contiguous
   from an [sp_frames]-aligned machine base with a uniform writable bit.
   Any per-frame mutation inside a superpage extent splinters it first,
   so the invariant can never be observed broken. *)
type update =
  | Set of { pfn : int; mfn : int; writable : bool }
  | Cleared of { pfn : int }
  | Superpage_mapped of { pfn : int; mfn : int; writable : bool }
  | Splintered of { pfn : int }
  | Promoted of { pfn : int }

type t = {
  mfns : int array;
  writable : Bytes.t;
  mutable mapped : int;
  sp_frames : int;
  sp : Bytes.t;  (* one byte per extent; '\001' = superpage *)
  mutable superpages : int;
  mutable splinters : int;  (* cumulative demotions *)
  mutable promotes : int;  (* cumulative coalesces *)
  mutable version : int;  (* bumped once per mutation, in [notify] *)
  mutable on_update : (update -> unit) option;
      (* Fires after every mutation, in application order; replaying
         the stream onto a second table reproduces this one exactly
         (the replicated-page-table machinery depends on it). *)
}

let create ?(sp_frames = Memory.Page.frames_per_2m) ~frames () =
  if frames <= 0 then invalid_arg "P2m.create: frames must be positive";
  if sp_frames <= 0 then invalid_arg "P2m.create: sp_frames must be positive";
  if sp_frames land (sp_frames - 1) <> 0 then
    invalid_arg "P2m.create: sp_frames must be a power of two";
  let extents = (frames + sp_frames - 1) / sp_frames in
  {
    mfns = Array.make frames (-1);
    writable = Bytes.make frames '\000';
    mapped = 0;
    sp_frames;
    sp = Bytes.make extents '\000';
    superpages = 0;
    splinters = 0;
    promotes = 0;
    version = 0;
    on_update = None;
  }

let frames t = Array.length t.mfns
let sp_frames t = t.sp_frames
let set_on_update t f = t.on_update <- f
(* Every mutation path — per-frame ops, superpage map/splinter/promote
   and each applied batch element — funnels through [notify], so the
   version bump here covers them all.  The counter only ever grows;
   equality of two reads proves the table saw no mutation in between
   (the fast-forward quiescence check in the engine relies on this). *)
let notify t u =
  t.version <- t.version + 1;
  match t.on_update with Some f -> f u | None -> ()

let check t pfn =
  if pfn < 0 || pfn >= Array.length t.mfns then invalid_arg "P2m: pfn out of range"

let extent_of t pfn = pfn / t.sp_frames
let superpage_base t pfn = pfn - (pfn mod t.sp_frames)

let is_superpage t pfn =
  check t pfn;
  t.sp_frames > 1 && Bytes.get t.sp (extent_of t pfn) <> '\000'

let get t pfn =
  check t pfn;
  let mfn = t.mfns.(pfn) in
  if mfn < 0 then Invalid
  else Mapped { mfn; writable = Bytes.get t.writable pfn <> '\000' }

(* Demote the extent holding [pfn] to per-frame entries.  Pure
   bookkeeping — the per-frame mfns are already filled in — so lookups
   of every frame in the extent are unchanged.  Cost accounting (the
   write-protect, copy and remap of each 4 KiB entry) is the caller's
   job: the hypervisor knows why it is splintering, the table does not.
   Returns the number of frames demoted (0 if not a superpage). *)
let splinter t pfn =
  check t pfn;
  let ext = extent_of t pfn in
  if t.sp_frames > 1 && Bytes.get t.sp ext <> '\000' then begin
    Bytes.set t.sp ext '\000';
    t.superpages <- t.superpages - 1;
    t.splinters <- t.splinters + 1;
    notify t (Splintered { pfn = ext * t.sp_frames });
    t.sp_frames
  end
  else 0

let splinter_if_superpage t pfn =
  if t.sp_frames > 1 && Bytes.get t.sp (extent_of t pfn) <> '\000' then
    ignore (splinter t pfn)

let set t pfn ~mfn ~writable =
  check t pfn;
  (* invalid_arg, not assert: the guard must survive -noassert/release
     builds — a negative mfn would silently masquerade as Invalid and
     corrupt the mapped count. *)
  if mfn < 0 then invalid_arg "P2m.set: negative mfn";
  splinter_if_superpage t pfn;
  if t.mfns.(pfn) < 0 then t.mapped <- t.mapped + 1;
  t.mfns.(pfn) <- mfn;
  Bytes.set t.writable pfn (if writable then '\001' else '\000');
  notify t (Set { pfn; mfn; writable })

let invalidate t pfn =
  check t pfn;
  let mfn = t.mfns.(pfn) in
  if mfn < 0 then None
  else begin
    splinter_if_superpage t pfn;
    t.mfns.(pfn) <- -1;
    Bytes.set t.writable pfn '\000';
    t.mapped <- t.mapped - 1;
    notify t (Cleared { pfn });
    Some mfn
  end

let write_protect t pfn =
  check t pfn;
  if t.mfns.(pfn) >= 0 then begin
    splinter_if_superpage t pfn;
    Bytes.set t.writable pfn '\000';
    notify t (Set { pfn; mfn = t.mfns.(pfn); writable = false })
  end

let map_superpage t ~pfn ~mfn ~writable =
  check t pfn;
  if t.sp_frames <= 1 then invalid_arg "P2m.map_superpage: sp_frames is 1";
  if pfn mod t.sp_frames <> 0 then invalid_arg "P2m.map_superpage: pfn not aligned";
  if pfn + t.sp_frames > Array.length t.mfns then
    invalid_arg "P2m.map_superpage: extent out of range";
  if mfn < 0 || mfn mod t.sp_frames <> 0 then
    invalid_arg "P2m.map_superpage: mfn not aligned";
  for i = pfn to pfn + t.sp_frames - 1 do
    if t.mfns.(i) >= 0 then invalid_arg "P2m.map_superpage: extent not empty"
  done;
  let w = if writable then '\001' else '\000' in
  for i = 0 to t.sp_frames - 1 do
    t.mfns.(pfn + i) <- mfn + i;
    Bytes.set t.writable (pfn + i) w
  done;
  t.mapped <- t.mapped + t.sp_frames;
  Bytes.set t.sp (extent_of t pfn) '\001';
  t.superpages <- t.superpages + 1;
  notify t (Superpage_mapped { pfn; mfn; writable })

(* Coalesce the extent at [pfn] back into one superpage entry, if every
   frame is mapped, the machine frames are contiguous from an aligned
   base and the writable bits are uniform (a superpage entry has one
   permission bit).  Returns [false] (leaving the table untouched) when
   the extent does not qualify. *)
let promote t ~pfn =
  check t pfn;
  if t.sp_frames <= 1 then false
  else if pfn mod t.sp_frames <> 0 then invalid_arg "P2m.promote: pfn not aligned"
  else if pfn + t.sp_frames > Array.length t.mfns then false
  else if Bytes.get t.sp (extent_of t pfn) <> '\000' then false
  else begin
    let base = t.mfns.(pfn) in
    let ok = ref (base >= 0 && base mod t.sp_frames = 0) in
    let w = Bytes.get t.writable pfn in
    let i = ref 1 in
    while !ok && !i < t.sp_frames do
      if t.mfns.(pfn + !i) <> base + !i || Bytes.get t.writable (pfn + !i) <> w then
        ok := false;
      incr i
    done;
    if !ok then begin
      Bytes.set t.sp (extent_of t pfn) '\001';
      t.superpages <- t.superpages + 1;
      t.promotes <- t.promotes + 1;
      notify t (Promoted { pfn })
    end;
    !ok
  end

(* Batched mutation API: one sort per batch groups the ops by extent,
   so a 2 MiB entry is splintered at most once per batch (the sp bit is
   cleared by the first frame that lands in it) and the mfns/writable
   tables are walked with locality.  The sort is in place over the
   caller's scratch arrays — the batch paths allocate nothing. *)

type batch_stats = { applied : int; splintered : int }

(* In-place ascending quicksort of a.(lo..hi), optionally swapping a
   tandem array in step (map/migrate batches carry pfn->mfn pairs).
   Median-of-three pivoting; insertion sort below 16 elements.  The
   sort is deterministic, so batch processing order is too. *)
let sort_prefix ?tandem a n =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t;
    match tandem with
    | None -> ()
    | Some b ->
        let t = b.(i) in
        b.(i) <- b.(j);
        b.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let j = ref i in
      while !j > lo && a.(!j - 1) > a.(!j) do
        swap (!j - 1) !j;
        decr j
      done
    done
  in
  let rec qsort lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* Median-of-three into a.(mid). *)
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < pivot do
          incr i
        done;
        while a.(!j) > pivot do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if n > 1 then qsort 0 (n - 1)

let check_batch t name n len =
  if n < 0 || n > len then invalid_arg (name ^ ": n out of range");
  ignore t

let invalidate_batch t ?on_splinter ?on_free pfns ~n =
  check_batch t "P2m.invalidate_batch" n (Array.length pfns);
  Obs.Profile.span Obs.Profile.P2m_batch @@ fun () ->
  sort_prefix pfns n;
  let applied = ref 0 in
  let splintered = ref 0 in
  for i = 0 to n - 1 do
    let pfn = pfns.(i) in
    check t pfn;
    let mfn = t.mfns.(pfn) in
    if mfn >= 0 then begin
      if t.sp_frames > 1 && Bytes.get t.sp (extent_of t pfn) <> '\000' then begin
        (match on_splinter with Some f -> f pfn | None -> ());
        ignore (splinter t pfn);
        incr splintered
      end;
      t.mfns.(pfn) <- -1;
      Bytes.set t.writable pfn '\000';
      t.mapped <- t.mapped - 1;
      notify t (Cleared { pfn });
      incr applied;
      match on_free with Some f -> f pfn mfn | None -> ()
    end
  done;
  { applied = !applied; splintered = !splintered }

let map_batch t ?on_splinter pfns mfns ~n ~writable =
  check_batch t "P2m.map_batch" n (min (Array.length pfns) (Array.length mfns));
  Obs.Profile.span Obs.Profile.P2m_batch @@ fun () ->
  sort_prefix ~tandem:mfns pfns n;
  let splintered = ref 0 in
  let w = if writable then '\001' else '\000' in
  for i = 0 to n - 1 do
    let pfn = pfns.(i) in
    check t pfn;
    let mfn = mfns.(i) in
    if mfn < 0 then invalid_arg "P2m.map_batch: negative mfn";
    if t.sp_frames > 1 && Bytes.get t.sp (extent_of t pfn) <> '\000' then begin
      (match on_splinter with Some f -> f pfn | None -> ());
      ignore (splinter t pfn);
      incr splintered
    end;
    if t.mfns.(pfn) < 0 then t.mapped <- t.mapped + 1;
    t.mfns.(pfn) <- mfn;
    Bytes.set t.writable pfn w;
    notify t (Set { pfn; mfn; writable })
  done;
  { applied = n; splintered = !splintered }

let migrate_batch t ?on_splinter pfns mfns ~n ~f =
  check_batch t "P2m.migrate_batch" n (min (Array.length pfns) (Array.length mfns));
  Obs.Profile.span Obs.Profile.P2m_batch @@ fun () ->
  sort_prefix ~tandem:mfns pfns n;
  let applied = ref 0 in
  let splintered = ref 0 in
  for i = 0 to n - 1 do
    let pfn = pfns.(i) in
    check t pfn;
    let old_mfn = t.mfns.(pfn) in
    if old_mfn >= 0 then begin
      let new_mfn = mfns.(i) in
      if new_mfn < 0 then invalid_arg "P2m.migrate_batch: negative mfn";
      if t.sp_frames > 1 && Bytes.get t.sp (extent_of t pfn) <> '\000' then begin
        (match on_splinter with Some f -> f pfn | None -> ());
        ignore (splinter t pfn);
        incr splintered
      end;
      (* Remap in place: the write-protect window and per-frame costs
         are the caller's accounting, exactly as for [set]. *)
      t.mfns.(pfn) <- new_mfn;
      notify t
        (Set { pfn; mfn = new_mfn; writable = Bytes.get t.writable pfn <> '\000' });
      incr applied;
      f pfn ~old_mfn
    end
  done;
  { applied = !applied; splintered = !splintered }

let version t = t.version
let mapped_count t = t.mapped
let superpage_count t = t.superpages
let superpage_frames t = t.superpages * t.sp_frames
let splinter_count t = t.splinters
let promote_count t = t.promotes

let check_consistent t =
  let scanned = Array.fold_left (fun acc mfn -> if mfn >= 0 then acc + 1 else acc) 0 t.mfns in
  let sp_ok = ref (t.superpages >= 0) in
  let sp_seen = ref 0 in
  for ext = 0 to Bytes.length t.sp - 1 do
    if Bytes.get t.sp ext <> '\000' then begin
      incr sp_seen;
      let pfn = ext * t.sp_frames in
      if t.sp_frames <= 1 || pfn + t.sp_frames > Array.length t.mfns then sp_ok := false
      else begin
        let base = t.mfns.(pfn) in
        if base < 0 || base mod t.sp_frames <> 0 then sp_ok := false
        else
          let w = Bytes.get t.writable pfn in
          for i = 1 to t.sp_frames - 1 do
            if t.mfns.(pfn + i) <> base + i || Bytes.get t.writable (pfn + i) <> w then
              sp_ok := false
          done
      end
    end
  done;
  scanned = t.mapped && !sp_ok && !sp_seen = t.superpages

let iter_mapped t f =
  Array.iteri (fun pfn mfn -> if mfn >= 0 then f pfn mfn) t.mfns

let fold_mapped t ~init ~f =
  let acc = ref init in
  iter_mapped t (fun pfn mfn -> acc := f !acc pfn mfn);
  !acc
