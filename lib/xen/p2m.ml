type entry =
  | Invalid
  | Mapped of { mfn : Memory.Page.mfn; writable : bool }

(* Packed representation: mfns.(pfn) = -1 for Invalid; the writable bits
   live in a separate byte table.  A full-machine P2M at page_scale 1
   has tens of millions of entries, so compactness matters. *)
type t = {
  mfns : int array;
  writable : Bytes.t;
  mutable mapped : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "P2m.create: frames must be positive";
  { mfns = Array.make frames (-1); writable = Bytes.make frames '\000'; mapped = 0 }

let frames t = Array.length t.mfns

let check t pfn =
  if pfn < 0 || pfn >= Array.length t.mfns then invalid_arg "P2m: pfn out of range"

let get t pfn =
  check t pfn;
  let mfn = t.mfns.(pfn) in
  if mfn < 0 then Invalid
  else Mapped { mfn; writable = Bytes.get t.writable pfn <> '\000' }

let set t pfn ~mfn ~writable =
  check t pfn;
  (* invalid_arg, not assert: the guard must survive -noassert/release
     builds — a negative mfn would silently masquerade as Invalid and
     corrupt the mapped count. *)
  if mfn < 0 then invalid_arg "P2m.set: negative mfn";
  if t.mfns.(pfn) < 0 then t.mapped <- t.mapped + 1;
  t.mfns.(pfn) <- mfn;
  Bytes.set t.writable pfn (if writable then '\001' else '\000')

let invalidate t pfn =
  check t pfn;
  let mfn = t.mfns.(pfn) in
  if mfn < 0 then None
  else begin
    t.mfns.(pfn) <- -1;
    Bytes.set t.writable pfn '\000';
    t.mapped <- t.mapped - 1;
    Some mfn
  end

let write_protect t pfn =
  check t pfn;
  if t.mfns.(pfn) >= 0 then Bytes.set t.writable pfn '\000'

let mapped_count t = t.mapped

let check_consistent t =
  let scanned = Array.fold_left (fun acc mfn -> if mfn >= 0 then acc + 1 else acc) 0 t.mfns in
  scanned = t.mapped

let iter_mapped t f =
  Array.iteri (fun pfn mfn -> if mfn >= 0 then f pfn mfn) t.mfns

let fold_mapped t ~init ~f =
  let acc = ref init in
  iter_mapped t (fun pfn mfn -> acc := f !acc pfn mfn);
  !acc
