(** The hypervisor system: machine memory, domains, vCPU placement.

    Implements Xen's NUMA-aware domain builder: a new domain is packed
    onto the minimal number of underloaded NUMA nodes that can host one
    physical CPU per vCPU and the domain's memory — these become its
    {e home nodes} — and its vCPUs are pinned there.  Memory is NOT
    populated at creation: the boot NUMA policy does that (round-1G or
    round-4K), which lives in the [policies] library. *)

type fault_hooks = {
  mutable migrate_alloc_fails : unit -> bool;
      (** Consulted by [Internal.migrate_page] before the target-node
          allocation; [true] injects an ENOMEM. *)
  mutable hypercall_transient : unit -> bool;
      (** [true] makes the hypercall fail transiently: the guest
          retries immediately and pays the entry cost again. *)
  mutable iommu_fault : Memory.Page.pfn -> bool;
      (** [true] aborts a passthrough DMA transfer with an asynchronous
          IOMMU fault even though the buffer is fully mapped. *)
  mutable batch_lost : int -> bool;
      (** Called with the batch size before a page-ops batch is
          replayed; [true] loses the batch in transit. *)
}

val no_faults : unit -> fault_hooks
(** Hooks that never fire (the default for every new system). *)

type t = {
  topo : Numa.Topology.t;
  machine : Memory.Machine.t;
  costs : Costs.t;
  mutable domains : Domain.t list;
  pcpu_load : int array;  (** Number of vCPUs pinned to each pCPU. *)
  mutable next_id : int;
  faults : fault_hooks;
      (** Fault-injection sites; installed by [Faults.Injector.install],
          inert otherwise. *)
  mutable obs : Obs.Stream.t option;
      (** Trace stream for this system's run; [None] (the default)
          keeps every instrumentation site a no-op. *)
}

val create : ?page_scale:int -> ?costs:Costs.t -> Numa.Topology.t -> t

val set_obs : t -> Obs.Stream.t option -> unit
(** Attach (or detach) the trace stream the instrumented layers emit
    to.  The engine installs one stream per simulated run. *)

val create_domain :
  t ->
  name:string ->
  kind:Domain.kind ->
  vcpus:int ->
  mem_bytes:int ->
  ?home_nodes:Numa.Topology.node array ->
  unit ->
  Domain.t
(** Builds a domain.  When [home_nodes] is omitted, selects the
    [max(ceil(vcpus / cpus_per_node), ceil(mem / mem_per_node))] least
    loaded nodes.  vCPUs are pinned one per pCPU across the home nodes,
    least-loaded pCPU first (consolidation stacks several vCPUs per
    pCPU once all are busy).
    @raise Invalid_argument if the request cannot fit the machine. *)

val find_domain : t -> id:int -> Domain.t option

val destroy_domain : t -> Domain.t -> unit
(** Unmaps and frees every machine frame held by the domain's P2M. *)

val pcpu_share : t -> Numa.Topology.cpu -> float
(** CPU time share a vCPU pinned on this pCPU receives
    ([1 / occupancy]; 1.0 when the pCPU is idle or single-booked). *)

val mem_frames_of_bytes : t -> int -> int
(** Guest-physical frames covering the byte count, in scaled frames. *)
