type t = {
  hypercall_entry : float;
  page_op_send : float;
  page_invalidate : float;
  hypervisor_fault : float;
  page_map : float;
  page_migrate_fixed : float;
  copy_byte : float;
  ipi_native : float;
  ipi_guest : float;
  context_switch : float;
  blocked_wakeup_native : float;
  blocked_wakeup_guest : float;
  disk_native_request : float;
  disk_pv_extra : float;
  disk_passthrough_extra : float;
  disk_bandwidth : float;
}

let us x = x *. 1e-6
let gib = 1024.0 *. 1024.0 *. 1024.0

(* disk_bandwidth and disk_native_request solve
   74 us = request + 4096 / bandwidth   (native 4 KiB O_DIRECT read);
   the pv and passthrough extras are the measured 307 - 74 and
   186 - 74 us deltas, which amortise on larger reads as the paper
   observes. *)
let default =
  {
    hypercall_entry = us 1.8;
    page_op_send = us 0.025;
    page_invalidate = us 0.55;
    hypervisor_fault = us 1.5;
    page_map = us 0.5;
    page_migrate_fixed = us 3.0;
    copy_byte = 1.0 /. (10.0 *. gib);
    ipi_native = us 0.9;
    ipi_guest = us 10.9;
    context_switch = us 1.5;
    blocked_wakeup_native = us 10.0;
    blocked_wakeup_guest = us 1200.0;
    disk_native_request = us 41.4;
    disk_pv_extra = us 233.0;
    disk_passthrough_extra = us 112.0;
    disk_bandwidth = 120.0 *. 1024.0 *. 1024.0;
  }

(* Superpage lifecycle costs, derived from the per-frame primitives so
   no new constant needs calibrating: splintering a 2 MiB entry is the
   paper's write-protect→remap sequence applied to each of its 4 KiB
   frames, and promotion is either a remap (in place, contiguous
   frames) or a full per-frame migration including the copy
   (superpage-migrate onto a fresh contiguous block). *)
let splinter_time t ~frames_4k =
  assert (frames_4k > 0);
  float_of_int frames_4k *. t.page_migrate_fixed

let promote_time t ~frames_4k ~copy_bytes =
  assert (frames_4k > 0 && copy_bytes >= 0);
  if copy_bytes = 0 then float_of_int frames_4k *. t.page_map
  else
    float_of_int frames_4k *. t.page_migrate_fixed
    +. float_of_int copy_bytes *. t.copy_byte

(* Amortised batch costs: one fixed term per batch plus a marginal term
   per element, each marginal strictly no larger than the standalone
   per-element cost, so a batch of n never charges more than n unbatched
   operations (the property test pins this). *)
let page_ops_batch_time t ~ops =
  assert (ops >= 0);
  t.hypercall_entry +. (float_of_int ops *. t.page_op_send)

let invalidate_batch_time t ~frames =
  assert (frames >= 0);
  float_of_int frames *. t.page_invalidate

let map_batch_time t ~frames =
  assert (frames >= 0);
  float_of_int frames *. t.page_map

(* Migrating [pages] scaled pages between one (src, dst) node pair in a
   single grouped operation: the write-protect/remap machinery is set up
   once per batch (the fixed share of [page_migrate_fixed], i.e. all of
   it except the per-frame remap [page_map]), then each page pays the
   remap plus its copy.  At [pages = 1] this telescopes to exactly the
   unbatched [migrate_page] cost; for [pages >= 2] it is strictly
   cheaper than the per-page sum. *)
let migrate_batch_time t ~pages ~page_bytes ~scale =
  assert (pages > 0 && page_bytes >= 0 && scale > 0);
  let scale_f = float_of_int scale in
  let fixed = scale_f *. (t.page_migrate_fixed -. t.page_map) in
  let marginal =
    (scale_f *. t.page_map) +. (float_of_int page_bytes *. t.copy_byte)
  in
  fixed +. (float_of_int pages *. marginal)

(* Replicated page tables (Mitosis): every P2M mutation must also be
   written into each per-node mirror, and every invalidation must be
   shot down there too.  Derived from the per-frame primitives — a
   mirror write is a queue send plus an entry install, a mirror
   shootdown a queue send plus an entry invalidate — so nothing new
   needs calibrating. *)
let pt_replica_update_time t ~replicas =
  assert (replicas >= 0);
  float_of_int replicas *. (t.page_op_send +. t.page_map)

let pt_replica_invalidate_time t ~replicas =
  assert (replicas >= 0);
  float_of_int replicas *. (t.page_op_send +. t.page_invalidate)

let disk_request t ~path ~bytes =
  assert (bytes > 0);
  let transfer = float_of_int bytes /. t.disk_bandwidth in
  let overhead =
    match path with
    | `Native -> t.disk_native_request
    | `Pv -> t.disk_native_request +. t.disk_pv_extra
    | `Passthrough -> t.disk_native_request +. t.disk_passthrough_extra
  in
  overhead +. transfer
