(** Cost model of the virtualization mechanisms, in seconds.

    Calibrated on the paper's measurements:
    - an empty hypercall every 15 µs (wrmem's release rate) divides
      performance by 3 (Section 4.2.3);
    - during a batched page-ops hypercall, 87.5 % of the time goes to
      invalidating entries and 12.5 % to sending the queue
      (Section 4.2.4);
    - sending an IPI costs 0.9 µs native and 10.9 µs in guest mode
      (Figure 5);
    - reading a 4 KiB block costs 74 µs native, 307 µs through the
      para-virtualized path, 186 µs through PCI passthrough
      (Sections 2.2.2 and 5.3.1). *)

type t = {
  hypercall_entry : float;
      (** Guest→hypervisor world switch (vmexit + dispatch + vmentry). *)
  page_op_send : float;
      (** Copying one queue entry to the hypervisor during the batched
          page-ops hypercall. *)
  page_invalidate : float;
      (** Invalidating one P2M entry (including TLB shootdown share). *)
  hypervisor_fault : float;
      (** Taking one hypervisor page fault (first touch of an
          unmapped guest-physical page). *)
  page_map : float;
      (** Installing one P2M entry from the fault handler. *)
  page_migrate_fixed : float;
      (** Write-protecting and remapping one page during migration. *)
  copy_byte : float;
      (** Per-byte memory copy cost during migration. *)
  ipi_native : float;
  ipi_guest : float;
  context_switch : float;
      (** One intentional guest context switch (enter/leave sleep). *)
  blocked_wakeup_native : float;
      (** Latency for a sleeping thread to resume after its wake-up
          event in native mode (scheduler wake path). *)
  blocked_wakeup_guest : float;
      (** Same under virtualization: the halted vCPU was descheduled by
          the hypervisor, so the wake-up pays the guest IPI plus vCPU
          re-scheduling — the blocked-waiter wake-up problem that makes
          frequent context switchers suffer (Section 5.3.2). *)
  disk_native_request : float;
      (** Native per-request software overhead (setup, interrupt). *)
  disk_pv_extra : float;
      (** Additional per-request cost of the dom0-mediated pv path. *)
  disk_passthrough_extra : float;
      (** Additional per-request cost with IOMMU + PCI passthrough. *)
  disk_bandwidth : float;  (** Sustained transfer rate, bytes/s. *)
}

val default : t

val splinter_time : t -> frames_4k:int -> float
(** Time to demote one superpage entry spanning [frames_4k] real 4 KiB
    frames: the write-protect→remap cost ({!field-page_migrate_fixed})
    per frame, as charged for a first-touch invalidation or
    single-page migration landing inside a superpage. *)

val promote_time : t -> frames_4k:int -> copy_bytes:int -> float
(** Time to coalesce [frames_4k] real 4 KiB frames into one superpage
    entry.  With [copy_bytes = 0] the frames are already contiguous and
    only the entries are rebuilt ({!field-page_map} each); otherwise the
    extent is migrated onto a fresh contiguous block, paying the
    per-frame migration fixed cost plus the copy. *)

val page_ops_batch_time : t -> ops:int -> float
(** Cost of delivering one batched page-ops hypercall of [ops] queue
    entries: one world switch plus {!field-page_op_send} per entry. *)

val invalidate_batch_time : t -> frames:int -> float
(** Marginal cost of invalidating [frames] P2M entries inside an
    already-entered batched hypercall. *)

val map_batch_time : t -> frames:int -> float
(** Marginal cost of installing [frames] P2M entries inside an
    already-entered batched hypercall. *)

val migrate_batch_time : t -> pages:int -> page_bytes:int -> scale:int -> float
(** Time to migrate [pages] scaled pages (of [page_bytes] each, every
    scaled page standing for [scale] real 4 KiB frames) between one
    (src, dst) node pair as a single grouped operation: the
    write-protect machinery is charged once per batch, each page then
    pays the per-frame remap plus its copy.  Equals the unbatched
    per-page cost at [pages = 1] and is strictly below the per-page sum
    for larger batches. *)

val pt_replica_update_time : t -> replicas:int -> float
(** Write-propagation cost of one P2M entry write under replicated
    page tables: each of the [replicas] mirrors pays a queue send
    ({!field-page_op_send}) plus an entry install
    ({!field-page_map}). *)

val pt_replica_invalidate_time : t -> replicas:int -> float
(** Shootdown cost of one P2M entry invalidation under replicated page
    tables: a queue send plus an entry invalidate
    ({!field-page_invalidate}) per mirror. *)

val disk_request : t -> path:[ `Native | `Pv | `Passthrough ] -> bytes:int -> float
(** End-to-end time of one disk read of [bytes] over the given path. *)
