(** The hypercall surface the paper adds to Xen, with per-domain
    accounting.

    Three guest-visible entry points exist in this reproduction, in the
    arch-private hypercall number range (Xen reserves 48+ for
    architecture extensions):

    - [Set_numa_policy] (48): select the VM's NUMA policy and/or toggle
      Carrefour (Section 4.2.1);
    - [Page_ops] (49): deliver one batched queue of page
      allocation/release events (Sections 4.2.3–4.2.4);
    - [Carrefour_read_metrics] (50): the dom0 user component reads the
      system component's metrics and hot-page table (Section 4.3).

    The table records how often and for how long each was invoked —
    the visibility a hypervisor developer needs when the guest starts
    hammering the page-ops path. *)

type id =
  | Set_numa_policy
  | Page_ops
  | Carrefour_read_metrics

val all : id list

val nr : id -> int
(** The hypercall number. *)

val name : id -> string

type stats = {
  mutable calls : int;
  mutable time : float;  (** Seconds spent inside the hypervisor. *)
}

type table

val create_table : unit -> table

val record : ?obs:Obs.Stream.t -> ?domain:int -> table -> id -> time:float -> unit
(** Account one invocation.  With [obs] set, also emits a
    [Hypercall_entry] event (arg = hypercall number) and a matching
    [Hypercall_exit] (arg = in-hypervisor time in nanoseconds); with
    metrics collection on, bumps per-hypercall call counters and a
    latency histogram. *)

val stats : table -> id -> stats
(** Live view; mutating it is visible in the table. *)

val total_calls : table -> int

val pp : Format.formatter -> table -> unit
