type path = Native | Pv | Passthrough

type error =
  | Iommu_fault of { pfn : Memory.Page.pfn }
  | No_passthrough_bus

let pp_error fmt = function
  | Iommu_fault { pfn } ->
      Format.fprintf fmt "asynchronous IOMMU fault on pfn %d: guest already saw EIO" pfn
  | No_passthrough_bus -> Format.fprintf fmt "domain owns no passthrough bus for the device"

let charge_io domain time =
  let a = domain.Domain.account in
  a.Domain.io_time <- a.Domain.io_time +. time;
  a.Domain.io_requests <- a.Domain.io_requests + 1

(* Resolve a buffer page for the pv path: an invalid entry faults
   synchronously into the hypervisor, which can map it in time. *)
let pv_resolve system domain pfn =
  match P2m.get domain.Domain.p2m pfn with
  | P2m.Mapped _ -> 0.0
  | P2m.Invalid ->
      let (_ : bool) =
        Domain.handle_fault domain ~costs:system.System.costs ~pfn ~cpu:domain.Domain.vcpu_pin.(0)
      in
      system.System.costs.Costs.hypervisor_fault

let path_name = function Native -> "native" | Pv -> "pv" | Passthrough -> "passthrough"

let read_impl system domain ~pci ~path ~buffer ~bytes =
  let costs = system.System.costs in
  match path with
  | Native ->
      let time = Costs.disk_request costs ~path:`Native ~bytes in
      charge_io domain time;
      Ok time
  | Pv ->
      let fault_time = List.fold_left (fun acc pfn -> acc +. pv_resolve system domain pfn) 0.0 buffer in
      let time = Costs.disk_request costs ~path:`Pv ~bytes +. fault_time in
      charge_io domain time;
      Ok time
  | Passthrough ->
      if not (Pci.domain_has_passthrough pci domain Pci.Disk) then Error No_passthrough_bus
      else begin
        (* The IOMMU walks the P2M itself; the first invalid entry
           aborts the transfer with an asynchronous error. *)
        let bad = List.find_opt (fun pfn -> P2m.get domain.Domain.p2m pfn = P2m.Invalid) buffer in
        match bad with
        | Some pfn -> Error (Iommu_fault { pfn })
        | None ->
            (* Injected fault storm: the transfer aborts asynchronously
               even though every entry is mapped (spurious IOMMU error,
               one draw per transfer). *)
            let storm_pfn = match buffer with pfn :: _ -> pfn | [] -> 0 in
            if system.System.faults.System.iommu_fault storm_pfn then
              Error (Iommu_fault { pfn = storm_pfn })
            else begin
              let time = Costs.disk_request costs ~path:`Passthrough ~bytes in
              charge_io domain time;
              Ok time
            end
      end

let read system domain ~pci ~path ~buffer ~bytes =
  let result = read_impl system domain ~pci ~path ~buffer ~bytes in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr (Printf.sprintf "xen.dma.%s.requests" (path_name path));
    (match result with
    | Ok time -> Obs.Metrics.observe (Printf.sprintf "xen.dma.%s.time_s" (path_name path)) time
    | Error (Iommu_fault _) -> Obs.Metrics.incr "xen.dma.iommu_faults"
    | Error No_passthrough_bus -> Obs.Metrics.incr "xen.dma.no_passthrough_bus")
  end;
  result
