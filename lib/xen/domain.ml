type kind = Dom0 | DomU

type account = {
  mutable hypercall_time : float;
  mutable hypercall_count : int;
  mutable fault_time : float;
  mutable fault_count : int;
  mutable migrate_time : float;
  mutable migrated_pages : int;
  mutable io_time : float;
  mutable io_requests : int;
  mutable ipi_time : float;
  mutable ipi_count : int;
  mutable pt_replica_time : float;
  mutable pt_replica_ops : int;
}

type t = {
  id : int;
  name : string;
  kind : kind;
  vcpus : int;
  mem_frames : int;
  p2m : P2m.t;
  home_nodes : Numa.Topology.node array;
  vcpu_pin : int array;
  account : account;
  hypercalls : Hypercall.table;
  mutable fault_handler : (Memory.Page.pfn -> cpu:Numa.Topology.cpu -> unit) option;
  mutable policy_name : string;
}

let fresh_account () =
  {
    hypercall_time = 0.0;
    hypercall_count = 0;
    fault_time = 0.0;
    fault_count = 0;
    migrate_time = 0.0;
    migrated_pages = 0;
    io_time = 0.0;
    io_requests = 0;
    ipi_time = 0.0;
    ipi_count = 0;
    pt_replica_time = 0.0;
    pt_replica_ops = 0;
  }

let node_of_vcpu t ~topo v =
  assert (v >= 0 && v < t.vcpus);
  Numa.Topology.node_of_cpu topo t.vcpu_pin.(v)

let handle_fault t ~costs ~pfn ~cpu =
  t.account.fault_count <- t.account.fault_count + 1;
  t.account.fault_time <- t.account.fault_time +. costs.Costs.hypervisor_fault;
  match t.fault_handler with
  | None -> false
  | Some handler ->
      handler pfn ~cpu;
      (match P2m.get t.p2m pfn with
      | P2m.Mapped _ ->
          t.account.fault_time <- t.account.fault_time +. costs.Costs.page_map;
          true
      | P2m.Invalid -> false)

let reset_account t =
  let a = t.account in
  a.hypercall_time <- 0.0;
  a.hypercall_count <- 0;
  a.fault_time <- 0.0;
  a.fault_count <- 0;
  a.migrate_time <- 0.0;
  a.migrated_pages <- 0;
  a.io_time <- 0.0;
  a.io_requests <- 0;
  a.ipi_time <- 0.0;
  a.ipi_count <- 0;
  a.pt_replica_time <- 0.0;
  a.pt_replica_ops <- 0

let pp fmt t =
  let kind = match t.kind with Dom0 -> "dom0" | DomU -> "domU" in
  Format.fprintf fmt "domain %d (%s, %s): %d vCPUs, %d frames, home nodes [%s], policy %s"
    t.id t.name kind t.vcpus t.mem_frames
    (String.concat ";" (Array.to_list (Array.map string_of_int t.home_nodes)))
    t.policy_name
