(** Page-table placement and per-node replication.

    The radix walk model charges each of the four levels of a page
    walk with the latency of the node that holds that level's
    page-table page.  This module answers "which node is that?": by
    default every level of a domain's tables lives on its first home
    node (Xen allocates PT pages from the domain's initial
    allocation), so vCPUs on other nodes pay remote latency on every
    walk level.

    The [replicate-pt] policy (Mitosis, see PAPERS.md) mirrors the
    whole table onto each of the domain's nodes: walks then resolve
    entirely from the local mirror, and every P2M mutation is
    propagated to all mirrors at {!Costs.pt_replica_update_time}.
    Mirrors are kept translation-equivalent to the primary by
    replaying its {!P2m.update} stream verbatim — including splinter,
    promote and every batch element — which is the invariant the
    [xen.pt] qcheck suite pins. *)

type t

val levels : int
(** Walk depth the placement covers (4, matching
    [Guest.Tlb.walk_levels]). *)

val create :
  ?replicate_nodes:int array -> home_node:int -> frames:int -> sp_frames:int -> unit -> t
(** Placement for a domain whose page tables live on [home_node].
    [replicate_nodes] (default [[||]], i.e. no replication) lists the
    nodes that receive a full mirror, each an empty {!P2m.t} of the
    same geometry — create the placement {e before} populating the
    primary so the mirrors see its whole update stream.
    @raise Invalid_argument on a negative node. *)

val replicated : t -> bool
val replica_count : t -> int

val level_node : t -> level:int -> node:int -> int
(** Node that serves walk level [level] for a walker on [node]: the
    walker's own node when replicated (local mirror), the primary's
    placement otherwise.
    @raise Invalid_argument if [level] is outside [\[0, levels)]. *)

val apply : t -> P2m.update -> unit
(** Propagate one primary mutation to every mirror and bump the
    matching counter.  No-op without replicas.  Write-propagation cost
    is the caller's accounting ({!Costs.pt_replica_update_time}). *)

val replica_updates : t -> int
(** Cumulative per-mirror entry writes (set / superpage map /
    promote). *)

val replica_invalidations : t -> int
(** Cumulative per-mirror invalidations (clear / splinter). *)

val iter_replicas : t -> (node:int -> P2m.t -> unit) -> unit

val check_consistent : t -> primary:P2m.t -> bool
(** [true] iff every mirror is translation-equivalent to [primary]:
    same geometry, same per-pfn entries and superpage membership, same
    mapped/superpage counts, and internally consistent.  O(replicas x
    frames) — test use. *)
