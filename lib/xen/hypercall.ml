type id =
  | Set_numa_policy
  | Page_ops
  | Carrefour_read_metrics

let all = [ Set_numa_policy; Page_ops; Carrefour_read_metrics ]

let nr = function
  | Set_numa_policy -> 48
  | Page_ops -> 49
  | Carrefour_read_metrics -> 50

let name = function
  | Set_numa_policy -> "set_numa_policy"
  | Page_ops -> "page_ops"
  | Carrefour_read_metrics -> "carrefour_read_metrics"

type stats = {
  mutable calls : int;
  mutable time : float;
}

let index = function Set_numa_policy -> 0 | Page_ops -> 1 | Carrefour_read_metrics -> 2

type table = stats array

let create_table () = Array.init (List.length all) (fun _ -> { calls = 0; time = 0.0 })

let record ?obs ?(domain = -1) t id ~time =
  let s = t.(index id) in
  s.calls <- s.calls + 1;
  s.time <- s.time +. time;
  (match obs with
  | None -> ()
  | Some stream ->
      Obs.Stream.emit ~domain ~arg:(nr id) stream Obs.Event.Hypercall_entry;
      (* Exit carries the in-hypervisor time in nanoseconds so the
         summariser can histogram it without parsing floats. *)
      Obs.Stream.emit ~domain
        ~arg:(int_of_float (time *. 1e9))
        stream Obs.Event.Hypercall_exit);
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr (Printf.sprintf "xen.hypercall.%s.calls" (name id));
    Obs.Metrics.observe (Printf.sprintf "xen.hypercall.%s.time_s" (name id)) time
  end

let stats t id = t.(index id)

let total_calls t = Array.fold_left (fun acc s -> acc + s.calls) 0 t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun id ->
      let s = stats t id in
      Format.fprintf fmt "%2d %-24s %8d calls  %a@," (nr id) (name id) s.calls
        Sim.Units.pp_seconds s.time)
    all;
  Format.fprintf fmt "@]"
