(** Xen domains (virtual machines).

    A domain owns a set of vCPUs pinned to physical CPUs, a
    guest-physical address space of [mem_frames] frames behind a
    {!P2m.t}, and the set of home NUMA nodes the domain builder packed
    it onto.  Policies install a [fault_handler] to be called on
    hypervisor page faults (first touch of an invalid P2M entry).

    The [account] accumulates the virtualization time the domain spent
    in each mechanism; the engine folds it into completion time. *)

type kind = Dom0 | DomU

type account = {
  mutable hypercall_time : float;
  mutable hypercall_count : int;
  mutable fault_time : float;
  mutable fault_count : int;
  mutable migrate_time : float;
  mutable migrated_pages : int;
  mutable io_time : float;
  mutable io_requests : int;
  mutable ipi_time : float;
  mutable ipi_count : int;
  mutable pt_replica_time : float;
      (** Write-propagation time into replicated page tables. *)
  mutable pt_replica_ops : int;
      (** Primary P2M mutations propagated to the mirrors. *)
}

type t = {
  id : int;
  name : string;
  kind : kind;
  vcpus : int;
  mem_frames : int;
  p2m : P2m.t;
  home_nodes : Numa.Topology.node array;
  vcpu_pin : int array;  (** [vcpu_pin.(v)] is the pCPU running vCPU [v]. *)
  account : account;
  hypercalls : Hypercall.table;  (** Per-hypercall invocation counts. *)
  mutable fault_handler : (Memory.Page.pfn -> cpu:Numa.Topology.cpu -> unit) option;
  mutable policy_name : string;  (** For reports; policies update it. *)
}

val fresh_account : unit -> account

val node_of_vcpu : t -> topo:Numa.Topology.t -> int -> Numa.Topology.node
(** NUMA node of the pCPU backing the given vCPU. *)

val handle_fault : t -> costs:Costs.t -> pfn:Memory.Page.pfn -> cpu:Numa.Topology.cpu -> bool
(** Deliver a hypervisor page fault for [pfn]: charges the fault cost
    and runs the installed handler.  Returns [true] if a handler mapped
    the page (the P2M entry is valid afterwards), [false] if no handler
    is installed or the entry is still invalid. *)

val reset_account : t -> unit

val pp : Format.formatter -> t -> unit
