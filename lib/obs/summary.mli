(** xenalyze-style digest of a merged trace: per-class counts,
    inter-arrival statistics, and a per-epoch activity timeline. *)

type class_row = {
  cls : Event.class_;
  emitted : int;  (** drop-proof emission total over all streams *)
  kept : int;  (** events present in the export *)
  inter_arrival : Sim.Stats.Histogram.t;
}

type epoch_row = {
  epoch : int;  (** -1 = before the first boundary (boot) *)
  events : int;
  faults : int;
  migrations : int;
  pv_ops : int;
  breaker : int;
  hypercalls : int;
}

type t = {
  streams : Codec.stream_info array;
  total_emitted : int;
  total_kept : int;
  total_dropped : int;
  classes : class_row list;
  timeline : epoch_row list;
}

val of_export : Codec.export -> t

val class_counts : t -> (Event.class_ * int) list
(** Per-class emission totals — matches the registry counters
    {!Trace.commit_metrics} writes. *)

val render : ?timeline_rows:int -> t -> string
(** Human-readable report; the timeline is truncated to
    [timeline_rows] (default 24) epochs. *)
