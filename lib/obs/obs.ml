(* Observability façade: trace rings + metrics registry.  Everything
   the instrumented layers need funnels through here; with no trace
   session installed and metrics collection off, [enabled] is false
   and every hook in the hot paths is a branch-and-return no-op, so
   clean runs stay bit-identical and fast. *)

module Event = Event
module Ring = Ring
module Stream = Stream
module Trace = Trace
module Metrics = Metrics
module Summary = Summary
module Codec = Codec
module Json = Json
module Profile = Profile
module Query = Query

let enabled () = Trace.installed () || Metrics.enabled ()
