(** Typed trace events, in the style of xentrace records.

    Every event carries the simulated virtual time it was emitted at
    and a (domain, vcpu, pfn, node) context; fields that do not apply
    to a class are [-1].  [arg] is a small class-specific payload:
    hypercall number (entry), duration in nanoseconds (exit), batch
    size (pv flush/loss), breaker trip count/level, healed pages
    (reconcile sweep), epoch index (boundary), frames demoted or
    coalesced (splinter / promote / superpage migrate), superseded ops
    removed by the shard dedup (pv dedup), frames in one batched P2M
    operation (p2m batch), frames moved off a failing node in one
    evacuation step (evacuate), still resident when its drain finished
    (node drain), or the per-epoch cumulative counter of the
    replicated-page-table summaries (pt walk / pt replica update / pt
    replica invalidate). *)

type class_ =
  | Hypercall_entry
  | Hypercall_exit
  | Page_fault
  | First_touch
  | Migrate_start
  | Migrate_retry
  | Migrate_defer
  | Migrate_drain
  | Pv_record
  | Pv_flush
  | Pv_lost
  | Breaker_trip
  | Breaker_escalate
  | Breaker_cooldown
  | Reconcile_sweep
  | Epoch_boundary
  | Splinter
  | Promote
  | Superpage_migrate
  | Pv_dedup
  | P2m_batch
  | Ecc_ce
  | Ecc_ue
  | Page_offline
  | Node_drain
  | Evacuate
  | Pt_walk
  | Pt_replica_update
  | Pt_replica_invalidate

val classes : class_ list
val class_count : int

val class_index : class_ -> int
(** Stable dense index in [0, class_count); the binary codec and the
    per-stream per-class counters key on it. *)

val class_of_index : int -> class_ option
val class_name : class_ -> string
val class_of_name : string -> class_ option

type t = {
  time : float;
  cls : class_;
  domain : int;
  vcpu : int;
  pfn : int;
  node : int;
  arg : int;
}

val make :
  ?domain:int -> ?vcpu:int -> ?pfn:int -> ?node:int -> ?arg:int -> time:float -> class_ -> t

(** An event tagged with its logical stream id and in-stream sequence
    number, as produced by the deterministic merge. *)
type merged = {
  stream : int;
  seq : int;
  event : t;
}

val compare_merged : merged -> merged -> int
(** Total order by (time, stream, seq) — the merge key. *)

val pp : Format.formatter -> t -> unit
