(* A trace session: the registry of per-run streams behind one
   xentrace-style capture.  Streams register under a stable label (a
   pure function of the run's configuration and seed); the merge sorts
   streams by label and events by (time, stream, seq), so the exported
   bytes do not depend on which pool worker simulated which run, nor
   on how runs were interleaved.

   Duplicate labels can only come from two workers racing to simulate
   the same memoised grid cell (Runs.run's first-write-wins cache);
   both runs are bit-identical, so the second registrant gets a
   detached stream whose events are simply not exported. *)

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable streams : Stream.t list;  (* registered, newest first *)
  labels : (string, unit) Hashtbl.t;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; mutex = Mutex.create (); streams = []; labels = Hashtbl.create 64 }

let capacity t = t.capacity

let stream t ~label =
  Mutex.protect t.mutex (fun () ->
      let s = Stream.create ~capacity:t.capacity ~label () in
      if not (Hashtbl.mem t.labels label) then begin
        Hashtbl.replace t.labels label ();
        t.streams <- s :: t.streams
      end;
      s)

let streams t =
  Mutex.protect t.mutex (fun () ->
      List.sort (fun a b -> compare (Stream.label a) (Stream.label b)) t.streams)

let stream_count t = Mutex.protect t.mutex (fun () -> List.length t.streams)

(* ------------------------------------------------------------------ *)
(* Global session                                                      *)
(* ------------------------------------------------------------------ *)

let current_session : t option Atomic.t = Atomic.make None

let install t = Atomic.set current_session (Some t)
let uninstall () = Atomic.set current_session None
let current () = Atomic.get current_session
let installed () = Atomic.get current_session <> None

(* ------------------------------------------------------------------ *)
(* Merge and export                                                    *)
(* ------------------------------------------------------------------ *)

let export t =
  let sorted = streams t in
  let infos =
    Array.of_list
      (List.map
         (fun s ->
           {
             Codec.label = Stream.label s;
             emitted = Stream.emitted s;
             dropped = Stream.dropped s;
             by_class = Stream.emitted_by_class s;
           })
         sorted)
  in
  let events =
    List.concat
      (List.mapi
         (fun id s ->
           List.map (fun (seq, e) -> { Event.stream = id; seq; event = e }) (Stream.events s))
         sorted)
  in
  { Codec.streams = infos; events = List.sort Event.compare_merged events }

let render_jsonl t =
  let buf = Buffer.create 65536 in
  Codec.write_jsonl buf (export t);
  Buffer.contents buf

let render_binary t =
  let buf = Buffer.create 65536 in
  Codec.write_binary buf (export t);
  Buffer.contents buf

let write_file t file =
  let is_binary =
    String.length file >= 4 && String.sub file (String.length file - 4) 4 = ".bin"
  in
  let data = if is_binary then render_binary t else render_jsonl t in
  let oc = open_out_bin file in
  output_string oc data;
  close_out oc

(* Mirror the per-class emission totals of the registered streams into
   the metrics registry: `summary` over the exported file and the
   registry then report the same counts. *)
let commit_metrics t =
  if Metrics.enabled () then begin
    let sorted = streams t in
    Metrics.incr ~by:(List.length sorted) "obs.trace.streams";
    List.iter
      (fun s ->
        Metrics.incr ~by:(Stream.emitted s) "obs.trace.emitted";
        Metrics.incr ~by:(Stream.dropped s) "obs.trace.dropped";
        let by_class = Stream.emitted_by_class s in
        List.iter
          (fun cls ->
            let n = by_class.(Event.class_index cls) in
            if n > 0 then Metrics.incr ~by:n ("obs.trace.events." ^ Event.class_name cls))
          Event.classes)
      sorted
  end
