(** Observability for the hypervisor simulation: xentrace-style event
    tracing ({!Trace}, {!Stream}, {!Event}, {!Ring}) and a metrics
    registry ({!Metrics}), with export formats ({!Codec}) and an
    xenalyze-style summariser ({!Summary}). *)

module Event = Event
module Ring = Ring
module Stream = Stream
module Trace = Trace
module Metrics = Metrics
module Summary = Summary
module Codec = Codec
module Json = Json
module Profile = Profile
module Query = Query

val enabled : unit -> bool
(** True while a trace session is installed or metrics collection is
    on.  Instrumentation sites branch on this (or on their cached
    stream option) and are no-ops otherwise. *)
