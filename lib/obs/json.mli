(** Minimal self-contained JSON reader/escaper for the trace tooling.

    Covers the full value grammar; [\u] escapes are validated but kept
    verbatim rather than decoded.  Exists because the toolchain ships
    no JSON package and the exported JSONL must be checkable. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON
    output. *)
