(** Trace wire formats: JSONL (one JSON object per line) and a compact
    fixed-record binary encoding.  Both are pure functions of the
    export value — two identical merged traces serialise to identical
    bytes, the property the cross-jobs determinism check relies on. *)

type stream_info = {
  label : string;
  emitted : int;
  dropped : int;
  by_class : int array;  (** per {!Event.class_index}, drop-proof totals *)
}

type export = {
  streams : stream_info array;  (** index = stream id, sorted by label *)
  events : Event.merged list;  (** sorted by {!Event.compare_merged} *)
}

exception Corrupt of string

val write_jsonl : Buffer.t -> export -> unit
(** Header line, one metadata line per stream, one line per event. *)

val write_binary : Buffer.t -> export -> unit

val read_jsonl : string -> export
(** @raise Corrupt on any unparseable or structurally wrong line. *)

val read_binary : string -> export

val is_binary : string -> bool

val read : string -> export
(** Auto-detect by magic: binary if it starts with ["XNUMATR1"],
    JSONL otherwise. *)
