(** Trace wire formats: JSONL (one JSON object per line) and a compact
    fixed-record binary encoding.  Both are pure functions of the
    export value — two identical merged traces serialise to identical
    bytes, the property the cross-jobs determinism check relies on. *)

type stream_info = {
  label : string;
  emitted : int;
  dropped : int;
  by_class : int array;  (** per {!Event.class_index}, drop-proof totals *)
}

type export = {
  streams : stream_info array;  (** index = stream id, sorted by label *)
  events : Event.merged list;  (** sorted by {!Event.compare_merged} *)
}

exception Corrupt of string

val write_jsonl : Buffer.t -> export -> unit
(** Header line, one metadata line per stream, one line per event. *)

val write_binary : Buffer.t -> export -> unit

val read_jsonl : string -> export
(** @raise Corrupt on any unparseable or structurally wrong line. *)

val read_binary : string -> export

val is_binary : string -> bool

val read : string -> export
(** Auto-detect by magic: binary if it starts with ["XNUMATR1"],
    JSONL otherwise. *)

(** One streamed record of a trace file, in file order: stream
    metadata records first, then events in merged order. *)
type item =
  | Header  (** the JSONL header line (binary traces never yield it) *)
  | Meta of int * stream_info  (** stream id, metadata *)
  | Ev of Event.merged

val fold_file : string -> init:'a -> f:('a -> item -> 'a) -> 'a
(** Stream a trace file (either codec, auto-detected by magic) in
    bounded memory: one line or fixed-size record resident at a time.
    @raise Corrupt on malformed or truncated input — a short file is
    an error, never a silently shorter trace.
    @raise Sys_error when the file cannot be opened. *)
