(* Wall-clock phase profiler for the runner's hot paths.  A fixed
   phase taxonomy keeps the accounting allocation-free: one atomic
   nanosecond accumulator and one atomic call counter per phase,
   shared by every Pool worker (fetch_and_add is domain-safe).

   The profiler writes to the metrics registry only (via
   [commit_metrics]) and never into traces, so trace byte-equality
   across --jobs / --inner-jobs is untouched.  When disabled, [span]
   is a single atomic read before the thunk runs — the same contract
   as the Metrics front doors. *)

type phase =
  | Kernel_compute
  | Kernel_throughput
  | Kernel_latency
  | Reduce
  | Carrefour_feed
  | P2m_batch
  | Pv_flush
  | Epoch_tick
  | Ff_replay

let phases =
  [
    Kernel_compute;
    Kernel_throughput;
    Kernel_latency;
    Reduce;
    Carrefour_feed;
    P2m_batch;
    Pv_flush;
    Epoch_tick;
    Ff_replay;
  ]

let phase_index = function
  | Kernel_compute -> 0
  | Kernel_throughput -> 1
  | Kernel_latency -> 2
  | Reduce -> 3
  | Carrefour_feed -> 4
  | P2m_batch -> 5
  | Pv_flush -> 6
  | Epoch_tick -> 7
  | Ff_replay -> 8

let phase_name = function
  | Kernel_compute -> "kernel.compute"
  | Kernel_throughput -> "kernel.throughput"
  | Kernel_latency -> "kernel.latency"
  | Reduce -> "reduce"
  | Carrefour_feed -> "carrefour.feed"
  | P2m_batch -> "p2m.batch"
  | Pv_flush -> "pv.flush"
  | Epoch_tick -> "manager.epoch_tick"
  | Ff_replay -> "ff.replay"

let nphases = List.length phases

let ns = Array.init nphases (fun _ -> Atomic.make 0)
let calls = Array.init nphases (fun _ -> Atomic.make 0)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let reset () =
  for i = 0 to nphases - 1 do
    Atomic.set ns.(i) 0;
    Atomic.set calls.(i) 0
  done

(* Spans are inclusive: a phase that calls into another profiled phase
   (epoch_tick over a pv flush, say) accounts the child's time in both
   rows.  The report is attribution, not a partition of wall clock. *)
let span phase f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        let i = phase_index phase in
        ignore (Atomic.fetch_and_add ns.(i) (int_of_float (dt *. 1e9)));
        ignore (Atomic.fetch_and_add calls.(i) 1))
      f
  end

let totals () =
  List.map
    (fun p ->
      let i = phase_index p in
      (phase_name p, Atomic.get calls.(i), Atomic.get ns.(i)))
    phases

(* Mirror the accumulators into the metrics registry (no-op while
   metrics are disabled), so `bench --json` ships them alongside the
   counter section. *)
let commit_metrics () =
  List.iter
    (fun (name, c, t) ->
      if c > 0 then begin
        Metrics.incr ~by:c (Printf.sprintf "profile.%s.calls" name);
        Metrics.incr ~by:t (Printf.sprintf "profile.%s.ns" name)
      end)
    (totals ())

let render () =
  let rows = List.filter (fun (_, c, _) -> c > 0) (totals ()) in
  let total_ns = List.fold_left (fun acc (_, _, t) -> acc + t) 0 rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %12s %12s %10s %7s\n" "phase" "calls" "total ms" "mean us" "share");
  List.iter
    (fun (name, c, t) ->
      let ms = float_of_int t /. 1e6 in
      let mean_us = if c = 0 then 0.0 else float_of_int t /. float_of_int c /. 1e3 in
      let share = if total_ns = 0 then 0.0 else float_of_int t /. float_of_int total_ns in
      Buffer.add_string buf
        (Printf.sprintf "%-20s %12d %12.3f %10.3f %6.1f%%\n" name c ms mean_us (100.0 *. share)))
    rows;
  if rows = [] then Buffer.add_string buf "(no profiled spans recorded)\n";
  Buffer.contents buf
