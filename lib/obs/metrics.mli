(** Named counters, gauges and log-bucketed latency histograms.

    The default (process-wide) registry backs the [--metrics] CLI flag
    and the bench JSON metrics section.  The guarded front doors
    ({!incr}, {!gauge}, {!observe}) are single-atomic-read no-ops
    while collection is disabled, which keeps clean runs bit-identical
    and essentially free of overhead. *)

type t

val create : unit -> t
val default : t

val enabled : unit -> bool
val set_enabled : bool -> unit

val incr : ?by:int -> string -> unit
(** Bump a counter in the default registry (no-op when disabled). *)

val gauge : string -> float -> unit
(** Set a gauge in the default registry (no-op when disabled). *)

val observe : string -> float -> unit
(** Add a sample to a histogram in the default registry (no-op when
    disabled). *)

val merge_histogram : string -> Sim.Stats.Histogram.t -> unit
(** Fold a whole histogram into a registry histogram in one locked
    step (no-op when disabled).  The source is not consumed. *)

val histogram_copy : ?registry:t -> string -> Sim.Stats.Histogram.t option
(** Snapshot of a registry histogram; [None] if absent or another
    kind.  Window a section with [Sim.Stats.Histogram.diff] between two
    copies. *)

(** Unguarded variants against an explicit registry (used by tests). *)

val incr_in : t -> ?by:int -> string -> unit
val gauge_in : t -> string -> float -> unit
val observe_in : t -> string -> float -> unit
val merge_histogram_in : t -> string -> Sim.Stats.Histogram.t -> unit

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_summary

val snapshot : unit -> (string * entry) list
(** Default-registry contents sorted by name. *)

val snapshot_of : t -> (string * entry) list

val counter_value : ?registry:t -> string -> int option
(** Current value of a counter; [None] if absent or another kind. *)

val reset : unit -> unit
val reset_in : t -> unit

val pp : Format.formatter -> unit -> unit
val render : unit -> string

val to_json_entries : unit -> string list
(** One JSON object per registry entry, sorted by name — the bench
    JSON [metrics] section. *)
