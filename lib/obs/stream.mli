(** A single-writer trace stream: one bounded event ring per engine
    run, stamped with the run's simulated virtual time.

    Streams are created through {!Trace.stream}, which registers them
    for the deterministic merge; the runner owns the stream for the
    duration of the run and updates its clock each epoch. *)

type t

val create : ?capacity:int -> label:string -> unit -> t
(** Default capacity 4096 events.  Prefer {!Trace.stream}: a stream
    created directly is never part of a merged trace. *)

val label : t -> string

val set_time : t -> float -> unit
(** Set the simulated clock subsequent events are stamped with. *)

val time : t -> float

val emit : ?domain:int -> ?vcpu:int -> ?pfn:int -> ?node:int -> ?arg:int -> t -> Event.class_ -> unit
(** Append an event stamped with the stream clock.  Constant-time;
    overwrites the oldest event when the ring is full. *)

val emitted : t -> int
val dropped : t -> int
val kept : t -> int

val emitted_by_class : t -> int array
(** Per-{!Event.class_index} emission counts; unlike the ring contents
    these never drop, so summaries can report true totals. *)

val events : t -> (int * Event.t) list
(** Kept events with their in-stream sequence numbers, oldest first. *)
