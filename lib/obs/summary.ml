(* xenalyze-style digest of a merged trace: per-class counts (true
   emission totals next to what survived the rings), inter-arrival
   statistics per class over the merged order, and a per-epoch
   timeline of event activity. *)

type class_row = {
  cls : Event.class_;
  emitted : int;  (* drop-proof total over all streams *)
  kept : int;  (* events present in the export *)
  inter_arrival : Sim.Stats.Histogram.t;  (* seconds between consecutive kept events *)
}

type epoch_row = {
  epoch : int;  (* -1 = before the first boundary (boot) *)
  events : int;
  faults : int;  (* page_fault + first_touch *)
  migrations : int;  (* start + retry + drain *)
  pv_ops : int;  (* record + flush + lost *)
  breaker : int;  (* trip + escalate + cooldown *)
  hypercalls : int;  (* entries *)
}

type t = {
  streams : Codec.stream_info array;
  total_emitted : int;
  total_kept : int;
  total_dropped : int;
  classes : class_row list;  (* only classes that occurred, by index *)
  timeline : epoch_row list;  (* ascending epoch *)
}

let of_export (e : Codec.export) =
  let nclasses = Event.class_count in
  let emitted = Array.make nclasses 0 in
  Array.iter
    (fun (s : Codec.stream_info) ->
      Array.iteri (fun i n -> emitted.(i) <- emitted.(i) + n) s.Codec.by_class)
    e.Codec.streams;
  let kept = Array.make nclasses 0 in
  let inter = Array.init nclasses (fun _ -> Sim.Stats.Histogram.create ()) in
  let last_time = Array.make nclasses Float.nan in
  List.iter
    (fun (m : Event.merged) ->
      let i = Event.class_index m.Event.event.Event.cls in
      kept.(i) <- kept.(i) + 1;
      if not (Float.is_nan last_time.(i)) then
        Sim.Stats.Histogram.add inter.(i) (m.Event.event.Event.time -. last_time.(i));
      last_time.(i) <- m.Event.event.Event.time)
    e.Codec.events;
  (* Epoch attribution is per stream: an event belongs to the epoch of
     the last boundary its own stream emitted before it (by sequence
     number), so interleaving across streams cannot reassign events. *)
  let epoch_table : (int, epoch_row) Hashtbl.t = Hashtbl.create 64 in
  let stream_epoch = Hashtbl.create 16 in
  let by_stream = Hashtbl.create 16 in
  List.iter
    (fun (m : Event.merged) ->
      let l = try Hashtbl.find by_stream m.Event.stream with Not_found -> [] in
      Hashtbl.replace by_stream m.Event.stream (m :: l))
    e.Codec.events;
  Hashtbl.iter
    (fun stream events ->
      let in_seq =
        List.sort (fun (a : Event.merged) b -> compare a.Event.seq b.Event.seq) events
      in
      List.iter
        (fun (m : Event.merged) ->
          let ev = m.Event.event in
          if ev.Event.cls = Event.Epoch_boundary then
            Hashtbl.replace stream_epoch stream ev.Event.arg;
          let epoch = try Hashtbl.find stream_epoch stream with Not_found -> -1 in
          let row =
            match Hashtbl.find_opt epoch_table epoch with
            | Some row -> row
            | None ->
                { epoch; events = 0; faults = 0; migrations = 0; pv_ops = 0; breaker = 0;
                  hypercalls = 0 }
          in
          let row = { row with events = row.events + 1 } in
          let row =
            match ev.Event.cls with
            | Event.Page_fault | Event.First_touch -> { row with faults = row.faults + 1 }
            | Event.Migrate_start | Event.Migrate_retry | Event.Migrate_drain ->
                { row with migrations = row.migrations + 1 }
            | Event.Pv_record | Event.Pv_flush | Event.Pv_lost ->
                { row with pv_ops = row.pv_ops + 1 }
            | Event.Breaker_trip | Event.Breaker_escalate | Event.Breaker_cooldown ->
                { row with breaker = row.breaker + 1 }
            | Event.Hypercall_entry -> { row with hypercalls = row.hypercalls + 1 }
            | _ -> row
          in
          Hashtbl.replace epoch_table epoch row)
        in_seq)
    by_stream;
  let timeline =
    Hashtbl.fold (fun _ row acc -> row :: acc) epoch_table []
    |> List.sort (fun a b -> compare a.epoch b.epoch)
  in
  let classes =
    List.filter_map
      (fun cls ->
        let i = Event.class_index cls in
        if emitted.(i) = 0 && kept.(i) = 0 then None
        else Some { cls; emitted = emitted.(i); kept = kept.(i); inter_arrival = inter.(i) })
      Event.classes
  in
  {
    streams = e.Codec.streams;
    total_emitted =
      Array.fold_left (fun acc (s : Codec.stream_info) -> acc + s.Codec.emitted) 0 e.Codec.streams;
    total_kept = List.length e.Codec.events;
    total_dropped =
      Array.fold_left (fun acc (s : Codec.stream_info) -> acc + s.Codec.dropped) 0 e.Codec.streams;
    classes;
    timeline;
  }

let class_counts t = List.map (fun r -> (r.cls, r.emitted)) t.classes

let render ?(timeline_rows = 24) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d streams, %d events emitted, %d kept, %d dropped\n"
       (Array.length t.streams) t.total_emitted t.total_kept t.total_dropped);
  if t.total_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "WARNING: %d events were dropped by full rings — kept counts and the timeline \
          undercount; raise --trace-cap for a complete capture\n"
         t.total_dropped);
  Buffer.add_string buf "\nper-event-class counts and inter-arrival times (kept events)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-20s %10s %10s %12s %12s %12s\n" "class" "emitted" "kept" "dt p50 (s)"
       "dt p95 (s)" "dt max (s)");
  List.iter
    (fun r ->
      let h = r.inter_arrival in
      if Sim.Stats.Histogram.count h > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-20s %10d %10d %12.6f %12.6f %12.6f\n" (Event.class_name r.cls)
             r.emitted r.kept
             (Sim.Stats.Histogram.percentile h 50.0)
             (Sim.Stats.Histogram.percentile h 95.0)
             (Sim.Stats.Histogram.max h))
      else
        Buffer.add_string buf
          (Printf.sprintf "%-20s %10d %10d %12s %12s %12s\n" (Event.class_name r.cls) r.emitted
             r.kept "-" "-" "-"))
    t.classes;
  Buffer.add_string buf "\nper-epoch timeline (kept events; epoch -1 = boot)\n";
  Buffer.add_string buf
    (Printf.sprintf "%8s %8s %8s %10s %8s %8s %10s\n" "epoch" "events" "faults" "migrations"
       "pv-ops" "breaker" "hypercalls");
  let rows = t.timeline in
  let n = List.length rows in
  let shown = if n <= timeline_rows then rows else List.filteri (fun i _ -> i < timeline_rows) rows in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%8d %8d %8d %10d %8d %8d %10d\n" r.epoch r.events r.faults r.migrations
           r.pv_ops r.breaker r.hypercalls))
    shown;
  if n > timeline_rows then
    Buffer.add_string buf (Printf.sprintf "... (%d more epochs)\n" (n - timeline_rows));
  Buffer.add_string buf "\nstreams\n";
  Array.iteri
    (fun i (s : Codec.stream_info) ->
      Buffer.add_string buf
        (Printf.sprintf "%4d %-60s %8d emitted %8d dropped\n" i s.Codec.label s.Codec.emitted
           s.Codec.dropped))
    t.streams;
  Buffer.contents buf
