(** Streaming trace query engine: one bounded-memory pass over a trace
    file (either codec), filtering by class / domain / vcpu / node /
    epoch window and aggregating counts, per-epoch rates, top-k hot
    frames and a per-(node, epoch) heatmap.

    Epoch attribution matches {!Summary}: an event belongs to the
    epoch of the last [Epoch_boundary] its own stream emitted before
    it.  Aggregates are pure functions of the trace bytes. *)

type filter = {
  classes : Event.class_ list;  (** [] = every class *)
  domain : int option;
  vcpu : int option;
  node : int option;
  epoch_lo : int option;
  epoch_hi : int option;
}

val filter :
  ?classes:Event.class_ list ->
  ?domain:int ->
  ?vcpu:int ->
  ?node:int ->
  ?epoch_lo:int ->
  ?epoch_hi:int ->
  unit ->
  filter
(** Everything defaults to "no constraint". *)

val parse_class : string -> (Event.class_, string) result
(** Resolve one class name; the error message enumerates every valid
    class name. *)

val parse_classes : string -> (Event.class_ list, string) result
(** Comma-separated class list; empty entries are skipped. *)

val parse_epochs : string -> (int * int, string) result
(** ["E"] or ["LO-HI"] (inclusive). *)

type class_row = {
  cls : Event.class_;
  emitted : int;  (** drop-proof stream-metadata total *)
  matched : int;  (** kept events passing the filter *)
}

type t = {
  scanned : int;  (** kept events read from the file *)
  matched : int;
  dropped : int;  (** ring drops over all streams *)
  rows : class_row list;  (** classes with emitted or matched > 0 *)
  epoch_lo : int;  (** observed epoch range among matched events; *)
  epoch_hi : int;  (** (0, -1) when nothing matched *)
  rate_per_epoch : float;  (** matched / epochs spanned *)
  top_pfns : (int * int) list;  (** (pfn, matched count), count desc *)
  heat : ((int * int) * int) list;  (** ((epoch, node), matched count) *)
}

val run : ?top:int -> filter -> string -> t
(** Stream the file at the path through the filter ([top] bounds the
    hot-frame list, default 10).
    @raise Codec.Corrupt on malformed or truncated traces.
    @raise Sys_error when the file cannot be opened. *)

val class_counts : t -> (Event.class_ * int) list
(** Per-class matched counts — with an empty filter these equal the
    kept counts {!Summary} reports. *)

val render_table : t -> string
val render_jsonl : t -> string

val heatmap_csv : t -> string
(** CSV: one row per epoch, one [node<N>] column per node seen among
    matched events, zero-filled. *)
