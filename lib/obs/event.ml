type class_ =
  | Hypercall_entry
  | Hypercall_exit
  | Page_fault
  | First_touch
  | Migrate_start
  | Migrate_retry
  | Migrate_defer
  | Migrate_drain
  | Pv_record
  | Pv_flush
  | Pv_lost
  | Breaker_trip
  | Breaker_escalate
  | Breaker_cooldown
  | Reconcile_sweep
  | Epoch_boundary
  | Splinter
  | Promote
  | Superpage_migrate
  | Pv_dedup
  | P2m_batch
  | Ecc_ce
  | Ecc_ue
  | Page_offline
  | Node_drain
  | Evacuate
  | Pt_walk
  | Pt_replica_update
  | Pt_replica_invalidate

let classes =
  [
    Hypercall_entry;
    Hypercall_exit;
    Page_fault;
    First_touch;
    Migrate_start;
    Migrate_retry;
    Migrate_defer;
    Migrate_drain;
    Pv_record;
    Pv_flush;
    Pv_lost;
    Breaker_trip;
    Breaker_escalate;
    Breaker_cooldown;
    Reconcile_sweep;
    Epoch_boundary;
    Splinter;
    Promote;
    Superpage_migrate;
    Pv_dedup;
    P2m_batch;
    Ecc_ce;
    Ecc_ue;
    Page_offline;
    Node_drain;
    Evacuate;
    Pt_walk;
    Pt_replica_update;
    Pt_replica_invalidate;
  ]

let class_count = List.length classes

let class_index = function
  | Hypercall_entry -> 0
  | Hypercall_exit -> 1
  | Page_fault -> 2
  | First_touch -> 3
  | Migrate_start -> 4
  | Migrate_retry -> 5
  | Migrate_defer -> 6
  | Migrate_drain -> 7
  | Pv_record -> 8
  | Pv_flush -> 9
  | Pv_lost -> 10
  | Breaker_trip -> 11
  | Breaker_escalate -> 12
  | Breaker_cooldown -> 13
  | Reconcile_sweep -> 14
  | Epoch_boundary -> 15
  | Splinter -> 16
  | Promote -> 17
  | Superpage_migrate -> 18
  | Pv_dedup -> 19
  | P2m_batch -> 20
  | Ecc_ce -> 21
  | Ecc_ue -> 22
  | Page_offline -> 23
  | Node_drain -> 24
  | Evacuate -> 25
  | Pt_walk -> 26
  | Pt_replica_update -> 27
  | Pt_replica_invalidate -> 28

let class_of_index = function
  | 0 -> Some Hypercall_entry
  | 1 -> Some Hypercall_exit
  | 2 -> Some Page_fault
  | 3 -> Some First_touch
  | 4 -> Some Migrate_start
  | 5 -> Some Migrate_retry
  | 6 -> Some Migrate_defer
  | 7 -> Some Migrate_drain
  | 8 -> Some Pv_record
  | 9 -> Some Pv_flush
  | 10 -> Some Pv_lost
  | 11 -> Some Breaker_trip
  | 12 -> Some Breaker_escalate
  | 13 -> Some Breaker_cooldown
  | 14 -> Some Reconcile_sweep
  | 15 -> Some Epoch_boundary
  | 16 -> Some Splinter
  | 17 -> Some Promote
  | 18 -> Some Superpage_migrate
  | 19 -> Some Pv_dedup
  | 20 -> Some P2m_batch
  | 21 -> Some Ecc_ce
  | 22 -> Some Ecc_ue
  | 23 -> Some Page_offline
  | 24 -> Some Node_drain
  | 25 -> Some Evacuate
  | 26 -> Some Pt_walk
  | 27 -> Some Pt_replica_update
  | 28 -> Some Pt_replica_invalidate
  | _ -> None

let class_name = function
  | Hypercall_entry -> "hypercall_entry"
  | Hypercall_exit -> "hypercall_exit"
  | Page_fault -> "page_fault"
  | First_touch -> "first_touch"
  | Migrate_start -> "migrate_start"
  | Migrate_retry -> "migrate_retry"
  | Migrate_defer -> "migrate_defer"
  | Migrate_drain -> "migrate_drain"
  | Pv_record -> "pv_record"
  | Pv_flush -> "pv_flush"
  | Pv_lost -> "pv_lost"
  | Breaker_trip -> "breaker_trip"
  | Breaker_escalate -> "breaker_escalate"
  | Breaker_cooldown -> "breaker_cooldown"
  | Reconcile_sweep -> "reconcile_sweep"
  | Epoch_boundary -> "epoch_boundary"
  | Splinter -> "splinter"
  | Promote -> "promote"
  | Superpage_migrate -> "superpage_migrate"
  | Pv_dedup -> "pv_dedup"
  | P2m_batch -> "p2m_batch"
  | Ecc_ce -> "ecc_ce"
  | Ecc_ue -> "ecc_ue"
  | Page_offline -> "page_offline"
  | Node_drain -> "node_drain"
  | Evacuate -> "evacuate"
  | Pt_walk -> "pt_walk"
  | Pt_replica_update -> "pt_replica_update"
  | Pt_replica_invalidate -> "pt_replica_invalidate"

let class_of_name name = List.find_opt (fun c -> class_name c = name) classes

type t = {
  time : float;  (** simulated virtual time (seconds) at emission *)
  cls : class_;
  domain : int;  (** domain id, -1 when not applicable *)
  vcpu : int;  (** vCPU index, -1 when not applicable *)
  pfn : int;  (** guest frame number, -1 when not applicable *)
  node : int;  (** NUMA node, -1 when not applicable *)
  arg : int;  (** class-specific payload (ops, level, healed pages, ...) *)
}

let make ?(domain = -1) ?(vcpu = -1) ?(pfn = -1) ?(node = -1) ?(arg = 0) ~time cls =
  { time; cls; domain; vcpu; pfn; node; arg }

(* A merged event remembers which logical stream produced it and its
   sequence number in that stream; (time, stream, seq) is the
   deterministic total order of the merged trace. *)
type merged = {
  stream : int;
  seq : int;
  event : t;
}

let compare_merged a b =
  let c = compare a.event.time b.event.time in
  if c <> 0 then c
  else begin
    let c = compare a.stream b.stream in
    if c <> 0 then c else compare a.seq b.seq
  end

let pp fmt e =
  Format.fprintf fmt "%.6f %s dom=%d vcpu=%d pfn=%d node=%d arg=%d" e.time (class_name e.cls)
    e.domain e.vcpu e.pfn e.node e.arg
