(* Streaming trace query engine: one pass over a trace file (either
   codec, via Codec.fold_file) in bounded memory, filtering events by
   class / domain / vcpu / node / epoch window and aggregating counts,
   per-epoch rates, top-k hot frames and a per-(node, epoch) traffic
   heatmap.

   Epoch attribution matches Summary: an event belongs to the epoch of
   the last Epoch_boundary its OWN stream emitted before it (by
   sequence number).  The fold visits events in merged order, within
   which each stream's seq ascends, so a single per-stream "current
   epoch" cell reproduces the batch attribution exactly.  Every
   aggregate is a pure function of the trace bytes, so two
   byte-identical traces always query identically. *)

type filter = {
  classes : Event.class_ list;  (* [] = every class *)
  domain : int option;
  vcpu : int option;
  node : int option;
  epoch_lo : int option;
  epoch_hi : int option;
}

let filter ?(classes = []) ?domain ?vcpu ?node ?epoch_lo ?epoch_hi () =
  { classes; domain; vcpu; node; epoch_lo; epoch_hi }

let all_class_names = List.map Event.class_name Event.classes

let parse_class name =
  match Event.class_of_name name with
  | Some cls -> Ok cls
  | None ->
      Error
        (Printf.sprintf "unknown event class %S; valid classes: %s" name
           (String.concat ", " all_class_names))

let parse_classes spec =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match parse_class name with Ok c -> go (c :: acc) rest | Error e -> Error e)
  in
  go []
    (List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' spec)))

let parse_epochs spec =
  let fail () =
    Error (Printf.sprintf "bad epoch window %S; expected EPOCH or LO-HI (e.g. 10-20)" spec)
  in
  match String.index_opt spec '-' with
  | None -> (
      match int_of_string_opt (String.trim spec) with
      | Some e -> Ok (e, e)
      | None -> fail ())
  | Some i -> (
      let lo = String.trim (String.sub spec 0 i) in
      let hi = String.trim (String.sub spec (i + 1) (String.length spec - i - 1)) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
      | _ -> fail ())

type class_row = {
  cls : Event.class_;
  emitted : int;  (* drop-proof stream-metadata total *)
  matched : int;  (* kept events that passed the filter *)
}

type t = {
  scanned : int;  (* kept events read from the file *)
  matched : int;
  dropped : int;  (* ring drops over all streams *)
  rows : class_row list;  (* classes with emitted or matched > 0 *)
  epoch_lo : int;  (* observed epoch range among matched events; *)
  epoch_hi : int;  (* (0, -1) when nothing matched *)
  rate_per_epoch : float;  (* matched / epochs spanned *)
  top_pfns : (int * int) list;  (* (pfn, matched count), count desc *)
  heat : ((int * int) * int) list;  (* ((epoch, node), matched), sorted *)
}

type state = {
  mutable scanned : int;
  mutable matched : int;
  mutable dropped : int;
  emitted : int array;
  matched_by_class : int array;
  mutable ep_lo : int;
  mutable ep_hi : int;
  stream_epoch : (int, int) Hashtbl.t;
  pfn_counts : (int, int ref) Hashtbl.t;
  heat_counts : (int * int, int ref) Hashtbl.t;
}

let run ?(top = 10) f path =
  let wanted =
    match f.classes with
    | [] -> Array.make Event.class_count true
    | cls ->
        let a = Array.make Event.class_count false in
        List.iter (fun c -> a.(Event.class_index c) <- true) cls;
        a
  in
  let opt_ok o v = match o with None -> true | Some x -> x = v in
  let st =
    {
      scanned = 0;
      matched = 0;
      dropped = 0;
      emitted = Array.make Event.class_count 0;
      matched_by_class = Array.make Event.class_count 0;
      ep_lo = max_int;
      ep_hi = min_int;
      stream_epoch = Hashtbl.create 16;
      pfn_counts = Hashtbl.create 1024;
      heat_counts = Hashtbl.create 256;
    }
  in
  let bump table key =
    match Hashtbl.find_opt table key with
    | Some r -> incr r
    | None -> Hashtbl.replace table key (ref 1)
  in
  let () =
    Codec.fold_file path ~init:() ~f:(fun () item ->
        match item with
        | Codec.Header -> ()
        | Codec.Meta (_, s) ->
            st.dropped <- st.dropped + s.Codec.dropped;
            Array.iteri (fun i n -> st.emitted.(i) <- st.emitted.(i) + n) s.Codec.by_class
        | Codec.Ev m ->
            let ev = m.Event.event in
            st.scanned <- st.scanned + 1;
            if ev.Event.cls = Event.Epoch_boundary then
              Hashtbl.replace st.stream_epoch m.Event.stream ev.Event.arg;
            let epoch =
              match Hashtbl.find_opt st.stream_epoch m.Event.stream with
              | Some e -> e
              | None -> -1
            in
            let i = Event.class_index ev.Event.cls in
            if
              wanted.(i)
              && opt_ok f.domain ev.Event.domain
              && opt_ok f.vcpu ev.Event.vcpu
              && opt_ok f.node ev.Event.node
              && (match f.epoch_lo with None -> true | Some lo -> epoch >= lo)
              && match f.epoch_hi with None -> true | Some hi -> epoch <= hi
            then begin
              st.matched <- st.matched + 1;
              st.matched_by_class.(i) <- st.matched_by_class.(i) + 1;
              if epoch < st.ep_lo then st.ep_lo <- epoch;
              if epoch > st.ep_hi then st.ep_hi <- epoch;
              if ev.Event.pfn >= 0 then bump st.pfn_counts ev.Event.pfn;
              if ev.Event.node >= 0 then bump st.heat_counts (epoch, ev.Event.node)
            end)
  in
  let rows =
    List.filter_map
      (fun cls ->
        let i = Event.class_index cls in
        if st.emitted.(i) = 0 && st.matched_by_class.(i) = 0 then None
        else Some { cls; emitted = st.emitted.(i); matched = st.matched_by_class.(i) })
      Event.classes
  in
  let epoch_lo, epoch_hi = if st.matched = 0 then (0, -1) else (st.ep_lo, st.ep_hi) in
  let rate_per_epoch =
    if st.matched = 0 then 0.0
    else float_of_int st.matched /. float_of_int (epoch_hi - epoch_lo + 1)
  in
  let top_pfns =
    (* Ranking "bigger count wins, ties toward the smaller pfn" is a
       total order, so the selection is independent of hash order. *)
    let heap = Sim.Stats.Topk.create (Stdlib.max 1 top) in
    Hashtbl.iter
      (fun pfn r -> Sim.Stats.Topk.add heap ~key:(float_of_int !r) pfn)
      st.pfn_counts;
    List.map
      (fun (key, pfn) -> (pfn, int_of_float key))
      (Array.to_list (Sim.Stats.Topk.sorted_desc heap))
  in
  let heat =
    Hashtbl.fold (fun key r acc -> ((key, !r) :: acc)) st.heat_counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    scanned = st.scanned;
    matched = st.matched;
    dropped = st.dropped;
    rows;
    epoch_lo;
    epoch_hi;
    rate_per_epoch;
    top_pfns;
    heat;
  }

let class_counts (t : t) = List.map (fun r -> (r.cls, r.matched)) t.rows

(* ---------------------------- rendering --------------------------- *)

let render_table (t : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "query: %d events scanned, %d matched, %d dropped by rings\n" t.scanned
       t.matched t.dropped);
  if t.dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "WARNING: %d events were dropped by full rings — matched counts \
                       undercount the true activity\n"
         t.dropped);
  if t.matched > 0 then
    Buffer.add_string buf
      (Printf.sprintf "epochs %d..%d, %.3f matched events per epoch\n" t.epoch_lo t.epoch_hi
         t.rate_per_epoch);
  Buffer.add_string buf (Printf.sprintf "\n%-20s %10s %10s\n" "class" "emitted" "matched");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-20s %10d %10d\n" (Event.class_name r.cls) r.emitted r.matched))
    t.rows;
  if t.top_pfns <> [] then begin
    Buffer.add_string buf (Printf.sprintf "\n%-12s %10s\n" "pfn" "events");
    List.iter
      (fun (pfn, n) -> Buffer.add_string buf (Printf.sprintf "%-12d %10d\n" pfn n))
      t.top_pfns
  end;
  Buffer.contents buf

let render_jsonl (t : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"query\":\"xen-numa\",\"scanned\":%d,\"matched\":%d,\"dropped\":%d,\"epoch_lo\":%d,\"epoch_hi\":%d,\"rate_per_epoch\":%.6f}\n"
       t.scanned t.matched t.dropped t.epoch_lo t.epoch_hi t.rate_per_epoch);
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "{\"class\":\"%s\",\"emitted\":%d,\"matched\":%d}\n"
           (Event.class_name r.cls) r.emitted r.matched))
    t.rows;
  List.iter
    (fun (pfn, n) ->
      Buffer.add_string buf (Printf.sprintf "{\"pfn\":%d,\"events\":%d}\n" pfn n))
    t.top_pfns;
  Buffer.contents buf

(* Per-(node, epoch) heatmap as CSV: one row per epoch that matched,
   one column per node seen, zero-filled — ready for pcolormesh-style
   plotting. *)
let heatmap_csv (t : t) =
  let nodes =
    List.sort_uniq compare (List.map (fun (((_, node), _) : (int * int) * int) -> node) t.heat)
  in
  let epochs = List.sort_uniq compare (List.map (fun ((epoch, _), _) -> epoch) t.heat) in
  let table = Hashtbl.create (List.length t.heat) in
  List.iter (fun (key, n) -> Hashtbl.replace table key n) t.heat;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "epoch";
  List.iter (fun node -> Buffer.add_string buf (Printf.sprintf ",node%d" node)) nodes;
  Buffer.add_char buf '\n';
  List.iter
    (fun epoch ->
      Buffer.add_string buf (string_of_int epoch);
      List.iter
        (fun node ->
          let n = match Hashtbl.find_opt table (epoch, node) with Some n -> n | None -> 0 in
          Buffer.add_string buf (Printf.sprintf ",%d" n))
        nodes;
      Buffer.add_char buf '\n')
    epochs;
  Buffer.contents buf
