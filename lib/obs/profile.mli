(** Wall-clock phase profiler for the runner's hot paths.

    Fixed phase taxonomy, one atomic (ns, calls) pair per phase shared
    by every Pool worker.  Disabled cost is a single atomic read in
    {!span}; results flow into the metrics registry only (never into
    traces), so trace byte-equality across worker schedules is
    untouched. *)

type phase =
  | Kernel_compute  (** sharded per-epoch compute kernel *)
  | Kernel_throughput  (** sharded throughput/traffic kernel *)
  | Kernel_latency  (** sharded weighted-latency kernel *)
  | Reduce  (** sequential fixed-order reductions *)
  | Carrefour_feed  (** per-epoch carrefour sample feed *)
  | P2m_batch  (** batched P2M invalidate/map/migrate replay *)
  | Pv_flush  (** PV queue partition flush *)
  | Epoch_tick  (** policy manager epoch tick *)
  | Ff_replay  (** fast-forward delta replay of a quiescent epoch *)

val phases : phase list
val phase_name : phase -> string

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every accumulator. *)

val span : phase -> (unit -> 'a) -> 'a
(** Run the thunk, attributing its wall-clock time to the phase.  When
    profiling is disabled this is one atomic read plus the call.
    Spans are inclusive — nested profiled phases double-account. *)

val totals : unit -> (string * int * int) list
(** [(phase name, calls, total ns)] for every phase, taxonomy order. *)

val commit_metrics : unit -> unit
(** Mirror non-zero accumulators into the default metrics registry as
    [profile.<phase>.calls] / [profile.<phase>.ns] counters (no-op
    while metrics are disabled). *)

val render : unit -> string
(** Human-readable table of the non-zero phases. *)
