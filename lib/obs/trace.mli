(** A trace session: registry of per-run event streams plus the
    deterministic merge and file export.

    Determinism contract: stream labels are pure functions of run
    configuration and seed; the merge sorts streams by label and
    events by (time, stream id, in-stream sequence).  The exported
    bytes are therefore identical at any [--jobs] count for the same
    seed — the discipline [test_pool.ml] enforces for results,
    extended to traces. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the per-stream ring capacity (default 4096). *)

val capacity : t -> int

val stream : t -> label:string -> Stream.t
(** Create and register a stream.  If [label] is already registered
    (two workers racing on the same memoised cell, which produce
    bit-identical event sequences), the returned stream is detached:
    usable, but excluded from the export. *)

val streams : t -> Stream.t list
(** Registered streams sorted by label — export order. *)

val stream_count : t -> int

(** {1 Global session} — how the engine finds the capture without
    threading a handle through every layer. *)

val install : t -> unit
val uninstall : unit -> unit
val current : unit -> t option
val installed : unit -> bool

(** {1 Merge and export} *)

val export : t -> Codec.export

val render_jsonl : t -> string
val render_binary : t -> string

val write_file : t -> string -> unit
(** Binary when [file] ends in [.bin], JSONL otherwise. *)

val commit_metrics : t -> unit
(** Mirror per-class emission totals, drops and stream count into the
    default metrics registry (no-op while metrics are disabled), so
    the summariser and the registry report the same counts. *)
