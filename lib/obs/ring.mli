(** Bounded, lossy-by-design ring buffer: fixed capacity,
    overwrite-oldest, explicit drop accounting.

    Invariants (enforced by the qcheck property suite):
    [length t + dropped t = emitted t], and {!to_list} returns exactly
    the most recent [length t] pushed values in push order — the ring
    never reorders or duplicates. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [dummy] initialises the backing array; it is never returned.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val emitted : 'a t -> int
(** Total pushes since creation (or last {!clear}). *)

val dropped : 'a t -> int
(** Pushes that overwrote an unread entry. *)

val push : 'a t -> 'a -> unit
val to_list : 'a t -> 'a list
(** Kept entries, oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
