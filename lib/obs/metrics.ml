(* Process-wide registry of named counters, gauges and log-bucketed
   latency histograms.  One mutex guards the table and every update:
   instrumentation sites are cheap and only taken when metrics are
   enabled, so contention is irrelevant next to the simulation work.

   Counter totals and histogram bucket counts are additive, so a
   parallel sweep accumulates the same registry contents whatever the
   worker count; only wall-clock-valued series (pool timings) vary. *)

type value =
  | Counter of { mutable count : int }
  | Gauge of { mutable value : float }
  | Histogram of Sim.Stats.Histogram.t

type t = {
  mutex : Mutex.t;
  table : (string, value) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

let default = create ()

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let wrong_kind name = invalid_arg (Printf.sprintf "Metrics: %S already has another kind" name)

let incr_in t ?(by = 1) name =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Counter c) -> c.count <- c.count + by
      | Some _ -> wrong_kind name
      | None -> Hashtbl.replace t.table name (Counter { count = by }))

let gauge_in t name value =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Gauge g) -> g.value <- value
      | Some _ -> wrong_kind name
      | None -> Hashtbl.replace t.table name (Gauge { value }))

let observe_in t name sample =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Histogram h) -> Sim.Stats.Histogram.add h sample
      | Some _ -> wrong_kind name
      | None ->
          let h = Sim.Stats.Histogram.create () in
          Sim.Stats.Histogram.add h sample;
          Hashtbl.replace t.table name (Histogram h))

let merge_histogram_in t name src =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Histogram h) -> Sim.Stats.Histogram.merge h src
      | Some _ -> wrong_kind name
      | None ->
          let h = Sim.Stats.Histogram.create () in
          Sim.Stats.Histogram.merge h src;
          Hashtbl.replace t.table name (Histogram h))

(* Guarded front doors on the default registry: no-ops (one atomic
   read) unless metrics collection is on. *)
let incr ?by name = if enabled () then incr_in default ?by name
let gauge name value = if enabled () then gauge_in default name value
let observe name sample = if enabled () then observe_in default name sample
let merge_histogram name src = if enabled () then merge_histogram_in default name src

let histogram_copy ?(registry = default) name =
  Mutex.protect registry.mutex (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (Histogram h) -> Some (Sim.Stats.Histogram.copy h)
      | Some _ | None -> None)

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_summary

let snapshot_of t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun name value acc ->
          let entry =
            match value with
            | Counter c -> Counter_value c.count
            | Gauge g -> Gauge_value g.value
            | Histogram h ->
                Histogram_value
                  {
                    count = Sim.Stats.Histogram.count h;
                    mean = Sim.Stats.Histogram.mean h;
                    p50 = Sim.Stats.Histogram.percentile h 50.0;
                    p95 = Sim.Stats.Histogram.percentile h 95.0;
                    p99 = Sim.Stats.Histogram.percentile h 99.0;
                    p999 = Sim.Stats.Histogram.percentile h 99.9;
                    max = Sim.Stats.Histogram.max h;
                  }
          in
          (name, entry) :: acc)
        t.table [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () = snapshot_of default

let counter_value ?(registry = default) name =
  Mutex.protect registry.mutex (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (Counter c) -> Some c.count
      | Some _ | None -> None)

let reset_in t = Mutex.protect t.mutex (fun () -> Hashtbl.reset t.table)
let reset () = reset_in default

let pp fmt () =
  let rows = snapshot () in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, entry) ->
      match entry with
      | Counter_value n -> Format.fprintf fmt "%-44s %12d@," name n
      | Gauge_value v -> Format.fprintf fmt "%-44s %12.4f@," name v
      | Histogram_value h ->
          Format.fprintf fmt
            "%-44s %12d  mean %.3g  p50 %.3g  p95 %.3g  p99 %.3g  p99.9 %.3g  max %.3g@," name
            h.count h.mean h.p50 h.p95 h.p99 h.p999 h.max)
    rows;
  Format.fprintf fmt "@]"

let render () = Format.asprintf "%a" pp ()

let to_json_entries () =
  List.map
    (fun (name, entry) ->
      match entry with
      | Counter_value n -> Printf.sprintf "{\"name\": \"%s\", \"count\": %d}" (Json.escape name) n
      | Gauge_value v -> Printf.sprintf "{\"name\": \"%s\", \"value\": %.6f}" (Json.escape name) v
      | Histogram_value h ->
          Printf.sprintf
            "{\"name\": \"%s\", \"count\": %d, \"mean\": %.6g, \"p50\": %.6g, \"p95\": %.6g, \
             \"p99\": %.6g, \"p999\": %.6g, \"max\": %.6g}"
            (Json.escape name) h.count h.mean h.p50 h.p95 h.p99 h.p999 h.max)
    (snapshot ())
