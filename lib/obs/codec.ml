(* Wire formats of a merged trace: self-describing JSONL (one object
   per line, greppable, diff-friendly) and a compact fixed-record
   binary format.  Both carry the same data and both round-trip; the
   readers auto-detect by magic.  Output is a pure function of the
   export value, so byte-identical exports mean identical traces. *)

type stream_info = {
  label : string;
  emitted : int;
  dropped : int;
  by_class : int array;  (* per Event.class_index *)
}

type export = {
  streams : stream_info array;  (* index = stream id, sorted by label *)
  events : Event.merged list;  (* sorted by Event.compare_merged *)
}

let jsonl_magic = "{\"trace\":\"xen-numa\""
let binary_magic = "XNUMATR1"

(* ---------------------------- writing ---------------------------- *)

let add_jsonl buf e =
  List.iteri
    (fun i (s : stream_info) ->
      let classes =
        List.filter_map
          (fun cls ->
            let n = s.by_class.(Event.class_index cls) in
            if n = 0 then None
            else Some (Printf.sprintf "\"%s\":%d" (Event.class_name cls) n))
          Event.classes
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"stream\":%d,\"label\":\"%s\",\"emitted\":%d,\"dropped\":%d,\"by_class\":{%s}}\n"
           i (Json.escape s.label) s.emitted s.dropped (String.concat "," classes)))
    (Array.to_list e.streams);
  List.iter
    (fun (m : Event.merged) ->
      let ev = m.Event.event in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"t\":%.6f,\"w\":%d,\"seq\":%d,\"class\":\"%s\",\"dom\":%d,\"vcpu\":%d,\"pfn\":%d,\"node\":%d,\"arg\":%d}\n"
           ev.Event.time m.Event.stream m.Event.seq (Event.class_name ev.Event.cls) ev.Event.domain
           ev.Event.vcpu ev.Event.pfn ev.Event.node ev.Event.arg))
    e.events

let write_jsonl buf e =
  Buffer.add_string buf
    (Printf.sprintf "%s,\"version\":1,\"streams\":%d,\"events\":%d}\n" jsonl_magic
       (Array.length e.streams) (List.length e.events));
  add_jsonl buf e

let write_binary buf e =
  Buffer.add_string buf binary_magic;
  Buffer.add_int32_be buf (Int32.of_int (Array.length e.streams));
  Array.iter
    (fun (s : stream_info) ->
      Buffer.add_int32_be buf (Int32.of_int (String.length s.label));
      Buffer.add_string buf s.label;
      Buffer.add_int64_be buf (Int64.of_int s.emitted);
      Buffer.add_int64_be buf (Int64.of_int s.dropped);
      Buffer.add_int32_be buf (Int32.of_int (Array.length s.by_class));
      Array.iter (fun n -> Buffer.add_int64_be buf (Int64.of_int n)) s.by_class)
    e.streams;
  Buffer.add_int64_be buf (Int64.of_int (List.length e.events));
  List.iter
    (fun (m : Event.merged) ->
      let ev = m.Event.event in
      Buffer.add_int32_be buf (Int32.of_int m.Event.stream);
      Buffer.add_int64_be buf (Int64.of_int m.Event.seq);
      Buffer.add_int64_be buf (Int64.bits_of_float ev.Event.time);
      Buffer.add_uint8 buf (Event.class_index ev.Event.cls);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.domain);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.vcpu);
      Buffer.add_int64_be buf (Int64.of_int ev.Event.pfn);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.node);
      Buffer.add_int64_be buf (Int64.of_int ev.Event.arg))
    e.events

(* ---------------------------- reading ---------------------------- *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let get field obj ~line =
  match Json.member field obj with
  | Some v -> v
  | None -> corrupt "line %d: missing field %S" line field

let int_field field obj ~line =
  match Json.to_int (get field obj ~line) with
  | Some n -> n
  | None -> corrupt "line %d: field %S is not a number" line field

let string_field field obj ~line =
  match Json.to_string (get field obj ~line) with
  | Some s -> s
  | None -> corrupt "line %d: field %S is not a string" line field

let read_jsonl text =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let parsed =
    List.mapi
      (fun i l ->
        match Json.of_string_opt l with
        | Some v -> (i + 1, v)
        | None -> corrupt "line %d: not valid JSON" (i + 1))
      lines
  in
  let streams = Hashtbl.create 16 in
  let events = ref [] in
  List.iter
    (fun (line, obj) ->
      match Json.member "stream" obj with
      | Some _ ->
          let id = int_field "stream" obj ~line in
          let by_class = Array.make Event.class_count 0 in
          (match Json.member "by_class" obj with
          | Some (Json.Obj fields) ->
              List.iter
                (fun (name, v) ->
                  match (Event.class_of_name name, Json.to_int v) with
                  | Some cls, Some n -> by_class.(Event.class_index cls) <- n
                  | _ -> corrupt "line %d: bad by_class entry %S" line name)
                fields
          | _ -> corrupt "line %d: stream record without by_class" line);
          Hashtbl.replace streams id
            {
              label = string_field "label" obj ~line;
              emitted = int_field "emitted" obj ~line;
              dropped = int_field "dropped" obj ~line;
              by_class;
            }
      | None -> (
          match Json.member "class" obj with
          | Some _ ->
              let cls_name = string_field "class" obj ~line in
              let cls =
                match Event.class_of_name cls_name with
                | Some c -> c
                | None -> corrupt "line %d: unknown event class %S" line cls_name
              in
              let time =
                match Json.to_float (get "t" obj ~line) with
                | Some f -> f
                | None -> corrupt "line %d: field \"t\" is not a number" line
              in
              events :=
                {
                  Event.stream = int_field "w" obj ~line;
                  seq = int_field "seq" obj ~line;
                  event =
                    Event.make ~time cls
                      ~domain:(int_field "dom" obj ~line)
                      ~vcpu:(int_field "vcpu" obj ~line)
                      ~pfn:(int_field "pfn" obj ~line)
                      ~node:(int_field "node" obj ~line)
                      ~arg:(int_field "arg" obj ~line);
                }
                :: !events
          | None ->
              (* The header line; anything else without stream/class
                 markers is unknown. *)
              if Json.member "trace" obj = None then
                corrupt "line %d: neither header, stream nor event" line))
    parsed;
  let n = 1 + Hashtbl.fold (fun id _ acc -> max id acc) streams (-1) in
  let stream_array =
    Array.init n (fun i ->
        match Hashtbl.find_opt streams i with
        | Some s -> s
        | None -> corrupt "stream %d has no metadata record" i)
  in
  { streams = stream_array; events = List.rev !events }

type cursor = { data : string; mutable pos : int }

let take_i32 c =
  if c.pos + 4 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = Int32.to_int (String.get_int32_be c.data c.pos) in
  c.pos <- c.pos + 4;
  v

let take_i64 c =
  if c.pos + 8 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = String.get_int64_be c.data c.pos in
  c.pos <- c.pos + 8;
  v

let take_u8 c =
  if c.pos + 1 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let take_string c n =
  if c.pos + n > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let read_binary text =
  let c = { data = text; pos = 0 } in
  if take_string c (String.length binary_magic) <> binary_magic then
    corrupt "bad binary trace magic";
  let nstreams = take_i32 c in
  let streams =
    Array.init nstreams (fun _ ->
        let label = take_string c (take_i32 c) in
        let emitted = Int64.to_int (take_i64 c) in
        let dropped = Int64.to_int (take_i64 c) in
        let nclasses = take_i32 c in
        let counts = Array.init nclasses (fun _ -> Int64.to_int (take_i64 c)) in
        let by_class = Array.make Event.class_count 0 in
        Array.iteri (fun i n -> if i < Event.class_count then by_class.(i) <- n) counts;
        { label; emitted; dropped; by_class })
  in
  let nevents = Int64.to_int (take_i64 c) in
  let events =
    List.init nevents (fun _ ->
        let stream = take_i32 c in
        let seq = Int64.to_int (take_i64 c) in
        let time = Int64.float_of_bits (take_i64 c) in
        let cls =
          let idx = take_u8 c in
          match Event.class_of_index idx with
          | Some cls -> cls
          | None -> corrupt "unknown event class index %d" idx
        in
        let domain = take_i32 c in
        let vcpu = take_i32 c in
        let pfn = Int64.to_int (take_i64 c) in
        let node = take_i32 c in
        let arg = Int64.to_int (take_i64 c) in
        { Event.stream; seq; event = Event.make ~time cls ~domain ~vcpu ~pfn ~node ~arg })
  in
  if c.pos <> String.length text then corrupt "trailing bytes after binary trace";
  { streams; events }

let is_binary text =
  String.length text >= String.length binary_magic
  && String.sub text 0 (String.length binary_magic) = binary_magic

let read text = if is_binary text then read_binary text else read_jsonl text
