(* Wire formats of a merged trace: self-describing JSONL (one object
   per line, greppable, diff-friendly) and a compact fixed-record
   binary format.  Both carry the same data and both round-trip; the
   readers auto-detect by magic.  Output is a pure function of the
   export value, so byte-identical exports mean identical traces. *)

type stream_info = {
  label : string;
  emitted : int;
  dropped : int;
  by_class : int array;  (* per Event.class_index *)
}

type export = {
  streams : stream_info array;  (* index = stream id, sorted by label *)
  events : Event.merged list;  (* sorted by Event.compare_merged *)
}

let jsonl_magic = "{\"trace\":\"xen-numa\""
let binary_magic = "XNUMATR1"

(* ---------------------------- writing ---------------------------- *)

let add_jsonl buf e =
  List.iteri
    (fun i (s : stream_info) ->
      let classes =
        List.filter_map
          (fun cls ->
            let n = s.by_class.(Event.class_index cls) in
            if n = 0 then None
            else Some (Printf.sprintf "\"%s\":%d" (Event.class_name cls) n))
          Event.classes
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"stream\":%d,\"label\":\"%s\",\"emitted\":%d,\"dropped\":%d,\"by_class\":{%s}}\n"
           i (Json.escape s.label) s.emitted s.dropped (String.concat "," classes)))
    (Array.to_list e.streams);
  List.iter
    (fun (m : Event.merged) ->
      let ev = m.Event.event in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"t\":%.6f,\"w\":%d,\"seq\":%d,\"class\":\"%s\",\"dom\":%d,\"vcpu\":%d,\"pfn\":%d,\"node\":%d,\"arg\":%d}\n"
           ev.Event.time m.Event.stream m.Event.seq (Event.class_name ev.Event.cls) ev.Event.domain
           ev.Event.vcpu ev.Event.pfn ev.Event.node ev.Event.arg))
    e.events

let write_jsonl buf e =
  Buffer.add_string buf
    (Printf.sprintf "%s,\"version\":1,\"streams\":%d,\"events\":%d}\n" jsonl_magic
       (Array.length e.streams) (List.length e.events));
  add_jsonl buf e

let write_binary buf e =
  Buffer.add_string buf binary_magic;
  Buffer.add_int32_be buf (Int32.of_int (Array.length e.streams));
  Array.iter
    (fun (s : stream_info) ->
      Buffer.add_int32_be buf (Int32.of_int (String.length s.label));
      Buffer.add_string buf s.label;
      Buffer.add_int64_be buf (Int64.of_int s.emitted);
      Buffer.add_int64_be buf (Int64.of_int s.dropped);
      Buffer.add_int32_be buf (Int32.of_int (Array.length s.by_class));
      Array.iter (fun n -> Buffer.add_int64_be buf (Int64.of_int n)) s.by_class)
    e.streams;
  Buffer.add_int64_be buf (Int64.of_int (List.length e.events));
  List.iter
    (fun (m : Event.merged) ->
      let ev = m.Event.event in
      Buffer.add_int32_be buf (Int32.of_int m.Event.stream);
      Buffer.add_int64_be buf (Int64.of_int m.Event.seq);
      Buffer.add_int64_be buf (Int64.bits_of_float ev.Event.time);
      Buffer.add_uint8 buf (Event.class_index ev.Event.cls);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.domain);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.vcpu);
      Buffer.add_int64_be buf (Int64.of_int ev.Event.pfn);
      Buffer.add_int32_be buf (Int32.of_int ev.Event.node);
      Buffer.add_int64_be buf (Int64.of_int ev.Event.arg))
    e.events

(* ---------------------------- reading ---------------------------- *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let get field obj ~line =
  match Json.member field obj with
  | Some v -> v
  | None -> corrupt "line %d: missing field %S" line field

let int_field field obj ~line =
  match Json.to_int (get field obj ~line) with
  | Some n -> n
  | None -> corrupt "line %d: field %S is not a number" line field

let string_field field obj ~line =
  match Json.to_string (get field obj ~line) with
  | Some s -> s
  | None -> corrupt "line %d: field %S is not a string" line field

(* One streamed record of a trace file: the unit both the whole-string
   readers and the bounded-memory fold are built from. *)
type item =
  | Header
  | Meta of int * stream_info
  | Ev of Event.merged

let parse_jsonl_line ~line l =
  let obj =
    match Json.of_string_opt l with
    | Some v -> v
    | None -> corrupt "line %d: not valid JSON" line
  in
  match Json.member "stream" obj with
  | Some _ ->
      let id = int_field "stream" obj ~line in
      let by_class = Array.make Event.class_count 0 in
      (match Json.member "by_class" obj with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (name, v) ->
              match (Event.class_of_name name, Json.to_int v) with
              | Some cls, Some n -> by_class.(Event.class_index cls) <- n
              | _ -> corrupt "line %d: bad by_class entry %S" line name)
            fields
      | _ -> corrupt "line %d: stream record without by_class" line);
      Meta
        ( id,
          {
            label = string_field "label" obj ~line;
            emitted = int_field "emitted" obj ~line;
            dropped = int_field "dropped" obj ~line;
            by_class;
          } )
  | None -> (
      match Json.member "class" obj with
      | Some _ ->
          let cls_name = string_field "class" obj ~line in
          let cls =
            match Event.class_of_name cls_name with
            | Some c -> c
            | None -> corrupt "line %d: unknown event class %S" line cls_name
          in
          let time =
            match Json.to_float (get "t" obj ~line) with
            | Some f -> f
            | None -> corrupt "line %d: field \"t\" is not a number" line
          in
          Ev
            {
              Event.stream = int_field "w" obj ~line;
              seq = int_field "seq" obj ~line;
              event =
                Event.make ~time cls
                  ~domain:(int_field "dom" obj ~line)
                  ~vcpu:(int_field "vcpu" obj ~line)
                  ~pfn:(int_field "pfn" obj ~line)
                  ~node:(int_field "node" obj ~line)
                  ~arg:(int_field "arg" obj ~line);
            }
      | None ->
          (* The header line; anything else without stream/class
             markers is unknown. *)
          if Json.member "trace" obj = None then
            corrupt "line %d: neither header, stream nor event" line
          else Header)

let streams_of_table streams =
  let n = 1 + Hashtbl.fold (fun id _ acc -> max id acc) streams (-1) in
  Array.init n (fun i ->
      match Hashtbl.find_opt streams i with
      | Some s -> s
      | None -> corrupt "stream %d has no metadata record" i)

let read_jsonl text =
  let lines =
    List.filteri (fun _ l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let streams = Hashtbl.create 16 in
  let events = ref [] in
  List.iteri
    (fun i l ->
      match parse_jsonl_line ~line:(i + 1) l with
      | Header -> ()
      | Meta (id, s) -> Hashtbl.replace streams id s
      | Ev m -> events := m :: !events)
    lines;
  { streams = streams_of_table streams; events = List.rev !events }

type cursor = { data : string; mutable pos : int }

let take_i32 c =
  if c.pos + 4 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = Int32.to_int (String.get_int32_be c.data c.pos) in
  c.pos <- c.pos + 4;
  v

let take_i64 c =
  if c.pos + 8 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = String.get_int64_be c.data c.pos in
  c.pos <- c.pos + 8;
  v

let take_u8 c =
  if c.pos + 1 > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let take_string c n =
  if c.pos + n > String.length c.data then corrupt "binary trace truncated at offset %d" c.pos;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let read_binary text =
  let c = { data = text; pos = 0 } in
  if take_string c (String.length binary_magic) <> binary_magic then
    corrupt "bad binary trace magic";
  let nstreams = take_i32 c in
  let streams =
    Array.init nstreams (fun _ ->
        let label = take_string c (take_i32 c) in
        let emitted = Int64.to_int (take_i64 c) in
        let dropped = Int64.to_int (take_i64 c) in
        let nclasses = take_i32 c in
        let counts = Array.init nclasses (fun _ -> Int64.to_int (take_i64 c)) in
        let by_class = Array.make Event.class_count 0 in
        Array.iteri (fun i n -> if i < Event.class_count then by_class.(i) <- n) counts;
        { label; emitted; dropped; by_class })
  in
  let nevents = Int64.to_int (take_i64 c) in
  let events =
    List.init nevents (fun _ ->
        let stream = take_i32 c in
        let seq = Int64.to_int (take_i64 c) in
        let time = Int64.float_of_bits (take_i64 c) in
        let cls =
          let idx = take_u8 c in
          match Event.class_of_index idx with
          | Some cls -> cls
          | None -> corrupt "unknown event class index %d" idx
        in
        let domain = take_i32 c in
        let vcpu = take_i32 c in
        let pfn = Int64.to_int (take_i64 c) in
        let node = take_i32 c in
        let arg = Int64.to_int (take_i64 c) in
        { Event.stream; seq; event = Event.make ~time cls ~domain ~vcpu ~pfn ~node ~arg })
  in
  if c.pos <> String.length text then corrupt "trailing bytes after binary trace";
  { streams; events }

let is_binary text =
  String.length text >= String.length binary_magic
  && String.sub text 0 (String.length binary_magic) = binary_magic

let read text = if is_binary text then read_binary text else read_jsonl text

(* ------------------------- streaming reading ------------------------ *)

(* Channel-based fold over a trace file in bounded memory: one line (or
   one fixed-size binary record) is resident at a time, so a query can
   stream a trace far larger than RAM.  Truncation or malformed input
   raises [Corrupt] exactly like the whole-string readers — a short
   file is an error, never a silently shorter trace. *)

let input_exact ic buf n =
  try really_input ic buf 0 n
  with End_of_file -> corrupt "binary trace truncated at offset %d" (pos_in ic)

let ch_i32 ic buf =
  input_exact ic buf 4;
  Int32.to_int (Bytes.get_int32_be buf 0)

let ch_i64 ic buf =
  input_exact ic buf 8;
  Bytes.get_int64_be buf 0

let ch_u8 ic buf =
  input_exact ic buf 1;
  Char.code (Bytes.get buf 0)

let ch_string ic n =
  try really_input_string ic n
  with End_of_file -> corrupt "binary trace truncated at offset %d" (pos_in ic)

let fold_binary_channel ic ~init ~f =
  (* The caller has already consumed the magic. *)
  let buf = Bytes.create 8 in
  let nstreams = ch_i32 ic buf in
  let acc = ref init in
  for i = 0 to nstreams - 1 do
    let label = ch_string ic (ch_i32 ic buf) in
    let emitted = Int64.to_int (ch_i64 ic buf) in
    let dropped = Int64.to_int (ch_i64 ic buf) in
    let nclasses = ch_i32 ic buf in
    let by_class = Array.make Event.class_count 0 in
    for k = 0 to nclasses - 1 do
      let n = Int64.to_int (ch_i64 ic buf) in
      if k < Event.class_count then by_class.(k) <- n
    done;
    acc := f !acc (Meta (i, { label; emitted; dropped; by_class }))
  done;
  let nevents = Int64.to_int (ch_i64 ic buf) in
  for _ = 1 to nevents do
    let stream = ch_i32 ic buf in
    let seq = Int64.to_int (ch_i64 ic buf) in
    let time = Int64.float_of_bits (ch_i64 ic buf) in
    let cls =
      let idx = ch_u8 ic buf in
      match Event.class_of_index idx with
      | Some cls -> cls
      | None -> corrupt "unknown event class index %d" idx
    in
    let domain = ch_i32 ic buf in
    let vcpu = ch_i32 ic buf in
    let pfn = Int64.to_int (ch_i64 ic buf) in
    let node = ch_i32 ic buf in
    let arg = Int64.to_int (ch_i64 ic buf) in
    acc :=
      f !acc (Ev { Event.stream; seq; event = Event.make ~time cls ~domain ~vcpu ~pfn ~node ~arg })
  done;
  (match input_char ic with
  | _ -> corrupt "trailing bytes after binary trace"
  | exception End_of_file -> ());
  !acc

let fold_jsonl_channel ic ~init ~f =
  let rec go line acc =
    match input_line ic with
    | exception End_of_file -> acc
    | l when String.trim l = "" -> go line acc
    | l -> go (line + 1) (f acc (parse_jsonl_line ~line l))
  in
  go 1 init

let fold_file path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let magic_len = String.length binary_magic in
      let head =
        if in_channel_length ic >= magic_len then really_input_string ic magic_len else ""
      in
      if head = binary_magic then fold_binary_channel ic ~init ~f
      else begin
        seek_in ic 0;
        fold_jsonl_channel ic ~init ~f
      end)
