(* Bounded, lossy-by-design ring: fixed capacity, overwrite-oldest,
   with an explicit count of overwritten entries.  The invariant the
   qcheck property enforces: kept + dropped = emitted, and the kept
   entries are exactly the most recent ones, in emission order. *)

type 'a t = {
  buf : 'a array;
  capacity : int;
  mutable head : int;  (* next write position *)
  mutable len : int;  (* entries currently held, <= capacity *)
  mutable emitted : int;
  mutable dropped : int;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; capacity; head = 0; len = 0; emitted = 0; dropped = 0 }

let capacity t = t.capacity
let length t = t.len
let emitted t = t.emitted
let dropped t = t.dropped

let push t x =
  t.buf.(t.head) <- x;
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1;
  t.emitted <- t.emitted + 1

(* Oldest-to-newest of the kept entries. *)
let to_list t =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i -> t.buf.((start + i) mod t.capacity))

let iter t f = List.iter f (to_list t)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.emitted <- 0;
  t.dropped <- 0
