(* One logical trace stream: the bounded event ring of a single
   engine run (one Engine.Pool task), plus per-class emission counters
   that survive ring overwrites.  A stream is single-writer — the
   worker executing the run — so it needs no lock; determinism across
   worker counts comes from each run owning its stream and the merge
   ordering streams by label. *)

type t = {
  label : string;
  ring : Event.t Ring.t;
  by_class : int array;  (* emitted per class, drop-proof *)
  mutable seq : int;  (* next sequence number *)
  mutable now : float;  (* current simulated time, set by the runner *)
  mutable registered : bool;
}

let dummy_event = Event.make ~time:0.0 Event.Epoch_boundary

let create ?(capacity = 4096) ~label () =
  {
    label;
    ring = Ring.create ~capacity ~dummy:dummy_event;
    by_class = Array.make Event.class_count 0;
    seq = 0;
    now = 0.0;
    registered = false;
  }

let label t = t.label
let set_time t now = t.now <- now
let time t = t.now

let emit ?domain ?vcpu ?pfn ?node ?arg t cls =
  let e = Event.make ?domain ?vcpu ?pfn ?node ?arg ~time:t.now cls in
  Ring.push t.ring e;
  t.by_class.(Event.class_index cls) <- t.by_class.(Event.class_index cls) + 1;
  t.seq <- t.seq + 1

let emitted t = Ring.emitted t.ring
let dropped t = Ring.dropped t.ring
let kept t = Ring.length t.ring
let emitted_by_class t = Array.copy t.by_class

(* Kept events with their in-stream sequence numbers.  The ring holds
   the most recent [kept] of [emitted] events, so the first kept event
   has sequence number [emitted - kept]. *)
let events t =
  let first_seq = Ring.emitted t.ring - Ring.length t.ring in
  List.mapi (fun i e -> (first_seq + i, e)) (Ring.to_list t.ring)
