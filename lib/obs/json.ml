(* Minimal JSON: just enough to read trace JSONL back and to validate
   that every exported line parses.  No dependency on an external JSON
   package (the toolchain ships none); the grammar is full RFC 8259
   minus \u surrogate-pair decoding (escapes are kept verbatim). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let parse_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
                let hex = String.sub st.s st.pos 4 in
                String.iter
                  (fun h ->
                    match h with
                    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                    | _ -> error st "bad \\u escape")
                  hex;
                st.pos <- st.pos + 4;
                Buffer.add_string buf ("\\u" ^ hex)
            | _ -> error st "bad escape");
            go ())
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (fun c -> c >= '0' && c <= '9');
  (match peek st with
  | Some '.' ->
      advance st;
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, value) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, value) :: acc))
      | _ -> error st "expected ',' or '}'"
    in
    members []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec items acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          items (value :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (value :: acc))
      | _ -> error st "expected ',' or ']'"
    in
    items []
  end

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function Number f -> Some (int_of_float f) | _ -> None

let to_string = function String s -> Some s | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
