type row = {
  app : string;
  machine : string;
  best : Policies.Spec.t;
  spread : float;
}

let apps = [ "cg.C"; "sp.C"; "kmeans" ]

let run ?(seed = 42) () =
  (* (machine x app) grid, one pool task per cell. *)
  let cells =
    List.concat_map
      (fun machine -> List.map (fun name -> (machine, name)) apps)
      Numa.Machine_desc.all
  in
  Engine.Pool.map_list
    (fun (machine, name) ->
      let app =
        match Workloads.Catalogue.find name with Some a -> a | None -> assert false
      in
      let threads =
        Numa.Topology.cpu_count (machine.Numa.Machine_desc.topology ())
      in
      let times =
        List.filter_map
          (fun policy ->
            if Policies.Spec.runtime_selectable policy then begin
              let vm = Engine.Config.vm ~threads ~policy app in
              let cfg = Engine.Config.make ~seed ~machine ~mode:Engine.Config.Xen_plus [ vm ] in
              let result = Engine.Runner.run cfg in
              Some (policy, (Engine.Result.single result).Engine.Result.completion)
            end
            else None)
          Policies.Spec.all
      in
      let best, best_t =
        List.fold_left
          (fun (bp, bt) (p, t) -> if t < bt then (p, t) else (bp, bt))
          (Policies.Spec.first_touch, Float.infinity)
          times
      in
      let worst = List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 times in
      { app = name; machine = machine.Numa.Machine_desc.name; best; spread = worst /. best_t })
    cells

let print ?seed () =
  print_endline "Topology generality: policy winners on two different hosts";
  Report.Table.print
    ~header:[ "app"; "machine"; "best policy"; "worst/best" ]
    (List.map
       (fun r ->
         [ r.app; r.machine; Policies.Spec.name r.best; Report.Table.fmt_ratio r.spread ])
       (run ?seed ()));
  print_newline ()
