(** Memory-RAS runs: the hardware-fault section of the bench harness.
    Runs a workload x policy grid under ECC-error storms and a
    mid-run whole-node failure, and prints one RAS-degradation row per
    (cell, scenario) — including the evacuation progress of the
    node-fail runs. *)

val scenarios : (string * string) list
(** (label, fault-plan string) pairs of the scenario axis. *)

val run : ?seed:int -> unit -> Engine.Result.t list
(** Results in grid order (cells x scenarios); parallelised over the
    engine pool with per-cell derived seeds (bit-identical whatever
    the job count). *)

val print : ?seed:int -> unit -> unit
