type pair_result = {
  app_a : string;
  app_b : string;
  improvement_a : float;
  improvement_b : float;
}

(* The paper's figures list the pairs only in the (rasterised) figure;
   we pick five resp. six representative pairs mixing the imbalance
   classes, including the (cg.C, sp.C) pair the text singles out (cg.C
   improved by 440% when colocated with sp.C). *)
let fig8_pairs =
  [ ("cg.C", "sp.C"); ("ft.C", "lu.C"); ("kmeans", "facesim"); ("wc", "wr");
    ("bodytrack", "streamcluster") ]

let fig9_pairs =
  [ ("cg.C", "sp.C"); ("ft.C", "mg.D"); ("kmeans", "pca"); ("facesim", "streamcluster");
    ("ep.D", "bt.C"); ("wc", "wrmem") ]

let app_of name =
  match Workloads.Catalogue.find name with
  | Some app -> app
  | None -> invalid_arg (Printf.sprintf "Multi_vm: unknown app %S" name)

let best_policy app = app.Workloads.App.paper.Workloads.App.best_xen

(* Run a pair; [homes] optionally pins each VM to a node set. *)
let run_pair ?(seed = 42) ~threads ~homes (name_a, name_b) ~policies =
  let app_a = app_of name_a and app_b = app_of name_b in
  let policy_a, policy_b = policies (app_a, app_b) in
  let home_a, home_b = homes in
  let vm ?home_nodes policy app = Engine.Config.vm ?home_nodes ~threads ~policy app in
  let vms =
    match (home_a, home_b) with
    | Some ha, Some hb -> [ vm ~home_nodes:ha policy_a app_a; vm ~home_nodes:hb policy_b app_b ]
    | _ -> [ vm policy_a app_a; vm policy_b app_b ]
  in
  let cfg = Engine.Config.make ~seed ~mode:Engine.Config.Xen_plus vms in
  let result = Engine.Runner.run cfg in
  (Engine.Result.completion result name_a, Engine.Result.completion result name_b)

let halves = (Some [| 0; 1; 2; 3 |], Some [| 4; 5; 6; 7 |])
let halves_swapped = (Some [| 4; 5; 6; 7 |], Some [| 0; 1; 2; 3 |])

let default_policies (_, _) = (Policies.Spec.round_1g, Policies.Spec.round_1g)
let best_policies (a, b) = (best_policy a, best_policy b)

(* Figure 8: 24 vCPUs per VM on disjoint halves; each configuration
   runs with both node assignments and averages (the paper observed
   placement sensitivity). *)
let fig8 ?seed () =
  Engine.Pool.map_list
    (fun pair ->
      let avg f =
        let a1, b1 = f halves in
        let a2, b2 = f halves_swapped in
        ((a1 +. a2) /. 2.0, (b1 +. b2) /. 2.0)
      in
      let base_a, base_b =
        avg (fun homes -> run_pair ?seed ~threads:24 ~homes pair ~policies:default_policies)
      in
      let best_a, best_b =
        avg (fun homes -> run_pair ?seed ~threads:24 ~homes pair ~policies:best_policies)
      in
      {
        app_a = fst pair;
        app_b = snd pair;
        improvement_a = base_a /. best_a;
        improvement_b = base_b /. best_b;
      })
    fig8_pairs

(* Figure 9: 48 vCPUs per VM, two vCPUs per pCPU. *)
let fig9 ?seed () =
  Engine.Pool.map_list
    (fun pair ->
      let none = (None, None) in
      let base_a, base_b = run_pair ?seed ~threads:48 ~homes:none pair ~policies:default_policies in
      let best_a, best_b = run_pair ?seed ~threads:48 ~homes:none pair ~policies:best_policies in
      {
        app_a = fst pair;
        app_b = snd pair;
        improvement_a = base_a /. best_a;
        improvement_b = base_b /. best_b;
      })
    fig9_pairs

let print_rows title rows =
  print_string
    (Report.Chart.render_groups ~title ~series:[ "vm-1"; "vm-2" ]
       (List.map
          (fun r ->
            (Printf.sprintf "%s + %s" r.app_a r.app_b, [ r.improvement_a; r.improvement_b ]))
          rows))

let print_fig8 ?seed () =
  print_rows
    "Figure 8: improvement of Xen+NUMA over Xen+ with 2 colocated VMs (24 vCPUs each)"
    (fig8 ?seed ())

let print_fig9 ?seed () =
  print_rows
    "Figure 9: improvement of Xen+NUMA over Xen+ with 2 consolidated VMs (48 vCPUs each)"
    (fig9 ?seed ())
