(** Shared, memoized single-application runs.

    The figures and tables of the paper reuse the same underlying runs
    (e.g. the Linux first-touch run is the baseline of Figure 2 and a
    series of Figures 1, 6 and 10); this cache executes each distinct
    (mode, app, policy, mcs) combination once per process. *)

type key = {
  mode : Engine.Config.mode;
  app : string;
  policy : Policies.Spec.t;
  mcs : bool;
}

val run : ?seed:int -> key -> Engine.Result.t
(** Simulate (memoized).  The engine seed is {!task_seed} of the key,
    so each grid cell owns an independent, schedule-free RNG stream;
    the cache is domain-safe and may be hit from {!Engine.Pool}
    workers concurrently.  @raise Invalid_argument on an unknown
    app. *)

val task_seed : base:int -> key -> int
(** Deterministic per-cell seed: a stable hash of the (mode, app,
    policy, mcs) identity folded into [base].  Independent of
    execution order, worker count and platform. *)

val completion : ?seed:int -> key -> float

val linux : ?mcs:bool -> Workloads.App.t -> Policies.Spec.t -> key
val xen : Workloads.App.t -> Policies.Spec.t -> key
val xen_plus : ?mcs:bool -> Workloads.App.t -> Policies.Spec.t -> key

val mcs_apps : string list
(** Applications that get MCS spin locks in Xen+ and LinuxNUMA
    (facesim and streamcluster, Section 5.3.2). *)

val uses_mcs : Workloads.App.t -> bool

val linux_numa : Workloads.App.t -> key
(** LinuxNUMA: best Linux policy (Table 4) with MCS where applicable. *)

val xen_plus_numa : Workloads.App.t -> key
(** Xen+NUMA: best Xen+ policy (Table 4) with MCS where applicable. *)

val xen_stock : Workloads.App.t -> key
(** Stock Xen: round-1G, pv I/O, no MCS. *)

val xen_plus_default : Workloads.App.t -> key
(** Xen+ baseline: round-1G with passthrough I/O and MCS where
    applicable. *)

val clear_cache : unit -> unit
