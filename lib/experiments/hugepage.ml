(* The hugepage grid: 2 MiB P2M superpages on and off, across the
   three boot placements, for two TLB-sensitive applications whose
   footprints keep the simulated page scale small enough that a 2 MiB
   extent still spans many simulated pages (kmeans: scale 32 ->
   16-frame extents; cg.C: scale 8 -> 64-frame extents).

   The expected shape, which test_experiments pins:

   - round-1G keeps its boot-time superpages for the whole run, so the
     on-column beats the off-column by the nested-paging TLB gap;
   - round-4K interleaves frames per-page, so extents are never
     single-node contiguous and superpages never form (on == off);
   - first-touch boots round-1G (to have something to lose), then the
     policy switch releases the guest free list, splintering every
     extent; the promotion scan claws a few back, but the TLB win is
     mostly gone and the splinter counters show why. *)

let apps = [ "kmeans"; "cg.C" ]

let policies =
  [ Policies.Spec.round_1g; Policies.Spec.round_4k; Policies.Spec.first_touch ]

(* Same scheme as Chaos.plan_seed: the cell's stream is a pure function
   of (app, policy, base seed).  The superpage toggle deliberately does
   NOT enter the hash — the on/off pair of a cell replays the same
   workload stream, so the completion delta is the superpage effect and
   nothing else.  (The runner keeps their trace streams distinct by
   suffixing "/sp" to the on-cell's label.) *)
let cell_seed ~base key =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) key;
  (base * 0x9E3779B1 lxor !h) land 0x3FFFFFFF

let cells = List.concat_map (fun app -> List.map (fun p -> (app, p)) policies) apps

let run_one ~seed ~app ~policy ~superpages =
  let app_t =
    match Workloads.Catalogue.find app with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~superpages ~policy app_t in
  let key = app ^ "/" ^ Policies.Spec.name policy in
  let cfg =
    Engine.Config.make ~seed:(cell_seed ~base:seed key) ~mode:Engine.Config.Xen_plus [ vm ]
  in
  Engine.Runner.run cfg

(* (off, on) result pairs in [cells] order. *)
let run ?(seed = 42) () =
  let tasks =
    List.concat_map
      (fun (app, policy) ->
        [
          (fun () -> run_one ~seed ~app ~policy ~superpages:false);
          (fun () -> run_one ~seed ~app ~policy ~superpages:true);
        ])
      cells
  in
  let results = Engine.Pool.run_all (Array.of_list tasks) in
  List.mapi (fun i _ -> (results.(2 * i), results.((2 * i) + 1))) cells

let print ?seed () =
  let results = run ?seed () in
  Report.Table.print
    ~header:
      [
        "application"; "policy"; "sp off"; "sp on"; "speedup"; "sp share"; "splinters";
        "promotes"; "by copy";
      ]
    (List.map2
       (fun (app, policy) ((off : Engine.Result.t), (on : Engine.Result.t)) ->
         let voff = Engine.Result.single off and von = Engine.Result.single on in
         [
           app;
           Policies.Spec.name policy;
           Report.Table.fmt_secs voff.Engine.Result.completion;
           Report.Table.fmt_secs von.Engine.Result.completion;
           Report.Table.fmt_ratio
             (voff.Engine.Result.completion /. von.Engine.Result.completion);
           Report.Table.fmt_pct von.Engine.Result.superpage_fraction;
           string_of_int von.Engine.Result.splinters;
           string_of_int von.Engine.Result.promotes;
           string_of_int von.Engine.Result.superpage_migrates;
         ])
       cells results)
