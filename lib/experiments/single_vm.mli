(** Single-VM experiments: Figures 1, 2, 6, 7, 10 and Tables 1, 2, 4.

    Each function returns the data series of the corresponding paper
    figure/table; [print_*] renders it as the paper's rows.  Overheads
    follow the paper's convention: [T / T_baseline - 1] (lower is
    better); improvements are [T_baseline / T - 1] (higher is
    better). *)

type overhead_row = { app : string; overhead : float }

val fig1 : ?seed:int -> unit -> overhead_row list
(** Overhead of stock Xen (round-1G, pv I/O, virtualized IPIs) versus
    Linux (first-touch). *)

val print_fig1 : ?seed:int -> unit -> unit

type policy_row = {
  app : string;
  ft_carrefour : float;
  r4k : float;
  r4k_carrefour : float;
  best : Policies.Spec.t;  (** Argmin over the four combinations. *)
}
(** Improvements relative to the first-touch run (1.0 = no change,
    2.0 = twice as fast). *)

val fig2 : ?seed:int -> unit -> policy_row list
(** Linux NUMA policies versus Linux first-touch. *)

val print_fig2 : ?seed:int -> unit -> unit

type tab1_row = {
  app : string;
  imb_ft : float;
  imb_r4k : float;
  ic_ft : float;
  ic_r4k : float;
  class_ : Workloads.App.imbalance_class;  (** From measured imb_ft. *)
  lat_ft : Engine.Result.latency_summary;
      (** Tail latency of the first-touch run (cycles, per-vCPU epoch
          samples). *)
}

val tab1 : ?seed:int -> unit -> tab1_row list
(** Measured imbalance and interconnect load under the two static
    policies in Linux, with the paper's values alongside. *)

val print_tab1 : ?seed:int -> unit -> unit

val print_tab2 : unit -> unit
(** Application behaviour table (I/O, context switches, footprint). *)

type fig6_row = { app : string; linux : float; xen : float; xen_plus : float }
(** Overheads versus LinuxNUMA. *)

val fig6 : ?seed:int -> unit -> fig6_row list
val print_fig6 : ?seed:int -> unit -> unit

type fig7_row = {
  app : string;
  ft : float;
  ft_carrefour : float;
  r4k : float;
  r4k_carrefour : float;
  best : Policies.Spec.t;
}
(** Improvements of each Xen policy versus the Xen+ round-1G default. *)

val fig7 : ?seed:int -> unit -> fig7_row list
val print_fig7 : ?seed:int -> unit -> unit

type tab4_row = {
  app : string;
  best_linux : Policies.Spec.t;
  best_xen : Policies.Spec.t;
  paper_linux : Policies.Spec.t;
  paper_xen : Policies.Spec.t;
}

val tab4 : ?seed:int -> unit -> tab4_row list
(** Best measured policies versus the paper's Table 4. *)

val print_tab4 : ?seed:int -> unit -> unit

type fig10_row = { app : string; xen_plus : float; xen_plus_numa : float }

val fig10 : ?seed:int -> unit -> fig10_row list
(** Overhead of Xen+ and Xen+NUMA versus LinuxNUMA. *)

val print_fig10 : ?seed:int -> unit -> unit
