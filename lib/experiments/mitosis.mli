(** The Mitosis grid: radix page-walk pricing ([--pt-walk]) and
    per-node page-table replication ([--replicate-pt]) on/off across
    round-1G and first-touch/carrefour for two TLB-sensitive
    applications.  Walk-off columns replay the pre-walk-model engine
    bit for bit; walk-on without replication pays remote walk levels
    wherever vCPUs run far from the tables; replication collapses the
    walk term back to local pricing and charges per-mirror write
    propagation instead. *)

val apps : string list
val policies : Policies.Spec.t list

val cells : (string * Policies.Spec.t) list
(** [apps] x [policies], apps-major. *)

val variants : (bool * bool) list
(** (pt_walk, replicate_pt) in report order: (off,off), (off,on),
    (on,off), (on,on). *)

val run : ?seed:int -> unit -> Engine.Result.t list list
(** Per cell (in [cells] order), the four variant results in
    [variants] order.  All four share one derived seed, so their
    workload streams are identical and the deltas are the walk pricing
    and replication cost; parallelised over the engine pool
    (bit-identical whatever the job count). *)

val print : ?seed:int -> unit -> unit
