(* The Mitosis grid: the radix page-walk cost model and per-node
   page-table replication, on and off, across a placement that keeps
   walks local (round-1G: the PT node is also where most accesses
   land) and one that does not (first-touch + Carrefour: threads all
   over the machine touch pages whose tables sit on the first home
   node, and every Carrefour migration patches the mirrors).

   The expected shape, which test_experiments pins the core of:

   - walk-off columns are byte-identical to the pre-walk-model engine
     (the differential suite in test_engine pins this bit for bit);
   - walk-on without replication inflates the walk term wherever vCPUs
     run far from the page tables' home node — worst on the
     first-touch cells, whose threads span all eight nodes;
   - walk-on with replication collapses the walk term back to local
     pricing, at the cost of per-mirror write propagation on every P2M
     update (visible in the replica counters and propagation time);
   - replication without the walk model is the honesty column: all of
     the cost, none of the modelled benefit. *)

let apps = [ "kmeans"; "cg.C" ]
let policies = [ Policies.Spec.round_1g; Policies.Spec.first_touch_carrefour ]

(* Same scheme as Hugepage.cell_seed: the cell's stream is a pure
   function of (app, policy, base seed).  The pt-walk/replicate-pt
   toggles deliberately do NOT enter the hash — all four variants of a
   cell replay the same workload stream, so the deltas are the walk
   pricing and the replication cost and nothing else.  (The runner
   keeps their trace streams distinct via the "/ptw" and "/rep" label
   suffixes.) *)
let cell_seed ~base key =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) key;
  (base * 0x9E3779B1 lxor !h) land 0x3FFFFFFF

let cells = List.concat_map (fun app -> List.map (fun p -> (app, p)) policies) apps

(* (pt_walk, replicate_pt) in fixed report order: baseline, honesty
   column (cost only), walk pricing, walk pricing + replication. *)
let variants = [ (false, false); (false, true); (true, false); (true, true) ]

let run_one ~seed ~app ~policy ~pt_walk ~replicate_pt =
  let app_t =
    match Workloads.Catalogue.find app with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~pt_walk ~replicate_pt ~policy app_t in
  let key = app ^ "/" ^ Policies.Spec.name policy in
  let cfg =
    Engine.Config.make ~seed:(cell_seed ~base:seed key) ~mode:Engine.Config.Xen_plus [ vm ]
  in
  Engine.Runner.run cfg

(* Results in [variants] order for each cell, in [cells] order. *)
let run ?(seed = 42) () =
  let tasks =
    List.concat_map
      (fun (app, policy) ->
        List.map
          (fun (pt_walk, replicate_pt) ->
            fun () -> run_one ~seed ~app ~policy ~pt_walk ~replicate_pt)
          variants)
      cells
  in
  let results = Engine.Pool.run_all (Array.of_list tasks) in
  let width = List.length variants in
  List.mapi (fun i _ -> Array.to_list (Array.sub results (i * width) width)) cells

let print ?seed () =
  let results = run ?seed () in
  Report.Table.print
    ~header:
      [
        "application"; "policy"; "base"; "rep only"; "walk"; "walk+rep"; "walk spdup";
        "cy/i walk"; "cy/i rep"; "mirror writes"; "shootdowns"; "prop s";
      ]
    (List.map2
       (fun (app, policy) row ->
         match List.map Engine.Result.single row with
         | [ base; rep; walk; walk_rep ] ->
             [
               app;
               Policies.Spec.name policy;
               Report.Table.fmt_secs base.Engine.Result.completion;
               Report.Table.fmt_secs rep.Engine.Result.completion;
               Report.Table.fmt_secs walk.Engine.Result.completion;
               Report.Table.fmt_secs walk_rep.Engine.Result.completion;
               Report.Table.fmt_ratio
                 (walk.Engine.Result.completion /. walk_rep.Engine.Result.completion);
               Printf.sprintf "%.4f" walk.Engine.Result.walk_cycles_per_instr;
               Printf.sprintf "%.4f" walk_rep.Engine.Result.walk_cycles_per_instr;
               string_of_int walk_rep.Engine.Result.pt_replica_updates;
               string_of_int walk_rep.Engine.Result.pt_replica_invalidations;
               Printf.sprintf "%.3f" walk_rep.Engine.Result.pt_replica_time;
             ]
         | _ -> assert false)
       cells results)
