(** Chaos runs: the fault-injection / graceful-degradation section of
    the bench harness.  Runs a churn-heavy application under a grid of
    composed fault plans and prints one degradation-summary row per
    plan. *)

val plans : (string * string) list
(** (label, plan string) pairs of the grid. *)

val run : ?seed:int -> unit -> Engine.Result.t list
(** Results in [plans] order; parallelised over the engine pool with
    per-plan derived seeds (bit-identical whatever the job count). *)

val print : ?seed:int -> unit -> unit
