type key = {
  mode : Engine.Config.mode;
  app : string;
  policy : Policies.Spec.t;
  mcs : bool;
}

let cache : (key * int, Engine.Result.t) Hashtbl.t = Hashtbl.create 256
let cache_mutex = Mutex.create ()

(* FNV-1a over the cell's stable textual identity, folded into the
   base seed.  Every grid cell owns an RNG stream that is a pure
   function of (mode, workload, policy, mcs, base seed): cells never
   share RNG state, so a parallel sweep is bit-identical to the
   sequential one whatever the schedule. *)
let task_seed ~base key =
  let tag =
    Printf.sprintf "%s|%s|%s|%b" (Engine.Config.mode_name key.mode) key.app
      (Policies.Spec.name key.policy) key.mcs
  in
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) tag;
  (base * 0x9E3779B1 lxor !h) land 0x3FFFFFFF

let run ?(seed = 42) key =
  let cached = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache (key, seed)) in
  match cached with
  | Some result -> result
  | None ->
      let app =
        match Workloads.Catalogue.find key.app with
        | Some app -> app
        | None -> invalid_arg (Printf.sprintf "Runs.run: unknown app %S" key.app)
      in
      let vm = Engine.Config.vm ~use_mcs:key.mcs ~policy:key.policy app in
      let cfg = Engine.Config.make ~seed:(task_seed ~base:seed key) ~mode:key.mode [ vm ] in
      let result = Engine.Runner.run cfg in
      (* Two workers may simulate the same cell concurrently; both
         produce identical results, so first-write-wins keeps the
         [==]-sharing property callers rely on. *)
      Mutex.protect cache_mutex (fun () ->
          match Hashtbl.find_opt cache (key, seed) with
          | Some first -> first
          | None ->
              Hashtbl.replace cache (key, seed) result;
              result)

let completion ?seed key = (Engine.Result.single (run ?seed key)).Engine.Result.completion

let linux ?(mcs = false) app policy =
  { mode = Engine.Config.Linux; app = app.Workloads.App.name; policy; mcs }

let xen app policy = { mode = Engine.Config.Xen; app = app.Workloads.App.name; policy; mcs = false }

let xen_plus ?(mcs = false) app policy =
  { mode = Engine.Config.Xen_plus; app = app.Workloads.App.name; policy; mcs }

let mcs_apps = [ "facesim"; "streamcluster" ]

let uses_mcs app = List.mem app.Workloads.App.name mcs_apps

let linux_numa app =
  linux ~mcs:(uses_mcs app) app app.Workloads.App.paper.Workloads.App.best_linux

let xen_plus_numa app =
  xen_plus ~mcs:(uses_mcs app) app app.Workloads.App.paper.Workloads.App.best_xen

let xen_stock app = xen app Policies.Spec.round_1g

let xen_plus_default app = xen_plus ~mcs:(uses_mcs app) app Policies.Spec.round_1g

let clear_cache () = Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)
