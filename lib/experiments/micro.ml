let us x = x *. 1e-6

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let print_tab3 () =
  let lat = Numa.Amd48.latency in
  print_endline "Table 3: cache and memory access latency on AMD48 (cycles)";
  Report.Table.print
    ~header:[ "cache"; "cycles" ]
    [
      [ "L1 cache"; Printf.sprintf "%.0f" (Numa.Latency.cache_cycles lat Numa.Latency.L1) ];
      [ "L2 cache"; Printf.sprintf "%.0f" (Numa.Latency.cache_cycles lat Numa.Latency.L2) ];
      [ "L3 cache"; Printf.sprintf "%.0f" (Numa.Latency.cache_cycles lat Numa.Latency.L3) ];
    ];
  (* Two independent reproductions: the engine's calibrated analytic
     model and the request-level discrete-event simulator. *)
  let topo = Numa.Amd48.topology () in
  let cycles ns = ns *. Numa.Amd48.freq_hz /. 1e9 in
  Report.Table.print
    ~header:
      [ "memory"; "1 thread (model)"; "1 thread (microsim)"; "48 threads (model)";
        "48 threads (microsim)" ]
    (* Six independent discrete-event simulations (3 distances x 2
       load levels): each probe seeds its own RNG, so the pool runs
       them concurrently with identical output. *)
    (Engine.Pool.map_list
       (fun (label, hops) ->
         let idle = Microsim.Memsim.latency_probe ~topo ~threads:1 ~hops () in
         let contended = Microsim.Memsim.latency_probe ~topo ~threads:48 ~hops () in
         [
           label;
           Printf.sprintf "%.0f cy" (Numa.Latency.mem_cycles lat ~hops ~saturation:0.0);
           Printf.sprintf "%.0f cy" (cycles idle.Microsim.Memsim.mean_latency_ns);
           Printf.sprintf "%.0f cy" (Numa.Latency.mem_cycles lat ~hops ~saturation:1.0);
           Printf.sprintf "%.0f cy" (cycles contended.Microsim.Memsim.mean_latency_ns);
         ])
       [ ("Local", 0); ("Remote (1 hop)", 1); ("Remote (2 hops)", 2) ]);
  Printf.printf
    "random-access controller efficiency (microsim, drives the engine's bandwidth clamp): %.2f\n"
    (Microsim.Memsim.random_access_efficiency ~topo ())

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)
(* ------------------------------------------------------------------ *)

let print_fig5 () =
  print_endline "Figure 5: IPI cost repartition (ns)";
  Report.Table.print
    ~header:[ "stage"; "native"; "guest" ]
    (List.map
       (fun (s : Xen.Ipi.stage) ->
         [
           s.Xen.Ipi.label;
           Printf.sprintf "%.0f" (s.Xen.Ipi.native *. 1e9);
           Printf.sprintf "%.0f" (s.Xen.Ipi.guest *. 1e9);
         ])
       Xen.Ipi.stages
    @ [
        [
          "total";
          Printf.sprintf "%.0f" (Xen.Ipi.total Xen.Ipi.Native *. 1e9);
          Printf.sprintf "%.0f" (Xen.Ipi.total Xen.Ipi.Guest *. 1e9);
        ];
      ])

(* ------------------------------------------------------------------ *)
(* DMA sweep and the first-touch x IOMMU incompatibility               *)
(* ------------------------------------------------------------------ *)

type dma_row = { block : int; native : float; pv : float; passthrough : float }

let make_io_domain () =
  let system = Xen.System.create ~page_scale:1 (Numa.Amd48.topology ()) in
  let domain =
    Xen.System.create_domain system ~name:"io-probe" ~kind:Xen.Domain.DomU ~vcpus:1
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  let rng = Sim.Rng.create ~seed:7 in
  let manager = Policies.Manager.attach system domain ~boot:Policies.Spec.round_4k ~rng in
  let pci = Xen.Pci.amd48 () in
  (match Xen.Pci.assign_bus pci ~bus_id:1 domain with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  (system, domain, manager, pci)

let dma_sweep () =
  let system, domain, _manager, pci = make_io_domain () in
  let read ~path ~bytes =
    let pages = max 1 (bytes / Memory.Page.size_4k) in
    let buffer = List.init pages (fun i -> i) in
    match Xen.Dma.read system domain ~pci ~path ~buffer ~bytes with
    | Ok time -> time
    | Error e -> Format.kasprintf failwith "unexpected DMA error: %a" Xen.Dma.pp_error e
  in
  List.map
    (fun block ->
      {
        block;
        native = read ~path:Xen.Dma.Native ~bytes:block;
        pv = read ~path:Xen.Dma.Pv ~bytes:block;
        passthrough = read ~path:Xen.Dma.Passthrough ~bytes:block;
      })
    [ 4096; 16384; 65536; 262144; 1048576 ]

let print_dma () =
  print_endline "DMA read latency per path (Sections 2.2.2 and 5.3.1)";
  Report.Table.print
    ~header:[ "block"; "native"; "pv"; "passthrough"; "pv ovh"; "pt ovh" ]
    (List.map
       (fun r ->
         [
           Format.asprintf "%a" Sim.Units.pp_bytes r.block;
           Format.asprintf "%a" Sim.Units.pp_seconds r.native;
           Format.asprintf "%a" Sim.Units.pp_seconds r.pv;
           Format.asprintf "%a" Sim.Units.pp_seconds r.passthrough;
           Report.Table.fmt_ratio (r.pv /. r.native);
           Report.Table.fmt_ratio (r.passthrough /. r.native);
         ])
       (dma_sweep ()));
  (* Incompatibility demo (Section 4.4.1): invalid P2M entries abort a
     passthrough DMA asynchronously but recover synchronously on pv. *)
  let system, domain, manager, pci = make_io_domain () in
  (match Policies.Manager.set_policy manager Policies.Spec.first_touch with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let buffer = [ 0; 1; 2; 3 ] in
  ignore (Policies.Manager.release_free_pages manager buffer);
  print_endline "first-touch x IOMMU incompatibility (Section 4.4.1):";
  (match Xen.Dma.read system domain ~pci ~path:Xen.Dma.Passthrough ~buffer ~bytes:16384 with
  | Ok _ -> print_endline "  passthrough read: unexpectedly succeeded (BUG)"
  | Error e -> Format.printf "  passthrough read: FAILED as expected - %a@." Xen.Dma.pp_error e);
  (match Xen.Dma.read system domain ~pci ~path:Xen.Dma.Pv ~buffer ~bytes:16384 with
  | Ok time ->
      Format.printf "  pv read: recovered via synchronous hypervisor faults (%a)@."
        Sim.Units.pp_seconds time
  | Error e -> Format.printf "  pv read: unexpectedly failed - %a (BUG)@." Xen.Dma.pp_error e)

(* ------------------------------------------------------------------ *)
(* Hypercall batching (Sections 4.2.3 and 4.2.4)                       *)
(* ------------------------------------------------------------------ *)

type batching_report = {
  per_release_unbatched : float;
  per_release_batched : float;
  lock_hold_per_op : float;
      (* Guest-side queue time per op — what the partition lock covers. *)
  invalidate_share : float;
  wrmem_slowdown_unbatched : float;
  wrmem_slowdown_batched : float;
  reallocated_in_queue : int;
  invalidated : int;
}

let batching ?(ops = 100_000) () =
  let system = Xen.System.create ~page_scale:1 (Numa.Amd48.topology ()) in
  let domain =
    Xen.System.create_domain system ~name:"churn" ~kind:Xen.Domain.DomU ~vcpus:1
      ~mem_bytes:(64 * 1024 * 1024) ()
  in
  let rng = Sim.Rng.create ~seed:11 in
  let manager = Policies.Manager.attach system domain ~boot:Policies.Spec.round_4k ~rng in
  (match Policies.Manager.set_policy manager Policies.Spec.first_touch with
  | Ok () -> ()
  | Error msg -> failwith msg);
  ignore
    (Policies.Manager.release_free_pages manager
       (List.init domain.Xen.Domain.mem_frames (fun i -> i)));
  Xen.Domain.reset_account domain;
  let base_stats = Policies.Manager.stats manager in
  let base_invalidated = base_stats.Policies.Manager.invalidated in
  let base_left = base_stats.Policies.Manager.left_in_place in
  let queue =
    Guest.Pv_queue.create ~partitions:4 ~capacity:128
      ~flush:(Policies.Manager.page_ops_hypercall manager)
      ()
  in
  let pool =
    Guest.Pfn_pool.create ~frames:domain.Xen.Domain.mem_frames
      ~on_alloc:(fun pfn -> Guest.Pv_queue.record queue (Guest.Pv_queue.Alloc pfn))
      ~on_release:(fun pfn -> Guest.Pv_queue.record queue (Guest.Pv_queue.Release pfn))
      ()
  in
  let costs = system.Xen.System.costs in
  let touch pfn =
    match Xen.P2m.get domain.Xen.Domain.p2m pfn with
    | Xen.P2m.Invalid ->
        ignore
          (Xen.Domain.handle_fault domain ~costs ~pfn ~cpu:domain.Xen.Domain.vcpu_pin.(0))
    | Xen.P2m.Mapped _ -> ()
  in
  (* Streamflow-like churn over a 512-page working set: a batch of
     munmaps followed by a batch of mmaps that recycle the frames.
     The window exceeds the queue capacity, so most flushes carry pure
     release batches — reallocation while queued stays rare, as the
     paper assumes. *)
  let window = 512 in
  let ring = Array.init window (fun _ ->
      match Guest.Pfn_pool.alloc pool with
      | Some pfn -> touch pfn; pfn
      | None -> failwith "pool exhausted")
  in
  let releases = ref 0 in
  let rounds = ops / (2 * window) in
  for _ = 1 to rounds do
    for j = 0 to window - 1 do
      Guest.Pfn_pool.release pool ring.(j);
      incr releases
    done;
    for j = 0 to window - 1 do
      match Guest.Pfn_pool.alloc pool with
      | Some pfn -> touch pfn; ring.(j) <- pfn
      | None -> failwith "pool exhausted"
    done
  done;
  Guest.Pv_queue.flush_all queue;
  let qstats = Guest.Pv_queue.stats queue in
  let mstats = Policies.Manager.stats manager in
  let invalidated = mstats.Policies.Manager.invalidated - base_invalidated in
  let reallocated = mstats.Policies.Manager.left_in_place - base_left in
  let refault_time = domain.Xen.Domain.account.Xen.Domain.fault_time in
  let releases = float_of_int !releases in
  let per_release_batched =
    (qstats.Guest.Pv_queue.guest_time +. refault_time) /. releases
  in
  let invalidate_share =
    float_of_int invalidated *. costs.Xen.Costs.page_invalidate
    /. qstats.Guest.Pv_queue.guest_time
  in
  (* One hypercall per release: world switch, invalidation, and the
     remote TLB shootdown IPIs that batching amortises. *)
  let per_release_unbatched =
    costs.Xen.Costs.hypercall_entry +. costs.Xen.Costs.page_invalidate
    +. (2.0 *. costs.Xen.Costs.ipi_guest)
    +. costs.Xen.Costs.hypervisor_fault +. costs.Xen.Costs.page_map
  in
  let wrmem_rate = 1.0 /. us 15.0 in
  {
    per_release_unbatched;
    per_release_batched;
    lock_hold_per_op =
      qstats.Guest.Pv_queue.guest_time /. float_of_int qstats.Guest.Pv_queue.enqueued;
    invalidate_share;
    wrmem_slowdown_unbatched = 1.0 +. (wrmem_rate *. per_release_unbatched);
    wrmem_slowdown_batched = 1.0 +. (wrmem_rate *. per_release_batched);
    reallocated_in_queue = reallocated;
    invalidated;
  }

let print_batching () =
  let r = batching () in
  print_endline "Hypercall batching (Sections 4.2.3-4.2.4)";
  Report.Table.print
    ~header:[ "strategy"; "cost/release"; "wrmem slowdown" ]
    [
      [
        "hypercall per release";
        Format.asprintf "%a" Sim.Units.pp_seconds r.per_release_unbatched;
        Report.Table.fmt_ratio r.wrmem_slowdown_unbatched;
      ];
      [
        "batched queue (128)";
        Format.asprintf "%a" Sim.Units.pp_seconds r.per_release_batched;
        Report.Table.fmt_ratio r.wrmem_slowdown_batched;
      ];
    ];
  Printf.printf "invalidation share of the batched hypercall: %.1f%% (paper: 87.5%%)\n"
    (100.0 *. r.invalidate_share);
  Printf.printf "pages invalidated: %d; reallocated while queued (left in place): %d\n\n"
    r.invalidated r.reallocated_in_queue;
  (* Queue partitioning: M/M/1 estimate of the lock contention with 48
     cores releasing at wrmem's per-core rate. *)
  (* wrmem's release period is per core: 48 cores at one release per
     15 us each.  The lock is held for the queue work only; the
     re-touch fault happens outside the critical section. *)
  let lambda = 48.0 /. us 15.0 in
  let hold = 2.0 *. r.lock_hold_per_op in
  print_endline "queue partitioning (48 cores at wrmem's release rate, M/M/1 lock estimate)";
  Report.Table.print
    ~header:[ "partitions"; "lock utilisation"; "wait/op"; "effective cost/op" ]
    (List.map
       (fun p ->
         let rho = lambda *. hold /. float_of_int p in
         if rho >= 1.0 then
           [ string_of_int p; Report.Table.fmt_pct rho; "saturated"; "unbounded" ]
         else begin
           let wait = rho /. (1.0 -. rho) *. hold /. 2.0 in
           [
             string_of_int p;
             Report.Table.fmt_pct rho;
             Format.asprintf "%a" Sim.Units.pp_seconds wait;
             Format.asprintf "%a" Sim.Units.pp_seconds (hold +. wait);
           ]
         end)
       [ 1; 2; 4; 16 ])
