(* Chaos runs: one churn-heavy application under composed fault plans,
   reporting the graceful-degradation counters the engine surfaces.
   wrmem is the natural victim — its 15 us page-release period drives
   the pv queue hard, so batch loss and op drops actually bite — and
   first-touch/carrefour exercises every degradation path: resilient
   migrations, the circuit breaker, fallback placement, and the
   reconciliation sweep. *)

let plans =
  [
    ("none", "none");
    ("alloc 15%", "alloc=0.15");
    ("alloc + migrate 50%", "alloc=0.15,migrate=0.5");
    ("alloc + migrate 100%", "alloc=0.15,migrate=1.0");
    ("node 1 off @100", "node-off=1@100-");
    ("batch loss 50%", "batch-loss=0.5,op-drop=0.05");
    ("stalls + hypercalls", "stall=0.02,hypercall=0.2");
  ]

(* Aggressive Carrefour thresholds so the fault plans actually reach the
   migration path: stock thresholds rarely fire for wrmem's near-uniform
   traffic, and a plan that never migrates cannot demonstrate the
   breaker.  The alloc faults in the composed plans misplace pages,
   the eager locality heuristic tries to pull them home, and the
   migrate faults then hit that repair traffic. *)
let eager_carrefour =
  {
    Policies.Carrefour.User_component.default_config with
    Policies.Carrefour.User_component.mc_threshold = 0.30;
    ic_threshold = 0.05;
    dominant_fraction = 0.60;
    min_accesses = 2.0;
  }

let max_epochs = 5_000

(* Same scheme as Runs.task_seed: the cell's stream is a pure function
   of (plan, base seed), so a parallel sweep is bit-identical to the
   sequential one whatever the schedule. *)
let plan_seed ~base plan =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) plan;
  (base * 0x9E3779B1 lxor !h) land 0x3FFFFFFF

let run_one ~seed plan =
  let app =
    match Workloads.Catalogue.find "wrmem" with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~threads:16 ~policy:Policies.Spec.first_touch_carrefour app in
  let faults = Faults.Plan.of_string_exn plan in
  let cfg =
    Engine.Config.make ~seed:(plan_seed ~base:seed plan) ~max_epochs ~faults
      ~carrefour_config:eager_carrefour ~mode:Engine.Config.Xen_plus [ vm ]
  in
  Engine.Runner.run cfg

let run ?(seed = 42) () =
  Array.to_list
    (Engine.Pool.run_all
       (Array.of_list (List.map (fun (_, plan) () -> run_one ~seed plan) plans)))

let print ?seed () =
  let results = run ?seed () in
  Report.Table.print
    ~header:(Report.Table.degradation_header ~first:"fault plan")
    (List.map2
       (fun (label, _) (result : Engine.Result.t) ->
         let vm = Engine.Result.single result in
         let d = vm.Engine.Result.degradation in
         Report.Table.degradation_row ~first:label
           ~injected:result.Engine.Result.faults_injected
           ~retries:d.Engine.Result.migrate_retries ~deferred:d.Engine.Result.deferred
           ~drained:d.Engine.Result.drained ~fallback:d.Engine.Result.fallback_maps
           ~trips:d.Engine.Result.breaker_trips ~level:d.Engine.Result.breaker_level
           ~lost:d.Engine.Result.lost_batches ~reconciled:d.Engine.Result.reconciled
           ~p99:vm.Engine.Result.latency.Engine.Result.p99
           ~completion:vm.Engine.Result.completion)
       plans results);
  print_newline ();
  (* Robustness headline: even under 100 % migration-failure injection
     every run completed (the breaker degraded the policy instead of
     letting the engine spin). *)
  List.iter2
    (fun (label, _) (result : Engine.Result.t) ->
      if result.Engine.Result.epochs >= max_epochs then
        Printf.printf "WARNING: plan %S hit the epoch cap without completing\n" label)
    plans results
