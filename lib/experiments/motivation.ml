type row = {
  label : string;
  completion : float;
  local_fraction : float;
  page_migrations : int;
}

let app name =
  match Workloads.Catalogue.find name with
  | Some app -> app
  | None -> invalid_arg ("Motivation: unknown app " ^ name)

(* cg.C is the thread-local victim (first-touch is ideal for it while
   nothing moves); ep.D is the noisy neighbour whose heavily contended
   threads retire at different times, freeing pCPUs one by one. *)
let run_config ?(seed = 42) ~pinned ~policy label =
  let victim = Engine.Config.vm ~threads:48 ~pinned ~policy (app "cg.C") in
  let neighbour = Engine.Config.vm ~threads:24 ~policy:Policies.Spec.round_4k (app "ep.D") in
  let cfg = Engine.Config.make ~seed ~mode:Engine.Config.Xen_plus [ victim; neighbour ] in
  let result = Engine.Runner.run cfg in
  let vm =
    match List.find_opt (fun vm -> vm.Engine.Result.app_name = "cg.C") result.Engine.Result.vms with
    | Some vm -> vm
    | None -> assert false
  in
  {
    label;
    completion = vm.Engine.Result.completion;
    local_fraction = vm.Engine.Result.local_fraction;
    page_migrations = vm.Engine.Result.migrations;
  }

let run ?seed () =
  Engine.Pool.run_all
    [|
      (fun () ->
        run_config ?seed ~pinned:true ~policy:Policies.Spec.first_touch
          "first-touch, vCPUs pinned");
      (fun () ->
        run_config ?seed ~pinned:false ~policy:Policies.Spec.first_touch
          "first-touch, vCPUs migrate");
      (fun () ->
        run_config ?seed ~pinned:false ~policy:Policies.Spec.first_touch_carrefour
          "ft/carrefour, vCPUs migrate");
    |]
  |> Array.to_list

let print ?seed () =
  print_endline
    "Why policies belong in the hypervisor (Section 1): cg.C next to a retiring neighbour";
  Report.Table.print
    ~header:[ "victim configuration"; "completion"; "local accesses"; "pages chased" ]
    (List.map
       (fun r ->
         [
           r.label;
           Report.Table.fmt_secs r.completion;
           Report.Table.fmt_pct r.local_fraction;
           string_of_int r.page_migrations;
         ])
       (run ?seed ()));
  print_newline ()
