let apps = Workloads.Catalogue.all

(* Every figure/table maps independent (app, policy, mode) cells; the
   pool fans the app dimension out over domains.  Results come back in
   app order, so the printed tables are schedule-independent. *)
let grid = Engine.Pool.map_list

let overhead t baseline = (t /. baseline) -. 1.0
let improvement baseline t = baseline /. t

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

type overhead_row = { app : string; overhead : float }

let fig1 ?seed () =
  grid
    (fun app ->
      let linux = Runs.completion ?seed (Runs.linux app Policies.Spec.first_touch) in
      let xen = Runs.completion ?seed (Runs.xen_stock app) in
      { app = app.Workloads.App.name; overhead = overhead xen linux })
    apps

let print_fig1 ?seed () =
  let rows = fig1 ?seed () in
  Report.Chart.print
    ~title:"Figure 1: relative overhead of Xen compared to Linux (lower is better)"
    (List.map (fun r -> (r.app, r.overhead)) rows)

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

type policy_row = {
  app : string;
  ft_carrefour : float;
  r4k : float;
  r4k_carrefour : float;
  best : Policies.Spec.t;
}

let linux_policy_times ?seed ?(mcs = false) app =
  List.map
    (fun policy -> (policy, Runs.completion ?seed (Runs.linux ~mcs app policy)))
    Policies.Spec.
      [ first_touch; first_touch_carrefour; round_4k; round_4k_carrefour ]

(* The paper's LinuxNUMA / Xen+NUMA baselines are "the best policy we
   measured for this application" (Table 4); we use our own measured
   argmin the same way, with MCS applied to facesim/streamcluster. *)
let best_time times = List.fold_left (fun acc (_, t) -> Float.min acc t) Float.infinity times

let linux_numa_time ?seed app = best_time (linux_policy_times ?seed ~mcs:(Runs.uses_mcs app) app)

let best_of times = fst (List.fold_left (fun (bp, bt) (p, t) -> if t < bt then (p, t) else (bp, bt))
                           (Policies.Spec.first_touch, Float.infinity) times)

let fig2 ?seed () =
  grid
    (fun app ->
      let times = linux_policy_times ?seed app in
      let time p = List.assoc p times in
      let ft = time Policies.Spec.first_touch in
      {
        app = app.Workloads.App.name;
        ft_carrefour = improvement ft (time Policies.Spec.first_touch_carrefour);
        r4k = improvement ft (time Policies.Spec.round_4k);
        r4k_carrefour = improvement ft (time Policies.Spec.round_4k_carrefour);
        best = best_of times;
      })
    apps

let print_fig2 ?seed () =
  let rows = fig2 ?seed () in
  print_string
    (Report.Chart.render_groups
       ~title:
         "Figure 2: improvement of Linux NUMA policies relative to first-touch (higher is better)"
       ~series:[ "ft/carrefour"; "round-4k"; "r4k/carrefour" ]
       (List.map (fun r -> (r.app, [ r.ft_carrefour; r.r4k; r.r4k_carrefour ])) rows))

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type tab1_row = {
  app : string;
  imb_ft : float;
  imb_r4k : float;
  ic_ft : float;
  ic_r4k : float;
  class_ : Workloads.App.imbalance_class;
  lat_ft : Engine.Result.latency_summary;
      (* tail latency of the first-touch run (the table's reference
         policy): p50/p95/p99/p99.9 over per-vCPU epoch samples *)
}

let classify imb =
  if imb > 1.30 then Workloads.App.High
  else if imb >= 0.85 then Workloads.App.Moderate
  else Workloads.App.Low

let tab1 ?seed () =
  grid
    (fun app ->
      let ft = Runs.run ?seed (Runs.linux app Policies.Spec.first_touch) in
      let r4k = Runs.run ?seed (Runs.linux app Policies.Spec.round_4k) in
      let imb_ft = ft.Engine.Result.imbalance in
      {
        app = app.Workloads.App.name;
        imb_ft;
        imb_r4k = r4k.Engine.Result.imbalance;
        ic_ft = ft.Engine.Result.interconnect_load;
        ic_r4k = r4k.Engine.Result.interconnect_load;
        class_ = classify imb_ft;
        lat_ft = (Engine.Result.single ft).Engine.Result.latency;
      })
    apps

let print_tab1 ?seed () =
  let rows = tab1 ?seed () in
  print_endline
    "Table 1: load imbalance and interconnect load of the static policies in Linux";
  print_endline "(measured | paper)";
  Report.Table.print
    ~header:[ "app"; "imb FT"; "imb R4K"; "IC FT"; "IC R4K"; "level" ]
    (List.map2
       (fun r app ->
         let p = app.Workloads.App.paper in
         [
           r.app;
           Printf.sprintf "%s|%s" (Report.Table.fmt_pct r.imb_ft)
             (Report.Table.fmt_pct p.Workloads.App.imbalance_ft);
           Printf.sprintf "%s|%s" (Report.Table.fmt_pct r.imb_r4k)
             (Report.Table.fmt_pct p.Workloads.App.imbalance_r4k);
           Printf.sprintf "%s|%s" (Report.Table.fmt_pct r.ic_ft)
             (Report.Table.fmt_pct p.Workloads.App.interconnect_ft);
           Printf.sprintf "%s|%s" (Report.Table.fmt_pct r.ic_r4k)
             (Report.Table.fmt_pct p.Workloads.App.interconnect_r4k);
           Printf.sprintf "%s|%s"
             (Workloads.App.class_name r.class_)
             (Workloads.App.class_name p.Workloads.App.class_);
         ])
       rows apps);
  print_newline ();
  print_endline "Tail latency of the first-touch runs (cycles, per-vCPU epoch samples)";
  Report.Table.print
    ~header:(Report.Table.latency_header ~first:"app")
    (List.map
       (fun r ->
         let l = r.lat_ft in
         Report.Table.latency_row ~first:r.app ~samples:l.Engine.Result.samples
           ~mean:l.Engine.Result.lat_mean ~p50:l.Engine.Result.p50 ~p95:l.Engine.Result.p95
           ~p99:l.Engine.Result.p99 ~p999:l.Engine.Result.p999 ~max:l.Engine.Result.lat_max)
       rows)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let print_tab2 () =
  print_endline "Table 2: behaviour of the applications";
  Report.Table.print
    ~header:[ "app"; "suite"; "hard drive MB/s"; "ctx switches k/s"; "memory MB" ]
    (List.map
       (fun app ->
         [
           app.Workloads.App.name;
           Workloads.App.suite_name app.Workloads.App.suite;
           Printf.sprintf "%.0f" app.Workloads.App.disk_mb_s;
           Printf.sprintf "%.1f" app.Workloads.App.ctx_switch_k_s;
           string_of_int app.Workloads.App.footprint_mb;
         ])
       apps)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

type fig6_row = { app : string; linux : float; xen : float; xen_plus : float }

let fig6 ?seed () =
  grid
    (fun app ->
      let base = linux_numa_time ?seed app in
      let linux = Runs.completion ?seed (Runs.linux app Policies.Spec.first_touch) in
      let xen = Runs.completion ?seed (Runs.xen_stock app) in
      let xen_plus = Runs.completion ?seed (Runs.xen_plus_default app) in
      {
        app = app.Workloads.App.name;
        linux = overhead linux base;
        xen = overhead xen base;
        xen_plus = overhead xen_plus base;
      })
    apps

let print_fig6 ?seed () =
  let rows = fig6 ?seed () in
  print_string
    (Report.Chart.render_groups
       ~title:"Figure 6: overhead of Linux, Xen and Xen+ compared to LinuxNUMA (lower is better)"
       ~series:[ "linux"; "xen"; "xen+" ]
       (List.map (fun r -> (r.app, [ r.linux; r.xen; r.xen_plus ])) rows))

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  app : string;
  ft : float;
  ft_carrefour : float;
  r4k : float;
  r4k_carrefour : float;
  best : Policies.Spec.t;
}

let xen_policy_times ?seed app =
  let mcs = Runs.uses_mcs app in
  List.map
    (fun policy -> (policy, Runs.completion ?seed (Runs.xen_plus ~mcs app policy)))
    Policies.Spec.
      [ first_touch; first_touch_carrefour; round_4k; round_4k_carrefour; round_1g ]

let xen_numa_time ?seed app = best_time (xen_policy_times ?seed app)

let fig7 ?seed () =
  grid
    (fun app ->
      let times = xen_policy_times ?seed app in
      let time p = List.assoc p times in
      let base = time Policies.Spec.round_1g in
      {
        app = app.Workloads.App.name;
        ft = improvement base (time Policies.Spec.first_touch);
        ft_carrefour = improvement base (time Policies.Spec.first_touch_carrefour);
        r4k = improvement base (time Policies.Spec.round_4k);
        r4k_carrefour = improvement base (time Policies.Spec.round_4k_carrefour);
        best = best_of times;
      })
    apps

let print_fig7 ?seed () =
  let rows = fig7 ?seed () in
  print_string
    (Report.Chart.render_groups
       ~title:
         "Figure 7: improvement of the NUMA policies in Xen+ compared to Xen+ (higher is better)"
       ~series:[ "first-touch"; "ft/carrefour"; "round-4k"; "r4k/carrefour" ]
       (List.map (fun r -> (r.app, [ r.ft; r.ft_carrefour; r.r4k; r.r4k_carrefour ])) rows))

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

type tab4_row = {
  app : string;
  best_linux : Policies.Spec.t;
  best_xen : Policies.Spec.t;
  paper_linux : Policies.Spec.t;
  paper_xen : Policies.Spec.t;
}

let tab4 ?seed () =
  grid
    (fun app ->
      let linux_times = linux_policy_times ?seed app in
      let xen_times = xen_policy_times ?seed app in
      {
        app = app.Workloads.App.name;
        best_linux = best_of linux_times;
        best_xen = best_of xen_times;
        paper_linux = app.Workloads.App.paper.Workloads.App.best_linux;
        paper_xen = app.Workloads.App.paper.Workloads.App.best_xen;
      })
    apps

let print_tab4 ?seed () =
  let rows = tab4 ?seed () in
  print_endline "Table 4: best NUMA policies (measured vs paper)";
  Report.Table.print
    ~header:[ "app"; "LinuxNUMA"; "paper"; "Xen+NUMA"; "paper" ]
    ~align:[ Report.Table.Left; Left; Left; Left; Left ]
    (List.map
       (fun r ->
         [
           r.app;
           Policies.Spec.name r.best_linux;
           Policies.Spec.name r.paper_linux;
           Policies.Spec.name r.best_xen;
           Policies.Spec.name r.paper_xen;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

type fig10_row = { app : string; xen_plus : float; xen_plus_numa : float }

let fig10 ?seed () =
  grid
    (fun app ->
      let base = linux_numa_time ?seed app in
      let xen_plus = Runs.completion ?seed (Runs.xen_plus_default app) in
      let xen_plus_numa = xen_numa_time ?seed app in
      {
        app = app.Workloads.App.name;
        xen_plus = overhead xen_plus base;
        xen_plus_numa = overhead xen_plus_numa base;
      })
    apps

let print_fig10 ?seed () =
  let rows = fig10 ?seed () in
  print_string
    (Report.Chart.render_groups
       ~title:
         "Figure 10: overhead of Xen+ and Xen+NUMA compared to LinuxNUMA (lower is better)"
       ~series:[ "xen+"; "xen+numa" ]
       (List.map (fun r -> (r.app, [ r.xen_plus; r.xen_plus_numa ])) rows))
