let carrefour_variant ?(replication = false) ~interleave ~locality () =
  let base = Policies.Carrefour.User_component.default_config in
  {
    base with
    Policies.Carrefour.User_component.mc_threshold = (if interleave then 0.50 else 2.0);
    ic_threshold = (if locality || replication then 0.12 else 2.0);
    dominant_fraction = 0.75;
    min_accesses = 4.0;
    migration_budget = 256;
    enable_replication = replication;
    replication_read_threshold = 0.85;
  }

let run_variant ?(seed = 42) ?replication ~app_name ~policy ~interleave ~locality () =
  let app =
    match Workloads.Catalogue.find app_name with
    | Some app -> app
    | None -> invalid_arg "Ablation: unknown app"
  in
  let vm = Engine.Config.vm ~policy app in
  let cfg =
    Engine.Config.make ~seed ~mode:Engine.Config.Linux
      ~carrefour_config:(carrefour_variant ?replication ~interleave ~locality ())
      [ vm ]
  in
  let result = Engine.Runner.run cfg in
  let vm_result = Engine.Result.single result in
  (vm_result.Engine.Result.completion, vm_result.Engine.Result.migrations)

let print_carrefour_heuristics ?seed () =
  let variants =
    [
      ("both heuristics", true, true);
      ("interleave only", true, false);
      ("migration only", false, true);
      ("neither (static)", false, false);
    ]
  in
  let configs =
    [
      ("kmeans", Policies.Spec.first_touch_carrefour, "first-touch (controller overload)");
      ("cg.C", Policies.Spec.round_4k_carrefour, "round-4k (lost locality)");
    ]
  in
  (* Flatten the (config x variant) grid into independent pool tasks;
     rows come back in grid order. *)
  let cells =
    List.concat_map (fun config -> List.map (fun v -> (config, v)) variants) configs
  in
  let rows =
    Engine.Pool.map_list
      (fun ((app_name, policy, _), (name, interleave, locality)) ->
        let completion, migrations =
          run_variant ?seed ~app_name ~policy ~interleave ~locality ()
        in
        [ name; Report.Table.fmt_secs completion; string_of_int migrations ])
      cells
  in
  List.iteri
    (fun i (app_name, _, label) ->
      Printf.printf "Carrefour heuristic ablation: %s under %s\n" app_name label;
      let skip = i * List.length variants in
      Report.Table.print
        ~header:[ "variant"; "completion"; "migrations" ]
        (List.filteri (fun j _ -> j >= skip && j < skip + List.length variants) rows);
      print_newline ())
    configs

(* Oldest-first replay: applies every op in order, so a Release that
   precedes a reallocation wrongly invalidates a live page. *)
let replay_oldest_first ops ~f =
  let final = Hashtbl.create 64 in
  Array.iter
    (fun op -> Hashtbl.replace final (Guest.Pv_queue.op_pfn op) op)
    ops;
  Array.iter
    (fun op ->
      match op with
      | Guest.Pv_queue.Release pfn -> f pfn `Invalidate
      | Guest.Pv_queue.Alloc pfn -> f pfn `Leave)
    ops;
  final

let print_replay_direction () =
  (* A queue in which half the released pages are reallocated before
     the flush. *)
  let ops =
    Array.concat
      [
        Array.init 32 (fun i -> Guest.Pv_queue.Release i);
        Array.init 16 (fun i -> Guest.Pv_queue.Alloc i);  (* pages 0..15 reallocated *)
      ]
  in
  let wrong = ref 0 and correct_invalidate = ref 0 in
  let live pfn = pfn < 16 in
  ignore
    (replay_oldest_first ops ~f:(fun pfn action ->
         if action = `Invalidate && live pfn then incr wrong));
  Guest.Pv_queue.replay ops ~f:(fun pfn action ->
      match action with
      | `Invalidate ->
          incr correct_invalidate;
          assert (not (live pfn))
      | `Leave -> ());
  print_endline "Queue replay direction (Section 4.2.4)";
  Report.Table.print
    ~header:[ "replay order"; "live pages wrongly invalidated"; "free pages invalidated" ]
    [
      [ "oldest first (naive)"; string_of_int !wrong; "32" ];
      [ "most recent first (paper)"; "0"; string_of_int !correct_invalidate ];
    ];
  print_newline ()

let print_mcs ?(seed = 42) () =
  print_endline "MCS spin locks vs futex sleeps under Xen+ (Section 5.3.2)";
  Report.Table.print
    ~header:[ "app"; "futex"; "mcs"; "improvement" ]
    (Engine.Pool.map_list
       (fun name ->
         let app =
           match Workloads.Catalogue.find name with Some a -> a | None -> assert false
         in
         let futex =
           Runs.completion ~seed (Runs.xen_plus ~mcs:false app Policies.Spec.round_4k)
         in
         let mcs = Runs.completion ~seed (Runs.xen_plus ~mcs:true app Policies.Spec.round_4k) in
         [
           name;
           Report.Table.fmt_secs futex;
           Report.Table.fmt_secs mcs;
           Report.Table.fmt_pct ((futex /. mcs) -. 1.0);
         ])
       Runs.mcs_apps);
  print_newline ()

(* The replication heuristic the paper discarded.  Under the strict
   read-only threshold (a single write collapses the replicas, so only
   pages with a ~100% read fraction are worth replicating) nothing in
   these read-mostly workloads qualifies and the effect is marginal —
   the paper's observation.  A permissive threshold would help the
   graph kernels in this model, but only because the model does not
   charge the coherence machinery a real implementation would need. *)
let print_replication ?(seed = 42) () =
  print_endline "Replication heuristic (discarded in the paper, Section 3.4)";
  let run ?threshold ~replication app_name =
    let cfg = carrefour_variant ~replication ~interleave:true ~locality:true () in
    let cfg =
      match threshold with
      | Some t -> { cfg with Policies.Carrefour.User_component.replication_read_threshold = t }
      | None -> cfg
    in
    let app =
      match Workloads.Catalogue.find app_name with Some a -> a | None -> assert false
    in
    let vm = Engine.Config.vm ~policy:Policies.Spec.round_4k_carrefour app in
    let result =
      Engine.Runner.run
        (Engine.Config.make ~seed ~mode:Engine.Config.Linux ~carrefour_config:cfg [ vm ])
    in
    (Engine.Result.single result).Engine.Result.completion
  in
  Report.Table.print
    ~header:[ "app"; "no replication"; "strict (read-only)"; "permissive (>=85% reads)" ]
    (Engine.Pool.map_list
       (fun app_name ->
         let base = run ~replication:false app_name in
         let strict = run ~replication:true ~threshold:0.999 app_name in
         let permissive = run ~replication:true ~threshold:0.85 app_name in
         let delta t = Printf.sprintf "%s (%+.1f%%)" (Report.Table.fmt_secs t) (100.0 *. ((base /. t) -. 1.0)) in
         [ app_name; Report.Table.fmt_secs base; delta strict; delta permissive ])
       [ "pagerank"; "bfs"; "memcached" ]);
  print_endline
    "(strict threshold: no read-mostly page qualifies -> marginal effect, as in the paper)";
  print_newline ()

(* Large pages (implemented: the huge_pages spec flag; the walk cost
   behind it is now the radix model of Guest.Tlb.walk_cycles_radix
   when --pt-walk is on).  The nested page walk makes TLB misses ~3x
   dearer in a VM — and 2 MiB pages shorten every radix walk by one
   level on top of the reach win — so they pay off most there.  The
   Mitosis grid (Experiments.Mitosis) ablates the walk pricing
   itself. *)
let print_huge_pages ?(seed = 42) () =
  print_endline "Large pages (the paper's first future-work item)";
  Report.Table.print
    ~header:[ "app"; "mode"; "4 KiB pages"; "2 MiB pages"; "improvement" ]
    (List.concat
       (Engine.Pool.map_list
          (fun app_name ->
         let app =
           match Workloads.Catalogue.find app_name with Some a -> a | None -> assert false
         in
         let policy = app.Workloads.App.paper.Workloads.App.best_xen in
         let policy =
           if Policies.Spec.runtime_selectable policy then policy else Policies.Spec.round_4k
         in
         List.map
           (fun (label, mode) ->
             let run huge_pages =
               let vm = Engine.Config.vm ~huge_pages ~policy app in
               (Engine.Result.single
                  (Engine.Runner.run (Engine.Config.make ~seed ~mode [ vm ])))
                 .Engine.Result.completion
             in
             let small = run false and huge = run true in
             [
               app_name;
               label;
               Report.Table.fmt_secs small;
               Report.Table.fmt_secs huge;
               Printf.sprintf "%+.1f%%" (100.0 *. ((small /. huge) -. 1.0));
             ])
           [ ("linux", Engine.Config.Linux); ("xen+", Engine.Config.Xen_plus) ])
          [ "mg.D"; "dc.B"; "kmeans" ]));
  print_newline ()

let print_round1g_fragmentation () =
  let system = Xen.System.create ~page_scale:1 (Numa.Amd48.topology ()) in
  let rng = Sim.Rng.create ~seed:3 in
  print_endline "round-1G boot allocation granularity (Section 3.3)";
  Report.Table.print
    ~header:[ "domain size"; "1 GiB regions"; "2 MiB regions"; "4 KiB pages" ]
    (List.map
       (fun gib ->
         let domain =
           Xen.System.create_domain system
             ~name:(Printf.sprintf "frag-%dg" gib)
             ~kind:Xen.Domain.DomU ~vcpus:1
             ~mem_bytes:(gib * 1024 * 1024 * 1024)
             ()
         in
         let manager =
           Policies.Manager.attach system domain ~boot:Policies.Spec.round_1g ~rng
         in
         let stats = Policies.Manager.stats manager in
         let row =
           [
             Printf.sprintf "%d GiB" gib;
             string_of_int stats.Policies.Manager.populated_1g;
             string_of_int stats.Policies.Manager.populated_2m;
             string_of_int stats.Policies.Manager.populated_4k;
           ]
         in
         Xen.System.destroy_domain system domain;
         row)
       [ 1; 4; 16 ])
