(* Memory-RAS runs: hardware fault scenarios (ECC error storms and a
   whole-node failure) over a small workload x policy grid, reporting
   the RAS degradation counters the engine surfaces.  The node-fail
   scenario is the headline: the failing node's bandwidth collapses
   over a 100-epoch drain window, the node then goes offline, and every
   run must still complete with the node fully evacuated. *)

let scenarios =
  [
    ("none", "none");
    ("ce-storm", "ecc-ce=0.9");
    ("ue-sparse", "ecc-ue=0.05");
    ("node-fail", "node_fail=1.0@50-150");
  ]

let cells =
  [
    ("swaptions", "ft", Policies.Spec.first_touch);
    ("swaptions", "4k/cfr", Policies.Spec.round_4k_carrefour);
    ("wrmem", "ft", Policies.Spec.first_touch);
    ("wrmem", "4k/cfr", Policies.Spec.round_4k_carrefour);
  ]

(* Same eager thresholds as the chaos grid, for the same reason: the
   carrefour cells must actually reach the migration path so the
   evacuation drain competes with policy traffic. *)
let eager_carrefour =
  {
    Policies.Carrefour.User_component.default_config with
    Policies.Carrefour.User_component.mc_threshold = 0.30;
    ic_threshold = 0.05;
    dominant_fraction = 0.60;
    min_accesses = 2.0;
  }

let max_epochs = 5_000

(* Same scheme as Runs.task_seed / Chaos.plan_seed: each cell's stream
   is a pure function of (cell label, base seed), so the parallel sweep
   is bit-identical to the sequential one whatever the schedule. *)
let cell_seed ~base label =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) label;
  (base * 0x9E3779B1 lxor !h) land 0x3FFFFFFF

let run_one ~seed ~app_name ~policy plan =
  let app =
    match Workloads.Catalogue.find app_name with Some a -> a | None -> assert false
  in
  let vm = Engine.Config.vm ~threads:16 ~policy app in
  let faults = Faults.Plan.of_string_exn plan in
  let cfg =
    Engine.Config.make
      ~seed:(cell_seed ~base:seed (app_name ^ "|" ^ plan))
      ~max_epochs ~faults ~carrefour_config:eager_carrefour ~mode:Engine.Config.Xen_plus
      [ vm ]
  in
  Engine.Runner.run cfg

let grid = List.concat_map (fun cell -> List.map (fun sc -> (cell, sc)) scenarios) cells

let run ?(seed = 42) () =
  Array.to_list
    (Engine.Pool.run_all
       (Array.of_list
          (List.map
             (fun ((app_name, _, policy), (_, plan)) () -> run_one ~seed ~app_name ~policy plan)
             grid)))

let print ?seed () =
  let results = run ?seed () in
  let tagged = List.combine grid results in
  let baseline app_name policy_label =
    List.find_map
      (fun (((a, p, _), (sc, _)), (r : Engine.Result.t)) ->
        if a = app_name && p = policy_label && sc = "none" then
          Some (Engine.Result.single r).Engine.Result.completion
        else None)
      tagged
  in
  Report.Table.print
    ~header:(Report.Table.ras_header ~first:"cell")
    (List.map
       (fun (((app_name, policy_label, _), (sc, _)), (result : Engine.Result.t)) ->
         let vm = Engine.Result.single result in
         let d = vm.Engine.Result.degradation in
         let base =
           match baseline app_name policy_label with Some b -> b | None -> assert false
         in
         Report.Table.ras_row
           ~first:(app_name ^ "/" ^ policy_label)
           ~scenario:sc ~injected:result.Engine.Result.faults_injected
           ~ce:d.Engine.Result.ecc_ce ~ue:d.Engine.Result.ecc_ue
           ~offlined:d.Engine.Result.offlined ~evacuated:d.Engine.Result.evacuated
           ~evac_epochs:d.Engine.Result.evac_epochs
           ~p99:vm.Engine.Result.latency.Engine.Result.p99
           ~completion:vm.Engine.Result.completion
           ~slowdown:(vm.Engine.Result.completion /. base))
       tagged);
  print_newline ();
  (* Robustness headline: every scenario completes — a node failure
     degrades throughput, it never wedges a run. *)
  List.iter
    (fun (((app_name, policy_label, _), (sc, _)), (result : Engine.Result.t)) ->
      if result.Engine.Result.epochs >= max_epochs then
        Printf.printf "WARNING: cell %s/%s scenario %S hit the epoch cap without completing\n"
          app_name policy_label sc)
    tagged
