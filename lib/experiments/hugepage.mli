(** The hugepage grid: 2 MiB P2M superpages on/off across the three
    boot placements (round-1G / round-4K / first-touch) for two
    TLB-sensitive applications.  Round-1G keeps its boot superpages and
    wins the nested-paging TLB gap; round-4K never forms any; the
    first-touch policy switch splinters every extent and closes the
    gap, leaving the splinter/promote counters as the explanation. *)

val apps : string list
val policies : Policies.Spec.t list

val cells : (string * Policies.Spec.t) list
(** [apps] x [policies], apps-major. *)

val run : ?seed:int -> unit -> (Engine.Result.t * Engine.Result.t) list
(** (superpages-off, superpages-on) result pairs in [cells] order.
    Both halves of a pair share one derived seed, so their workload
    streams are identical and the delta is the superpage effect;
    parallelised over the engine pool (bit-identical whatever the job
    count). *)

val print : ?seed:int -> unit -> unit
