type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~header ?align rows =
  let cols = List.length header in
  let align =
    match align with
    | Some a ->
        if List.length a <> cols then invalid_arg "Table.render: align length mismatch";
        Array.of_list a
    | None -> Array.init cols (fun i -> if i = 0 then Left else Right)
  in
  let normalise row =
    let n = List.length row in
    if n > cols then invalid_arg "Table.render: row wider than header"
    else row @ List.init (cols - n) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align.(i) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (cols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header ?align rows = print_string (render ~header ?align rows)

let fmt_pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let fmt_ratio x = Printf.sprintf "%.2fx" x
let fmt_secs x = Printf.sprintf "%.2fs" x
let fmt_cycles x = if x <= 0.0 then "-" else Printf.sprintf "%.0f" x

let degradation_header ~first =
  [ first; "injected"; "retries"; "deferred"; "drained"; "fallback"; "trips"; "level";
    "lost"; "reconciled"; "p99 cy"; "completion" ]

let degradation_row ~first ~injected ~retries ~deferred ~drained ~fallback ~trips ~level ~lost
    ~reconciled ~p99 ~completion =
  [
    first;
    string_of_int injected;
    string_of_int retries;
    string_of_int deferred;
    string_of_int drained;
    string_of_int fallback;
    string_of_int trips;
    string_of_int level;
    string_of_int lost;
    string_of_int reconciled;
    fmt_cycles p99;
    fmt_secs completion;
  ]

let ras_header ~first =
  [ first; "scenario"; "injected"; "CE"; "UE"; "offlined"; "evacuated"; "drain ep";
    "p99 cy"; "completion"; "vs none" ]

let ras_row ~first ~scenario ~injected ~ce ~ue ~offlined ~evacuated ~evac_epochs ~p99
    ~completion ~slowdown =
  [
    first;
    scenario;
    string_of_int injected;
    string_of_int ce;
    string_of_int ue;
    string_of_int offlined;
    string_of_int evacuated;
    string_of_int evac_epochs;
    fmt_cycles p99;
    fmt_secs completion;
    fmt_ratio slowdown;
  ]

let latency_header ~first =
  [ first; "samples"; "mean"; "p50"; "p95"; "p99"; "p99.9"; "max" ]

let latency_row ~first ~samples ~mean ~p50 ~p95 ~p99 ~p999 ~max =
  [
    first;
    string_of_int samples;
    fmt_cycles mean;
    fmt_cycles p50;
    fmt_cycles p95;
    fmt_cycles p99;
    fmt_cycles p999;
    fmt_cycles max;
  ]
