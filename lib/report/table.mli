(** ASCII tables for experiment output. *)

type align = Left | Right

val render : header:string list -> ?align:align list -> string list list -> string
(** Render a table with a header row, column separators and padding.
    [align] defaults to left for the first column and right for the
    rest.  Rows shorter than the header are padded with empty cells. *)

val print : header:string list -> ?align:align list -> string list list -> unit
(** [render] to stdout. *)

val fmt_pct : float -> string
(** Format a fraction as a percentage ("135%"). *)

val fmt_ratio : float -> string
(** Format a ratio ("2.31x"). *)

val fmt_secs : float -> string

val fmt_cycles : float -> string
(** Format a latency in cycles ("312"); ["-"] for a non-positive value
    (no samples recorded). *)

val degradation_header : first:string -> string list
(** Header of the chaos-run summary table; [first] labels the leading
    column (the fault-plan name). *)

val degradation_row :
  first:string ->
  injected:int ->
  retries:int ->
  deferred:int ->
  drained:int ->
  fallback:int ->
  trips:int ->
  level:int ->
  lost:int ->
  reconciled:int ->
  p99:float ->
  completion:float ->
  string list
(** One summary row per run: faults injected, migration retries,
    deferred pages (and how many later drained), fallback placements,
    circuit-breaker trips and final level, lost batches, reconciled
    pfns, p99 memory latency (cycles), completion time. *)

val ras_header : first:string -> string list
(** Header of the memory-RAS summary table; [first] labels the leading
    column (the workload/policy cell). *)

val ras_row :
  first:string ->
  scenario:string ->
  injected:int ->
  ce:int ->
  ue:int ->
  offlined:int ->
  evacuated:int ->
  evac_epochs:int ->
  p99:float ->
  completion:float ->
  slowdown:float ->
  string list
(** One row per (cell, fault scenario): faults injected, correctable and
    uncorrectable ECC errors handled, frames retired by the UE handler,
    frames evacuated off failing nodes, epochs the drain was in
    progress, p99 memory latency (cycles), completion time and the
    slowdown against the cell's fault-free run. *)

val latency_header : first:string -> string list
(** Header of the per-domain tail-latency table; [first] labels the
    leading column (the app/cell name). *)

val latency_row :
  first:string ->
  samples:int ->
  mean:float ->
  p50:float ->
  p95:float ->
  p99:float ->
  p999:float ->
  max:float ->
  string list
(** One row per domain: sample count and the latency distribution
    (mean, p50/p95/p99/p99.9, max) in cycles. *)
