type op =
  | Alloc of Memory.Page.pfn
  | Release of Memory.Page.pfn

let op_pfn = function Alloc pfn | Release pfn -> pfn

type stats = {
  mutable enqueued : int;
  mutable flushes : int;
  mutable ops_sent : int;
  mutable guest_time : float;
  mutable dropped : int;
  mutable lost_batches : int;
  mutable lost_ops : int;
  mutable dedup_hits : int;
}

(* Most-recent-op-wins dedup state: a flat generation-stamp array keyed
   by pfn.  Each batch bumps [gen]; the first (newest) op seen for a
   pfn stamps it, later (older) ops find the stamp current and are
   superseded.  O(1) per entry, no clearing between batches, no
   allocation. *)
type dedup = {
  stamp : int array;
  mutable gen : int;
}

let dedup ~frames =
  if frames <= 0 then invalid_arg "Pv_queue.dedup: frames must be positive";
  { stamp = Array.make frames 0; gen = 0 }

type partition = {
  mutable entries : op array;
  mutable len : int;
}

type t = {
  parts : partition array;
  mask : int;
  capacity : int;
  flush : op array -> float;
  stats : stats;
  dedup : dedup option;
  scratch : op array;  (* survivor collection, reused across flushes *)
  mutable drop_op : op -> bool;
  mutable lose_batch : op array -> bool;
  mutable obs : Obs.Stream.t option;
  mutable obs_domain : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(partitions = 4) ?(capacity = 128) ?frames ~flush () =
  if not (is_power_of_two partitions) then
    invalid_arg "Pv_queue.create: partitions must be a power of two";
  if capacity <= 0 then invalid_arg "Pv_queue.create: capacity must be positive";
  {
    parts = Array.init partitions (fun _ -> { entries = Array.make capacity (Alloc 0); len = 0 });
    mask = partitions - 1;
    capacity;
    flush;
    stats =
      {
        enqueued = 0;
        flushes = 0;
        ops_sent = 0;
        guest_time = 0.0;
        dropped = 0;
        lost_batches = 0;
        lost_ops = 0;
        dedup_hits = 0;
      };
    dedup = (match frames with Some frames -> Some (dedup ~frames) | None -> None);
    scratch = Array.make capacity (Alloc 0);
    drop_op = (fun _ -> false);
    lose_batch = (fun _ -> false);
    obs = None;
    obs_domain = -1;
  }

let set_obs t ?(domain = -1) stream =
  t.obs <- stream;
  t.obs_domain <- domain

let set_fault_hooks t ?drop_op ?lose_batch () =
  (match drop_op with Some f -> t.drop_op <- f | None -> ());
  match lose_batch with Some f -> t.lose_batch <- f | None -> ()

let partitions t = Array.length t.parts

let partition_of t pfn = pfn land t.mask

let flush_partition t part =
  if part.len > 0 then
    Obs.Profile.span Obs.Profile.Pv_flush @@ fun () ->
  begin
    let n = part.len in
    (* Shard dedup, newest-first: survivors are packed into the tail of
       the reusable scratch array, so they come out oldest-first (the
       arrival order the hypervisor would have seen).  The stamp array
       is shared by all partitions — their pfn sets are disjoint (the
       partition index IS the low pfn bits), so a stamp written by one
       partition is never consulted by another. *)
    let survivors, hits =
      match t.dedup with
      | None -> (Array.sub part.entries 0 n, 0)
      | Some d ->
          let frames = Array.length d.stamp in
          d.gen <- d.gen + 1;
          let g = d.gen in
          let m = ref 0 in
          for i = n - 1 downto 0 do
            let op = part.entries.(i) in
            let pfn = op_pfn op in
            if pfn >= 0 && pfn < frames then begin
              if d.stamp.(pfn) <> g then begin
                d.stamp.(pfn) <- g;
                incr m;
                t.scratch.(t.capacity - !m) <- op
              end
            end
            else begin
              (* Out-of-range pfn: cannot be stamped, passes through. *)
              incr m;
              t.scratch.(t.capacity - !m) <- op
            end
          done;
          (Array.sub t.scratch (t.capacity - !m) !m, n - !m)
    in
    (* Snapshot and reset BEFORE invoking the handler: a flush callback
       that re-enters [record] (e.g. a reconciliation sweep releasing
       pages from inside the hypercall) must find room in the partition
       instead of writing past capacity. *)
    part.len <- 0;
    if hits > 0 then begin
      t.stats.dedup_hits <- t.stats.dedup_hits + hits;
      (match t.obs with
      | None -> ()
      | Some stream -> Obs.Stream.emit ~domain:t.obs_domain ~arg:hits stream Obs.Event.Pv_dedup);
      if Obs.Metrics.enabled () then Obs.Metrics.incr ~by:hits "guest.pv.dedup_hits"
    end;
    (* Injected guest-side drops are drawn ONCE per surviving op, after
       dedup: the fault schedule must not depend on how many superseded
       duplicates each op shadowed.  Survivors are compacted in place in
       arrival order, so the draw sequence is the op sequence. *)
    let ops =
      let kept = ref 0 in
      for i = 0 to Array.length survivors - 1 do
        let op = survivors.(i) in
        if t.drop_op op then t.stats.dropped <- t.stats.dropped + 1
        else begin
          survivors.(!kept) <- op;
          incr kept
        end
      done;
      if !kept = Array.length survivors then survivors else Array.sub survivors 0 !kept
    in
    let sent = Array.length ops in
    if sent > 0 then begin
      if t.lose_batch ops then begin
        (* Injected transit loss: the hypervisor never sees the batch.
           The guest's view and the P2M now disagree until the periodic
           reconciliation sweep heals them. *)
        t.stats.lost_batches <- t.stats.lost_batches + 1;
        t.stats.lost_ops <- t.stats.lost_ops + sent;
        (match t.obs with
        | None -> ()
        | Some stream ->
            Obs.Stream.emit ~domain:t.obs_domain ~arg:sent stream Obs.Event.Pv_lost);
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.incr "guest.pv.lost_batches";
          Obs.Metrics.incr ~by:sent "guest.pv.lost_ops"
        end
      end
      else begin
        (* The partition lock is held across the hypercall: no other core
           can reallocate a queued page while the hypervisor processes it. *)
        let time = t.flush ops in
        t.stats.flushes <- t.stats.flushes + 1;
        t.stats.ops_sent <- t.stats.ops_sent + sent;
        t.stats.guest_time <- t.stats.guest_time +. time;
        (match t.obs with
        | None -> ()
        | Some stream ->
            Obs.Stream.emit ~domain:t.obs_domain ~arg:sent stream Obs.Event.Pv_flush);
        if Obs.Metrics.enabled () then begin
          Obs.Metrics.incr "guest.pv.flushes";
          Obs.Metrics.incr ~by:sent "guest.pv.ops_sent";
          Obs.Metrics.observe "guest.pv.batch_size" (float_of_int sent);
          Obs.Metrics.observe "guest.pv.flush_time_s" time
        end
      end
    end
  end

let record t op =
  let part = t.parts.(partition_of t (op_pfn op)) in
  part.entries.(part.len) <- op;
  part.len <- part.len + 1;
  t.stats.enqueued <- t.stats.enqueued + 1;
  (match t.obs with
  | None -> ()
  | Some stream ->
      let arg = match op with Alloc _ -> 0 | Release _ -> 1 in
      Obs.Stream.emit ~domain:t.obs_domain ~pfn:(op_pfn op) ~arg stream Obs.Event.Pv_record);
  if part.len = t.capacity then flush_partition t part

let flush_all t = Array.iter (flush_partition t) t.parts

let pending t = Array.fold_left (fun acc p -> acc + p.len) 0 t.parts

let stats t = t.stats

let replay ?dedup ops ~f =
  let n = Array.length ops in
  match dedup with
  | Some d ->
      let frames = Array.length d.stamp in
      d.gen <- d.gen + 1;
      let g = d.gen in
      for i = n - 1 downto 0 do
        let op = ops.(i) in
        let pfn = op_pfn op in
        if pfn >= 0 && pfn < frames then begin
          if d.stamp.(pfn) <> g then begin
            d.stamp.(pfn) <- g;
            match op with
            | Release _ -> f pfn `Invalidate
            | Alloc _ -> f pfn `Leave
          end
        end
        else begin
          match op with
          | Release _ -> f pfn `Invalidate
          | Alloc _ -> f pfn `Leave
        end
      done
  | None ->
      let seen = Hashtbl.create n in
      for i = n - 1 downto 0 do
        let op = ops.(i) in
        let pfn = op_pfn op in
        if not (Hashtbl.mem seen pfn) then begin
          Hashtbl.replace seen pfn ();
          match op with
          | Release _ -> f pfn `Invalidate
          | Alloc _ -> f pfn `Leave
        end
      done
