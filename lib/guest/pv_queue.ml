type op =
  | Alloc of Memory.Page.pfn
  | Release of Memory.Page.pfn

let op_pfn = function Alloc pfn | Release pfn -> pfn

type stats = {
  mutable enqueued : int;
  mutable flushes : int;
  mutable ops_sent : int;
  mutable guest_time : float;
  mutable dropped : int;
  mutable lost_batches : int;
  mutable lost_ops : int;
}

type partition = {
  mutable entries : op array;
  mutable len : int;
}

type t = {
  parts : partition array;
  mask : int;
  capacity : int;
  flush : op array -> float;
  stats : stats;
  mutable drop_op : op -> bool;
  mutable lose_batch : op array -> bool;
  mutable obs : Obs.Stream.t option;
  mutable obs_domain : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(partitions = 4) ?(capacity = 128) ~flush () =
  if not (is_power_of_two partitions) then
    invalid_arg "Pv_queue.create: partitions must be a power of two";
  if capacity <= 0 then invalid_arg "Pv_queue.create: capacity must be positive";
  {
    parts = Array.init partitions (fun _ -> { entries = Array.make capacity (Alloc 0); len = 0 });
    mask = partitions - 1;
    capacity;
    flush;
    stats =
      {
        enqueued = 0;
        flushes = 0;
        ops_sent = 0;
        guest_time = 0.0;
        dropped = 0;
        lost_batches = 0;
        lost_ops = 0;
      };
    drop_op = (fun _ -> false);
    lose_batch = (fun _ -> false);
    obs = None;
    obs_domain = -1;
  }

let set_obs t ?(domain = -1) stream =
  t.obs <- stream;
  t.obs_domain <- domain

let set_fault_hooks t ?drop_op ?lose_batch () =
  (match drop_op with Some f -> t.drop_op <- f | None -> ());
  match lose_batch with Some f -> t.lose_batch <- f | None -> ()

let partitions t = Array.length t.parts

let partition_of t pfn = pfn land t.mask

let flush_partition t part =
  if part.len > 0 then begin
    let n = part.len in
    let ops = Array.sub part.entries 0 n in
    (* Snapshot and reset BEFORE invoking the handler: a flush callback
       that re-enters [record] (e.g. a reconciliation sweep releasing
       pages from inside the hypercall) must find room in the partition
       instead of writing past capacity. *)
    part.len <- 0;
    if t.lose_batch ops then begin
      (* Injected transit loss: the hypervisor never sees the batch.
         The guest's view and the P2M now disagree until the periodic
         reconciliation sweep heals them. *)
      t.stats.lost_batches <- t.stats.lost_batches + 1;
      t.stats.lost_ops <- t.stats.lost_ops + n;
      (match t.obs with
      | None -> ()
      | Some stream -> Obs.Stream.emit ~domain:t.obs_domain ~arg:n stream Obs.Event.Pv_lost);
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr "guest.pv.lost_batches";
        Obs.Metrics.incr ~by:n "guest.pv.lost_ops"
      end
    end
    else begin
      (* The partition lock is held across the hypercall: no other core
         can reallocate a queued page while the hypervisor processes it. *)
      let time = t.flush ops in
      t.stats.flushes <- t.stats.flushes + 1;
      t.stats.ops_sent <- t.stats.ops_sent + n;
      t.stats.guest_time <- t.stats.guest_time +. time;
      (match t.obs with
      | None -> ()
      | Some stream -> Obs.Stream.emit ~domain:t.obs_domain ~arg:n stream Obs.Event.Pv_flush);
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr "guest.pv.flushes";
        Obs.Metrics.incr ~by:n "guest.pv.ops_sent";
        Obs.Metrics.observe "guest.pv.flush_time_s" time
      end
    end
  end

let record t op =
  if t.drop_op op then t.stats.dropped <- t.stats.dropped + 1
  else begin
    let part = t.parts.(partition_of t (op_pfn op)) in
    part.entries.(part.len) <- op;
    part.len <- part.len + 1;
    t.stats.enqueued <- t.stats.enqueued + 1;
    (match t.obs with
    | None -> ()
    | Some stream ->
        let arg = match op with Alloc _ -> 0 | Release _ -> 1 in
        Obs.Stream.emit ~domain:t.obs_domain ~pfn:(op_pfn op) ~arg stream Obs.Event.Pv_record);
    if part.len = t.capacity then flush_partition t part
  end

let flush_all t = Array.iter (flush_partition t) t.parts

let pending t = Array.fold_left (fun acc p -> acc + p.len) 0 t.parts

let stats t = t.stats

let replay ops ~f =
  let seen = Hashtbl.create (Array.length ops) in
  for i = Array.length ops - 1 downto 0 do
    let op = ops.(i) in
    let pfn = op_pfn op in
    if not (Hashtbl.mem seen pfn) then begin
      Hashtbl.replace seen pfn ();
      match op with
      | Release _ -> f pfn `Invalidate
      | Alloc _ -> f pfn `Leave
    end
  done
