(** TLB reach model — the substrate behind the paper's first
    future-work item ("handling large pages in order to decrease the
    number of TLB misses should further improve performance").

    The cost of a TLB miss is very different native vs virtualized:
    with nested paging the hardware walks {e two} page tables (guest
    and hypervisor), up to 24 memory references instead of 4, which is
    why large pages matter more inside a VM.

    The model is a coverage argument: a TLB with [entries] entries of
    [page_bytes] pages covers [entries * page_bytes] of address space;
    accesses beyond the covered hot set miss with a probability that
    grows with the uncovered fraction of the footprint.  With a skewed
    (Zipf) access pattern most accesses hit the covered hot pages, so
    the miss ratio is scaled by the cold-tail access share. *)

type t = {
  entries_4k : int;  (** 4 KiB-page entries (L2 DTLB). *)
  entries_2m : int;  (** 2 MiB-page entries. *)
  walk_cycles_native : float;  (** One-dimensional page walk. *)
  walk_cycles_virtualized : float;
      (** Two-dimensional (nested) page walk under a hypervisor. *)
  spatial_accesses_per_4k : float;
      (** Consecutive accesses a thread makes within one 4 KiB page
          before leaving it; larger pages absorb proportionally more
          accesses per TLB entry. *)
}

val opteron : t
(** The AMD Opteron 6174: 1024-entry 4 KiB L2 DTLB, 48-entry unified
    L1 that also holds 2 MiB entries; ~60-cycle native walks, ~3x that
    for nested walks. *)

type page_size = Small_4k | Huge_2m

val coverage_bytes : t -> page_size -> int
(** Address space the TLB can map at once for the given page size. *)

val miss_ratio : t -> page_size -> footprint_bytes:int -> hot_access_share:float -> float
(** Fraction of memory accesses that miss the TLB.  [hot_access_share]
    is the share of accesses going to the covered hot set (1.0 for a
    fully cache-resident hot set, lower for uniform patterns). *)

val walk_cycles : t -> virtualized:bool -> float

val cycles_per_access :
  t -> page_size -> virtualized:bool -> footprint_bytes:int -> hot_access_share:float -> float
(** Expected TLB-walk cycles added to each memory access. *)

val cycles_per_access_mixed :
  t ->
  huge_fraction:float ->
  virtualized:bool ->
  footprint_bytes:int ->
  hot_access_share:float ->
  float
(** {!cycles_per_access} for an address space that is only partially
    backed by 2 MiB mappings: the P2M superpage fraction of guest
    memory enjoys {!Huge_2m} reach, the splintered remainder pays
    {!Small_4k} walks.  [huge_fraction] is clamped to [\[0, 1\]]. *)

(** {2 Radix walk model}

    Mitosis-style refinement of the flat walk constants: a page walk
    is [walk_levels] dependent memory references, each hitting the
    node that holds that level's page-table page.  Remote PT pages
    make each reference dearer by the remote/local latency ratio;
    2 MiB mappings terminate the walk one level early. *)

val walk_levels : int
(** Depth of a full 4 KiB radix walk (4 on x86-64). *)

val radix_levels : page_size -> int
(** Walk depth by page size: {!Small_4k} walks all [walk_levels]
    levels, {!Huge_2m} stops one level short (the L1 entry maps the
    whole 2 MiB extent). *)

val walk_cycles_radix :
  t -> virtualized:bool -> levels:int -> level_ratio:(int -> float) -> float
(** Cycles for one walk of [levels] levels.  [level_ratio i] is the
    memory-latency ratio (relative to local) of the node backing walk
    level [i]; a uniform ratio of 1.0 over all {!walk_levels} levels
    reproduces {!walk_cycles} exactly. *)

val cycles_per_access_radix :
  t ->
  page_size ->
  virtualized:bool ->
  footprint_bytes:int ->
  hot_access_share:float ->
  level_ratio:(int -> float) ->
  float
(** {!cycles_per_access} with the radix walk in place of the flat
    constant. *)

val cycles_per_access_mixed_radix :
  t ->
  huge_fraction:float ->
  virtualized:bool ->
  footprint_bytes:int ->
  hot_access_share:float ->
  level_ratio:(int -> float) ->
  float
(** {!cycles_per_access_mixed} with the radix walk: the superpage
    share walks one level fewer, both shares price each level by
    [level_ratio]. *)
