(** Guest side of the paper's external interface: the batched
    allocation/release queue (Sections 4.2.3–4.2.4).

    Calling the hypervisor on every page release is far too expensive
    (an application like wrmem releases a page every 15 µs; an empty
    hypercall per release divides its performance by 3).  Instead the
    guest OS accumulates (op, page) pairs — where op is allocation or
    release — in a queue and flushes the whole queue in one hypercall
    when it fills.

    Because a page can be reallocated while sitting in the queue, both
    allocations and releases are recorded, and the hypervisor replays
    the queue from the most recent entry keeping only the most recent
    operation per page: a final Release means the page is free and its
    P2M entry can be invalidated; a final Alloc means the page may
    already be in use and is left on its current node (copying would be
    too costly for this rare case).

    A single global queue serializes all cores on its lock, so the
    queue is partitioned by the two least significant bits of the page
    frame number, each partition with its own lock; the guest holds the
    partition lock across the flush hypercall so no other core can
    reallocate a page that is in flight.

    When created with [~frames], the most-recent-op-wins dedup runs
    guest-side at flush time over a flat generation-stamp array — O(1)
    per entry, no hashing, no per-batch clearing — so the hypervisor
    receives batches that already carry at most one op per page. *)

type op =
  | Alloc of Memory.Page.pfn
  | Release of Memory.Page.pfn

val op_pfn : op -> Memory.Page.pfn

type stats = {
  mutable enqueued : int;
  mutable flushes : int;
  mutable ops_sent : int;
  mutable guest_time : float;
      (** Guest-visible time spent flushing (hypercall + lock hold). *)
  mutable dropped : int;  (** Ops swallowed by an injected drop fault. *)
  mutable lost_batches : int;  (** Flushed batches lost in transit. *)
  mutable lost_ops : int;  (** Ops inside those lost batches. *)
  mutable dedup_hits : int;
      (** Superseded ops removed by the flush-time shard dedup. *)
}

(** Reusable most-recent-op-wins dedup state: one generation stamp per
    pfn in a flat int array.  Each batch bumps the generation; an op
    whose pfn already carries the current stamp is superseded by a
    newer op in the same batch. *)
type dedup

val dedup : frames:int -> dedup
(** Stamp array sized for pfns in [\[0, frames)].
    @raise Invalid_argument when [frames <= 0]. *)

type t

val create :
  ?partitions:int ->
  ?capacity:int ->
  ?frames:int ->
  flush:(op array -> float) ->
  unit ->
  t
(** [create ~partitions ~capacity ~frames ~flush ()] — [partitions]
    defaults to 4 (two PFN bits) and must be a power of two;
    [capacity] (default 128) is the per-partition entry count that
    triggers a flush.  When [frames] is given, each flush dedups the
    partition through a shared generation-stamp array before invoking
    the handler (most recent op per page wins; partitions hold disjoint
    pfn sets so one stamp array serves all of them).  [flush ops] is
    the hypervisor's handler; it returns the time the hypercall took,
    which is charged to [stats.guest_time]. *)

val partitions : t -> int

val partition_of : t -> Memory.Page.pfn -> int
(** Partition index = low bits of the pfn. *)

val record : t -> op -> unit
(** Append under the partition lock; flushes the partition through the
    hypercall if it reaches capacity.  The partition is emptied before
    the flush handler runs, so a handler may re-enter [record]. *)

val set_fault_hooks :
  t ->
  ?drop_op:(op -> bool) ->
  ?lose_batch:(op array -> bool) ->
  unit ->
  unit
(** Install fault-injection hooks ([Faults.Injector.install_queue]).
    [drop_op op] returning [true] silently discards the op; the draw
    happens at flush time, once per op surviving dedup, so the fault
    schedule is independent of how many superseded duplicates each op
    shadowed.  [lose_batch ops] returning [true] loses a full flushed
    batch in transit (the hypervisor never replays it).  Both default
    to never firing. *)

val set_obs : t -> ?domain:int -> Obs.Stream.t option -> unit
(** Attach a trace stream: [record] then emits [Pv_record] (pfn; arg 0
    = alloc, 1 = release), successful flushes emit [Pv_flush] (arg =
    batch size), in-transit losses [Pv_lost], and flushes that
    superseded queued ops [Pv_dedup] (arg = ops removed).  [domain]
    labels the events (default -1). *)

val flush_all : t -> unit
(** Force-flush every non-empty partition (used at policy switch). *)

val pending : t -> int
(** Entries currently queued across all partitions. *)

val stats : t -> stats

val replay :
  ?dedup:dedup -> op array -> f:(Memory.Page.pfn -> [ `Invalidate | `Leave ] -> unit) -> unit
(** Hypervisor-side replay semantics, reusable by policies: walk the
    queue from the most recent entry, visit each page once, and apply
    [`Invalidate] if its most recent op is a Release, [`Leave] if it is
    an Alloc.  With [dedup] the page-visited check is one stamp-array
    read (zero allocation); without it a scratch hashtable is used.
    Pfns outside the dedup's range are passed through undeduped. *)
