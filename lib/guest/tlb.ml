type t = {
  entries_4k : int;
  entries_2m : int;
  walk_cycles_native : float;
  walk_cycles_virtualized : float;
  spatial_accesses_per_4k : float;
}

let opteron =
  {
    entries_4k = 1024;
    entries_2m = 48;
    walk_cycles_native = 60.0;
    walk_cycles_virtualized = 180.0;
    spatial_accesses_per_4k = 20.0;
  }

type page_size = Small_4k | Huge_2m

let coverage_bytes t = function
  | Small_4k -> t.entries_4k * 4096
  | Huge_2m -> t.entries_2m * 2 * 1024 * 1024

let page_bytes = function Small_4k -> 4096.0 | Huge_2m -> 2.0 *. 1024.0 *. 1024.0

let miss_ratio t page_size ~footprint_bytes ~hot_access_share =
  assert (footprint_bytes >= 0);
  assert (hot_access_share >= 0.0 && hot_access_share <= 1.0);
  let coverage = float_of_int (coverage_bytes t page_size) in
  let footprint = float_of_int footprint_bytes in
  if footprint <= coverage then 0.0
  else begin
    (* Accesses to the covered hot set hit; the cold tail misses in
       proportion to how much of the footprint the TLB cannot map,
       bounded by spatial locality: a thread makes many consecutive
       accesses within a page before leaving it, and a 2 MiB page
       absorbs 512x more of them than a 4 KiB page — which is exactly
       why large pages pay off. *)
    let uncovered = (footprint -. coverage) /. footprint in
    let spatial = t.spatial_accesses_per_4k *. (page_bytes page_size /. 4096.0) in
    (1.0 -. hot_access_share) *. uncovered /. spatial
  end

let walk_cycles t ~virtualized =
  if virtualized then t.walk_cycles_virtualized else t.walk_cycles_native

(* ------------------------- radix walk model ------------------------- *)

let walk_levels = 4

let radix_levels = function Small_4k -> walk_levels | Huge_2m -> walk_levels - 1

let walk_cycles_radix t ~virtualized ~levels ~level_ratio =
  (* The flat constants describe a full 4-level walk against local
     memory; a radix walk charges each level separately, scaled by the
     latency of the node holding that level's page-table page relative
     to local memory.  A uniform ratio of 1.0 over all 4 levels
     telescopes back to the flat constant exactly (the division and
     the 4-term sum are FP-exact for the calibrated values). *)
  let per_level = walk_cycles t ~virtualized /. float_of_int walk_levels in
  let acc = ref 0.0 in
  for i = 0 to levels - 1 do
    acc := !acc +. (per_level *. level_ratio i)
  done;
  !acc

let cycles_per_access_radix t page_size ~virtualized ~footprint_bytes ~hot_access_share
    ~level_ratio =
  miss_ratio t page_size ~footprint_bytes ~hot_access_share
  *. walk_cycles_radix t ~virtualized ~levels:(radix_levels page_size) ~level_ratio

let cycles_per_access_mixed_radix t ~huge_fraction ~virtualized ~footprint_bytes
    ~hot_access_share ~level_ratio =
  let f = Float.min 1.0 (Float.max 0.0 huge_fraction) in
  let huge =
    cycles_per_access_radix t Huge_2m ~virtualized ~footprint_bytes ~hot_access_share
      ~level_ratio
  in
  let small =
    cycles_per_access_radix t Small_4k ~virtualized ~footprint_bytes ~hot_access_share
      ~level_ratio
  in
  (f *. huge) +. ((1.0 -. f) *. small)

let cycles_per_access t page_size ~virtualized ~footprint_bytes ~hot_access_share =
  miss_ratio t page_size ~footprint_bytes ~hot_access_share *. walk_cycles t ~virtualized

let cycles_per_access_mixed t ~huge_fraction ~virtualized ~footprint_bytes ~hot_access_share =
  let f = Float.min 1.0 (Float.max 0.0 huge_fraction) in
  let huge = cycles_per_access t Huge_2m ~virtualized ~footprint_bytes ~hot_access_share in
  let small = cycles_per_access t Small_4k ~virtualized ~footprint_bytes ~hot_access_share in
  (f *. huge) +. ((1.0 -. f) *. small)
