type sample = {
  pfn : Memory.Page.pfn;
  node_accesses : float array;
  read_fraction : float;
}

module System_component = struct
  type heat = {
    counts : float array;
    mutable reads : float;
    mutable total : float;
  }

  type t = {
    system : Xen.System.t;
    domain : Xen.Domain.t;
    table : (Memory.Page.pfn, heat) Hashtbl.t;
    replicas : (Memory.Page.pfn, Memory.Page.mfn list) Hashtbl.t;
    mutable epoch : int;
  }

  let create system domain =
    { system; domain; table = Hashtbl.create 1024; replicas = Hashtbl.create 64; epoch = 0 }

  let decay t =
    let stale = ref [] in
    Hashtbl.iter
      (fun pfn heat ->
        let total = ref 0.0 in
        Array.iteri
          (fun i c ->
            heat.counts.(i) <- c /. 2.0;
            total := !total +. heat.counts.(i))
          heat.counts;
        heat.reads <- heat.reads /. 2.0;
        heat.total <- !total;
        if !total < 1.0 then stale := pfn :: !stale)
      t.table;
    List.iter (Hashtbl.remove t.table) !stale

  let collapse t ~pfn =
    match Hashtbl.find_opt t.replicas pfn with
    | None -> ()
    | Some mfns ->
        List.iter (fun mfn -> Memory.Machine.free t.system.Xen.System.machine ~mfn ~order:0) mfns;
        Hashtbl.remove t.replicas pfn

  let begin_epoch t =
    decay t;
    t.epoch <- t.epoch + 1

  let record_sample t ~pfn ~node_accesses ~read_fraction =
    (* Any write to a replicated page invalidates its replicas:
       the copies would otherwise go stale.  This write-collapse
       thrashing is what makes replication marginal on read-mostly
       (but not read-only) workloads — the paper's reason for
       discarding the heuristic. *)
    if read_fraction < 0.999 && Hashtbl.mem t.replicas pfn then collapse t ~pfn;
    let added = Array.fold_left ( +. ) 0.0 node_accesses in
    match Hashtbl.find_opt t.table pfn with
    | Some heat ->
        Array.iteri (fun i c -> heat.counts.(i) <- heat.counts.(i) +. c) node_accesses;
        heat.reads <- heat.reads +. (read_fraction *. added);
        heat.total <- heat.total +. added
    | None ->
        Hashtbl.replace t.table pfn
          { counts = Array.copy node_accesses; reads = read_fraction *. added; total = added }

  let record_samples t samples =
    begin_epoch t;
    List.iter
      (fun s ->
        record_sample t ~pfn:s.pfn ~node_accesses:s.node_accesses
          ~read_fraction:s.read_fraction)
      samples

  type metrics = {
    controller_util : float array;
    max_link_util : float;
    imbalance : float;
    hot_pages : sample list;
  }

  let heat_total counts = Array.fold_left ( +. ) 0.0 counts

  let sample_of_heat pfn heat =
    let read_fraction = if heat.total > 0.0 then heat.reads /. heat.total else 1.0 in
    { pfn; node_accesses = Array.copy heat.counts; read_fraction }

  let read_metrics ?top t ~counters =
    let hot =
      match top with
      | Some k when k > 0 ->
          (* Bounded selection: a k-sized min-heap over the live heat
             totals instead of materialising and sorting the whole
             table.  Counts are copied only for the k survivors. *)
          let heap = Sim.Stats.Topk.create (max 1 (min k (Hashtbl.length t.table))) in
          Hashtbl.iter (fun pfn heat -> Sim.Stats.Topk.add heap ~key:heat.total pfn) t.table;
          Sim.Stats.Topk.sorted_desc heap
          |> Array.to_list
          |> List.map (fun (_, pfn) -> sample_of_heat pfn (Hashtbl.find t.table pfn))
      | Some _ | None ->
          Hashtbl.fold (fun pfn heat acc -> sample_of_heat pfn heat :: acc) t.table []
          |> List.sort (fun a b ->
                 (* Same total order as the top-k heap — hotter first,
                    ties toward the smaller pfn — so the two readout
                    paths agree exactly on the hot prefix. *)
                 let c = compare (heat_total b.node_accesses) (heat_total a.node_accesses) in
                 if c <> 0 then c else compare a.pfn b.pfn)
    in
    let link_util = Numa.Counters.last_link_utilisation counters in
    {
      controller_util = Numa.Counters.last_controller_utilisation counters;
      max_link_util = Array.fold_left Float.max 0.0 link_util;
      imbalance = Numa.Counters.imbalance counters;
      hot_pages = hot;
    }

  let current_node t pfn = Internal.node_of_pfn t.system t.domain pfn

  let is_replicated t pfn = Hashtbl.mem t.replicas pfn

  let replicated_pages t = Hashtbl.length t.replicas

  let migrate t ~pfn ~node =
    collapse t ~pfn;
    match Internal.migrate_page t.system t.domain ~pfn ~node with
    | Ok _ -> true
    | Error (`Enomem | `Not_mapped) -> false

  (* Replication: hold one frame per other node and charge the copies;
     the page itself keeps its P2M entry (a real implementation would
     need per-vCPU translations, which is exactly why the paper's Xen
     port discards the heuristic). *)
  let replicate t ~pfn =
    if Hashtbl.mem t.replicas pfn then false
    else
      match Internal.node_of_pfn t.system t.domain pfn with
      | None -> false
      | Some home ->
          let machine = t.system.Xen.System.machine in
          let topo = t.system.Xen.System.topo in
          let frames = ref [] in
          let ok = ref true in
          for node = 0 to Numa.Topology.node_count topo - 1 do
            if node <> home && !ok then begin
              match Memory.Machine.alloc_frame machine ~node with
              | Some mfn -> frames := mfn :: !frames
              | None -> ok := false
            end
          done;
          if not !ok then begin
            List.iter (fun mfn -> Memory.Machine.free machine ~mfn ~order:0) !frames;
            false
          end
          else begin
            let costs = t.system.Xen.System.costs in
            let bytes = float_of_int (Memory.Machine.frame_bytes machine) in
            let copies = float_of_int (List.length !frames) in
            let account = t.domain.Xen.Domain.account in
            account.Xen.Domain.migrate_time <-
              account.Xen.Domain.migrate_time
              +. (copies *. (costs.Xen.Costs.page_migrate_fixed +. (bytes *. costs.Xen.Costs.copy_byte)));
            Hashtbl.replace t.replicas pfn !frames;
            true
          end

  let tracked_pages t = Hashtbl.length t.table
end

module User_component = struct
  type config = {
    mc_threshold : float;
    ic_threshold : float;
    dominant_fraction : float;
    min_accesses : float;
    migration_budget : int;
    max_hot_pages : int;
    enable_replication : bool;
    replication_read_threshold : float;
    min_reader_nodes : int;
  }

  let default_config =
    {
      mc_threshold = 0.55;
      ic_threshold = 0.60;
      dominant_fraction = 0.80;
      min_accesses = 8.0;
      migration_budget = 4096;
      max_hot_pages = 16384;
      enable_replication = false;
      replication_read_threshold = 0.95;
      min_reader_nodes = 3;
    }

  type reason = Interleave | Locality | Replicate

  type action = { pfn : Memory.Page.pfn; dest : Numa.Topology.node; reason : reason }

  let take n list =
    let rec go n acc = function
      | [] -> List.rev acc
      | _ when n = 0 -> List.rev acc
      | x :: rest -> go (n - 1) (x :: acc) rest
    in
    go n [] list

  let reader_nodes node_accesses total =
    Array.fold_left (fun acc c -> if c > 0.02 *. total then acc + 1 else acc) 0 node_accesses

  let decide config ~rng ~metrics ~current_node =
    let hot = take config.max_hot_pages metrics.System_component.hot_pages in
    let utils = metrics.System_component.controller_util in
    let mean_util = Sim.Stats.mean utils in
    let overloaded =
      Array.to_list utils
      |> List.mapi (fun n u -> (n, u))
      |> List.filter (fun (_, u) -> u > config.mc_threshold && u > 1.25 *. mean_util)
      |> List.map fst
    in
    let underloaded =
      Array.to_list utils
      |> List.mapi (fun n u -> (n, u))
      |> List.filter (fun (_, u) -> u < mean_util)
      |> List.map fst
      |> Array.of_list
    in
    let controllers_overloaded = overloaded <> [] && Array.length underloaded > 0 in
    let interconnect_saturated =
      metrics.System_component.max_link_util > config.ic_threshold
    in
    let actions = ref [] and seen = Hashtbl.create 64 and budget = ref config.migration_budget in
    let emit pfn dest reason =
      if !budget > 0 && not (Hashtbl.mem seen pfn) then begin
        Hashtbl.replace seen pfn ();
        decr budget;
        actions := { pfn; dest; reason } :: !actions
      end
    in
    (* Interleave heuristic: hot pages sitting on an overloaded
       controller move to a random underloaded node. *)
    if controllers_overloaded then
      List.iter
        (fun s ->
          if System_component.heat_total s.node_accesses >= config.min_accesses then
            match current_node s.pfn with
            | Some node when List.mem node overloaded ->
                emit s.pfn (Sim.Rng.pick rng underloaded) Interleave
            | Some _ | None -> ())
        hot;
    (* Under interconnect saturation: replicate hot read-only pages
       with many readers (when enabled), migrate single-remote-reader
       pages to their reader. *)
    if interconnect_saturated then
      List.iter
        (fun s ->
          let total = System_component.heat_total s.node_accesses in
          if total >= config.min_accesses then begin
            let readers = reader_nodes s.node_accesses total in
            if
              config.enable_replication
              && s.read_fraction >= config.replication_read_threshold
              && readers >= config.min_reader_nodes
            then emit s.pfn 0 Replicate
            else begin
              let best = ref 0 in
              Array.iteri
                (fun n c -> if c > s.node_accesses.(!best) then best := n)
                s.node_accesses;
              let dominant = s.node_accesses.(!best) /. total in
              if dominant >= config.dominant_fraction then
                match current_node s.pfn with
                | Some node when node <> !best -> emit s.pfn !best Locality
                | Some _ | None -> ()
            end
          end)
        hot;
    List.rev !actions
end

type report = {
  interleave_migrations : int;
  locality_migrations : int;
  replications : int;
  failed : int;
}

let run_epoch ?(interleave_only = false) ?migrate sys ~config ~rng ~counters =
  let metrics =
    System_component.read_metrics ~top:config.User_component.max_hot_pages sys ~counters
  in
  let actions =
    User_component.decide config ~rng ~metrics ~current_node:(System_component.current_node sys)
  in
  let do_migrate =
    match migrate with
    | None -> fun ~pfn ~node -> System_component.migrate sys ~pfn ~node
    | Some f ->
        (* A custom migrator (the manager's resilient path) still has to
           collapse replicas before moving the page. *)
        fun ~pfn ~node ->
          System_component.collapse sys ~pfn;
          f ~pfn ~node
  in
  let interleave = ref 0 and locality = ref 0 and replications = ref 0 and failed = ref 0 in
  List.iter
    (fun (a : User_component.action) ->
      match a.reason with
      | (User_component.Replicate | User_component.Locality) when interleave_only ->
          (* Degraded mode: the circuit breaker only trusts the cheap
             interleave heuristic; locality/replication work is shed. *)
          ()
      | User_component.Replicate ->
          if System_component.replicate sys ~pfn:a.pfn then incr replications else incr failed
      | User_component.Interleave ->
          if do_migrate ~pfn:a.pfn ~node:a.dest then incr interleave else incr failed
      | User_component.Locality ->
          if do_migrate ~pfn:a.pfn ~node:a.dest then incr locality else incr failed)
    actions;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(List.length actions) "policies.carrefour.actions";
    Obs.Metrics.incr ~by:!interleave "policies.carrefour.interleave_migrations";
    Obs.Metrics.incr ~by:!locality "policies.carrefour.locality_migrations";
    Obs.Metrics.incr ~by:!replications "policies.carrefour.replications";
    Obs.Metrics.incr ~by:!failed "policies.carrefour.failed";
    Obs.Metrics.gauge "policies.carrefour.tracked_pages"
      (float_of_int (System_component.tracked_pages sys))
  end;
  {
    interleave_migrations = !interleave;
    locality_migrations = !locality;
    replications = !replications;
    failed = !failed;
  }
