type sample = {
  pfn : Memory.Page.pfn;
  node_accesses : float array;
  read_fraction : float;
}

(* Flat hot-page readout: row [i] of [counts] (length [nodes]) is the
   per-node access spread of [pfns.(i)], hottest first.  One readout is
   three arrays instead of thousands of boxed samples, which is what
   makes the per-period user-component work cheap. *)
type hot = {
  nodes : int;
  count : int;
  pfns : int array;
  counts : float array;  (* count * nodes, row-major *)
  read_fractions : float array;
  keys : float array;
      (* ranking key per row (the heat table's accumulated total);
         rows need not arrive sorted — decide ranks by (key desc,
         pfn asc), the top-k heap's total order *)
}

let hot_of_samples samples =
  let nodes = List.fold_left (fun m s -> max m (Array.length s.node_accesses)) 0 samples in
  let count = List.length samples in
  let pfns = Array.make count 0 in
  let counts = Array.make (count * nodes) 0.0 in
  let read_fractions = Array.make count 1.0 in
  let keys = Array.make count 0.0 in
  List.iteri
    (fun i s ->
      pfns.(i) <- s.pfn;
      Array.blit s.node_accesses 0 counts (i * nodes) (Array.length s.node_accesses);
      read_fractions.(i) <- s.read_fraction;
      keys.(i) <- Array.fold_left ( +. ) 0.0 s.node_accesses)
    samples;
  { nodes; count; pfns; counts; read_fractions; keys }

let samples_of_hot hot =
  List.init hot.count (fun i ->
      {
        pfn = hot.pfns.(i);
        node_accesses = Array.sub hot.counts (i * hot.nodes) hot.nodes;
        read_fraction = hot.read_fractions.(i);
      })

(* Sum of one row, in ascending index order — the same operation
   sequence as [Array.fold_left ( +. ) 0.0] over a per-page spread, so
   thresholds computed from a row bit-match the historical sample
   path. *)
(* Order row indices hottest-first — (key descending, pfn ascending),
   the top-k heap's total order — without a comparison closure: a
   median-of-three quicksort with inline comparisons, insertion sort
   below 12 elements.  The ranking runs every user-component period
   over every threshold-clearing row, so the constant matters. *)
let rank_sort keys pfns order len =
  let before a b =
    let ka = Array.unsafe_get keys a and kb = Array.unsafe_get keys b in
    ka > kb || (ka = kb && Array.unsafe_get pfns a < Array.unsafe_get pfns b)
  in
  let swap i j =
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  in
  let rec qsort lo hi =
    if hi - lo < 12 then
      for i = lo + 1 to hi do
        let x = order.(i) in
        let j = ref (i - 1) in
        while !j >= lo && before x order.(!j) do
          order.(!j + 1) <- order.(!j);
          decr j
        done;
        order.(!j + 1) <- x
      done
    else begin
      let mid = (lo + hi) / 2 in
      if before order.(mid) order.(lo) then swap mid lo;
      if before order.(hi) order.(mid) then begin
        swap hi mid;
        if before order.(mid) order.(lo) then swap mid lo
      end;
      let pivot = order.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while before order.(!i) pivot do incr i done;
        while before pivot order.(!j) do decr j done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
  in
  if len > 1 then qsort 0 (len - 1)

let row_total counts ~base ~nodes =
  let s = ref 0.0 in
  for j = 0 to nodes - 1 do
    s := !s +. Array.unsafe_get counts (base + j)
  done;
  !s

module System_component = struct
  (* Structure-of-arrays heat table.  [slot] direct-maps a pfn to its
     row (+1, 0 = absent); rows [0 .. live-1] are the tracked pages in
     insertion order.  [totals] carries the incrementally accumulated
     heat (the historical [heat.total] field): it can differ from the
     row sum in the last ulp, and it is what keys the top-k readout,
     so it is stored rather than recomputed. *)
  type t = {
    system : Xen.System.t;
    domain : Xen.Domain.t;
    nodes : int;
    mutable slot : int array;
    mutable pfns : int array;
    mutable counts : float array;  (* cap * nodes, row-major *)
    mutable reads : float array;
    mutable totals : float array;
    mutable live : int;
    replicas : (Memory.Page.pfn, Memory.Page.mfn list) Hashtbl.t;
    mutable epoch : int;
  }

  let initial_rows = 1024

  let create system domain =
    let nodes = Numa.Topology.node_count system.Xen.System.topo in
    {
      system;
      domain;
      nodes;
      slot = Array.make 1024 0;
      pfns = Array.make initial_rows 0;
      counts = Array.make (initial_rows * nodes) 0.0;
      reads = Array.make initial_rows 0.0;
      totals = Array.make initial_rows 0.0;
      live = 0;
      replicas = Hashtbl.create 64;
      epoch = 0;
    }

  let ensure_slot t pfn =
    let n = Array.length t.slot in
    if pfn >= n then begin
      let n' = ref (n * 2) in
      while pfn >= !n' do
        n' := !n' * 2
      done;
      let slot = Array.make !n' 0 in
      Array.blit t.slot 0 slot 0 n;
      t.slot <- slot
    end

  let ensure_row t =
    let cap = Array.length t.pfns in
    if t.live >= cap then begin
      let cap' = cap * 2 in
      let grow_f a len' =
        let a' = Array.make len' 0.0 in
        Array.blit a 0 a' 0 (Array.length a);
        a'
      in
      let pfns = Array.make cap' 0 in
      Array.blit t.pfns 0 pfns 0 cap;
      t.pfns <- pfns;
      t.counts <- grow_f t.counts (cap' * t.nodes);
      t.reads <- grow_f t.reads cap';
      t.totals <- grow_f t.totals cap'
    end

  (* Halve every row in place, drop rows whose decayed sum falls below
     1.0, compacting survivors toward row 0 (insertion order is
     preserved; the readouts are ordering-insensitive anyway). *)
  let decay t =
    let nodes = t.nodes in
    let w = ref 0 in
    for r = 0 to t.live - 1 do
      let base = r * nodes in
      let total = ref 0.0 in
      for j = 0 to nodes - 1 do
        let c = Array.unsafe_get t.counts (base + j) /. 2.0 in
        Array.unsafe_set t.counts (base + j) c;
        total := !total +. c
      done;
      if !total < 1.0 then t.slot.(t.pfns.(r)) <- 0
      else begin
        let d = !w in
        if d <> r then begin
          Array.blit t.counts base t.counts (d * nodes) nodes;
          t.pfns.(d) <- t.pfns.(r);
          t.slot.(t.pfns.(d)) <- d + 1
        end;
        t.reads.(d) <- t.reads.(r) /. 2.0;
        t.totals.(d) <- !total;
        incr w
      end
    done;
    t.live <- !w

  let collapse t ~pfn =
    match Hashtbl.find_opt t.replicas pfn with
    | None -> ()
    | Some mfns ->
        List.iter (fun mfn -> Memory.Machine.free t.system.Xen.System.machine ~mfn ~order:0) mfns;
        Hashtbl.remove t.replicas pfn

  let begin_epoch t =
    decay t;
    t.epoch <- t.epoch + 1

  let record_sample t ~pfn ~node_accesses ~read_fraction =
    (* Any write to a replicated page invalidates its replicas:
       the copies would otherwise go stale.  This write-collapse
       thrashing is what makes replication marginal on read-mostly
       (but not read-only) workloads — the paper's reason for
       discarding the heuristic. *)
    if read_fraction < 0.999 && Hashtbl.length t.replicas > 0 && Hashtbl.mem t.replicas pfn then
      collapse t ~pfn;
    let added = Array.fold_left ( +. ) 0.0 node_accesses in
    ensure_slot t pfn;
    let n = min (Array.length node_accesses) t.nodes in
    let r = t.slot.(pfn) - 1 in
    if r >= 0 then begin
      let base = r * t.nodes in
      for j = 0 to n - 1 do
        t.counts.(base + j) <- t.counts.(base + j) +. node_accesses.(j)
      done;
      t.reads.(r) <- t.reads.(r) +. (read_fraction *. added);
      t.totals.(r) <- t.totals.(r) +. added
    end
    else begin
      ensure_row t;
      let r = t.live in
      let base = r * t.nodes in
      Array.fill t.counts base t.nodes 0.0;
      Array.blit node_accesses 0 t.counts base n;
      t.pfns.(r) <- pfn;
      t.reads.(r) <- read_fraction *. added;
      t.totals.(r) <- added;
      t.slot.(pfn) <- r + 1;
      t.live <- r + 1
    end

  let record_samples t samples =
    begin_epoch t;
    List.iter
      (fun s ->
        record_sample t ~pfn:s.pfn ~node_accesses:s.node_accesses
          ~read_fraction:s.read_fraction)
      samples

  type metrics = {
    controller_util : float array;
    max_link_util : float;
    imbalance : float;
    hot_pages : hot;
  }

  let read_fraction_of_row t r = if t.totals.(r) > 0.0 then t.reads.(r) /. t.totals.(r) else 1.0

  let hot_of_rows t rows n =
    let nodes = t.nodes in
    let pfns = Array.make n 0 in
    let counts = Array.make (n * nodes) 0.0 in
    let read_fractions = Array.make n 1.0 in
    let keys = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let r = rows.(i) in
      pfns.(i) <- t.pfns.(r);
      Array.blit t.counts (r * nodes) counts (i * nodes) nodes;
      read_fractions.(i) <- read_fraction_of_row t r;
      keys.(i) <- t.totals.(r)
    done;
    { nodes; count = n; pfns; counts; read_fractions; keys }

  let read_hot ?top t =
    match top with
    | Some k when k > 0 ->
        (* Bounded selection: a k-sized min-heap over the live heat
           totals instead of sorting the whole table.  Keys are the
           incremental totals — the same values the unbounded path
           sorts by — so [~top:k] is exactly its prefix. *)
        let heap = Sim.Stats.Topk.create (max 1 (min k t.live)) in
        for r = 0 to t.live - 1 do
          Sim.Stats.Topk.add heap ~key:t.totals.(r) t.pfns.(r)
        done;
        let picked = Sim.Stats.Topk.sorted_desc heap in
        let rows = Array.map (fun (_, pfn) -> t.slot.(pfn) - 1) picked in
        hot_of_rows t rows (Array.length rows)
    | Some _ | None ->
        let rows = Array.init t.live (fun r -> r) in
        Array.sort
          (fun a b ->
            (* Same total order as the top-k heap — hotter first, ties
               toward the smaller pfn. *)
            let c = Float.compare t.totals.(b) t.totals.(a) in
            if c <> 0 then c else Int.compare t.pfns.(a) t.pfns.(b))
          rows;
        hot_of_rows t rows t.live

  (* Readout in table order, no ranking: the user component sorts only
     the rows that clear its heat threshold, which is far cheaper than
     ranking the whole table every period.  Only valid as a full
     readout (no [top] cap).  The row arrays ALIAS the live table —
     they may be longer than [count] and must not outlive the next
     table mutation (decay/sample), which is fine for the immediate
     decide-and-act consumer and avoids copying the whole table every
     period. *)
  let read_metrics_unranked t ~counters =
    let n = t.live in
    let nodes = t.nodes in
    let read_fractions = Array.make n 1.0 in
    for r = 0 to n - 1 do
      read_fractions.(r) <- read_fraction_of_row t r
    done;
    let hot =
      { nodes; count = n; pfns = t.pfns; counts = t.counts; read_fractions; keys = t.totals }
    in
    let link_util = Numa.Counters.last_link_utilisation counters in
    {
      controller_util = Numa.Counters.last_controller_utilisation counters;
      max_link_util = Array.fold_left Float.max 0.0 link_util;
      imbalance = Numa.Counters.imbalance counters;
      hot_pages = hot;
    }

  let read_metrics ?top t ~counters =
    let hot = read_hot ?top t in
    let link_util = Numa.Counters.last_link_utilisation counters in
    {
      controller_util = Numa.Counters.last_controller_utilisation counters;
      max_link_util = Array.fold_left Float.max 0.0 link_util;
      imbalance = Numa.Counters.imbalance counters;
      hot_pages = hot;
    }

  let current_node t pfn = Internal.node_of_pfn t.system t.domain pfn

  let is_replicated t pfn = Hashtbl.mem t.replicas pfn

  let replicated_pages t = Hashtbl.length t.replicas

  let migrate t ~pfn ~node =
    collapse t ~pfn;
    match Internal.migrate_page t.system t.domain ~pfn ~node with
    | Ok _ -> true
    | Error (`Enomem | `Not_mapped) -> false

  (* Replication: hold one frame per other node and charge the copies;
     the page itself keeps its P2M entry (a real implementation would
     need per-vCPU translations, which is exactly why the paper's Xen
     port discards the heuristic). *)
  let replicate t ~pfn =
    if Hashtbl.mem t.replicas pfn then false
    else
      match Internal.node_of_pfn t.system t.domain pfn with
      | None -> false
      | Some home ->
          let machine = t.system.Xen.System.machine in
          let topo = t.system.Xen.System.topo in
          let frames = ref [] in
          let ok = ref true in
          for node = 0 to Numa.Topology.node_count topo - 1 do
            (* Offline nodes get no replica: readers there are gone. *)
            if node <> home && Numa.Topology.node_online topo node && !ok then begin
              match Memory.Machine.alloc_frame machine ~node with
              | Some mfn -> frames := mfn :: !frames
              | None -> ok := false
            end
          done;
          if not !ok then begin
            List.iter (fun mfn -> Memory.Machine.free machine ~mfn ~order:0) !frames;
            false
          end
          else begin
            let costs = t.system.Xen.System.costs in
            let bytes = float_of_int (Memory.Machine.frame_bytes machine) in
            let copies = float_of_int (List.length !frames) in
            let account = t.domain.Xen.Domain.account in
            account.Xen.Domain.migrate_time <-
              account.Xen.Domain.migrate_time
              +. (copies *. (costs.Xen.Costs.page_migrate_fixed +. (bytes *. costs.Xen.Costs.copy_byte)));
            Hashtbl.replace t.replicas pfn !frames;
            true
          end

  let tracked_pages t = t.live
end

module User_component = struct
  type config = {
    mc_threshold : float;
    ic_threshold : float;
    dominant_fraction : float;
    min_accesses : float;
    migration_budget : int;
    max_hot_pages : int;
    enable_replication : bool;
    replication_read_threshold : float;
    min_reader_nodes : int;
  }

  let default_config =
    {
      mc_threshold = 0.55;
      ic_threshold = 0.60;
      dominant_fraction = 0.80;
      min_accesses = 8.0;
      migration_budget = 4096;
      max_hot_pages = 16384;
      enable_replication = false;
      replication_read_threshold = 0.95;
      min_reader_nodes = 3;
    }

  type reason = Interleave | Locality | Replicate

  type action = { pfn : Memory.Page.pfn; dest : Numa.Topology.node; reason : reason }

  let reader_nodes counts ~base ~nodes total =
    let readers = ref 0 in
    for j = 0 to nodes - 1 do
      if counts.(base + j) > 0.02 *. total then incr readers
    done;
    !readers

  let decide ?(node_ok = fun (_ : int) -> true) config ~rng ~metrics ~current_node =
    let hot = metrics.System_component.hot_pages in
    let n = min config.max_hot_pages hot.count in
    let nodes = hot.nodes in
    let utils = metrics.System_component.controller_util in
    let mean_util = Sim.Stats.mean utils in
    let overloaded =
      Array.to_list utils
      |> List.mapi (fun n u -> (n, u))
      |> List.filter (fun (_, u) -> u > config.mc_threshold && u > 1.25 *. mean_util)
      |> List.map fst
    in
    (* Destinations must be in the dynamic node mask: a failing node is
       never a migration target (it may still be a source). *)
    let underloaded =
      Array.to_list utils
      |> List.mapi (fun n u -> (n, u))
      |> List.filter (fun (n, u) -> u < mean_util && node_ok n)
      |> List.map fst
      |> Array.of_list
    in
    let controllers_overloaded = overloaded <> [] && Array.length underloaded > 0 in
    let interconnect_saturated =
      metrics.System_component.max_link_util > config.ic_threshold
    in
    let actions = ref [] and seen = Hashtbl.create 64 and budget = ref config.migration_budget in
    let emit pfn dest reason =
      if !budget > 0 && not (Hashtbl.mem seen pfn) then begin
        Hashtbl.replace seen pfn ();
        decr budget;
        actions := { pfn; dest; reason } :: !actions
      end
    in
    if controllers_overloaded || interconnect_saturated then begin
      (* Collect the rows clearing the heat threshold: only they can
         act, so only (subsets of) them are ever ranked — (key
         descending, pfn ascending), the heat table's readout order. *)
      let order = Array.make n 0 in
      let tot = Array.make (max 1 n) 0.0 in
      let m = ref 0 in
      for i = 0 to n - 1 do
        let t = row_total hot.counts ~base:(i * nodes) ~nodes in
        if t >= config.min_accesses then begin
          order.(!m) <- i;
          tot.(i) <- t;
          incr m
        end
      done;
      let m = !m in
      (* Qualification is pure — the walks only mutate [seen]/[budget]
         through [emit] — so each heuristic filters its qualifying rows
         first and ranks just that subset.  The comparator is a strict
         total order (distinct pfns break key ties), so the sorted
         subset is the subset restriction of the fully sorted readout:
         emits, their order, and the random-node draws are exactly
         those of a walk over the full ranking, without paying
         O(m log m) when the steady-state subsets are empty. *)
      let sel = Array.make (max 1 m) 0 in
      (* Interleave heuristic: hot pages sitting on an overloaded
         controller move to a random underloaded node. *)
      if controllers_overloaded then begin
        let k = ref 0 in
        for s = 0 to m - 1 do
          let i = order.(s) in
          match current_node hot.pfns.(i) with
          | Some node when List.mem node overloaded ->
              sel.(!k) <- i;
              incr k
          | Some _ | None -> ()
        done;
        rank_sort hot.keys hot.pfns sel !k;
        for s = 0 to !k - 1 do
          let i = sel.(s) in
          (* The random draw happens for every qualifying row, budget
             or not — it was an [emit] argument in the full walk. *)
          emit hot.pfns.(i) (Sim.Rng.pick rng underloaded) Interleave
        done
      end;
      (* Under interconnect saturation: replicate hot read-only pages
         with many readers (when enabled), migrate single-remote-reader
         pages to their reader. *)
      if interconnect_saturated then begin
        let replicate_row i =
          config.enable_replication
          && hot.read_fractions.(i) >= config.replication_read_threshold
          && reader_nodes hot.counts ~base:(i * nodes) ~nodes tot.(i)
             >= config.min_reader_nodes
        in
        let best_node i =
          let base = i * nodes in
          let best = ref 0 in
          for j = 0 to nodes - 1 do
            if hot.counts.(base + j) > hot.counts.(base + !best) then best := j
          done;
          !best
        in
        let k = ref 0 in
        for s = 0 to m - 1 do
          let i = order.(s) in
          if replicate_row i then begin
            sel.(!k) <- i;
            incr k
          end
          else begin
            let best = best_node i in
            let dominant = hot.counts.((i * nodes) + best) /. tot.(i) in
            if dominant >= config.dominant_fraction && node_ok best then
              match current_node hot.pfns.(i) with
              | Some node when node <> best ->
                  sel.(!k) <- i;
                  incr k
              | Some _ | None -> ()
          end
        done;
        rank_sort hot.keys hot.pfns sel !k;
        for s = 0 to !k - 1 do
          let i = sel.(s) in
          if replicate_row i then emit hot.pfns.(i) 0 Replicate
          else emit hot.pfns.(i) (best_node i) Locality
        done
      end
    end;
    List.rev !actions
end

type report = {
  interleave_migrations : int;
  locality_migrations : int;
  replications : int;
  failed : int;
}

let run_epoch ?(interleave_only = false) ?migrate sys ~config ~rng ~counters =
  let metrics =
    (* When the whole table fits in the readout cap, skip the ranking
       heap: decide sorts the (few) threshold-clearing rows itself. *)
    if System_component.tracked_pages sys <= config.User_component.max_hot_pages then
      System_component.read_metrics_unranked sys ~counters
    else System_component.read_metrics ~top:config.User_component.max_hot_pages sys ~counters
  in
  let topo = sys.System_component.system.Xen.System.topo in
  let actions =
    User_component.decide config ~rng ~metrics
      ~node_ok:(fun n -> Numa.Topology.node_online topo n)
      ~current_node:(System_component.current_node sys)
  in
  let do_migrate =
    match migrate with
    | None -> fun ~pfn ~node -> System_component.migrate sys ~pfn ~node
    | Some f ->
        (* A custom migrator (the manager's resilient path) still has to
           collapse replicas before moving the page. *)
        fun ~pfn ~node ->
          System_component.collapse sys ~pfn;
          f ~pfn ~node
  in
  let interleave = ref 0 and locality = ref 0 and replications = ref 0 and failed = ref 0 in
  List.iter
    (fun (a : User_component.action) ->
      match a.reason with
      | (User_component.Replicate | User_component.Locality) when interleave_only ->
          (* Degraded mode: the circuit breaker only trusts the cheap
             interleave heuristic; locality/replication work is shed. *)
          ()
      | User_component.Replicate ->
          if System_component.replicate sys ~pfn:a.pfn then incr replications else incr failed
      | User_component.Interleave ->
          if do_migrate ~pfn:a.pfn ~node:a.dest then incr interleave else incr failed
      | User_component.Locality ->
          if do_migrate ~pfn:a.pfn ~node:a.dest then incr locality else incr failed)
    actions;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr ~by:(List.length actions) "policies.carrefour.actions";
    Obs.Metrics.incr ~by:!interleave "policies.carrefour.interleave_migrations";
    Obs.Metrics.incr ~by:!locality "policies.carrefour.locality_migrations";
    Obs.Metrics.incr ~by:!replications "policies.carrefour.replications";
    Obs.Metrics.incr ~by:!failed "policies.carrefour.failed";
    Obs.Metrics.gauge "policies.carrefour.tracked_pages"
      (float_of_int (System_component.tracked_pages sys))
  end;
  {
    interleave_migrations = !interleave;
    locality_migrations = !locality;
    replications = !replications;
    failed = !failed;
  }
