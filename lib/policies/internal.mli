(** The paper's {e internal interface} (Section 4.1): the two
    mechanisms a NUMA policy needs from the hypervisor.

    Both operate on the hypervisor page table (P2M), never on the guest
    page table: the hypervisor cannot know which guest-physical pages
    the guest OS uses nor synchronize with it on its own page tables,
    so policies place a guest-physical page on a node by backing it
    with a machine page of that node. *)

type map_error = [ `Enomem ]
type migrate_error = [ `Enomem | `Not_mapped ]

val map_page :
  Xen.System.t ->
  Xen.Domain.t ->
  pfn:Memory.Page.pfn ->
  node:Numa.Topology.node ->
  (Memory.Page.mfn, map_error) result
(** Map the guest-physical page [pfn] onto a fresh machine page of
    [node] (falling back round-robin to other nodes when [node] is
    full, like Xen's heap).  The previous backing frame, if any, is
    freed.  Time is charged by the caller (the fault path charges it
    through {!Xen.Domain.handle_fault}; boot population is free). *)

val migrate_page :
  Xen.System.t ->
  Xen.Domain.t ->
  pfn:Memory.Page.pfn ->
  node:Numa.Topology.node ->
  (Memory.Page.mfn, migrate_error) result
(** Migrate a mapped page to [node]: write-protect the P2M entry (so
    concurrent guest writes fault and wait), copy the page to a frame
    of the new node, update the entry and free the old frame.  No-op
    success if the page already lives on [node].  Charges the fixed
    migration cost plus the per-byte copy cost to the domain's
    account; if the page lay inside a 2 MiB superpage the extent is
    splintered first and the per-frame demotion cost
    ({!Xen.Costs.splinter_time}) is charged on top. *)

val migrate_group :
  Xen.System.t ->
  Xen.Domain.t ->
  ?on_splinter:(Memory.Page.pfn -> unit) ->
  pfns:int array ->
  scratch_mfns:int array ->
  n:int ->
  node:Numa.Topology.node ->
  unit ->
  [ `Done of int | `Enomem of int ]
(** Migrate [pfns.(0..n-1)] — which must all be mapped off-node — onto
    [node] as one grouped operation: target frames are allocated (and
    the transient-ENOMEM fault drawn) page by page in array order, the
    remap then goes through {!Xen.P2m.migrate_batch} (one sort, each
    superpage extent splintered at most once) and the domain is charged
    the amortised {!Xen.Costs.migrate_batch_time} for the group plus
    any splinters.  [on_splinter] fires once per demoted extent.
    Returns [`Done moved] ([moved = n]) on success, or [`Enomem moved]
    when an allocation failed: the first [moved] entries of [pfns]
    (reordered by the sort) were migrated, the tail
    [pfns.(moved..n-1)] was left untouched for the caller to requeue.
    [scratch_mfns] is caller-provided scratch of at least [n]. *)

val node_of_pfn : Xen.System.t -> Xen.Domain.t -> Memory.Page.pfn -> Numa.Topology.node option
(** Node currently backing the page, [None] for an invalid entry. *)
