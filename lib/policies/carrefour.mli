(** The Carrefour dynamic policy, ported into the hypervisor
    (Sections 3.4 and 4.3).

    Carrefour monitors memory access patterns through hardware
    counters and migrates the hottest physical pages.  Two heuristics
    are enabled by default, as in the paper:

    - {e interleave}: when memory controllers are overloaded, randomly
      migrate hot pages from overloaded nodes to underloaded nodes;
    - {e migration}: when the interconnect saturates, migrate hot pages
      that are remotely accessed by a single node to that node.

    The replication heuristic — replicate hot read-only pages on every
    reader node — is additionally available behind
    {!User_component.config.enable_replication} (default off, matching
    the paper: its effect is marginal and a real in-Xen implementation
    would require radical memory-manager changes; here the replica
    frames live in a side table of the system component).

    The {e system component} runs inside Xen: it aggregates the
    per-vCPU access samples (IBS-style) and exposes metrics; the
    {e user component} runs as a dom0 process: it reads the metrics
    through a hypercall and decides which pages to migrate where; the
    migrations go through the internal interface. *)

type sample = {
  pfn : Memory.Page.pfn;
  node_accesses : float array;
      (** Accesses to this page during the epoch, indexed by the NUMA
          node of the {e accessing} vCPU. *)
  read_fraction : float;
      (** Share of the accesses that were reads (1.0 = read-only),
          from the IBS load/store bit.  Only the replication heuristic
          consumes it. *)
}

(** Flat hot-page readout, hottest first: row [i] of [counts] — the
    [nodes] cells starting at [i * nodes] — is the per-node access
    spread of [pfns.(i)].  Three arrays per readout instead of one
    boxed {!sample} per page, so the per-period metrics hypercall stays
    cheap at thousands of tracked pages. *)
type hot = {
  nodes : int;
  count : int;
  pfns : int array;
  counts : float array;  (** [count * nodes], row-major. *)
  read_fractions : float array;
  keys : float array;
      (** Ranking key per row — the heat table's accumulated total.
          Rows need not arrive sorted: {!User_component.decide} ranks
          candidate rows by (key descending, pfn ascending), the same
          total order as the top-k readout. *)
}

val hot_of_samples : sample list -> hot
(** Pack a sample list (in order) into the flat readout form — the
    convenience path for tests and synthetic metrics; rows are padded
    to the widest spread in the list and keyed by their row sums. *)

val samples_of_hot : hot -> sample list
(** Unpack a readout into per-page samples (copies the rows). *)

module System_component : sig
  type t

  val create : Xen.System.t -> Xen.Domain.t -> t

  val begin_epoch : t -> unit
  (** Open a sampling epoch: page heat decays by half so stale hotness
      fades.  Call once per epoch, before the epoch's
      {!record_sample}s. *)

  val record_sample :
    t -> pfn:Memory.Page.pfn -> node_accesses:float array -> read_fraction:float -> unit
  (** Feed one hardware sample into the heat table.  [node_accesses]
      is copied on first sight of the page and accumulated in place
      afterwards, so callers may reuse one scratch array across
      samples. *)

  val record_samples : t -> sample list -> unit
  (** [begin_epoch] followed by {!record_sample} for each element. *)

  type metrics = {
    controller_util : float array;
    max_link_util : float;
    imbalance : float;
    hot_pages : hot;  (** Hottest first, capped. *)
  }

  val read_metrics : ?top:int -> t -> counters:Numa.Counters.t -> metrics
  (** What the user component's hypercall returns: utilisations from
      the hardware monitors plus the accumulated hot-page table.
      [top] bounds the readout to the [top] hottest pages, selected
      with a min-heap ({!Sim.Stats.Topk}) instead of a full sort;
      omitted (or [<= 0]) returns the whole table sorted.  Both paths
      order by (accumulated heat descending, pfn ascending), so
      [~top:k] returns exactly the first [k] elements of the unbounded
      readout. *)

  val current_node : t -> Memory.Page.pfn -> Numa.Topology.node option

  val migrate : t -> pfn:Memory.Page.pfn -> node:Numa.Topology.node -> bool
  (** Apply one migration through the internal interface; [false] if
      the page is unmapped or the target node is out of memory.
      Migrating a replicated page first collapses its replicas. *)

  val replicate : t -> pfn:Memory.Page.pfn -> bool
  (** Replicate the page: a copy is allocated on every other node and
      recorded in the replica table (the machine frames are really
      held); reads can then be served locally everywhere.  [false] if
      unmapped, already replicated, or out of memory. *)

  val collapse : t -> pfn:Memory.Page.pfn -> unit
  (** Drop the replicas of a page (a write invalidates them). *)

  val is_replicated : t -> Memory.Page.pfn -> bool

  val replicated_pages : t -> int

  val tracked_pages : t -> int
end

module User_component : sig
  type config = {
    mc_threshold : float;  (** Controller utilisation triggering interleave. *)
    ic_threshold : float;  (** Link utilisation triggering migration. *)
    dominant_fraction : float;
        (** Share of accesses from one node that makes a page a
            locality-migration candidate. *)
    min_accesses : float;  (** Heat below which a page is ignored. *)
    migration_budget : int;  (** Max migrations per epoch. *)
    max_hot_pages : int;  (** Hot-page table readout cap. *)
    enable_replication : bool;  (** Off by default (discarded in the paper). *)
    replication_read_threshold : float;
        (** Minimum read fraction for a replication candidate. *)
    min_reader_nodes : int;
        (** Minimum distinct reader nodes for replication to pay. *)
  }

  val default_config : config

  type reason = Interleave | Locality | Replicate

  type action = {
    pfn : Memory.Page.pfn;
    dest : Numa.Topology.node;  (** Meaningless for [Replicate]. *)
    reason : reason;
  }

  val decide :
    ?node_ok:(Numa.Topology.node -> bool) ->
    config ->
    rng:Sim.Rng.t ->
    metrics:System_component.metrics ->
    current_node:(Memory.Page.pfn -> Numa.Topology.node option) ->
    action list
  (** Pure decision logic (testable in isolation): interleave actions
      when controllers are overloaded, locality actions when the
      interconnect saturates, hottest pages first, capped by the
      budget.  [node_ok] (default: accept all) filters candidate
      destinations — {!run_epoch} passes the topology's dynamic node
      mask so failing nodes are never picked. *)
end

type report = {
  interleave_migrations : int;
  locality_migrations : int;
  replications : int;
  failed : int;
}

val run_epoch :
  ?interleave_only:bool ->
  ?migrate:(pfn:Memory.Page.pfn -> node:Numa.Topology.node -> bool) ->
  System_component.t ->
  config:User_component.config ->
  rng:Sim.Rng.t ->
  counters:Numa.Counters.t ->
  report
(** One user-component period: read metrics, decide, apply.  Migration
    costs are charged to the domain account by the internal
    interface.

    [interleave_only] (default false) sheds the locality and
    replication actions — the circuit breaker's first degradation
    level.  [migrate] substitutes the raw internal-interface migration
    with a resilient wrapper (retry/defer); replica collapse still
    happens first. *)
