(** Per-domain NUMA policy engine: the paper's {e external interface}
    (Section 4.2) plus the boot-time placement.

    A domain boots with an eager placement — round-4K by default, or
    round-1G for testing (Xen's historical default).  At runtime, the
    first hypercall ({!set_policy}) switches the placement to
    first-touch and/or toggles Carrefour; the second hypercall
    ({!page_ops_hypercall}) delivers the guest's batched
    allocation/release queue, from which the first-touch policy
    invalidates the P2M entries of free pages so their next touch
    faults into the hypervisor and lands them on the toucher's node. *)

type stats = {
  mutable populated_1g : int;   (** 1 GiB regions placed at boot. *)
  mutable populated_2m : int;
  mutable populated_4k : int;
  mutable ops_received : int;   (** Queue entries received. *)
  mutable invalidated : int;    (** Free pages whose entry was cleared. *)
  mutable left_in_place : int;  (** Reallocated-while-queued pages kept. *)
  mutable first_touch_maps : int;  (** Pages placed by the fault path. *)
  mutable policy_switches : int;
  mutable splinters : int;
      (** Superpage extents demoted on this policy's behalf (first-touch
          invalidations, single-page migrations, reconcile sweeps). *)
  mutable promotes : int;  (** Extents re-coalesced in place by the scan. *)
  mutable superpage_migrates : int;
      (** Extents the scan migrated onto a fresh contiguous block to
          make them promotable (the expensive path). *)
}

type degrade = {
  mutable migrate_retries : int;
      (** Extra migration attempts after a transient ENOMEM. *)
  mutable backoff_time : float;
      (** Simulated time spent in exponential backoff pauses. *)
  mutable deferred : int;  (** Migrations pushed to the retry queue. *)
  mutable drained : int;  (** Deferred migrations later completed. *)
  mutable dropped_deferred : int;  (** Retry-queue overflow drops. *)
  mutable fallback_maps : int;
      (** [map_page] placements that fell back off the wanted node
          (misplacement debt, repaid by the drain). *)
  mutable breaker_trips : int;
  mutable breaker_level : int;
      (** 0 = full policy, 1 = interleave-only, 2 = static placement. *)
  mutable lost_batches : int;  (** Page-ops batches lost in transit. *)
  mutable lost_ops : int;
  mutable hypercall_retries : int;  (** Transient hypercall failures retried. *)
  mutable reconcile_sweeps : int;
  mutable reconciled : int;  (** Stale P2M entries healed by the sweeps. *)
  mutable ecc_ce : int;  (** Correctable ECC errors scrubbed in place. *)
  mutable ecc_ue : int;  (** Uncorrectable ECC errors handled. *)
  mutable offlined : int;  (** Machine frames retired by the UE handler. *)
  mutable evacuated : int;  (** Frames moved off failing nodes. *)
  mutable evac_epochs : int;  (** Epochs an evacuation was in progress. *)
}

type t

val attach :
  ?carrefour_config:Carrefour.User_component.config ->
  ?superpages:bool ->
  ?pt_walk:bool ->
  ?replicate_pt:bool ->
  Xen.System.t ->
  Xen.Domain.t ->
  boot:Spec.t ->
  rng:Sim.Rng.t ->
  t
(** Populate the domain's memory per the boot placement (nothing for a
    first-touch boot: every entry starts invalid) and install the
    hypervisor fault handler.  With [superpages] (default [false]),
    aligned contiguous blocks placed by the round-1G boot path are
    installed as 2 MiB P2M superpage entries, per-frame operations
    splinter them (charging {!Xen.Costs.splinter_time}), and
    {!epoch_tick} periodically runs the {!promote_scan}.

    With [pt_walk] (default [false]) a {!Xen.Pt.t} placement is
    created — all four walk levels on the domain's first home node —
    for the engine's radix walk model.  With [replicate_pt] (default
    [false]) the placement additionally mirrors the P2M onto every
    home node: the replica-maintenance hook is installed {e before}
    the boot population so the mirrors replay the primary's whole
    update stream, and every subsequent P2M mutation charges
    {!Xen.Costs.pt_replica_update_time} (or the invalidate variant) to
    the domain's [pt_replica_time] account.
    @raise Invalid_argument when machine memory cannot back the
    domain. *)

val domain : t -> Xen.Domain.t
val system : t -> Xen.System.t
val spec : t -> Spec.t
val stats : t -> stats

val set_policy : t -> Spec.t -> (unit, string) result
(** The policy-selection hypercall.  Fails on non-runtime-selectable
    specs (round-1G is boot-only).  Charges one hypercall. *)

val page_ops_hypercall : t -> Guest.Pv_queue.op array -> float
(** The batched page-ops hypercall: replays the queue with
    most-recent-op-wins semantics; a final Release invalidates the P2M
    entry and frees the machine frame, a final Alloc leaves the page on
    its current node.  Returns the hypercall duration (the guest holds
    the partition lock for that long) and charges it to the domain.
    Under a non-first-touch placement the queue is accepted but entries
    are only accounted, never invalidated. *)

val release_free_pages : t -> Memory.Page.pfn list -> float
(** Convenience used when switching to first-touch: the guest reports
    its whole free list; equivalent to one big [page_ops_hypercall]
    with Release entries (split into capacity-sized batches). *)

val release_free_range : t -> first:Memory.Page.pfn -> count:int -> float
(** [release_free_pages] over the consecutive range
    [\[first, first + count)], without materialising the list: each
    capacity-sized chunk is one Page_ops hypercall whose Release
    entries go straight into the batched P2M invalidate.  Chunk-level
    semantics (loss faults, costs, stats) match the list path. *)

val carrefour : t -> Carrefour.System_component.t option
(** The Carrefour system component, present while the spec has
    Carrefour enabled. *)

val carrefour_epoch :
  t -> counters:Numa.Counters.t -> samples:Carrefour.sample list -> Carrefour.report option
(** Feed one epoch of samples and run the user component; [None] when
    Carrefour is off or the circuit breaker is open.  Migrations go
    through the resilient path; the breaker window is evaluated after
    each period and may trip (suspending the policy for a cooldown) or
    escalate the degradation level. *)

val carrefour_epoch_feed :
  t ->
  counters:Numa.Counters.t ->
  feed:(Carrefour.System_component.t -> unit) ->
  Carrefour.report option
(** Allocation-light variant of {!carrefour_epoch}: instead of a
    materialised sample list, [feed] is called once (after
    {!Carrefour.System_component.begin_epoch}, before the user
    component runs) to push samples straight into the heat table with
    {!Carrefour.System_component.record_sample} — typically from
    reusable scratch arrays.  [feed] is not called when Carrefour is
    off or the breaker is open. *)

val migrate_resilient : t -> pfn:Memory.Page.pfn -> node:Numa.Topology.node -> bool
(** Migration with graceful degradation: on transient ENOMEM, retry up
    to 3 times with exponential backoff (simulated time charged to the
    domain); on persistent failure, defer the page to the bounded
    per-domain retry queue and return [false]. *)

val epoch_tick : t -> epoch:int -> ?guest_free:(Memory.Page.pfn -> bool) -> unit -> unit
(** Per-epoch housekeeping: advance the manager's epoch clock, drain a
    budget of deferred migrations (unless the breaker is open), run the
    {!promote_scan} every {e promote period} epochs (when superpages
    are enabled and the domain is not statically degraded), and —
    under first-touch, every {e reconcile period} epochs when
    [guest_free] is given — run the {!reconcile} sweep. *)

val promote_scan : t -> int
(** One budgeted pass of the superpage promotion scan: examine a
    window of extents behind a rotating cursor and re-coalesce the
    fully mapped single-node ones — in place when the machine frames
    are already contiguous and aligned, otherwise by migrating the
    extent onto a freshly allocated contiguous block
    (superpage-migrate).  Charges {!Xen.Costs.promote_time} to the
    domain's migration account.  Returns the number of extents
    promoted; 0 when superpages are disabled.  Deterministic: cursor
    order only, no randomness. *)

val superpages_enabled : t -> bool

val pt : t -> Xen.Pt.t option
(** The page-table placement, present iff [attach] was given
    [pt_walk] or [replicate_pt]. *)

val reconcile : t -> guest_free:(Memory.Page.pfn -> bool) -> int
(** P2M / guest-free-list reconciliation: invalidate and free every
    mapped page the guest reports free, healing entries stranded by
    lost release batches.  Returns the number of pages healed; charges
    one hypercall plus the invalidation costs. *)

(** {2 Hardware RAS} *)

val handle_ecc_ce : t -> pfn:Memory.Page.pfn -> unit
(** Correctable ECC on the frame backing [pfn]: charge the scrub stall
    and trace the heat event.  No-op on an unmapped pfn. *)

val handle_ecc_ue : t -> pfn:Memory.Page.pfn -> unit
(** Uncorrectable ECC: offline the backing mfn (it retires when
    freed), remap the guest frame onto a freshly allocated one
    (splinter-aware) and charge the copy.  No-op on an unmapped pfn;
    if the machine is full the poisoned frame stays mapped as
    offline-pending. *)

val request_evacuation : t -> node:Numa.Topology.node -> unit
(** Start draining every frame this domain holds on [node]:
    {!epoch_tick} moves a budget of frames per epoch in grouped batches
    round-robin over the surviving online nodes, with exponential
    backoff, deferred-queue spillover and circuit-breaker escalation on
    persistent ENOMEM.  Idempotent while an evacuation of the same node
    is in progress. *)

val cancel_evacuation : t -> node:Numa.Topology.node -> unit
(** Stop the evacuation of [node] (the node recovered). *)

val evacuating : t -> int
(** Node currently being evacuated, [-1] when none. *)

val degrade : t -> degrade
val pending_migrations : t -> int

val quiescent : t -> bool
(** No deferred work is pending: the migration queue and the node
    evacuation engine are drained, the circuit breaker is closed (with
    its cooldown event already emitted) and its evaluation window is
    below the trip threshold, so a skipped evaluation is a no-op.
    When [quiescent] holds, an {!epoch_tick} that is not a
    promote-scan or reconcile boundary would only advance the
    manager's epoch clock — the engine's steady-state fast-forward
    relies on this to skip such ticks entirely. *)

val node_of_pfn : t -> Memory.Page.pfn -> Numa.Topology.node option
