type map_error = [ `Enomem ]
type migrate_error = [ `Enomem | `Not_mapped ]

let machine (system : Xen.System.t) = system.Xen.System.machine

let map_page system (domain : Xen.Domain.t) ~pfn ~node =
  match Memory.Machine.alloc_frame_fallback (machine system) ~prefer:node with
  | None -> Error `Enomem
  | Some mfn ->
      (match Xen.P2m.invalidate domain.Xen.Domain.p2m pfn with
      | Some old_mfn -> Memory.Machine.free (machine system) ~mfn:old_mfn ~order:0
      | None -> ());
      Xen.P2m.set domain.Xen.Domain.p2m pfn ~mfn ~writable:true;
      Ok mfn

let migrate_page system (domain : Xen.Domain.t) ~pfn ~node =
  match Xen.P2m.get domain.Xen.Domain.p2m pfn with
  | Xen.P2m.Invalid -> Error `Not_mapped
  | Xen.P2m.Mapped { mfn = old_mfn; writable } ->
      let old_node = Memory.Machine.node_of_mfn (machine system) old_mfn in
      if old_node = node then Ok old_mfn
      else if system.Xen.System.faults.Xen.System.migrate_alloc_fails () then
        (* Injected transient ENOMEM: the target node claims exhaustion
           before we even try.  Callers degrade (retry/defer). *)
        Error `Enomem
      else begin
        match Memory.Machine.alloc_frame (machine system) ~node with
        | None -> Error `Enomem
        | Some new_mfn ->
            (* Migrating a single page that lives inside a 2 MiB
               superpage first splinters the extent: every one of its
               4 KiB entries pays the write-protect→remap cost before
               the one page can move on its own. *)
            let p2m = domain.Xen.Domain.p2m in
            let costs = system.Xen.System.costs in
            let scale_i = Memory.Machine.page_scale (machine system) in
            let splinter_time =
              if Xen.P2m.is_superpage p2m pfn then
                Xen.Costs.splinter_time costs
                  ~frames_4k:(Xen.P2m.sp_frames p2m * scale_i)
              else 0.0
            in
            (* Write-protect the entry so concurrent guest writes fault
               and stall until the copy completes, then remap. *)
            Xen.P2m.write_protect p2m pfn;
            let bytes = Memory.Machine.frame_bytes (machine system) in
            (* One scaled frame stands for [page_scale] real 4 KiB pages,
               each paying the fixed write-protect/remap cost. *)
            let scale = float_of_int scale_i in
            let copy_time =
              splinter_time
              +. (scale *. costs.Xen.Costs.page_migrate_fixed)
              +. (float_of_int bytes *. costs.Xen.Costs.copy_byte)
            in
            Xen.P2m.set domain.Xen.Domain.p2m pfn ~mfn:new_mfn ~writable;
            Memory.Machine.free (machine system) ~mfn:old_mfn ~order:0;
            let account = domain.Xen.Domain.account in
            account.Xen.Domain.migrate_time <- account.Xen.Domain.migrate_time +. copy_time;
            account.Xen.Domain.migrated_pages <- account.Xen.Domain.migrated_pages + 1;
            Ok new_mfn
      end

(* Grouped migration: move pfns.(0..n-1) — all mapped, all off-node —
   to [node] as one batched remap.  Target frames are allocated (and
   the injected transient-ENOMEM fault drawn) page by page in array
   order, so the fault schedule is identical whatever the grouping;
   the remap itself then goes through [P2m.migrate_batch], which sorts
   once, splinters each extent at most once and lets us charge the
   amortised (src,dst)-pair cost instead of n standalone migrations. *)
let migrate_group system (domain : Xen.Domain.t) ?on_splinter ~pfns ~scratch_mfns ~n ~node ()
    =
  assert (n >= 0 && n <= Array.length pfns && n <= Array.length scratch_mfns);
  let m = machine system in
  let faults = system.Xen.System.faults in
  let ready = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !ready < n do
    if faults.Xen.System.migrate_alloc_fails () then stopped := true
    else begin
      match Memory.Machine.alloc_frame m ~node with
      | None -> stopped := true
      | Some mfn ->
          scratch_mfns.(!ready) <- mfn;
          incr ready
    end
  done;
  let moved = !ready in
  if moved > 0 then begin
    let p2m = domain.Xen.Domain.p2m in
    let costs = system.Xen.System.costs in
    let scale = Memory.Machine.page_scale m in
    let splinter_time = ref 0.0 in
    let stats =
      Xen.P2m.migrate_batch p2m
        ?on_splinter:
          (match on_splinter with
          | None -> None
          | Some f ->
              Some
                (fun pfn ->
                  splinter_time :=
                    !splinter_time
                    +. Xen.Costs.splinter_time costs
                         ~frames_4k:(Xen.P2m.sp_frames p2m * scale);
                  f pfn))
        pfns scratch_mfns ~n:moved
        ~f:(fun _pfn ~old_mfn -> Memory.Machine.free m ~mfn:old_mfn ~order:0)
    in
    (* Every page in the group was mapped when it was grouped and
       nothing invalidates between grouping and remap. *)
    assert (stats.Xen.P2m.applied = moved);
    (match on_splinter with
    | None ->
        (* No observer: still charge the demotions the remap caused. *)
        splinter_time :=
          float_of_int stats.Xen.P2m.splintered
          *. Xen.Costs.splinter_time costs ~frames_4k:(Xen.P2m.sp_frames p2m * scale)
    | Some _ -> ());
    let time =
      !splinter_time
      +. Xen.Costs.migrate_batch_time costs ~pages:moved
           ~page_bytes:(Memory.Machine.frame_bytes m) ~scale
    in
    let account = domain.Xen.Domain.account in
    account.Xen.Domain.migrate_time <- account.Xen.Domain.migrate_time +. time;
    account.Xen.Domain.migrated_pages <- account.Xen.Domain.migrated_pages + moved
  end;
  if !stopped then `Enomem moved else `Done moved

let node_of_pfn system (domain : Xen.Domain.t) pfn =
  match Xen.P2m.get domain.Xen.Domain.p2m pfn with
  | Xen.P2m.Invalid -> None
  | Xen.P2m.Mapped { mfn; _ } -> Some (Memory.Machine.node_of_mfn (machine system) mfn)
